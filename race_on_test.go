//go:build race

package smartcrawl_test

// raceDetectorOn mirrors whether this test binary carries the race
// detector. The wall-clock budget tests skip under it: the detector
// multiplies every memory access several-fold and the suite runs
// alongside heavyweight race-mode packages (the crashtest kill matrix),
// so a 2% timing budget would measure the instrumentation, not the code.
const raceDetectorOn = true
