// Command tracetool analyzes JSONL session traces (docs/TRACE_SCHEMA.md)
// written by smartcrawl -trace and the crawld daemon: summary statistics,
// round-by-round replay, event filtering, top-query rankings, and
// two-trace divergence diffs.
//
// Batch mode runs one command and exits:
//
//	tracetool crawl.trace summary
//	tracetool crawl.trace filter type=fault,breaker rounds=3-8
//	tracetool clean.trace diff faulty.trace
//
// With a trace but no command, tracetool reads commands from stdin as a
// REPL (the prompt goes to stderr, so stdout stays pipeable):
//
//	$ tracetool crawl.trace
//	tracetool> summary
//	tracetool> top error 5
//	tracetool> quit
//
// Commands:
//
//	load <file>            switch to another trace
//	summary                one-screen session overview
//	filter [type=a,b] [iface=NAME] [rounds=N|N-M] [q=SUBSTR]
//	                       print matching events as raw JSONL (pipeable)
//	top [realized|error] [N]
//	                       rank queries by realized benefit or |est−real|
//	replay                 step through rounds: budget and coverage deltas
//	diff <file>            compare against another trace of the same crawl
//	export events [selectors...]
//	                       filtered events as raw JSONL (filter's selectors)
//	export summary         session summary as metric,value CSV
//	export rounds          round-by-round replay as CSV
//	help                   this list
//	quit                   leave the REPL
//
// -stable suppresses wall-clock-derived output (wall span, phase
// durations), so two runs of the same seeded crawl print byte-identical
// analyses — the property the golden e2e tests pin.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"smartcrawl/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// session is the REPL/batch state: one loaded trace.
type session struct {
	stable bool
	path   string
	events []trace.Event
	stdout io.Writer
	stderr io.Writer
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	stable := fs.Bool("stable", false, "suppress wall-clock-derived output (byte-stable across reruns)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tracetool [-stable] [trace.jsonl [command [args...]]]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "commands: load summary filter top replay diff help quit\n")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	s := &session{stable: *stable, stdout: stdout, stderr: stderr}
	rest := fs.Args()
	if len(rest) > 0 {
		if err := s.load(rest[0]); err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		rest = rest[1:]
	}
	if len(rest) > 0 { // batch: one command, then exit
		if err := s.exec(rest); err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		return 0
	}

	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for {
		fmt.Fprint(stderr, "tracetool> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			break
		}
		if err := s.exec(fields); err != nil {
			fmt.Fprintln(stderr, "error:", err)
		}
	}
	return 0
}

// exec dispatches one command line.
func (s *session) exec(fields []string) error {
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "load":
		if len(args) != 1 {
			return fmt.Errorf("usage: load <file>")
		}
		if err := s.load(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(s.stdout, "loaded %s: %d events\n", s.path, len(s.events))
		return nil
	case "help":
		fmt.Fprintln(s.stdout, "commands: load <file> | summary | filter [type=a,b] [iface=N] [rounds=N-M] [q=S] | top [realized|error] [N] | replay | export events|summary|rounds | diff <file> | quit")
		return nil
	}
	if s.events == nil {
		return fmt.Errorf("no trace loaded (use: load <file>)")
	}
	switch cmd {
	case "summary":
		return s.summary()
	case "filter":
		return s.filter(args)
	case "top":
		return s.top(args)
	case "replay":
		return s.replay()
	case "export":
		return s.export(args)
	case "diff":
		if len(args) != 1 {
			return fmt.Errorf("usage: diff <file>")
		}
		return s.diff(args[0])
	}
	return fmt.Errorf("unknown command %q (try: help)", cmd)
}

// load reads and parses a trace. A torn tail — the normal end of a
// crash-interrupted session — is reported as a warning, not a failure.
func (s *session) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Parse(f)
	if err != nil {
		if len(events) == 0 {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(s.stderr, "warning: %s: %v (keeping %d events before it)\n", path, err, len(events))
	}
	s.path, s.events = path, events
	return nil
}

func (s *session) summary() error {
	sum := trace.Summarize(s.events)
	w := s.stdout
	fmt.Fprintf(w, "trace: %s (%d events", s.path, sum.Events)
	if sum.Unknown > 0 {
		fmt.Fprintf(w, ", %d of unknown type", sum.Unknown)
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "queries:   %d (%d solid)\n", sum.Queries, sum.Solid)
	fmt.Fprintf(w, "covered:   %d\n", sum.Covered)
	if sum.HasBudget {
		left := "unlimited"
		if sum.FinalBudget >= 0 {
			left = strconv.Itoa(sum.FinalBudget)
		}
		fmt.Fprintf(w, "rounds:    %d (budget left at last round: %s)\n", sum.Rounds, left)
	} else {
		fmt.Fprintf(w, "rounds:    %d\n", sum.Rounds)
	}
	if sum.Queries > 0 {
		fmt.Fprintf(w, "benefit:   est %.2f, realized %.0f, MAE %.3f\n", sum.EstSum, sum.RealSum, sum.MAE())
	}
	if len(sum.Ifaces) > 0 {
		fmt.Fprintf(w, "ifaces:    %s\n", strings.Join(sum.Ifaces, ", "))
	}
	if sum.Faults > 0 {
		classes := make([]string, 0, len(sum.FaultClasses))
		for c := range sum.FaultClasses {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, len(classes))
		for i, c := range classes {
			parts[i] = fmt.Sprintf("%s %d", c, sum.FaultClasses[c])
		}
		fmt.Fprintf(w, "faults:    %d (%s)\n", sum.Faults, strings.Join(parts, ", "))
	}
	if sum.Retries+sum.RateLimited > 0 {
		fmt.Fprintf(w, "retries:   %d (%d rate-limited)\n", sum.Retries, sum.RateLimited)
	}
	if sum.Requeues+sum.Forfeits > 0 {
		fmt.Fprintf(w, "requeues:  %d (%d forfeited)\n", sum.Requeues, sum.Forfeits)
	}
	if sum.BreakerOpens > 0 {
		fmt.Fprintf(w, "breaker:   opened %d times\n", sum.BreakerOpens)
	}
	if sum.Checkpoints+sum.Recoveries+sum.WalAppends > 0 {
		fmt.Fprintf(w, "durable:   %d checkpoints, %d recoveries, %d wal appends\n",
			sum.Checkpoints, sum.Recoveries, sum.WalAppends)
	}
	if !s.stable {
		if len(sum.PhaseMs) > 0 {
			names := make([]string, 0, len(sum.PhaseMs))
			for n := range sum.PhaseMs {
				names = append(names, n)
			}
			sort.Strings(names)
			parts := make([]string, len(names))
			for i, n := range names {
				parts[i] = fmt.Sprintf("%s %dms", n, sum.PhaseMs[n])
			}
			fmt.Fprintf(w, "phases:    %s\n", strings.Join(parts, ", "))
		}
		fmt.Fprintf(w, "wall:      %dms\n", sum.WallMs)
	}
	return nil
}

// parseFilter parses the key=value event selectors shared by filter and
// export events.
func parseFilter(args []string) (trace.Filter, error) {
	var f trace.Filter
	for _, a := range args {
		key, val, ok := strings.Cut(a, "=")
		if !ok {
			return f, fmt.Errorf("filter selectors are key=value (got %q)", a)
		}
		switch key {
		case "type":
			f.Types = strings.Split(val, ",")
		case "iface":
			f.Iface = val
		case "q":
			f.QuerySub = val
		case "rounds":
			lo, hi, ranged := strings.Cut(val, "-")
			var err error
			if f.RoundMin, err = strconv.Atoi(lo); err != nil {
				return f, fmt.Errorf("rounds=%s: %v", val, err)
			}
			f.RoundMax = f.RoundMin
			if ranged {
				if f.RoundMax, err = strconv.Atoi(hi); err != nil {
					return f, fmt.Errorf("rounds=%s: %v", val, err)
				}
			}
		default:
			return f, fmt.Errorf("unknown selector %q (type, iface, rounds, q)", key)
		}
	}
	return f, nil
}

// filter parses key=value selectors and prints matching raw lines.
func (s *session) filter(args []string) error {
	f, err := parseFilter(args)
	if err != nil {
		return err
	}
	matched := f.Apply(s.events)
	for i := range matched {
		fmt.Fprintln(s.stdout, matched[i].Raw)
	}
	fmt.Fprintf(s.stderr, "%d/%d events matched\n", len(matched), len(s.events))
	return nil
}

func (s *session) top(args []string) error {
	by, n := trace.ByRealized, 10
	for _, a := range args {
		switch a {
		case "realized":
			by = trace.ByRealized
		case "error":
			by = trace.ByEstimateError
		default:
			v, err := strconv.Atoi(a)
			if err != nil || v <= 0 {
				return fmt.Errorf("usage: top [realized|error] [N]")
			}
			n = v
		}
	}
	ranked := trace.Top(s.events, by, n)
	if len(ranked) == 0 {
		fmt.Fprintln(s.stdout, "no query events in trace")
		return nil
	}
	crit := "realized benefit"
	if by == trace.ByEstimateError {
		crit = "estimate error |est-real|"
	}
	fmt.Fprintf(s.stdout, "top %d queries by %s:\n", len(ranked), crit)
	for i, q := range ranked {
		line := fmt.Sprintf("%3d. new=%-4d est=%-8.2f err=%-7.2f", i+1, q.Realized, q.Est, q.AbsErr)
		if q.Solid {
			line += " solid"
		}
		if q.Iface != "" {
			line += " iface=" + q.Iface
		}
		fmt.Fprintf(s.stdout, "%s  %q\n", line, q.Query)
	}
	return nil
}

func (s *session) replay() error {
	rounds := trace.Rounds(s.events)
	covered, budgetKnown := 0, false
	for _, r := range rounds {
		if r.Index == 0 {
			fmt.Fprintf(s.stdout, "pre-crawl: %d events\n", len(r.Events))
			continue
		}
		budgetKnown = true
		budget := "unlimited"
		if r.BudgetLeft >= 0 {
			budget = strconv.Itoa(r.BudgetLeft)
		}
		line := fmt.Sprintf("round %3d: size=%d budget_left=%s queries=%d new=+%d cum=%d",
			r.Index, r.Size, budget, r.Queries, r.NewCovered, r.CumEnd)
		var notes []string
		if r.Solid > 0 {
			notes = append(notes, fmt.Sprintf("%d solid", r.Solid))
		}
		if r.Faults > 0 {
			notes = append(notes, fmt.Sprintf("%d faults", r.Faults))
		}
		if r.Requeues > 0 {
			notes = append(notes, fmt.Sprintf("%d requeued", r.Requeues))
		}
		if r.Forfeits > 0 {
			notes = append(notes, fmt.Sprintf("%d forfeited", r.Forfeits))
		}
		if len(notes) > 0 {
			line += " (" + strings.Join(notes, ", ") + ")"
		}
		fmt.Fprintln(s.stdout, line)
		covered = r.CumEnd
	}
	if budgetKnown {
		fmt.Fprintf(s.stdout, "final: covered=%d\n", covered)
	}
	return nil
}

// export renders machine-readable views of the loaded trace on stdout:
// filtered events as raw JSONL (for jq pipelines and archival), or the
// summary / round replay as CSV (for spreadsheets and plotting scripts).
func (s *session) export(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: export events [selectors...] | export summary | export rounds")
	}
	switch args[0] {
	case "events":
		f, err := parseFilter(args[1:])
		if err != nil {
			return err
		}
		matched := f.Apply(s.events)
		for i := range matched {
			fmt.Fprintln(s.stdout, matched[i].Raw)
		}
		fmt.Fprintf(s.stderr, "%d/%d events exported\n", len(matched), len(s.events))
		return nil
	case "summary":
		return s.exportSummary()
	case "rounds":
		return s.exportRounds()
	}
	return fmt.Errorf("unknown export target %q (events, summary, rounds)", args[0])
}

// exportSummary writes the session summary as metric,value CSV rows, one
// metric per line in a fixed order. Wall-clock-derived rows (phases,
// wall span) are suppressed under -stable, mirroring the summary command.
func (s *session) exportSummary() error {
	sum := trace.Summarize(s.events)
	w := csv.NewWriter(s.stdout)
	row := func(k string, v any) { w.Write([]string{k, fmt.Sprint(v)}) }
	w.Write([]string{"metric", "value"})
	row("events", sum.Events)
	row("unknown_events", sum.Unknown)
	row("queries", sum.Queries)
	row("solid", sum.Solid)
	row("covered", sum.Covered)
	row("rounds", sum.Rounds)
	if sum.HasBudget {
		row("final_budget_left", sum.FinalBudget)
	}
	if sum.Queries > 0 {
		row("benefit_estimated", fmt.Sprintf("%.3f", sum.EstSum))
		row("benefit_realized", fmt.Sprintf("%.0f", sum.RealSum))
		row("benefit_mae", fmt.Sprintf("%.4f", sum.MAE()))
	}
	if len(sum.Ifaces) > 0 {
		row("ifaces", strings.Join(sum.Ifaces, ";"))
	}
	row("faults", sum.Faults)
	classes := make([]string, 0, len(sum.FaultClasses))
	for c := range sum.FaultClasses {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		row("faults_"+c, sum.FaultClasses[c])
	}
	row("retries", sum.Retries)
	row("rate_limited", sum.RateLimited)
	row("requeues", sum.Requeues)
	row("forfeits", sum.Forfeits)
	row("breaker_opens", sum.BreakerOpens)
	row("checkpoints", sum.Checkpoints)
	row("recoveries", sum.Recoveries)
	row("wal_appends", sum.WalAppends)
	if !s.stable {
		names := make([]string, 0, len(sum.PhaseMs))
		for n := range sum.PhaseMs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			row("phase_ms_"+n, sum.PhaseMs[n])
		}
		row("wall_ms", sum.WallMs)
	}
	w.Flush()
	return w.Error()
}

// exportRounds writes the round-by-round replay as CSV, one selection
// round per row (the pre-crawl pseudo-round 0 is omitted).
func (s *session) exportRounds() error {
	w := csv.NewWriter(s.stdout)
	w.Write([]string{"round", "size", "budget_left", "queries", "new_covered", "cum_covered", "solid", "faults", "requeues", "forfeits"})
	for _, r := range trace.Rounds(s.events) {
		if r.Index == 0 {
			continue
		}
		budget := ""
		if r.BudgetLeft >= 0 {
			budget = strconv.Itoa(r.BudgetLeft)
		}
		w.Write([]string{
			strconv.Itoa(r.Index), strconv.Itoa(r.Size), budget,
			strconv.Itoa(r.Queries), strconv.Itoa(r.NewCovered), strconv.Itoa(r.CumEnd),
			strconv.Itoa(r.Solid), strconv.Itoa(r.Faults), strconv.Itoa(r.Requeues), strconv.Itoa(r.Forfeits),
		})
	}
	w.Flush()
	return w.Error()
}

func (s *session) diff(otherPath string) error {
	other := &session{stable: s.stable, stdout: s.stdout, stderr: s.stderr}
	if err := other.load(otherPath); err != nil {
		return err
	}
	d := trace.Diff(s.events, other.events)
	w := s.stdout
	fmt.Fprintf(w, "A: %s (%d events, covered %d)\n", s.path, d.EventsA, d.CoveredA)
	fmt.Fprintf(w, "B: %s (%d events, covered %d)\n", other.path, d.EventsB, d.CoveredB)
	if d.Identical() {
		fmt.Fprintln(w, "traces are identical (modulo timestamps)")
		return nil
	}
	if d.FirstDiverge >= 0 {
		fmt.Fprintf(w, "first differing event: index %d\n", d.FirstDiverge)
		fmt.Fprintf(w, "  A: %s\n", d.CanonicalA)
		fmt.Fprintf(w, "  B: %s\n", d.CanonicalB)
	}
	if len(d.Rounds) > 0 {
		fmt.Fprintln(w, "per-round coverage:")
		for _, r := range d.Rounds {
			mark := ""
			if r.Round == d.FirstRoundDiverge {
				mark = "  <- first divergence"
			}
			line := fmt.Sprintf("  round %3d: A=%-5d B=%-5d%s", r.Round, r.CumA, r.CumB, mark)
			fmt.Fprintln(w, strings.TrimRight(line, " "))
		}
	}
	if d.FirstRoundDiverge > 0 {
		fmt.Fprintf(w, "coverage diverges at round %d\n", d.FirstRoundDiverge)
	} else {
		fmt.Fprintln(w, "per-round coverage never diverges")
	}
	return nil
}
