package main

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartcrawl/internal/dataset"
	"smartcrawl/internal/engine"
	"smartcrawl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runTool invokes the CLI in-process.
func runTool(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), code
}

// checkGolden compares got against testdata/<name>.golden, rewriting it
// under -update. goldenDir pins the testdata path before any t.Chdir.
var goldenDir = func() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}()

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

const sample = "testdata/sample.trace"

func TestSummaryGolden(t *testing.T) {
	out, _, code := runTool(t, "", sample, "summary")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "summary", out)
}

func TestFilterGolden(t *testing.T) {
	out, stderr, code := runTool(t, "", sample, "filter", "type=fault,breaker", "rounds=2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "3/18 events matched") {
		t.Errorf("stderr = %q", stderr)
	}
	checkGolden(t, "filter", out)
}

func TestFilterByQueryAndIface(t *testing.T) {
	out, _, code := runTool(t, "", sample, "filter", "q=keyword")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if got := strings.Count(out, "\n"); got != 4 { // rate_limit, fault, retry, query
		t.Errorf("q= filter matched %d lines:\n%s", got, out)
	}
	out, _, code = runTool(t, "", sample, "filter", "iface=dblp")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if got := strings.Count(out, "\n"); got != 1 {
		t.Errorf("iface= filter matched %d lines:\n%s", got, out)
	}
}

func TestTopGolden(t *testing.T) {
	out, _, code := runTool(t, "", sample, "top", "error", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "top", out)
}

func TestReplayGolden(t *testing.T) {
	out, _, code := runTool(t, "", sample, "replay")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "replay", out)
}

// TestExportSummaryGolden pins the CSV shape of export summary (-stable,
// so wall-clock rows are suppressed and the bytes are deterministic).
func TestExportSummaryGolden(t *testing.T) {
	out, _, code := runTool(t, "", "-stable", sample, "export", "summary")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "export_summary", out)
}

// TestExportRoundsGolden pins the per-round CSV.
func TestExportRoundsGolden(t *testing.T) {
	out, _, code := runTool(t, "", sample, "export", "rounds")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "export_rounds", out)
	if !strings.HasPrefix(out, "round,size,budget_left,") {
		t.Errorf("missing CSV header: %q", out)
	}
}

// TestExportEvents checks that export events applies filter's selectors
// and emits raw JSONL identical to the source lines.
func TestExportEvents(t *testing.T) {
	out, stderr, code := runTool(t, "", sample, "export", "events", "type=fault,breaker", "rounds=2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "3/18 events exported") {
		t.Errorf("stderr = %q", stderr)
	}
	raw, err := os.ReadFile(sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(string(raw), line) {
			t.Errorf("exported line not verbatim from trace: %q", line)
		}
	}

	_, stderr, code = runTool(t, "", sample, "export", "bogus")
	if code != 1 || !strings.Contains(stderr, "unknown export target") {
		t.Errorf("export bogus: code %d, stderr %q", code, stderr)
	}
}

// TestREPL drives the interactive loop: prompts go to stderr, command
// output to stdout, quit ends it.
func TestREPL(t *testing.T) {
	script := "summary\ntop realized 1\nbogus\nquit\n"
	out, stderr, code := runTool(t, script, "-stable", sample)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "tracetool> ") {
		t.Errorf("no prompt on stderr: %q", stderr)
	}
	if !strings.Contains(stderr, `unknown command "bogus"`) {
		t.Errorf("unknown command not reported: %q", stderr)
	}
	checkGolden(t, "repl", out)
}

func TestREPLLoad(t *testing.T) {
	script := "summary\nload " + sample + "\nsummary\n"
	out, stderr, code := runTool(t, script, "-stable")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "no trace loaded") {
		t.Errorf("bare summary did not complain: %q", stderr)
	}
	if !strings.Contains(out, "loaded testdata/sample.trace: 18 events") {
		t.Errorf("load output missing: %q", out)
	}
}

func TestBadArgs(t *testing.T) {
	if _, _, code := runTool(t, "", "testdata/absent.trace", "summary"); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	if _, _, code := runTool(t, "", sample, "filter", "weird"); code != 1 {
		t.Errorf("bad selector: exit %d", code)
	}
	if _, _, code := runTool(t, "", "-nope"); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

// genTrace runs a real seeded crawl in-process through the engine and
// writes its trace — the same wiring the smartcrawl CLI uses for -trace.
func genTrace(t *testing.T, dir, name, faults string) string {
	t.Helper()
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 4000, HiddenSize: 1200, LocalSize: 250, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	hiddenPath := filepath.Join(dir, name+"_hidden.csv")
	hf, err := os.Create(hiddenPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Hidden.WriteCSV(hf); err != nil {
		t.Fatal(err)
	}
	if err := hf.Close(); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, name+".trace")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(tf)
	o := obs.New()
	tr := obs.NewTracer(bw)
	o.SetTracer(tr)

	req := engine.Defaults()
	req.Local = in.Local
	req.Hidden = hiddenPath
	req.Budget = 48
	req.K = 50
	req.RankColumn = in.RankColumn
	req.Theta = 0.03
	req.Batch = 8
	req.Workers = 1
	req.Seed = 42
	req.Faults = faults
	req.FaultSeed = 5
	req.Retries = 1
	req.Obs = o
	if _, err := engine.Run(&req); err != nil {
		t.Fatalf("engine.Run(%s): %v", name, err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	return tracePath
}

// TestE2ECleanVsTransient10 is the executable form of the Resilience
// report's drill: the same seeded crawl, clean and under the transient10
// fault profile, diffed — tracetool must pinpoint where the degraded run
// falls behind. Golden-tested byte-for-byte under -stable.
func TestE2ECleanVsTransient10(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real crawls; skipped in -short")
	}
	dir := t.TempDir()
	genTrace(t, dir, "clean", "")
	genTrace(t, dir, "transient10", "transient10")
	t.Chdir(dir) // keep paths in golden output relative and stable

	sumClean, _, code := runTool(t, "", "-stable", "clean.trace", "summary")
	if code != 0 {
		t.Fatalf("summary clean: exit %d", code)
	}
	checkGolden(t, "e2e_summary_clean", sumClean)

	sumFaulty, _, code := runTool(t, "", "-stable", "transient10.trace", "summary")
	if code != 0 {
		t.Fatalf("summary transient10: exit %d", code)
	}
	checkGolden(t, "e2e_summary_transient10", sumFaulty)
	if !strings.Contains(sumFaulty, "faults:") {
		t.Errorf("faulty summary shows no faults:\n%s", sumFaulty)
	}

	diffOut, _, code := runTool(t, "", "-stable", "clean.trace", "diff", "transient10.trace")
	if code != 0 {
		t.Fatalf("diff: exit %d", code)
	}
	checkGolden(t, "e2e_diff", diffOut)
	if !strings.Contains(diffOut, "first differing event") {
		t.Errorf("diff found no divergence:\n%s", diffOut)
	}
	if !strings.Contains(diffOut, "<- first divergence") {
		t.Errorf("diff did not pinpoint the first divergent round:\n%s", diffOut)
	}

	// Replay of both runs must agree with the diff's per-round story.
	replayOut, _, code := runTool(t, "", "-stable", "transient10.trace", "replay")
	if code != 0 {
		t.Fatalf("replay: exit %d", code)
	}
	checkGolden(t, "e2e_replay_transient10", replayOut)

	// Determinism: regenerating the faulty trace yields an identical
	// canonical stream (the diff oracle the goldens rest on).
	again := genTrace(t, t.TempDir(), "transient10b", "transient10")
	rerun, _, code := runTool(t, "", "-stable", "transient10.trace", "diff", again)
	if code != 0 {
		t.Fatalf("determinism diff: exit %d", code)
	}
	if !strings.Contains(rerun, "traces are identical (modulo timestamps)") {
		t.Errorf("regenerated trace diverges from itself:\n%s", rerun)
	}
}
