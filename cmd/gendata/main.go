// Command gendata generates the synthetic datasets used throughout the
// reproduction: a DBLP-like publication corpus or a Yelp-like business
// table, written as CSV files (local table, hidden table, and the
// ground-truth mapping between them).
//
// Usage:
//
//	gendata -kind dblp -hidden 100000 -local 10000 -deltad 0 -errors 0 \
//	        -seed 42 -out ./data
//	gendata -kind yelp -hidden 36500 -local 3000 -drift 0.1 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"smartcrawl/internal/dataset"
)

func main() {
	var (
		kind    = flag.String("kind", "dblp", "dataset kind: dblp or yelp")
		hiddenN = flag.Int("hidden", 100000, "hidden database size |H|")
		localN  = flag.Int("local", 10000, "local database size |D|")
		deltaD  = flag.Int("deltad", 0, "records in D with no hidden counterpart")
		errRate = flag.Float64("errors", 0, "error%% as a fraction (DBLP)")
		drift   = flag.Float64("drift", 0, "drift rate as a fraction (Yelp)")
		corpus  = flag.Int("corpus", 0, "corpus size (DBLP; default 4x hidden)")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("out", ".", "output directory")
		format  = flag.String("format", "csv", "table format: csv or jsonl")
	)
	flag.Parse()

	var (
		in  *dataset.Instance
		err error
	)
	switch *kind {
	case "dblp":
		c := *corpus
		if c == 0 {
			c = 4 * *hiddenN
		}
		in, err = dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: c,
			HiddenSize: *hiddenN,
			LocalSize:  *localN,
			DeltaD:     *deltaD,
			ErrorRate:  *errRate,
			Seed:       *seed,
		})
	case "yelp":
		in, err = dataset.GenerateYelp(dataset.YelpConfig{
			HiddenSize: *hiddenN,
			LocalSize:  *localN,
			DriftRate:  *drift,
			DeltaD:     *deltaD,
			Seed:       *seed,
		})
	default:
		err = fmt.Errorf("unknown kind %q (want dblp or yelp)", *kind)
	}
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fatal(fmt.Errorf("writing %s: %w", path, err))
		}
		fmt.Printf("wrote %s\n", path)
	}
	switch *format {
	case "csv":
		write(*kind+"_local.csv", func(f *os.File) error { return in.Local.WriteCSV(f) })
		write(*kind+"_hidden.csv", func(f *os.File) error { return in.Hidden.WriteCSV(f) })
	case "jsonl":
		write(*kind+"_local.jsonl", func(f *os.File) error { return in.Local.WriteJSONL(f) })
		write(*kind+"_hidden.jsonl", func(f *os.File) error { return in.Hidden.WriteJSONL(f) })
	default:
		fatal(fmt.Errorf("unknown format %q (want csv or jsonl)", *format))
	}
	write(*kind+"_truth.csv", func(f *os.File) error {
		w := csv.NewWriter(f)
		if err := w.Write([]string{"local_id", "hidden_id"}); err != nil {
			return err
		}
		for d, h := range in.Truth {
			if err := w.Write([]string{strconv.Itoa(d), strconv.Itoa(h)}); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	})
	fmt.Printf("|D|=%d |H|=%d |ΔD|=%d\n", in.Local.Len(), in.Hidden.Len(), in.DeltaD)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
