// Command experiments regenerates the paper's tables and figures (§7) plus
// the ablations catalogued in DESIGN.md.
//
// Usage:
//
//	experiments [-scale 0.2] [-seed 42] [-seeds 3] [-csv dir] <subcommand>
//
// Subcommands:
//
//	table2        Table 2: running-example benefits
//	fig4          Figure 4: sampling ratio
//	fig5          Figure 5: local database size
//	fig6          Figure 6: top-k result limit
//	fig7          Figure 7: |ΔD| bias growth
//	fig8          Figure 8: fuzzy matching (error%)
//	fig9          Figure 9: Yelp-style real hidden database
//	bound         Lemma 2: QSel-Bound guarantee
//	estimators    Table 1 estimator accuracy
//	ablate-alpha  §6.2 inadequate-sample fallback
//	ablate-deltad §4.2 ΔD removal
//	ablate-heap   §6.3 lazy priority queue vs eager rescan
//	ablate-batch  batch-greedy concurrent selection (extension)
//	parallel      parallel crawl pipeline wall-clock vs workers (extension)
//	ablate-stem   Porter stemming under data errors (extension)
//	online        pay-as-you-go calibration, no upfront sample (extension)
//	form          form-based vs keyword interface (extension)
//	ranks         ranking-function sensitivity (Lemmas 4–5 claim)
//	omega         §5.3 ω=1 sensitivity analysis
//	faults        fault sweep: coverage retained under interface misbehaviour (extension)
//	federated     two-source federation with marginal-benefit budget allocation (extension)
//	health        health-scored allocation vs breaker-only under a sustained fault (extension)
//	durability    durability sweep: crash-safety cost and recovery equivalence (extension)
//	scale         out-of-core corpus: mapped index × shards equivalence sweep (extension)
//	headline      multi-seed coverage comparison with speedup factors
//	all           everything above
//
// -scale 1 runs at the paper's sizes (|H|=100k, |D|=10k) and takes
// minutes; the default 0.2 finishes quickly with the same shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smartcrawl/internal/experiment"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/profiling"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.2, "size multiplier relative to the paper's Table 3")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		seeds   = flag.Int("seeds", 3, "seeds averaged by the headline subcommand")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "crawl pipeline worker-pool size (ablate-batch, parallel)")
		latency = flag.Duration("latency", 5*time.Millisecond, "injected per-query latency (parallel)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <subcommand>  (see -h)")
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	p := experiment.Scaled(*scale)
	p.Seed = *seed
	p.Workers = *workers

	run := map[string]func() ([]*experiment.Table, error){
		"table2": one(func() (*experiment.Table, error) { return experiment.Table2RunningExample() }),
		"fig4":   func() ([]*experiment.Table, error) { return experiment.Figure4(p) },
		"fig5":   func() ([]*experiment.Table, error) { return experiment.Figure5(p) },
		"fig6":   func() ([]*experiment.Table, error) { return experiment.Figure6(p) },
		"fig7":   func() ([]*experiment.Table, error) { return experiment.Figure7(p) },
		"fig8":   func() ([]*experiment.Table, error) { return experiment.Figure8(p) },
		"fig9": one(func() (*experiment.Table, error) {
			pp := yelpParams(p)
			return experiment.Figure9(pp)
		}),
		"bound":         one(func() (*experiment.Table, error) { return experiment.BoundGuarantee(p) }),
		"estimators":    one(func() (*experiment.Table, error) { return experiment.EstimatorAccuracy(p) }),
		"ablate-alpha":  one(func() (*experiment.Table, error) { return experiment.AblateAlpha(p) }),
		"ablate-deltad": one(func() (*experiment.Table, error) { return experiment.AblateDeltaDRemoval(p) }),
		"ablate-heap":   one(func() (*experiment.Table, error) { return experiment.AblateHeap(p) }),
		"ablate-batch":  one(func() (*experiment.Table, error) { return experiment.AblateBatch(p) }),
		"parallel":      one(func() (*experiment.Table, error) { return experiment.ParallelCrawl(p, *latency) }),
		"ablate-stem":   one(func() (*experiment.Table, error) { return experiment.AblateStemming(p) }),
		"online":        one(func() (*experiment.Table, error) { return experiment.AblateOnline(p) }),
		"ranks":         one(func() (*experiment.Table, error) { return experiment.RankSensitivity(p) }),
		"form": one(func() (*experiment.Table, error) {
			return experiment.FormInterface(yelpParams(p))
		}),
		"omega":      one(func() (*experiment.Table, error) { return experiment.OmegaSensitivity(), nil }),
		"faults":     one(func() (*experiment.Table, error) { return experiment.FaultSweep(p) }),
		"federated":  one(func() (*experiment.Table, error) { return experiment.Federated(p) }),
		"health":     one(func() (*experiment.Table, error) { return experiment.HealthSweep(p) }),
		"durability": one(func() (*experiment.Table, error) { return experiment.DurabilitySweep(p) }),
		"scale":      one(func() (*experiment.Table, error) { return experiment.ScaleSweep(p) }),
		"headline":   one(func() (*experiment.Table, error) { return experiment.Headline(p, *seeds) }),
	}

	names := []string{cmd}
	if cmd == "all" {
		names = []string{"headline", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"bound", "estimators", "ablate-alpha", "ablate-deltad", "ablate-heap",
			"ablate-batch", "parallel", "ablate-stem", "online", "form", "ranks", "omega",
			"faults", "federated", "health", "durability", "scale"}
	}
	// Per-phase wall-clock: each subcommand is one obs phase, so `all`
	// ends with a table showing where the regeneration time went.
	o := obs.New()
	for _, name := range names {
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown subcommand %q\n", name)
			os.Exit(2)
		}
		stop := o.Phase(name)
		tables, err := fn()
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fmt.Sprintf("%s_%d", name, i), t); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
	}
	phases, durs := o.PhaseDurations()
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	for i, name := range phases {
		fmt.Fprintf(os.Stderr, "timing: %-14s %9.0fms\n", name, float64(durs[i])/float64(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "timing: %-14s %9.0fms\n", "total", float64(total)/float64(time.Millisecond))
}

// yelpParams derives the Figure-9 parameters from the DBLP-scaled ones:
// |H| ≈ 36.5k·scale, |D| = 3000·scale, k = 50, drifted names.
func yelpParams(p experiment.Params) experiment.Params {
	scale := float64(p.HiddenSize) / 100000
	pp := p
	pp.HiddenSize = int(36500 * scale)
	pp.LocalSize = int(3000 * scale)
	if pp.LocalSize < 50 {
		pp.LocalSize = 50
	}
	pp.K = 50
	pp.Budget = pp.LocalSize // the paper sweeps up to b = |D|
	pp.ErrorRate = 0.1       // observed dataset drift
	pp.Theta = 0.002         // the paper's 0.2% Yelp sample
	pp.JaccardThreshold = 0.5
	return pp
}

func one(fn func() (*experiment.Table, error)) func() ([]*experiment.Table, error) {
	return func() ([]*experiment.Table, error) {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		return []*experiment.Table{t}, nil
	}
}

func writeCSV(dir, name string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, sanitize(name)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
