// Command hiddenserver serves a CSV table as a hidden database: a top-k
// keyword-search HTTP API with optional request-rate limiting, so crawls
// can be exercised against a network interface exactly like a real deep
// website.
//
// Usage:
//
//	hiddenserver -table hidden.csv -k 50 -rank-column 3 -addr :8080 \
//	             -rate 10 -burst 100
//
// Endpoints:
//
//	GET /search?q=thai+noodle    top-k results as JSON
//	GET /healthz                 liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

func main() {
	var (
		tablePath = flag.String("table", "", "CSV file with the hidden table (header row first)")
		k         = flag.Int("k", 50, "top-k result limit")
		rankCol   = flag.Int("rank-column", -1, "numeric column to rank by (desc); -1 = hash ranking")
		ranked    = flag.Bool("non-conjunctive", false, "Yelp-style any-keyword matching")
		addr      = flag.String("addr", ":8080", "listen address")
		rate      = flag.Float64("rate", 0, "requests per second refill (0 = unlimited)")
		burst     = flag.Int("burst", 100, "rate-limiter burst capacity")
	)
	flag.Parse()
	if *tablePath == "" {
		fatal(fmt.Errorf("-table is required"))
	}

	f, err := os.Open(*tablePath)
	if err != nil {
		fatal(err)
	}
	table, err := relational.ReadCSV("hidden", f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	tk := tokenize.New()
	rank := hidden.RankByHash(1)
	if *rankCol >= 0 {
		rank = hidden.RankByNumericColumn(*rankCol)
	}
	mode := hidden.ModeConjunctive
	if *ranked {
		mode = hidden.ModeRanked
	}
	db := hidden.New(table, tk, *k, rank, mode)

	var limiter *httpapi.TokenBucket
	if *rate > 0 {
		limiter = httpapi.NewTokenBucket(*burst, *rate)
	}
	srv := httpapi.NewServer(db, tk, limiter)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight searches, then exit.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down…")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(done)
	}()

	fmt.Printf("serving %d records (k=%d) on %s\n", table.Len(), *k, *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hiddenserver:", err)
	os.Exit(1)
}
