// Command hiddenserver serves a CSV table as a hidden database: a top-k
// keyword-search HTTP API with optional request-rate limiting, so crawls
// can be exercised against a network interface exactly like a real deep
// website.
//
// Usage:
//
//	hiddenserver -table hidden.csv -k 50 -rank-column 3 -addr :8080 \
//	             -rate 10 -burst 100
//
// Endpoints:
//
//	GET /search?q=thai+noodle    top-k results as JSON
//	GET /healthz                 liveness
//	GET /stats                   request counters (legacy summary)
//	GET /metrics                 Prometheus text format (docs/METRICS.md)
//	GET /debug/vars              expvar: live query counters, latency
//	                             percentiles, memstats (JSON)
//	GET /debug/pprof/            pprof profiles (CPU, heap, goroutine, …)
//
// The debug endpoints serve the production-tuning loop: watch
// /debug/vars while a crawl fleet hammers /search, pull a CPU profile
// when latency percentiles move. Disable with -debug=false on exposed
// deployments.
//
// -fault-profile turns the server into a chaos fixture: it injects
// deterministic misbehaviour (504 timeouts, 503 outages, 429 bursts,
// silently truncated and stale pages) per a named preset or key=value
// spec, seeded by -fault-seed so every drill replays identically. See
// docs/OPERATIONS.md ("Fault injection") for the grammar and the client
// side of the drill.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/federate"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/obs/promexport"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

func main() {
	var (
		tablePath = flag.String("table", "", "CSV file with the hidden table (header row first)")
		k         = flag.Int("k", 50, "top-k result limit")
		rankCol   = flag.Int("rank-column", -1, "numeric column to rank by (desc); -1 = hash ranking")
		ranked    = flag.Bool("non-conjunctive", false, "Yelp-style any-keyword matching")
		addr      = flag.String("addr", ":8080", "listen address")
		rate      = flag.Float64("rate", 0, "requests per second refill (0 = unlimited)")
		burst     = flag.Int("burst", 100, "rate-limiter burst capacity")
		debug     = flag.Bool("debug", true, "serve /debug/vars (expvar) and /debug/pprof endpoints")
		faultSpec = flag.String("fault-profile", "", "inject deterministic faults: a preset ("+
			strings.Join(deepweb.FaultPresetNames(), "|")+") or a key=value spec, e.g. timeout=0.05,truncate=0.1")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the fault schedule (same seed+profile ⇒ same faults)")
		faultLat  = flag.Duration("fault-latency", 0, "extra latency added to every faulted attempt")
		profiles  = flag.String("profiles", "", "serve several interfaces from one process: specs separated by ';', key=value fields by ',' — "+
			"e.g. \"name=a,hidden=h1.csv,k=10;name=b,hidden=h2.csv,k=50,faults=transient10,rate=5\"; each mounts under /<name>/")
	)
	flag.Parse()
	if (*tablePath == "") == (*profiles == "") {
		fatal(fmt.Errorf("exactly one of -table and -profiles is required"))
	}
	if *k <= 0 {
		fatal(fmt.Errorf("-k must be >= 1"))
	}
	if *rate < 0 {
		fatal(fmt.Errorf("-rate must be >= 0"))
	}
	if *burst <= 0 {
		fatal(fmt.Errorf("-burst must be >= 1"))
	}

	tk := tokenize.New()
	o := obs.New()

	// Multi-profile mode: one process serves n independent interfaces,
	// each with its own table, k, ranking, fault profile, and server-side
	// rate limit, mounted under /<name>/ — the fixture a federated crawl
	// points its url= specs at.
	if *profiles != "" {
		specs, err := federate.ParseSpecs(*profiles)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		for i, sp := range specs {
			if sp.Name == "" {
				sp.Name = fmt.Sprintf("h%d", i+1)
			}
			if sp.URL != "" {
				fatal(fmt.Errorf("profile %q: url= makes no sense server-side; give hidden=", sp.Name))
			}
			backend, table, err := sp.BuildBackend(tk, o)
			if err != nil {
				fatal(err)
			}
			var limiter *httpapi.TokenBucket
			if sp.Rate > 0 {
				limiter = httpapi.NewTokenBucket(sp.Burst, sp.Rate)
			}
			psrv := httpapi.NewServer(backend, tk, limiter)
			psrv.SetObs(o)
			mux.Handle("/"+sp.Name+"/", http.StripPrefix("/"+sp.Name, psrv.Handler()))
			fmt.Printf("profile %s: %d records (k=%d) at /%s/", sp.Name, table.Len(), sp.K, sp.Name)
			if sp.Faults != "" {
				fmt.Printf(" faults=%s seed=%d", sp.Faults, sp.FaultSeed)
			}
			fmt.Println()
		}
		serve(*addr, *debug, o, mux)
		return
	}

	f, err := os.Open(*tablePath)
	if err != nil {
		fatal(err)
	}
	table, err := relational.ReadCSV("hidden", f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	rank := hidden.RankByHash(1)
	if *rankCol >= 0 {
		rank = hidden.RankByNumericColumn(*rankCol)
	}
	mode := hidden.ModeConjunctive
	if *ranked {
		mode = hidden.ModeRanked
	}
	db := hidden.New(table, tk, *k, rank, mode)

	var limiter *httpapi.TokenBucket
	if *rate > 0 {
		limiter = httpapi.NewTokenBucket(*burst, *rate)
	}
	var searcher deepweb.Searcher = db
	if *faultSpec != "" {
		p, err := deepweb.ParseFaultProfile(*faultSpec)
		if err != nil {
			fatal(err)
		}
		p.Seed = *faultSeed
		p.Latency = *faultLat
		searcher = deepweb.NewFaulty(searcher, p).WithObs(o)
		fmt.Fprintf(os.Stderr, "fault injection on: %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	srv := httpapi.NewServer(searcher, tk, limiter)
	srv.SetObs(o)

	fmt.Printf("serving %d records (k=%d)\n", table.Len(), *k)
	serve(*addr, *debug, o, srv.Handler())
}

// serve runs the HTTP server with the debug endpoints and graceful
// shutdown, blocking until SIGINT/SIGTERM drains it.
func serve(addr string, debug bool, o *obs.Obs, handler http.Handler) {
	if debug {
		// Live query counters under /debug/vars, CPU/heap/goroutine
		// profiles under /debug/pprof/. Registered on an explicit mux —
		// nothing leaks onto http.DefaultServeMux.
		expvar.Publish("hiddenserver", expvar.Func(func() any { return o.Snapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/metrics", promexport.Handler(func(c *promexport.Collection) { c.CollectObs(o) }))
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// Defensive server limits: a stalled or malicious client must not pin
	// a connection (and its goroutine) forever, and headers are bounded so
	// a garbage request cannot balloon memory. WriteTimeout leaves room
	// for the slowest search plus injected fault latency.
	hs := &http.Server{
		Handler:        handler,
		ReadTimeout:    10 * time.Second,
		WriteTimeout:   30 * time.Second,
		IdleTimeout:    2 * time.Minute,
		MaxHeaderBytes: 1 << 20,
	}

	// Bind explicitly before announcing readiness, and print the bound
	// address: with -addr :0 the kernel picks a free port and callers
	// (tests, scripts) read it from this line instead of racing to
	// reserve one themselves.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight searches, then exit.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down…")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(done)
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hiddenserver:", err)
	os.Exit(1)
}
