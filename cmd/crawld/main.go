// Command crawld is the enrichment service: a long-running daemon that
// accepts crawl jobs over HTTP and runs many Algorithm-4 crawls
// concurrently over one durable engine.
//
// Usage:
//
//	crawld -data /var/lib/crawld -addr :9090 -workers 4 \
//	       -queue-cap 64 -tenant-budget 10000 -tenant-rate 5
//
// A job is a smartcrawl invocation submitted as JSON: the local table
// (inline CSV, or a server path with -allow-local-backends), a target
// interface (url=, or hidden=/interfaces= with -allow-local-backends),
// a lifetime budget, and the usual knobs. Clients poll GET /jobs/{id},
// stream progress from /jobs/{id}/events (JSONL), and fetch the enriched
// table from /jobs/{id}/result. See docs/OPERATIONS.md ("Running
// crawld") for the full API and lifecycle.
//
// Every job owns a WAL + snapshot pair under -data, so the daemon
// survives any crash — including SIGKILL mid-crawl — without losing an
// accepted job: the startup recovery scan re-queues unfinished jobs and
// each crawl resumes from its journal, completing byte-identical to an
// uninterrupted run. SIGTERM drains gracefully: no new jobs are
// admitted, running crawls checkpoint at their next round boundary, and
// interrupted jobs are handed to the next start. A second signal aborts
// hard (exit 130).
//
// Per-job crawl metrics, queue gauges, and tenant accounting are
// published at /debug/vars (expvar JSON) and GET /metrics (Prometheus
// text format — see docs/METRICS.md); /debug/pprof serves profiles.
// Disable all three with -debug=false on exposed deployments.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartcrawl/internal/durable"
	"smartcrawl/internal/jobs"
	"smartcrawl/internal/obs/promexport"
)

func main() {
	var (
		addr         = flag.String("addr", ":9090", "listen address (:0 picks a free port, printed at startup)")
		dataDir      = flag.String("data", "", "data directory: job specs, WALs, checkpoints, results (required)")
		workers      = flag.Int("workers", 2, "concurrent crawl jobs")
		queueCap     = flag.Int("queue-cap", 64, "max accepted-but-unfinished jobs; beyond it submissions get 429 + Retry-After")
		tenantBudget = flag.Int("tenant-budget", 0, "lifetime query budget per tenant across all its jobs (0 = unlimited)")
		tenantRate   = flag.Float64("tenant-rate", 0, "job submissions per second per tenant (0 = unpaced)")
		tenantBurst  = flag.Int("tenant-burst", 5, "per-tenant submission burst (with -tenant-rate)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on transient 429s")
		minDiskFree  = flag.Int64("min-disk-free", 0, "shed submissions (503 + Retry-After) while the data filesystem has fewer free bytes than this (0 = no check)")
		eventBuffer  = flag.Int("event-buffer", 0, "max buffered step events per job before the oldest are evicted (0 = default 8192, negative = unbounded)")
		allowLocal   = flag.Bool("allow-local-backends", false, "permit job specs that read server-side files (local_path, hidden= backends)")
		debug        = flag.Bool("debug", true, "serve /debug/vars (expvar) and /debug/pprof endpoints")
	)
	flag.Parse()

	// Validate every flag before touching the filesystem.
	if *dataDir == "" {
		fatal(errors.New("-data is required"))
	}
	if *workers < 1 {
		fatal(errors.New("-workers must be >= 1"))
	}
	if *queueCap < 1 {
		fatal(errors.New("-queue-cap must be >= 1"))
	}
	if *tenantBudget < 0 {
		fatal(errors.New("-tenant-budget must be >= 0"))
	}
	if *tenantRate < 0 {
		fatal(errors.New("-tenant-rate must be >= 0"))
	}
	if *tenantBurst < 1 {
		fatal(errors.New("-tenant-burst must be >= 1"))
	}
	if *retryAfter < 0 {
		fatal(errors.New("-retry-after must be >= 0"))
	}
	if *minDiskFree < 0 {
		fatal(errors.New("-min-disk-free must be >= 0"))
	}
	if cp := os.Getenv(durable.CrashEnv); cp != "" {
		if _, err := durable.ParseCrashPoint(cp); err != nil {
			fatal(err)
		}
	}

	// Bind before opening the job store: a port conflict must fail fast,
	// not after the recovery scan has re-queued work. With -addr :0 the
	// printed line is how callers learn the port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	mgr, err := jobs.Open(jobs.Config{
		Dir:          *dataDir,
		Workers:      *workers,
		QueueCap:     *queueCap,
		TenantBudget: *tenantBudget,
		TenantRate:   *tenantRate,
		TenantBurst:  *tenantBurst,
		RetryAfter:   *retryAfter,
		MinDiskFree:  *minDiskFree,
		EventBuffer:  *eventBuffer,
		AllowLocal:   *allowLocal,
		Log:          os.Stderr,
		CrashPoint:   os.Getenv(durable.CrashEnv),
	})
	if err != nil {
		ln.Close()
		fatal(err)
	}

	handler := jobs.NewServer(mgr).Handler()
	if *debug {
		expvar.Publish("crawld", expvar.Func(func() any { return mgr.MetricsSnapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/metrics", promexport.Handler(mgr.CollectProm))
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// No WriteTimeout: /jobs/{id}/events legitimately streams for the
	// whole life of a job. Read/idle/header limits still bound abuse.
	hs := &http.Server{
		Handler:        handler,
		ReadTimeout:    30 * time.Second,
		IdleTimeout:    2 * time.Minute,
		MaxHeaderBytes: 1 << 20,
	}
	fmt.Printf("crawld listening on %s\n", ln.Addr())

	// Shutdown ordering: mark the manager draining first (submissions get
	// 503 immediately), interrupt and park every crawl (their state is
	// checkpointed and interrupted jobs re-queued on disk), and only then
	// shut the HTTP server down — Drain also releases any /events
	// streamers that would otherwise hold Shutdown open. A second signal
	// aborts hard.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "crawld: draining (repeat signal to abort)")
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "crawld: aborted")
			os.Exit(130)
		}()
		mgr.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(done)
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
	fmt.Fprintln(os.Stderr, "crawld: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crawld:", err)
	os.Exit(1)
}
