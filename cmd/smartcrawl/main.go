// Command smartcrawl runs a budgeted data-enrichment crawl from the
// command line: local CSV in, enriched CSV out. The hidden database is
// either a local CSV served through the in-process simulator or a remote
// hiddenserver endpoint.
//
// Usage:
//
//	smartcrawl -local mine.csv -hidden yelp.csv -budget 500 -k 50 \
//	           -theta 0.005 -enrich rating -out enriched.csv
//	smartcrawl -local mine.csv -url http://localhost:8080 -budget 500 \
//	           -sample-target 200 -enrich rating -out enriched.csv
//
// Against slow remote interfaces, -workers N overlaps N query round-trips
// per selection round (results are deterministic for any worker count at a
// fixed -batch; see DESIGN.md §5 "Concurrency model").
//
// -faults runs the crawl as a chaos drill over a deterministically
// misbehaving interface, with the resilience stack engaged (-retries,
// -max-attempts requeue/forfeit, -breaker) and a one-line resilience
// report at the end; -trace captures the whole degraded session as JSONL.
//
// -checkpoint makes the crawl resumable across quota windows; adding -wal
// makes it crash-safe: every absorbed query is journaled before the next
// is charged, the journal is compacted into the checkpoint every
// -autosave steps, SIGINT/SIGTERM drains in-flight queries and saves a
// resumable state, and even a SIGKILL loses at most one in-flight record.
// -checkpoint-inspect prints what a checkpoint + journal pair holds
// without crawling. docs/OPERATIONS.md is the operator runbook for all of
// it.
//
// The crawl itself — interface assembly, politeness stack, durability,
// enrichment — lives in internal/engine, shared with the crawld daemon:
// a job submitted to crawld and a smartcrawl invocation with the same
// inputs produce byte-identical outputs.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smartcrawl"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/engine"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/profiling"
)

func main() {
	var (
		localPath  = flag.String("local", "", "local table CSV (required)")
		hiddenPath = flag.String("hidden", "", "hidden table CSV (simulated interface)")
		url        = flag.String("url", "", "hiddenserver base URL (remote interface)")
		interfaces = flag.String("interfaces", "", "federated crawl over several interfaces sharing the budget: specs separated by ';', "+
			"key=value fields by ',' — e.g. \"name=a,hidden=h1.csv,k=10;name=b,url=http://localhost:8081,faults=transient10,breaker=5\"")
		budget      = flag.Int("budget", 100, "query budget b")
		k           = flag.Int("k", 50, "top-k limit (simulated interface)")
		rankCol     = flag.Int("rank-column", -1, "ranking column (simulated interface)")
		theta       = flag.Float64("theta", 0.005, "sampling ratio (simulated interface)")
		sampleTgt   = flag.Int("sample-target", 200, "sample size target (remote interface)")
		strategy    = flag.String("strategy", "smart", "smart | simple | online | naive | full")
		fuzzy       = flag.Float64("fuzzy", 0, "Jaccard threshold for fuzzy matching (0 = exact)")
		enrichCols  = flag.String("enrich", "", "comma-separated hidden columns to append (names)")
		outPath     = flag.String("out", "", "output CSV (default: stdout)")
		checkpoint  = flag.String("checkpoint", "", "crawl checkpoint file: resumed if present, written after the run (smart/simple strategies)")
		wal         = flag.String("wal", "", "write-ahead journal file (with -checkpoint): makes the crawl crash-safe — every absorbed query is durable before the next is charged")
		autosave    = flag.Int("autosave", durable.DefaultEvery, "journal→checkpoint compaction cadence in absorbed queries (with -checkpoint); 0 saves only at exit")
		walSync     = flag.String("wal-sync", durable.SyncCompact, "journal fsync policy: always | round | compact (crash durability never needs fsync; this guards power loss)")
		inspect     = flag.Bool("checkpoint-inspect", false, "print what -checkpoint (and -wal) hold, then exit without crawling")
		workers     = flag.Int("workers", 1, "concurrent query workers (smart/simple/online strategies); >1 overlaps round-trips")
		corpusCache = flag.String("corpus-cache", "", "on-disk corpus index for -local: built (streaming, bounded memory) if missing, then memory-mapped — selection runs out-of-core with byte-identical results")
		shards      = flag.Int("shards", 0, "record shards for parallel selection-state removal (with large -local tables); byte-identical results at any value, 0/1 = sequential")
		poolSample  = flag.Int("pool-sample", 0, "mine the query pool over a reservoir sample of N records with exact support recounting against -corpus-cache (0 = mine the full table)")
		batchSize   = flag.Int("batch", 0, "queries selected per round (default: -workers); >1 trades a little coverage for wall-clock")
		seed        = flag.Uint64("seed", 42, "seed")
		tracePath   = flag.String("trace", "", "write a JSONL session trace (query/round/retry/rate-limit/checkpoint/phase events) to this file")
		metrics     = flag.Bool("metrics", false, "print an end-of-run metrics summary to stderr (implied by -trace)")
		rate        = flag.Float64("rate", 0, "client-side polite request rate, queries/sec (0 = unpaced); throttled queries are retried with backoff")
		burst       = flag.Int("burst", 10, "client-side token-bucket burst capacity (with -rate)")
		retries     = flag.Int("retries", 5, "transient-failure retries per query (rate-limit waits, network blips)")
		faults      = flag.String("faults", "", "chaos drill: inject deterministic faults into the search path — a preset ("+
			strings.Join(deepweb.FaultPresetNames(), "|")+") or a key=value spec (e.g. timeout=0.05,truncate=0.1)")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed of the injected fault schedule (with -faults)")
		maxAttempts = flag.Int("max-attempts", 0, "failed queries are re-queued up to N times before being forfeited (0 = fail fast; defaults to 3 with -faults)")
		breakerN    = flag.Int("breaker", -1, "circuit-breaker consecutive-failure threshold; 0 disables (default: 5 with -faults, else off)")
		deadline    = flag.Duration("deadline", 0, "end-to-end wall-clock budget for the crawl: selection stops when it expires, interrupted queries are forfeited with their budget refunded (0 = none)")
		queryTO     = flag.Duration("query-timeout", 0, "per-attempt timeout on each dispatched search (0 = none)")
		retryBudget = flag.Float64("retry-budget", 0, "cap requeues at this ratio of dispatches — a Finagle-style retry token bucket prevents retry storms (0 = uncapped)")
		health      = flag.Bool("health", false, "score each -interfaces member by EWMA success health, scale allocation bids by it, and probe degraded interfaces for recovery")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	// Inspect mode reads the durability files and exits — the only
	// filesystem access it needs is the files being inspected.
	if *inspect {
		if *checkpoint == "" {
			fatal(fmt.Errorf("-checkpoint-inspect requires -checkpoint"))
		}
		inspectCheckpoint(*checkpoint, *wal)
		return
	}

	// Validate every flag before touching the filesystem: a misuse error
	// must not depend on which files happen to exist, and must never
	// surface after state has been opened or mutated.
	if *localPath == "" {
		fatal(fmt.Errorf("-local is required"))
	}
	req := &engine.Request{
		Hidden:       *hiddenPath,
		URL:          *url,
		Interfaces:   *interfaces,
		Budget:       *budget,
		K:            *k,
		RankColumn:   *rankCol,
		Theta:        *theta,
		SampleTarget: *sampleTgt,
		Strategy:     *strategy,
		Fuzzy:        *fuzzy,
		Checkpoint:   *checkpoint,
		WAL:          *wal,
		Autosave:     *autosave,
		WALSync:      *walSync,
		Workers:      *workers,
		Batch:        *batchSize,
		Seed:         *seed,
		CorpusCache:  *corpusCache,
		Shards:       *shards,
		PoolSample:   *poolSample,
		Rate:         *rate,
		Burst:        *burst,
		Retries:      *retries,
		Faults:       *faults,
		FaultSeed:    *faultSeed,
		MaxAttempts:  *maxAttempts,
		Breaker:      *breakerN,
		Deadline:     *deadline,
		QueryTimeout: *queryTO,
		RetryBudget:  *retryBudget,
		Health:       *health,
		Log:          os.Stderr,
		CrashPoint:   os.Getenv(durable.CrashEnv),
	}
	if *enrichCols != "" {
		req.EnrichColumns = strings.Split(*enrichCols, ",")
	}
	local, err := engine.LoadTable(*localPath, "local")
	if err != nil {
		fatal(err)
	}
	req.Local = local
	if err := req.Validate(); err != nil {
		fatal(cliError(err))
	}

	stopProfiles, profErr := profiling.Start(*cpuProfile, *memProfile)
	if profErr != nil {
		fatal(profErr)
	}
	defer stopProfiles()

	// Observability: -trace records the session as JSONL, -metrics prints
	// the end-of-run summary. Disabled (nil sink) when neither is set, so
	// the default path pays one branch per hook.
	var tracer *obs.Tracer
	if *tracePath != "" || *metrics {
		req.Obs = obs.New()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			tracer = obs.NewTracer(bufio.NewWriter(f))
			req.Obs.SetTracer(tracer)
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops selection at the
	// next round boundary and drains in-flight queries — every charged
	// query's outcome is kept and saved; a second signal aborts hard.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req.Context = ctx
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "smartcrawl: interrupt — draining in-flight queries (repeat to abort)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "smartcrawl: aborted")
		os.Exit(130)
	}()

	out, err := engine.Run(req)
	if err != nil {
		fatal(cliError(err))
	}
	if out.Interrupted {
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted: state saved — resumable with -checkpoint %s\n", *checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "interrupted: no -checkpoint set, crawl progress not saved")
		}
	}

	// End-of-run observability: summary to stderr, trace flushed to disk.
	if req.Obs != nil {
		req.Obs.WriteSummary(os.Stderr)
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: trace incomplete: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
		}
	}

	dst := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := engine.WriteTable(dst, out.Local, strings.HasSuffix(*outPath, ".jsonl")); err != nil {
		fatal(err)
	}
}

// cliError rewrites engine-level misuse messages in terms of the flags
// the user actually typed.
func cliError(err error) error {
	msg := err.Error()
	for _, r := range [][2]string{
		{"engine: exactly one of Hidden and URL is required", "exactly one of -hidden or -url is required"},
		{"engine: Interfaces replaces Hidden/URL", "-interfaces replaces -hidden/-url"},
		{"engine: federated crawls take faults/rate/breaker per interface (inside the spec)", "-interfaces crawls take faults/rate/breaker per interface (inside the spec)"},
		{"engine: checkpoints support the smart/simple/online strategies", "-checkpoint supports the smart/simple/online strategies"},
		{"engine: federation supports the smart/simple/online strategies", "-interfaces supports the smart/simple/online strategies"},
		{"engine: Workers must be >= 1", "-workers must be >= 1"},
		{"engine: Batch must be >= 0", "-batch must be >= 0"},
		{"engine: Budget must be >= 0", "-budget must be >= 0"},
		{"engine: Retries must be >= 0", "-retries must be >= 0"},
		{"engine: Rate must be >= 0", "-rate must be >= 0"},
		{"engine: WAL requires Checkpoint (the journal compacts into it)", "-wal requires -checkpoint (the journal compacts into it)"},
		{"engine: WALSync must be", "-wal-sync must be"},
		{"engine: Autosave must be >= 0", "-autosave must be >= 0"},
		{"engine: Deadline must be >= 0", "-deadline must be >= 0"},
		{"engine: QueryTimeout must be >= 0", "-query-timeout must be >= 0"},
		{"engine: RetryBudget must be >= 0", "-retry-budget must be >= 0"},
		{"engine: Health scoring requires a federated crawl (Interfaces)", "-health requires -interfaces"},
		{"engine: Shards must be >= 0", "-shards must be >= 0"},
		{"engine: PoolSample must be >= 0", "-pool-sample must be >= 0"},
		{"engine: PoolSample requires CorpusCache (exact supports are recounted against its index)", "-pool-sample requires -corpus-cache (exact supports are recounted against its index)"},
	} {
		if strings.HasPrefix(msg, r[0]) {
			return fmt.Errorf("%s%s", r[1], strings.TrimPrefix(msg, r[0]))
		}
	}
	return err
}

// inspectCheckpoint prints what a checkpoint (and optional journal) pair
// holds, in grep-friendly key=value lines, without crawling or modifying
// either file.
func inspectCheckpoint(snapshot, journal string) {
	rec, err := smartcrawl.RecoverCrawl(snapshot, journal, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot=%s loaded=%t snapshot_seq=%d\n", snapshot, rec.SnapshotLoaded, rec.SnapshotSeq)
	if journal != "" {
		fmt.Printf("journal=%s records=%d last_seq=%d torn_tail=%t\n",
			journal, rec.JournalRecords, rec.LastSeq, rec.TornTail)
	}
	if rec.Result == nil {
		fmt.Println("state=empty")
		return
	}
	res := rec.Result
	fmt.Printf("queries_issued=%d covered_count=%d charged=%d local_len=%d steps=%d\n",
		res.QueriesIssued, res.CoveredCount, rec.Charged, rec.LocalLen, len(res.Steps))
	fmt.Printf("pending=%d\n", len(rec.Pending))
	for _, p := range rec.Pending {
		fmt.Printf("pending_query=%q benefit=%g\n", p.Query.Key(), p.Benefit)
	}
	if res.Resilience != nil {
		fmt.Println(res.Resilience.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartcrawl:", err)
	os.Exit(1)
}
