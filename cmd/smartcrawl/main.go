// Command smartcrawl runs a budgeted data-enrichment crawl from the
// command line: local CSV in, enriched CSV out. The hidden database is
// either a local CSV served through the in-process simulator or a remote
// hiddenserver endpoint.
//
// Usage:
//
//	smartcrawl -local mine.csv -hidden yelp.csv -budget 500 -k 50 \
//	           -theta 0.005 -enrich rating -out enriched.csv
//	smartcrawl -local mine.csv -url http://localhost:8080 -budget 500 \
//	           -sample-target 200 -enrich rating -out enriched.csv
//
// Against slow remote interfaces, -workers N overlaps N query round-trips
// per selection round (results are deterministic for any worker count at a
// fixed -batch; see DESIGN.md §5 "Concurrency model").
//
// -faults runs the crawl as a chaos drill over a deterministically
// misbehaving interface, with the resilience stack engaged (-retries,
// -max-attempts requeue/forfeit, -breaker) and a one-line resilience
// report at the end; -trace captures the whole degraded session as JSONL.
//
// -checkpoint makes the crawl resumable across quota windows; adding -wal
// makes it crash-safe: every absorbed query is journaled before the next
// is charged, the journal is compacted into the checkpoint every
// -autosave steps, SIGINT/SIGTERM drains in-flight queries and saves a
// resumable state, and even a SIGKILL loses at most one in-flight record.
// -checkpoint-inspect prints what a checkpoint + journal pair holds
// without crawling. docs/OPERATIONS.md is the operator runbook for all of
// it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartcrawl"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/profiling"
	"smartcrawl/internal/relational"
)

func main() {
	var (
		localPath  = flag.String("local", "", "local table CSV (required)")
		hiddenPath = flag.String("hidden", "", "hidden table CSV (simulated interface)")
		url        = flag.String("url", "", "hiddenserver base URL (remote interface)")
		interfaces = flag.String("interfaces", "", "federated crawl over several interfaces sharing the budget: specs separated by ';', "+
			"key=value fields by ',' — e.g. \"name=a,hidden=h1.csv,k=10;name=b,url=http://localhost:8081,faults=transient10,breaker=5\"")
		budget     = flag.Int("budget", 100, "query budget b")
		k          = flag.Int("k", 50, "top-k limit (simulated interface)")
		rankCol    = flag.Int("rank-column", -1, "ranking column (simulated interface)")
		theta      = flag.Float64("theta", 0.005, "sampling ratio (simulated interface)")
		sampleTgt  = flag.Int("sample-target", 200, "sample size target (remote interface)")
		strategy   = flag.String("strategy", "smart", "smart | simple | online | naive | full")
		fuzzy      = flag.Float64("fuzzy", 0, "Jaccard threshold for fuzzy matching (0 = exact)")
		enrichCols = flag.String("enrich", "", "comma-separated hidden columns to append (names)")
		outPath    = flag.String("out", "", "output CSV (default: stdout)")
		checkpoint = flag.String("checkpoint", "", "crawl checkpoint file: resumed if present, written after the run (smart/simple strategies)")
		wal        = flag.String("wal", "", "write-ahead journal file (with -checkpoint): makes the crawl crash-safe — every absorbed query is durable before the next is charged")
		autosave   = flag.Int("autosave", durable.DefaultEvery, "journal→checkpoint compaction cadence in absorbed queries (with -checkpoint); 0 saves only at exit")
		walSync    = flag.String("wal-sync", durable.SyncCompact, "journal fsync policy: always | round | compact (crash durability never needs fsync; this guards power loss)")
		inspect    = flag.Bool("checkpoint-inspect", false, "print what -checkpoint (and -wal) hold, then exit without crawling")
		workers    = flag.Int("workers", 1, "concurrent query workers (smart/simple/online strategies); >1 overlaps round-trips")
		batchSize  = flag.Int("batch", 0, "queries selected per round (default: -workers); >1 trades a little coverage for wall-clock")
		seed       = flag.Uint64("seed", 42, "seed")
		tracePath  = flag.String("trace", "", "write a JSONL session trace (query/round/retry/rate-limit/checkpoint/phase events) to this file")
		metrics    = flag.Bool("metrics", false, "print an end-of-run metrics summary to stderr (implied by -trace)")
		rate       = flag.Float64("rate", 0, "client-side polite request rate, queries/sec (0 = unpaced); throttled queries are retried with backoff")
		burst      = flag.Int("burst", 10, "client-side token-bucket burst capacity (with -rate)")
		retries    = flag.Int("retries", 5, "transient-failure retries per query (rate-limit waits, network blips)")
		faults     = flag.String("faults", "", "chaos drill: inject deterministic faults into the search path — a preset ("+
			strings.Join(deepweb.FaultPresetNames(), "|")+") or a key=value spec (e.g. timeout=0.05,truncate=0.1)")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed of the injected fault schedule (with -faults)")
		maxAttempts = flag.Int("max-attempts", 0, "failed queries are re-queued up to N times before being forfeited (0 = fail fast; defaults to 3 with -faults)")
		breakerN    = flag.Int("breaker", -1, "circuit-breaker consecutive-failure threshold; 0 disables (default: 5 with -faults, else off)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	// Inspect mode reads the durability files and exits — the only
	// filesystem access it needs is the files being inspected.
	if *inspect {
		if *checkpoint == "" {
			fatal(fmt.Errorf("-checkpoint-inspect requires -checkpoint"))
		}
		inspectCheckpoint(*checkpoint, *wal)
		return
	}

	// Validate every flag before touching the filesystem: a misuse error
	// must not depend on which files happen to exist, and must never
	// surface after state has been opened or mutated.
	if *localPath == "" {
		fatal(fmt.Errorf("-local is required"))
	}
	var fedSpecs []smartcrawl.InterfaceSpec
	if *interfaces != "" {
		// Federated mode: every interface knob (backend, k, sample,
		// faults, rate, retries, breaker) lives in the spec; the
		// single-interface flags covering the same ground must stay unset.
		if *hiddenPath != "" || *url != "" {
			fatal(fmt.Errorf("-interfaces replaces -hidden/-url"))
		}
		if *faults != "" || *rate > 0 || *breakerN >= 0 {
			fatal(fmt.Errorf("-interfaces crawls take faults/rate/breaker per interface (inside the spec)"))
		}
		var err error
		fedSpecs, err = smartcrawl.ParseInterfaceSpecs(*interfaces)
		if err != nil {
			fatal(err)
		}
	} else if (*hiddenPath == "") == (*url == "") {
		fatal(fmt.Errorf("exactly one of -hidden or -url is required"))
	}
	switch *strategy {
	case "smart", "simple", "online":
	case "naive", "full":
		if *checkpoint != "" {
			fatal(fmt.Errorf("-checkpoint supports the smart/simple/online strategies"))
		}
		if *interfaces != "" {
			fatal(fmt.Errorf("-interfaces supports the smart/simple/online strategies"))
		}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if *workers < 1 {
		fatal(fmt.Errorf("-workers must be >= 1"))
	}
	if *wal != "" && *checkpoint == "" {
		fatal(fmt.Errorf("-wal requires -checkpoint (the journal compacts into it)"))
	}
	switch *walSync {
	case durable.SyncAlways, durable.SyncRound, durable.SyncCompact:
	default:
		fatal(fmt.Errorf("-wal-sync must be %s, %s, or %s", durable.SyncAlways, durable.SyncRound, durable.SyncCompact))
	}
	if *autosave < 0 {
		fatal(fmt.Errorf("-autosave must be >= 0"))
	}

	stopProfiles, profErr := profiling.Start(*cpuProfile, *memProfile)
	if profErr != nil {
		fatal(profErr)
	}
	defer stopProfiles()

	// Observability: -trace records the session as JSONL, -metrics prints
	// the end-of-run summary. Disabled (nil sink) when neither is set, so
	// the default path pays one branch per hook.
	var (
		o      *obs.Obs
		tracer *obs.Tracer
	)
	if *tracePath != "" || *metrics {
		o = obs.New()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			tracer = obs.NewTracer(bufio.NewWriter(f))
			o.SetTracer(tracer)
		}
	}

	tk := smartcrawl.NewTokenizer()
	local := readTable(*localPath, "local")

	// Assemble the search interface, the sample, and the hidden schema.
	var (
		searcher     smartcrawl.Searcher
		smp          *smartcrawl.Sample
		hiddenSchema []string
		hiddenTable  *relational.Table
		fed          *smartcrawl.Federation
	)
	if fedSpecs != nil {
		var err error
		fed, err = smartcrawl.BuildInterfaces(fedSpecs, local, tk, o)
		if err != nil {
			fatal(err)
		}
		hiddenSchema = fed.HiddenSchema()
		for _, t := range fed.Tables {
			if t != nil {
				hiddenTable = t
				break
			}
		}
		fmt.Fprintf(os.Stderr, "federation: %d interfaces (%s)\n",
			len(fed.Ifaces), strings.Join(fed.Registry.Names(), ", "))
	} else if *hiddenPath != "" {
		hiddenTable = readTable(*hiddenPath, "hidden")
		hiddenSchema = hiddenTable.Schema
		searcher = smartcrawl.NewHiddenDatabase(hiddenTable, tk, smartcrawl.HiddenOptions{
			K: *k, RankColumn: *rankCol,
		})
		smp = smartcrawl.BernoulliSample(hiddenTable, *theta, *seed)
	} else {
		client := &httpapi.Client{BaseURL: *url, Retries: 5}
		pool := smartcrawl.SingleKeywordPool(local, tk)
		if len(pool) == 0 {
			fatal(fmt.Errorf("local table has no indexable keywords"))
		}
		if err := client.Probe(pool[0]); err != nil {
			fatal(fmt.Errorf("probing %s: %w", *url, err))
		}
		stopSample := o.Phase("keyword_sample")
		var err error
		smp, err = smartcrawl.KeywordSample(client, pool, tk, smartcrawl.KeywordSampleConfig{
			Target: *sampleTgt, Seed: *seed,
		})
		stopSample()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: sampling incomplete: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "sample: %d records, θ̂=%.4f%%, %d queries spent\n",
			smp.Len(), 100*smp.Theta, smp.QueriesSpent)
		searcher = client
		if smp.Len() > 0 {
			hiddenSchema = make([]string, len(smp.Records[0].Values))
			for i := range hiddenSchema {
				hiddenSchema[i] = fmt.Sprintf("col%d", i)
			}
		}
	}

	// Chaos drill: -faults injects deterministic misbehaviour (timeouts,
	// 5xx, 429 bursts, truncation, staleness) into the search path so the
	// degradation machinery below can be exercised and replayed from its
	// seed. Injected inside the politeness stack, where a real flaky
	// interface would sit.
	if *faults != "" {
		p, err := deepweb.ParseFaultProfile(*faults)
		if err != nil {
			fatal(err)
		}
		p.Seed = *faultSeed
		searcher = deepweb.NewFaulty(searcher, p).WithObs(o)
	}

	// Client-side politeness: a token bucket paces the whole crawl below
	// -rate regardless of -workers, and a retrying layer outside it waits
	// transient failures out with exponential backoff (so a denial or an
	// injected blip costs a wait, not the crawl). All layers report into
	// the observability sink.
	if *rate > 0 {
		searcher = &deepweb.Limited{
			S:   searcher,
			B:   deepweb.NewBucket(*burst, *rate),
			Obs: o,
		}
	}
	if *retries > 0 && (*rate > 0 || *faults != "") {
		searcher = &deepweb.Retrying{
			S:       searcher,
			Retries: *retries,
			Backoff: deepweb.ExponentialBackoff(200*time.Millisecond, 5*time.Second),
			Obs:     o,
		}
	}

	// Entity matching compares the schema-aligned columns: hidden rows
	// carry enrichment attributes the local side lacks, so full-document
	// comparison would never match.
	var localCols, hiddenCols []int
	if hiddenTable != nil {
		m := smartcrawl.MatchSchemas(local, hiddenTable, tk)
		for i, j := range m.LocalToHidden {
			if j >= 0 {
				localCols = append(localCols, i)
				hiddenCols = append(hiddenCols, j)
			}
		}
		if len(localCols) == 0 {
			fatal(fmt.Errorf("no columns could be aligned between %v and %v",
				local.Schema, hiddenTable.Schema))
		}
	}
	var matcher smartcrawl.Matcher
	if *fuzzy > 0 {
		matcher = smartcrawl.NewJaccardMatcherOn(tk, *fuzzy, localCols, hiddenCols)
	} else {
		matcher = smartcrawl.NewExactMatcherOn(tk, localCols, hiddenCols)
	}
	env := &smartcrawl.Env{Local: local, Searcher: searcher, Tokenizer: tk, Matcher: matcher, Obs: o}

	// Graceful shutdown: the first SIGINT/SIGTERM stops selection at the
	// next round boundary and drains in-flight queries — every charged
	// query's outcome is kept and saved; a second signal aborts hard.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "smartcrawl: interrupt — draining in-flight queries (repeat to abort)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "smartcrawl: aborted")
		os.Exit(130)
	}()

	// Durability: with -checkpoint, prior state (snapshot + journal) is
	// recovered through the durable sink, which also journals this run.
	var (
		resume  *smartcrawl.Result
		pending []smartcrawl.PendingQuery
		sink    *smartcrawl.Durability
	)
	if *checkpoint != "" {
		var err error
		sink, err = smartcrawl.OpenDurability(smartcrawl.DurabilityOptions{
			Snapshot:   *checkpoint,
			Journal:    *wal,
			Every:      *autosave,
			Sync:       *walSync,
			LocalLen:   local.Len(),
			Obs:        o,
			CrashPoint: os.Getenv(durable.CrashEnv),
		})
		if err != nil {
			fatal(err)
		}
		rec := sink.Recovered()
		if rec.JournalRecords > 0 || rec.TornTail {
			covered, queries := 0, 0
			if rec.Result != nil {
				covered, queries = rec.Result.CoveredCount, rec.Result.QueriesIssued
			}
			o.Recovered(*wal, rec.JournalRecords, covered, queries, rec.LastSeq, rec.TornTail)
			fmt.Fprintf(os.Stderr, "recovered: %d journal records replayed (torn tail: %t, %d queries pending)\n",
				rec.JournalRecords, rec.TornTail, len(rec.Pending))
		}
		if rec.Result != nil {
			resume = rec.Result
			pending = rec.Pending
			fmt.Fprintf(os.Stderr, "resuming: %d records covered, %d queries spent previously\n",
				resume.CoveredCount, resume.QueriesIssued)
		}
	}

	// A worker pool without a batch to chew through is idle: default the
	// selection batch to the worker count so -workers alone overlaps
	// round-trips (results stay identical for any -workers at a fixed
	// -batch; only -batch affects selection quality).
	if *batchSize == 0 {
		*batchSize = *workers
	}
	// Graceful degradation: with -faults on, failed queries are retried a
	// few times then forfeited (instead of aborting the crawl), and a
	// circuit breaker holds selection while the interface is down.
	anyFedFaults := false
	for _, sp := range fedSpecs {
		if sp.Faults != "" {
			anyFedFaults = true
		}
	}
	if *maxAttempts == 0 && (*faults != "" || anyFedFaults) {
		*maxAttempts = 3
	}
	if *breakerN < 0 {
		*breakerN = 0
		if *faults != "" {
			*breakerN = 5
		}
	}
	var brk *smartcrawl.Breaker
	if *breakerN > 0 {
		brk = smartcrawl.NewBreaker(smartcrawl.BreakerConfig{FailureThreshold: *breakerN}).WithObs(o)
	}
	smartOpts := smartcrawl.SmartOptions{
		Resume:        resume,
		ResumePending: pending,
		BatchSize:     *batchSize,
		Workers:       *workers,
		MaxAttempts:   *maxAttempts,
		Breaker:       brk,
		Context:       ctx,
	}
	if sink != nil {
		smartOpts.Durability = sink
	}

	var (
		c   smartcrawl.Crawler
		err error
	)
	switch {
	case fed != nil:
		opts := smartOpts
		opts.Online = *strategy == "online"
		c, err = smartcrawl.NewFederatedCrawler(env, opts, fed.Ifaces)
	default:
		c, err = buildSingle(*strategy, env, smp, smartOpts, *seed)
	}
	if err != nil {
		fatal(err)
	}

	// Pick enrichment columns.
	var cols []int
	if *enrichCols != "" {
		for _, name := range strings.Split(*enrichCols, ",") {
			idx := -1
			for j, s := range hiddenSchema {
				if strings.EqualFold(strings.TrimSpace(name), s) {
					idx = j
					break
				}
			}
			if idx == -1 {
				fatal(fmt.Errorf("hidden schema %v has no column %q", hiddenSchema, name))
			}
			cols = append(cols, idx)
		}
	}

	opts := smartcrawl.EnrichOptions{Columns: cols}
	if len(cols) == 0 {
		if hiddenTable == nil {
			fatal(fmt.Errorf("-enrich is required with -url (no hidden schema to auto-map)"))
		}
		mapping := smartcrawl.MatchSchemas(local, hiddenTable, tk)
		opts.Mapping = &mapping
	}
	stopEnrich := o.Phase("crawl_and_enrich")
	report, res, err := smartcrawl.Enrich(local, hiddenSchema, c, *budget, opts)
	stopEnrich()
	if err != nil {
		if sink != nil {
			// A failed crawl has no final state to compact, but the
			// journal on disk still holds everything absorbed so far —
			// close without truncating it.
			sink.Close(nil)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "crawl: %d queries issued, %d/%d records enriched (%.1f%%)\n",
		report.QueriesIssued, report.Enriched, local.Len(), 100*report.Coverage)
	if res.Resilience != nil {
		fmt.Fprintln(os.Stderr, res.Resilience.String())
	}
	if sink != nil {
		if err := sink.Close(res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s\n", *checkpoint)
	}
	if ctx.Err() != nil {
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted: state saved — resumable with -checkpoint %s\n", *checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "interrupted: no -checkpoint set, crawl progress not saved")
		}
	}

	// End-of-run observability: summary to stderr, trace flushed to disk.
	if o != nil {
		o.WriteSummary(os.Stderr)
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: trace incomplete: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *outPath != "" && strings.HasSuffix(*outPath, ".jsonl") {
		err = local.WriteJSONL(out)
	} else {
		err = local.WriteCSV(out)
	}
	if err != nil {
		fatal(err)
	}
}

// buildSingle constructs the single-interface crawler for the strategy.
func buildSingle(strategy string, env *smartcrawl.Env, smp *smartcrawl.Sample, smartOpts smartcrawl.SmartOptions, seed uint64) (smartcrawl.Crawler, error) {
	switch strategy {
	case "smart":
		opts := smartOpts
		opts.Sample = smp
		return smartcrawl.NewSmartCrawler(env, opts)
	case "simple":
		return smartcrawl.NewSmartCrawler(env, smartOpts)
	case "online":
		opts := smartOpts
		opts.Online = true
		return smartcrawl.NewSmartCrawler(env, opts)
	case "naive":
		return smartcrawl.NewNaiveCrawler(env, nil, seed)
	case "full":
		return smartcrawl.NewFullCrawler(env, smp)
	}
	return nil, fmt.Errorf("unknown strategy %q", strategy)
}

// inspectCheckpoint prints what a checkpoint (and optional journal) pair
// holds, in grep-friendly key=value lines, without crawling or modifying
// either file.
func inspectCheckpoint(snapshot, journal string) {
	rec, err := smartcrawl.RecoverCrawl(snapshot, journal, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot=%s loaded=%t snapshot_seq=%d\n", snapshot, rec.SnapshotLoaded, rec.SnapshotSeq)
	if journal != "" {
		fmt.Printf("journal=%s records=%d last_seq=%d torn_tail=%t\n",
			journal, rec.JournalRecords, rec.LastSeq, rec.TornTail)
	}
	if rec.Result == nil {
		fmt.Println("state=empty")
		return
	}
	res := rec.Result
	fmt.Printf("queries_issued=%d covered_count=%d charged=%d local_len=%d steps=%d\n",
		res.QueriesIssued, res.CoveredCount, rec.Charged, rec.LocalLen, len(res.Steps))
	fmt.Printf("pending=%d\n", len(rec.Pending))
	for _, p := range rec.Pending {
		fmt.Printf("pending_query=%q benefit=%g\n", p.Query.Key(), p.Benefit)
	}
	if res.Resilience != nil {
		fmt.Println(res.Resilience.String())
	}
}

// readTable loads CSV or, for .jsonl paths, JSON Lines.
func readTable(path, name string) *relational.Table {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var t *relational.Table
	if strings.HasSuffix(path, ".jsonl") {
		t, err = relational.ReadJSONL(name, f)
	} else {
		t, err = relational.ReadCSV(name, f)
	}
	if err != nil {
		fatal(fmt.Errorf("reading %s: %w", path, err))
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartcrawl:", err)
	os.Exit(1)
}
