module smartcrawl

go 1.22
