// Overhead budget for the durability layer: the WAL journal rides inside
// the crawl merge stage, so every charged query pays one framed append.
// BenchmarkDurableOverhead is the artifact recorded in BENCH_durable.json;
// TestDurableOverheadUnderTwoPercent enforces the <2% budget in the
// regular test run using the same interleaved min-of-N scheme as the
// observability budget test (obs_overhead_test.go).
package smartcrawl_test

import (
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"smartcrawl"
)

// durableMode names one durability configuration of the benchmark matrix.
type durableMode struct {
	name     string
	snapshot bool // write a checkpoint at all
	journal  bool // WAL journal on top of the snapshot
	every    int  // autosave cadence (0 = compact only at Close)
	sync     string
}

// crawlDurable runs one budget-48 smart crawl with the given durability
// mode attached, in a fresh directory — no snapshot or journal from a
// previous iteration is ever picked up, so every run starts cold and
// covers the same records.
func (u *simUniverse) crawlDurable(tb testing.TB, m durableMode) *smartcrawl.Result {
	tb.Helper()
	u.env.Obs = nil
	opts := smartcrawl.SmartOptions{Sample: u.smp, BatchSize: 8}
	var sink *smartcrawl.Durability
	if m.snapshot {
		dir := tb.TempDir()
		dopts := smartcrawl.DurabilityOptions{
			Snapshot: filepath.Join(dir, "cp.bin"),
			Every:    m.every,
			Sync:     m.sync,
		}
		if m.journal {
			dopts.Journal = filepath.Join(dir, "cp.wal")
			dopts.LocalLen = u.env.Local.Len()
		}
		var err error
		sink, err = smartcrawl.OpenDurability(dopts)
		if err != nil {
			tb.Fatal(err)
		}
		opts.Durability = sink
	}
	c, err := smartcrawl.NewSmartCrawler(u.env, opts)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Run(48)
	if err != nil {
		tb.Fatal(err)
	}
	if sink != nil {
		if err := sink.Close(res); err != nil {
			tb.Fatal(err)
		}
	}
	return res
}

// BenchmarkDurableOverhead times the same in-process crawl under four
// durability modes: none, snapshot-only (atomic checkpoint at Close),
// the default WAL configuration (journal + SyncCompact), and the
// paranoid one (fsync after every append). Recorded in
// BENCH_durable.json.
func BenchmarkDurableOverhead(b *testing.B) {
	modes := []durableMode{
		{name: "durability=off"},
		{name: "durability=snapshot", snapshot: true},
		{name: "durability=wal-compact", snapshot: true, journal: true,
			every: smartcrawl.DefaultAutosave, sync: smartcrawl.SyncCompact},
		{name: "durability=wal-compact-autosave8", snapshot: true, journal: true, every: 8, sync: smartcrawl.SyncCompact},
		{name: "durability=wal-always", snapshot: true, journal: true,
			every: smartcrawl.DefaultAutosave, sync: smartcrawl.SyncAlways},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			u := newSimUniverse(b)
			b.ResetTimer()
			var covered int
			for i := 0; i < b.N; i++ {
				res := u.crawlDurable(b, mode)
				if i == 0 {
					covered = res.CoveredCount
				} else if res.CoveredCount != covered {
					b.Fatalf("coverage drifted between iterations: %d vs %d",
						res.CoveredCount, covered)
				}
			}
			b.ReportMetric(float64(covered), "covered")
		})
	}
}

// TestDurableOverheadUnderTwoPercent enforces the durability budget: a
// crawl journaling every charged query under the default fsync policy
// must cost at most 2% more wall-clock than one writing only the final
// atomic snapshot (plus a small absolute allowance for timer noise and
// the journal's open/close fsyncs). Comparing against snapshot-only —
// not against no durability at all — isolates the journal itself: both
// sides pay the one Close-time checkpoint every durable crawl writes.
func TestDurableOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceDetectorOn {
		t.Skip("timing budget is meaningless under the race detector")
	}
	u := newSimUniverse(t)
	base := durableMode{name: "snapshot", snapshot: true}
	wal := durableMode{name: "wal", snapshot: true, journal: true,
		every: smartcrawl.DefaultAutosave, sync: smartcrawl.SyncCompact}
	// Warm both paths (index sharding, page cache) before timing.
	u.crawlDurable(t, base)
	u.crawlDurable(t, wal)

	// Same scheme as TestObsOverheadUnderTwoPercent: interleaved
	// min-of-10 timings, 2% relative + 3ms absolute budget, up to three
	// attempts. A real regression fails every attempt; noise does not
	// survive three.
	const rounds = 10
	var lastOff, lastOn time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			runtime.GC()
			start := time.Now()
			u.crawlDurable(t, base)
			if d := time.Since(start); d < minOff {
				minOff = d
			}
			runtime.GC()
			start = time.Now()
			u.crawlDurable(t, wal)
			if d := time.Since(start); d < minOn {
				minOn = d
			}
		}
		lastOff, lastOn = minOff, minOn
		if minOn <= minOff+minOff/50+3*time.Millisecond {
			t.Logf("durable overhead: snapshot-only min %v, wal min %v (%.2f%%)",
				minOff, minOn, 100*(float64(minOn)/float64(minOff)-1))
			return
		}
		t.Logf("attempt %d over budget: snapshot-only min %v, wal min %v — retrying",
			attempt+1, minOff, minOn)
	}
	t.Fatalf("journal overhead too high in all attempts: snapshot-only min %v, wal min %v (%.2f%%)",
		lastOff, lastOn, 100*(float64(lastOn)/float64(lastOff)-1))
}
