// The /metrics endpoint rides next to a live crawl, so rendering the
// Prometheus exposition must fit inside the same observability budget as
// the hooks themselves: a crawl scraped continuously may cost at most 2%
// more wall-clock than an unscraped one (BENCH_obs.json methodology).
// BenchmarkPromExport records the cost of a single collect+render pass.
package smartcrawl_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"smartcrawl"
	"smartcrawl/internal/obs/promexport"
)

// scrape renders one full exposition of o, as the /metrics handler does.
func scrape(o *smartcrawl.Obs, w io.Writer) {
	c := promexport.NewCollection()
	c.CollectObs(o)
	c.WriteText(w)
}

// BenchmarkPromExport times one CollectObs+WriteText pass over a sink that
// has absorbed a full budget-48 crawl — the steady-state cost of a scrape.
func BenchmarkPromExport(b *testing.B) {
	u := newSimUniverse(b)
	o := smartcrawl.NewObs()
	u.crawl(b, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scrape(o, io.Discard)
	}
}

// TestPromExportOverheadUnderTwoPercent pits a crawl with a live metrics
// sink against the same crawl while a goroutine scrapes that sink every
// 5ms — three thousand times harsher than the default 15s Prometheus
// interval, yet still a duty cycle a real deployment could see. The
// scraped crawl must stay within the standing budget: 2% relative plus
// 3ms absolute, interleaved min-of-10, up to three attempts (see
// TestObsOverheadUnderTwoPercent for why min-of-N and retries).
func TestPromExportOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceDetectorOn {
		t.Skip("timing budget is meaningless under the race detector")
	}
	u := newSimUniverse(t)

	// crawlScraped runs one crawl while a scraper polls the sink on a
	// 5ms ticker — the contention profile of an aggressive /metrics
	// client, without degenerating into a busy loop that just fights
	// the crawl for a core.
	crawlScraped := func() time.Duration {
		o := smartcrawl.NewObs()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					scrape(o, io.Discard)
				}
			}
		}()
		start := time.Now()
		u.crawl(t, o)
		d := time.Since(start)
		close(stop)
		<-done
		return d
	}
	crawlPlain := func() time.Duration {
		start := time.Now()
		u.crawl(t, smartcrawl.NewObs())
		return time.Since(start)
	}

	// Warm both paths before timing.
	crawlPlain()
	crawlScraped()

	const rounds = 10
	var lastOff, lastOn time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			runtime.GC()
			if d := crawlPlain(); d < minOff {
				minOff = d
			}
			runtime.GC()
			if d := crawlScraped(); d < minOn {
				minOn = d
			}
		}
		lastOff, lastOn = minOff, minOn
		if minOn <= minOff+minOff/50+3*time.Millisecond {
			t.Logf("scrape overhead: unscraped min %v, scraped min %v (%.2f%%)",
				minOff, minOn, 100*(float64(minOn)/float64(minOff)-1))
			return
		}
		t.Logf("attempt %d over budget: unscraped min %v, scraped min %v — retrying",
			attempt+1, minOff, minOn)
	}
	t.Fatalf("scrape overhead too high in all attempts: unscraped min %v, scraped min %v (%.2f%%)",
		lastOff, lastOn, 100*(float64(lastOn)/float64(lastOff)-1))
}
