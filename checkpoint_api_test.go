package smartcrawl_test

import (
	"bytes"
	"testing"
	"time"

	"smartcrawl"
)

func TestPublicAPICheckpointResume(t *testing.T) {
	local, _, env, smp := buildUniverse(t)
	_ = local
	c1, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c1.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := smartcrawl.SaveCheckpoint(&buf, res1); err != nil {
		t.Fatal(err)
	}
	loaded, err := smartcrawl.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smp, Resume: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CoveredCount < res1.CoveredCount {
		t.Fatalf("resume lost coverage: %d < %d", res2.CoveredCount, res1.CoveredCount)
	}
	if res2.CoveredCount != 4 {
		t.Fatalf("resumed crawl covered %d of 4", res2.CoveredCount)
	}
}

func TestPublicAPIBatchAndRetry(t *testing.T) {
	_, _, env, smp := buildUniverse(t)
	env.Searcher = smartcrawl.NewRetryingSearcher(env.Searcher, 2,
		time.Millisecond, 10*time.Millisecond)
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smp, BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("batched retrying crawl covered %d of 4", res.CoveredCount)
	}
}

func TestPublicAPIOmegaEstimator(t *testing.T) {
	_, _, env, smp := buildUniverse(t)
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smp, Omega: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	// Unbiased and Omega are mutually exclusive.
	if _, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smp, Omega: 2, Unbiased: true,
	}); err == nil {
		t.Fatal("Omega + Unbiased should be rejected")
	}
}

func TestPublicAPIPorterStem(t *testing.T) {
	if smartcrawl.PorterStem("crawling") != "crawl" {
		t.Fatal("PorterStem")
	}
	tk := smartcrawl.NewTokenizer()
	tk.Stemmer = smartcrawl.PorterStem
	toks := tk.Tokens("Crawling Databases")
	if len(toks) != 2 || toks[0] != "crawl" || toks[1] != "databas" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestPublicAPIOnlineCalibration(t *testing.T) {
	_, _, env, _ := buildUniverse(t)
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Online: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount == 0 {
		t.Fatal("online crawl covered nothing")
	}
}
