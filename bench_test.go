// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7), one target per artifact, as indexed in DESIGN.md. Each bench runs
// the corresponding experiment at a reduced scale (|H| = 10k, |D| = 1k by
// default — the paper's proportions, 10% of its size) and reports the
// headline coverage numbers as custom metrics; the rendered tables are
// emitted through b.Log (visible with `go test -bench . -v`) and, at any
// scale, through `go run ./cmd/experiments`.
package smartcrawl_test

import (
	"strings"
	"testing"

	"smartcrawl/internal/experiment"
)

// benchParams is the scale used by the bench targets: 10% of Table 3.
func benchParams() experiment.Params {
	p := experiment.Scaled(0.1)
	p.Seed = 42
	return p
}

func logTables(b *testing.B, tables []*experiment.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for _, t := range tables {
		if err := t.Fprint(&sb); err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + sb.String())
}

// BenchmarkTable2RunningExample regenerates Table 2: true vs estimated
// benefits on the running example.
func BenchmarkTable2RunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Table2RunningExample()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTables(b, []*experiment.Table{t}, nil)
		}
	}
}

// BenchmarkFigure4SamplingRatio regenerates Figure 4: coverage curves at
// θ = 0.2% and 1%, plus the θ sweep.
func BenchmarkFigure4SamplingRatio(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure4(p)
		if i == 0 {
			logTables(b, tables, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5LocalSize regenerates Figure 5: the |D| panels and sweep.
func BenchmarkFigure5LocalSize(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure5(p)
		if i == 0 {
			logTables(b, tables, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6TopK regenerates Figure 6: the k panels and sweep.
func BenchmarkFigure6TopK(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure6(p)
		if i == 0 {
			logTables(b, tables, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7DeltaD regenerates Figure 7: bias growth with |ΔD|.
func BenchmarkFigure7DeltaD(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure7(p)
		if i == 0 {
			logTables(b, tables, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Fuzzy regenerates Figure 8: error% robustness.
func BenchmarkFigure8Fuzzy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure8(p)
		if i == 0 {
			logTables(b, tables, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9Yelp regenerates Figure 9: recall on the Yelp-style
// hidden database (non-conjunctive interface, drifted names,
// interface-built sample).
func BenchmarkFigure9Yelp(b *testing.B) {
	p := experiment.Params{
		HiddenSize: 3650, LocalSize: 300, K: 50,
		Budget: 300, Theta: 0.01, ErrorRate: 0.1,
		JaccardThreshold: 0.5, Seed: 42,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiment.Figure9(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLemma2Bound regenerates the §4.1 analysis: QSel-Bound's
// guarantee versus IdealCrawl and QSel-Simple.
func BenchmarkLemma2Bound(b *testing.B) {
	p := benchParams()
	p.DeltaD = p.LocalSize / 20
	for i := 0; i < b.N; i++ {
		t, err := experiment.BoundGuarantee(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorAccuracy regenerates the Table 1 estimator-accuracy
// ablation across sampling ratios.
func BenchmarkEstimatorAccuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.EstimatorAccuracy(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallSampleFallback regenerates the §6.2 α-fallback ablation.
func BenchmarkSmallSampleFallback(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateAlpha(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaDRemoval regenerates the §4.2 ΔD-removal ablation.
func BenchmarkDeltaDRemoval(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateDeltaDRemoval(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionLazyVsNaive regenerates the §6.3 lazy-queue ablation
// (Appendix B's orders-of-magnitude claim).
func BenchmarkSelectionLazyVsNaive(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateHeap(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSelection regenerates the batch-greedy extension ablation.
func BenchmarkBatchSelection(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateBatch(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStemming regenerates the Porter-stemming extension ablation.
func BenchmarkStemming(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateStemming(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineCalibration regenerates the pay-as-you-go extension
// comparison (§9 future work).
func BenchmarkOnlineCalibration(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.AblateOnline(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormInterface regenerates the form-vs-keyword interface
// extension comparison (§9 future work).
func BenchmarkFormInterface(b *testing.B) {
	p := experiment.Params{
		HiddenSize: 3650, LocalSize: 300, K: 50, Budget: 300, Seed: 42,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiment.FormInterface(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankSensitivity regenerates the ranking-function sensitivity
// analysis (the Lemma 4/5 ranking-agnosticism claim).
func BenchmarkRankSensitivity(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiment.RankSensitivity(p)
		if i == 0 {
			logTables(b, []*experiment.Table{t}, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOmegaSensitivity regenerates the §5.3 ω-assumption analysis.
func BenchmarkOmegaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.OmegaSensitivity()
		if i == 0 {
			logTables(b, []*experiment.Table{t}, nil)
		}
	}
}
