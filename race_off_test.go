//go:build !race

package smartcrawl_test

const raceDetectorOn = false
