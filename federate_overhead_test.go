// Overhead budget for the federation layer: the single-interface crawl IS
// the n=1 federated loop (interface handles, allocator bookkeeping, tagged
// steps), so generalizing the loop must not tax the non-federated user.
// BenchmarkFederateOverhead is the artifact recorded in
// BENCH_federate.json; TestFederateOverheadUnderTwoPercent enforces the
// <2% budget in the regular test run using the same interleaved min-of-N
// scheme as the observability and durability budget tests.
package smartcrawl_test

import (
	"runtime"
	"testing"
	"time"

	"smartcrawl"
)

// crawlFederated runs the same budget-48 crawl as simUniverse.crawl, but
// through NewFederatedCrawler with a single interface wrapping the same
// searcher and sample — the n=1 federation whose cost this file bounds.
func (u *simUniverse) crawlFederated(tb testing.TB) *smartcrawl.Result {
	tb.Helper()
	u.env.Obs = nil
	env := *u.env
	env.Searcher = nil
	c, err := smartcrawl.NewFederatedCrawler(&env, smartcrawl.SmartOptions{
		BatchSize: 8,
	}, []smartcrawl.FederatedInterface{
		{Name: "only", Searcher: u.env.Searcher, Sample: u.smp},
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Run(48)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkFederateOverhead times the same in-process crawl built two
// ways: NewSmartCrawler directly, and NewFederatedCrawler over one
// interface. Coverage must be identical — the n=1 federation is the same
// loop, not a wrapper. Recorded in BENCH_federate.json.
func BenchmarkFederateOverhead(b *testing.B) {
	modes := []struct {
		name string
		run  func(u *simUniverse) *smartcrawl.Result
	}{
		{"mode=single", func(u *simUniverse) *smartcrawl.Result { return u.crawl(b, nil) }},
		{"mode=federated-n1", func(u *simUniverse) *smartcrawl.Result { return u.crawlFederated(b) }},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			u := newSimUniverse(b)
			b.ResetTimer()
			var covered int
			for i := 0; i < b.N; i++ {
				res := mode.run(u)
				if i == 0 {
					covered = res.CoveredCount
				} else if res.CoveredCount != covered {
					b.Fatalf("coverage drifted between iterations: %d vs %d",
						res.CoveredCount, covered)
				}
			}
			b.ReportMetric(float64(covered), "covered")
		})
	}
}

// TestFederateOverheadUnderTwoPercent enforces the federation budget: the
// n=1 federated crawl must cost at most 2% more wall-clock than the
// direct single-interface construction (plus a small absolute allowance
// for timer noise). The two runs must also agree on coverage exactly —
// the cheap half of the byte-identity oracle in internal/federate.
func TestFederateOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceDetectorOn {
		t.Skip("timing budget is meaningless under the race detector")
	}
	u := newSimUniverse(t)
	// Warm both paths (index sharding, page cache) before timing, and pin
	// the coverage equivalence while at it.
	single := u.crawl(t, nil)
	federated := u.crawlFederated(t)
	if single.CoveredCount != federated.CoveredCount {
		t.Fatalf("n=1 federated crawl covered %d, single-interface %d — not the same loop",
			federated.CoveredCount, single.CoveredCount)
	}

	const rounds = 10
	var lastOff, lastOn time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			runtime.GC()
			start := time.Now()
			u.crawl(t, nil)
			if d := time.Since(start); d < minOff {
				minOff = d
			}
			runtime.GC()
			start = time.Now()
			u.crawlFederated(t)
			if d := time.Since(start); d < minOn {
				minOn = d
			}
		}
		lastOff, lastOn = minOff, minOn
		if minOn <= minOff+minOff/50+3*time.Millisecond {
			t.Logf("federation overhead: single min %v, federated-n1 min %v (%.2f%%)",
				minOff, minOn, 100*(float64(minOn)/float64(minOff)-1))
			return
		}
		t.Logf("attempt %d over budget: single min %v, federated-n1 min %v — retrying",
			attempt+1, minOff, minOn)
	}
	t.Fatalf("federation overhead too high in all attempts: single min %v, federated-n1 min %v (%.2f%%)",
		lastOff, lastOn, 100*(float64(lastOn)/float64(lastOff)-1))
}
