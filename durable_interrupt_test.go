// In-process graceful-shutdown coverage: a crawl interrupted through its
// Context mid-run, checkpointed through the durability sink, and resumed
// must be indistinguishable from one uninterrupted crawl with the same
// budget. The CLI's SIGINT handler is exactly this cancel — the crashtest
// harness exercises it through a real process (TestGracefulInterrupt);
// this test keeps the same invariant inside `go test -race ./...`, where
// the cross-goroutine cancel races against the crawl pipeline under the
// detector.
package smartcrawl_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"smartcrawl"
)

// interruptSink embeds the durability sink and fires an asynchronous
// cancel — the in-process analogue of a SIGINT arriving on the signal
// goroutine — once the crawl has absorbed `after` queries.
type interruptSink struct {
	*smartcrawl.Durability
	cancel context.CancelFunc
	after  int
	steps  int
	once   sync.Once
}

func (s *interruptSink) StepAbsorbed(res *smartcrawl.Result, step smartcrawl.Step, newlyCovered []int) error {
	err := s.Durability.StepAbsorbed(res, step, newlyCovered)
	s.steps++
	if s.steps >= s.after {
		s.once.Do(func() { go s.cancel() })
	}
	return err
}

// canonicalBytes serializes a result the way checkpoint comparison wants
// it: through SaveCheckpoint, so journal sequence numbers and file-level
// framing never enter the comparison.
func canonicalBytes(tb testing.TB, res *smartcrawl.Result) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := smartcrawl.SaveCheckpoint(&buf, res); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestInterruptedCrawlResumesExactly(t *testing.T) {
	const budget = 48
	u := newSimUniverse(t)
	u.env.Obs = nil
	ref := canonicalBytes(t, u.crawlDurable(t, durableMode{name: "ref"}))

	// The invariant holds wherever the cancel lands — early, mid-crawl,
	// or so late the drain finishes the budget anyway — so the exact
	// round boundary the asynchronous cancel races into is irrelevant.
	for _, after := range []int{3, 17, 41} {
		t.Run(fmt.Sprintf("cancel-after-%d", after), func(t *testing.T) {
			dir := t.TempDir()
			opts := smartcrawl.DurabilityOptions{
				Snapshot: filepath.Join(dir, "cp.bin"),
				Journal:  filepath.Join(dir, "cp.wal"),
				Every:    8,
				LocalLen: u.env.Local.Len(),
			}
			sink, err := smartcrawl.OpenDurability(opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			wrapped := &interruptSink{Durability: sink, cancel: cancel, after: after}
			c, err := smartcrawl.NewSmartCrawler(u.env, smartcrawl.SmartOptions{
				Sample: u.smp, BatchSize: 8, Context: ctx, Durability: wrapped,
			})
			if err != nil {
				t.Fatal(err)
			}
			partial, err := c.Run(budget)
			if err != nil {
				t.Fatalf("interrupted crawl: %v", err)
			}
			if err := sink.Close(partial); err != nil {
				t.Fatal(err)
			}

			sink, err = smartcrawl.OpenDurability(opts)
			if err != nil {
				t.Fatalf("reopening durability: %v", err)
			}
			rec := sink.Recovered()
			if rec.Result == nil {
				t.Fatal("nothing recovered from the interrupted crawl")
			}
			final := rec.Result
			// A budget of zero means unlimited to the crawl layer, so a
			// drain that already spent everything skips the resume leg.
			if remaining := budget - rec.Charged; remaining > 0 {
				c, err = smartcrawl.NewSmartCrawler(u.env, smartcrawl.SmartOptions{
					Sample: u.smp, BatchSize: 8, Durability: sink,
					Resume: rec.Result, ResumePending: rec.Pending,
				})
				if err != nil {
					t.Fatal(err)
				}
				final, err = c.Run(remaining)
				if err != nil {
					t.Fatalf("resumed crawl: %v", err)
				}
			}
			if err := sink.Close(final); err != nil {
				t.Fatal(err)
			}
			if got := canonicalBytes(t, final); !bytes.Equal(got, ref) {
				t.Errorf("interrupt after %d steps: resumed result differs from the uninterrupted crawl (%d covered vs reference)",
					after, final.CoveredCount)
			}
		})
	}
}
