// Benchmark and regression coverage for the concurrent crawl pipeline:
// SMARTCRAWL driven through the httpapi simulator with per-request latency
// injected, so query round-trips dominate exactly as they do against a real
// deep website. BenchmarkParallelCrawl is the before/after artifact recorded
// in BENCH_parallel.json; the test asserts the determinism guarantee end to
// end over HTTP (identical coverage and issued-query log at any worker
// count).
package smartcrawl_test

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"smartcrawl"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
)

// parallelUniverse is a DBLP-sim instance behind a latency-injecting HTTP
// search endpoint, plus everything a smart crawl needs against it.
type parallelUniverse struct {
	srv *httptest.Server
	env *smartcrawl.Env
	smp *smartcrawl.Sample
}

func (u *parallelUniverse) Close() { u.srv.Close() }

func newParallelUniverse(tb testing.TB, latency time.Duration) *parallelUniverse {
	tb.Helper()
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 42,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K: 50, RankColumn: in.RankColumn,
	})
	// The Delayed wrapper sits server-side, so every HTTP round-trip pays
	// the injected latency — concurrent requests overlap their sleeps just
	// like real network waits.
	server := httpapi.NewServer(&deepweb.Delayed{S: db, Delay: latency}, tk, nil)
	srv := httptest.NewServer(server.Handler())
	client := &httpapi.Client{BaseURL: srv.URL}
	if err := client.Probe(smartcrawl.Query{"probe"}); err != nil {
		srv.Close()
		tb.Fatal(err)
	}
	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  client,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, in.LocalKey, in.HiddenKey),
	}
	return &parallelUniverse{
		srv: srv,
		env: env,
		smp: smartcrawl.BernoulliSample(in.Hidden, 0.03, 12),
	}
}

func (u *parallelUniverse) crawl(tb testing.TB, workers, budget int) *smartcrawl.Result {
	tb.Helper()
	c, err := smartcrawl.NewSmartCrawler(u.env, smartcrawl.SmartOptions{
		Sample: u.smp, BatchSize: 8, Workers: workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkParallelCrawl measures wall-clock of a budget-48 smart crawl over
// HTTP with 10ms of injected per-request latency (a fast real-world API), at
// 1/2/4/8 workers. With BatchSize 8 the selection trajectory is fixed;
// workers only overlap the round-trips, so the coverage metric must not move
// while ns/op drops.
func BenchmarkParallelCrawl(b *testing.B) {
	const latency = 10 * time.Millisecond
	const budget = 48
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			u := newParallelUniverse(b, latency)
			defer u.Close()
			b.ResetTimer()
			var covered int
			for i := 0; i < b.N; i++ {
				res := u.crawl(b, workers, budget)
				if i == 0 {
					covered = res.CoveredCount
				} else if res.CoveredCount != covered {
					b.Fatalf("coverage drifted between iterations: %d vs %d",
						res.CoveredCount, covered)
				}
			}
			b.ReportMetric(float64(covered), "covered")
		})
	}
}

// TestParallelCrawlHTTPDeterministic runs the full stack — facade, HTTP
// client, server, simulator — and requires identical coverage and
// issued-query logs for 1 vs 8 workers at equal seed and budget.
func TestParallelCrawlHTTPDeterministic(t *testing.T) {
	u := newParallelUniverse(t, 0)
	defer u.Close()
	ref := u.crawl(t, 1, 40)
	got := u.crawl(t, 8, 40)
	if got.CoveredCount != ref.CoveredCount {
		t.Fatalf("coverage differs: 8 workers covered %d, 1 worker covered %d",
			got.CoveredCount, ref.CoveredCount)
	}
	if len(got.Steps) != len(ref.Steps) {
		t.Fatalf("issued %d queries with 8 workers, %d with 1", len(got.Steps), len(ref.Steps))
	}
	for i := range ref.Steps {
		if got.Steps[i].Query.Key() != ref.Steps[i].Query.Key() {
			t.Fatalf("step %d differs: %v vs %v", i, got.Steps[i].Query, ref.Steps[i].Query)
		}
	}
}
