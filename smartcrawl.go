// Package smartcrawl is the public API of this reproduction of
// "Progressive Deep Web Crawling Through Keyword Queries For Data
// Enrichment" (SIGMOD 2019). It solves the DeepEnrich problem: given a
// local table D, a hidden database H reachable only through a top-k
// keyword-search interface, and a query budget b, issue b queries whose
// results cover (entity-match) as many records of D as possible — then
// append H's extra attributes to the covered records.
//
// Quick start:
//
//	tk := smartcrawl.NewTokenizer()
//	hiddenDB := smartcrawl.NewHiddenDatabase(hiddenTable, tk, smartcrawl.HiddenOptions{K: 50})
//	smp := smartcrawl.BernoulliSample(hiddenTable, 0.005, 42)
//	env := &smartcrawl.Env{
//		Local:     localTable,
//		Searcher:  hiddenDB,
//		Tokenizer: tk,
//		Matcher:   smartcrawl.NewExactMatcher(tk),
//	}
//	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
//	report, result, err := smartcrawl.Enrich(localTable, hiddenTable.Schema, c, 1000,
//		smartcrawl.EnrichOptions{Columns: []int{3}})
//
// The facade re-exports the building blocks from the internal packages;
// see DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduced evaluation. For crawls against unreliable interfaces it also
// exposes the resilience layer — NewFaultySearcher (deterministic fault
// injection for chaos drills), NewBreaker/NewGuardedSearcher (circuit
// breaking), SmartOptions.MaxAttempts (requeue/forfeit with budget
// refunds), and the per-run Resilience report — documented operator-side
// in docs/OPERATIONS.md.
package smartcrawl

import (
	"context"
	"errors"
	"io"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/engine"
	"smartcrawl/internal/enrich"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/federate"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// Core data types.
type (
	// Record is one row of a table; see Table.
	Record = relational.Record
	// Table is a named relation with a schema.
	Table = relational.Table
	// SchemaMapping aligns local columns to hidden columns.
	SchemaMapping = relational.SchemaMapping
	// Tokenizer turns text into the keyword tokens everything agrees on.
	Tokenizer = tokenize.Tokenizer
	// Dict is the frozen token-interning dictionary: dense uint32 token
	// IDs over a corpus vocabulary. The selection hot paths run on token
	// IDs instead of strings (see DESIGN.md, "The interned hot path");
	// querypool.Generate builds one per pool, exposed as Pool.Dict.
	Dict = tokenize.Dict
	// Query is a normalized conjunctive keyword query.
	Query = deepweb.Query
	// Searcher is the restricted interface to a hidden database.
	Searcher = deepweb.Searcher
	// Matcher is the entity-resolution black box.
	Matcher = match.Matcher
	// Sample is a hidden-database sample with its ratio θ.
	Sample = sample.Sample
	// Env bundles the local table, search interface, tokenizer, and
	// matcher for a crawl.
	Env = crawler.Env
	// Crawler runs a budgeted crawl.
	Crawler = crawler.Crawler
	// Result is a crawl outcome: covered records, matches, trace.
	Result = crawler.Result
	// Step is one issued query in a Result trace.
	Step = crawler.Step
	// HiddenDatabase is the in-process hidden-database simulator.
	HiddenDatabase = hidden.Database
	// PoolConfig controls query-pool generation.
	PoolConfig = querypool.Config
	// EnrichOptions configures Enrich.
	EnrichOptions = enrich.Options
	// EnrichReport summarizes an enrichment run.
	EnrichReport = enrich.Report
	// Obs is the observability sink: attach one to Env.Obs to get live
	// counters, latency histograms, estimate-vs-realized benefit
	// accounting, and (with a Tracer) a JSONL session trace. All hooks
	// are no-ops on a nil sink, and observation never changes crawl
	// results.
	Obs = obs.Obs
	// Tracer emits structured JSONL session events (see obs.Event for
	// the schema).
	Tracer = obs.Tracer
	// TraceEvent is one parsed line of a JSONL session trace.
	TraceEvent = obs.Event
	// FaultProfile configures deterministic fault injection (see
	// NewFaultySearcher); parse CLI specs with ParseFaultProfile.
	FaultProfile = deepweb.FaultProfile
	// TruncatedError reports a cut result page: the partial records are
	// returned alongside it, and Full carries the true match count.
	TruncatedError = deepweb.TruncatedError
	// Breaker is a closed/open/half-open circuit breaker; attach one to
	// SmartOptions.Breaker or compose it with NewGuardedSearcher.
	Breaker = deepweb.Breaker
	// BreakerConfig shapes a Breaker (thresholds, count-based cooldown).
	BreakerConfig = deepweb.BreakerConfig
	// Resilience is the graceful-degradation report of a fault-tolerant
	// crawl (Result.Resilience).
	Resilience = crawler.Resilience
	// PendingQuery is one journaled-but-unresolved selection-round entry;
	// a recovered crawl re-issues them via SmartOptions.ResumePending.
	PendingQuery = crawler.PendingQuery
	// DurabilitySink receives per-event accounting callbacks from the
	// crawl merge stage (SmartOptions.Durability).
	DurabilitySink = crawler.DurabilitySink
	// Durability is the crash-safety implementation of DurabilitySink: a
	// checksummed WAL journal with atomic snapshot compaction. Construct
	// with OpenDurability.
	Durability = durable.Sink
	// DurabilityOptions configures OpenDurability.
	DurabilityOptions = durable.Options
	// RecoveredCrawl is crawl state rebuilt from a snapshot + journal
	// (see RecoverCrawl and Durability.Recovered).
	RecoveredCrawl = durable.Recovered
	// FederatedInterface is one interface of a federated crawl: its
	// searcher, sample, estimator, and circuit breaker. The slice index
	// passed to NewFederatedCrawler is the interface's ID in steps,
	// checkpoints, and the WAL.
	FederatedInterface = crawler.Interface
	// InterfaceSpec is the parsed CLI description of one federated
	// interface (see ParseInterfaceSpecs).
	InterfaceSpec = federate.Spec
	// Federation is a materialized interface set (see BuildInterfaces).
	Federation = federate.Federation
	// HealthConfig tunes per-interface health scoring in federated crawls
	// (SmartOptions.Health); DefaultHealthConfig returns the tuned
	// defaults.
	HealthConfig = crawler.HealthConfig
)

// DefaultHealthConfig returns the tuned health-scoring defaults (EWMA
// alpha 0.2, score floor 0.05, recovery probe every 16 lost rounds).
func DefaultHealthConfig() HealthConfig { return crawler.DefaultHealthConfig() }

// Journal fsync policies for DurabilityOptions.Sync. None of them is
// needed to survive the process dying (a completed write lives in the
// page cache); they guard against the machine dying — power loss, kernel
// panic.
const (
	// SyncAlways fsyncs after every journal append.
	SyncAlways = durable.SyncAlways
	// SyncRound fsyncs once per completed selection round (group commit).
	SyncRound = durable.SyncRound
	// SyncCompact (the default) fsyncs only at compaction, open, and
	// close.
	SyncCompact = durable.SyncCompact
)

// DefaultAutosave is the default journal→snapshot compaction cadence, in
// absorbed queries (DurabilityOptions.Every).
const DefaultAutosave = durable.DefaultEvery

// NewObs returns an enabled observability sink (see Env.Obs).
func NewObs() *Obs { return obs.New() }

// NewTracer traces session events onto w as JSON Lines; attach it with
// Obs.SetTracer. Wrap files in a bufio.Writer and Flush before closing.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// ParseTrace decodes a JSONL session trace back into events.
func ParseTrace(r io.Reader) ([]TraceEvent, error) { return obs.ParseEvents(r) }

// NewTokenizer returns the default tokenizer (English stop words).
func NewTokenizer() *Tokenizer { return tokenize.New() }

// BuildDict interns the given vocabulary in slice order and freezes the
// dictionary. Pass a sorted, deduplicated vocabulary to make token IDs
// monotone in token order, which keeps resolved keyword-ID slices sorted.
func BuildDict(vocab []string) *Dict { return tokenize.BuildDict(vocab) }

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema []string) *Table {
	return relational.NewTable(name, schema)
}

// HiddenOptions configures NewHiddenDatabase.
type HiddenOptions struct {
	// K is the top-k result limit (required, > 0).
	K int
	// RankColumn ranks results by the numeric value of this hidden
	// column, descending. Negative selects a deterministic hash ranking.
	RankColumn int
	// NonConjunctive switches to the Yelp-style interface: any-keyword
	// matches may be returned, all-keyword matches rank on top.
	NonConjunctive bool
}

// NewHiddenDatabase wraps a table in a simulated keyword-search interface.
// Use it to stand in for a real deep website in tests and experiments; for
// real endpoints implement Searcher (see internal/deepweb/httpapi for an
// HTTP client/server pair).
func NewHiddenDatabase(t *Table, tk *Tokenizer, opts HiddenOptions) *HiddenDatabase {
	rank := hidden.RankByHash(0x5eed)
	if opts.RankColumn >= 0 {
		rank = hidden.RankByNumericColumn(opts.RankColumn)
	}
	mode := hidden.ModeConjunctive
	if opts.NonConjunctive {
		mode = hidden.ModeRanked
	}
	return hidden.New(t, tk, opts.K, rank, mode)
}

// NewExactMatcher matches records with identical normalized documents
// (Assumption 3 of the paper).
func NewExactMatcher(tk *Tokenizer) Matcher { return match.NewExact(tk) }

// NewExactMatcherOn is NewExactMatcher restricted to aligned key columns
// (local side, hidden side); nil means all columns.
func NewExactMatcherOn(tk *Tokenizer, localCols, hiddenCols []int) Matcher {
	return match.NewExactOn(tk, localCols, hiddenCols)
}

// NewJaccardMatcher matches records whose token-set Jaccard similarity
// meets the threshold — the fuzzy matching of §6.1.
func NewJaccardMatcher(tk *Tokenizer, threshold float64) Matcher {
	return match.NewJaccard(tk, threshold)
}

// NewJaccardMatcherOn is NewJaccardMatcher restricted to key columns.
func NewJaccardMatcherOn(tk *Tokenizer, threshold float64, localCols, hiddenCols []int) Matcher {
	return match.NewJaccardOn(tk, threshold, localCols, hiddenCols)
}

// MatchAll combines matchers conjunctively ("name fuzzy AND city exact").
func MatchAll(parts ...Matcher) Matcher { return match.And(parts...) }

// MatchAny combines matchers disjunctively.
func MatchAny(parts ...Matcher) Matcher { return match.Or(parts...) }

// NewBlockedMatcher builds the classic blocking-then-verification ER
// pipeline: block generates candidates through an indexable matcher
// (exact or Jaccard), verify predicates filter them. The crawl loop's
// similarity join indexes the block, so probes stay fast.
func NewBlockedMatcher(block Matcher, verify ...Matcher) Matcher {
	return match.NewBlockedAnd(block, verify...)
}

// BernoulliSample draws a hidden-database sample with known ratio theta —
// the simulation-side sampler. Use KeywordSample against real interfaces.
func BernoulliSample(hiddenTable *Table, theta float64, seed uint64) *Sample {
	return sample.Bernoulli(hiddenTable, theta, stats.NewRNG(seed))
}

// KeywordSampleConfig configures KeywordSample.
type KeywordSampleConfig = sample.KeywordConfig

// KeywordSample builds a near-uniform hidden-database sample through the
// search interface alone (stand-in for Zhang et al. [48]); the seed pool
// is typically SingleKeywordPool(localTable).
func KeywordSample(s Searcher, pool []Query, tk *Tokenizer, cfg KeywordSampleConfig) (*Sample, error) {
	return sample.Keyword(s, pool, tk, cfg)
}

// SingleKeywordPool extracts every distinct keyword of a table as
// single-keyword queries — the sampler's seed pool (§7.1.2).
func SingleKeywordPool(t *Table, tk *Tokenizer) []Query {
	return sample.SingleKeywordPool(t, tk)
}

// RandomWalkSampleConfig configures RandomWalkSample.
type RandomWalkSampleConfig = sample.RandomWalkConfig

// RandomWalkSample is the zoom-in variant of KeywordSample for interfaces
// where single keywords mostly overflow (large hidden databases behind a
// small k): overflowing walks are narrowed by conjoining further keywords
// until they turn solid.
func RandomWalkSample(s Searcher, pool []Query, tk *Tokenizer, cfg RandomWalkSampleConfig) (*Sample, error) {
	return sample.RandomWalk(s, pool, tk, cfg)
}

// SmartOptions configures NewSmartCrawler.
type SmartOptions struct {
	// Sample enables the QSel-Est estimators; nil falls back to
	// QSel-Simple (frequency-based selection).
	Sample *Sample
	// Unbiased selects the unbiased estimators instead of the biased
	// ones (the paper recommends biased; see §7.2.1).
	Unbiased bool
	// Omega, when > 0 and ≠ 1, uses the Fisher-noncentral weighted
	// estimator (§5.3 extension): top-k records are Omega times as
	// likely to match D as tail records. Requires a Sample and is
	// mutually exclusive with Unbiased.
	Omega float64
	// Pool controls query-pool generation.
	Pool PoolConfig
	// BatchSize > 1 issues the top-n selections concurrently per round
	// (the searcher must be safe for concurrent use, as HTTP clients
	// are); trades a little coverage for wall-clock against slow
	// interfaces.
	BatchSize int
	// Workers is the crawl pipeline's worker-pool size: goroutines
	// issuing each batch, plus shards for index construction and pool
	// mining. Purely a wall-clock knob — at a fixed seed, coverage and
	// the issued-query log are identical for any Workers value; only
	// BatchSize affects selection quality. 0 defaults to BatchSize.
	Workers int
	// Resume continues from a checkpoint saved with SaveCheckpoint; the
	// resumed crawl selects exactly what an uninterrupted crawl with the
	// combined budget would.
	Resume *Result
	// Online enables pay-as-you-go calibration: no sample is needed —
	// the crawler learns query benefits from the results it fetches
	// anyway. Mutually exclusive with Sample.
	Online bool
	// MaxAttempts > 0 enables graceful degradation: failed queries are
	// re-queued up to MaxAttempts times then forfeited instead of
	// aborting the crawl, uncharged failures refund their budget unit,
	// and truncated pages are absorbed partially. The run's Result
	// carries a Resilience report. 0 keeps the strict fail-fast behavior.
	MaxAttempts int
	// Breaker, when non-nil, holds selection rounds while the interface
	// is misbehaving (implies MaxAttempts >= 1). Construct with
	// NewBreaker.
	Breaker *Breaker
	// Deadline, when positive, is the end-to-end wall-clock budget of the
	// crawl (implies MaxAttempts >= 1): selection stops when it expires,
	// in-flight queries fail fast, and queries the deadline interrupts
	// mid-search are forfeited with their budget unit refunded.
	Deadline time.Duration
	// QueryTimeout, when positive, bounds each dispatched search attempt
	// independently of Deadline.
	QueryTimeout time.Duration
	// RetryBudget, when positive, caps requeues at this ratio of
	// dispatches (a retry token bucket earned by successes), so a failing
	// interface cannot amplify its own load through retry storms.
	RetryBudget float64
	// Health, when non-nil, enables per-interface health scoring in
	// federated crawls (NewFederatedCrawler only): allocation bids are
	// scaled by an EWMA success score and degraded interfaces get
	// periodic recovery probes. Use DefaultHealthConfig for the tuned
	// defaults.
	Health *HealthConfig
	// Context, when non-nil, lets the crawl be interrupted gracefully:
	// cancellation stops selection at the next round boundary, drains
	// in-flight queries, and returns the partial (resumable) Result with
	// a nil error.
	Context context.Context
	// Durability, when non-nil, receives synchronous accounting
	// callbacks from the merge stage — attach a Durability (WAL journal +
	// snapshot compaction) from OpenDurability for crash-safe crawls.
	Durability DurabilitySink
	// ResumePending re-issues the unresolved tail of a crashed session's
	// last selection round before any fresh selection; populate it from
	// RecoveredCrawl.Pending together with Resume.
	ResumePending []PendingQuery
}

// NewSmartCrawler builds the paper's SMARTCRAWL framework: query pool from
// D (query sharing), iterative benefit-estimated selection
// (local-database-aware crawling), ΔD prediction, and the lazy
// priority-queue machinery of §6.3.
func NewSmartCrawler(env *Env, opts SmartOptions) (Crawler, error) {
	cfg := crawler.SmartConfig{
		PoolConfig:        opts.Pool,
		Sample:            opts.Sample,
		BatchSize:         opts.BatchSize,
		Concurrency:       opts.Workers,
		Resume:            opts.Resume,
		OnlineCalibration: opts.Online,
		MaxAttempts:       opts.MaxAttempts,
		Breaker:           opts.Breaker,
		Context:           opts.Context,
		Durability:        opts.Durability,
		ResumePending:     opts.ResumePending,
		Deadline:          opts.Deadline,
		QueryTimeout:      opts.QueryTimeout,
		RetryBudget:       opts.RetryBudget,
	}
	if opts.Health != nil {
		return nil, errors.New("smartcrawl: Health scoring applies to federated crawls (NewFederatedCrawler)")
	}
	if opts.Sample != nil {
		cfg.AlphaFallback = true
		switch {
		case opts.Unbiased && opts.Omega > 0 && opts.Omega != 1:
			return nil, errors.New("smartcrawl: Unbiased and Omega are mutually exclusive")
		case opts.Unbiased:
			cfg.Estimator = estimator.Unbiased{}
		case opts.Omega > 0 && opts.Omega != 1:
			cfg.Estimator = estimator.WeightedBiased{Omega: opts.Omega}
		default:
			cfg.Estimator = estimator.Biased{}
		}
	}
	return crawler.NewSmart(env, cfg)
}

// ParseInterfaceSpecs parses the -interfaces CLI grammar — specs
// separated by ';', key=value fields separated by ',' — into one
// InterfaceSpec per federated interface. See internal/federate for the
// full key list.
func ParseInterfaceSpecs(s string) ([]InterfaceSpec, error) {
	return federate.ParseSpecs(s)
}

// BuildInterfaces materializes interface specs into live handles:
// simulated or HTTP backends, fault injection, client-side rate
// limiting, retries, per-interface samples and breakers. local seeds the
// keyword sampler of remote interfaces; o may be nil.
func BuildInterfaces(specs []InterfaceSpec, local *Table, tk *Tokenizer, o *Obs) (*Federation, error) {
	return federate.BuildAll(specs, local, tk, o)
}

// NewFederatedCrawler builds SMARTCRAWL over a set of interfaces H1..Hn
// sharing one global budget: each selection round goes to the interface
// whose best unissued query promises the largest marginal estimated
// benefit (deterministic tie-break by interface index), and results
// merge into one coverage set with cross-interface entity dedupe. With a
// single interface the crawl is byte-identical to NewSmartCrawler over
// that interface's searcher.
//
// Per-interface knobs (sample, estimator, breaker) live on each
// FederatedInterface; the options' Sample, Unbiased, Omega, and Breaker
// fields must be unset.
func NewFederatedCrawler(env *Env, opts SmartOptions, ifaces []FederatedInterface) (Crawler, error) {
	if opts.Sample != nil || opts.Unbiased || opts.Omega != 0 || opts.Breaker != nil {
		return nil, errors.New("smartcrawl: federated crawls take Sample/Estimator/Breaker per interface")
	}
	cfg := crawler.SmartConfig{
		PoolConfig:        opts.Pool,
		BatchSize:         opts.BatchSize,
		Concurrency:       opts.Workers,
		Resume:            opts.Resume,
		OnlineCalibration: opts.Online,
		MaxAttempts:       opts.MaxAttempts,
		Context:           opts.Context,
		Durability:        opts.Durability,
		ResumePending:     opts.ResumePending,
		Deadline:          opts.Deadline,
		QueryTimeout:      opts.QueryTimeout,
		RetryBudget:       opts.RetryBudget,
		Health:            opts.Health,
	}
	// Mirror NewSmartCrawler: sampled interfaces get the §6.2
	// inadequate-sample fallback (α is computed per interface from its
	// own sample), so the n=1 federation estimates exactly like the
	// single-interface construction.
	for _, h := range ifaces {
		if h.Sample != nil {
			cfg.AlphaFallback = true
			break
		}
	}
	return crawler.NewFederatedSmart(env, cfg, ifaces)
}

// SaveCheckpoint serializes a crawl result so a later session can resume
// it (SmartOptions.Resume) — enrichment jobs routinely span multiple API
// quota windows.
func SaveCheckpoint(w io.Writer, res *Result) error {
	return crawler.SaveResult(w, res)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Result, error) {
	return crawler.LoadResult(r)
}

// WriteCheckpointFile saves a checkpoint atomically: readers of path see
// either the previous complete checkpoint or the new one, never a torn
// write — safe to use for the only copy of a crawl's progress.
func WriteCheckpointFile(path string, res *Result) error {
	return durable.WriteFileAtomic(path, func(w io.Writer) error {
		return crawler.SaveResult(w, res)
	})
}

// OpenDurability recovers prior crawl state from a snapshot + WAL journal
// and returns the live crash-safety sink: attach it (and the recovered
// state) to SmartOptions and every charged query becomes durable the
// moment it is absorbed. See docs/OPERATIONS.md "Durability & recovery".
func OpenDurability(opts DurabilityOptions) (*Durability, error) {
	return durable.Open(opts)
}

// RecoverCrawl rebuilds crawl state from a snapshot and/or journal
// without modifying either file — the read-only half of OpenDurability,
// for inspection tooling. localLen pins the expected local-table size; 0
// accepts what the files record.
func RecoverCrawl(snapshotPath, journalPath string, localLen int) (*RecoveredCrawl, error) {
	return durable.Recover(snapshotPath, journalPath, localLen)
}

// NewRetryingSearcher wraps a Searcher so transient failures (network
// blips, 5xx) are retried with exponential backoff before a crawl gives
// up.
func NewRetryingSearcher(s Searcher, retries int, base, max time.Duration) Searcher {
	return &deepweb.Retrying{
		S:       s,
		Retries: retries,
		Backoff: deepweb.ExponentialBackoff(base, max),
	}
}

// NewRateLimitedSearcher wraps a Searcher with a client-side token bucket
// (capacity tokens, refilled at refillPerSec) so a multi-worker crawl
// never exceeds the polite request rate, whatever SmartOptions.Workers is
// set to. A throttled request fails fast with a transient error; compose
// with NewRetryingSearcher (outside) to wait out the refill with backoff.
func NewRateLimitedSearcher(s Searcher, capacity int, refillPerSec float64) Searcher {
	return &deepweb.Limited{S: s, B: deepweb.NewBucket(capacity, refillPerSec)}
}

// ParseFaultProfile turns a CLI fault spec — a preset name (none, mild,
// moderate, severe, transient10) or "timeout=0.05,truncate=0.1"-style
// pairs — into a FaultProfile. Set the Seed on the returned profile.
func ParseFaultProfile(spec string) (FaultProfile, error) {
	return deepweb.ParseFaultProfile(spec)
}

// NewFaultySearcher wraps a Searcher with deterministic, seedable fault
// injection: timeouts, transient 5xx, 429 bursts, truncated and stale
// result pages, per the profile's probabilities. The same seed and
// profile misbehave identically at any worker count — faulty crawls
// replay byte-for-byte.
func NewFaultySearcher(s Searcher, p FaultProfile) Searcher {
	return deepweb.NewFaulty(s, p)
}

// NewBreaker builds a circuit breaker (zero config = defaults: open after
// 5 consecutive failures, half-open after 8 held calls, close after 1
// good probe).
func NewBreaker(cfg BreakerConfig) *Breaker { return deepweb.NewBreaker(cfg) }

// NewGuardedSearcher gates a Searcher through a breaker: while open,
// calls fail fast without reaching the interface (and without being
// charged — see the Resilience report's refund accounting).
func NewGuardedSearcher(s Searcher, b *Breaker) Searcher {
	return &deepweb.Guarded{S: s, B: b}
}

// PorterStem is the Porter stemming algorithm; assign it to
// Tokenizer.Stemmer to fold morphological variants onto one keyword
// (enable only when the hidden database's engine stems too).
func PorterStem(w string) string { return tokenize.PorterStem(w) }

// NewNaiveCrawler builds the NAIVECRAWL baseline: one specific query per
// local record, in seeded random order. keyColumns nil means all columns.
func NewNaiveCrawler(env *Env, keyColumns []int, seed uint64) (Crawler, error) {
	return crawler.NewNaive(env, keyColumns, seed)
}

// NewFullCrawler builds the FULLCRAWL baseline: local-database-oblivious
// crawling by sample-frequent keywords.
func NewFullCrawler(env *Env, smp *Sample) (Crawler, error) {
	return crawler.NewFull(env, smp)
}

// MatchSchemas aligns the attributes of a local and a hidden table by name
// and value overlap.
func MatchSchemas(local, hiddenTable *Table, tk *Tokenizer) SchemaMapping {
	return relational.MatchSchemas(local, hiddenTable, tk)
}

// Enrich crawls with c under the budget and appends the selected hidden
// attributes to the local table in place.
func Enrich(local *Table, hiddenSchema []string, c Crawler, budget int, opts EnrichOptions) (*EnrichReport, *Result, error) {
	return enrich.Enrich(local, hiddenSchema, c, budget, opts)
}

// EnrichmentRequest describes one end-to-end enrichment crawl — the
// engine-level form shared by the smartcrawl CLI and crawld daemon jobs.
// Build one (start from DefaultEnrichmentRequest), then RunEnrichment.
type EnrichmentRequest = engine.Request

// EnrichmentOutcome is the result of RunEnrichment.
type EnrichmentOutcome = engine.Outcome

// DefaultEnrichmentRequest returns a request carrying the smartcrawl CLI
// flag defaults.
func DefaultEnrichmentRequest() EnrichmentRequest { return engine.Defaults() }

// RunEnrichment executes the request end to end: load/assemble the
// interface, recover durable state, crawl, enrich the local table in
// place, and persist the checkpoint. Both user-facing surfaces (the CLI
// and crawld) run exactly this, so equal requests produce byte-identical
// results whichever surface submitted them.
func RunEnrichment(req *EnrichmentRequest) (*EnrichmentOutcome, error) {
	return engine.Run(req)
}
