package smartcrawl_test

import (
	"fmt"
	"log"

	"smartcrawl"
)

// ExampleNewSmartCrawler shows the minimal crawl-and-enrich loop against a
// simulated hidden database.
func ExampleNewSmartCrawler() {
	tk := smartcrawl.NewTokenizer()

	hidden := smartcrawl.NewTable("yelp", []string{"name", "rating"})
	hidden.Append("Thai Noodle House", "4.0")
	hidden.Append("Saigon Ramen", "3.9")
	hidden.Append("Steak House", "4.3")
	db := smartcrawl.NewHiddenDatabase(hidden, tk, smartcrawl.HiddenOptions{K: 2, RankColumn: 1})

	local := smartcrawl.NewTable("mine", []string{"name"})
	local.Append("Thai Noodle House")
	local.Append("Saigon Ramen")

	env := &smartcrawl.Env{
		Local:     local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, nil, []int{0}),
	}
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smartcrawl.BernoulliSample(hidden, 0.5, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("covered:", res.CoveredCount)
	// Output:
	// covered: 2
}

// ExampleEnrich appends a hidden attribute to the covered local records.
func ExampleEnrich() {
	tk := smartcrawl.NewTokenizer()

	hidden := smartcrawl.NewTable("yelp", []string{"name", "rating"})
	hidden.Append("Thai Noodle House", "4.0")
	hidden.Append("Saigon Ramen", "3.9")
	db := smartcrawl.NewHiddenDatabase(hidden, tk, smartcrawl.HiddenOptions{K: 2, RankColumn: 1})

	local := smartcrawl.NewTable("mine", []string{"name"})
	local.Append("Thai Noodle House")

	env := &smartcrawl.Env{
		Local:     local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, nil, []int{0}),
	}
	c, err := smartcrawl.NewNaiveCrawler(env, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	report, _, err := smartcrawl.Enrich(local, hidden.Schema, c, 1,
		smartcrawl.EnrichOptions{Columns: []int{1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.NewColumns[0], "=", local.Records[0].Value(1))
	// Output:
	// h_rating = 4.0
}

// ExampleTokenizer_stemming demonstrates the opt-in Porter stemming stage.
func ExampleTokenizer_stemming() {
	tk := smartcrawl.NewTokenizer()
	tk.Stemmer = smartcrawl.PorterStem
	fmt.Println(tk.Tokens("crawling hidden databases"))
	// Output:
	// [crawl hidden databas]
}
