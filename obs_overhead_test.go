// Overhead budget for the observability layer: metrics hooks ride inside
// the Algorithm-4 crawl loop and the dispatcher, so their cost must be
// invisible next to real work. BenchmarkObsOverhead is the artifact
// recorded in BENCH_obs.json; TestObsOverheadUnderTwoPercent enforces the
// <2% budget in the regular test run using interleaved min-of-N timing.
package smartcrawl_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"smartcrawl"
	"smartcrawl/internal/dataset"
)

// simUniverse is the in-process counterpart of parallelUniverse: the smart
// crawl drives the simulator directly, no HTTP and no injected latency, so
// per-hook overhead is as large a fraction of the run as it can ever be.
// Any overhead invisible here is invisible everywhere.
type simUniverse struct {
	env *smartcrawl.Env
	smp *smartcrawl.Sample
}

func newSimUniverse(tb testing.TB) *simUniverse {
	tb.Helper()
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 42,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K: 50, RankColumn: in.RankColumn,
	})
	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, in.LocalKey, in.HiddenKey),
	}
	return &simUniverse{env: env, smp: smartcrawl.BernoulliSample(in.Hidden, 0.03, 12)}
}

// crawl runs one budget-48 smart crawl with the given sink attached.
func (u *simUniverse) crawl(tb testing.TB, o *smartcrawl.Obs) *smartcrawl.Result {
	tb.Helper()
	u.env.Obs = o
	c, err := smartcrawl.NewSmartCrawler(u.env, smartcrawl.SmartOptions{
		Sample: u.smp, BatchSize: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Run(48)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkObsOverhead times the same in-process crawl under three sinks:
// nil (disabled path — one branch per hook), live metrics, and metrics
// plus a JSONL tracer writing to io.Discard. Recorded in BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	modes := []struct {
		name string
		sink func() *smartcrawl.Obs
	}{
		{"sink=nil", func() *smartcrawl.Obs { return nil }},
		{"sink=metrics", func() *smartcrawl.Obs { return smartcrawl.NewObs() }},
		{"sink=metrics+trace", func() *smartcrawl.Obs {
			o := smartcrawl.NewObs()
			o.SetTracer(smartcrawl.NewTracer(io.Discard))
			return o
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			u := newSimUniverse(b)
			b.ResetTimer()
			var covered int
			for i := 0; i < b.N; i++ {
				res := u.crawl(b, mode.sink())
				if i == 0 {
					covered = res.CoveredCount
				} else if res.CoveredCount != covered {
					b.Fatalf("coverage drifted between iterations: %d vs %d",
						res.CoveredCount, covered)
				}
			}
			b.ReportMetric(float64(covered), "covered")
		})
	}
}

// TestObsOverheadUnderTwoPercent enforces the observability budget: the
// enabled-metrics crawl must cost at most 2% more wall-clock than the nil
// sink (plus a small absolute allowance for timer noise). Runs are
// interleaved and the minimum per mode is compared — min-of-N is robust
// to scheduling noise, which only ever slows a run down.
func TestObsOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceDetectorOn {
		t.Skip("timing budget is meaningless under the race detector")
	}
	u := newSimUniverse(t)
	// Warm both paths (index sharding, page cache) before timing.
	u.crawl(t, nil)
	u.crawl(t, smartcrawl.NewObs())

	// A shared CI machine wobbles single timings by several percent, so a
	// one-shot comparison would flake in both directions. Each attempt
	// compares interleaved min-of-10 timings against the budget — 2%
	// relative plus 3ms absolute for timer granularity — and up to three
	// attempts may run. A real regression shifts every attempt past the
	// budget; noise does not survive three.
	const rounds = 10
	var lastOff, lastOn time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			runtime.GC()
			start := time.Now()
			u.crawl(t, nil)
			if d := time.Since(start); d < minOff {
				minOff = d
			}
			runtime.GC()
			start = time.Now()
			u.crawl(t, smartcrawl.NewObs())
			if d := time.Since(start); d < minOn {
				minOn = d
			}
		}
		lastOff, lastOn = minOff, minOn
		if minOn <= minOff+minOff/50+3*time.Millisecond {
			t.Logf("obs overhead: nil sink min %v, metrics min %v (%.2f%%)",
				minOff, minOn, 100*(float64(minOn)/float64(minOff)-1))
			return
		}
		t.Logf("attempt %d over budget: nil sink min %v, metrics min %v — retrying",
			attempt+1, minOff, minOn)
	}
	t.Fatalf("metrics overhead too high in all attempts: nil sink min %v, metrics min %v (%.2f%%)",
		lastOff, lastOn, 100*(float64(lastOn)/float64(lastOff)-1))
}
