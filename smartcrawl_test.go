package smartcrawl_test

import (
	"strings"
	"testing"

	"smartcrawl"
)

// buildUniverse assembles a small end-to-end scenario through the public
// API only.
func buildUniverse(t *testing.T) (*smartcrawl.Table, *smartcrawl.Table, *smartcrawl.Env, *smartcrawl.Sample) {
	t.Helper()
	tk := smartcrawl.NewTokenizer()

	hiddenTable := smartcrawl.NewTable("yelp", []string{"name", "city", "rating"})
	hiddenTable.Append("Thai Noodle House", "Phoenix", "4.0")
	hiddenTable.Append("Saigon Ramen", "Tempe", "3.9")
	hiddenTable.Append("Thai House", "Phoenix", "4.1")
	hiddenTable.Append("Golden Noodle House", "Mesa", "4.2")
	hiddenTable.Append("Steak House", "Phoenix", "4.3")
	hiddenTable.Append("Curry Garden", "Tempe", "3.5")

	local := smartcrawl.NewTable("mine", []string{"name", "city"})
	local.Append("Thai Noodle House", "Phoenix")
	local.Append("Saigon Ramen", "Tempe")
	local.Append("Thai House", "Phoenix")
	local.Append("Golden Noodle House", "Mesa")

	db := smartcrawl.NewHiddenDatabase(hiddenTable, tk, smartcrawl.HiddenOptions{K: 3, RankColumn: 2})
	smp := smartcrawl.BernoulliSample(hiddenTable, 0.5, 7)
	env := &smartcrawl.Env{
		Local:     local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, nil, []int{0, 1}),
	}
	return local, hiddenTable, env, smp
}

func TestPublicAPISmartCrawl(t *testing.T) {
	_, _, env, smp := buildUniverse(t)
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("covered %d of 4", res.CoveredCount)
	}
}

func TestPublicAPIEnrichEndToEnd(t *testing.T) {
	local, hiddenTable, env, smp := buildUniverse(t)
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		t.Fatal(err)
	}
	mapping := smartcrawl.MatchSchemas(local, hiddenTable, env.Tokenizer)
	report, _, err := smartcrawl.Enrich(local, hiddenTable.Schema, c, 6,
		smartcrawl.EnrichOptions{Mapping: &mapping, Missing: "?"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Enriched != 4 {
		t.Fatalf("enriched %d of 4 (%+v)", report.Enriched, report)
	}
	col := local.Col("h_rating")
	if col == -1 {
		t.Fatalf("h_rating column missing; schema = %v", local.Schema)
	}
	if got := local.Records[0].Value(col); got != "4.0" {
		t.Fatalf("record 0 rating = %q", got)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	_, _, env, smp := buildUniverse(t)
	naive, err := smartcrawl.NewNaiveCrawler(env, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	resN, err := naive.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if resN.CoveredCount == 0 {
		t.Fatal("naive covered nothing")
	}
	full, err := smartcrawl.NewFullCrawler(env, smp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(4); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIKeywordSampler(t *testing.T) {
	local, hiddenTable, env, _ := buildUniverse(t)
	_ = hiddenTable
	pool := smartcrawl.SingleKeywordPool(local, env.Tokenizer)
	if len(pool) == 0 {
		t.Fatal("empty seed pool")
	}
	smp, err := smartcrawl.KeywordSample(env.Searcher, pool, env.Tokenizer,
		smartcrawl.KeywordSampleConfig{Target: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if smp.Len() < 2 {
		t.Fatalf("sample size %d", smp.Len())
	}
}

func TestPublicAPINonConjunctive(t *testing.T) {
	_, hiddenTable, env, _ := buildUniverse(t)
	tk := env.Tokenizer
	db := smartcrawl.NewHiddenDatabase(hiddenTable, tk,
		smartcrawl.HiddenOptions{K: 2, RankColumn: 2, NonConjunctive: true})
	recs, err := db.Search(smartcrawl.Query{"noodle", "thai"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// The all-keyword match ranks first even though other records have
	// higher ratings.
	if !strings.Contains(recs[0].Value(0), "Thai Noodle") {
		t.Fatalf("first result = %q", recs[0].Value(0))
	}
}

func TestPublicAPIJaccardMatcher(t *testing.T) {
	tk := smartcrawl.NewTokenizer()
	m := smartcrawl.NewJaccardMatcher(tk, 0.5)
	a := &smartcrawl.Record{ID: 0, Values: []string{"alpha beta gamma"}}
	b := &smartcrawl.Record{ID: 1, Values: []string{"alpha beta delta"}}
	if !m.Match(a, b) {
		t.Fatal("0.5 Jaccard should match at threshold 0.5")
	}
}
