# SmartCrawl reproduction — common workflows.

GO ?= go

.PHONY: all build vet test test-short race check lint allocguard chaos crashtest fedtest crawldtest tracetest bench bench-hotpath bench-scale experiments examples fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race tier: every package under the detector, including the 64-goroutine
# dispatcher/rate-limiter stress tests in internal/deepweb.
race:
	$(GO) test -race ./...

# The pre-merge gate: lint (vet + gofmt, staticcheck when installed), the
# full suite under the race detector, the allocation-regression guard
# (which -race would skip), the kill-anywhere crash-recovery matrix
# against the real binaries (smartcrawl and crawld), the federation
# suite, the crawld service suite, and the trace-tooling suite.
check: lint race allocguard crashtest fedtest crawldtest tracetest

# Static analysis: go vet, a gofmt cleanliness gate, and staticcheck when
# the binary is on PATH (it is optional — the repo builds with the
# standard toolchain only).
lint: vet
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping"; \
	fi

# Pin of the zero-allocation steady-state selection kernel; runs without
# -race because the detector instruments allocations.
allocguard:
	$(GO) test -count=1 -run TestSteadyStateRemoveAllocFree ./internal/crawler/

# Chaos drill (docs/OPERATIONS.md): the fault-injection and resilience
# tests, ending with the graceful-degradation acceptance sweep — ≥90% of
# clean coverage at a 10% transient-fault rate, fully accounted. The slow
# sweep honors -short, so `go test -short` stays fast.
chaos:
	$(GO) test -v -run 'Faulty|Breaker|Guarded|Resilience|FaultSweep|InjectedFaults' \
		./internal/deepweb/... ./internal/crawler/

# Crash drill (docs/OPERATIONS.md): SIGKILL the real smartcrawl binary at
# deterministic journal points — including mid-record, torn-write ones —
# resume from the snapshot + WAL, and require the combined run to match an
# uninterrupted one byte-for-byte. Built with -race here, so the signal
# handler and shutdown paths run under the detector too.
crashtest:
	$(GO) test -race -count=1 -v -run 'CrashRecovery|GracefulInterrupt' ./internal/durable/crashtest/

# Service drill (docs/OPERATIONS.md "Running crawld"): the jobs
# orchestrator under the race detector — lifecycle, events streaming,
# admission control, drain semantics, concurrent-jobs determinism, and the
# cross-surface e2e that proves a daemon job is byte-identical to the same
# crawl through the smartcrawl CLI. The daemon SIGKILL-recovery cell runs
# with `make crashtest`.
crawldtest:
	$(GO) test -race -count=1 -v ./internal/jobs/

# Federation drill (docs/OPERATIONS.md "Federated crawling"): the
# determinism oracle over seeds × workers × interface counts, the n=1
# single-interface byte-equivalence, the charge-sum budget identity, the
# spec-grammar tests, and the two-hiddenserver e2e — all under the race
# detector. The federated crash matrix runs with `make crashtest`.
fedtest:
	$(GO) test -race -count=1 -v ./internal/federate/

# Trace-tooling drill (docs/OPERATIONS.md "Analyzing a trace with
# tracetool"): the internal/trace parser round-tripped against every
# schema event type, tracetool's golden-file CLI outputs, and the
# clean-vs-transient10 diff e2e on real crawls. Goldens regenerate with
# `go test ./cmd/tracetool/ -update`.
tracetest:
	$(GO) test -race -count=1 -v ./internal/trace/ ./cmd/tracetool/

# One pass over every per-figure bench, tables visible in the log.
bench:
	$(GO) test -bench . -benchtime 1x -v .

# Micro-benchmarks of the substrates.
microbench:
	$(GO) test -bench . -benchmem ./internal/...

# Hot-path microbenchmarks behind BENCH_hotpath.json: pool build + stat
# setup, the selection-loop drain, and the remove/rescore kernel, with
# allocation counts. Raw output lands in bench_hotpath.txt; fold the
# numbers into BENCH_hotpath.json when recording a before/after.
bench-hotpath:
	$(GO) test -bench 'BenchmarkPoolBuild|BenchmarkSelectionLoop|BenchmarkRemove' \
		-benchmem -benchtime 5x -count 1 -run '^$$' ./internal/crawler/ | tee bench_hotpath.txt

# Out-of-core scale benchmarks behind BENCH_scale.json: streaming
# ingestion, sampled pool build, and the selection-loop drain over the
# memory-mapped index, all at 10× the BENCH_hotpath corpus with a
# heap-peak-MB column. TestScaleMemoryCeiling (plain `make test`) pins
# the mapped path's heap growth under a fixed budget.
bench-scale:
	$(GO) test -bench 'BenchmarkScale' -benchmem -benchtime 3x -count 1 \
		-run '^$$' -timeout 30m ./internal/crawler/ | tee bench_scale.txt

# Regenerate every paper table/figure at 10% scale. The output is not
# committed (results_scale01.txt is gitignored); EXPERIMENTS.md records
# the reference numbers.
experiments:
	$(GO) run ./cmd/experiments -scale 0.1 all | tee results_scale01.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dblp_enrichment
	$(GO) run ./examples/yelp_enrichment
	$(GO) run ./examples/http_crawl
	$(GO) run ./examples/quota_resume
	$(GO) run ./examples/form_crawl

fuzz:
	$(GO) test -fuzz FuzzTokens -fuzztime 30s ./internal/tokenize/
	$(GO) test -fuzz FuzzPorterStem -fuzztime 30s ./internal/tokenize/
	$(GO) test -fuzz FuzzLoadResult -fuzztime 30s ./internal/crawler/
	$(GO) test -fuzz FuzzLoadCSV -fuzztime 30s ./internal/relational/
	$(GO) test -fuzz FuzzJournalRecover -fuzztime 30s ./internal/durable/
	$(GO) test -fuzz FuzzParseTrace -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzParseFaultProfile -fuzztime 30s ./internal/deepweb/
	$(GO) test -fuzz FuzzParseSpecs -fuzztime 30s ./internal/federate/
	$(GO) test -fuzz FuzzPostingBlockRoundTrip -fuzztime 30s ./internal/index/

# Line-coverage report; per-package baseline numbers are recorded in
# DESIGN.md ("Observability" section) — regenerate them with this target
# after substantive changes.
cover:
	$(GO) test -coverprofile cover.out ./...
	$(GO) tool cover -func cover.out | tail -1

clean:
	$(GO) clean ./...
