// HTTP crawl: runs the whole pipeline over a network boundary. The example
// starts a hiddenserver-style HTTP API (with a request rate limit) in this
// process, then crawls it with the HTTP client — the crawler sees nothing
// but GET /search?q=… with top-k responses and 429s, exactly like a real
// web API.
//
// Run with: go run ./examples/http_crawl
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"smartcrawl"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/deepweb/httpapi"
)

func main() {
	// Server side: a Yelp-like hidden database behind an HTTP API
	// allowing bursts of 50 requests, refilling 200/second.
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: 4000,
		LocalSize:  400,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K:          50,
		RankColumn: in.RankColumn,
	})
	limiter := httpapi.NewTokenBucket(50, 200)
	server := httptest.NewServer(httpapi.NewServer(db, tk, limiter).Handler())
	defer server.Close()
	fmt.Printf("hidden database serving %d records at %s\n", in.Hidden.Len(), server.URL)

	// Client side: only the URL is known.
	client := &httpapi.Client{
		BaseURL:    server.URL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
		Retries:    10,
		RetryDelay: 50 * time.Millisecond, // back off when rate limited
	}
	if err := client.Probe(smartcrawl.Query{"thai"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interface reports top-k = %d\n", client.K())

	// Build the sample through the HTTP interface.
	pool := smartcrawl.SingleKeywordPool(in.Local, tk)
	smp, err := smartcrawl.KeywordSample(client, pool, tk, smartcrawl.KeywordSampleConfig{
		Target:     80,
		MaxQueries: 20000,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d records over HTTP (θ̂ = %.3f%%, %d requests)\n",
		smp.Len(), 100*smp.Theta, smp.QueriesSpent)

	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  client,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, in.LocalKey, in.HiddenKey),
	}
	crawler, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}
	res, err := crawler.Run(120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl over HTTP: %d queries, covered %d/%d local records (%.1f%%)\n",
		res.QueriesIssued, res.CoveredCount, in.Local.Len(),
		100*float64(res.CoveredCount)/float64(in.Local.Len()))
}
