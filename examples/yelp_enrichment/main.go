// Yelp enrichment: the paper's real-hidden-database scenario (§7.3). The
// local table holds stale business listings (names drifted since they were
// collected); the hidden database is Yelp-like — a NON-conjunctive ranked
// keyword interface with k = 50 — and the sample must be built through the
// interface itself with the keyword random-walk sampler. Fuzzy Jaccard
// matching bridges the drift.
//
// Run with: go run ./examples/yelp_enrichment
package main

import (
	"fmt"
	"log"

	"smartcrawl"
	"smartcrawl/internal/dataset"
)

func main() {
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: 8000,
		LocalSize:  800,
		DriftRate:  0.15, // stale names
		DeltaD:     40,   // closed businesses
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K:              50,
		RankColumn:     in.RankColumn,
		NonConjunctive: true, // Yelp may return partial-keyword matches
	})

	// Sample the hidden database through its own interface, paying real
	// queries — the offline cost the paper amortizes across users.
	pool := smartcrawl.SingleKeywordPool(in.Local, tk)
	smp, err := smartcrawl.KeywordSample(db, pool, tk, smartcrawl.KeywordSampleConfig{
		Target:     150,
		MaxQueries: 30000,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample: %d records, estimated θ = %.3f%% (true %.3f%%), %d queries spent offline\n\n",
		smp.Len(), 100*smp.Theta, 100*float64(smp.Len())/float64(in.Hidden.Len()),
		smp.QueriesSpent)

	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  db,
		Tokenizer: tk,
		// Drifted names need fuzzy matching (§6.1).
		Matcher: smartcrawl.NewJaccardMatcherOn(tk, 0.5, in.LocalKey, in.HiddenKey),
	}

	recall := func(c smartcrawl.Crawler, budget int) float64 {
		res, err := c.Run(budget)
		if err != nil {
			log.Fatal(err)
		}
		covered := 0
		for _, h := range in.Truth {
			if h < 0 {
				continue
			}
			if _, ok := res.Crawled[h]; ok {
				covered++
			}
		}
		return 100 * float64(covered) / float64(in.Local.Len()-in.DeltaD)
	}

	fmt.Println("recall vs budget (percent of matchable records whose hidden twin was crawled):")
	fmt.Printf("%8s %14s %14s\n", "budget", "SmartCrawl-B", "NaiveCrawl")
	for _, budget := range []int{80, 160, 320, 640, 800} {
		smart, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
		if err != nil {
			log.Fatal(err)
		}
		naive, err := smartcrawl.NewNaiveCrawler(env, nil, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %13.1f%% %13.1f%%\n", budget, recall(smart, budget), recall(naive, budget))
	}

	// Finally, enrich the stale table with fresh ratings and categories.
	smart, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}
	report, _, err := smartcrawl.Enrich(in.Local, in.Hidden.Schema, smart, 400,
		smartcrawl.EnrichOptions{Columns: []int{2, 3}, Missing: ""})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenrichment: %d/%d records received %v (%.1f%% coverage, %d queries)\n",
		report.Enriched, in.Local.Len(), report.NewColumns,
		100*report.Coverage, report.QueriesIssued)
}
