// Quota resume: real enrichment jobs span multiple API-quota windows (the
// paper's motivating quotas: Yelp allows 25,000 requests per day). This
// example crawls under a "daily" budget, checkpoints the result to disk,
// and resumes the next "day" — then verifies the two-session crawl covered
// exactly what one uninterrupted crawl with the combined budget would.
//
// Run with: go run ./examples/quota_resume
package main

import (
	"bytes"
	"fmt"
	"log"

	"smartcrawl"
	"smartcrawl/internal/dataset"
)

func main() {
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 40000,
		HiddenSize: 10000,
		LocalSize:  1000,
		Seed:       99,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K:          100,
		RankColumn: in.RankColumn,
	})
	smp := smartcrawl.BernoulliSample(in.Hidden, 0.005, 3)
	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, in.LocalKey, in.HiddenKey),
	}

	const dailyQuota = 70

	// Day 1: crawl until the quota runs out, checkpoint.
	day1, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}
	res1, err := day1.Run(dailyQuota)
	if err != nil {
		log.Fatal(err)
	}
	var checkpoint bytes.Buffer // stands in for a file on disk
	if err := smartcrawl.SaveCheckpoint(&checkpoint, res1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: %3d queries, %4d/%d covered — checkpoint saved (%d bytes)\n",
		res1.QueriesIssued, res1.CoveredCount, in.Local.Len(), checkpoint.Len())

	// Day 2: reload and continue. The crawler never re-issues day 1's
	// queries and keeps its covered records.
	loaded, err := smartcrawl.LoadCheckpoint(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	day2, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{
		Sample: smp,
		Resume: loaded,
	})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := day2.Run(dailyQuota)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2: %3d queries total, %4d/%d covered\n",
		res2.QueriesIssued, res2.CoveredCount, in.Local.Len())

	// Reference: one uninterrupted crawl with the combined budget.
	ref, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run(2 * dailyQuota)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted reference: %3d queries, %4d/%d covered\n",
		refRes.QueriesIssued, refRes.CoveredCount, in.Local.Len())

	if res2.CoveredCount != refRes.CoveredCount || res2.QueriesIssued != refRes.QueriesIssued {
		log.Fatalf("resumed crawl diverged from the uninterrupted reference")
	}
	fmt.Println("resumed crawl is query-for-query identical to the uninterrupted one ✓")
}
