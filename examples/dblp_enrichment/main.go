// DBLP enrichment: the paper's motivating scenario — a data scientist has
// a list of publications and wants each paper's citation count, which only
// a hidden bibliography database exposes. This example generates a
// simulated-DBLP instance (|H| = 20,000 publications, |D| = 2,000),
// compares SMARTCRAWL against NAIVECRAWL and FULLCRAWL under the same
// budget, and enriches the local table with the winner.
//
// Run with: go run ./examples/dblp_enrichment
package main

import (
	"fmt"
	"log"

	"smartcrawl"
	"smartcrawl/internal/dataset"
)

func main() {
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 80000,
		HiddenSize: 20000,
		LocalSize:  2000,
		DeltaD:     100, // some local papers are missing from the hidden DB
		Seed:       2019,
	})
	if err != nil {
		log.Fatal(err)
	}

	tk := smartcrawl.NewTokenizer()
	db := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K:          100,
		RankColumn: in.RankColumn, // the engine ranks by year, unknown to us
	})
	smp := smartcrawl.BernoulliSample(in.Hidden, 0.005, 7)
	env := &smartcrawl.Env{
		Local:     in.Local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, in.LocalKey, in.HiddenKey),
	}

	const budget = 400 // 20% of |D|
	fmt.Printf("|D| = %d (%d not in H), |H| = %d, budget = %d queries\n\n",
		in.Local.Len(), in.DeltaD, in.Hidden.Len(), budget)

	type contender struct {
		name string
		mk   func() (smartcrawl.Crawler, error)
	}
	contenders := []contender{
		{"SmartCrawl-B", func() (smartcrawl.Crawler, error) {
			return smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
		}},
		{"NaiveCrawl", func() (smartcrawl.Crawler, error) {
			return smartcrawl.NewNaiveCrawler(env, nil, 1)
		}},
		{"FullCrawl", func() (smartcrawl.Crawler, error) {
			return smartcrawl.NewFullCrawler(env, smp)
		}},
	}
	for _, c := range contenders {
		cr, err := c.mk()
		if err != nil {
			log.Fatal(err)
		}
		res, err := cr.Run(budget)
		if err != nil {
			log.Fatal(err)
		}
		// Score against ground truth: a local paper counts as covered
		// when its true hidden counterpart was crawled.
		covered := 0
		for _, h := range in.Truth {
			if h < 0 {
				continue
			}
			if _, ok := res.Crawled[h]; ok {
				covered++
			}
		}
		fmt.Printf("%-14s covered %4d / %d records (%.1f%%) with %d queries\n",
			c.name, covered, in.Local.Len()-in.DeltaD,
			100*float64(covered)/float64(in.Local.Len()-in.DeltaD),
			res.QueriesIssued)
	}

	// Enrich with SmartCrawl: append year and citations.
	cr, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}
	report, _, err := smartcrawl.Enrich(in.Local, in.Hidden.Schema, cr, budget,
		smartcrawl.EnrichOptions{Columns: []int{3, 4}, Missing: "-"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenriched columns %v; sample rows:\n", report.NewColumns)
	for _, r := range in.Local.Records[:5] {
		fmt.Printf("  %.60q → year=%s citations=%s\n",
			r.Value(0), r.Value(3), r.Value(4))
	}
}
