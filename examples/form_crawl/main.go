// Form crawl: the paper defers form-based search interfaces to future work
// (§9); internal/formweb implements them. This example crawls the same
// Yelp-like hidden database through two interfaces — a categorical form
// (city, category) and the keyword search box — with the same budget, and
// shows the structural trade-off: a form query can sweep a whole category
// slice at once, but the grid of distinct form queries is finite and its
// reach is capped at #combinations × k.
//
// Run with: go run ./examples/form_crawl
package main

import (
	"fmt"
	"log"

	"smartcrawl"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/formweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
)

func main() {
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: 6000,
		LocalSize:  600,
		Seed:       31,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := smartcrawl.NewTokenizer()

	// Local table with the categorical attributes the form can filter on
	// (projected from the ground-truth twins for the demo).
	local := relational.NewTable("mine", []string{"name", "city", "category"})
	for _, h := range in.Truth {
		r := in.Hidden.Records[h]
		local.Append(r.Value(0), r.Value(1), r.Value(2))
	}
	matcher := match.NewExactOn(tk, []int{0, 1}, []int{0, 1})
	const budget = 400
	rank := hidden.RankByNumericColumn(in.RankColumn)

	// Interface 1: the categorical form over (city, category).
	formDB := formweb.New(in.Hidden, []int{1, 2}, 50, func(r *relational.Record) float64 {
		return rank(r)
	})
	pool, err := formweb.GeneratePool(local, []int{1, 2}, []int{1, 2}, 1)
	if err != nil {
		log.Fatal(err)
	}
	formRes, err := formweb.Crawl(local, formDB, pool, tk, matcher,
		[]int{1, 2}, []int{1, 2}, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("form interface:    %3d distinct queries available, issued %3d, covered %3d/%d\n",
		len(pool), formRes.QueriesIssued, formRes.CoveredCount, local.Len())

	// Interface 2: the keyword search box, crawled by SMARTCRAWL with
	// pay-as-you-go calibration (no sample needed).
	kwDB := smartcrawl.NewHiddenDatabase(in.Hidden, tk, smartcrawl.HiddenOptions{
		K:          50,
		RankColumn: in.RankColumn,
	})
	env := &smartcrawl.Env{
		Local:     local,
		Searcher:  kwDB,
		Tokenizer: tk,
		Matcher:   matcher,
	}
	c, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Online: true})
	if err != nil {
		log.Fatal(err)
	}
	kwRes, err := c.Run(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword interface: unbounded query space,  issued %3d, covered %3d/%d\n",
		kwRes.QueriesIssued, kwRes.CoveredCount, local.Len())
}
