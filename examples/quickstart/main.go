// Quickstart: enrich a small restaurant table with ratings from a
// simulated hidden database, using the public smartcrawl API end to end —
// build the tables, wrap the hidden one in a top-k search interface,
// sample it, crawl with SMARTCRAWL, and print the enriched table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"smartcrawl"
)

func main() {
	tk := smartcrawl.NewTokenizer()

	// The hidden database: a Yelp-like table we can only query through
	// a top-3 keyword-search interface ranked by rating.
	hidden := smartcrawl.NewTable("yelp", []string{"name", "city", "rating"})
	hidden.Append("Thai Noodle House", "Phoenix", "4.0")
	hidden.Append("Saigon Ramen", "Tempe", "3.9")
	hidden.Append("Thai House", "Phoenix", "4.1")
	hidden.Append("Golden Noodle House", "Mesa", "4.2")
	hidden.Append("Steak House", "Phoenix", "4.3")
	hidden.Append("Curry Garden", "Tempe", "3.5")
	hidden.Append("Desert Taqueria", "Phoenix", "4.4")
	db := smartcrawl.NewHiddenDatabase(hidden, tk, smartcrawl.HiddenOptions{
		K:          3,
		RankColumn: 2,
	})

	// The local database: the table we want to extend with ratings.
	local := smartcrawl.NewTable("mine", []string{"name", "city"})
	local.Append("Thai Noodle House", "Phoenix")
	local.Append("Saigon Ramen", "Tempe")
	local.Append("Thai House", "Phoenix")
	local.Append("Golden Noodle House", "Mesa")

	// A hidden-database sample powers the benefit estimators. In
	// simulation we can Bernoulli-sample directly; against a real
	// interface use KeywordSample.
	smp := smartcrawl.BernoulliSample(hidden, 0.5, 42)

	env := &smartcrawl.Env{
		Local:     local,
		Searcher:  db,
		Tokenizer: tk,
		Matcher:   smartcrawl.NewExactMatcherOn(tk, nil, []int{0, 1}),
	}
	crawler, err := smartcrawl.NewSmartCrawler(env, smartcrawl.SmartOptions{Sample: smp})
	if err != nil {
		log.Fatal(err)
	}

	// Align schemas automatically and enrich within a 4-query budget.
	mapping := smartcrawl.MatchSchemas(local, hidden, tk)
	report, result, err := smartcrawl.Enrich(local, hidden.Schema, crawler, 4,
		smartcrawl.EnrichOptions{Mapping: &mapping, Missing: "?"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("issued %d queries, enriched %d/%d records (%.0f%% coverage)\n",
		report.QueriesIssued, report.Enriched, local.Len(), 100*report.Coverage)
	for i, step := range result.Steps {
		fmt.Printf("  query %d: %q covered %d new record(s)\n",
			i+1, step.Query.String(), step.NewlyCovered)
	}
	fmt.Println()
	if err := local.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
