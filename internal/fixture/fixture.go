// Package fixture builds a small test universe modeled on the paper's
// running example (Figure 1): a 4-record local database of restaurants, a
// 9-record hidden database with a top-2 rating-ranked keyword-search
// interface, and a 3-record (θ = 1/3) hidden-database sample. The exact
// contents are chosen to be self-consistent with the behaviours the paper
// states for the example (q5 = "house" matches three local records and
// overflows, the naive per-record queries are solid, "noodle" is dominated
// by "noodle house", etc.), and every package's tests reuse it.
package fixture

import (
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Universe bundles the running-example databases.
type Universe struct {
	Tokenizer *tokenize.Tokenizer
	Local     *relational.Table // d1..d4
	HiddenTab *relational.Table // h1..h9
	DB        *hidden.Database  // top-2, ranked by rating desc
	Sample    *relational.Table // h3, h5, h6
	Theta     float64           // 1/3
	K         int               // 2

	// Match is the ground-truth entity mapping: local record ID →
	// hidden record ID (d_i matches h_i for i = 0..3).
	Match map[int]int
}

// K and sampling ratio of the running example.
const (
	ExampleK     = 2
	ExampleTheta = 1.0 / 3.0
)

// New constructs the running-example universe.
func New() *Universe {
	tk := tokenize.New()

	local := relational.NewTable("restaurants", []string{"name"})
	local.Append("Thai Noodle House")       // d1 (ID 0)
	local.Append("Saigon Ramen")            // d2 (ID 1)
	local.Append("Thai House")              // d3 (ID 2)
	local.Append("Grand Noodle House Thai") // d4 (ID 3)

	hid := relational.NewTable("yelp", []string{"name", "rating"})
	hid.Append("Thai Noodle House", "4.0")       // h1 matches d1
	hid.Append("Saigon Ramen", "3.9")            // h2 matches d2
	hid.Append("Thai House", "4.1")              // h3 matches d3
	hid.Append("Grand Noodle House Thai", "4.2") // h4 matches d4
	hid.Append("Steak House", "4.3")             // h5
	hid.Append("Ramen Bar", "3.8")               // h6
	hid.Append("Curry House", "3.5")             // h7
	hid.Append("Thai Garden", "3.7")             // h8
	hid.Append("House of Pancakes", "4.9")       // h9

	db := hidden.New(hid, tk, ExampleK,
		hidden.RankByNumericColumn(1), hidden.ModeConjunctive)

	sample := relational.NewTable("yelp-sample", []string{"name", "rating"})
	for _, id := range []int{2, 4, 5} { // h3, h5, h6 — Figure 1(b)
		r := hid.Records[id]
		s := sample.Append(r.Values...)
		_ = s
	}

	return &Universe{
		Tokenizer: tk,
		Local:     local,
		HiddenTab: hid,
		DB:        db,
		Sample:    sample,
		Theta:     ExampleTheta,
		K:         ExampleK,
		Match:     map[int]int{0: 0, 1: 1, 2: 2, 3: 3},
	}
}
