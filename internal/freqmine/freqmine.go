// Package freqmine implements frequent-itemset mining over keyword
// transactions, the engine behind the paper's query-pool generation (§3.1):
// treating each local record's distinct keywords as a transaction, every
// itemset with support ≥ t becomes a candidate query with |q(D)| ≥ t.
//
// Two miners are provided: FP-Growth (Han et al. [24], the algorithm the
// paper cites) as the production path, and Apriori as an independent
// baseline used by property tests to cross-validate results. A closed-
// itemset filter implements the paper's dominance pruning — a query q₂ is
// dominated by q₁ when |q₁(D)| = |q₂(D)| and q₁ ⊇ q₂, which is precisely
// the statement that q₂ is a non-closed itemset.
package freqmine

import (
	"sort"
	"sync"
)

// Itemset is a frequent itemset: sorted item IDs plus the number of
// transactions containing all of them.
type Itemset struct {
	Items   []int
	Support int
}

// Config bounds a mining run.
type Config struct {
	// MinSupport is the paper's frequency threshold t (≥ 1). Itemsets
	// must appear in at least MinSupport transactions.
	MinSupport int
	// MaxLen bounds itemset cardinality; 0 means unbounded. The paper's
	// pool generation needs only short queries (long ones are covered by
	// the per-record naive queries), and bounding the length keeps the
	// 2^|d| candidate space tractable.
	MaxLen int
	// Workers partitions the top-level mining loop — one task per
	// frequent item's conditional tree — across a goroutine pool. The
	// global FP-tree is read-only once built, so partitions share it
	// without locking; each worker collects into a private slice and the
	// shards are concatenated before the final canonical sort, making the
	// output identical for any worker count. 0 or 1 mines sequentially.
	Workers int
}

func (c Config) maxLen() int {
	if c.MaxLen <= 0 {
		return int(^uint(0) >> 1)
	}
	return c.MaxLen
}

// MineFPGrowth returns all itemsets with support ≥ cfg.MinSupport and
// length ≤ cfg.MaxLen, in deterministic order (by descending support, then
// lexicographic items). Transactions are slices of item IDs; duplicates
// within a transaction are ignored.
func MineFPGrowth(transactions [][]int, cfg Config) []Itemset {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	var (
		items []int
		tree  *fpTree
	)
	if maxItem, _, dense := denseItemSpace(transactions); dense {
		items, tree = buildTreeDense(transactions, cfg.MinSupport, maxItem)
	} else {
		items, tree = buildTreeMap(transactions, cfg.MinSupport)
	}

	var out []Itemset
	if cfg.Workers > 1 && len(items) > 1 {
		out = mineParallel(tree, cfg.MinSupport, cfg.maxLen(), cfg.Workers)
	} else {
		mineTree(tree, nil, cfg.MinSupport, cfg.maxLen(), &out)
	}

	// Translate ranks back to item IDs and canonicalize.
	for i := range out {
		for j, r := range out[i].Items {
			out[i].Items[j] = items[r]
		}
		sort.Ints(out[i].Items)
	}
	sortItemsets(out)
	return out
}

// denseItemSpace reports whether the transactions' item IDs are dense
// non-negative integers — the shape querypool produces (vocabulary
// indices) — along with the maximum item and the total item count. Dense
// inputs take the slice-backed preprocessing path; anything with negative
// IDs or an ID space far larger than the data falls back to maps.
func denseItemSpace(transactions [][]int) (maxItem, total int, dense bool) {
	maxItem = -1
	for _, t := range transactions {
		for _, it := range t {
			if it < 0 {
				return 0, 0, false
			}
			if it > maxItem {
				maxItem = it
			}
			total++
		}
	}
	if maxItem < 0 {
		return 0, 0, false // no items at all; map path handles trivially
	}
	return maxItem, total, maxItem <= 8*total+4096
}

// buildTreeDense is the allocation-light preprocessing path for dense
// item IDs: counting, filtering, ranking, and per-transaction dedup all
// run over flat slices with a generation-stamped scratch array, so the
// whole corpus scan costs a handful of allocations instead of one map
// (plus one sorted copy) per transaction. Output is identical to
// buildTreeMap: the frequent-item order is a total order (frequency desc,
// item asc), so the canonical ranks do not depend on iteration order.
func buildTreeDense(transactions [][]int, minSupport, maxItem int) ([]int, *fpTree) {
	freq := make([]int, maxItem+1)
	stamp := make([]int, maxItem+1) // 1-based transaction generation
	for g, t := range transactions {
		gen := g + 1
		for _, it := range t {
			if stamp[it] != gen {
				stamp[it] = gen
				freq[it]++
			}
		}
	}
	var items []int
	for it, f := range freq {
		if f >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool {
		if freq[items[a]] != freq[items[b]] {
			return freq[items[a]] > freq[items[b]]
		}
		return items[a] < items[b]
	})
	rank := make([]int, maxItem+1)
	for i := range rank {
		rank[i] = -1
	}
	for i, it := range items {
		rank[it] = i
	}

	tree := newFPTree(len(items))
	// Reuse the counting scratch: there are at most maxItem+1 frequent
	// items, so the ranks fit in the same backing array.
	rstamp := stamp[:len(items)]
	for i := range rstamp {
		rstamp[i] = -1
	}
	ranked := make([]int, 0, 64)
	for g, t := range transactions {
		ranked = ranked[:0]
		for _, it := range t {
			r := rank[it]
			if r < 0 || rstamp[r] == g {
				continue
			}
			rstamp[r] = g
			ranked = append(ranked, r)
		}
		sort.Ints(ranked)
		tree.insert(ranked, 1) // insert copies nothing it retains beyond counts
	}
	return items, tree
}

// buildTreeMap is the generic preprocessing path for arbitrary item IDs
// (sparse or negative), retained for non-querypool callers and as the
// reference the dense path is equivalence-tested against.
func buildTreeMap(transactions [][]int, minSupport int) ([]int, *fpTree) {
	freq := countItems(transactions)

	// Frequent items ordered by descending frequency (ties: ascending
	// ID), the canonical FP-tree insertion order.
	var items []int
	for it, f := range freq {
		if f >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool {
		if freq[items[a]] != freq[items[b]] {
			return freq[items[a]] > freq[items[b]]
		}
		return items[a] < items[b]
	})
	rank := make(map[int]int, len(items))
	for i, it := range items {
		rank[it] = i
	}

	tree := newFPTree(len(items))
	for _, t := range transactions {
		filtered := filterAndRank(t, rank)
		tree.insert(filtered, 1)
	}
	return items, tree
}

// mineParallel fans the top-level items of the global FP-tree out over a
// worker pool. Items are claimed highest-rank-first (least frequent),
// matching the sequential walk: rare items have small conditional bases,
// so the expensive frequent items drain last and the pool stays busy.
// Shards are concatenated in rank order; the caller's canonical sort makes
// the ordering irrelevant to the final output.
func mineParallel(tree *fpTree, minSupport, maxLen, workers int) []Itemset {
	n := len(tree.header)
	if workers > n {
		workers = n
	}
	shards := make([][]Itemset, n)
	ranks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ranks {
				var out []Itemset
				mineItem(tree, r, nil, minSupport, maxLen, &out)
				shards[r] = out
			}
		}()
	}
	for r := n - 1; r >= 0; r-- {
		ranks <- r
	}
	close(ranks)
	wg.Wait()
	var out []Itemset
	for r := n - 1; r >= 0; r-- {
		out = append(out, shards[r]...)
	}
	return out
}

// MineApriori is the level-wise baseline miner with identical semantics to
// MineFPGrowth. Exponentially slower on dense data; used for validation.
func MineApriori(transactions [][]int, cfg Config) []Itemset {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	// Deduplicate items within transactions and keep them sorted.
	txs := make([][]int, len(transactions))
	for i, t := range transactions {
		txs[i] = sortedUnique(t)
	}

	freq := countItems(txs)
	var level [][]int
	for it, f := range freq {
		if f >= cfg.MinSupport {
			level = append(level, []int{it})
		}
	}
	sort.Slice(level, func(a, b int) bool { return level[a][0] < level[b][0] })

	var out []Itemset
	for len(level) > 0 {
		// Count supports of this level's candidates.
		var frequent [][]int
		for _, cand := range level {
			sup := 0
			for _, t := range txs {
				if containsAll(t, cand) {
					sup++
				}
			}
			if sup >= cfg.MinSupport {
				out = append(out, Itemset{Items: append([]int(nil), cand...), Support: sup})
				frequent = append(frequent, cand)
			}
		}
		if len(frequent) == 0 || len(level[0]) >= cfg.maxLen() {
			break
		}
		level = joinLevel(frequent)
	}
	sortItemsets(out)
	return out
}

// joinLevel produces (k+1)-candidates from sorted k-itemsets sharing their
// first k−1 items (classic Apriori join), with the subset-pruning step.
func joinLevel(frequent [][]int) [][]int {
	freqSet := make(map[string]bool, len(frequent))
	for _, f := range frequent {
		freqSet[keyOf(f)] = true
	}
	var next [][]int
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if !samePrefix(a, b) {
				continue
			}
			cand := append(append([]int(nil), a...), b[len(b)-1])
			sort.Ints(cand)
			// Prune: all k-subsets must be frequent.
			ok := true
			for drop := 0; drop < len(cand); drop++ {
				sub := make([]int, 0, len(cand)-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				if !freqSet[keyOf(sub)] {
					ok = false
					break
				}
			}
			if ok {
				next = append(next, cand)
			}
		}
	}
	return next
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

func keyOf(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, it := range items {
		for it >= 128 {
			b = append(b, byte(it&0x7f)|0x80)
			it >>= 7
		}
		b = append(b, byte(it))
	}
	return string(b)
}

// FilterClosed removes non-closed itemsets: any itemset with a proper
// superset of equal support in the input. This is the paper's dominance
// rule — among queries with the same |q(D)|, keep only the most specific
// (e.g. drop "noodle" when "noodle house" has the same frequency).
// Note the filter is relative to the mined collection: with a MaxLen bound,
// supersets longer than the bound are not considered (they are not pool
// candidates either, so dominance against them is irrelevant).
func FilterClosed(sets []Itemset) []Itemset {
	// Group by support; within a group, an itemset is dominated iff some
	// longer member contains it.
	bySupport := make(map[int][]int) // support -> indices into sets
	for i, s := range sets {
		bySupport[s.Support] = append(bySupport[s.Support], i)
	}
	dominated := make([]bool, len(sets))
	for _, group := range bySupport {
		// Index group members by one item to limit subset checks.
		byItem := make(map[int][]int)
		for _, gi := range group {
			for _, it := range sets[gi].Items {
				byItem[it] = append(byItem[it], gi)
			}
		}
		for _, gi := range group {
			items := sets[gi].Items
			// Candidates: supersets must contain items[0].
			for _, gj := range byItem[items[0]] {
				if gj == gi || len(sets[gj].Items) <= len(items) {
					continue
				}
				if isSubset(items, sets[gj].Items) {
					dominated[gi] = true
					break
				}
			}
		}
	}
	var out []Itemset
	for i, s := range sets {
		if !dominated[i] {
			out = append(out, s)
		}
	}
	return out
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i == len(a) {
			return true
		}
		if a[i] == v {
			i++
		} else if a[i] < v {
			return false
		}
	}
	return i == len(a)
}

func countItems(transactions [][]int) map[int]int {
	freq := make(map[int]int)
	for _, t := range transactions {
		for _, it := range sortedUnique(t) {
			freq[it]++
		}
	}
	return freq
}

func sortedUnique(t []int) []int {
	if len(t) == 0 {
		return nil
	}
	cp := append([]int(nil), t...)
	sort.Ints(cp)
	out := cp[:1]
	for _, v := range cp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func containsAll(sortedTx, sortedItems []int) bool {
	return isSubset(sortedItems, sortedTx)
}

func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(a, b int) bool {
		sa, sb := sets[a], sets[b]
		if sa.Support != sb.Support {
			return sa.Support > sb.Support
		}
		if len(sa.Items) != len(sb.Items) {
			return len(sa.Items) < len(sb.Items)
		}
		for i := range sa.Items {
			if sa.Items[i] != sb.Items[i] {
				return sa.Items[i] < sb.Items[i]
			}
		}
		return false
	})
}
