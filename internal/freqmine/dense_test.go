package freqmine

// Equivalence tests for the dense (slice-backed) preprocessing path
// against the map reference path it replaced on the pool-build hot path.

import (
	"reflect"
	"testing"

	"smartcrawl/internal/stats"
)

// mineFrom mines a prebuilt tree and canonicalizes, mirroring the tail of
// MineFPGrowth, so the two preprocessing paths can be compared end-to-end.
func mineFrom(items []int, tree *fpTree, minSupport, maxLen int) []Itemset {
	var out []Itemset
	mineTree(tree, nil, minSupport, maxLen, &out)
	for i := range out {
		for j, r := range out[i].Items {
			out[i].Items[j] = items[r]
		}
		sortInts(out[i].Items)
	}
	sortItemsets(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestDenseTreeMatchesMapTree mines random dense-ID corpora through both
// preprocessing paths and requires identical itemsets — the ranked item
// order is a total order (frequency desc, item asc), so the outputs must
// agree exactly, not just up to reordering.
func TestDenseTreeMatchesMapTree(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 40; trial++ {
		nTx := 1 + rng.Intn(40)
		nItems := 1 + rng.Intn(12)
		txs := make([][]int, nTx)
		for i := range txs {
			k := rng.Intn(6)
			tx := make([]int, k)
			for j := range tx {
				tx[j] = rng.Intn(nItems) // duplicates within a tx on purpose
			}
			txs[i] = tx
		}
		minSupport := 1 + rng.Intn(4)

		maxItem, _, dense := denseItemSpace(txs)
		hasItems := false
		for _, tx := range txs {
			if len(tx) > 0 {
				hasItems = true
				break
			}
		}
		if hasItems && !dense {
			t.Fatalf("trial %d: dense vocabulary-ID input classified sparse", trial)
		}
		if !hasItems {
			continue
		}
		dItems, dTree := buildTreeDense(txs, minSupport, maxItem)
		mItems, mTree := buildTreeMap(txs, minSupport)
		if !reflect.DeepEqual(dItems, mItems) {
			t.Fatalf("trial %d: ranked items differ: dense=%v map=%v", trial, dItems, mItems)
		}
		got := mineFrom(dItems, dTree, minSupport, 4)
		want := mineFrom(mItems, mTree, minSupport, 4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: mined itemsets differ\ndense: %v\nmap:   %v", trial, got, want)
		}
	}
}

// TestDenseItemSpaceClassification pins the fallback conditions: negative
// IDs and ID spaces far larger than the data must take the map path;
// vocabulary-shaped IDs must take the dense path.
func TestDenseItemSpaceClassification(t *testing.T) {
	if _, _, dense := denseItemSpace([][]int{{0, 1, 2}, {1, 2}}); !dense {
		t.Fatal("small dense IDs classified sparse")
	}
	if _, _, dense := denseItemSpace([][]int{{0, -1}}); dense {
		t.Fatal("negative ID classified dense")
	}
	if _, _, dense := denseItemSpace([][]int{{1 << 30}}); dense {
		t.Fatal("single huge ID classified dense (would allocate 2^30 counters)")
	}
	if _, _, dense := denseItemSpace(nil); dense {
		t.Fatal("empty input classified dense")
	}
	if _, _, dense := denseItemSpace([][]int{{}, {}}); dense {
		t.Fatal("itemless input classified dense")
	}
}

// TestMineFPGrowthSparseFallback runs the public miner on inputs that
// force the map path (negative and huge IDs) and cross-checks against
// Apriori, which shares no preprocessing code.
func TestMineFPGrowthSparseFallback(t *testing.T) {
	txs := [][]int{
		{-5, 3, 1 << 29},
		{-5, 3},
		{3, 1 << 29},
		{-5, 1 << 29, 3},
	}
	cfg := Config{MinSupport: 2, MaxLen: 3}
	got := MineFPGrowth(txs, cfg)
	want := MineApriori(txs, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sparse fallback: FP-Growth %v != Apriori %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("sparse fallback mined nothing")
	}
}
