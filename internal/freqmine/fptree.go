package freqmine

import "sort"

// fpNode is one node of an FP-tree. Children form a singly-linked list
// (child points at the first child, sibling chains the rest): FP-tree
// fan-out is small, so a linear scan beats a per-node map — and, more
// importantly on the pool-build hot path, a node costs exactly one
// allocation instead of node + map. Child order is irrelevant to the
// mined output: mining walks the header chains, never the child lists.
type fpNode struct {
	rank    int // item rank; -1 for the root
	count   int
	parent  *fpNode
	child   *fpNode // first child
	sibling *fpNode // next child of parent
	next    *fpNode // header-table sibling link
}

// fpTree holds the root and the header table (one chain of nodes per item
// rank, used to walk all occurrences of an item bottom-up). Nodes are
// allocated from chunked arenas: blocks are never reallocated once handed
// out, so node pointers stay stable while cutting the per-node allocation
// (the dominant pool-build cost — every conditional tree rebuilds nodes).
type fpTree struct {
	root   fpNode
	header []*fpNode
	arena  []fpNode
}

func newFPTree(nItems int) *fpTree {
	return &fpTree{
		root:   fpNode{rank: -1},
		header: make([]*fpNode, nItems),
	}
}

// newNode hands out the next arena slot, growing by doubling blocks.
// Old blocks are abandoned full — their nodes are reachable from the
// tree, and addresses must not move.
func (t *fpTree) newNode() *fpNode {
	if len(t.arena) == cap(t.arena) {
		n := 2 * cap(t.arena)
		if n < 32 {
			n = 32
		}
		if n > 4096 {
			n = 4096
		}
		t.arena = make([]fpNode, 0, n)
	}
	t.arena = t.arena[:len(t.arena)+1]
	return &t.arena[len(t.arena)-1]
}

// filterAndRank keeps the transaction's frequent items, translated to ranks
// and sorted ascending (most frequent first), deduplicated.
func filterAndRank(t []int, rank map[int]int) []int {
	var out []int
	seen := make(map[int]struct{}, len(t))
	for _, it := range t {
		r, ok := rank[it]
		if !ok {
			continue
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// findChild returns node's child with the given rank, or nil.
func (n *fpNode) findChild(r int) *fpNode {
	for c := n.child; c != nil; c = c.sibling {
		if c.rank == r {
			return c
		}
	}
	return nil
}

// insert adds a ranked transaction with the given count to the tree.
func (t *fpTree) insert(ranked []int, count int) {
	node := &t.root
	for _, r := range ranked {
		child := node.findChild(r)
		if child == nil {
			child = t.newNode()
			*child = fpNode{
				rank:    r,
				parent:  node,
				sibling: node.child,
				next:    t.header[r],
			}
			t.header[r] = child
			node.child = child
		}
		child.count += count
		node = child
	}
}

// mineTree emits every frequent itemset of tree extended by suffix,
// recursing into conditional trees. Itemset items are ranks; the caller
// translates back to item IDs.
func mineTree(tree *fpTree, suffix []int, minSupport, maxLen int, out *[]Itemset) {
	if len(suffix) >= maxLen {
		return
	}
	// Walk items from least frequent (highest rank) to most frequent so
	// conditional bases shrink fastest.
	for r := len(tree.header) - 1; r >= 0; r-- {
		mineItem(tree, r, suffix, minSupport, maxLen, out)
	}
}

// mineItem handles one item of tree's header table: emit the itemset
// {r}∪suffix if frequent, then recurse into r's conditional tree. After
// the tree is built it is only read, so distinct items of the SAME tree
// can be mined from different goroutines concurrently — each invocation
// allocates its own conditional trees and appends to its own out slice.
// This is the partition point of the parallel miner.
func mineItem(tree *fpTree, r int, suffix []int, minSupport, maxLen int, out *[]Itemset) {
	support := 0
	for n := tree.header[r]; n != nil; n = n.next {
		support += n.count
	}
	if support < minSupport {
		return
	}
	itemset := make([]int, 0, len(suffix)+1)
	itemset = append(itemset, r)
	itemset = append(itemset, suffix...)
	*out = append(*out, Itemset{Items: itemset, Support: support})

	if len(itemset) >= maxLen {
		return
	}
	// Conditional pattern base: prefix paths of every node of r. The path
	// scratch is reused across nodes — insert reads it and retains nothing.
	cond := newFPTree(r) // ranks < r only can appear above r
	nonEmpty := false
	var path []int
	for n := tree.header[r]; n != nil; n = n.next {
		path = path[:0]
		for p := n.parent; p != nil && p.rank >= 0; p = p.parent {
			path = append(path, p.rank)
		}
		if len(path) == 0 {
			continue
		}
		// path is bottom-up; reverse to root-down order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		cond.insert(path, n.count)
		nonEmpty = true
	}
	if nonEmpty {
		mineTree(cond, itemset, minSupport, maxLen, out)
	}
}
