package freqmine

import (
	"fmt"
	"reflect"
	"testing"

	"smartcrawl/internal/stats"
)

// brute enumerates all itemsets (up to maxLen) by scanning transactions —
// the ground truth both miners are validated against.
func brute(txs [][]int, minSupport, maxLen int) []Itemset {
	counts := make(map[string]int)
	decode := make(map[string][]int)
	for _, t := range txs {
		u := sortedUnique(t)
		var rec func(start int, cur []int)
		rec = func(start int, cur []int) {
			if len(cur) > 0 {
				k := keyOf(cur)
				counts[k]++
				if _, ok := decode[k]; !ok {
					decode[k] = append([]int(nil), cur...)
				}
			}
			if len(cur) == maxLen {
				return
			}
			for i := start; i < len(u); i++ {
				rec(i+1, append(cur, u[i]))
			}
		}
		rec(0, nil)
	}
	var out []Itemset
	for k, c := range counts {
		if c >= minSupport {
			out = append(out, Itemset{Items: decode[k], Support: c})
		}
	}
	sortItemsets(out)
	return out
}

func randomTxs(rng *stats.RNG, n, vocab, maxItems int) [][]int {
	txs := make([][]int, n)
	for i := range txs {
		m := 1 + rng.Intn(maxItems)
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(vocab)
		}
		txs[i] = t
	}
	return txs
}

func TestMinersAgreeWithBruteForce(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 20; trial++ {
		txs := randomTxs(rng, 30, 8, 5)
		for _, minSup := range []int{1, 2, 3} {
			for _, maxLen := range []int{1, 2, 3, 4} {
				cfg := Config{MinSupport: minSup, MaxLen: maxLen}
				want := brute(txs, minSup, maxLen)
				fp := MineFPGrowth(txs, cfg)
				ap := MineApriori(txs, cfg)
				if !reflect.DeepEqual(fp, want) {
					t.Fatalf("trial %d t=%d len=%d: FP-Growth mismatch\n got %v\nwant %v",
						trial, minSup, maxLen, fp, want)
				}
				if !reflect.DeepEqual(ap, want) {
					t.Fatalf("trial %d t=%d len=%d: Apriori mismatch\n got %v\nwant %v",
						trial, minSup, maxLen, ap, want)
				}
			}
		}
	}
}

func TestMineRunningExample(t *testing.T) {
	// Tokens: 0=thai 1=noodle 2=house 3=saigon 4=ramen 5=grand.
	// Transactions mirror the fixture local database.
	txs := [][]int{
		{0, 1, 2},    // thai noodle house
		{3, 4},       // saigon ramen
		{0, 2},       // thai house
		{5, 1, 2, 0}, // grand noodle house thai
	}
	got := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 4})
	support := func(items ...int) int {
		for _, s := range got {
			if reflect.DeepEqual(s.Items, items) {
				return s.Support
			}
		}
		return -1
	}
	if support(2) != 3 { // house
		t.Errorf("support(house) = %d, want 3", support(2))
	}
	if support(0) != 3 { // thai
		t.Errorf("support(thai) = %d, want 3", support(0))
	}
	if support(1, 2) != 2 { // noodle house
		t.Errorf("support(noodle house) = %d, want 2", support(1, 2))
	}
	if support(1) != 2 { // noodle
		t.Errorf("support(noodle) = %d, want 2", support(1))
	}
	if support(3) != -1 { // saigon appears once: not frequent
		t.Errorf("saigon should not be frequent")
	}
}

func TestFilterClosedDominance(t *testing.T) {
	// The paper's Example 2: "noodle" (support 2) is dominated by
	// "noodle house" (support 2) and must be removed; "house" (support 3)
	// stays.
	txs := [][]int{
		{0, 1, 2},
		{3, 4},
		{0, 2},
		{5, 1, 2, 0},
	}
	mined := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 4})
	closed := FilterClosed(mined)

	has := func(sets []Itemset, items ...int) bool {
		for _, s := range sets {
			if reflect.DeepEqual(s.Items, items) {
				return true
			}
		}
		return false
	}
	if !has(mined, 1) {
		t.Fatal("setup: {noodle} should be mined")
	}
	if has(closed, 1) {
		t.Error("{noodle} should be dominated by {thai, noodle, house}")
	}
	// In this universe every record containing "house" also contains
	// "thai", and every record with "noodle" has all of thai/noodle/house,
	// so the only closed sets are {thai, house} (support 3) and
	// {thai, noodle, house} (support 2).
	want := []Itemset{
		{Items: []int{0, 2}, Support: 3},
		{Items: []int{0, 1, 2}, Support: 2},
	}
	if !reflect.DeepEqual(closed, want) {
		t.Errorf("closed = %v, want %v", closed, want)
	}
}

func TestFilterClosedAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(33)
	for trial := 0; trial < 20; trial++ {
		txs := randomTxs(rng, 25, 7, 5)
		mined := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 4})
		got := FilterClosed(mined)

		// Brute force: keep itemsets with no equal-support proper
		// superset in the mined collection.
		var want []Itemset
		for i, a := range mined {
			dominated := false
			for j, b := range mined {
				if i == j || b.Support != a.Support || len(b.Items) <= len(a.Items) {
					continue
				}
				if isSubset(a.Items, b.Items) {
					dominated = true
					break
				}
			}
			if !dominated {
				want = append(want, a)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: closed filter mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestMaxLenBound(t *testing.T) {
	txs := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}
	for _, maxLen := range []int{1, 2, 3} {
		sets := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: maxLen})
		for _, s := range sets {
			if len(s.Items) > maxLen {
				t.Fatalf("maxLen %d violated: %v", maxLen, s)
			}
		}
	}
	// Unbounded (MaxLen 0) must include the full 4-itemset.
	sets := MineFPGrowth(txs, Config{MinSupport: 2})
	found := false
	for _, s := range sets {
		if len(s.Items) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("unbounded mining should find the 4-itemset")
	}
}

func TestDuplicateItemsInTransaction(t *testing.T) {
	// Duplicates inside a transaction must not inflate support.
	txs := [][]int{{0, 0, 0}, {0}}
	sets := MineFPGrowth(txs, Config{MinSupport: 2})
	if len(sets) != 1 || sets[0].Support != 2 {
		t.Fatalf("sets = %v", sets)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := MineFPGrowth(nil, Config{MinSupport: 2}); len(got) != 0 {
		t.Fatalf("mining nil transactions = %v", got)
	}
	if got := MineApriori([][]int{}, Config{MinSupport: 1}); len(got) != 0 {
		t.Fatalf("mining empty transactions = %v", got)
	}
	if got := FilterClosed(nil); len(got) != 0 {
		t.Fatalf("FilterClosed(nil) = %v", got)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	rng := stats.NewRNG(44)
	txs := randomTxs(rng, 40, 10, 6)
	a := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 3})
	b := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mining must be deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Support < a[i].Support {
			t.Fatal("output must be sorted by descending support")
		}
	}
}

// Itemsets on Zipfian data (the realistic workload shape for query pools).
func TestZipfianWorkload(t *testing.T) {
	rng := stats.NewRNG(55)
	zipf := stats.NewZipf(rng, 1.1, 200)
	txs := make([][]int, 500)
	for i := range txs {
		t := make([]int, 6)
		for j := range t {
			t[j] = zipf.Draw()
		}
		txs[i] = t
	}
	sets := MineFPGrowth(txs, Config{MinSupport: 5, MaxLen: 3})
	if len(sets) == 0 {
		t.Fatal("Zipfian data should produce frequent itemsets")
	}
	// Verify a few supports by scanning.
	for _, s := range sets[:min(10, len(sets))] {
		count := 0
		for _, tx := range txs {
			if containsAll(sortedUnique(tx), s.Items) {
				count++
			}
		}
		if count != s.Support {
			t.Fatalf("itemset %v support %d, scan says %d", s.Items, s.Support, count)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkFPGrowthZipf(b *testing.B) {
	rng := stats.NewRNG(1)
	zipf := stats.NewZipf(rng, 1.0, 2000)
	txs := make([][]int, 10000)
	for i := range txs {
		t := make([]int, 8)
		for j := range t {
			t[j] = zipf.Draw()
		}
		txs[i] = t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 3})
	}
}

func BenchmarkAprioriSmall(b *testing.B) {
	rng := stats.NewRNG(2)
	txs := randomTxs(rng, 200, 50, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineApriori(txs, Config{MinSupport: 2, MaxLen: 3})
	}
}

func ExampleMineFPGrowth() {
	txs := [][]int{{1, 2}, {1, 2, 3}, {1, 3}}
	sets := MineFPGrowth(txs, Config{MinSupport: 2, MaxLen: 2})
	for _, s := range sets {
		fmt.Println(s.Items, s.Support)
	}
	// Output:
	// [1] 3
	// [2] 2
	// [3] 2
	// [1 2] 2
	// [1 3] 2
}

// TestMineFPGrowthParallelMatchesSequential: partitioned mining (one shard
// per top-level conditional tree) must return exactly the itemsets of the
// sequential miner — same sets, same supports, same canonical order.
func TestMineFPGrowthParallelMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		txs := randomTxs(rng, 200, 20, 8)
		for _, minSup := range []int{2, 5} {
			for _, maxLen := range []int{3, 5} {
				seq := MineFPGrowth(txs, Config{MinSupport: minSup, MaxLen: maxLen})
				for _, workers := range []int{2, 4, 16} {
					par := MineFPGrowth(txs, Config{MinSupport: minSup, MaxLen: maxLen, Workers: workers})
					if !reflect.DeepEqual(par, seq) {
						t.Fatalf("trial %d sup=%d len=%d workers=%d: parallel mining diverged\n got %v\nwant %v",
							trial, minSup, maxLen, workers, par, seq)
					}
				}
			}
		}
	}
}
