package dataset

import (
	"fmt"
	"strings"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
)

// Name-part vocabularies for synthetic businesses. Type words ("house",
// "grill", …) are deliberately heavy-tail — they recur across thousands of
// businesses, which is what makes short shared queries productive on Yelp.
var (
	bizAdjectives = []string{
		"golden", "royal", "happy", "little", "big", "old", "new",
		"sunny", "lucky", "grand", "silver", "blue", "red", "green",
		"desert", "canyon", "copper", "mesa", "valley", "sun",
	}
	bizCuisines = []string{
		"thai", "chinese", "mexican", "italian", "indian", "greek",
		"french", "korean", "japanese", "vietnamese", "american",
		"cuban", "turkish", "persian", "hawaiian", "southern",
		"tex", "sonoran", "mediterranean", "spanish",
	}
	bizTypes = []string{
		"house", "bar", "grill", "cafe", "kitchen", "express",
		"palace", "garden", "diner", "bistro", "cantina", "taqueria",
		"pizzeria", "bakery", "steakhouse", "buffet", "deli",
		"roadhouse", "lounge", "eatery",
	}
	bizCategories = []string{
		"Restaurants", "Bars", "Coffee & Tea", "Fast Food", "Pizza",
		"Mexican", "Breakfast & Brunch", "Sandwiches", "Nightlife",
		"Bakeries",
	}
	azCities = []string{
		"Phoenix", "Scottsdale", "Tempe", "Mesa", "Chandler",
		"Glendale", "Gilbert", "Peoria", "Surprise", "Tucson",
		"Flagstaff", "Yuma", "Avondale", "Goodyear", "Buckeye",
	}
)

// YelpConfig parameterizes the Yelp-like instance of §7.1.2 / §7.3.
type YelpConfig struct {
	// HiddenSize is the number of businesses in the hidden database
	// (the paper's Arizona slice has 36,500).
	HiddenSize int
	// LocalSize is |D| (the paper samples 3,000).
	LocalSize int
	// DriftRate is the fraction of local records whose name drifted
	// from the hidden version (the dataset aging the paper observes) —
	// realized as one word-level edit, like error%.
	DriftRate float64
	// DeltaD is the number of local records with no hidden counterpart
	// (businesses that closed).
	DeltaD int
	// Seed drives all generation.
	Seed uint64
}

// GenerateYelp builds a Yelp-like instance. The hidden table has schema
// (name, city, category, rating, reviews); the local table (name, city).
// Ground truth is recorded at construction, standing in for the paper's
// manual labelling.
func GenerateYelp(cfg YelpConfig) (*Instance, error) {
	switch {
	case cfg.HiddenSize <= 0 || cfg.LocalSize <= 0:
		return nil, fmt.Errorf("dataset: sizes must be positive: %+v", cfg)
	case cfg.DeltaD < 0 || cfg.DeltaD > cfg.LocalSize:
		return nil, fmt.Errorf("dataset: DeltaD %d out of range", cfg.DeltaD)
	case cfg.LocalSize-cfg.DeltaD > cfg.HiddenSize:
		return nil, fmt.Errorf("dataset: |D∩H| exceeds |H|")
	case cfg.DriftRate < 0 || cfg.DriftRate > 1:
		return nil, fmt.Errorf("dataset: drift rate %v out of [0,1]", cfg.DriftRate)
	}
	rng := stats.NewRNG(cfg.Seed)

	// Proper-name pool: the rare tokens real business names carry
	// ("Rosita's", "Casa Ramirez"). They give the keyword vocabulary the
	// long tail that pool-based sampling (and NaiveCrawl) depend on —
	// without them every keyword would overflow a k=50 interface.
	properNames := make([]string, maxInt(cfg.HiddenSize/8, 50))
	for i := range properNames {
		properNames[i] = properName(i)
	}

	hidden := relational.NewTable("yelp-hidden",
		[]string{"name", "city", "category", "rating", "reviews"})
	seen := make(map[string]int)
	for i := 0; i < cfg.HiddenSize; i++ {
		name := businessName(rng)
		if rng.Bool(0.6) {
			name = properNames[rng.Intn(len(properNames))] + " " + name
		}
		city := azCities[rng.Intn(len(azCities))]
		key := name + "|" + city
		if n := seen[key]; n > 0 {
			name = fmt.Sprintf("%s %d", name, n+1)
		}
		seen[key]++
		hidden.Append(
			name,
			city,
			bizCategories[rng.Intn(len(bizCategories))],
			fmt.Sprintf("%.1f", 1.0+rng.Float64()*4.0),
			fmt.Sprintf("%d", rng.Intn(2000)),
		)
	}

	inD := cfg.LocalSize - cfg.DeltaD
	pick := rng.SampleWithoutReplacement(cfg.HiddenSize, inD)
	local := relational.NewTable("yelp-local", []string{"name", "city"})
	truth := make([]int, 0, cfg.LocalSize)
	for _, h := range pick {
		r := hidden.Records[h]
		local.Append(r.Value(0), r.Value(1))
		truth = append(truth, h)
	}
	// ΔD: plausible businesses absent from H.
	for i := 0; i < cfg.DeltaD; i++ {
		local.Append(businessName(rng), azCities[rng.Intn(len(azCities))])
		truth = append(truth, -1)
	}
	// Shuffle local rows (and truth in lockstep), then re-ID densely.
	rng.Shuffle(local.Len(), func(i, j int) {
		local.Records[i], local.Records[j] = local.Records[j], local.Records[i]
		truth[i], truth[j] = truth[j], truth[i]
	})
	for i, r := range local.Records {
		r.ID = i
	}

	// Drift: word-level edits on local names, simulating stale data.
	if cfg.DriftRate > 0 {
		driftVocab := append(append([]string{}, bizAdjectives...), bizTypes...)
		injectErrors(local, 0, cfg.DriftRate, driftVocab, rng)
	}

	return &Instance{
		Local:      local,
		Hidden:     hidden,
		Truth:      truth,
		DeltaD:     cfg.DeltaD,
		LocalKey:   []int{0, 1},
		HiddenKey:  []int{0, 1},
		RankColumn: 3,
	}, nil
}

// properName deterministically composes a capitalized rare name token.
func properName(i int) string {
	s := syllables[i%len(syllables)] +
		syllables[(i/len(syllables))%len(syllables)] +
		syllables[(i/(len(syllables)*len(syllables)))%len(syllables)]
	if i >= len(syllables)*len(syllables)*len(syllables) {
		s = fmt.Sprintf("%s%d", s, i)
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// businessName composes a 1–4 word business name with heavy-tail shared
// tokens.
func businessName(rng *stats.RNG) string {
	var parts []string
	if rng.Bool(0.55) {
		parts = append(parts, bizAdjectives[rng.Intn(len(bizAdjectives))])
	}
	parts = append(parts, bizCuisines[rng.Intn(len(bizCuisines))])
	parts = append(parts, bizTypes[rng.Intn(len(bizTypes))])
	if rng.Bool(0.2) {
		parts = append(parts, bizTypes[rng.Intn(len(bizTypes))])
	}
	// Title-case for realism; tokenization lowercases anyway.
	for i, p := range parts {
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, " ")
}
