package dataset

import (
	"fmt"
	"strings"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
)

// DBLPConfig parameterizes the simulated-DBLP instance builder, mirroring
// Table 3 of the paper.
type DBLPConfig struct {
	// CorpusSize is the size of the full synthetic DBLP (the paper used
	// the 5M-record dump; scale to taste). Must be at least HiddenSize +
	// DeltaD.
	CorpusSize int
	// HiddenSize is |H|.
	HiddenSize int
	// LocalSize is |D| including the DeltaD records.
	LocalSize int
	// DeltaD is |ΔD| = |D − H|: local records with no hidden counterpart.
	DeltaD int
	// ErrorRate is the paper's error%: the fraction of local records
	// mutated by one word-level edit (remove/add/replace, p=1/3 each).
	ErrorRate float64
	// Seed drives all generation.
	Seed uint64
}

// Instance is a generated local/hidden database pair with ground truth.
type Instance struct {
	// Local is the user's table (DBLP: title/venue/authors; Yelp:
	// name/city).
	Local *relational.Table
	// Hidden is the hidden database, carrying the enrichment attributes
	// the local side lacks (DBLP: year/citations; Yelp:
	// category/rating/reviews).
	Hidden *relational.Table
	// Truth maps each local record ID to its matching hidden record ID,
	// or -1 for ΔD records. Evaluation-only ground truth.
	Truth []int
	// DeltaD is the number of -1 entries in Truth.
	DeltaD int
	// LocalKey / HiddenKey are the aligned key columns used for entity
	// matching.
	LocalKey, HiddenKey []int
	// RankColumn is the hidden column the simulated search engine ranks
	// results by (DBLP: year, per §7.1.1; Yelp: rating).
	RankColumn int
}

// paper is one synthetic corpus entry.
type paper struct {
	title   string
	venue   string
	authors string
	year    int
}

// GenerateDBLP builds a simulated-DBLP instance following §7.1.1:
//
//   - a corpus of CorpusSize papers with Zipfian title vocabulary;
//   - D − ΔD drawn from the papers of "database community" venues;
//   - H = (H − D) ∪ (H ∩ D), with H − D drawn from the whole corpus and
//     H ∩ D being exactly the non-ΔD local records;
//   - ΔD extra records drawn from the corpus and added to D but not H;
//   - error% word edits applied to local titles.
func GenerateDBLP(cfg DBLPConfig) (*Instance, error) {
	inD := cfg.LocalSize - cfg.DeltaD
	switch {
	case cfg.LocalSize <= 0 || cfg.HiddenSize <= 0 || cfg.CorpusSize <= 0:
		return nil, fmt.Errorf("dataset: sizes must be positive: %+v", cfg)
	case cfg.DeltaD < 0 || cfg.DeltaD > cfg.LocalSize:
		return nil, fmt.Errorf("dataset: DeltaD %d out of range", cfg.DeltaD)
	case inD > cfg.HiddenSize:
		return nil, fmt.Errorf("dataset: |D∩H| = %d exceeds |H| = %d", inD, cfg.HiddenSize)
	case cfg.CorpusSize < cfg.HiddenSize+cfg.DeltaD:
		return nil, fmt.Errorf("dataset: corpus %d too small for |H|+|ΔD| = %d",
			cfg.CorpusSize, cfg.HiddenSize+cfg.DeltaD)
	case cfg.ErrorRate < 0 || cfg.ErrorRate > 1:
		return nil, fmt.Errorf("dataset: error rate %v out of [0,1]", cfg.ErrorRate)
	}

	rng := stats.NewRNG(cfg.Seed)
	vocabSize := cfg.CorpusSize/2 + len(csWords)
	if vocabSize > 50000 {
		vocabSize = 50000
	}
	vocab := vocabulary(vocabSize)
	zipf := stats.NewZipf(rng, 1.05, len(vocab))

	// Corpus. Titles must be distinct so hidden records are distinct
	// entities (footnote 3: H has no duplicates); a numeric suffix
	// disambiguates collisions.
	corpus := make([]paper, cfg.CorpusSize)
	seenTitles := make(map[string]int)
	dbCommunity := make([]int, 0, cfg.CorpusSize/3)
	for i := range corpus {
		nWords := 4 + rng.Intn(5)
		words := make([]string, nWords)
		for j := range words {
			words[j] = vocab[zipf.Draw()]
		}
		title := strings.Join(words, " ")
		if n := seenTitles[title]; n > 0 {
			title = fmt.Sprintf("%s v%d", title, n+1)
		}
		seenTitles[title]++

		var venue string
		if rng.Bool(0.35) {
			venue = dbVenues[rng.Intn(len(dbVenues))]
		} else {
			venue = otherVenues[rng.Intn(len(otherVenues))]
		}
		nAuthors := 1 + rng.Intn(3)
		authors := make([]string, nAuthors)
		for j := range authors {
			authors[j] = authorName(rng)
		}
		corpus[i] = paper{
			title:   title,
			venue:   venue,
			authors: strings.Join(authors, ", "),
			year:    1995 + rng.Intn(25),
		}
		if isDBVenue(venue) {
			dbCommunity = append(dbCommunity, i)
		}
	}
	if len(dbCommunity) < inD {
		return nil, fmt.Errorf("dataset: only %d DB-community papers for |D∩H| = %d (grow CorpusSize)",
			len(dbCommunity), inD)
	}

	// D ∩ H: drawn from the DB community.
	perm := rng.SampleWithoutReplacement(len(dbCommunity), inD)
	inBoth := make([]int, inD)
	usedCorpus := make(map[int]bool, cfg.HiddenSize+cfg.DeltaD)
	for i, j := range perm {
		inBoth[i] = dbCommunity[j]
		usedCorpus[dbCommunity[j]] = true
	}

	// H − D: drawn from the rest of the corpus.
	hMinusD := make([]int, 0, cfg.HiddenSize-inD)
	for idx := 0; len(hMinusD) < cfg.HiddenSize-inD; idx++ {
		c := rng.Intn(cfg.CorpusSize)
		if !usedCorpus[c] {
			usedCorpus[c] = true
			hMinusD = append(hMinusD, c)
		}
		if idx > 50*cfg.CorpusSize {
			return nil, fmt.Errorf("dataset: could not fill H − D")
		}
	}

	// ΔD: in D, not in H.
	deltaD := make([]int, 0, cfg.DeltaD)
	for idx := 0; len(deltaD) < cfg.DeltaD; idx++ {
		c := rng.Intn(cfg.CorpusSize)
		if !usedCorpus[c] {
			usedCorpus[c] = true
			deltaD = append(deltaD, c)
		}
		if idx > 50*cfg.CorpusSize {
			return nil, fmt.Errorf("dataset: could not fill ΔD")
		}
	}

	// Materialize hidden table: H∩D first, then H−D, shuffled.
	hiddenCorpus := append(append([]int(nil), inBoth...), hMinusD...)
	rng.Shuffle(len(hiddenCorpus), func(i, j int) {
		hiddenCorpus[i], hiddenCorpus[j] = hiddenCorpus[j], hiddenCorpus[i]
	})
	hidden := relational.NewTable("dblp-hidden",
		[]string{"title", "venue", "authors", "year", "citations"})
	hiddenIDByCorpus := make(map[int]int, len(hiddenCorpus))
	for _, c := range hiddenCorpus {
		p := corpus[c]
		r := hidden.Append(p.title, p.venue, p.authors,
			fmt.Sprintf("%d", p.year), fmt.Sprintf("%d", rng.Intn(5000)))
		hiddenIDByCorpus[c] = r.ID
	}

	// Materialize local table: (D ∩ H) ∪ ΔD, shuffled.
	localCorpus := append(append([]int(nil), inBoth...), deltaD...)
	rng.Shuffle(len(localCorpus), func(i, j int) {
		localCorpus[i], localCorpus[j] = localCorpus[j], localCorpus[i]
	})
	local := relational.NewTable("dblp-local", []string{"title", "venue", "authors"})
	truth := make([]int, 0, len(localCorpus))
	nDelta := 0
	for _, c := range localCorpus {
		p := corpus[c]
		local.Append(p.title, p.venue, p.authors)
		if h, ok := hiddenIDByCorpus[c]; ok {
			truth = append(truth, h)
		} else {
			truth = append(truth, -1)
			nDelta++
		}
	}

	// error% injection on local titles.
	if cfg.ErrorRate > 0 {
		injectErrors(local, 0, cfg.ErrorRate, vocab, rng)
	}

	return &Instance{
		Local:      local,
		Hidden:     hidden,
		Truth:      truth,
		DeltaD:     nDelta,
		LocalKey:   []int{0, 1, 2},
		HiddenKey:  []int{0, 1, 2},
		RankColumn: 3,
	}, nil
}

func isDBVenue(v string) bool {
	for _, d := range dbVenues {
		if v == d {
			return true
		}
	}
	return false
}

// injectErrors applies the paper's error model to column col of a fraction
// errRate of the table's records: with probability 1/3 each, remove a
// word, add a word, or replace a word.
func injectErrors(t *relational.Table, col int, errRate float64, vocab []string, rng *stats.RNG) {
	n := int(errRate * float64(t.Len()))
	for _, i := range rng.SampleWithoutReplacement(t.Len(), n) {
		r := t.Records[i]
		words := strings.Fields(r.Value(col))
		if len(words) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // remove a word (keep at least one)
			if len(words) > 1 {
				j := rng.Intn(len(words))
				words = append(words[:j], words[j+1:]...)
			} else {
				words[0] = vocab[rng.Intn(len(vocab))]
			}
		case 1: // add a word
			j := rng.Intn(len(words) + 1)
			words = append(words[:j], append([]string{vocab[rng.Intn(len(vocab))]}, words[j:]...)...)
		default: // replace a word
			words[rng.Intn(len(words))] = vocab[rng.Intn(len(vocab))]
		}
		r.Values[col] = strings.Join(words, " ")
		r.InvalidateTokens()
	}
}
