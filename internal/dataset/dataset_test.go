package dataset

import (
	"strings"
	"testing"

	"smartcrawl/internal/match"
	"smartcrawl/internal/tokenize"
)

func TestGenerateDBLPShape(t *testing.T) {
	in, err := GenerateDBLP(DBLPConfig{
		CorpusSize: 20000,
		HiddenSize: 5000,
		LocalSize:  1000,
		DeltaD:     100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Local.Len() != 1000 {
		t.Fatalf("|D| = %d", in.Local.Len())
	}
	if in.Hidden.Len() != 5000 {
		t.Fatalf("|H| = %d", in.Hidden.Len())
	}
	if in.DeltaD != 100 {
		t.Fatalf("|ΔD| = %d", in.DeltaD)
	}
	if len(in.Truth) != 1000 {
		t.Fatalf("truth length %d", len(in.Truth))
	}
	nDelta := 0
	for d, h := range in.Truth {
		if h == -1 {
			nDelta++
			continue
		}
		if h < 0 || h >= in.Hidden.Len() {
			t.Fatalf("truth[%d] = %d out of range", d, h)
		}
	}
	if nDelta != 100 {
		t.Fatalf("%d ΔD entries, want 100", nDelta)
	}
}

func TestGenerateDBLPTruthIsExactMatch(t *testing.T) {
	in, err := GenerateDBLP(DBLPConfig{
		CorpusSize: 10000,
		HiddenSize: 3000,
		LocalSize:  500,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	m := match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	for d, h := range in.Truth {
		if h == -1 {
			continue
		}
		if !m.Match(in.Local.Records[d], in.Hidden.Records[h]) {
			t.Fatalf("truth pair (%d, %d) does not exact-match without errors:\n%v\n%v",
				d, h, in.Local.Records[d], in.Hidden.Records[h])
		}
	}
}

func TestGenerateDBLPNoDuplicateHidden(t *testing.T) {
	in, err := GenerateDBLP(DBLPConfig{
		CorpusSize: 10000, HiddenSize: 4000, LocalSize: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	seen := make(map[string]bool, in.Hidden.Len())
	for _, r := range in.Hidden.Records {
		key := match.KeyOn(r, tk, in.HiddenKey)
		if seen[key] {
			t.Fatalf("duplicate hidden entity %q", key)
		}
		seen[key] = true
	}
}

func TestGenerateDBLPDeltaDRecordsAbsentFromHidden(t *testing.T) {
	in, err := GenerateDBLP(DBLPConfig{
		CorpusSize: 10000, HiddenSize: 2000, LocalSize: 400, DeltaD: 80, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	hiddenKeys := make(map[string]bool, in.Hidden.Len())
	for _, r := range in.Hidden.Records {
		hiddenKeys[match.KeyOn(r, tk, in.HiddenKey)] = true
	}
	for d, h := range in.Truth {
		if h != -1 {
			continue
		}
		if hiddenKeys[match.KeyOn(in.Local.Records[d], tk, in.LocalKey)] {
			t.Fatalf("ΔD record %d found in hidden database", d)
		}
	}
}

func TestGenerateDBLPErrorInjection(t *testing.T) {
	mk := func(rate float64) *Instance {
		in, err := GenerateDBLP(DBLPConfig{
			CorpusSize: 10000, HiddenSize: 3000, LocalSize: 600,
			ErrorRate: rate, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	clean := mk(0)
	dirty := mk(0.5)
	// Same seed → same underlying corpus; count locals whose exact match
	// with their truth record broke.
	tk := tokenize.New()
	m := match.NewExactOn(tk, clean.LocalKey, clean.HiddenKey)
	broken := 0
	for d, h := range dirty.Truth {
		if h == -1 {
			continue
		}
		if !m.Match(dirty.Local.Records[d], dirty.Hidden.Records[h]) {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("error injection changed nothing")
	}
	// Roughly half the records should be touched. Some edits may keep
	// the token set identical (replace with the same word), so allow a
	// wide band.
	frac := float64(broken) / float64(dirty.Local.Len())
	if frac < 0.3 || frac > 0.6 {
		t.Fatalf("broken fraction %v, want ≈0.5", frac)
	}
	_ = clean
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{CorpusSize: 5000, HiddenSize: 1000, LocalSize: 200, DeltaD: 20, Seed: 7}
	a, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Local.Records {
		if a.Local.Records[i].Document() != b.Local.Records[i].Document() {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestGenerateDBLPValidation(t *testing.T) {
	bad := []DBLPConfig{
		{},
		{CorpusSize: 100, HiddenSize: 200, LocalSize: 50},   // corpus too small
		{CorpusSize: 1000, HiddenSize: 100, LocalSize: 500}, // |D∩H| > |H|
		{CorpusSize: 1000, HiddenSize: 100, LocalSize: 50, DeltaD: 60},
		{CorpusSize: 1000, HiddenSize: 100, LocalSize: 50, ErrorRate: 2},
	}
	for _, cfg := range bad {
		if _, err := GenerateDBLP(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestGenerateYelpShape(t *testing.T) {
	in, err := GenerateYelp(YelpConfig{
		HiddenSize: 5000, LocalSize: 500, DriftRate: 0.2, DeltaD: 50, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Local.Len() != 500 || in.Hidden.Len() != 5000 {
		t.Fatalf("sizes: |D|=%d |H|=%d", in.Local.Len(), in.Hidden.Len())
	}
	nDelta := 0
	for _, h := range in.Truth {
		if h == -1 {
			nDelta++
		}
	}
	if nDelta != 50 {
		t.Fatalf("ΔD = %d", nDelta)
	}
	// Local IDs must be dense after the shuffle.
	for i, r := range in.Local.Records {
		if r.ID != i {
			t.Fatal("local IDs not dense")
		}
	}
}

func TestGenerateYelpDriftBreaksSomeMatches(t *testing.T) {
	in, err := GenerateYelp(YelpConfig{
		HiddenSize: 4000, LocalSize: 800, DriftRate: 0.3, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	exact := match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	broken := 0
	for d, h := range in.Truth {
		if h == -1 {
			continue
		}
		if !exact.Match(in.Local.Records[d], in.Hidden.Records[h]) {
			broken++
		}
	}
	frac := float64(broken) / float64(in.Local.Len())
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("drifted fraction %v, want ≈0.3", frac)
	}
}

func TestGenerateYelpSharedTokens(t *testing.T) {
	// Query sharing requires head tokens spanning many businesses.
	in, err := GenerateYelp(YelpConfig{HiddenSize: 3000, LocalSize: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	freq := map[string]int{}
	for _, r := range in.Local.Records {
		for _, w := range tk.Distinct(r.Value(0)) {
			freq[w]++
		}
	}
	maxFreq := 0
	for _, c := range freq {
		if c > maxFreq {
			maxFreq = c
		}
	}
	if maxFreq < 10 {
		t.Fatalf("max token frequency %d — names do not share tokens", maxFreq)
	}
}

func TestGenerateYelpValidation(t *testing.T) {
	bad := []YelpConfig{
		{},
		{HiddenSize: 100, LocalSize: 200},
		{HiddenSize: 100, LocalSize: 50, DeltaD: 60},
		{HiddenSize: 100, LocalSize: 50, DriftRate: -1},
	}
	for _, cfg := range bad {
		if _, err := GenerateYelp(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestVocabulary(t *testing.T) {
	v := vocabulary(10000)
	if len(v) != 10000 {
		t.Fatalf("len = %d", len(v))
	}
	seen := map[string]bool{}
	for _, w := range v {
		if w == "" {
			t.Fatal("empty word")
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if w != strings.ToLower(w) {
			t.Fatalf("word %q not lowercase", w)
		}
	}
	if v[0] != "data" {
		t.Fatal("head of vocabulary should be CS words")
	}
}
