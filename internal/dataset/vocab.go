// Package dataset generates the synthetic workloads that stand in for the
// paper's evaluation data (§7.1): a DBLP-like publication corpus with
// Zipfian title vocabulary (simulated hidden database experiments) and a
// Yelp-like business table over Arizona cities (real-hidden-database
// experiment). Both generators record ground-truth entity identity between
// the local and hidden tables, used exclusively for evaluation, and both
// support the paper's error%% injection: a chosen fraction of local records
// has one word removed, added, or replaced (probability 1/3 each).
package dataset

import (
	"fmt"

	"smartcrawl/internal/stats"
)

// csWords are the head of the synthetic title vocabulary — common
// data-management terms so generated titles share tokens heavily, the
// property query sharing exploits.
var csWords = []string{
	"data", "query", "learning", "database", "system", "efficient",
	"scalable", "distributed", "processing", "analysis", "mining",
	"deep", "neural", "graph", "stream", "index", "join", "optimization",
	"approximate", "parallel", "adaptive", "dynamic", "online", "storage",
	"memory", "cloud", "web", "search", "ranking", "classification",
	"clustering", "sampling", "estimation", "integration", "cleaning",
	"extraction", "knowledge", "entity", "schema", "crawling", "model",
	"framework", "algorithm", "evaluation", "benchmark", "transaction",
	"concurrency", "recovery", "partitioning", "compression", "encoding",
	"privacy", "security", "provenance", "versioning", "workload",
	"cardinality", "selectivity", "materialized", "incremental",
}

// firstNames and lastNames build the synthetic author pool.
var firstNames = []string{
	"wei", "jun", "pei", "ryan", "eugene", "lei", "yi", "hao", "mina",
	"sara", "ivan", "nina", "omar", "lara", "ken", "mei", "tariq",
	"ana", "boris", "chen", "dana", "emil", "fang", "gita", "hugo",
}

var lastNames = []string{
	"wang", "shea", "wu", "zhang", "li", "chen", "kumar", "garcia",
	"smith", "mueller", "tanaka", "silva", "ivanov", "rossi", "khan",
	"lee", "park", "nguyen", "patel", "cohen", "novak", "berg",
	"costa", "haas", "lin",
}

// dbVenues are the "database and data mining" venues of §7.1.1 whose
// authors' publications form the population the local database is drawn
// from.
var dbVenues = []string{
	"sigmod", "vldb", "icde", "cikm", "cidr", "kdd", "www", "aaai",
	"nips", "ijcai",
}

// otherVenues pad the rest of the corpus.
var otherVenues = []string{
	"sosp", "osdi", "nsdi", "isca", "micro", "pldi", "popl", "chi",
	"siggraph", "infocom", "icml", "acl", "emnlp", "focs", "stoc",
}

// syllables compose filler words so the tail of the vocabulary is
// unbounded, like real text.
var syllables = []string{
	"ka", "ri", "mo", "ta", "lu", "ne", "so", "vi", "ze", "pa",
	"du", "fe", "gi", "ho", "ju", "ky", "lo", "ma", "ni", "or",
}

// vocabulary materializes n words: the CS head followed by generated
// fillers, to be drawn through a Zipf sampler so head words dominate.
func vocabulary(n int) []string {
	out := make([]string, n)
	for i := range out {
		if i < len(csWords) {
			out[i] = csWords[i]
			continue
		}
		// Deterministic 3-syllable filler with a numeric tiebreaker
		// beyond the combinatorial range.
		j := i - len(csWords)
		w := syllables[j%len(syllables)] +
			syllables[(j/len(syllables))%len(syllables)] +
			syllables[(j/(len(syllables)*len(syllables)))%len(syllables)]
		if j >= len(syllables)*len(syllables)*len(syllables) {
			w = fmt.Sprintf("%s%d", w, j)
		}
		out[i] = w
	}
	return out
}

// authorName draws a synthetic author.
func authorName(rng *stats.RNG) string {
	return firstNames[rng.Intn(len(firstNames))] + " " +
		lastNames[rng.Intn(len(lastNames))]
}
