// Package hidden implements the hidden-database simulator: a relational
// table behind a top-k keyword-search interface with an unknown,
// deterministic ranking function (§2, Definition 2). It reproduces both
// interface flavors the paper evaluates:
//
//   - ModeConjunctive: only records containing ALL query keywords are
//     returned (IMDb, ACM DL, GoodReads, SoundCloud — and the paper's
//     simulated DBLP engine, which ranks by year);
//   - ModeRanked: records matching ANY keyword may be returned, but records
//     containing all keywords rank on top (Yelp's behaviour, §2 and §7.3).
//
// The package also exposes oracle accessors (true |q(H)|, the full record
// set) used only by IdealCrawl and by experiment instrumentation — never by
// the practical crawlers, which see the database exclusively through
// deepweb.Searcher.
package hidden

import (
	"fmt"
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/index"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Mode selects the search semantics.
type Mode int

const (
	// ModeConjunctive returns only records containing every keyword.
	ModeConjunctive Mode = iota
	// ModeRanked returns records containing any keyword; all-keyword
	// matches rank on top, the rest follow by static relevance score.
	ModeRanked
)

// RankFunc assigns each record a static relevance score; higher scores rank
// earlier. The function is "unknown" to crawlers — they only ever see its
// effect through truncated result lists.
type RankFunc func(r *relational.Record) float64

// RankByNumericColumn ranks by the numeric value of column col, descending
// (the paper's simulated engine ranks publications by year). Unparsable
// values rank last.
func RankByNumericColumn(col int) RankFunc {
	return func(r *relational.Record) float64 {
		var v float64
		if _, err := fmt.Sscanf(r.Value(col), "%g", &v); err != nil {
			return negInf
		}
		return v
	}
}

// RankByHash ranks by a deterministic pseudo-random hash of the record ID —
// a stand-in for opaque relevance scores.
func RankByHash(seed uint64) RankFunc {
	return func(r *relational.Record) float64 {
		z := uint64(r.ID)*0x9e3779b97f4a7c15 + seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64(z^(z>>31)) / (1 << 64)
	}
}

// RankByDocLength ranks shorter documents first (a crude "exactness" prior
// some engines exhibit).
func RankByDocLength() RankFunc {
	return func(r *relational.Record) float64 {
		return -float64(len(r.Document()))
	}
}

const negInf = -1.7976931348623157e308

// Database is a simulated hidden database.
type Database struct {
	table *relational.Table
	inv   *index.Inverted
	score []float64 // precomputed rank scores, indexed by record ID
	k     int
	mode  Mode
}

// New builds a hidden database over table with the given top-k limit,
// ranking function, and search mode. Record IDs must be dense 0..n-1 (as
// produced by relational.Table.Append).
func New(table *relational.Table, tk *tokenize.Tokenizer, k int, rank RankFunc, mode Mode) *Database {
	if k <= 0 {
		panic("hidden: k must be positive")
	}
	db := &Database{
		table: table,
		inv:   index.BuildInverted(table.Records, tk),
		score: make([]float64, len(table.Records)),
		k:     k,
		mode:  mode,
	}
	for _, r := range table.Records {
		if r.ID < 0 || r.ID >= len(db.score) {
			panic("hidden: record IDs must be dense")
		}
		db.score[r.ID] = rank(r)
	}
	return db
}

// K returns the top-k limit of the search interface.
func (db *Database) K() int { return db.k }

// Search implements deepweb.Searcher. It is deterministic: ranking ties are
// broken by record ID.
func (db *Database) Search(q deepweb.Query) ([]*relational.Record, error) {
	if err := deepweb.Validate(q); err != nil {
		return nil, err
	}
	switch db.mode {
	case ModeConjunctive:
		return db.searchConjunctive(q), nil
	case ModeRanked:
		return db.searchRanked(q), nil
	default:
		return nil, fmt.Errorf("hidden: unknown mode %d", db.mode)
	}
}

func (db *Database) searchConjunctive(q deepweb.Query) []*relational.Record {
	ids := db.inv.Lookup(q)
	if len(ids) > db.k {
		ids = db.topK(ids, nil, len(q))
	}
	return db.materialize(ids)
}

func (db *Database) searchRanked(q deepweb.Query) []*relational.Record {
	// Union of posting lists with per-record match counts.
	matched := make(map[int]int)
	for _, w := range q {
		for _, id := range db.inv.Postings(w) {
			matched[id]++
		}
	}
	if len(matched) == 0 {
		return nil
	}
	ids := make([]int, 0, len(matched))
	for id := range matched {
		ids = append(ids, id)
	}
	if len(ids) > db.k {
		ids = db.topK(ids, matched, len(q))
	} else {
		db.sortByRank(ids, matched, len(q))
	}
	return db.materialize(ids)
}

// topK selects and orders the k best IDs under (full-match tier, score
// desc, id asc). matched may be nil (conjunctive mode: every candidate is
// a full match).
func (db *Database) topK(ids []int, matched map[int]int, fullCount int) []int {
	cp := make([]int, len(ids))
	copy(cp, ids)
	db.sortByRank(cp, matched, fullCount)
	return cp[:db.k]
}

// sortByRank orders candidates the way the paper describes Yelp behaving
// (§2): records containing ALL query keywords rank on top; everything else
// follows by the static relevance score alone. Partial matches are NOT
// tiered by how many keywords they share — real engines pad the tail with
// globally popular results, so the padding repeats across queries instead
// of surfacing fresh entities per query. matched is nil in conjunctive
// mode (every candidate is a full match).
func (db *Database) sortByRank(ids []int, matched map[int]int, fullCount int) {
	full := func(id int) bool {
		return matched == nil || matched[id] == fullCount
	}
	sort.Slice(ids, func(a, b int) bool {
		ia, ib := ids[a], ids[b]
		fa, fb := full(ia), full(ib)
		if fa != fb {
			return fa
		}
		if db.score[ia] != db.score[ib] {
			return db.score[ia] > db.score[ib]
		}
		return ia < ib
	})
}

func (db *Database) materialize(ids []int) []*relational.Record {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*relational.Record, len(ids))
	for i, id := range ids {
		out[i] = db.table.Records[id]
	}
	return out
}

// --- Oracle accessors (experiment instrumentation and IdealCrawl only) ---

// Size returns |H|. Real hidden databases do not reveal this.
func (db *Database) Size() int { return db.table.Len() }

// Table returns the underlying table (ground truth for evaluation).
func (db *Database) Table() *relational.Table { return db.table }

// TrueFrequency returns |q(H)| — the number of hidden records satisfying q
// under conjunctive semantics, regardless of mode. Oracle only.
func (db *Database) TrueFrequency(q deepweb.Query) int { return db.inv.Count(q) }

// IsOverflowing reports whether q is an overflowing query (|q(H)| > k,
// Definition 2). Oracle only.
func (db *Database) IsOverflowing(q deepweb.Query) bool {
	return db.TrueFrequency(q) > db.k
}

// FullMatch returns all records satisfying q conjunctively, ignoring the
// top-k truncation. Oracle only (used to verify estimator math in tests).
func (db *Database) FullMatch(q deepweb.Query) []*relational.Record {
	return db.materialize(db.inv.Lookup(q))
}
