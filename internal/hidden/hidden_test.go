package hidden_test

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func names(recs []*relational.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Value(0)
	}
	return out
}

func TestConjunctiveSolidQuery(t *testing.T) {
	u := fixture.New()
	// "saigon ramen" matches only h2 — a solid query, fully returned.
	got, err := u.DB.Search(deepweb.Query{"ramen", "saigon"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(got), []string{"Saigon Ramen"}) {
		t.Fatalf("result = %v", names(got))
	}
}

func TestConjunctiveOverflowTopK(t *testing.T) {
	u := fixture.New()
	// "house" matches h1,h3,h4,h5,h7,h9 (6 records) > k=2; ranked by
	// rating desc the top-2 are h9 (4.9) and h5 (4.3).
	got, err := u.DB.Search(deepweb.Query{"house"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"House of Pancakes", "Steak House"}
	if !reflect.DeepEqual(names(got), want) {
		t.Fatalf("top-2 = %v, want %v", names(got), want)
	}
}

func TestSearchDeterministic(t *testing.T) {
	u := fixture.New()
	q := deepweb.Query{"thai"}
	a, _ := u.DB.Search(q)
	b, _ := u.DB.Search(q)
	if !reflect.DeepEqual(names(a), names(b)) {
		t.Fatal("repeated query must return identical results")
	}
}

func TestSearchRejectsMalformedQueries(t *testing.T) {
	u := fixture.New()
	for _, q := range []deepweb.Query{
		nil,
		{},
		{"Thai"},   // not lowercase
		{"b", "a"}, // not sorted
		{"a", "a"}, // duplicate
		{""},       // empty keyword
	} {
		if _, err := u.DB.Search(q); err == nil {
			t.Errorf("query %v should be rejected", q)
		}
	}
}

func TestOracleAccessors(t *testing.T) {
	u := fixture.New()
	if u.DB.Size() != 9 {
		t.Fatalf("Size = %d", u.DB.Size())
	}
	if got := u.DB.TrueFrequency(deepweb.Query{"house"}); got != 6 {
		t.Fatalf("TrueFrequency(house) = %d", got)
	}
	if !u.DB.IsOverflowing(deepweb.Query{"house"}) {
		t.Fatal("house should overflow at k=2")
	}
	if u.DB.IsOverflowing(deepweb.Query{"ramen", "saigon"}) {
		t.Fatal("saigon ramen should be solid")
	}
	if got := len(u.DB.FullMatch(deepweb.Query{"house"})); got != 6 {
		t.Fatalf("FullMatch(house) = %d records", got)
	}
	if u.DB.K() != 2 {
		t.Fatalf("K = %d", u.DB.K())
	}
}

func TestRankedModeAllKeywordsOnTop(t *testing.T) {
	tk := tokenize.New()
	tab := relational.NewTable("h", []string{"name", "rating"})
	tab.Append("Thai Noodle House", "1.0") // matches both keywords, low rating
	tab.Append("Noodle Bar", "5.0")        // one keyword, high rating
	tab.Append("Thai Garden", "4.0")       // one keyword
	tab.Append("Steak Place", "4.5")       // zero keywords
	db := hidden.New(tab, tk, 2, hidden.RankByNumericColumn(1), hidden.ModeRanked)

	got, err := db.Search(deepweb.Query{"noodle", "thai"})
	if err != nil {
		t.Fatal(err)
	}
	// The all-keyword match must rank first despite its lower rating
	// (Yelp behaviour per §2); second slot goes to the best partial match.
	want := []string{"Thai Noodle House", "Noodle Bar"}
	if !reflect.DeepEqual(names(got), want) {
		t.Fatalf("ranked result = %v, want %v", names(got), want)
	}
}

func TestRankedModeNoMatches(t *testing.T) {
	u := fixture.New()
	tk := tokenize.New()
	db := hidden.New(u.HiddenTab, tk, 2, hidden.RankByHash(1), hidden.ModeRanked)
	got, err := db.Search(deepweb.Query{"zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %v", names(got))
	}
}

func TestSolidQueryNeverTruncated(t *testing.T) {
	// Property over random data: if |q(H)| <= k the full match set is
	// returned; if |q(H)| > k exactly k records are returned, each
	// satisfying the query.
	tk := tokenize.New()
	rng := stats.NewRNG(11)
	vocab := []string{"aa", "bb", "cc", "dd", "ee"}
	tab := relational.NewTable("h", []string{"doc"})
	for i := 0; i < 200; i++ {
		doc := ""
		for j := 0; j < 3; j++ {
			doc += vocab[rng.Intn(len(vocab))] + " "
		}
		tab.Append(doc)
	}
	const k = 5
	db := hidden.New(tab, tk, k, hidden.RankByHash(7), hidden.ModeConjunctive)

	for trial := 0; trial < 100; trial++ {
		w1, w2 := vocab[rng.Intn(5)], vocab[rng.Intn(5)]
		var q deepweb.Query
		if w1 == w2 {
			q = deepweb.Query{w1}
		} else if w1 < w2 {
			q = deepweb.Query{w1, w2}
		} else {
			q = deepweb.Query{w2, w1}
		}
		res, err := db.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		truth := db.TrueFrequency(q)
		if truth <= k && len(res) != truth {
			t.Fatalf("solid query %v returned %d of %d", q, len(res), truth)
		}
		if truth > k && len(res) != k {
			t.Fatalf("overflowing query %v returned %d, want %d", q, len(res), k)
		}
		for _, r := range res {
			set := tk.Set(r.Document())
			for _, w := range q {
				if _, ok := set[w]; !ok {
					t.Fatalf("record %v does not satisfy %v", r, q)
				}
			}
		}
	}
}

func TestTopKRespectsRanking(t *testing.T) {
	// With RankByNumericColumn, every returned record must outrank (or
	// tie) every matching record that was cut.
	u := fixture.New()
	q := deepweb.Query{"thai"}
	res, _ := u.DB.Search(q)
	full := u.DB.FullMatch(q)
	if len(res) != 2 || len(full) != 4 {
		t.Fatalf("setup: res=%d full=%d", len(res), len(full))
	}
	minReturned := 10.0
	for _, r := range res {
		v, err := strconv.ParseFloat(r.Value(1), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < minReturned {
			minReturned = v
		}
	}
	returned := map[int]bool{}
	for _, r := range res {
		returned[r.ID] = true
	}
	for _, r := range full {
		if returned[r.ID] {
			continue
		}
		v, err := strconv.ParseFloat(r.Value(1), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > minReturned {
			t.Fatalf("cut record %v outranks returned minimum %v", r, minReturned)
		}
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 0")
		}
	}()
	u := fixture.New()
	hidden.New(u.HiddenTab, tokenize.New(), 0, hidden.RankByHash(1), hidden.ModeConjunctive)
}

func TestRankFuncs(t *testing.T) {
	r := &relational.Record{ID: 1, Values: []string{"abc", "2019"}}
	if hidden.RankByNumericColumn(1)(r) != 2019 {
		t.Fatal("numeric rank")
	}
	if hidden.RankByNumericColumn(0)(r) >= 0 {
		t.Fatal("unparsable values must rank last")
	}
	if hidden.RankByHash(1)(r) == hidden.RankByHash(2)(r) {
		t.Fatal("different seeds should give different hashes")
	}
	if hidden.RankByDocLength()(r) != -float64(len("abc 2019")) {
		t.Fatal("doc length rank")
	}
}

// TestRankedModePaddingIsPopularityStable checks the realistic padding
// behaviour: tail results (partial matches) follow the global relevance
// score, so two queries sharing no full matches largely return the same
// popular records rather than fresh per-query entities.
func TestRankedModePaddingIsPopularityStable(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(23)
	tab := relational.NewTable("h", []string{"name", "rating"})
	types := []string{"house", "bar", "grill", "cafe"}
	cuisines := []string{"thai", "greek", "cuban", "indian"}
	for i := 0; i < 400; i++ {
		tab.Append(
			cuisines[rng.Intn(4)]+" "+types[rng.Intn(4)],
			fmt.Sprintf("%.2f", rng.Float64()*5),
		)
	}
	const k = 20
	db := hidden.New(tab, tk, k, hidden.RankByNumericColumn(1), hidden.ModeRanked)

	resA, err := db.Search(deepweb.Query{"house", "thai"})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := db.Search(deepweb.Query{"greek", "grill"})
	if err != nil {
		t.Fatal(err)
	}
	// Tail (non-full-match) portions should overlap substantially: both
	// queries' partial-match candidate sets cover most of the table, and
	// the same top-rated records fill the tail.
	tailA := tailSet(t, tk, resA, deepweb.Query{"house", "thai"})
	tailB := tailSet(t, tk, resB, deepweb.Query{"greek", "grill"})
	if len(tailA) == 0 || len(tailB) == 0 {
		t.Skip("no padding produced at this k")
	}
	common := 0
	for id := range tailA {
		if tailB[id] {
			common++
		}
	}
	minTail := len(tailA)
	if len(tailB) < minTail {
		minTail = len(tailB)
	}
	if frac := float64(common) / float64(minTail); frac < 0.5 {
		t.Fatalf("padding overlap %.2f — tails should be popularity-stable", frac)
	}
}

func tailSet(t *testing.T, tk *tokenize.Tokenizer, recs []*relational.Record, q deepweb.Query) map[int]bool {
	t.Helper()
	out := map[int]bool{}
	for _, r := range recs {
		set := tk.Set(r.Document())
		full := true
		for _, w := range q {
			if _, ok := set[w]; !ok {
				full = false
				break
			}
		}
		if !full {
			out[r.ID] = true
		}
	}
	return out
}
