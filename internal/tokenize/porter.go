package tokenize

// PorterStem implements the classic Porter stemming algorithm (Porter,
// 1980). Stemming folds inflected forms onto one keyword ("crawling",
// "crawled", "crawls" → "crawl"), which tightens query sharing — frequent
// itemsets stop fragmenting across morphological variants — and helps the
// §6.1 fuzzy-matching situation when local and hidden records inflect the
// same word differently. It is exposed as an opt-in Tokenizer stage
// because it changes the query vocabulary sent to the hidden database,
// which only helps when the hidden engine stems too (most full-text
// engines do).
//
// The implementation follows the original paper's five steps with the
// standard measure/vowel machinery, operating on lowercase ASCII; tokens
// with non-ASCII letters are returned unchanged.
func PorterStem(w string) string {
	if len(w) <= 2 {
		return w
	}
	for i := 0; i < len(w); i++ {
		if w[i] < 'a' || w[i] > 'z' {
			return w // digits, unicode: leave alone
		}
	}
	b := []byte(w)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isCons reports whether b[i] is a consonant in Porter's sense ('y' is a
// consonant when it follows a vowel position rule).
func isCons(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(b, i-1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in b[:end].
func measure(b []byte, end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && isCons(b, i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !isCons(b, i) {
			i++
		}
		if i >= end {
			break
		}
		// Consonant run → one VC.
		for i < end && isCons(b, i) {
			i++
		}
		m++
	}
	return m
}

// hasVowel reports whether b[:end] contains a vowel.
func hasVowel(b []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isCons(b, i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether b[:end] ends with a double consonant.
func doubleCons(b []byte, end int) bool {
	if end < 2 {
		return false
	}
	return b[end-1] == b[end-2] && isCons(b, end-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func cvc(b []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isCons(b, end-3) || isCons(b, end-2) || !isCons(b, end-1) {
		return false
	}
	switch b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix swaps suffix old for new when the stem before old has
// measure > minM. Returns the (possibly new) slice and whether it fired.
func replaceSuffix(b []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := len(b) - len(old)
	if measure(b, stem) <= minM {
		return b, false
	}
	return append(b[:stem], new...), true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b, len(b)-3) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	fired := false
	if hasSuffix(b, "ed") && hasVowel(b, len(b)-2) {
		b = b[:len(b)-2]
		fired = true
	} else if hasSuffix(b, "ing") && hasVowel(b, len(b)-3) {
		b = b[:len(b)-3]
		fired = true
	}
	if !fired {
		return b
	}
	switch {
	case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
		return append(b, 'e')
	case doubleCons(b, len(b)):
		last := b[len(b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return b[:len(b)-1]
		}
		return b
	case measure(b, len(b)) == 1 && cvc(b, len(b)):
		return append(b, 'e')
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b, len(b)-1) {
		b[len(b)-1] = 'i'
	}
	return b
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
	{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if b2, ok := replaceSuffix(b, r.old, r.new, 0); ok {
			return b2
		}
		if hasSuffix(b, r.old) {
			return b // suffix matched but condition failed: stop
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if b2, ok := replaceSuffix(b, r.old, r.new, 0); ok {
			return b2
		}
		if hasSuffix(b, r.old) {
			return b
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := len(b) - len(s)
		if measure(b, stem) <= 1 {
			return b
		}
		if s == "ion" && stem > 0 && b[stem-1] != 's' && b[stem-1] != 't' {
			return b
		}
		return b[:stem]
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := len(b) - 1
	m := measure(b, stem)
	if m > 1 || (m == 1 && !cvc(b, stem)) {
		return b[:stem]
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b, len(b)) > 1 && doubleCons(b, len(b)) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}
