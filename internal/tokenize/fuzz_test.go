package tokenize

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokens checks the tokenizer's invariants on arbitrary input: no
// panics, all tokens lowercase and non-empty, no stop words, and
// idempotence of re-tokenization.
func FuzzTokens(f *testing.F) {
	for _, seed := range []string{
		"", "Thai Noodle House", "a-b_c.d", "ΣΩΔ unicode Ωmega",
		"   spaces\t\ttabs\nnewlines ", "the and of", "123 4.56 7e8",
		strings.Repeat("long ", 100),
	} {
		f.Add(seed)
	}
	tk := New()
	f.Fuzz(func(t *testing.T, s string) {
		toks := tk.Tokens(s)
		for _, w := range toks {
			if w == "" {
				t.Fatal("empty token")
			}
			if tk.IsStopWord(w) {
				t.Fatalf("stop word %q leaked", w)
			}
			for _, r := range w {
				if unicode.IsUpper(r) {
					t.Fatalf("uppercase rune in %q", w)
				}
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("separator rune in %q", w)
				}
			}
		}
		again := tk.Tokens(strings.Join(toks, " "))
		if len(again) != len(toks) {
			t.Fatalf("not idempotent: %v vs %v", toks, again)
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("not idempotent at %d: %v vs %v", i, toks, again)
			}
		}
	})
}

// FuzzPorterStem checks the stemmer never panics, never empties a word,
// and is idempotent-ish (stemming a stem never grows it).
func FuzzPorterStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "sses", "caresses", "relational", "yyyy", "bbbb",
		"optimization", "ing", "ed", "ies", "ational",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w := strings.ToLower(s)
		stem := PorterStem(w)
		if len(w) > 2 && len(stem) == 0 {
			t.Fatalf("stem of %q is empty", w)
		}
		if len(stem) > len(w)+1 {
			t.Fatalf("stem grew: %q → %q", w, stem)
		}
		if len(PorterStem(stem)) > len(stem)+1 {
			t.Fatalf("re-stem grew: %q → %q", stem, PorterStem(stem))
		}
	})
}
