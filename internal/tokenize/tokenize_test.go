package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokensBasic(t *testing.T) {
	tk := New()
	cases := []struct {
		in   string
		want []string
	}{
		{"Thai Noodle House", []string{"thai", "noodle", "house"}},
		{"Lotus of Siam", []string{"lotus", "siam"}},                // "of" is a stop word
		{"Lotus-of-Siam (Thai)", []string{"lotus", "siam", "thai"}}, // punctuation splits
		{"  multiple   spaces ", []string{"multiple", "spaces"}},    // whitespace runs
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},  // case folding
		{"café résumé", []string{"café", "résumé"}},                 // unicode letters kept
		{"2019 SIGMOD", []string{"2019", "sigmod"}},                 // digits kept
		{"", nil},
		{"the and of", nil}, // all stop words
		{"a1-b2_c3", []string{"a1", "b2", "c3"}},
	}
	for _, c := range cases {
		if got := tk.Tokens(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokensKeepsDuplicates(t *testing.T) {
	tk := New()
	got := tk.Tokens("noodle noodle house")
	want := []string{"noodle", "noodle", "house"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestDistinctOrder(t *testing.T) {
	tk := New()
	got := tk.Distinct("house noodle house thai noodle")
	want := []string{"house", "noodle", "thai"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distinct = %v, want %v", got, want)
	}
}

func TestSet(t *testing.T) {
	tk := New()
	set := tk.Set("Thai House thai HOUSE")
	if len(set) != 2 {
		t.Fatalf("Set size = %d, want 2", len(set))
	}
	for _, w := range []string{"thai", "house"} {
		if _, ok := set[w]; !ok {
			t.Errorf("Set missing %q", w)
		}
	}
}

func TestMinTokenLen(t *testing.T) {
	tk := New()
	tk.MinTokenLen = 2
	got := tk.Tokens("x yy zzz")
	want := []string{"yy", "zzz"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestCustomStopWords(t *testing.T) {
	tk := NewWithStopWords([]string{"restaurant", "CAFE"})
	got := tk.Tokens("Thai Restaurant Cafe Bar")
	want := []string{"thai", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	if !tk.IsStopWord("Restaurant") || !tk.IsStopWord("cafe") {
		t.Error("IsStopWord should be case-insensitive")
	}
	if tk.IsStopWord("thai") {
		t.Error("thai should not be a stop word")
	}
}

func TestDocument(t *testing.T) {
	got := Document([]string{"Thai Noodle", "Vancouver", "4.5"})
	want := "Thai Noodle Vancouver 4.5"
	if got != want {
		t.Fatalf("Document = %q, want %q", got, want)
	}
	// Attribute boundaries must not merge tokens.
	tk := New()
	toks := tk.Tokens(Document([]string{"abc", "def"}))
	if !reflect.DeepEqual(toks, []string{"abc", "def"}) {
		t.Fatalf("boundary merge: %v", toks)
	}
}

func TestNormalizeQuery(t *testing.T) {
	tk := New()
	a := tk.NormalizeQuery("Noodle House")
	b := tk.NormalizeQuery("house NOODLE noodle")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("normalized forms differ: %v vs %v", a, b)
	}
	if !reflect.DeepEqual(a, []string{"house", "noodle"}) {
		t.Fatalf("NormalizeQuery = %v", a)
	}
}

// Property: tokenization is idempotent — re-tokenizing the join of the
// tokens yields the same tokens.
func TestTokensIdempotent(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		once := tk.Tokens(s)
		twice := tk.Tokens(strings.Join(once, " "))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every produced token is lowercase, non-empty, and not a stop word.
func TestTokensWellFormed(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		for _, w := range tk.Tokens(s) {
			if w == "" || w != strings.ToLower(w) || tk.IsStopWord(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizeQuery output is sorted and duplicate-free.
func TestNormalizeQuerySortedUnique(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		q := tk.NormalizeQuery(s)
		for i := 1; i < len(q); i++ {
			if q[i-1] >= q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokens(b *testing.B) {
	tk := New()
	text := "Progressive Deep Web Crawling Through Keyword Queries For Data Enrichment SIGMOD 2019"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Tokens(text)
	}
}
