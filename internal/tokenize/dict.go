package tokenize

import "slices"

// Dict is an interned token dictionary: a bijection between the corpus
// vocabulary and dense uint32 token IDs. The crawler's hot paths — pool
// resolution, inverted-index intersections, and the per-iteration sample-
// match maintenance — run on token IDs instead of strings, turning every
// map[string] probe into integer compares over sorted []uint32 slices.
//
// A Dict is built once from the corpus scan and then frozen: IDs never
// change afterwards, so resolved ID slices stay valid for the lifetime of
// the crawl. When the dictionary is built from a lexicographically sorted
// vocabulary (BuildDict, or querypool.Generate's corpus scan), token IDs
// are monotone in token order — a sorted keyword list resolves to a
// sorted ID list for free; Resolve sorts defensively anyway so the
// invariant holds for any insertion order.
//
// Tokens outside the dictionary simply have no ID. That is not a loss of
// information for the crawler: every pool query keyword comes from the
// local corpus the Dict was built over, so an unknown token (for example
// a sample-only word) can never appear in a query and dropping it from an
// interned token set changes no membership test a query can ask.
type Dict struct {
	ids    map[string]uint32
	words  []string
	frozen bool
}

// NewDict returns an empty, unfrozen dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// BuildDict interns the given vocabulary in slice order and freezes the
// dictionary. Callers pass a sorted, deduplicated vocabulary to get
// order-preserving IDs (id(a) < id(b) ⇔ a < b).
func BuildDict(vocab []string) *Dict {
	d := &Dict{
		ids:   make(map[string]uint32, len(vocab)),
		words: make([]string, 0, len(vocab)),
	}
	for _, w := range vocab {
		d.Intern(w)
	}
	d.Freeze()
	return d
}

// Intern returns the ID of w, assigning the next dense ID on first sight.
// Panics on a frozen dictionary — interning after the corpus scan would
// silently break the ID-order invariant resolved slices rely on.
func (d *Dict) Intern(w string) uint32 {
	if id, ok := d.ids[w]; ok {
		return id
	}
	if d.frozen {
		panic("tokenize: Intern on frozen Dict")
	}
	id := uint32(len(d.words))
	d.ids[w] = id
	d.words = append(d.words, w)
	return id
}

// Freeze makes the dictionary immutable. Idempotent.
func (d *Dict) Freeze() { d.frozen = true }

// Frozen reports whether the dictionary is immutable.
func (d *Dict) Frozen() bool { return d.frozen }

// Len returns the vocabulary size; valid IDs are 0..Len()-1.
func (d *Dict) Len() int { return len(d.words) }

// ID returns the token ID of w and whether w is in the dictionary.
func (d *Dict) ID(w string) (uint32, bool) {
	id, ok := d.ids[w]
	return id, ok
}

// Word returns the token with the given ID.
func (d *Dict) Word(id uint32) string { return d.words[id] }

// Resolve maps a keyword list to its sorted ID slice. The second return
// is false when any keyword is unknown — such a query can match nothing
// the dictionary's corpus contains.
func (d *Dict) Resolve(words []string) ([]uint32, bool) {
	ids := make([]uint32, len(words))
	for i, w := range words {
		id, ok := d.ids[w]
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	sortU32(ids)
	return ids, true
}

// SortedSet maps a token list to its sorted, deduplicated ID set,
// silently dropping unknown tokens (see the type comment for why that is
// sound). This is the interned form of Tokenizer.Set.
func (d *Dict) SortedSet(words []string) []uint32 {
	ids := make([]uint32, 0, len(words))
	for _, w := range words {
		if id, ok := d.ids[w]; ok {
			ids = append(ids, id)
		}
	}
	sortU32(ids)
	// Dedup in place: Tokens keeps duplicates, sets must not.
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// sortU32 sorts a small ID slice ascending. Keyword lists are tiny
// (usually ≤ 5), so insertion sort beats the general sort's dispatch;
// longer slices (token sets) fall back to the standard sort.
func sortU32(s []uint32) {
	if len(s) > 16 {
		slices.Sort(s)
		return
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ContainsAllSorted reports whether the sorted ID set `set` contains every
// ID of the sorted query slice q — the interned membership kernel behind
// countSatisfying. Both slices ascending; q may contain duplicates. Runs
// as a single merge scan.
func ContainsAllSorted(set, q []uint32) bool {
	i := 0
	for _, w := range q {
		for i < len(set) && set[i] < w {
			i++
		}
		if i >= len(set) || set[i] != w {
			return false
		}
	}
	return true
}
