package tokenize

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDictBuildAndResolve(t *testing.T) {
	d := BuildDict([]string{"apple", "banana", "cherry", "date"})
	if !d.Frozen() || d.Len() != 4 {
		t.Fatalf("frozen=%v len=%d, want true/4", d.Frozen(), d.Len())
	}
	// Sorted vocab ⇒ IDs monotone in token order.
	for i, w := range []string{"apple", "banana", "cherry", "date"} {
		id, ok := d.ID(w)
		if !ok || id != uint32(i) {
			t.Fatalf("ID(%q) = %d,%v, want %d,true", w, id, ok, i)
		}
		if d.Word(id) != w {
			t.Fatalf("Word(%d) = %q, want %q", id, d.Word(id), w)
		}
	}
	// Resolve sorts the ID slice regardless of keyword order.
	ids, ok := d.Resolve([]string{"date", "apple", "cherry"})
	if !ok || !reflect.DeepEqual(ids, []uint32{0, 2, 3}) {
		t.Fatalf("Resolve = %v,%v, want [0 2 3],true", ids, ok)
	}
	// Any unknown keyword fails the whole resolution.
	if _, ok := d.Resolve([]string{"apple", "zzz"}); ok {
		t.Fatal("Resolve with unknown keyword should fail")
	}
}

func TestDictInternFrozenPanics(t *testing.T) {
	d := BuildDict([]string{"a"})
	// Re-interning a known word is fine even when frozen.
	if d.Intern("a") != 0 {
		t.Fatal("Intern of known word changed its ID")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intern of new word on frozen Dict should panic")
		}
	}()
	d.Intern("b")
}

func TestSortedSetDropsUnknownAndDedups(t *testing.T) {
	d := BuildDict([]string{"aa", "bb", "cc"})
	got := d.SortedSet([]string{"cc", "unknown", "aa", "cc", "aa"})
	if !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("SortedSet = %v, want [0 2]", got)
	}
	if got := d.SortedSet(nil); len(got) != 0 {
		t.Fatalf("SortedSet(nil) = %v, want empty", got)
	}
}

// ContainsAllSorted must agree with the naive map-based subset check for
// arbitrary sorted inputs — this is the membership kernel countSatisfying
// runs on, so the property test covers the merge-scan edge cases
// (empty query, query past the end of the set, duplicates collapsed).
func TestContainsAllSortedMatchesNaive(t *testing.T) {
	f := func(setRaw, qRaw []uint8) bool {
		set := sortedUniqueIDs(setRaw)
		q := sortedUniqueIDs(qRaw)
		in := make(map[uint32]bool, len(set))
		for _, v := range set {
			in[v] = true
		}
		want := true
		for _, v := range q {
			if !in[v] {
				want = false
				break
			}
		}
		return ContainsAllSorted(set, q) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsAllSortedEdges(t *testing.T) {
	set := []uint32{2, 5, 9}
	cases := []struct {
		q    []uint32
		want bool
	}{
		{nil, true},
		{[]uint32{}, true},
		{[]uint32{2}, true},
		{[]uint32{9}, true},
		{[]uint32{2, 5, 9}, true},
		{[]uint32{2, 9}, true},
		{[]uint32{1}, false},
		{[]uint32{10}, false},
		{[]uint32{2, 6}, false},
		{[]uint32{2, 5, 9, 11}, false},
	}
	for _, c := range cases {
		if got := ContainsAllSorted(set, c.q); got != c.want {
			t.Errorf("ContainsAllSorted(%v, %v) = %v, want %v", set, c.q, got, c.want)
		}
	}
}

func TestSortU32BothRegimes(t *testing.T) {
	// Small slices take the insertion-sort branch, long ones slices.Sort;
	// both must fully sort.
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		s := make([]uint32, n)
		for i := range s {
			s[i] = uint32((i*7919 + 13) % 257) // deterministic scramble
		}
		sortU32(s)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			t.Fatalf("sortU32 left len-%d slice unsorted: %v", n, s)
		}
	}
}

func sortedUniqueIDs(raw []uint8) []uint32 {
	m := map[uint32]bool{}
	for _, v := range raw {
		m[uint32(v)] = true
	}
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
