package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestPorterStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		// Plurals (step 1a).
		"caresses": "caress",
		"ponies":   "poni",
		"cats":     "cat",
		"caress":   "caress",
		"queries":  "queri",
		// Past/participle (step 1b).
		"agreed":    "agre",
		"plastered": "plaster",
		"motoring":  "motor",
		"sing":      "sing",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"failing":   "fail",
		"filing":    "file",
		"crawling":  "crawl",
		"crawled":   "crawl",
		"crawls":    "crawl",
		// y → i (step 1c).
		"happy": "happi",
		"sky":   "sky",
		// Derivational suffixes (steps 2–4).
		"relational":    "relat",
		"optimization":  "optim",
		"databases":     "databas",
		"formalize":     "formal",
		"sensitiveness": "sensit",
		// Final e and double l (step 5).
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// Untouched.
		"a":    "a",
		"is":   "is",
		"2019": "2019",
		"café": "café",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: stemming is idempotent on its own output for plain words and
// never grows a word by more than one character (the only growth is the
// restored final 'e').
func TestPorterStemProperties(t *testing.T) {
	words := []string{
		"running", "jumps", "hopeful", "happiness", "nationally",
		"engineering", "computation", "computing", "computers",
		"abilities", "ability", "triplicate", "formative", "electrical",
		"conflated", "troubled", "generalizations",
	}
	for _, w := range words {
		s := PorterStem(w)
		if len(s) > len(w)+1 {
			t.Errorf("stem grew: %q → %q", w, s)
		}
		if s == "" {
			t.Errorf("stem of %q is empty", w)
		}
	}
	f := func(raw string) bool {
		w := strings.ToLower(raw)
		s := PorterStem(w)
		return len(s) <= len(w)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizerWithStemmer(t *testing.T) {
	tk := New()
	tk.Stemmer = PorterStem
	got := tk.Tokens("Crawling crawled databases efficiently")
	want := []string{"crawl", "crawl", "databas", "effici"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stemmed tokens = %v, want %v", got, want)
	}
	// Distinct should collapse the variants.
	d := tk.Distinct("crawling crawled crawls")
	if !reflect.DeepEqual(d, []string{"crawl"}) {
		t.Fatalf("Distinct = %v", d)
	}
}

func TestStemmerStrengthensQuerySharing(t *testing.T) {
	// Two records with inflectional variants share no tokens unstemmed
	// but share both tokens stemmed.
	plain := New()
	stemmed := New()
	stemmed.Stemmer = PorterStem

	a, b := "crawling databases", "crawled database"
	inter := func(tk *Tokenizer) int {
		sa := tk.Set(a)
		n := 0
		for w := range tk.Set(b) {
			if _, ok := sa[w]; ok {
				n++
			}
		}
		return n
	}
	if inter(plain) != 0 {
		t.Fatalf("plain overlap = %d, want 0", inter(plain))
	}
	if inter(stemmed) != 2 {
		t.Fatalf("stemmed overlap = %d, want 2", inter(stemmed))
	}
}

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"optimization", "crawling", "databases", "relational", "happiness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PorterStem(words[i%len(words)])
	}
}
