// Package tokenize implements the document model of the paper's Definition 1:
// each record is viewed as a bag of lowercase keywords produced by
// concatenating its attribute values, splitting on non-alphanumeric runs, and
// dropping stop words. Every component of the system — the hidden database's
// search engine, the query-pool generator, the estimators, and the matchers —
// must agree on this tokenization, so it lives in one place.
package tokenize

import (
	"strings"
	"unicode"
)

// DefaultStopWords is the stop-word list applied by the default Tokenizer.
// The paper states that stop words are not considered query keywords (§2);
// the list here is the classic short English list used by small search
// engines, which is enough to keep function words out of query pools.
var DefaultStopWords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
	"in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
	"that", "the", "their", "then", "there", "these", "they", "this",
	"to", "was", "will", "with",
}

// Tokenizer converts text into keyword tokens. The zero value is not usable;
// construct one with New or NewWithStopWords.
type Tokenizer struct {
	stop map[string]struct{}
	// MinTokenLen drops tokens shorter than this many runes (after
	// lowercasing). Single characters are almost never useful search
	// keywords, so the default is 1 (keep everything); callers that build
	// query pools typically set 2.
	MinTokenLen int
	// Stemmer, when non-nil, is applied to each surviving token
	// (typically PorterStem). Stemming folds morphological variants onto
	// one keyword, which strengthens query sharing and fuzzy matching;
	// enable it only when the hidden database's engine stems too,
	// because pool queries are built from these tokens.
	Stemmer func(string) string
}

// New returns a Tokenizer using DefaultStopWords.
func New() *Tokenizer { return NewWithStopWords(DefaultStopWords) }

// NewWithStopWords returns a Tokenizer with a caller-supplied stop-word
// list. Stop words are compared after lowercasing.
func NewWithStopWords(stop []string) *Tokenizer {
	m := make(map[string]struct{}, len(stop))
	for _, w := range stop {
		m[strings.ToLower(w)] = struct{}{}
	}
	return &Tokenizer{stop: m, MinTokenLen: 1}
}

// IsStopWord reports whether w (case-insensitive) is in the stop list.
func (t *Tokenizer) IsStopWord(w string) bool {
	_, ok := t.stop[strings.ToLower(w)]
	return ok
}

// Tokens splits text into lowercase keyword tokens in order of appearance,
// keeping duplicates. Token boundaries are runs of non-letter, non-digit
// runes, so "Lotus-of-Siam (Thai)" yields ["lotus", "siam", "thai"]
// ("of" is a stop word).
func (t *Tokenizer) Tokens(text string) []string {
	var (
		out []string
		b   strings.Builder
	)
	flush := func() {
		if b.Len() == 0 {
			return
		}
		w := b.String()
		b.Reset()
		if len([]rune(w)) < t.MinTokenLen {
			return
		}
		if _, stop := t.stop[w]; stop {
			return
		}
		if t.Stemmer != nil {
			w = t.Stemmer(w)
		}
		out = append(out, w)
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// Set returns the distinct tokens of text as a set. The paper's conjunctive
// search semantics (Definition 1) and |d| (distinct keyword count, §3.1) are
// defined over this set.
func (t *Tokenizer) Set(text string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, w := range t.Tokens(text) {
		set[w] = struct{}{}
	}
	return set
}

// Distinct returns the distinct tokens of text in first-appearance order.
func (t *Tokenizer) Distinct(text string) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, w := range t.Tokens(text) {
		if _, ok := seen[w]; ok {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// Document concatenates attribute values into the single searchable document
// of Definition 1. Values are joined with a space so tokens never merge
// across attribute boundaries.
func Document(values []string) string { return strings.Join(values, " ") }

// NormalizeQuery canonicalizes a keyword query: tokenize, dedupe, sort.
// Two queries with the same keyword set compare equal after normalization,
// which the query pool relies on for deduplication.
func (t *Tokenizer) NormalizeQuery(q string) []string {
	words := t.Distinct(q)
	sortStrings(words)
	return words
}

// sortStrings is insertion sort; query keyword lists are tiny (usually ≤ 5)
// so this beats sort.Strings' interface overhead on the hot path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
