// Package durable is the crash-safety subsystem of the crawl: a
// checksummed write-ahead journal (one record per accounting-affecting
// event of the Algorithm-4 merge stage), atomic snapshot writes, torn-
// tail-tolerant recovery, and periodic journal→snapshot compaction. It
// exists because the crawl's currency is charged quota units — a process
// that dies at budget unit 24,999 of a 25,000-request quota window must
// come back knowing everything those units bought.
//
// The contract, end to end: every query result that has been absorbed
// (and therefore charged) is durable against SIGKILL the moment its
// journal record's write() returns; a crash loses at most the single
// record being written, and recovery replays every intact record,
// discards the torn one, and hands back the unresolved tail of the last
// selection round so a resumed run re-issues exactly what the dead one
// had in flight. Durability against power loss is governed by the fsync
// policy (Options.Sync); see docs/OPERATIONS.md.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that path never holds a partial or
// torn payload: the content goes to a temp file in the target directory,
// the temp file is fsynced and renamed over path, and the directory is
// fsynced so the rename itself survives power loss. Readers see either
// the old complete file or the new complete file, never a mix — which is
// what lets a crawl overwrite its only snapshot in place.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: renaming into %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable.
// Errors are ignored: some filesystems refuse directory fsync, and the
// rename has already happened — the data is safe against process death
// either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
