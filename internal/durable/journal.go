package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"smartcrawl/internal/crawler"
)

// JournalFormatVersion is the on-disk journal format revision, encoded in
// the file magic. Bump it when the record framing or the record payload
// schema changes incompatibly.
const JournalFormatVersion = 1

// journalMagic is the 8-byte file header: format name + version digit +
// newline, so `head -c8 crawl.wal` identifies the file.
const journalMagic = "SCWAL01\n"

// recordHeaderSize frames every record: a 4-byte little-endian payload
// length followed by a 4-byte little-endian CRC32 (IEEE) of the payload.
const recordHeaderSize = 8

// maxRecordSize bounds a single record. A length field above it is
// treated as corruption rather than an allocation request — a bit flip in
// the length must not make recovery try to read 3 GiB.
const maxRecordSize = 64 << 20

// Record kinds. One journal record is appended per accounting-affecting
// event of the merge stage, in merge order.
const (
	// KindBegin opens every (re-)initialized journal: it pins the local
	// database size and the counters the journal's base state starts at.
	KindBegin = "begin"
	// KindRound is the write-ahead intent record: the full selection
	// round, journaled before any of it is dispatched.
	KindRound = "round"
	// KindStep is one absorbed query result — the record that makes a
	// charged query durable.
	KindStep = "step"
	// KindRequeue / KindForfeit / KindBudgetStop resolve a round entry
	// without absorbing it; they keep the Resilience accounting exact
	// and tell recovery the query is no longer in flight.
	KindRequeue    = "requeue"
	KindForfeit    = "forfeit"
	KindBudgetStop = "budget_stop"
)

// StepRecord is the journal payload of one absorbed query step: the step
// trace fields plus everything needed to rebuild the Result delta — the
// hidden records first crawled by this query and the (local, hidden)
// match pairs it newly covered.
type StepRecord struct {
	Query             []string `json:"query"`
	EstimatedBenefit  float64  `json:"est_benefit"`
	NewlyCovered      int      `json:"newly_covered"`
	CumulativeCovered int      `json:"cumulative_covered"`
	ResultSize        int      `json:"result_size"`
	// Iface is the interface the query was issued against (crawler.Step.Iface);
	// omitted at zero, so single-interface journals are byte-identical to the
	// pre-federation format.
	Iface      int          `json:"iface,omitempty"`
	NewRecords []WireRecord `json:"new_records,omitempty"`
	NewMatches []WirePair   `json:"new_matches,omitempty"`
}

// WireRecord is a crawled hidden record on the wire.
type WireRecord struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

// WirePair is one newly covered (local, hidden) match.
type WirePair struct {
	Local  int `json:"local"`
	Hidden int `json:"hidden"`
}

// Record is one journal entry. Kind selects which optional fields are
// meaningful; the accounting fields at the bottom are filled on every
// record and double as replay cross-checks.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// LocalLen (begin) pins the local database size.
	LocalLen int `json:"local_len,omitempty"`
	// Round (round) is the selected batch, in selection order.
	Round []crawler.PendingQuery `json:"round,omitempty"`
	// Step (step) is the absorbed result.
	Step *StepRecord `json:"step,omitempty"`
	// Query and Attempt (requeue/forfeit/budget_stop) identify the
	// resolved round entry.
	Query   string `json:"query,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Iface tags the interface of a federated crawl's round, step, and
	// resolution records (the Interface slice index). Rounds are
	// interface-homogeneous, so one tag per record suffices. Always omitted
	// in single-interface crawls, keeping their journals byte-identical.
	Iface int `json:"iface,omitempty"`
	// Accounting state after this record took effect.
	QueriesIssued int `json:"queries_issued"`
	CoveredCount  int `json:"covered_count"`
	// Charged is the counting searcher's cumulative charge (refunds
	// netted out) — what resuming sessions subtract from the quota.
	Charged int `json:"charged"`
	// Resilience snapshots the degradation report, when one is kept.
	Resilience *crawler.Resilience `json:"resilience,omitempty"`
}

// encodeRecord frames rec as [len][crc32][json payload].
func encodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("durable: encoding journal record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("durable: journal record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	return buf, nil
}

// ReadJournal decodes a journal stream. It returns every intact record in
// order and torn=true when the stream ends in a partial or checksum-
// failing record — the expected shape of a crash mid-append, which
// recovery handles by discarding the tail. Structural corruption that a
// crash cannot produce (bad magic, a record following the torn point,
// non-increasing sequence numbers, undecodable JSON under a valid CRC) is
// an error instead: that file needs an operator, not silent repair.
//
// An empty stream (zero bytes, or a partial magic — a crash between
// journal creation and the first write) is a valid empty journal.
func ReadJournal(r io.Reader) (recs []Record, torn bool, err error) {
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		switch err {
		case io.EOF:
			return nil, false, nil // empty file: created, never written
		case io.ErrUnexpectedEOF:
			return nil, true, nil // crash mid-magic: an empty journal with a torn tail
		default:
			return nil, false, fmt.Errorf("durable: reading journal magic: %w", err)
		}
	}
	if string(magic) != journalMagic {
		return nil, false, fmt.Errorf("durable: not a journal (magic %q, want %q)", magic, journalMagic)
	}
	var lastSeq uint64
	header := make([]byte, recordHeaderSize)
	for {
		_, err := io.ReadFull(r, header)
		if err == io.EOF {
			return recs, torn, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			return recs, true, nil // torn header
		}
		if err != nil {
			return recs, torn, fmt.Errorf("durable: reading journal record header: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordSize {
			// A length no writer produces: either a torn header whose
			// tail happened to be followed by nothing, or a flipped bit.
			// Both read as "the journal ends here, damaged".
			return recs, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return recs, true, nil // torn payload
			}
			return recs, torn, fmt.Errorf("durable: reading journal record: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, true, nil // flipped bits or a torn overwrite: discard from here
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, torn, fmt.Errorf("durable: journal record %d undecodable under a valid checksum: %w",
				len(recs), err)
		}
		if rec.Seq <= lastSeq && len(recs) > 0 {
			return recs, torn, fmt.Errorf("durable: journal sequence regressed (%d after %d) — duplicated or spliced records",
				rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
	}
}

// readJournalFile is ReadJournal over a file; a missing file is a valid
// empty journal.
func readJournalFile(path string) (recs []Record, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durable: opening journal: %w", err)
	}
	defer f.Close()
	recs, torn, err = ReadJournal(f)
	if err != nil {
		return recs, torn, fmt.Errorf("%s: %w", path, err)
	}
	return recs, torn, nil
}
