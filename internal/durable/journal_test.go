package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
)

// frame builds a journal byte stream: magic plus each record framed as
// [len][crc][payload] — exactly what the sink writes.
func frame(tb testing.TB, recs ...Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	for i := range recs {
		b, err := encodeRecord(&recs[i])
		if err != nil {
			tb.Fatalf("encoding record %d: %v", i, err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// rawFrame frames an arbitrary payload with a correct header, bypassing
// the JSON encoder — for testing valid-checksum-bad-payload handling.
func rawFrame(payload []byte) []byte {
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	return buf
}

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Kind: KindBegin, LocalLen: 4},
		{Seq: 2, Kind: KindRound, Round: []crawler.PendingQuery{
			{Query: deepweb.Query{"thai"}, Benefit: 2.5},
			{Query: deepweb.Query{"noodle"}, Benefit: 1.5},
		}},
		{Seq: 3, Kind: KindStep, Step: &StepRecord{
			Query: []string{"thai"}, EstimatedBenefit: 2.5,
			NewlyCovered: 1, CumulativeCovered: 1, ResultSize: 3,
			NewRecords: []WireRecord{{ID: 10, Values: []string{"x", "1"}}},
			NewMatches: []WirePair{{Local: 0, Hidden: 10}},
		}, QueriesIssued: 1, CoveredCount: 1, Charged: 1},
		{Seq: 4, Kind: KindRequeue, Query: "noodle", Attempt: 1,
			QueriesIssued: 1, CoveredCount: 1, Charged: 2},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	want := sampleRecords()
	recs, torn, err := ReadJournal(bytes.NewReader(frame(t, want...)))
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("intact journal reported torn")
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i].Seq != want[i].Seq || recs[i].Kind != want[i].Kind {
			t.Errorf("record %d: got seq %d kind %q, want %d %q",
				i, recs[i].Seq, recs[i].Kind, want[i].Seq, want[i].Kind)
		}
	}
	if recs[2].Step == nil || recs[2].Step.NewMatches[0].Hidden != 10 {
		t.Errorf("step payload did not round-trip: %+v", recs[2].Step)
	}
	if len(recs[1].Round) != 2 || recs[1].Round[0].Query.Key() != "thai" {
		t.Errorf("round payload did not round-trip: %+v", recs[1].Round)
	}
}

// TestJournalEveryTruncationIsTornNotCorrupt is the core crash-safety
// property of the format: cutting the stream at ANY byte offset — the
// only damage a crash mid-append can produce — must never be a hard
// error. Recovery gets the intact prefix, with torn=true unless the cut
// lands exactly on a record boundary.
func TestJournalEveryTruncationIsTornNotCorrupt(t *testing.T) {
	full := frame(t, sampleRecords()...)
	// Record boundaries: offset 0, end of magic, and after each record.
	boundaries := map[int]int{0: 0, len(journalMagic): 0}
	off := len(journalMagic)
	n := 0
	for _, r := range sampleRecords() {
		b, _ := encodeRecord(&r)
		off += len(b)
		n++
		boundaries[off] = n
	}
	for cut := 0; cut <= len(full); cut++ {
		recs, torn, err := ReadJournal(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: hard error %v (must be torn, never corrupt)", cut, err)
		}
		wantRecs, atBoundary := boundaries[cut]
		if atBoundary || cut == 0 {
			if torn {
				t.Errorf("cut at boundary %d: reported torn", cut)
			}
			if len(recs) != wantRecs {
				t.Errorf("cut at boundary %d: %d records, want %d", cut, len(recs), wantRecs)
			}
			continue
		}
		if !torn {
			t.Errorf("cut mid-record at %d: not reported torn", cut)
		}
		// The intact prefix: every record fully before the cut.
		for i, r := range recs {
			if want := sampleRecords()[i]; r.Seq != want.Seq || r.Kind != want.Kind {
				t.Errorf("cut at %d: record %d is %d/%q, want %d/%q",
					cut, i, r.Seq, r.Kind, want.Seq, want.Kind)
			}
		}
	}
}

func TestJournalChecksumFlipDiscardsTail(t *testing.T) {
	recs := sampleRecords()
	full := frame(t, recs...)
	// Flip one byte inside the THIRD record's payload: records 1–2 must
	// survive, the rest reads as a torn tail.
	off := len(journalMagic)
	for i := 0; i < 2; i++ {
		b, _ := encodeRecord(&recs[i])
		off += len(b)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[off+recordHeaderSize+3] ^= 0x40
	got, torn, err := ReadJournal(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("checksum flip must read as torn, got error: %v", err)
	}
	if !torn || len(got) != 2 {
		t.Errorf("got %d records torn=%t, want 2 records torn=true", len(got), torn)
	}
}

func TestJournalInsaneLengthIsTorn(t *testing.T) {
	for _, length := range []uint32{0, maxRecordSize + 1, 1 << 31} {
		var buf bytes.Buffer
		buf.WriteString(journalMagic)
		b, _ := encodeRecord(&Record{Seq: 1, Kind: KindBegin, LocalLen: 4})
		buf.Write(b)
		header := make([]byte, recordHeaderSize)
		binary.LittleEndian.PutUint32(header[0:4], length)
		buf.Write(header)
		got, torn, err := ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("length %d: %v", length, err)
		}
		if !torn || len(got) != 1 {
			t.Errorf("length %d: got %d records torn=%t, want 1/true", length, len(got), torn)
		}
	}
}

func TestJournalBadMagicRejected(t *testing.T) {
	_, _, err := ReadJournal(strings.NewReader("NOTAWAL!" + "garbage"))
	if err == nil || !strings.Contains(err.Error(), "not a journal") {
		t.Errorf("bad magic: got %v, want 'not a journal' error", err)
	}
}

func TestJournalSequenceRegressionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	for _, seq := range []uint64{2, 2} {
		b, err := encodeRecord(&Record{Seq: seq, Kind: KindBegin, LocalLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	_, _, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "sequence regressed") {
		t.Errorf("duplicate seq: got %v, want sequence-regression error", err)
	}
}

func TestJournalValidChecksumBadJSONRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	buf.Write(rawFrame([]byte("not json at all")))
	_, _, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "undecodable") {
		t.Errorf("valid-CRC garbage: got %v, want undecodable error", err)
	}
}

func TestJournalOversizedRecordRefused(t *testing.T) {
	_, err := encodeRecord(&Record{Seq: 1, Kind: KindStep,
		Query: strings.Repeat("x", maxRecordSize)})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized record: got %v, want size-limit error", err)
	}
}

// TestJournalEmptyStreams: zero bytes and a partial magic are both valid
// empty journals (created-then-crashed), distinguished only by torn.
func TestJournalEmptyStreams(t *testing.T) {
	recs, torn, err := ReadJournal(bytes.NewReader(nil))
	if err != nil || torn || len(recs) != 0 {
		t.Errorf("empty stream: recs=%d torn=%t err=%v, want 0/false/nil", len(recs), torn, err)
	}
	recs, torn, err = ReadJournal(strings.NewReader(journalMagic[:3]))
	if err != nil || !torn || len(recs) != 0 {
		t.Errorf("partial magic: recs=%d torn=%t err=%v, want 0/true/nil", len(recs), torn, err)
	}
}
