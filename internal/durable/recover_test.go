package durable

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

func writeJournal(t *testing.T, dir string, recs ...Record) (snapshot, journal string) {
	t.Helper()
	journal = filepath.Join(dir, "cp.wal")
	if err := os.WriteFile(journal, frame(t, recs...), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "cp.bin"), journal // snapshot path intentionally absent
}

// canonical serializes a Result with journal seq 0 — the byte-comparable
// form (raw snapshots differ in the seq they were compacted at).
func canonical(t testing.TB, res *crawler.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// happyJournal is a consistent session: begin, a 3-query round, one
// absorbed step, one charged requeue, one budget stop — then a second
// round resolving the requeued query with an uncharged forfeit.
func happyJournal() []Record {
	round := []crawler.PendingQuery{
		{Query: deepweb.Query{"a"}, Benefit: 2},
		{Query: deepweb.Query{"b"}, Benefit: 1.5},
		{Query: deepweb.Query{"c"}, Benefit: 1},
	}
	return []Record{
		{Seq: 1, Kind: KindBegin, LocalLen: 4},
		{Seq: 2, Kind: KindRound, Round: round},
		{Seq: 3, Kind: KindStep, Step: &StepRecord{
			Query: []string{"a"}, EstimatedBenefit: 2,
			NewlyCovered: 1, CumulativeCovered: 1, ResultSize: 3,
			NewRecords: []WireRecord{{ID: 10, Values: []string{"x", "1"}}},
			NewMatches: []WirePair{{Local: 0, Hidden: 10}},
		}, QueriesIssued: 1, CoveredCount: 1, Charged: 1},
		// Billed failures always ride with the resilience report that
		// accounts them — that is what lets a snapshot alone (after the
		// journal is compacted away) still reconstruct the settled charge.
		{Seq: 4, Kind: KindRequeue, Query: "b", Attempt: 1,
			QueriesIssued: 1, CoveredCount: 1, Charged: 2,
			Resilience: &crawler.Resilience{Requeued: 1}},
		{Seq: 5, Kind: KindBudgetStop, Query: "c",
			QueriesIssued: 1, CoveredCount: 1, Charged: 2,
			Resilience: &crawler.Resilience{Requeued: 1}},
		{Seq: 6, Kind: KindRound, Round: round[1:2],
			QueriesIssued: 1, CoveredCount: 1, Charged: 2,
			Resilience: &crawler.Resilience{Requeued: 1}},
		{Seq: 7, Kind: KindForfeit, Query: "b", Attempt: 2,
			QueriesIssued: 1, CoveredCount: 1, Charged: 2,
			Resilience: &crawler.Resilience{Requeued: 1, Forfeited: 1, Refunded: 1,
				ForfeitedQueries: []string{"b"}}},
	}
}

func TestRecoverNothing(t *testing.T) {
	dir := t.TempDir()
	rec, err := Recover(filepath.Join(dir, "cp.bin"), filepath.Join(dir, "cp.wal"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result != nil || rec.SnapshotLoaded || rec.JournalRecords != 0 || rec.Charged != 0 {
		t.Errorf("fresh start recovered state: %+v", rec)
	}
}

func TestRecoverJournalOnly(t *testing.T) {
	snap, wal := writeJournal(t, t.TempDir(), happyJournal()...)
	rec, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result == nil {
		t.Fatal("no result recovered")
	}
	res := rec.Result
	if res.QueriesIssued != 1 || res.CoveredCount != 1 || len(res.Steps) != 1 {
		t.Errorf("issued=%d covered=%d steps=%d, want 1/1/1",
			res.QueriesIssued, res.CoveredCount, len(res.Steps))
	}
	if !res.Covered[0] || res.Matches[0] == nil || res.Matches[0].ID != 10 {
		t.Errorf("coverage not replayed: covered=%v matches=%v", res.Covered, res.Matches)
	}
	if rec.Charged != 2 {
		t.Errorf("charged=%d, want 2 (one step + one billed requeue)", rec.Charged)
	}
	if len(rec.Pending) != 0 {
		t.Errorf("pending=%v, want none (every round entry resolved)", rec.Pending)
	}
	if rec.LastSeq != 7 || rec.JournalRecords != 7 || rec.TornTail {
		t.Errorf("lastSeq=%d records=%d torn=%t, want 7/7/false",
			rec.LastSeq, rec.JournalRecords, rec.TornTail)
	}
}

func TestRecoverPendingTail(t *testing.T) {
	// Crash after the step: the round's remaining entries are the
	// in-flight intent a resumed session must re-issue.
	snap, wal := writeJournal(t, t.TempDir(), happyJournal()[:3]...)
	rec, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 2 ||
		rec.Pending[0].Query.Key() != "b" || rec.Pending[1].Query.Key() != "c" {
		t.Fatalf("pending=%v, want [b c]", rec.Pending)
	}
	if rec.Pending[0].Benefit != 1.5 {
		t.Errorf("pending benefit %g, want the original 1.5", rec.Pending[0].Benefit)
	}
	if rec.Charged != 1 {
		t.Errorf("charged=%d, want 1", rec.Charged)
	}
}

func TestRecoverTornTailKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	snap, wal := writeJournal(t, dir, happyJournal()...)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail {
		t.Error("truncated journal not reported torn")
	}
	if rec.JournalRecords != 6 || rec.LastSeq != 6 {
		t.Errorf("records=%d lastSeq=%d, want the 6 intact records", rec.JournalRecords, rec.LastSeq)
	}
	// The forfeit was torn off, so "b" is back in flight.
	if len(rec.Pending) != 1 || rec.Pending[0].Query.Key() != "b" {
		t.Errorf("pending=%v, want [b]", rec.Pending)
	}
}

func TestRecoverSnapshotPlusCoveredJournal(t *testing.T) {
	// The crash-between-rename-and-reset window: the snapshot already
	// folds every journal record in (its seq matches the last record), so
	// replay must skip them all instead of double-applying.
	dir := t.TempDir()
	snap, wal := writeJournal(t, dir, happyJournal()...)
	base, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = WriteFileAtomic(snap, func(w io.Writer) error {
		return crawler.SaveResultSeq(w, base.Result, base.LastSeq)
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SnapshotLoaded || rec.SnapshotSeq != 7 {
		t.Fatalf("snapshot not loaded at seq 7: %+v", rec)
	}
	if rec.JournalRecords != 0 {
		t.Errorf("replayed %d records the snapshot already covers", rec.JournalRecords)
	}
	if rec.Charged != 2 {
		t.Errorf("charged=%d, want 2 from the snapshot's resilience accounting", rec.Charged)
	}
	if !bytes.Equal(canonical(t, rec.Result), canonical(t, base.Result)) {
		t.Error("snapshot-recovered state differs from journal-replayed state")
	}
}

func TestRecoverSnapshotChargedIncludesFailures(t *testing.T) {
	// Snapshot-only recovery derives the settled charge from the
	// resilience report: issued steps plus billed failures minus refunds.
	dir := t.TempDir()
	res := &crawler.Result{
		Covered: make([]bool, 4),
		Matches: map[int]*relational.Record{},
		Crawled: map[int]*relational.Record{},
		Resilience: &crawler.Resilience{
			Requeued: 3, Forfeited: 1, Refunded: 2,
		},
	}
	snap := filepath.Join(dir, "cp.bin")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := crawler.SaveResult(f, res); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rec, err := Recover(snap, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Charged != 2 { // 0 issued + 3 requeued + 1 forfeited − 2 refunded
		t.Errorf("charged=%d, want 2", rec.Charged)
	}
}

func TestRecoverRejects(t *testing.T) {
	j := happyJournal
	cases := []struct {
		name     string
		localLen int
		mutate   func([]Record) []Record
		want     string
	}{
		{"local size mismatch", 5, func(r []Record) []Record { return r }, "local size"},
		{"nonzero begin without snapshot", 4, func(r []Record) []Record {
			r[0].QueriesIssued = 9
			return r
		}, "base snapshot is required"},
		{"begin without local size", 0, func(r []Record) []Record {
			r[0].LocalLen = 0
			return r
		}, "without a local size"},
		{"step outside any round", 4, func(r []Record) []Record {
			return []Record{r[0], r[2]}
		}, "no open round selected"},
		{"round over unresolved round", 4, func(r []Record) []Record {
			r[4] = Record{Seq: 5, Kind: KindRound,
				Round:         []crawler.PendingQuery{{Query: deepweb.Query{"z"}}},
				QueriesIssued: 1, CoveredCount: 1, Charged: 2}
			return r[:5]
		}, "unresolved"},
		{"step missing payload", 4, func(r []Record) []Record {
			r[2].Step = nil
			return r[:3]
		}, "without a step payload"},
		{"step charge jump", 4, func(r []Record) []Record {
			r[2].Charged = 3
			return r[:3]
		}, "settled charge"},
		{"begin carrying charge", 4, func(r []Record) []Record {
			r[0].Charged = 1
			return r[:1]
		}, "settled charge"},
		{"accounting drift", 4, func(r []Record) []Record {
			r[2].QueriesIssued = 7
			return r[:3]
		}, "accounting drift"},
		{"unknown kind", 4, func(r []Record) []Record {
			r[1].Kind = "mystery"
			return r[:2]
		}, "unknown kind"},
		{"step re-covers a record", 4, func(r []Record) []Record {
			r[2].Step.NewMatches = []WirePair{{Local: 0, Hidden: 10}, {Local: 0, Hidden: 10}}
			r[2].Step.NewlyCovered = 2
			r[2].Step.CumulativeCovered = 2
			r[2].CoveredCount = 2
			return r[:3]
		}, "re-covers"},
		{"step matches uncrawled record", 4, func(r []Record) []Record {
			r[2].Step.NewMatches[0].Hidden = 99
			return r[:3]
		}, "uncrawled"},
		{"step match out of range", 4, func(r []Record) []Record {
			r[2].Step.NewMatches[0].Local = 9
			return r[:3]
		}, "outside"},
		{"step match count mismatch", 4, func(r []Record) []Record {
			r[2].Step.NewlyCovered = 2
			return r[:3]
		}, "claims 2 newly covered"},
		{"step cumulative mismatch", 4, func(r []Record) []Record {
			r[2].Step.CumulativeCovered = 5
			r[2].Step.NewlyCovered = 1
			return r[:3]
		}, "cumulative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, wal := writeJournal(t, t.TempDir(), tc.mutate(j())...)
			_, err := Recover(snap, wal, tc.localLen)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRecoverStepReCrawlRejected: a spliced journal replaying the same
// hidden record twice must fail, not silently double-count.
func TestRecoverStepReCrawlRejected(t *testing.T) {
	recs := happyJournal()[:3]
	dup := recs[2]
	dup.Seq = 4
	dup.Step = &StepRecord{
		Query: []string{"b"}, NewlyCovered: 0, CumulativeCovered: 1, ResultSize: 1,
		NewRecords: []WireRecord{{ID: 10, Values: []string{"x", "1"}}},
	}
	dup.QueriesIssued = 2
	dup.Charged = 2
	recs = append(recs, dup)
	snap, wal := writeJournal(t, t.TempDir(), recs...)
	_, err := Recover(snap, wal, 4)
	if err == nil || !strings.Contains(err.Error(), "re-crawls") {
		t.Errorf("got %v, want re-crawl error", err)
	}
}
