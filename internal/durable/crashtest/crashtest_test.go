// Package crashtest is the kill-anywhere recovery harness: it SIGKILLs a
// real smartcrawl process at deterministic points in the durability path —
// including halfway through a journal append — then resumes from the
// snapshot + journal and asserts the combined crawl is byte-identical to
// one that was never interrupted.
//
// The contract under test (internal/durable): a crash loses at most the
// one record being written, no charged query is re-issued, and recovery +
// resume reconstructs exactly the state an uninterrupted run reaches.
// Crash points ride in via the SMARTCRAWL_CRASH_AT environment variable
// (see durable.ParseCrashPoint); nothing else in the binary is test-aware.
//
// Run directly with `make crashtest` (race detector on); `go test ./...`
// runs the full matrix, `-short` a reduced one.
package crashtest

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/relational"
)

const (
	budget   = 40
	autosave = 8 // journal→snapshot compaction cadence, in absorbed steps
)

var (
	binPath    string // smartcrawl binary, built once in TestMain
	crawldPath string // crawld daemon binary, for the service crash cells
	localCSV   string
	hidCSV     string
	hidACSV    string // overlapping hidden subsets for the federated cells
	hidBCSV    string
	rankCol    int
)

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "crashtest-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := func() int {
		defer os.RemoveAll(tmp)
		binPath = filepath.Join(tmp, "smartcrawl")
		crawldPath = filepath.Join(tmp, "crawld")
		for pkg, bin := range map[string]string{
			"smartcrawl/cmd/smartcrawl": binPath,
			"smartcrawl/cmd/crawld":     crawldPath,
		} {
			buildArgs := []string{"build", "-o", bin}
			if raceEnabled {
				buildArgs = append(buildArgs, "-race")
			}
			buildArgs = append(buildArgs, pkg)
			if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
				fmt.Fprintf(os.Stderr, "building %s: %v\n%s", pkg, err, out)
				return 1
			}
		}
		in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: 2400, HiddenSize: 600, LocalSize: 150, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// The federated cells crawl two overlapping subsets of the hidden
		// database — the middle third is reachable through both interfaces.
		rankCol = in.RankColumn
		n := in.Hidden.Len()
		subset := func(name string, lo, hi int) *relational.Table {
			t := relational.NewTable(name, in.Hidden.Schema)
			for _, r := range in.Hidden.Records[lo:hi] {
				t.Append(r.Values...)
			}
			return t
		}
		hidA := subset("hidden-a", 0, n*2/3)
		hidB := subset("hidden-b", n/3, n)
		localCSV = filepath.Join(tmp, "local.csv")
		hidCSV = filepath.Join(tmp, "hidden.csv")
		hidACSV = filepath.Join(tmp, "hidden-a.csv")
		hidBCSV = filepath.Join(tmp, "hidden-b.csv")
		for path, write := range map[string]func(*os.File) error{
			localCSV: func(f *os.File) error { return in.Local.WriteCSV(f) },
			hidCSV:   func(f *os.File) error { return in.Hidden.WriteCSV(f) },
			hidACSV:  func(f *os.File) error { return hidA.WriteCSV(f) },
			hidBCSV:  func(f *os.File) error { return hidB.WriteCSV(f) },
		} {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			f.Close()
		}
		return m.Run()
	}()
	os.Exit(code)
}

// config is one cell of the crash matrix.
type config struct {
	seed    int
	workers int
	extra   []string // extra flags shared by every run of the cell
}

func (c config) args(dir string, budget int) []string {
	a := []string{
		"-local", localCSV, "-hidden", hidCSV,
		"-budget", strconv.Itoa(budget), "-batch", "4",
		"-workers", strconv.Itoa(c.workers), "-seed", strconv.Itoa(c.seed),
		"-theta", "0.03",
		"-checkpoint", filepath.Join(dir, "cp.bin"),
		"-wal", filepath.Join(dir, "cp.wal"),
		"-autosave", strconv.Itoa(autosave),
		"-out", filepath.Join(dir, "out.csv"),
	}
	return append(a, c.extra...)
}

type runResult struct {
	killed bool // the process SIGKILLed itself at the crash point
	exit   int
	stdout string
	stderr string
}

// run executes the smartcrawl binary; crashAt (when non-empty) arms the
// in-process crash point via the environment.
func run(t *testing.T, crashAt string, args ...string) runResult {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	cmd.Env = append(os.Environ(), "SMARTCRAWL_CRASH_AT="+crashAt)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	r := runResult{stdout: stdout.String(), stderr: stderr.String()}
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		ws := ee.Sys().(syscall.WaitStatus)
		if ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			r.killed = true
		} else {
			r.exit = ee.ExitCode()
		}
	}
	return r
}

var chargedRe = regexp.MustCompile(`(?m)\bcharged=(\d+)`)
var coveredRe = regexp.MustCompile(`(?m)\bcovered_count=(\d+)`)

// inspect runs -checkpoint-inspect over a crash site and parses the
// settled charge — what a resumed session subtracts from the quota.
func inspect(t *testing.T, dir string) (charged, covered int) {
	t.Helper()
	r := run(t, "", "-checkpoint-inspect",
		"-checkpoint", filepath.Join(dir, "cp.bin"),
		"-wal", filepath.Join(dir, "cp.wal"))
	if r.killed || r.exit != 0 {
		t.Fatalf("inspect failed (exit %d):\n%s", r.exit, r.stderr)
	}
	if m := chargedRe.FindStringSubmatch(r.stdout); m != nil {
		charged, _ = strconv.Atoi(m[1])
	}
	if m := coveredRe.FindStringSubmatch(r.stdout); m != nil {
		covered, _ = strconv.Atoi(m[1])
	}
	return charged, covered
}

// canonicalCheckpoint loads a checkpoint and re-serializes it with
// journal seq 0: raw snapshot bytes differ between runs compacted at
// different journal positions, the canonical form must not.
func canonicalCheckpoint(t *testing.T, dir string) []byte {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "cp.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := crawler.LoadResult(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readOut(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// reference runs the uninterrupted crawl for a config and returns its
// output CSV and canonical checkpoint.
func reference(t *testing.T, c config) (out, cp []byte) {
	t.Helper()
	dir := t.TempDir()
	r := run(t, "", c.args(dir, budget)...)
	if r.killed || r.exit != 0 {
		t.Fatalf("reference run failed (exit %d):\n%s", r.exit, r.stderr)
	}
	return readOut(t, dir), canonicalCheckpoint(t, dir)
}

// resumeAndCompare picks up a crash site, resumes with the leftover
// budget, and asserts the combined run is identical to the reference.
// The guard matters: a remaining budget of zero must NOT be passed to the
// binary (Budget <= 0 means unlimited), so a fully-spent crash site is
// compared against the reference directly.
func resumeAndCompare(t *testing.T, c config, dir string, refOut, refCP []byte) {
	t.Helper()
	charged, _ := inspect(t, dir)
	if charged > budget {
		t.Fatalf("crash site shows %d charged, above the %d budget", charged, budget)
	}
	if remaining := budget - charged; remaining > 0 {
		r := run(t, "", c.args(dir, remaining)...)
		if r.killed || r.exit != 0 {
			t.Fatalf("resume run failed (exit %d):\n%s", r.exit, r.stderr)
		}
		if !bytes.Equal(readOut(t, dir), refOut) {
			t.Errorf("resumed output CSV differs from the uninterrupted run")
		}
	}
	if !bytes.Equal(canonicalCheckpoint(t, dir), refCP) {
		t.Errorf("resumed checkpoint differs from the uninterrupted run")
	}
}

// TestCrashRecoveryMatrix is the acceptance sweep: seeds × worker counts
// × injection points covering every record kind the fault-free path
// writes, torn mid-append writes included, plus the
// snapshot-renamed-journal-not-reset compaction window.
func TestCrashRecoveryMatrix(t *testing.T) {
	seeds := []int{1, 2, 3}
	workers := []int{1, 4, 16}
	points := []string{
		"begin:1",        // before anything — resume from scratch
		"round:1",        // intent journaled, nothing dispatched
		"round:3:torn:5", // torn mid-intent
		"step:1",         // first charged query durable, then death
		"step:1:torn:0",  // header fully missing: zero bytes of the record
		"step:7:torn:20", // torn mid-step, prior steps intact
		"step:15",        // deep into the crawl, past one compaction
		"compact:1",      // snapshot renamed, journal not yet reset
		"compact:3",      // same window, later in the crawl
	}
	if testing.Short() {
		seeds = []int{1}
		workers = []int{4}
		points = []string{"begin:1", "step:1:torn:0", "step:7:torn:20", "compact:1"}
	}
	for _, seed := range seeds {
		for _, w := range workers {
			c := config{seed: seed, workers: w}
			t.Run(fmt.Sprintf("seed=%d,workers=%d", seed, w), func(t *testing.T) {
				refOut, refCP := reference(t, c)
				for _, point := range points {
					t.Run(point, func(t *testing.T) {
						dir := t.TempDir()
						r := run(t, point, c.args(dir, budget)...)
						if !r.killed {
							t.Fatalf("crash point %s never fired (exit %d):\n%s",
								point, r.exit, r.stderr)
						}
						resumeAndCompare(t, c, dir, refOut, refCP)
					})
				}
			})
		}
	}
}

// TestCrashRecoveryUnderFaults exercises the requeue and forfeit journal
// records: with injected interface faults, kills land on failure-
// resolution records. Byte-equivalence does not hold here (a crash resets
// in-memory attempt counters, so retry accounting may differ), so the
// assertions are the durability invariants themselves: the resume
// succeeds, the combined charge stays within budget, and coverage never
// goes backwards.
func TestCrashRecoveryUnderFaults(t *testing.T) {
	c := config{seed: 2, workers: 4, extra: []string{
		"-faults", "transient10", "-fault-seed", "5", "-retries", "0",
	}}
	for _, point := range []string{"requeue:1", "forfeit:1", "requeue:3"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			r := run(t, point, c.args(dir, budget)...)
			if !r.killed {
				// The fault schedule for this seed produced fewer
				// failures than the crash point asks for.
				t.Skipf("crash point %s never fired under this fault schedule", point)
			}
			charged, covered := inspect(t, dir)
			if charged > budget {
				t.Fatalf("crash site shows %d charged, above the %d budget", charged, budget)
			}
			if remaining := budget - charged; remaining > 0 {
				rr := run(t, "", c.args(dir, remaining)...)
				if rr.killed || rr.exit != 0 {
					t.Fatalf("resume run failed (exit %d):\n%s", rr.exit, rr.stderr)
				}
			}
			charged2, covered2 := inspect(t, dir)
			if covered2 < covered {
				t.Errorf("coverage went backwards across resume: %d -> %d", covered, covered2)
			}
			if charged2 > budget {
				t.Errorf("combined charge %d exceeds the %d budget", charged2, budget)
			}
		})
	}
}

// TestCrashRecoveryRandomKill kills the process at arbitrary wall-clock
// moments instead of deterministic record counts — the "anywhere" in
// kill-anywhere. Wherever the SIGKILL lands (mid-append, mid-snapshot-
// rename, between rounds), recovery plus resume must reach the reference
// state.
func TestCrashRecoveryRandomKill(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based kills")
	}
	// Pace the crawl so the kills land mid-flight rather than after exit.
	c := config{seed: 3, workers: 4, extra: []string{"-rate", "150", "-burst", "5"}}
	refOut, refCP := reference(t, c)
	for _, delay := range []time.Duration{
		15 * time.Millisecond, 40 * time.Millisecond,
		90 * time.Millisecond, 180 * time.Millisecond,
	} {
		t.Run(delay.String(), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(binPath, c.args(dir, budget)...)
			cmd.Env = append(os.Environ(), "SMARTCRAWL_CRASH_AT=")
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay)
			cmd.Process.Kill() // SIGKILL; no-op if already exited
			err := cmd.Wait()
			if err == nil {
				// Finished before the kill: already the reference run.
				if !bytes.Equal(canonicalCheckpoint(t, dir), refCP) {
					t.Error("uninterrupted checkpoint differs from reference")
				}
				return
			}
			resumeAndCompare(t, c, dir, refOut, refCP)
		})
	}
}

// TestGracefulInterrupt covers the SIGINT path: one interrupt drains
// in-flight queries, saves a resumable state, and exits cleanly; the
// resumed crawl must reach the reference state.
func TestGracefulInterrupt(t *testing.T) {
	c := config{seed: 1, workers: 4, extra: []string{"-rate", "150", "-burst", "5"}}
	refOut, refCP := reference(t, c)
	dir := t.TempDir()
	cmd := exec.Command(binPath, c.args(dir, budget)...)
	cmd.Env = append(os.Environ(), "SMARTCRAWL_CRASH_AT=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	cmd.Process.Signal(os.Interrupt)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("interrupted run did not exit cleanly: %v\n%s", err, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("checkpoint written")) {
		t.Fatalf("interrupted run saved no checkpoint:\n%s", stderr.String())
	}
	resumeAndCompare(t, c, dir, refOut, refCP)
}
