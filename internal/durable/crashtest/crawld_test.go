package crashtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon is one live crawld process under test.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *bytes.Buffer
}

// startCrawld launches the crawld binary over dir on a free port, arms
// the crash point via the environment, and waits for the daemon to
// announce its address.
func startCrawld(t *testing.T, dir, crashAt string) *daemon {
	t.Helper()
	cmd := exec.Command(crawldPath,
		"-data", dir, "-addr", "127.0.0.1:0",
		"-workers", "2", "-allow-local-backends")
	cmd.Env = append(os.Environ(), "SMARTCRAWL_CRASH_AT="+crashAt)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "crawld listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("crawld never announced its address:\n%s", stderr.String())
	}
	go io.Copy(io.Discard, stdout)
	return &daemon{cmd: cmd, base: "http://" + addr, stderr: &stderr}
}

// stop drains the daemon with SIGTERM and expects a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	if err := d.cmd.Wait(); err != nil {
		t.Errorf("crawld did not drain cleanly: %v\n%s", err, d.stderr.String())
	}
}

// waitKilled blocks until the daemon exits and asserts the cause was the
// injected SIGKILL, not a clean shutdown or a different failure.
func (d *daemon) waitKilled(t *testing.T) {
	t.Helper()
	err := d.cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("crawld exited without the injected SIGKILL (err %v):\n%s", err, d.stderr.String())
	}
	if ws := ee.Sys().(syscall.WaitStatus); !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crawld died of %v, want SIGKILL:\n%s", ee, d.stderr.String())
	}
}

// submitJob posts one job spec and returns the assigned ID.
func submitJob(t *testing.T, base string, spec map[string]any) string {
	t.Helper()
	buf, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, job)
	}
	return job.ID
}

// pollJob polls GET /jobs/{id} until the job settles.
func pollJob(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j map[string]any
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch j["state"] {
		case "done", "failed", "canceled":
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v", id, j["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readJobRecord reads a job.json straight off the data directory — the
// state the daemon had durably persisted at the moment it died.
func readJobRecord(t *testing.T, dir, id string) map[string]any {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, "jobs", id, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var j map[string]any
	if err := json.Unmarshal(buf, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestCrawldCrashRecovery is the daemon-level kill-anywhere contract: a
// crawld with two jobs mid-crawl is SIGKILLed from inside the durability
// path; a fresh daemon over the same data directory must recover every
// job and complete each one byte-identical to the run the smartcrawl CLI
// produces uninterrupted. Paced crawls (one query per ~20ms) guarantee
// both jobs are genuinely in flight when the kill lands.
func TestCrawldCrashRecovery(t *testing.T) {
	// The two jobs differ in seed and per-crawl pipeline width so their
	// schedules interleave heterogeneously under the daemon's two workers.
	pace := []string{"-rate", "50", "-burst", "1"}
	cfgs := []config{
		{seed: 1, workers: 1, extra: pace},
		{seed: 2, workers: 4, extra: pace},
	}
	type ref struct{ out, cp []byte }
	refs := make([]ref, len(cfgs))
	for i, c := range cfgs {
		refs[i].out, refs[i].cp = reference(t, c)
	}

	points := []string{
		"step:12",   // deep in the crawl, both jobs past their first steps
		"compact:1", // snapshot renamed, journal not yet reset
	}
	if testing.Short() {
		points = points[:1]
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			d := startCrawld(t, dir, point)
			ids := make([]string, len(cfgs))
			for i, c := range cfgs {
				ids[i] = submitJob(t, d.base, map[string]any{
					"local_path": localCSV, "hidden": hidCSV,
					"budget": budget, "batch": 4, "theta": 0.03,
					"workers": c.workers, "seed": c.seed,
					"rate": 50, "burst": 1, "autosave": autosave,
				})
			}
			// The first job to reach the crash point SIGKILLs the whole
			// daemon — no drain, no checkpoint-on-exit.
			d.waitKilled(t)

			// Both jobs were durably recorded as running when it died:
			// the recovery obligation covers at least two in-flight crawls.
			for _, id := range ids {
				if rec := readJobRecord(t, dir, id); rec["state"] != "running" {
					t.Fatalf("job %s persisted as %v at kill time, want running", id, rec["state"])
				}
			}

			// A fresh daemon over the same directory re-queues and resumes
			// every job from its journal.
			d2 := startCrawld(t, dir, "")
			defer d2.stop(t)
			for i, id := range ids {
				j := pollJob(t, d2.base, id)
				if j["state"] != "done" {
					t.Fatalf("job %s after restart: %v (%v)", id, j["state"], j["error"])
				}
				if j["restarts"] != float64(1) {
					t.Errorf("job %s restarts = %v, want 1", id, j["restarts"])
				}
				jobDir := filepath.Join(dir, "jobs", id)
				out, err := os.ReadFile(filepath.Join(jobDir, "out.csv"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, refs[i].out) {
					t.Errorf("job %s (seed %d): recovered output differs from the uninterrupted CLI run", id, cfgs[i].seed)
				}
				if !bytes.Equal(canonicalCheckpoint(t, jobDir), refs[i].cp) {
					t.Errorf("job %s (seed %d): recovered checkpoint differs from the uninterrupted CLI run", id, cfgs[i].seed)
				}
				if charged := int(j["charged"].(float64)); charged > budget {
					t.Errorf("job %s charged %d across restarts, above the %d budget", id, charged, budget)
				}
			}
		})
	}
}
