package crashtest

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"testing"
)

// The federated half of the kill-anywhere harness: a crawl over two
// interfaces sharing one budget is SIGKILLed at interface-tagged WAL
// points (kind@iface:n — the nth record of that kind allocated to that
// interface), then resumed from snapshot + journal. The combined run must
// be byte-identical to one that was never interrupted: the WAL tags every
// round and step with its interface ID, so recovery re-seats pending
// queries on the right interface and the allocator continues exactly
// where the dead session stopped.

// fedConfig is one cell of the federated crash matrix.
type fedConfig struct {
	seed    int
	workers int
}

// spec builds the -interfaces grammar for the cell: two overlapping
// CSV-backed interfaces with different k, both sampled, seeded from the
// cell seed so every cell exercises a distinct allocation schedule.
func (c fedConfig) spec() string {
	return fmt.Sprintf(
		"name=a,hidden=%s,k=30,rank-column=%d,theta=0.03,seed=%d;"+
			"name=b,hidden=%s,k=15,rank-column=%d,theta=0.03,seed=%d",
		hidACSV, rankCol, c.seed, hidBCSV, rankCol, c.seed+100)
}

func (c fedConfig) args(dir string, budget int) []string {
	return []string{
		"-local", localCSV,
		"-interfaces", c.spec(),
		"-budget", strconv.Itoa(budget), "-batch", "4",
		"-workers", strconv.Itoa(c.workers),
		"-checkpoint", filepath.Join(dir, "cp.bin"),
		"-wal", filepath.Join(dir, "cp.wal"),
		"-autosave", strconv.Itoa(autosave),
		"-out", filepath.Join(dir, "out.csv"),
	}
}

// fedReference runs the uninterrupted federated crawl for a cell.
func fedReference(t *testing.T, c fedConfig) (out, cp []byte) {
	t.Helper()
	dir := t.TempDir()
	r := run(t, "", c.args(dir, budget)...)
	if r.killed || r.exit != 0 {
		t.Fatalf("federated reference run failed (exit %d):\n%s", r.exit, r.stderr)
	}
	return readOut(t, dir), canonicalCheckpoint(t, dir)
}

// fedResumeAndCompare resumes a federated crash site with the leftover
// budget and asserts byte-identity with the uninterrupted reference.
func fedResumeAndCompare(t *testing.T, c fedConfig, dir string, refOut, refCP []byte) {
	t.Helper()
	charged, _ := inspect(t, dir)
	if charged > budget {
		t.Fatalf("crash site shows %d charged, above the %d budget", charged, budget)
	}
	if remaining := budget - charged; remaining > 0 {
		r := run(t, "", c.args(dir, remaining)...)
		if r.killed || r.exit != 0 {
			t.Fatalf("federated resume failed (exit %d):\n%s", r.exit, r.stderr)
		}
		if !bytes.Equal(readOut(t, dir), refOut) {
			t.Errorf("resumed federated output CSV differs from the uninterrupted run")
		}
	}
	if !bytes.Equal(canonicalCheckpoint(t, dir), refCP) {
		t.Errorf("resumed federated checkpoint differs from the uninterrupted run")
	}
}

// TestFederatedCrashRecovery is the federated acceptance sweep: seeds ×
// worker counts × interface-tagged injection points. Untagged points
// count records globally (exactly as before federation); tagged points
// fire on the nth record of that kind belonging to one interface,
// landing kills inside a specific interface's round or step stream —
// torn-tail variants included.
func TestFederatedCrashRecovery(t *testing.T) {
	seeds := []int{1, 2}
	workers := []int{1, 4}
	points := []string{
		"begin:1",          // before anything — resume from scratch
		"round@0:1",        // first round allocated to interface a
		"round@1:1:torn:6", // first round for interface b, torn mid-intent
		"step@0:2",         // second step absorbed from interface a
		"step@1:2",         // second step absorbed from interface b
		"step@1:1:torn:20", // torn mid-step in interface b's stream
		"step:7",           // untagged: global record counting still works
		"compact:1",        // snapshot renamed, journal not yet reset
	}
	if testing.Short() {
		seeds = []int{1}
		workers = []int{4}
		points = []string{"round@1:1:torn:6", "step@1:2", "compact:1"}
	}
	for _, seed := range seeds {
		for _, w := range workers {
			c := fedConfig{seed: seed, workers: w}
			t.Run(fmt.Sprintf("seed=%d,workers=%d", seed, w), func(t *testing.T) {
				refOut, refCP := fedReference(t, c)
				for _, point := range points {
					t.Run(point, func(t *testing.T) {
						dir := t.TempDir()
						r := run(t, point, c.args(dir, budget)...)
						if !r.killed {
							t.Fatalf("crash point %s never fired (exit %d):\n%s",
								point, r.exit, r.stderr)
						}
						fedResumeAndCompare(t, c, dir, refOut, refCP)
					})
				}
			})
		}
	}
}

// TestFederatedCompactRejectsIfaceTag pins the crash grammar boundary:
// compaction is global, so a compact@iface spec must be rejected by the
// binary rather than silently never firing.
func TestFederatedCompactRejectsIfaceTag(t *testing.T) {
	dir := t.TempDir()
	c := fedConfig{seed: 1, workers: 1}
	r := run(t, "compact@1:1", c.args(dir, budget)...)
	if r.killed || r.exit == 0 {
		t.Fatalf("compact@1:1 accepted (killed=%t exit=%d)", r.killed, r.exit)
	}
}
