//go:build race

package crashtest

// raceEnabled mirrors whether this test binary was built with the race
// detector; the harness then builds the smartcrawl child binary with
// -race too, so `make crashtest` puts the signal-handler and shutdown
// paths of the real binary under the detector.
const raceEnabled = true
