package durable

import (
	"bytes"
	"testing"

	"smartcrawl/internal/crawler"
)

// FuzzJournalRecover throws arbitrary bytes at the full recovery path:
// journal decoding plus record replay. Whatever the damage — truncation,
// bit flips, duplicated or spliced records, hostile lengths — the outcome
// must be a clean error or a consistent prefix, never a panic and never
// an inconsistent Result.
func FuzzJournalRecover(f *testing.F) {
	valid := frame(f, happyJournal()...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])        // torn payload
	f.Add(valid[:len(journalMagic)+3]) // torn header
	f.Add(valid[:3])                   // torn magic
	f.Add([]byte{})                    // empty journal
	f.Add([]byte("SCWAL01\n"))         // magic only
	f.Add([]byte("SCWAL99\nwhatever")) // wrong version
	f.Add(append([]byte("SCWAL01\n"), rawFrame([]byte("not json"))...))
	flipped := append([]byte(nil), valid...)
	flipped[len(valid)/2] ^= 0x10
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), valid[len(journalMagic):]...)) // spliced duplicate

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn, err := ReadJournal(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded records must be strictly sequenced.
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Fatalf("accepted regressed sequence: %d after %d", recs[i].Seq, recs[i-1].Seq)
			}
		}
		// A torn journal with no hard error must still replay its prefix
		// or reject it — replay panicking on decodable records is a bug.
		_ = torn
		rec := &Recovered{}
		var res *crawler.Result
		if err := rec.replay(recs, &res); err != nil {
			return
		}
		if res == nil {
			return
		}
		// A replay that succeeds must hand back a consistent Result.
		pop := 0
		for _, c := range res.Covered {
			if c {
				pop++
			}
		}
		if pop != res.CoveredCount {
			t.Fatalf("replayed CoveredCount %d but %d bits set", res.CoveredCount, pop)
		}
		if len(res.Steps) != res.QueriesIssued {
			t.Fatalf("replayed %d steps but %d queries issued", len(res.Steps), res.QueriesIssued)
		}
		for d, h := range res.Matches {
			if h == nil {
				t.Fatalf("match %d is nil", d)
			}
			if _, ok := res.Crawled[h.ID]; !ok {
				t.Fatalf("match %d references uncrawled %d", d, h.ID)
			}
		}
	})
}
