package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// world simulates the merge stage's side of the sink contract: it mutates
// a Result exactly the way the crawl does, then fires the callback.
type world struct {
	res    *crawler.Result
	nextID int
}

func newWorld(localLen int) *world {
	return &world{
		res: &crawler.Result{
			Covered: make([]bool, localLen),
			Matches: map[int]*relational.Record{},
			Crawled: map[int]*relational.Record{},
		},
		nextID: 100,
	}
}

func q(s string) deepweb.Query { return deepweb.Query{s} }

func pq(benefit float64, keys ...string) []crawler.PendingQuery {
	sel := make([]crawler.PendingQuery, len(keys))
	for i, k := range keys {
		sel[i] = crawler.PendingQuery{Query: q(k), Benefit: benefit - float64(i)/10}
	}
	return sel
}

// absorb applies one query result covering local record d (-1 covers
// nothing) via one freshly crawled hidden record, then notifies the sink.
func (w *world) absorb(t *testing.T, s *Sink, key string, d int) {
	t.Helper()
	w.nextID++
	hid := w.nextID
	w.res.Crawled[hid] = &relational.Record{ID: hid, Values: []string{key, "v"}}
	var newly []int
	nc := 0
	if d >= 0 {
		w.res.Covered[d] = true
		w.res.CoveredCount++
		w.res.Matches[d] = w.res.Crawled[hid]
		newly = []int{d}
		nc = 1
	}
	w.res.QueriesIssued++
	step := crawler.Step{
		Query: q(key), EstimatedBenefit: 1.5, NewlyCovered: nc,
		CumulativeCovered: w.res.CoveredCount, ResultSize: 1, NewHidden: []int{hid},
	}
	w.res.Steps = append(w.res.Steps, step)
	if err := s.StepAbsorbed(w.res, step, newly); err != nil {
		t.Fatal(err)
	}
}

func paths(t *testing.T) (snap, wal string) {
	dir := t.TempDir()
	return filepath.Join(dir, "cp.bin"), filepath.Join(dir, "cp.wal")
}

func TestSinkJournalThenRecover(t *testing.T) {
	snap, wal := paths(t)
	opts := Options{Snapshot: snap, Journal: wal, LocalLen: 4}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.RoundSelected(pq(2, "a", "b", "c"), w.res); err != nil {
		t.Fatal(err)
	}
	w.absorb(t, s, "a", 0)
	if err := s.QueryRequeued(q("b"), 1, true, w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.BudgetStopped(q("c"), w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.RoundCompleted(w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.RoundSelected(pq(1.2, "b"), w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.QueryForfeited(q("b"), 2, false, w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.RoundCompleted(w.res); err != nil {
		t.Fatal(err)
	}
	// Crash-style close: no final state, journal left on disk.
	if err := s.Close(nil); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(snap, wal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result == nil {
		t.Fatal("journal did not recover")
	}
	if !bytes.Equal(canonical(t, rec.Result), canonical(t, w.res)) {
		t.Error("recovered state differs from the live state")
	}
	if rec.Charged != 2 { // the absorbed step + the billed requeue
		t.Errorf("charged=%d, want 2", rec.Charged)
	}
	if len(rec.Pending) != 0 {
		t.Errorf("pending=%v, want none", rec.Pending)
	}
}

func TestSinkCompactOnOpenAndCadence(t *testing.T) {
	snap, wal := paths(t)
	opts := Options{Snapshot: snap, Journal: wal, LocalLen: 4, Every: 2, Sync: SyncRound}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.RoundSelected(pq(2, "a", "b"), w.res); err != nil {
		t.Fatal(err)
	}
	w.absorb(t, s, "a", 0)
	w.absorb(t, s, "b", 1)
	if err := s.RoundCompleted(w.res); err != nil {
		t.Fatal(err)
	}
	if s.Compactions() != 1 {
		t.Fatalf("compactions=%d, want 1 (Every=2 reached)", s.Compactions())
	}
	if err := s.Close(nil); err != nil {
		t.Fatal(err)
	}
	// The compaction folded everything into the snapshot and reset the
	// journal down to its begin record.
	res, seq, err := loadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 2 || seq == 0 {
		t.Errorf("snapshot issued=%d seq=%d, want 2 and a nonzero seq", res.QueriesIssued, seq)
	}
	recs, torn, err := readJournalFile(wal)
	if err != nil || torn {
		t.Fatalf("journal after compact: torn=%t err=%v", torn, err)
	}
	if len(recs) != 1 || recs[0].Kind != KindBegin {
		t.Fatalf("journal after compact holds %d records (first %q), want just begin",
			len(recs), recs[0].Kind)
	}
	// Re-open: the prior state comes back and new work appends cleanly.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovered()
	if rec.Result == nil || rec.Result.QueriesIssued != 2 || rec.Charged != 2 {
		t.Fatalf("reopen recovered %+v, want 2 issued / 2 charged", rec)
	}
	if err := s2.RoundSelected(pq(1, "d"), rec.Result); err != nil {
		t.Fatal(err)
	}
	w2 := &world{res: rec.Result, nextID: 200}
	w2.absorb(t, s2, "d", 2)
	if err := s2.Close(w2.res); err != nil {
		t.Fatal(err)
	}
	res, _, err = loadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 3 || res.CoveredCount != 3 {
		t.Errorf("final snapshot issued=%d covered=%d, want 3/3", res.QueriesIssued, res.CoveredCount)
	}
}

func loadSnapshot(path string) (*crawler.Result, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return crawler.LoadResultSeq(f)
}

// TestSinkPendingIntentSurvivesRepeatedCrashes: the in-flight round of a
// dead session must survive not just one recovery but a recover-then-
// crash-again sequence, because every journal reset re-seeds the
// remaining intent.
func TestSinkPendingIntentSurvivesRepeatedCrashes(t *testing.T) {
	snap, wal := paths(t)
	opts := Options{Snapshot: snap, Journal: wal, LocalLen: 4}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.RoundSelected(pq(2, "a", "b", "c"), w.res); err != nil {
		t.Fatal(err)
	}
	w.absorb(t, s, "a", 0)
	if err := s.Close(nil); err != nil { // crash 1
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(s2.Recovered().Pending); got != "b,c" {
		t.Fatalf("after crash 1: pending %q, want b,c", got)
	}
	if err := s2.Close(nil); err != nil { // crash 2: recovered, did nothing
		t.Fatal(err)
	}

	s3, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(s3.Recovered().Pending); got != "b,c" {
		t.Fatalf("after crash 2: pending %q, want b,c", got)
	}
	// The resumed crawl re-selects the pending queries: the sink matches
	// them against the journaled intent instead of double-journaling.
	rec := s3.Recovered()
	if err := s3.RoundSelected(rec.Pending[:1], rec.Result); err != nil {
		t.Fatal(err)
	}
	w3 := &world{res: rec.Result, nextID: 300}
	w3.absorb(t, s3, "b", 1)
	if err := s3.Close(nil); err != nil { // crash 3
		t.Fatal(err)
	}

	s4, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(s4.Recovered().Pending); got != "c" {
		t.Fatalf("after crash 3: pending %q, want c", got)
	}
	if s4.Recovered().Result.QueriesIssued != 2 {
		t.Errorf("issued=%d, want 2", s4.Recovered().Result.QueriesIssued)
	}
	s4.Close(nil)
}

func keys(pending []crawler.PendingQuery) string {
	parts := make([]string, len(pending))
	for i, p := range pending {
		parts[i] = p.Query.Key()
	}
	return strings.Join(parts, ",")
}

func TestSinkResumedRoundMismatchRejected(t *testing.T) {
	snap, wal := paths(t)
	opts := Options{Snapshot: snap, Journal: wal, LocalLen: 4}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.RoundSelected(pq(2, "a", "b"), w.res); err != nil {
		t.Fatal(err)
	}
	w.absorb(t, s, "a", 0)
	s.Close(nil)

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(nil)
	if err := s2.RoundSelected(pq(1, "z"), s2.Recovered().Result); err == nil ||
		!strings.Contains(err.Error(), "re-selects") {
		t.Errorf("wrong replay query: got %v, want re-selects error", err)
	}
	if err := s2.RoundSelected(pq(1, "b", "x"), s2.Recovered().Result); err == nil ||
		!strings.Contains(err.Error(), "journal holds") {
		t.Errorf("oversized replay round: got %v, want overflow error", err)
	}
}

func TestSinkSnapshotOnlyMode(t *testing.T) {
	snap, _ := paths(t)
	s, err := Open(Options{Snapshot: snap, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.RoundSelected(pq(2, "a"), w.res); err != nil {
		t.Fatal(err)
	}
	w.absorb(t, s, "a", 0)
	if err := s.RoundCompleted(w.res); err != nil {
		t.Fatal(err)
	}
	if s.Compactions() != 1 {
		t.Fatalf("compactions=%d, want 1", s.Compactions())
	}
	res, _, err := loadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, res), canonical(t, w.res)) {
		t.Error("snapshot differs from live state")
	}
	if err := s.Close(w.res); err != nil {
		t.Fatal(err)
	}
	// No journal was ever created in snapshot-only mode.
	if _, err := os.Stat(filepath.Join(filepath.Dir(snap), "cp.wal")); !os.IsNotExist(err) {
		t.Errorf("snapshot-only mode created a journal: %v", err)
	}
}

func TestSinkCloseIsIdempotent(t *testing.T) {
	snap, wal := paths(t)
	s, err := Open(Options{Snapshot: snap, Journal: wal, LocalLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(4)
	if err := s.Close(w.res); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(w.res); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	snap, wal := paths(t)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"missing snapshot", Options{Journal: wal}, "Snapshot is required"},
		{"bad sync policy", Options{Snapshot: snap, Sync: "fsync-maybe"}, "unknown sync policy"},
		{"negative cadence", Options{Snapshot: snap, Every: -1}, "negative autosave"},
		{"journal without local size", Options{Snapshot: snap, Journal: wal}, "LocalLen is required"},
		{"bad crash spec", Options{Snapshot: snap, CrashPoint: "sometimes"}, "crash spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseCrashPoint(t *testing.T) {
	good := []string{"", "step:3", "step:3:torn:17", "round:2", "compact:1", "begin:1",
		"requeue:2", "forfeit:1", "budget_stop:1", "step:1:torn:0"}
	for _, spec := range good {
		if _, err := ParseCrashPoint(spec); err != nil {
			t.Errorf("ParseCrashPoint(%q) = %v, want ok", spec, err)
		}
	}
	bad := []string{"step", "step:0", "step:x", "nap:1", "step:1:torn", "step:1:bent:3",
		"step:1:torn:-1", "step:1:torn:x", "a:b:c:d:e"}
	for _, spec := range bad {
		if _, err := ParseCrashPoint(spec); err == nil {
			t.Errorf("ParseCrashPoint(%q) succeeded, want error", spec)
		}
	}
}
