package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// Recovered is the outcome of Recover: the crawl state rebuilt from the
// snapshot plus the journal records appended after it.
type Recovered struct {
	// Result is the recovered crawl state, nil when neither a snapshot
	// nor any journal state exists (a fresh start).
	Result *crawler.Result
	// Pending is the unresolved tail of the last journaled selection
	// round: queries the dead session had charged-or-in-flight intent
	// for. A resumed run re-issues them first, with the original
	// benefits, via SmartConfig.ResumePending.
	Pending []crawler.PendingQuery
	// SnapshotLoaded reports whether a snapshot file contributed state;
	// SnapshotSeq is the journal sequence it was current through.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	// JournalRecords counts records replayed on top of the snapshot
	// (records the snapshot already covered are skipped, not counted).
	JournalRecords int
	// LastSeq is the highest journal sequence number seen — the point a
	// new journal continues from.
	LastSeq uint64
	// TornTail reports that the journal ended in a partial or checksum-
	// failing record, which recovery discarded. Expected after a crash
	// mid-append; at most one record (the one being written) is lost.
	TornTail bool
	// Charged is the cumulative quota charge per the last journal record
	// (refunds netted out), falling back to the snapshot's QueriesIssued.
	// A resumed session's remaining budget is quota − Charged.
	Charged int
	// LocalLen is the local database size the recovered state is bound
	// to, from the snapshot or the journal's begin record.
	LocalLen int
}

// Recover rebuilds crawl state read-only: load the snapshot (if any),
// verify its checksum, then replay every intact journal record with a
// sequence number the snapshot does not already cover, validating each
// against the accounting counters it carries. localLen pins the expected
// local database size; 0 accepts whatever the files say (used by the
// inspect tool, which has no database at hand).
//
// Recover never modifies the files — crashing during recovery is safe,
// and the inspect path shares it.
func Recover(snapshotPath, journalPath string, localLen int) (*Recovered, error) {
	rec := &Recovered{LocalLen: localLen}
	var res *crawler.Result
	if snapshotPath != "" {
		data, err := os.ReadFile(snapshotPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// no snapshot yet: a first session, or a crash before the
			// first compaction — the journal alone carries the state.
		case err != nil:
			return nil, fmt.Errorf("durable: reading snapshot: %w", err)
		default:
			res, rec.SnapshotSeq, err = crawler.LoadResultSeq(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("durable: snapshot %s: %w", snapshotPath, err)
			}
			if localLen > 0 && len(res.Covered) != localLen {
				return nil, fmt.Errorf("durable: snapshot covers %d records, local database has %d",
					len(res.Covered), localLen)
			}
			rec.SnapshotLoaded = true
			rec.LastSeq = rec.SnapshotSeq
			rec.LocalLen = len(res.Covered)
			// Settled charges: one per absorbed step, plus the failed
			// attempts the interface billed (requeues and forfeits minus
			// the refunded ones). Budget-stopped queries were never
			// charged and in-flight charges are not settled — a resumed
			// session re-issues and re-charges those.
			rec.Charged = res.QueriesIssued
			if rep := res.Resilience; rep != nil {
				rec.Charged += rep.Requeued + rep.Forfeited - rep.Refunded
			}
		}
	}
	if journalPath != "" {
		recs, torn, err := readJournalFile(journalPath)
		if err != nil {
			return nil, err
		}
		rec.TornTail = torn
		if err := rec.replay(recs, &res); err != nil {
			return nil, fmt.Errorf("durable: journal %s: %w", journalPath, err)
		}
	}
	rec.Result = res
	return rec, nil
}

// replay applies journal records newer than the snapshot to *res,
// cross-checking every record's accounting fields. It tracks the open
// selection round so the unresolved tail lands in rec.Pending.
func (rec *Recovered) replay(recs []Record, res **crawler.Result) error {
	var pending []crawler.PendingQuery
	for i, r := range recs {
		if r.Seq <= rec.SnapshotSeq {
			// The snapshot already folds this record in — the leftover of
			// a compaction that crashed between snapshot rename and
			// journal reset.
			continue
		}
		rec.LastSeq = r.Seq
		switch r.Kind {
		case KindBegin:
			if rec.LocalLen == 0 {
				rec.LocalLen = r.LocalLen
			} else if r.LocalLen != rec.LocalLen {
				return fmt.Errorf("record %d: begin pins local size %d, expected %d", i, r.LocalLen, rec.LocalLen)
			}
			if *res == nil {
				if r.LocalLen <= 0 {
					return fmt.Errorf("record %d: begin without a local size", i)
				}
				if r.QueriesIssued != 0 || r.CoveredCount != 0 {
					return fmt.Errorf("record %d: journal begins at %d issued queries / %d covered — its base snapshot is required",
						i, r.QueriesIssued, r.CoveredCount)
				}
				*res = &crawler.Result{
					Covered: make([]bool, r.LocalLen),
					Matches: make(map[int]*relational.Record),
					Crawled: make(map[int]*relational.Record),
				}
			}
		case KindRound:
			if len(pending) > 0 {
				return fmt.Errorf("record %d: round opened with %d entries of the previous round unresolved", i, len(pending))
			}
			for _, p := range r.Round {
				if p.Iface != r.Iface {
					return fmt.Errorf("record %d: round tagged interface %d selects %q on interface %d — rounds are interface-homogeneous",
						i, r.Iface, p.Query, p.Iface)
				}
			}
			pending = append([]crawler.PendingQuery(nil), r.Round...)
		case KindStep:
			if *res == nil {
				return fmt.Errorf("record %d: step before any begin record or snapshot", i)
			}
			if r.Step == nil {
				return fmt.Errorf("record %d: step record without a step payload", i)
			}
			var err error
			pending, err = consumePending(pending, deepweb.Query(r.Step.Query).Key())
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			if err := applyStep(*res, r.Step); err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
		case KindRequeue, KindForfeit, KindBudgetStop:
			if *res == nil {
				return fmt.Errorf("record %d: %s before any begin record or snapshot", i, r.Kind)
			}
			var err error
			pending, err = consumePending(pending, r.Query)
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
		default:
			return fmt.Errorf("record %d: unknown kind %q", i, r.Kind)
		}
		if *res != nil {
			if r.QueriesIssued != (*res).QueriesIssued || r.CoveredCount != (*res).CoveredCount {
				return fmt.Errorf("record %d (%s): accounting drift — record says %d issued/%d covered, replay has %d/%d",
					i, r.Kind, r.QueriesIssued, r.CoveredCount, (*res).QueriesIssued, (*res).CoveredCount)
			}
			if r.Resilience != nil {
				c := *r.Resilience
				c.ForfeitedQueries = append([]string(nil), r.Resilience.ForfeitedQueries...)
				(*res).Resilience = &c
			}
		}
		// The settled-charge counter moves by exactly the event's own
		// charge: +1 per absorbed step, +1 or +0 for a billed-or-refunded
		// failure, +0 otherwise.
		switch r.Kind {
		case KindStep:
			if r.Charged != rec.Charged+1 {
				return fmt.Errorf("record %d (step): settled charge %d, expected %d", i, r.Charged, rec.Charged+1)
			}
		case KindRequeue, KindForfeit:
			if r.Charged != rec.Charged && r.Charged != rec.Charged+1 {
				return fmt.Errorf("record %d (%s): settled charge %d, expected %d or %d",
					i, r.Kind, r.Charged, rec.Charged, rec.Charged+1)
			}
		default:
			if r.Charged != rec.Charged {
				return fmt.Errorf("record %d (%s): settled charge %d, expected %d", i, r.Kind, r.Charged, rec.Charged)
			}
		}
		rec.Charged = r.Charged
		rec.JournalRecords++
	}
	rec.Pending = pending
	return nil
}

// consumePending resolves the head of the open round against the query a
// record names. The merge stage handles outcomes strictly in selection
// order, except that a graceful shutdown may skip (and so never journal)
// queries that were never issued — those stay pending, so matching scans
// forward past them instead of insisting on the head.
func consumePending(pending []crawler.PendingQuery, key string) ([]crawler.PendingQuery, error) {
	for i, p := range pending {
		if p.Query.Key() == key {
			return append(pending[:i:i], pending[i+1:]...), nil
		}
	}
	return nil, fmt.Errorf("journal resolves %q, which no open round selected", key)
}

// applyStep replays one absorbed query into res, enforcing the step's own
// arithmetic so a fabricated or spliced record fails loudly instead of
// poisoning the resumed crawl.
func applyStep(res *crawler.Result, sr *StepRecord) error {
	if sr.NewlyCovered != len(sr.NewMatches) {
		return fmt.Errorf("step %q claims %d newly covered but carries %d matches",
			deepweb.Query(sr.Query), sr.NewlyCovered, len(sr.NewMatches))
	}
	newHidden := make([]int, 0, len(sr.NewRecords))
	for _, wr := range sr.NewRecords {
		if _, dup := res.Crawled[wr.ID]; dup {
			return fmt.Errorf("step %q re-crawls hidden record %d", deepweb.Query(sr.Query), wr.ID)
		}
		res.Crawled[wr.ID] = &relational.Record{ID: wr.ID, Values: wr.Values}
		newHidden = append(newHidden, wr.ID)
	}
	for _, p := range sr.NewMatches {
		if p.Local < 0 || p.Local >= len(res.Covered) {
			return fmt.Errorf("step %q covers local record %d outside [0,%d)",
				deepweb.Query(sr.Query), p.Local, len(res.Covered))
		}
		if res.Covered[p.Local] {
			return fmt.Errorf("step %q re-covers local record %d", deepweb.Query(sr.Query), p.Local)
		}
		h, ok := res.Crawled[p.Hidden]
		if !ok {
			return fmt.Errorf("step %q matches uncrawled hidden record %d", deepweb.Query(sr.Query), p.Hidden)
		}
		res.Covered[p.Local] = true
		res.CoveredCount++
		res.Matches[p.Local] = h
	}
	if sr.CumulativeCovered != res.CoveredCount {
		return fmt.Errorf("step %q cumulative coverage %d, replay has %d",
			deepweb.Query(sr.Query), sr.CumulativeCovered, res.CoveredCount)
	}
	res.QueriesIssued++
	if len(newHidden) == 0 {
		newHidden = nil
	}
	res.Steps = append(res.Steps, crawler.Step{
		Query:             deepweb.Query(sr.Query),
		EstimatedBenefit:  sr.EstimatedBenefit,
		NewlyCovered:      sr.NewlyCovered,
		CumulativeCovered: sr.CumulativeCovered,
		ResultSize:        sr.ResultSize,
		NewHidden:         newHidden,
		Iface:             sr.Iface,
	})
	return nil
}
