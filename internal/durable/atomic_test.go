package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicCreatesAndOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	for _, content := range []string{"first version", "second, longer version"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Errorf("got %q, want %q", got, content)
		}
	}
}

// TestWriteFileAtomicFailureKeepsOldFile: a write callback that errors
// mid-way must leave the previous file byte-identical and no temp debris
// behind — the property that makes overwriting the only snapshot safe.
func TestWriteFileAtomicFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := os.WriteFile(path, []byte("precious state"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a snap") // partial write, then failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped callback error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious state" {
		t.Errorf("old file damaged: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("temp debris left behind: %v", names)
	}
}
