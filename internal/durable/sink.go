package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/obs"
)

// Fsync policies for the journal (Options.Sync). Durability against
// SIGKILL — the process dying — needs none of them: a completed write()
// lives in the page cache, which survives process death. fsync buys
// durability against the machine dying (power loss, kernel panic).
const (
	// SyncAlways fsyncs after every journal append: nothing ever lost,
	// one disk flush per charged query.
	SyncAlways = "always"
	// SyncRound fsyncs once per completed selection round — group
	// commit: a power cut loses at most the last round.
	SyncRound = "round"
	// SyncCompact (the default) fsyncs only at compaction, open, and
	// close: a power cut loses at most one autosave interval; a plain
	// crash still loses at most one record. This is what keeps journal
	// overhead under the 2% budget.
	SyncCompact = "compact"
)

// DefaultEvery is the default autosave cadence: journal→snapshot
// compaction every this many absorbed steps.
const DefaultEvery = 64

// Options configures Open.
type Options struct {
	// Snapshot is the checkpoint path — required; compaction folds the
	// journal into it atomically.
	Snapshot string
	// Journal is the WAL path; empty runs in snapshot-only mode
	// (periodic atomic snapshots, no per-step durability).
	Journal string
	// Every is the autosave cadence in absorbed steps (compaction happens
	// at the next round boundary); 0 compacts only at Close.
	Every int
	// Sync is the fsync policy; empty means SyncCompact.
	Sync string
	// LocalLen is the local database size, pinned into the journal and
	// validated against recovered state. Required when Journal is set.
	LocalLen int
	// Obs, when non-nil, observes journal appends, fsync latency, and
	// checkpoint writes.
	Obs *obs.Obs
	// CrashPoint is a crash-injection spec (see ParseCrashPoint); the
	// smartcrawl binary wires it to the SMARTCRAWL_CRASH_AT variable.
	// Empty disables injection.
	CrashPoint string
}

// Sink is the durability implementation of crawler.DurabilitySink: it
// journals every accounting-affecting merge event, compacts the journal
// into an atomic snapshot every Options.Every steps, and carries the
// recovered state of the previous session. All methods run on the crawl
// goroutine; Sink is not safe for concurrent use and does not need to be.
type Sink struct {
	opts Options
	f    *os.File // journal; nil in snapshot-only mode
	rec  *Recovered
	// seq is the last journal sequence number used; settled is the
	// cumulative charge per the last record (see Record.Charged).
	seq     uint64
	settled int
	// pendingIntent mirrors the recovered round intent still open in the
	// journal: RoundSelected calls replaying it are matched and not
	// re-journaled, and every journal reset re-writes what remains, so
	// the intent survives even a crash-recover-crash sequence.
	pendingIntent []crawler.PendingQuery
	// openIface is the interface the currently open round was allocated to
	// (rounds are interface-homogeneous); resolution records inherit it.
	// Always 0 in single-interface crawls.
	openIface    int
	counts       map[string]int // records appended by kind (crash matching)
	compacts     int
	sinceCompact int
	closed       bool
	crash        crashPoint
}

// Open recovers prior state from Options.Snapshot + Options.Journal and
// returns a live sink: the journal is compacted into the snapshot and
// reset (discarding any torn tail exactly once), ready to append. The
// recovered state — including the pending round for
// SmartConfig.ResumePending — is available from Recovered().
func Open(opts Options) (*Sink, error) {
	if opts.Snapshot == "" {
		return nil, errors.New("durable: Options.Snapshot is required")
	}
	switch opts.Sync {
	case "":
		opts.Sync = SyncCompact
	case SyncAlways, SyncRound, SyncCompact:
	default:
		return nil, fmt.Errorf("durable: unknown sync policy %q (want %s, %s, or %s)",
			opts.Sync, SyncAlways, SyncRound, SyncCompact)
	}
	if opts.Every < 0 {
		return nil, fmt.Errorf("durable: negative autosave cadence %d", opts.Every)
	}
	if opts.Journal != "" && opts.LocalLen <= 0 {
		return nil, errors.New("durable: Options.LocalLen is required with a journal")
	}
	crash, err := ParseCrashPoint(opts.CrashPoint)
	if err != nil {
		return nil, err
	}
	rec, err := Recover(opts.Snapshot, opts.Journal, opts.LocalLen)
	if err != nil {
		return nil, err
	}
	s := &Sink{
		opts:          opts,
		rec:           rec,
		seq:           rec.LastSeq,
		settled:       rec.Charged,
		pendingIntent: append([]crawler.PendingQuery(nil), rec.Pending...),
		counts:        make(map[string]int),
		crash:         crash,
	}
	if len(rec.Pending) > 0 {
		s.openIface = rec.Pending[0].Iface
	}
	if opts.Journal != "" {
		f, err := os.OpenFile(opts.Journal, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: opening journal: %w", err)
		}
		s.f = f
		// Compact on open: fold the replayed journal into the snapshot,
		// then reset the journal — the torn tail (if any) is discarded
		// here, exactly once, with its intact prefix made durable first.
		if rec.Result != nil && rec.JournalRecords > 0 {
			if err := s.writeSnapshot(rec.Result); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := s.resetJournal(rec.Result); err != nil {
			f.Close()
			return nil, err
		}
		if err := s.fsync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Recovered returns the state recovered at Open time.
func (s *Sink) Recovered() *Recovered { return s.rec }

// Compactions returns how many journal→snapshot compactions have run.
func (s *Sink) Compactions() int { return s.compacts }

// RoundSelected implements crawler.DurabilitySink: the write-ahead intent
// record, appended before the round is dispatched.
func (s *Sink) RoundSelected(sel []crawler.PendingQuery, res *crawler.Result) error {
	if len(s.pendingIntent) > 0 {
		// The crawl is replaying the recovered round: its intent record
		// is already in the journal (re-written at every reset), so
		// journaling it again would open a second round over the same
		// queries. Verify the replay really is the journaled intent.
		if len(sel) > len(s.pendingIntent) {
			return fmt.Errorf("durable: resumed round selects %d queries, journal holds %d pending",
				len(sel), len(s.pendingIntent))
		}
		for i, p := range sel {
			if p.Query.Key() != s.pendingIntent[i].Query.Key() {
				return fmt.Errorf("durable: resumed round re-selects %q where the journal expects %q",
					p.Query, s.pendingIntent[i].Query)
			}
			if p.Iface != s.pendingIntent[i].Iface {
				return fmt.Errorf("durable: resumed round re-selects %q on interface %d where the journal expects interface %d",
					p.Query, p.Iface, s.pendingIntent[i].Iface)
			}
		}
		if len(sel) > 0 {
			s.openIface = sel[0].Iface
		}
		s.pendingIntent = s.pendingIntent[len(sel):]
		return nil
	}
	if len(sel) > 0 {
		s.openIface = sel[0].Iface
	}
	if s.f == nil {
		return nil
	}
	rec := s.newRecord(KindRound, res)
	rec.Iface = s.openIface
	rec.Round = append([]crawler.PendingQuery(nil), sel...)
	if err := s.append(rec); err != nil {
		return err
	}
	if s.opts.Sync == SyncAlways {
		return s.fsync()
	}
	return nil
}

// StepAbsorbed implements crawler.DurabilitySink: the record that makes
// an absorbed (charged) query durable.
func (s *Sink) StepAbsorbed(res *crawler.Result, step crawler.Step, newlyCovered []int) error {
	s.settled++
	s.sinceCompact++
	if s.f == nil {
		return nil
	}
	rec := s.newRecord(KindStep, res)
	rec.Iface = step.Iface
	rec.Step = buildStepRecord(res, step, newlyCovered)
	if err := s.append(rec); err != nil {
		return err
	}
	if s.opts.Sync == SyncAlways {
		return s.fsync()
	}
	return nil
}

// QueryRequeued implements crawler.DurabilitySink. charged reports
// whether the interface billed the failed attempt (deepweb.Charged).
func (s *Sink) QueryRequeued(q deepweb.Query, attempt int, charged bool, res *crawler.Result) error {
	return s.resolution(KindRequeue, q, attempt, charged, res)
}

// QueryForfeited implements crawler.DurabilitySink.
func (s *Sink) QueryForfeited(q deepweb.Query, attempts int, charged bool, res *crawler.Result) error {
	return s.resolution(KindForfeit, q, attempts, charged, res)
}

// BudgetStopped implements crawler.DurabilitySink: selected, never
// executed, never charged.
func (s *Sink) BudgetStopped(q deepweb.Query, res *crawler.Result) error {
	return s.resolution(KindBudgetStop, q, 0, false, res)
}

func (s *Sink) resolution(kind string, q deepweb.Query, attempt int, charged bool, res *crawler.Result) error {
	if charged {
		s.settled++
	}
	if s.f == nil {
		return nil
	}
	rec := s.newRecord(kind, res)
	rec.Iface = s.openIface
	rec.Query = q.Key()
	rec.Attempt = attempt
	if err := s.append(rec); err != nil {
		return err
	}
	if s.opts.Sync == SyncAlways {
		return s.fsync()
	}
	return nil
}

// RoundCompleted implements crawler.DurabilitySink: the group-commit and
// compaction point.
func (s *Sink) RoundCompleted(res *crawler.Result) error {
	if s.f != nil && s.opts.Sync == SyncRound {
		if err := s.fsync(); err != nil {
			return err
		}
	}
	if s.opts.Every > 0 && s.sinceCompact >= s.opts.Every {
		return s.compact(res)
	}
	return nil
}

// Compact folds the crawl state into an atomic snapshot and resets the
// journal. Exposed for tests; the crawl triggers it via RoundCompleted
// and Close.
func (s *Sink) Compact(res *crawler.Result) error { return s.compact(res) }

func (s *Sink) compact(res *crawler.Result) error {
	if err := s.writeSnapshot(res); err != nil {
		return err
	}
	s.compacts++
	if s.crash.active("compact", 0, s.compacts) {
		// The nastiest window: snapshot renamed, journal not yet reset.
		// Recovery handles it by skipping records the snapshot's
		// sequence number already covers.
		die()
	}
	s.sinceCompact = 0
	if s.f == nil {
		return nil
	}
	if err := s.resetJournal(res); err != nil {
		return err
	}
	return s.fsync()
}

// Close compacts the final state (when res is non-nil) and closes the
// journal. A nil res — the crawl failed — leaves the journal untouched
// on disk: it still holds the progress a later recovery can replay.
func (s *Sink) Close(res *crawler.Result) error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if res != nil {
		first = s.compact(res)
	}
	if s.f != nil {
		// A successful compact already fsynced the reset journal; an
		// extra flush here would be a no-op syscall. Sync only when the
		// journal still holds unflushed progress (failed crawl, or the
		// compact itself broke partway).
		if res == nil || first != nil {
			if err := s.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("durable: syncing journal: %w", err)
			}
		}
		if err := s.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("durable: closing journal: %w", err)
		}
	}
	return first
}

// writeSnapshot persists res atomically, stamped with the current journal
// sequence number.
func (s *Sink) writeSnapshot(res *crawler.Result) error {
	err := WriteFileAtomic(s.opts.Snapshot, func(w io.Writer) error {
		return crawler.SaveResultSeq(w, res, s.seq)
	})
	if err != nil {
		return err
	}
	s.opts.Obs.Checkpoint(s.opts.Snapshot, res.CoveredCount, res.QueriesIssued)
	return nil
}

// resetJournal truncates the journal and re-seeds it: magic, a begin
// record pinning the base state, and — when a recovered round is still
// being replayed — the remaining intent, so not even a crash right after
// recovery loses what the dead session had in flight.
func (s *Sink) resetJournal(res *crawler.Result) error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncating journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: rewinding journal: %w", err)
	}
	if _, err := s.f.Write([]byte(journalMagic)); err != nil {
		return fmt.Errorf("durable: writing journal magic: %w", err)
	}
	begin := s.newRecord(KindBegin, res)
	begin.LocalLen = s.opts.LocalLen
	if err := s.append(begin); err != nil {
		return err
	}
	if len(s.pendingIntent) > 0 {
		round := s.newRecord(KindRound, res)
		round.Iface = s.pendingIntent[0].Iface
		round.Round = append([]crawler.PendingQuery(nil), s.pendingIntent...)
		if err := s.append(round); err != nil {
			return err
		}
	}
	return nil
}

// newRecord stamps the next sequence number and the accounting state.
func (s *Sink) newRecord(kind string, res *crawler.Result) *Record {
	s.seq++
	rec := &Record{Seq: s.seq, Kind: kind, Charged: s.settled}
	if res != nil {
		rec.QueriesIssued = res.QueriesIssued
		rec.CoveredCount = res.CoveredCount
		if rep := res.Resilience; rep != nil {
			c := *rep
			c.ForfeitedQueries = append([]string(nil), rep.ForfeitedQueries...)
			rec.Resilience = &c
		}
	}
	return rec
}

// append frames and writes one record, honoring an active crash point —
// including the torn variant, which writes only a prefix of the record
// before killing the process, simulating a crash mid-write.
func (s *Sink) append(rec *Record) error {
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	// Crash points count globally per kind, or per (kind, interface) when
	// the spec is interface-tagged — "step@1:2" means the 2nd step record
	// of interface 1, however many other interfaces stepped in between.
	key := rec.Kind
	if s.crash.iface >= 0 {
		key = fmt.Sprintf("%s@%d", rec.Kind, rec.Iface)
	}
	s.counts[key]++
	crash := s.crash.active(rec.Kind, rec.Iface, s.counts[key])
	if crash && s.crash.torn >= 0 && s.crash.torn < len(buf) {
		s.f.Write(buf[:s.crash.torn])
		die()
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("durable: appending journal record: %w", err)
	}
	s.opts.Obs.WalAppend(rec.Kind, rec.Seq, len(buf))
	if crash {
		die()
	}
	return nil
}

// fsync flushes the journal, timing it into the obs sink.
func (s *Sink) fsync() error {
	if s.f == nil {
		return nil
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("durable: journal fsync: %w", err)
	}
	s.opts.Obs.WalFsynced(time.Since(start))
	return nil
}

// buildStepRecord derives the journal payload of one absorbed step from
// the just-updated Result: the new hidden records in first-crawled order
// and the newly covered match pairs in coverage order.
func buildStepRecord(res *crawler.Result, step crawler.Step, newlyCovered []int) *StepRecord {
	sr := &StepRecord{
		Query:             step.Query,
		EstimatedBenefit:  step.EstimatedBenefit,
		NewlyCovered:      step.NewlyCovered,
		CumulativeCovered: step.CumulativeCovered,
		ResultSize:        step.ResultSize,
		Iface:             step.Iface,
	}
	for _, id := range step.NewHidden {
		if h := res.Crawled[id]; h != nil {
			sr.NewRecords = append(sr.NewRecords, WireRecord{ID: id, Values: h.Values})
		}
	}
	for _, d := range newlyCovered {
		if h := res.Matches[d]; h != nil {
			sr.NewMatches = append(sr.NewMatches, WirePair{Local: d, Hidden: h.ID})
		}
	}
	return sr
}
