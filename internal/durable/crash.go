package durable

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// CrashEnv is the environment variable the smartcrawl binary reads a
// crash-injection spec from (see ParseCrashPoint). It exists so the
// crashtest harness can SIGKILL the process at an exact, deterministic
// point in the durability path — including halfway through a journal
// append — without any test code in the production binary beyond this
// hook.
const CrashEnv = "SMARTCRAWL_CRASH_AT"

// crashPoint is a parsed crash-injection spec.
type crashPoint struct {
	kind  string // record kind, or "compact"
	iface int    // interface index the kind must be tagged with; -1 = any
	n     int    // 1-based occurrence of that kind to crash at
	torn  int    // bytes of the record to write before dying; -1 = all
}

// ParseCrashPoint parses a crash-injection spec:
//
//	step:3            die (SIGKILL self) right after the 3rd step record is appended
//	step:3:torn:17    write only the first 17 bytes of the 3rd step record, then die
//	round:2           die after the 2nd round-intent record
//	round:2:torn:5    tear the 2nd round record after 5 bytes
//	step@1:2          die after the 2nd step record tagged interface 1 of a
//	                  federated crawl (counts only records of that interface)
//	compact:1         die after the 1st compaction renamed its snapshot,
//	                  before the journal is reset — the nastiest window
//
// The first component may be any journal record kind or "compact",
// optionally suffixed @iface to count only records of one interface of a
// federated crawl. Compaction is global, so "compact" rejects an @iface
// tag. An empty spec disables injection.
func ParseCrashPoint(spec string) (crashPoint, error) {
	if spec == "" {
		return crashPoint{iface: -1, torn: -1}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 2 && len(parts) != 4 {
		return crashPoint{}, fmt.Errorf("durable: crash spec %q: want kind:n or kind:n:torn:bytes", spec)
	}
	cp := crashPoint{kind: parts[0], iface: -1, torn: -1}
	if at := strings.IndexByte(cp.kind, '@'); at >= 0 {
		idx, err := strconv.Atoi(cp.kind[at+1:])
		if err != nil || idx < 0 {
			return crashPoint{}, fmt.Errorf("durable: crash spec %q: bad interface index %q", spec, cp.kind[at+1:])
		}
		cp.kind, cp.iface = cp.kind[:at], idx
	}
	switch cp.kind {
	case KindBegin, KindRound, KindStep, KindRequeue, KindForfeit, KindBudgetStop:
	case "compact":
		if cp.iface >= 0 {
			return crashPoint{}, fmt.Errorf("durable: crash spec %q: compaction is global, not per-interface", spec)
		}
	default:
		return crashPoint{}, fmt.Errorf("durable: crash spec %q: unknown kind %q", spec, cp.kind)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return crashPoint{}, fmt.Errorf("durable: crash spec %q: bad occurrence %q", spec, parts[1])
	}
	cp.n = n
	if len(parts) == 4 {
		if parts[2] != "torn" {
			return crashPoint{}, fmt.Errorf("durable: crash spec %q: want kind:n:torn:bytes", spec)
		}
		b, err := strconv.Atoi(parts[3])
		if err != nil || b < 0 {
			return crashPoint{}, fmt.Errorf("durable: crash spec %q: bad torn byte count %q", spec, parts[3])
		}
		cp.torn = b
	}
	return cp, nil
}

// active reports whether this spec fires for the count-th record of kind.
// iface is the record's interface tag; count must be the per-interface
// occurrence count when the spec is interface-tagged (the sink keys its
// counters to match — see Sink.append) and the global count otherwise.
func (cp crashPoint) active(kind string, iface, count int) bool {
	return cp.kind == kind && (cp.iface < 0 || cp.iface == iface) && cp.n == count
}

// die SIGKILLs the current process — the real thing, not an exit: no
// deferred functions, no file closing, no flushing, exactly what an OOM
// kill or power-cut-with-surviving-page-cache looks like to the next
// process.
func die() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; belt and braces if the signal is slow
}
