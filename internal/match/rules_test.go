package match

import (
	"reflect"
	"testing"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

func biz(id int, name, city string) *relational.Record {
	return &relational.Record{ID: id, Values: []string{name, city}}
}

func TestAndOrNot(t *testing.T) {
	tk := tokenize.New()
	nameFuzzy := NewJaccardOn(tk, 0.5, []int{0}, []int{0})
	cityExact := NewExactOn(tk, []int{1}, []int{1})

	d := biz(0, "Thai Noodle House", "Phoenix")
	sameCity := biz(1, "Thai Noodle House Grand", "Phoenix")
	otherCity := biz(2, "Thai Noodle House", "Tempe")
	unrelated := biz(3, "Steak Palace", "Phoenix")

	and := And(nameFuzzy, cityExact)
	if !and.Match(d, sameCity) {
		t.Error("And should match fuzzy name + same city")
	}
	if and.Match(d, otherCity) {
		t.Error("And should reject different city")
	}
	if and.Match(d, unrelated) {
		t.Error("And should reject different name")
	}

	or := Or(nameFuzzy, cityExact)
	if !or.Match(d, otherCity) || !or.Match(d, unrelated) {
		t.Error("Or should match on either predicate")
	}
	if or.Match(d, biz(4, "Pizza Place", "Tucson")) {
		t.Error("Or should reject when neither matches")
	}

	not := Not(cityExact)
	if not.Match(d, sameCity) || !not.Match(d, otherCity) {
		t.Error("Not should invert")
	}
}

func TestSingleComponentCollapse(t *testing.T) {
	tk := tokenize.New()
	m := NewExact(tk)
	if And(m) != m || Or(m) != m {
		t.Error("single-component And/Or should collapse to the component")
	}
}

func TestFuncMatcher(t *testing.T) {
	f := FuncMatcher(func(d, h *relational.Record) bool { return d.ID == h.ID })
	if !f.Match(biz(5, "", ""), biz(5, "", "")) || f.Match(biz(5, "", ""), biz(6, "", "")) {
		t.Error("FuncMatcher predicate not applied")
	}
}

func TestBlockedAndMatch(t *testing.T) {
	tk := tokenize.New()
	m := NewBlockedAnd(
		NewJaccardOn(tk, 0.5, []int{0}, []int{0}),
		NewExactOn(tk, []int{1}, []int{1}),
	)
	d := biz(0, "Thai Noodle House", "Phoenix")
	if !m.Match(d, biz(1, "Thai Noodle House Grand", "Phoenix")) {
		t.Error("blocked-and should match")
	}
	if m.Match(d, biz(2, "Thai Noodle House Grand", "Tempe")) {
		t.Error("verification should reject different city")
	}
}

// TestJoinerBlockedAnd checks the Joiner indexes the block and verifies
// candidates, agreeing with a brute-force scan.
func TestJoinerBlockedAnd(t *testing.T) {
	tk := tokenize.New()
	locals := []*relational.Record{
		biz(0, "Thai Noodle House", "Phoenix"),
		biz(1, "Thai Noodle Palace", "Phoenix"),
		biz(2, "Thai Noodle House", "Tempe"),
		biz(3, "Steak House", "Phoenix"),
	}
	m := NewBlockedAnd(
		NewJaccardOn(tk, 0.5, []int{0}, []int{0}),
		NewExactOn(tk, []int{1}, []int{1}),
	)
	j := NewJoiner(locals, tk, m)

	probes := []*relational.Record{
		biz(10, "Thai Noodle House Grand", "Phoenix"),
		biz(11, "Thai Noodle House", "Tempe"),
		biz(12, "Steak House", "Tucson"),
	}
	for _, probe := range probes {
		var want []int
		for i, d := range locals {
			if m.Match(d, probe) {
				want = append(want, i)
			}
		}
		got := j.Matches(probe)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("probe %v: got %v want %v", probe, got, want)
		}
	}
}
