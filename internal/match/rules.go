package match

import "smartcrawl/internal/relational"

// Rule combinators compose attribute-wise matchers into the kind of
// entity-resolution predicates practical systems use — e.g. "name Jaccard
// ≥ 0.8 AND city exactly equal". Each component matcher typically uses
// column projections (NewExactOn / NewJaccardOn), and the combinators are
// themselves Matchers, so they plug into the crawl loop's black box
// unchanged. The Joiner cannot index arbitrary combinations, so composed
// matchers fall back to its full-scan path; keep local databases indexed
// through a projected Exact/Jaccard matcher when probe cost matters, or
// use FirstIndexable below.
type andMatcher struct{ parts []Matcher }

// And matches when every component matches.
func And(parts ...Matcher) Matcher {
	if len(parts) == 1 {
		return parts[0]
	}
	return andMatcher{parts: parts}
}

// Match implements Matcher.
func (m andMatcher) Match(d, h *relational.Record) bool {
	for _, p := range m.parts {
		if !p.Match(d, h) {
			return false
		}
	}
	return true
}

type orMatcher struct{ parts []Matcher }

// Or matches when any component matches.
func Or(parts ...Matcher) Matcher {
	if len(parts) == 1 {
		return parts[0]
	}
	return orMatcher{parts: parts}
}

// Match implements Matcher.
func (m orMatcher) Match(d, h *relational.Record) bool {
	for _, p := range m.parts {
		if p.Match(d, h) {
			return true
		}
	}
	return false
}

type notMatcher struct{ inner Matcher }

// Not inverts a matcher — useful for exclusion rules ("same name but NOT
// the same city" in dedup pipelines).
func Not(inner Matcher) Matcher { return notMatcher{inner: inner} }

// Match implements Matcher.
func (m notMatcher) Match(d, h *relational.Record) bool {
	return !m.inner.Match(d, h)
}

// FuncMatcher adapts a plain predicate.
type FuncMatcher func(d, h *relational.Record) bool

// Match implements Matcher.
func (f FuncMatcher) Match(d, h *relational.Record) bool { return f(d, h) }

// BlockedAnd is And with an indexable first component: the Joiner indexes
// the block (an *Exact or *Jaccard matcher) and the remaining predicates
// verify each block candidate — the classic blocking-then-verification ER
// pipeline (Christen [16]). The Joiner type-switches on *BlockedAnd.
type BlockedAnd struct {
	// Block is the indexable candidate generator (must be *Exact or
	// *Jaccard for the Joiner to index it; any Matcher works for plain
	// Match calls).
	Block Matcher
	// Verify are the additional predicates every candidate must pass.
	Verify []Matcher
}

// NewBlockedAnd builds a blocking-verification matcher.
func NewBlockedAnd(block Matcher, verify ...Matcher) *BlockedAnd {
	return &BlockedAnd{Block: block, Verify: verify}
}

// Match implements Matcher.
func (m *BlockedAnd) Match(d, h *relational.Record) bool {
	if !m.Block.Match(d, h) {
		return false
	}
	for _, v := range m.Verify {
		if !v.Match(d, h) {
			return false
		}
	}
	return true
}
