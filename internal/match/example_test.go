package match_test

import (
	"fmt"

	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// ExampleJoiner shows the per-iteration similarity join: the local table is
// indexed once, then each hidden record from a query result is probed for
// the local records it covers.
func ExampleJoiner() {
	tk := tokenize.New()
	locals := []*relational.Record{
		{ID: 0, Values: []string{"Thai Noodle House"}},
		{ID: 1, Values: []string{"Steak House"}},
		{ID: 2, Values: []string{"Saigon Ramen"}},
	}
	j := match.NewJoiner(locals, tk, match.NewJaccard(tk, 0.6))

	probe := &relational.Record{ID: 100, Values: []string{"Thai Noodle House Grand"}}
	fmt.Println(j.Matches(probe))

	batch := []*relational.Record{
		probe,
		{ID: 101, Values: []string{"Steak House"}},
	}
	fmt.Println(j.CoveredBy(batch))
	// Output:
	// [0]
	// [0 1]
}

// ExampleAnd composes attribute-wise matchers into an ER rule.
func ExampleAnd() {
	tk := tokenize.New()
	rule := match.And(
		match.NewJaccardOn(tk, 0.5, []int{0}, []int{0}), // fuzzy name
		match.NewExactOn(tk, []int{1}, []int{1}),        // exact city
	)
	d := &relational.Record{ID: 0, Values: []string{"Thai Noodle House", "Phoenix"}}
	h := &relational.Record{ID: 1, Values: []string{"Thai Noodle House Grand", "Phoenix"}}
	fmt.Println(rule.Match(d, h))
	// Output:
	// true
}
