package match

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func rec(id int, doc string) *relational.Record {
	return &relational.Record{ID: id, Values: []string{doc}}
}

func TestExactMatcher(t *testing.T) {
	tk := tokenize.New()
	m := NewExact(tk)
	cases := []struct {
		a, b string
		want bool
	}{
		{"Thai House", "thai house", true},
		{"Thai House", "House Thai", true}, // token-set equality
		{"Thai House", "Thai House!", true},
		{"Thai House", "Thai Houses", false},
		{"Thai House", "Thai", false},
		{"", "", true},
	}
	for _, c := range cases {
		if got := m.Match(rec(0, c.a), rec(1, c.b)); got != c.want {
			t.Errorf("Exact(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardSim(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b", "c", "d"}, []string{"a", "b", "c"}, 0.75},
	}
	for _, c := range cases {
		if got := JaccardSim(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardMatcherThreshold(t *testing.T) {
	tk := tokenize.New()
	m := NewJaccard(tk, 0.75)
	// 3 shared of 4 union = 0.75: match.
	if !m.Match(rec(0, "alpha beta gamma delta"), rec(1, "alpha beta gamma")) {
		t.Fatal("0.75 similarity should match at threshold 0.75")
	}
	// 2 shared of 4 union = 0.5: no match.
	if m.Match(rec(0, "alpha beta gamma delta"), rec(1, "alpha beta")) {
		t.Fatal("0.5 similarity should not match")
	}
}

func TestNewJaccardPanicsOnBadThreshold(t *testing.T) {
	for _, th := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %v should panic", th)
				}
			}()
			NewJaccard(tokenize.New(), th)
		}()
	}
}

func TestSimilarityFunctions(t *testing.T) {
	a := []string{"w", "x", "y"}
	b := []string{"x", "y", "z", "q"}
	// overlap = 2
	if got := DiceSim(a, b); math.Abs(got-4.0/7) > 1e-12 {
		t.Errorf("Dice = %v", got)
	}
	if got := OverlapSim(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Overlap = %v", got)
	}
	if got := CosineSim(a, b); math.Abs(got-2/math.Sqrt(12)) > 1e-12 {
		t.Errorf("Cosine = %v", got)
	}
}

func TestSimilarityBoundsAndSymmetry(t *testing.T) {
	rng := stats.NewRNG(5)
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	randSet := func() []string {
		n := rng.Intn(5)
		seen := map[string]bool{}
		var out []string
		for i := 0; i < n; i++ {
			w := vocab[rng.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		return out
	}
	sims := []func(a, b []string) float64{JaccardSim, DiceSim, OverlapSim, CosineSim}
	for trial := 0; trial < 500; trial++ {
		a, b := randSet(), randSet()
		for i, f := range sims {
			ab, ba := f(a, b), f(b, a)
			if math.Abs(ab-ba) > 1e-12 {
				t.Fatalf("sim %d not symmetric on %v %v", i, a, b)
			}
			if ab < -1e-12 || ab > 1+1e-12 {
				t.Fatalf("sim %d out of [0,1]: %v", i, ab)
			}
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"rest", "restaurant", 6},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinerExact(t *testing.T) {
	tk := tokenize.New()
	locals := []*relational.Record{
		rec(0, "Thai House"),
		rec(1, "Steak House"),
		rec(2, "thai HOUSE"), // duplicate key of 0
	}
	j := NewJoiner(locals, tk, NewExact(tk))
	if got := j.Matches(rec(100, "Thai House")); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Matches = %v", got)
	}
	if got := j.Matches(rec(100, "Pizza Place")); got != nil {
		t.Fatalf("Matches = %v, want nil", got)
	}
	covered := j.CoveredBy([]*relational.Record{
		rec(100, "Steak House"),
		rec(101, "Thai House"),
		rec(102, "Steak House"), // dup in batch
	})
	if !reflect.DeepEqual(covered, []int{0, 1, 2}) {
		t.Fatalf("CoveredBy = %v", covered)
	}
}

// TestJoinerJaccardMatchesBruteForce is the key property test: the
// prefix-filtered join must return exactly the records a full scan returns.
func TestJoinerJaccardMatchesBruteForce(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(17)
	vocab := make([]string, 30)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	for _, threshold := range []float64{0.5, 0.75, 0.9, 1.0} {
		m := NewJaccard(tk, threshold)
		locals := make([]*relational.Record, 120)
		for i := range locals {
			n := 1 + rng.Intn(6)
			doc := ""
			for j := 0; j < n; j++ {
				doc += vocab[rng.Intn(len(vocab))] + " "
			}
			locals[i] = rec(i, doc)
		}
		j := NewJoiner(locals, tk, m)
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(6)
			doc := ""
			for w := 0; w < n; w++ {
				doc += vocab[rng.Intn(len(vocab))] + " "
			}
			probe := rec(1000+trial, doc)

			var want []int
			for i, d := range locals {
				if m.Match(d, probe) {
					want = append(want, i)
				}
			}
			sort.Ints(want)
			got := j.Matches(probe)
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("threshold %v probe %q: got %v want %v",
					threshold, doc, got, want)
			}
		}
	}
}

type nameMatcher struct{}

func (nameMatcher) Match(d, h *relational.Record) bool {
	return d.Value(0) == h.Value(0)
}

func TestJoinerBlackBoxFallback(t *testing.T) {
	tk := tokenize.New()
	locals := []*relational.Record{rec(0, "A"), rec(1, "B"), rec(2, "A")}
	j := NewJoiner(locals, tk, nameMatcher{})
	if got := j.Matches(rec(9, "A")); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Matches = %v", got)
	}
}

func BenchmarkJoinerJaccardProbe(b *testing.B) {
	tk := tokenize.New()
	rng := stats.NewRNG(3)
	zipf := stats.NewZipf(rng, 1.0, 3000)
	locals := make([]*relational.Record, 10000)
	for i := range locals {
		doc := ""
		for j := 0; j < 6; j++ {
			doc += fmt.Sprintf("w%d ", zipf.Draw())
		}
		locals[i] = rec(i, doc)
	}
	j := NewJoiner(locals, tk, NewJaccard(tk, 0.9))
	probe := locals[42].Clone()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Matches(probe)
	}
}
