// Package match is the entity-resolution layer the paper treats as a black
// box (§2) and extends in §6.1: deciding whether a local record and a
// hidden record refer to the same real-world entity. It provides an exact
// matcher (normalized-document equality, Assumption 3), a token-Jaccard
// matcher with a similarity threshold (the §6.1 fuzzy extension), several
// auxiliary similarity functions, and a prefix-filtered similarity join
// used by the crawl loop to compute q(D)_cover from a query result
// efficiently.
package match

import (
	"math"
	"strings"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Matcher decides whether a local and a hidden record refer to the same
// entity. Implementations must be symmetric in spirit but are always called
// as (local, hidden).
type Matcher interface {
	Match(d, h *relational.Record) bool
}

// Exact matches records whose normalized match documents are identical —
// the paper's Assumption 3 (no fuzzy matching). The match document is the
// full record by default, or a projection onto key columns when the two
// databases' schemas differ (e.g. the hidden side carries the enrichment
// attributes the local side lacks).
type Exact struct {
	tk *tokenize.Tokenizer
	// DCols / HCols select the local / hidden columns compared; nil
	// means all columns.
	DCols, HCols []int
}

// NewExact returns an exact matcher comparing entire documents.
func NewExact(tk *tokenize.Tokenizer) *Exact { return &Exact{tk: tk} }

// NewExactOn returns an exact matcher comparing the projection of local
// records onto dCols with the projection of hidden records onto hCols
// (nil = all columns).
func NewExactOn(tk *tokenize.Tokenizer, dCols, hCols []int) *Exact {
	return &Exact{tk: tk, DCols: dCols, HCols: hCols}
}

// Match reports whether the two records' normalized match documents are
// equal.
func (m *Exact) Match(d, h *relational.Record) bool {
	return KeyOn(d, m.tk, m.DCols) == KeyOn(h, m.tk, m.HCols)
}

// Key returns the normalized-document key of the whole record: sorted
// distinct tokens joined by spaces. Two records with equal keys are exact
// matches.
func Key(r *relational.Record, tk *tokenize.Tokenizer) string {
	return KeyOn(r, tk, nil)
}

// KeyOn is Key restricted to the given columns (nil = all).
func KeyOn(r *relational.Record, tk *tokenize.Tokenizer, cols []int) string {
	return strings.Join(tk.NormalizeQuery(projDoc(r, cols)), " ")
}

func projDoc(r *relational.Record, cols []int) string {
	if cols == nil {
		return r.Document()
	}
	vals := make([]string, len(cols))
	for i, c := range cols {
		vals[i] = r.Value(c)
	}
	return tokenize.Document(vals)
}

// projTokens returns the distinct tokens of the record's match document.
// With nil cols it reuses the record's cached token set.
func projTokens(r *relational.Record, tk *tokenize.Tokenizer, cols []int) []string {
	if cols == nil {
		return r.Tokens(tk)
	}
	return tk.Distinct(projDoc(r, cols))
}

// Jaccard matches records whose token-set Jaccard similarity meets a
// threshold — the §6.1 similarity-join predicate (paper example: 0.9).
// Like Exact, it can be restricted to key columns on either side.
type Jaccard struct {
	tk        *tokenize.Tokenizer
	Threshold float64
	// DCols / HCols select the local / hidden columns compared; nil
	// means all columns.
	DCols, HCols []int
}

// NewJaccard returns a Jaccard matcher over entire documents with the
// given threshold in (0, 1].
func NewJaccard(tk *tokenize.Tokenizer, threshold float64) *Jaccard {
	return NewJaccardOn(tk, threshold, nil, nil)
}

// NewJaccardOn returns a Jaccard matcher comparing column projections
// (nil = all columns).
func NewJaccardOn(tk *tokenize.Tokenizer, threshold float64, dCols, hCols []int) *Jaccard {
	if threshold <= 0 || threshold > 1 {
		panic("match: Jaccard threshold must be in (0, 1]")
	}
	return &Jaccard{tk: tk, Threshold: threshold, DCols: dCols, HCols: hCols}
}

// Match reports whether Jaccard(d, h) >= Threshold over match documents.
func (m *Jaccard) Match(d, h *relational.Record) bool {
	return JaccardSim(projTokens(d, m.tk, m.DCols), projTokens(h, m.tk, m.HCols)) >= m.Threshold
}

// JaccardSim computes |a∩b| / |a∪b| over distinct-token slices.
func JaccardSim(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := overlap(a, b)
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// DiceSim computes 2|a∩b| / (|a|+|b|).
func DiceSim(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return 2 * float64(overlap(a, b)) / float64(len(a)+len(b))
}

// OverlapSim computes |a∩b| / min(|a|, |b|).
func OverlapSim(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(overlap(a, b)) / float64(m)
}

// CosineSim computes |a∩b| / sqrt(|a|·|b|) over token sets.
func CosineSim(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(overlap(a, b)) / math.Sqrt(float64(len(a)*len(b)))
}

// overlap counts distinct common tokens between two distinct-token slices.
func overlap(a, b []string) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	set := make(map[string]struct{}, len(a))
	for _, w := range a {
		set[w] = struct{}{}
	}
	n := 0
	for _, w := range b {
		if _, ok := set[w]; ok {
			n++
		}
	}
	return n
}

// Levenshtein returns the edit distance between two strings (unit costs).
// Provided for candidate-key matching in the examples; O(len(a)·len(b)).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
