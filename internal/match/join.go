package match

import (
	"math"
	"sort"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Joiner answers "which local records does this hidden record match?" — the
// per-iteration similarity join of §6.1 that turns a query result q(H)_k
// into the covered set q(D)_cover. It is built once over the local database
// and probed with each returned hidden record (at most k per query), so
// probe cost dominates; three strategies are chosen by matcher type:
//
//   - Exact: hash join on the normalized-document key, O(1) per probe;
//   - Jaccard: prefix-filtered token join (the classic All-Pairs filter:
//     two sets with Jaccard ≥ τ must share a token within each other's
//     first |x| − ⌈τ·|x|⌉ + 1 tokens under a global token order), then
//     threshold verification;
//   - any other Matcher: full scan (correct for arbitrary black boxes).
//
// Probes reuse internal scratch (dedup stamps, the prefix sort buffer), so
// a Joiner must not be probed from multiple goroutines concurrently; build
// one Joiner per goroutine instead.
type Joiner struct {
	recs    []*relational.Record
	tk      *tokenize.Tokenizer
	matcher Matcher

	// exact join state
	exactKeys map[string][]int

	// jaccard prefix-filter state
	threshold float64
	order     map[string]int // global token order: rarer tokens first
	prefixInv map[string][]int

	// column projections taken from the matcher (nil = all columns)
	dCols, hCols []int

	// verify holds BlockedAnd verification predicates applied to every
	// index candidate.
	verify []Matcher

	// probe-side scratch, reused across sequential probes: candidate dedup
	// within one probe (probeSeen), across one batch (batchSeen — separate
	// because CoveredBy nests Matches), and the prefix sort buffer.
	probeSeen denseSeen
	batchSeen denseSeen
	sortBuf   []string
}

// denseSeen is a generation-stamped membership set over dense indices:
// reset is O(1), add is an array store — replacing the map[int]struct{}
// the probe paths used to allocate per call.
type denseSeen struct {
	stamp []int
	gen   int
}

func (s *denseSeen) reset(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]int, n)
		s.gen = 0
	}
	s.gen++
}

// add inserts i and reports whether it was newly added.
func (s *denseSeen) add(i int) bool {
	if s.stamp[i] == s.gen {
		return false
	}
	s.stamp[i] = s.gen
	return true
}

// NewJoiner builds a join index over the local records for the given
// matcher. BlockedAnd matchers are indexed by their Block component, with
// Verify predicates applied to every candidate.
func NewJoiner(recs []*relational.Record, tk *tokenize.Tokenizer, m Matcher) *Joiner {
	j := &Joiner{recs: recs, tk: tk, matcher: m}
	if ba, ok := m.(*BlockedAnd); ok {
		j.verify = ba.Verify
		m = ba.Block
	}
	switch mm := m.(type) {
	case *Exact:
		j.dCols, j.hCols = mm.DCols, mm.HCols
		j.exactKeys = make(map[string][]int, len(recs))
		for i, r := range recs {
			k := KeyOn(r, tk, j.dCols)
			j.exactKeys[k] = append(j.exactKeys[k], i)
		}
	case *Jaccard:
		j.dCols, j.hCols = mm.DCols, mm.HCols
		j.threshold = mm.Threshold
		j.buildPrefixIndex()
	}
	return j
}

func (j *Joiner) buildPrefixIndex() {
	// Global order: ascending document frequency, ties by token text.
	df := make(map[string]int)
	for _, r := range j.recs {
		for _, w := range projTokens(r, j.tk, j.dCols) {
			df[w]++
		}
	}
	tokens := make([]string, 0, len(df))
	for w := range df {
		tokens = append(tokens, w)
	}
	sort.Slice(tokens, func(a, b int) bool {
		if df[tokens[a]] != df[tokens[b]] {
			return df[tokens[a]] < df[tokens[b]]
		}
		return tokens[a] < tokens[b]
	})
	j.order = make(map[string]int, len(tokens))
	for i, w := range tokens {
		j.order[w] = i
	}
	j.prefixInv = make(map[string][]int)
	for i, r := range j.recs {
		for _, w := range j.prefixTokens(projTokens(r, j.tk, j.dCols)) {
			j.prefixInv[w] = append(j.prefixInv[w], i)
		}
	}
}

// prefixTokens returns the first |x| − ⌈τ·|x|⌉ + 1 tokens of x under the
// global order. Tokens unknown to the order (probe-side novelties) sort
// last among themselves by text. The result aliases a reused buffer and
// is valid only until the next call.
func (j *Joiner) prefixTokens(toks []string) []string {
	if len(toks) == 0 {
		return nil
	}
	sorted := append(j.sortBuf[:0], toks...)
	j.sortBuf = sorted
	sort.Slice(sorted, func(a, b int) bool {
		oa, oka := j.order[sorted[a]]
		ob, okb := j.order[sorted[b]]
		switch {
		case oka && okb:
			return oa < ob
		case oka:
			return true
		case okb:
			return false
		default:
			return sorted[a] < sorted[b]
		}
	})
	p := len(sorted) - int(math.Ceil(j.threshold*float64(len(sorted)))) + 1
	if p > len(sorted) {
		p = len(sorted)
	}
	if p < 1 {
		p = 1
	}
	return sorted[:p]
}

// Matches returns the indices (into the record slice passed to NewJoiner)
// of all local records matching hidden record h, in ascending order.
func (j *Joiner) Matches(h *relational.Record) []int {
	var cands []int
	switch {
	case j.exactKeys != nil:
		cands = j.exactKeys[KeyOn(h, j.tk, j.hCols)]
	case j.prefixInv != nil:
		cands = j.jaccardMatches(h)
	default:
		for i, d := range j.recs {
			if j.matcher.Match(d, h) {
				cands = append(cands, i)
			}
		}
		return cands // full scan already applied the complete matcher
	}
	if len(j.verify) == 0 || len(cands) == 0 {
		return cands
	}
	out := make([]int, 0, len(cands))
	for _, i := range cands {
		ok := true
		for _, v := range j.verify {
			if !v.Match(j.recs[i], h) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func (j *Joiner) jaccardMatches(h *relational.Record) []int {
	probe := projTokens(h, j.tk, j.hCols)
	j.probeSeen.reset(len(j.recs))
	var out []int
	for _, w := range j.prefixTokens(probe) {
		for _, i := range j.prefixInv[w] {
			if !j.probeSeen.add(i) {
				continue
			}
			if JaccardSim(projTokens(j.recs[i], j.tk, j.dCols), probe) >= j.threshold {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// CoveredBy returns the distinct local-record indices matched by any record
// in the batch (a query result), ascending — q(D)_cover for one issued
// query.
func (j *Joiner) CoveredBy(batch []*relational.Record) []int {
	j.batchSeen.reset(len(j.recs))
	var out []int
	for _, h := range batch {
		for _, i := range j.Matches(h) {
			if !j.batchSeen.add(i) {
				continue
			}
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
