package formweb

import (
	"reflect"
	"testing"

	"smartcrawl/internal/dataset"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

func bizTable() *relational.Table {
	t := relational.NewTable("biz", []string{"name", "city", "category", "rating"})
	t.Append("Thai Noodle House", "Phoenix", "Restaurants", "4.0")
	t.Append("Saigon Ramen", "Tempe", "Restaurants", "3.9")
	t.Append("Golden Grill", "Phoenix", "Bars", "4.5")
	t.Append("Desert Cafe", "Phoenix", "Restaurants", "4.2")
	t.Append("Canyon Bar", "Tempe", "Bars", "3.5")
	t.Append("Mesa Diner", "Phoenix", "Restaurants", "4.8")
	return t
}

func rankByRating(r *relational.Record) float64 {
	switch r.Value(3) {
	case "4.8":
		return 4.8
	case "4.5":
		return 4.5
	case "4.2":
		return 4.2
	case "4.0":
		return 4.0
	case "3.9":
		return 3.9
	default:
		return 3.5
	}
}

func TestNormalize(t *testing.T) {
	q, err := Normalize(Query{{Col: 2, Value: " Bars "}, {Col: 1, Value: "Phoenix"}})
	if err != nil {
		t.Fatal(err)
	}
	want := Query{{Col: 1, Value: "phoenix"}, {Col: 2, Value: "bars"}}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("Normalize = %v", q)
	}
	if _, err := Normalize(Query{{Col: 1, Value: "a"}, {Col: 1, Value: "b"}}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := Normalize(Query{{Col: 1, Value: "  "}}); err == nil {
		t.Fatal("empty value should fail")
	}
}

func TestSearchForm(t *testing.T) {
	db := New(bizTable(), []int{1, 2}, 2, rankByRating)
	recs, err := db.SearchForm(Query{{Col: 1, Value: "Phoenix"}, {Col: 2, Value: "Restaurants"}})
	if err != nil {
		t.Fatal(err)
	}
	// Phoenix restaurants: Thai Noodle House (4.0), Desert Cafe (4.2),
	// Mesa Diner (4.8) — top-2 by rating: Mesa Diner, Desert Cafe.
	if len(recs) != 2 || recs[0].Value(0) != "Mesa Diner" || recs[1].Value(0) != "Desert Cafe" {
		t.Fatalf("result = %v", recs)
	}
	if db.TrueFrequency(Query{{Col: 1, Value: "phoenix"}, {Col: 2, Value: "restaurants"}}) != 3 {
		t.Fatal("TrueFrequency")
	}
}

func TestSearchFormValidation(t *testing.T) {
	db := New(bizTable(), []int{1, 2}, 2, rankByRating)
	if _, err := db.SearchForm(nil); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := db.SearchForm(Query{{Col: 0, Value: "Thai"}}); err == nil {
		t.Error("unfilterable column should fail")
	}
	recs, err := db.SearchForm(Query{{Col: 1, Value: "nowhere"}})
	if err != nil || len(recs) != 0 {
		t.Errorf("unknown value should return empty, got %v, %v", recs, err)
	}
}

func TestGeneratePool(t *testing.T) {
	local := relational.NewTable("d", []string{"name", "city", "category"})
	local.Append("A", "Phoenix", "Restaurants")
	local.Append("B", "Phoenix", "Restaurants")
	local.Append("C", "Phoenix", "Bars")
	local.Append("D", "Tempe", "Restaurants")

	pool, err := GeneratePool(local, []int{1, 2}, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, q := range pool {
		keys[q.Key()] = true
	}
	// {phoenix, restaurants} has support 2 and is closed.
	if !keys["1=phoenix&2=restaurants"] {
		t.Fatalf("missing combined filter; pool = %v", pool)
	}
	// {phoenix} has support 3 ≠ 2, so it survives the closed filter too.
	if !keys["1=phoenix"] {
		t.Fatalf("missing city filter; pool = %v", pool)
	}
	// {restaurants} support 3: closed (no equal-support superset).
	if !keys["2=restaurants"] {
		t.Fatalf("missing category filter; pool = %v", pool)
	}
}

func TestGeneratePoolValidation(t *testing.T) {
	local := relational.NewTable("d", []string{"a"})
	if _, err := GeneratePool(local, []int{0}, []int{0, 1}, 2); err == nil {
		t.Fatal("misaligned columns should fail")
	}
	if _, err := GeneratePool(local, nil, nil, 2); err == nil {
		t.Fatal("empty columns should fail")
	}
}

func TestCrawlCoversViaForm(t *testing.T) {
	tk := tokenize.New()
	hid := bizTable()
	db := New(hid, []int{1, 2}, 3, rankByRating)

	// Local table: three of the businesses, aligned schema (name, city,
	// category).
	local := relational.NewTable("d", []string{"name", "city", "category"})
	local.Append("Thai Noodle House", "Phoenix", "Restaurants")
	local.Append("Desert Cafe", "Phoenix", "Restaurants")
	local.Append("Canyon Bar", "Tempe", "Bars")

	pool, err := GeneratePool(local, []int{1, 2}, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewExactOn(tk, []int{0}, []int{0}) // match on name
	res, err := Crawl(local, db, pool, tk, m, []int{1, 2}, []int{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 3 {
		t.Fatalf("covered %d of 3 (crawled %d)", res.CoveredCount, len(res.Crawled))
	}
	if res.QueriesIssued > 10 {
		t.Fatalf("issued %d", res.QueriesIssued)
	}
}

// TestFormVsKeywordReach demonstrates the structural limitation that keeps
// the paper on keyword interfaces: a coarse form grid caps reachable
// records at (#distinct filter combinations) × k, while keyword queries
// can name individual entities.
func TestFormVsKeywordReach(t *testing.T) {
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: 4000, LocalSize: 400, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	// Form interface over city only (the coarsest realistic grid).
	db := New(in.Hidden, []int{1}, 50, func(r *relational.Record) float64 {
		return float64(r.ID % 97)
	})
	local, err := in.Local.Project("name", "city")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := GeneratePool(local, []int{1}, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	res, err := Crawl(local, db, pool, tk, m, []int{1}, []int{1}, 400)
	if err != nil {
		t.Fatal(err)
	}
	// ~15 cities × k=50 caps crawlable records at ~750 of 4000, so
	// coverage of the 400 local records is capped near 750/4000 ≈ 19%.
	maxReach := len(pool) * db.K()
	if res.CoveredCount > maxReach {
		t.Fatalf("covered %d exceeds the structural cap %d", res.CoveredCount, maxReach)
	}
	if res.QueriesIssued > len(pool) {
		t.Fatalf("issued %d with only %d distinct form queries", res.QueriesIssued, len(pool))
	}
	t.Logf("form coverage %d/400 with %d queries (cap %d records)",
		res.CoveredCount, res.QueriesIssued, maxReach)
}
