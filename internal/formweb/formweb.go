// Package formweb implements the form-like search interface the paper
// defers to future work (§9): instead of free keywords, the hidden
// database is queried through a form of categorical attribute filters
// (city = "Phoenix" AND category = "Pizza"), returning the top-k matching
// records — the interface family of Raghavan & Garcia-Molina [36],
// Madhavan et al. [31], and Jin et al. [28]. It provides the simulator, a
// local-database-aware pool of form queries (the SMARTCRAWL transfer:
// enumerate the filter combinations that occur in D, most frequent first),
// and a greedy budgeted crawler with the same §4.2-style pruning of
// records a solid query failed to return.
package formweb

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"smartcrawl/internal/freqmine"
	"smartcrawl/internal/index"
	"smartcrawl/internal/lazyheap"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Filter is one form predicate: column col equals value (case-insensitive,
// whitespace-trimmed).
type Filter struct {
	Col   int
	Value string
}

// Query is a conjunction of filters over distinct columns, sorted by
// column index.
type Query []Filter

// Key returns a canonical map key.
func (q Query) Key() string {
	parts := make([]string, len(q))
	for i, f := range q {
		parts[i] = fmt.Sprintf("%d=%s", f.Col, f.Value)
	}
	return strings.Join(parts, "&")
}

// String renders the query for humans.
func (q Query) String() string { return q.Key() }

// Normalize canonicalizes filter values and ordering. It returns an error
// on duplicate columns or empty values.
func Normalize(q Query) (Query, error) {
	out := make(Query, len(q))
	for i, f := range q {
		v := strings.ToLower(strings.TrimSpace(f.Value))
		if v == "" {
			return nil, errors.New("formweb: empty filter value")
		}
		out[i] = Filter{Col: f.Col, Value: v}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Col < out[b].Col })
	for i := 1; i < len(out); i++ {
		if out[i].Col == out[i-1].Col {
			return nil, fmt.Errorf("formweb: duplicate column %d", out[i].Col)
		}
	}
	return out, nil
}

// Searcher is the restricted form interface: filters in, at most k records
// out.
type Searcher interface {
	SearchForm(q Query) ([]*relational.Record, error)
	K() int
	// Columns lists the filterable column indices.
	Columns() []int
}

// Database simulates a hidden database behind a form interface.
type Database struct {
	table *relational.Table
	cols  []int
	k     int
	score []float64
	// postings maps "col=value" to sorted record IDs.
	postings map[string][]int
}

// RankFunc mirrors hidden.RankFunc (static relevance, higher first).
type RankFunc func(r *relational.Record) float64

// New builds a form database over table; cols are the filterable columns.
func New(table *relational.Table, cols []int, k int, rank RankFunc) *Database {
	if k <= 0 {
		panic("formweb: k must be positive")
	}
	if len(cols) == 0 {
		panic("formweb: at least one filterable column required")
	}
	db := &Database{
		table:    table,
		cols:     append([]int(nil), cols...),
		k:        k,
		score:    make([]float64, table.Len()),
		postings: make(map[string][]int),
	}
	for _, r := range table.Records {
		db.score[r.ID] = rank(r)
		for _, c := range cols {
			key := postingKey(c, r.Value(c))
			db.postings[key] = append(db.postings[key], r.ID)
		}
	}
	for key := range db.postings {
		sort.Ints(db.postings[key])
	}
	return db
}

func postingKey(col int, value string) string {
	return fmt.Sprintf("%d=%s", col, strings.ToLower(strings.TrimSpace(value)))
}

// K implements Searcher.
func (db *Database) K() int { return db.k }

// Columns implements Searcher.
func (db *Database) Columns() []int { return append([]int(nil), db.cols...) }

// SearchForm implements Searcher: deterministic top-k of the records
// matching every filter, ranked by score (ties by ID).
func (db *Database) SearchForm(q Query) ([]*relational.Record, error) {
	q, err := Normalize(q)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		return nil, errors.New("formweb: empty query")
	}
	filterable := make(map[int]bool, len(db.cols))
	for _, c := range db.cols {
		filterable[c] = true
	}
	var ids []int
	for i, f := range q {
		if !filterable[f.Col] {
			return nil, fmt.Errorf("formweb: column %d is not filterable", f.Col)
		}
		p := db.postings[postingKey(f.Col, f.Value)]
		if len(p) == 0 {
			return nil, nil
		}
		if i == 0 {
			ids = p
			continue
		}
		ids = intersectSorted(ids, p)
		if len(ids) == 0 {
			return nil, nil
		}
	}
	if len(ids) > db.k {
		cp := make([]int, len(ids))
		copy(cp, ids)
		sort.Slice(cp, func(a, b int) bool {
			if db.score[cp[a]] != db.score[cp[b]] {
				return db.score[cp[a]] > db.score[cp[b]]
			}
			return cp[a] < cp[b]
		})
		ids = cp[:db.k]
	}
	out := make([]*relational.Record, len(ids))
	for i, id := range ids {
		out[i] = db.table.Records[id]
	}
	return out, nil
}

// TrueFrequency is the oracle |q(H)| (evaluation only).
func (db *Database) TrueFrequency(q Query) int {
	q, err := Normalize(q)
	if err != nil || len(q) == 0 {
		return 0
	}
	var ids []int
	for i, f := range q {
		p := db.postings[postingKey(f.Col, f.Value)]
		if i == 0 {
			ids = p
		} else {
			ids = intersectSorted(ids, p)
		}
		if len(ids) == 0 {
			return 0
		}
	}
	return len(ids)
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// GeneratePool builds the local-database-aware form-query pool: every
// combination of filter values with support ≥ minSupport in the local
// table (closed combinations only, mirroring §3.1's dominance pruning),
// over the columns shared by both schemas. localCols[i] is the local
// column aligned with the searcher's hiddenCols[i].
func GeneratePool(local *relational.Table, localCols, hiddenCols []int, minSupport int) ([]Query, error) {
	if len(localCols) != len(hiddenCols) || len(localCols) == 0 {
		return nil, errors.New("formweb: localCols and hiddenCols must align and be non-empty")
	}
	if minSupport < 1 {
		minSupport = 1
	}
	// Items are (aligned column position, value) pairs.
	type item struct {
		pos   int
		value string
	}
	itemID := make(map[item]int)
	items := make([]item, 0)
	txs := make([][]int, local.Len())
	for i, r := range local.Records {
		tx := make([]int, 0, len(localCols))
		for pos, lc := range localCols {
			v := strings.ToLower(strings.TrimSpace(r.Value(lc)))
			if v == "" {
				continue
			}
			it := item{pos: pos, value: v}
			id, ok := itemID[it]
			if !ok {
				id = len(items)
				itemID[it] = id
				items = append(items, it)
			}
			tx = append(tx, id)
		}
		txs[i] = tx
	}
	mined := freqmine.MineFPGrowth(txs, freqmine.Config{
		MinSupport: minSupport,
		MaxLen:     len(localCols),
	})
	var pool []Query
	for _, s := range freqmine.FilterClosed(mined) {
		q := make(Query, 0, len(s.Items))
		ok := true
		seenCols := map[int]bool{}
		for _, id := range s.Items {
			it := items[id]
			if seenCols[it.pos] {
				ok = false // two values of the same column can't co-occur... defensive
				break
			}
			seenCols[it.pos] = true
			q = append(q, Filter{Col: hiddenCols[it.pos], Value: it.value})
		}
		if !ok {
			continue
		}
		nq, err := Normalize(q)
		if err != nil {
			continue
		}
		pool = append(pool, nq)
	}
	// Deterministic order: by descending support is already FP-Growth's
	// order; re-sort by key for stability after the closed filter.
	sort.Slice(pool, func(a, b int) bool { return pool[a].Key() < pool[b].Key() })
	return pool, nil
}

// CrawlResult is the outcome of a form crawl.
type CrawlResult struct {
	Covered       []bool
	CoveredCount  int
	QueriesIssued int
	Crawled       map[int]*relational.Record
}

// Crawl runs the budgeted local-database-aware form crawl: greedily issue
// the pool query matching the most uncovered local records (frequency
// selection with lazy updates); when a query returns fewer than k records
// it was complete, so its unmatched local records cannot be covered by any
// form query implied by theirs — prune them, mirroring §4.2.
func Crawl(local *relational.Table, s Searcher, pool []Query, tk *tokenize.Tokenizer, m match.Matcher, localCols, hiddenCols []int, budget int) (*CrawlResult, error) {
	if len(pool) == 0 {
		return nil, errors.New("formweb: empty pool")
	}
	joiner := match.NewJoiner(local.Records, tk, m)

	// q(D) per pool query: local records whose aligned values satisfy
	// every filter.
	colOfHidden := make(map[int]int, len(hiddenCols))
	for i, hc := range hiddenCols {
		colOfHidden[hc] = localCols[i]
	}
	valOf := func(r *relational.Record, hiddenCol int) string {
		return strings.ToLower(strings.TrimSpace(r.Value(colOfHidden[hiddenCol])))
	}
	qD := make([][]int, len(pool))
	fwd := index.NewForward()
	freq := make([]int, len(pool))
	for qi, q := range pool {
		for _, r := range local.Records {
			ok := true
			for _, f := range q {
				if valOf(r, f.Col) != f.Value {
					ok = false
					break
				}
			}
			if ok {
				qD[qi] = append(qD[qi], r.ID)
				fwd.Add(r.ID, qi)
			}
		}
		freq[qi] = len(qD[qi])
	}

	heap := lazyheap.New()
	issued := make([]bool, len(pool))
	for qi := range pool {
		if freq[qi] > 0 {
			heap.Push(qi, float64(freq[qi]))
		}
	}

	res := &CrawlResult{
		Covered: make([]bool, local.Len()),
		Crawled: make(map[int]*relational.Record),
	}
	considered := make([]bool, local.Len())
	for i := range considered {
		considered[i] = true
	}
	remaining := local.Len()
	remove := func(d int) {
		if !considered[d] {
			return
		}
		considered[d] = false
		remaining--
		for _, qi := range fwd.Remove(d) {
			if !issued[qi] {
				freq[qi]--
				heap.Invalidate(qi)
			}
		}
	}
	rescore := func(qi int) (float64, bool) {
		if issued[qi] || freq[qi] <= 0 {
			return 0, false
		}
		return float64(freq[qi]), true
	}

	for res.QueriesIssued < budget && remaining > 0 {
		qi, _, ok := heap.Pop(rescore)
		if !ok {
			break
		}
		issued[qi] = true
		recs, err := s.SearchForm(pool[qi])
		if err != nil {
			return nil, fmt.Errorf("formweb: issuing %v: %w", pool[qi], err)
		}
		res.QueriesIssued++
		for _, h := range recs {
			if _, dup := res.Crawled[h.ID]; !dup {
				res.Crawled[h.ID] = h
			}
			for _, d := range joiner.Matches(h) {
				if !res.Covered[d] {
					res.Covered[d] = true
					res.CoveredCount++
					remove(d)
				}
			}
		}
		if len(recs) < s.K() {
			for _, d := range qD[qi] {
				remove(d)
			}
		}
	}
	return res, nil
}
