package sample

import (
	"errors"
	"fmt"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// RandomWalk is the zoom-in sampler for interfaces where single keywords
// mostly overflow (large hidden databases behind small k): following the
// random-walk family the paper cites (Dasgupta et al. [17], Zhang et al.
// [48]), each walk starts from one random pool keyword and, while the
// query overflows, narrows it by conjoining further random keywords until
// it turns solid (or dies empty). A uniform record is then drawn from the
// solid result and accepted with probability 1/(k·deg₁(h)) scaled by the
// result size, where deg₁ counts the record's solid single-keyword pool
// entries — the same first-order degree correction Keyword uses.
//
// The walk's multi-level trajectory makes exact inclusion probabilities
// intractable without issuing many more queries (the known trade-off in
// this literature); RandomWalk therefore produces an approximately uniform
// sample and estimates θ by the same degree statistics as Keyword,
// restricted to walks that ended at depth 1. When no depth-1 walks exist,
// Theta is left 0 for the caller to supply out of band.
type RandomWalkConfig struct {
	// Target is the desired number of distinct sampled records.
	Target int
	// MaxQueries bounds total queries spent (0 = unlimited).
	MaxQueries int
	// MaxDepth bounds the zoom-in depth (default 4).
	MaxDepth int
	// Seed drives all random choices.
	Seed uint64
}

// RandomWalk runs the zoom-in sampler against searcher s with the given
// single-keyword seed pool.
func RandomWalk(s deepweb.Searcher, pool []deepweb.Query, tk *tokenize.Tokenizer, cfg RandomWalkConfig) (*Sample, error) {
	if cfg.Target <= 0 {
		return nil, errors.New("sample: target must be positive")
	}
	if len(pool) == 0 {
		return nil, errors.New("sample: empty seed pool")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	keywords := make([]string, len(pool))
	inPool := make(map[string]bool, len(pool))
	for i, q := range pool {
		if len(q) != 1 {
			return nil, fmt.Errorf("sample: seed pool must contain single-keyword queries, got %v", q)
		}
		keywords[i] = q[0]
		inPool[q[0]] = true
	}

	rng := stats.NewRNG(cfg.Seed)
	k := s.K()

	type queryInfo struct {
		size  int
		solid bool
	}
	issued := make(map[string]queryInfo)
	results := make(map[string][]*relational.Record)
	spent := 0
	budgetErr := false

	issue := func(q deepweb.Query) (queryInfo, []*relational.Record, error) {
		key := q.Key()
		if info, ok := issued[key]; ok {
			return info, results[key], nil
		}
		if cfg.MaxQueries > 0 && spent >= cfg.MaxQueries {
			budgetErr = true
			return queryInfo{}, nil, ErrSampleBudget
		}
		spent++
		res, err := s.Search(q)
		if err != nil {
			return queryInfo{}, nil, fmt.Errorf("sample: issuing %q: %w", q, err)
		}
		info := queryInfo{size: len(res), solid: len(res) < k}
		issued[key] = info
		results[key] = res
		return info, res, nil
	}

	// conjoin extends q with keyword w, keeping normalized order; returns
	// nil when w is already present.
	conjoin := func(q deepweb.Query, w string) deepweb.Query {
		out := make(deepweb.Query, 0, len(q)+1)
		placed := false
		for _, x := range q {
			if x == w {
				return nil
			}
			if !placed && w < x {
				out = append(out, w)
				placed = true
			}
			out = append(out, x)
		}
		if !placed {
			out = append(out, w)
		}
		return out
	}

	degree1 := func(h *relational.Record) (int, error) {
		deg := 0
		for _, w := range h.Tokens(tk) {
			if !inPool[w] {
				continue
			}
			info, _, err := issue(deepweb.Query{w})
			if err != nil {
				return 0, err
			}
			if info.solid {
				deg++
			}
		}
		return deg, nil
	}

	var (
		accepted     []*relational.Record
		acceptedIDs  = make(map[int]bool)
		sumDeg       float64
		nAccepted1   int // accepted draws from depth-1 walks
		uniformSolid int
		uniformTotal int
		sumSizes     float64
	)

	// Iteration guard, as in Keyword: memoized walks cost no budget, so
	// an unsatisfiable configuration must not spin forever.
	maxWalks := 1000*cfg.Target + 10*len(pool)
	walks := 0
walkLoop:
	for len(acceptedIDs) < cfg.Target {
		walks++
		if walks > maxWalks {
			break
		}
		q := deepweb.Query{keywords[rng.Intn(len(keywords))]}
		depth := 1
		for {
			info, res, err := issue(q)
			if err != nil {
				break walkLoop
			}
			if depth == 1 {
				uniformTotal++
				if info.solid {
					uniformSolid++
					sumSizes += float64(info.size)
				}
			}
			if info.solid {
				if info.size == 0 {
					break // dead walk; restart
				}
				h := res[rng.Intn(info.size)]
				deg, err := degree1(h)
				if err != nil {
					break walkLoop
				}
				weight := float64(info.size) / float64(k)
				if deg > 0 {
					weight /= float64(deg)
				}
				if rng.Float64() < weight {
					if depth == 1 && deg > 0 {
						nAccepted1++
						sumDeg += float64(deg)
					}
					if !acceptedIDs[h.ID] {
						acceptedIDs[h.ID] = true
						accepted = append(accepted, h)
					}
				}
				break
			}
			if depth >= cfg.MaxDepth {
				break // give up on this walk
			}
			next := conjoin(q, keywords[rng.Intn(len(keywords))])
			if next == nil {
				break
			}
			q = next
			depth++
		}
	}

	smp := &Sample{Records: accepted, QueriesSpent: spent}
	if nAccepted1 > 0 && uniformSolid > 0 {
		sHat := float64(len(pool)) *
			(float64(uniformSolid) / float64(uniformTotal)) *
			(sumSizes / float64(uniformSolid))
		meanDeg := sumDeg / float64(nAccepted1)
		if meanDeg > 0 && sHat > 0 {
			smp.Theta = float64(len(accepted)) / (sHat / meanDeg)
			if smp.Theta > 1 {
				smp.Theta = 1
			}
		}
	}
	if budgetErr || len(accepted) < cfg.Target {
		return smp, ErrSampleBudget
	}
	return smp, nil
}
