package sample

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func TestBernoulliRatioAndMembership(t *testing.T) {
	tab := relational.NewTable("h", []string{"doc"})
	for i := 0; i < 50000; i++ {
		tab.Append(fmt.Sprintf("doc %d", i))
	}
	s := Bernoulli(tab, 0.01, stats.NewRNG(1))
	ratio := float64(s.Len()) / float64(tab.Len())
	if math.Abs(ratio-0.01) > 0.003 {
		t.Fatalf("realized ratio %v, want ≈0.01", ratio)
	}
	if s.Theta != 0.01 {
		t.Fatalf("Theta = %v", s.Theta)
	}
	if s.QueriesSpent != 0 {
		t.Fatal("Bernoulli must not spend queries")
	}
	seen := map[int]bool{}
	for _, r := range s.Records {
		if r != tab.Records[r.ID] {
			t.Fatal("sample must reference hidden records")
		}
		if seen[r.ID] {
			t.Fatal("duplicate record in sample")
		}
		seen[r.ID] = true
	}
}

func TestBernoulliPanicsOnBadTheta(t *testing.T) {
	tab := relational.NewTable("h", []string{"doc"})
	for _, theta := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta %v should panic", theta)
				}
			}()
			Bernoulli(tab, theta, stats.NewRNG(1))
		}()
	}
}

// buildHidden makes a hidden DB of n records over a small vocabulary so
// degrees and solidities vary.
func buildHidden(n, k int, seed uint64) (*hidden.Database, *relational.Table, *tokenize.Tokenizer) {
	tk := tokenize.New()
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(rng, 1.05, 300)
	tab := relational.NewTable("h", []string{"doc"})
	for i := 0; i < n; i++ {
		doc := ""
		for j := 0; j < 5; j++ {
			doc += fmt.Sprintf("w%03d ", zipf.Draw())
		}
		tab.Append(doc)
	}
	db := hidden.New(tab, tk, k, hidden.RankByHash(seed), hidden.ModeConjunctive)
	return db, tab, tk
}

func TestKeywordSamplerProducesDistinctRecords(t *testing.T) {
	db, tab, tk := buildHidden(2000, 50, 9)
	pool := SingleKeywordPool(tab, tk)
	s, err := Keyword(db, pool, tk, KeywordConfig{Target: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 60 {
		t.Fatalf("sample size = %d", s.Len())
	}
	if s.QueriesSpent == 0 {
		t.Fatal("keyword sampling must spend queries")
	}
	seen := map[int]bool{}
	for _, r := range s.Records {
		if seen[r.ID] {
			t.Fatal("duplicate record")
		}
		seen[r.ID] = true
	}
}

func TestKeywordSamplerThetaEstimate(t *testing.T) {
	const n = 3000
	db, tab, tk := buildHidden(n, 100, 11)
	pool := SingleKeywordPool(tab, tk)
	s, err := Keyword(db, pool, tk, KeywordConfig{Target: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	trueTheta := float64(s.Len()) / float64(n)
	// The degree estimator is approximate; require the right order of
	// magnitude (within 3x), which is what the biased estimators need.
	if s.Theta <= 0 {
		t.Fatalf("Theta = %v, want positive", s.Theta)
	}
	ratio := s.Theta / trueTheta
	if ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("Theta estimate %v vs true %v (ratio %v)", s.Theta, trueTheta, ratio)
	}
}

func TestKeywordSamplerNearUniform(t *testing.T) {
	// Repeated small samples should not concentrate on a few records:
	// check that across many runs, the most-sampled record is not
	// grossly over-represented relative to uniform expectation.
	const n = 400
	db, tab, tk := buildHidden(n, 50, 13)
	pool := SingleKeywordPool(tab, tk)
	counts := make(map[int]int)
	total := 0
	for seed := uint64(0); seed < 30; seed++ {
		s, err := Keyword(db, pool, tk, KeywordConfig{Target: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Records {
			counts[r.ID]++
			total++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Uniform expectation per record is total/n = 600/400 = 1.5;
	// allow generous slack but catch gross concentration (e.g. a
	// sampler that always returns top-ranked records would hit 30).
	if float64(maxCount) > 10 {
		t.Fatalf("record sampled %d of %d times — far from uniform", maxCount, total)
	}
}

func TestKeywordSamplerBudgetExhaustion(t *testing.T) {
	db, tab, tk := buildHidden(2000, 50, 15)
	pool := SingleKeywordPool(tab, tk)
	s, err := Keyword(db, pool, tk, KeywordConfig{Target: 500, MaxQueries: 30, Seed: 1})
	if !errors.Is(err, ErrSampleBudget) {
		t.Fatalf("err = %v, want ErrSampleBudget", err)
	}
	if s == nil {
		t.Fatal("partial sample must still be returned")
	}
	if s.QueriesSpent > 30 {
		t.Fatalf("spent %d > allowance 30", s.QueriesSpent)
	}
}

func TestKeywordSamplerValidation(t *testing.T) {
	db, tab, tk := buildHidden(100, 10, 17)
	pool := SingleKeywordPool(tab, tk)
	if _, err := Keyword(db, pool, tk, KeywordConfig{Target: 0}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := Keyword(db, nil, tk, KeywordConfig{Target: 5}); err == nil {
		t.Error("empty pool should error")
	}
	bad := []deepweb.Query{{"two", "words"}}
	if _, err := Keyword(db, bad, tk, KeywordConfig{Target: 5}); err == nil {
		t.Error("multi-keyword seed should error")
	}
}

func TestSingleKeywordPool(t *testing.T) {
	tk := tokenize.New()
	tab := relational.NewTable("d", []string{"doc"})
	tab.Append("alpha beta")
	tab.Append("beta gamma")
	pool := SingleKeywordPool(tab, tk)
	if len(pool) != 3 {
		t.Fatalf("pool = %v", pool)
	}
	for _, q := range pool {
		if len(q) != 1 {
			t.Fatalf("non-single query %v", q)
		}
	}
}
