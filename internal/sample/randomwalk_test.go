package sample

import (
	"errors"
	"fmt"
	"testing"

	"smartcrawl/internal/deepweb"

	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// denseHidden builds a hidden DB over a TINY vocabulary, so every single
// keyword overflows at the given k — the regime where the plain Keyword
// sampler starves and zoom-in walks are required.
func denseHidden(n, k int, seed uint64) (*hidden.Database, *relational.Table, *tokenize.Tokenizer) {
	tk := tokenize.New()
	rng := stats.NewRNG(seed)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	tab := relational.NewTable("h", []string{"doc"})
	for i := 0; i < n; i++ {
		doc := ""
		for j := 0; j < 4; j++ {
			doc += vocab[rng.Intn(len(vocab))] + " "
		}
		tab.Append(doc)
	}
	db := hidden.New(tab, tk, k, hidden.RankByHash(seed), hidden.ModeConjunctive)
	return db, tab, tk
}

func TestRandomWalkSamplesWhereKeywordStarves(t *testing.T) {
	db, tab, tk := denseHidden(5000, 20, 3)
	pool := SingleKeywordPool(tab, tk)

	// Sanity: every single keyword overflows, so Keyword cannot accept.
	for _, q := range pool[:5] {
		res, err := db.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) < db.K() {
			t.Skip("vocabulary not dense enough for the starving regime")
		}
	}
	kw, err := Keyword(db, pool, tk, KeywordConfig{Target: 20, MaxQueries: 500, Seed: 1})
	if !errors.Is(err, ErrSampleBudget) || kw.Len() != 0 {
		t.Fatalf("expected Keyword to starve (err=%v, len=%d)", err, kw.Len())
	}

	smp, err := RandomWalk(db, pool, tk, RandomWalkConfig{Target: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if smp.Len() != 50 {
		t.Fatalf("random walk sampled %d, want 50", smp.Len())
	}
	seen := map[int]bool{}
	for _, r := range smp.Records {
		if seen[r.ID] {
			t.Fatal("duplicate record")
		}
		seen[r.ID] = true
	}
}

func TestRandomWalkRespectsBudget(t *testing.T) {
	db, tab, tk := denseHidden(3000, 20, 5)
	pool := SingleKeywordPool(tab, tk)
	smp, err := RandomWalk(db, pool, tk, RandomWalkConfig{
		Target: 1000, MaxQueries: 100, Seed: 2,
	})
	if !errors.Is(err, ErrSampleBudget) {
		t.Fatalf("err = %v", err)
	}
	if smp.QueriesSpent > 100 {
		t.Fatalf("spent %d > 100", smp.QueriesSpent)
	}
}

func TestRandomWalkValidation(t *testing.T) {
	db, tab, tk := denseHidden(100, 10, 7)
	pool := SingleKeywordPool(tab, tk)
	if _, err := RandomWalk(db, pool, tk, RandomWalkConfig{Target: 0}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := RandomWalk(db, nil, tk, RandomWalkConfig{Target: 5}); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := RandomWalk(db, []deepweb.Query{{"two", "words"}}, tk, RandomWalkConfig{Target: 5}); err == nil {
		t.Error("multi-keyword seed should error")
	}
}

func TestRandomWalkNearUniformish(t *testing.T) {
	// Gross-concentration check, as for Keyword: no record should be
	// sampled wildly more often than uniform across repeated runs.
	db, tab, tk := denseHidden(500, 20, 9)
	pool := SingleKeywordPool(tab, tk)
	counts := map[int]int{}
	total := 0
	for seed := uint64(0); seed < 20; seed++ {
		smp, err := RandomWalk(db, pool, tk, RandomWalkConfig{Target: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range smp.Records {
			counts[r.ID]++
			total++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Uniform expectation ≈ total/500 = 1; the walk is only
	// approximately uniform, so just catch gross spikes.
	if maxCount > 12 {
		t.Fatalf("record sampled %d of %d times — grossly non-uniform", maxCount, total)
	}
}

func TestRandomWalkThetaZeroWhenNoDepth1Walks(t *testing.T) {
	// In the dense regime every depth-1 query overflows, so no depth-1
	// acceptance happens and θ cannot be estimated from degree
	// statistics — the sampler must report Theta = 0 rather than a
	// fabricated value.
	db, tab, tk := denseHidden(3000, 20, 21)
	pool := SingleKeywordPool(tab, tk)
	smp, err := RandomWalk(db, pool, tk, RandomWalkConfig{Target: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if smp.Theta != 0 {
		t.Fatalf("Theta = %v, want 0 (no depth-1 observations)", smp.Theta)
	}
	if smp.Len() != 30 {
		t.Fatalf("sample size = %d", smp.Len())
	}
}
