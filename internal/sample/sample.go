// Package sample creates hidden-database samples, the input the paper's
// QSel-Est estimators require (§5.1). Two samplers are provided:
//
//   - Bernoulli: draws each hidden record independently with probability θ.
//     Usable only in simulation (it reads H directly) and used by the
//     simulated experiments, where the paper also assumes Hs and θ are
//     simply given.
//   - Keyword: a pool-based random-walk sampler that works through the
//     restricted search interface alone, standing in for Zhang et al. [48]
//     (the technique the paper applies to Yelp). It produces near-uniform
//     record samples by rejection sampling and estimates |H| (hence θ)
//     from query-degree statistics, paying real query budget as it goes —
//     mirroring the paper's 6,483 queries for a 500-record, 0.2% Yelp
//     sample.
//
// A sample is created once, offline, and reused across crawls (§5.1).
package sample

import (
	"errors"
	"fmt"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// Sample is a hidden-database sample with its (known or estimated)
// sampling ratio θ = |Hs| / |H|.
type Sample struct {
	Records []*relational.Record
	Theta   float64
	// QueriesSpent is the number of search-interface queries consumed to
	// build the sample (0 for Bernoulli). The paper amortizes this cost
	// offline; the harness reports it separately from the crawl budget.
	QueriesSpent int
}

// Len returns the number of sampled records.
func (s *Sample) Len() int { return len(s.Records) }

// TokenIDSets returns each sample record's distinct-token set interned
// under d as a sorted []uint32 — the integer form the crawler's sample-
// membership kernel (tokenize.ContainsAllSorted) consumes. Tokens outside
// the dictionary are dropped: they come only from sample-side text and
// can never appear in a pool query, so no membership test changes.
func (s *Sample) TokenIDSets(tk *tokenize.Tokenizer, d *tokenize.Dict) [][]uint32 {
	sets := make([][]uint32, len(s.Records))
	for i, r := range s.Records {
		sets[i] = d.SortedSet(r.Tokens(tk))
	}
	return sets
}

// Bernoulli draws a sample of hidden table h with per-record inclusion
// probability theta. The returned Theta is the nominal ratio (what the
// estimators are told), matching the simulated experimental setup.
func Bernoulli(h *relational.Table, theta float64, rng *stats.RNG) *Sample {
	if theta <= 0 || theta > 1 {
		panic("sample: theta must be in (0, 1]")
	}
	idx := rng.Bernoulli(h.Len(), theta)
	recs := make([]*relational.Record, len(idx))
	for i, j := range idx {
		recs[i] = h.Records[j]
	}
	return &Sample{Records: recs, Theta: theta}
}

// ErrSampleBudget is returned when the keyword sampler exhausts its query
// allowance before reaching the target sample size.
var ErrSampleBudget = errors.New("sample: query allowance exhausted before reaching target size")

// KeywordConfig configures the pool-based keyword sampler.
type KeywordConfig struct {
	// Target is the desired number of distinct sampled records.
	Target int
	// MaxQueries bounds the total queries spent (0 = unlimited).
	MaxQueries int
	// Seed drives all random choices.
	Seed uint64
}

// Keyword runs the pool-based rejection sampler against searcher s using
// the given seed-query pool (typically all single keywords extracted from
// the local database, as in §7.1.2).
//
// One round: draw a pool query q uniformly; issue it (memoized); if the
// result is full (len = k, possibly truncated) the query is treated as
// overflowing and rejected; otherwise pick a uniform record h from the
// result and accept it with probability |q(H)| / (k · deg(h)), where
// deg(h) counts the solid pool queries containing h. Acceptance
// probability of every record then equals 1/(k·|pool|) — uniform — at the
// cost of issuing h's other candidate pool queries to learn their
// solidity (all memoized).
//
// |H| is estimated as Ŝ / mean-degree, where Ŝ estimates the total result
// mass Σ_{q solid} |q(H)| from the uniformly-issued queries, and θ̂ =
// distinct / |Ĥ|.
func Keyword(s deepweb.Searcher, pool []deepweb.Query, tk *tokenize.Tokenizer, cfg KeywordConfig) (*Sample, error) {
	if cfg.Target <= 0 {
		return nil, errors.New("sample: target must be positive")
	}
	if len(pool) == 0 {
		return nil, errors.New("sample: empty seed pool")
	}
	rng := stats.NewRNG(cfg.Seed)
	k := s.K()

	type queryInfo struct {
		size  int // len(result) for solid queries
		solid bool
	}
	issued := make(map[string]queryInfo)
	results := make(map[string][]*relational.Record)
	spent := 0

	issue := func(q deepweb.Query) (queryInfo, []*relational.Record, error) {
		key := q.Key()
		if info, ok := issued[key]; ok {
			return info, results[key], nil
		}
		if cfg.MaxQueries > 0 && spent >= cfg.MaxQueries {
			return queryInfo{}, nil, ErrSampleBudget
		}
		spent++
		res, err := s.Search(q)
		if err != nil {
			return queryInfo{}, nil, fmt.Errorf("sample: issuing %q: %w", q, err)
		}
		info := queryInfo{size: len(res), solid: len(res) < k}
		issued[key] = info
		results[key] = res
		return info, res, nil
	}

	// Pool keyword set for degree computation.
	inPool := make(map[string]bool, len(pool))
	for _, q := range pool {
		if len(q) != 1 {
			return nil, fmt.Errorf("sample: seed pool must contain single-keyword queries, got %v", q)
		}
		inPool[q[0]] = true
	}

	// degree returns the number of solid pool queries containing h,
	// issuing any not-yet-known candidate keywords.
	degree := func(h *relational.Record) (int, error) {
		deg := 0
		for _, w := range h.Tokens(tk) {
			if !inPool[w] {
				continue
			}
			info, _, err := issue(deepweb.Query{w})
			if err != nil {
				return 0, err
			}
			if info.solid {
				deg++
			}
		}
		return deg, nil
	}

	var (
		accepted      []*relational.Record
		acceptedIDs   = make(map[int]bool)
		sumDeg        float64
		nAccepted     int // accepted draws, with replacement
		uniformSolid  int // solid queries among uniform draws
		uniformTotal  int
		sumSolidSizes float64
	)

	// Iteration guard: memoized re-draws of known queries cost no budget,
	// so a pool whose every keyword overflows would otherwise spin
	// forever. The bound is generous — legitimate runs accept well within
	// it.
	maxIters := 1000*cfg.Target + 10*len(pool)
	for iters := 0; len(acceptedIDs) < cfg.Target; iters++ {
		if iters >= maxIters {
			break
		}
		q := pool[rng.Intn(len(pool))]
		info, res, err := issue(q)
		if err != nil {
			break // budget exhausted or interface failure: return partial
		}
		uniformTotal++
		if !info.solid {
			continue
		}
		uniformSolid++
		sumSolidSizes += float64(info.size)
		if info.size == 0 {
			continue
		}
		h := res[rng.Intn(info.size)]
		deg, err := degree(h)
		if err != nil {
			break
		}
		if deg == 0 {
			// h reached through a solid pool query, so deg ≥ 1 in
			// a consistent interface; guard anyway.
			continue
		}
		if rng.Float64() < float64(info.size)/(float64(k)*float64(deg)) {
			nAccepted++
			sumDeg += float64(deg)
			if !acceptedIDs[h.ID] {
				acceptedIDs[h.ID] = true
				accepted = append(accepted, h)
			}
		}
	}

	smp := &Sample{Records: accepted, QueriesSpent: spent}

	// θ̂: Ŝ = (#pool · solid fraction) · mean solid size estimates
	// Σ_{q solid}|q(H)|; |Ĥ| = Ŝ / mean degree of uniform samples.
	if nAccepted > 0 && uniformSolid > 0 {
		sHat := float64(len(pool)) *
			(float64(uniformSolid) / float64(uniformTotal)) *
			(sumSolidSizes / float64(uniformSolid))
		meanDeg := sumDeg / float64(nAccepted)
		if meanDeg > 0 && sHat > 0 {
			hHat := sHat / meanDeg
			if hHat > 0 {
				smp.Theta = float64(len(accepted)) / hHat
				if smp.Theta > 1 {
					smp.Theta = 1
				}
			}
		}
	}

	if len(accepted) < cfg.Target {
		return smp, ErrSampleBudget
	}
	return smp, nil
}

// SingleKeywordPool extracts the distinct keywords of a table as a seed
// pool for Keyword — the paper's Yelp setup extracts all single keywords
// from the local records (§7.1.2).
func SingleKeywordPool(t *relational.Table, tk *tokenize.Tokenizer) []deepweb.Query {
	seen := make(map[string]bool)
	var pool []deepweb.Query
	for _, r := range t.Records {
		for _, w := range r.Tokens(tk) {
			if !seen[w] {
				seen[w] = true
				pool = append(pool, deepweb.Query{w})
			}
		}
	}
	return pool
}
