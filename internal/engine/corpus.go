package engine

import (
	"errors"
	"fmt"
	"io"
	"os"

	"smartcrawl/internal/index"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// openOrBuildCorpus resolves Request.CorpusCache: an existing cache file
// is opened (checksum-verified and memory-mapped where the platform
// supports it); a missing one is first built by streaming the local
// table through the bounded-memory ingester. Either way the returned
// handle is validated against the table it is supposed to index — a
// cache built over a different table would silently corrupt selection,
// so a record-count mismatch is a hard error telling the operator to
// delete the stale file.
func openOrBuildCorpus(path string, local *relational.Table, tk *tokenize.Tokenizer, log io.Writer) (*index.CorpusFile, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		b := index.NewCorpusBuilder(index.IngestConfig{})
		for id, r := range local.Records {
			if err := b.AddRecord(id, r.Tokens(tk)); err != nil {
				return nil, fmt.Errorf("engine: building corpus cache: %w", err)
			}
		}
		if err := b.Finalize(path); err != nil {
			return nil, fmt.Errorf("engine: building corpus cache: %w", err)
		}
		fmt.Fprintf(log, "corpus cache built: %s (%d records, %d terms, %d spill runs)\n",
			path, b.Records(), b.Vocab(), b.Spills())
	} else if err != nil {
		return nil, fmt.Errorf("engine: corpus cache: %w", err)
	}
	cf, err := index.OpenCorpus(path)
	if err != nil {
		return nil, fmt.Errorf("engine: opening corpus cache: %w", err)
	}
	if cf.Records() != local.Len() {
		cf.Close()
		return nil, fmt.Errorf("engine: corpus cache %s indexes %d records but the local table has %d — stale cache, delete it to rebuild",
			path, cf.Records(), local.Len())
	}
	fmt.Fprintf(log, "corpus cache: %s (%d records, mapped=%t)\n", path, cf.Records(), cf.Mapped())
	return cf, nil
}
