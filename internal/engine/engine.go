// Package engine assembles and runs one budgeted enrichment crawl
// end-to-end: load inputs, build the search interface (simulated, remote,
// or federated), compose the politeness/fault/breaker stack, recover
// durable state, crawl, enrich, and persist the checkpoint.
//
// It is the shared core behind the two user-facing surfaces: the
// smartcrawl CLI (one process, one crawl) and the crawld daemon (many
// concurrent jobs over one process). Both build a Request — from flags or
// from a wire-submitted job spec — and call Run, so a crawl produces
// byte-identical results whichever surface invoked it.
//
// The package splits along its seams: request.go holds the Request/
// Outcome wire structs, Defaults, and Validate; table.go the table I/O;
// this file the run path itself.
package engine

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/enrich"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/federate"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// doneCrawler serves a fully recovered crawl without issuing a single
// query: a TotalBudget job whose checkpoint already settles the whole
// budget re-derives its outputs from the recovered state alone.
type doneCrawler struct{ res *crawler.Result }

func (d doneCrawler) Name() string                     { return "recovered-complete" }
func (d doneCrawler) Run(int) (*crawler.Result, error) { return d.res, nil }

// Run executes the request end to end. On success the Request's local
// table has been enriched in place and — with a checkpoint configured —
// the final state compacted to disk. On a crawl error with durability
// open, the journal is preserved untruncated for a later recovery.
func Run(req *Request) (*Outcome, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	log := req.Log
	if log == nil {
		log = io.Discard
	}
	o := req.Obs
	tk := tokenize.New()
	local := req.Local

	var fedSpecs []federate.Spec
	if req.Interfaces != "" {
		var err error
		fedSpecs, err = federate.ParseSpecs(req.Interfaces)
		if err != nil {
			return nil, err
		}
	}

	// Assemble the search interface, the sample, and the hidden schema.
	var (
		searcher     deepweb.Searcher
		smp          *sample.Sample
		hiddenSchema []string
		hiddenTable  *relational.Table
		fed          *federate.Federation
	)
	switch {
	case fedSpecs != nil:
		var err error
		fed, err = federate.BuildAll(fedSpecs, local, tk, o)
		if err != nil {
			return nil, err
		}
		hiddenSchema = fed.HiddenSchema()
		for _, t := range fed.Tables {
			if t != nil {
				hiddenTable = t
				break
			}
		}
		fmt.Fprintf(log, "federation: %d interfaces (%s)\n",
			len(fed.Ifaces), strings.Join(fed.Registry.Names(), ", "))
	case req.Hidden != "":
		var err error
		hiddenTable, err = readTable(req.Hidden, "hidden")
		if err != nil {
			return nil, err
		}
		hiddenSchema = hiddenTable.Schema
		rank := hidden.RankByHash(0x5eed)
		if req.RankColumn >= 0 {
			rank = hidden.RankByNumericColumn(req.RankColumn)
		}
		searcher = hidden.New(hiddenTable, tk, req.K, rank, hidden.ModeConjunctive)
		smp = sample.Bernoulli(hiddenTable, req.Theta, stats.NewRNG(req.Seed))
	default:
		// The client deliberately does not carry req.Context: graceful
		// shutdown drains in-flight queries (their results are absorbed
		// and journaled), it does not abort them mid-request.
		client := &httpapi.Client{BaseURL: req.URL, Retries: 5}
		pool := sample.SingleKeywordPool(local, tk)
		if len(pool) == 0 {
			return nil, errors.New("engine: local table has no indexable keywords")
		}
		if err := client.Probe(pool[0]); err != nil {
			return nil, fmt.Errorf("engine: probing %s: %w", req.URL, err)
		}
		stopSample := o.Phase("keyword_sample")
		var err error
		smp, err = sample.Keyword(client, pool, tk, sample.KeywordConfig{
			Target: req.SampleTarget, Seed: req.Seed,
		})
		stopSample()
		if err != nil {
			fmt.Fprintf(log, "warning: sampling incomplete: %v\n", err)
		}
		fmt.Fprintf(log, "sample: %d records, θ̂=%.4f%%, %d queries spent\n",
			smp.Len(), 100*smp.Theta, smp.QueriesSpent)
		searcher = client
		if smp.Len() > 0 {
			hiddenSchema = make([]string, len(smp.Records[0].Values))
			for i := range hiddenSchema {
				hiddenSchema[i] = fmt.Sprintf("col%d", i)
			}
		}
	}

	// Chaos drill: inject deterministic misbehaviour inside the
	// politeness stack, where a real flaky interface would sit.
	if req.Faults != "" {
		p, err := deepweb.ParseFaultProfile(req.Faults)
		if err != nil {
			return nil, err
		}
		p.Seed = req.FaultSeed
		searcher = deepweb.NewFaulty(searcher, p).WithObs(o)
	}

	// Client-side politeness: a token bucket paces the whole crawl below
	// Rate regardless of Workers, and a retrying layer outside it waits
	// transient failures out with exponential backoff.
	if req.Rate > 0 {
		searcher = &deepweb.Limited{
			S:   searcher,
			B:   deepweb.NewBucket(req.Burst, req.Rate),
			Obs: o,
		}
	}
	if req.Retries > 0 && (req.Rate > 0 || req.Faults != "") {
		searcher = &deepweb.Retrying{
			S:       searcher,
			Retries: req.Retries,
			Backoff: deepweb.ExponentialBackoff(200*time.Millisecond, 5*time.Second),
			Obs:     o,
		}
	}

	// Entity matching compares the schema-aligned columns: hidden rows
	// carry enrichment attributes the local side lacks, so full-document
	// comparison would never match.
	var localCols, hiddenCols []int
	if hiddenTable != nil {
		m := relational.MatchSchemas(local, hiddenTable, tk)
		for i, j := range m.LocalToHidden {
			if j >= 0 {
				localCols = append(localCols, i)
				hiddenCols = append(hiddenCols, j)
			}
		}
		if len(localCols) == 0 {
			return nil, fmt.Errorf("engine: no columns could be aligned between %v and %v",
				local.Schema, hiddenTable.Schema)
		}
	}
	var matcher match.Matcher
	if req.Fuzzy > 0 {
		matcher = match.NewJaccardOn(tk, req.Fuzzy, localCols, hiddenCols)
	} else {
		matcher = match.NewExactOn(tk, localCols, hiddenCols)
	}
	env := &crawler.Env{
		Local:     local,
		Searcher:  searcher,
		Tokenizer: tk,
		Matcher:   matcher,
		Obs:       o,
		OnStep:    req.OnStep,
	}

	// Out-of-core corpus: open (or build, then open) the on-disk index
	// and route selection and pool generation through it. Byte-identical
	// to the in-memory path — DESIGN.md "Out-of-core corpus".
	if req.CorpusCache != "" {
		cf, err := openOrBuildCorpus(req.CorpusCache, local, tk, log)
		if err != nil {
			return nil, err
		}
		defer cf.Close()
		env.Corpus = cf
	}

	// Durability: with a checkpoint, prior state (snapshot + journal) is
	// recovered through the durable sink, which also journals this run.
	var (
		resume  *crawler.Result
		pending []crawler.PendingQuery
		sink    *durable.Sink
	)
	outcome := &Outcome{Local: local, HiddenSchema: hiddenSchema}
	if req.Checkpoint != "" {
		var err error
		sink, err = durable.Open(durable.Options{
			Snapshot:   req.Checkpoint,
			Journal:    req.WAL,
			Every:      req.Autosave,
			Sync:       req.WALSync,
			LocalLen:   local.Len(),
			Obs:        o,
			CrashPoint: req.CrashPoint,
		})
		if err != nil {
			return nil, err
		}
		rec := sink.Recovered()
		outcome.Recovered = rec
		if rec.JournalRecords > 0 || rec.TornTail {
			covered, queries := 0, 0
			if rec.Result != nil {
				covered, queries = rec.Result.CoveredCount, rec.Result.QueriesIssued
			}
			o.Recovered(req.WAL, rec.JournalRecords, covered, queries, rec.LastSeq, rec.TornTail)
			fmt.Fprintf(log, "recovered: %d journal records replayed (torn tail: %t, %d queries pending)\n",
				rec.JournalRecords, rec.TornTail, len(rec.Pending))
		}
		if rec.Result != nil {
			resume = rec.Result
			pending = rec.Pending
			fmt.Fprintf(log, "resuming: %d records covered, %d queries spent previously\n",
				resume.CoveredCount, resume.QueriesIssued)
		}
	}

	// TotalBudget: the budget is the job's lifetime allowance — what the
	// recovered checkpoint already settled comes off the top, and a
	// non-positive remainder must never reach the crawl loop (Budget <= 0
	// means unlimited there).
	budget := req.Budget
	if req.TotalBudget && outcome.Recovered != nil {
		budget -= outcome.Recovered.Charged
		if budget < 0 {
			budget = 0
		}
	}

	// A worker pool without a batch to chew through is idle: default the
	// selection batch to the worker count so Workers alone overlaps
	// round-trips.
	batch := req.Batch
	if batch == 0 {
		batch = req.Workers
	}
	// Graceful degradation defaults: with faults on, failed queries are
	// retried a few times then forfeited, and a circuit breaker holds
	// selection while the interface is down.
	maxAttempts := req.MaxAttempts
	anyFedFaults := federate.AnyFaults(fedSpecs)
	if maxAttempts == 0 && (req.Faults != "" || anyFedFaults) {
		maxAttempts = 3
	}
	breakerN := req.Breaker
	if breakerN < 0 {
		breakerN = 0
		if req.Faults != "" {
			breakerN = 5
		}
	}
	var brk *deepweb.Breaker
	if breakerN > 0 {
		brk = deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: breakerN}).WithObs(o)
	}
	cfg := crawler.SmartConfig{
		Resume:        resume,
		ResumePending: pending,
		BatchSize:     batch,
		Concurrency:   req.Workers,
		Shards:        req.Shards,
		MaxAttempts:   maxAttempts,
		Breaker:       brk,
		Context:       req.Context,
		Deadline:      req.Deadline,
		QueryTimeout:  req.QueryTimeout,
		RetryBudget:   req.RetryBudget,
	}
	if env.Corpus != nil {
		// Pool generation reuses the cache's dictionary instead of
		// re-scanning the table; with PoolSample set it mines a reservoir
		// sample and recounts supports exactly against the mapped index.
		cfg.PoolConfig.Dict = env.Corpus.Dict
		if req.PoolSample > 0 {
			cfg.PoolConfig.SampleSize = req.PoolSample
			cfg.PoolConfig.SampleSeed = req.Seed
			cfg.PoolConfig.Count = env.Corpus.Inv.Count
		}
	}
	if req.Health {
		h := crawler.DefaultHealthConfig()
		cfg.Health = &h
	}
	if sink != nil {
		cfg.Durability = sink
	}

	var (
		c   crawler.Crawler
		err error
	)
	switch {
	case req.TotalBudget && budget == 0 && resume != nil:
		// Lifetime budget fully settled: nothing to crawl, the recovered
		// state is the final state. Skip the crawler build (its durability
		// replay expects rounds to re-issue) and re-derive the outputs.
		c = doneCrawler{res: resume}
	case fed != nil:
		cfg.OnlineCalibration = req.Strategy == "online"
		for _, h := range fed.Ifaces {
			if h.Sample != nil {
				cfg.AlphaFallback = true
				break
			}
		}
		c, err = crawler.NewFederatedSmart(env, cfg, fed.Ifaces)
	default:
		c, err = buildSingle(req.Strategy, env, smp, cfg, req.Seed)
	}
	if err != nil {
		if sink != nil {
			sink.Close(nil)
		}
		return nil, err
	}

	// Pick enrichment columns.
	var cols []int
	for _, name := range req.EnrichColumns {
		idx := -1
		for j, s := range hiddenSchema {
			if strings.EqualFold(strings.TrimSpace(name), s) {
				idx = j
				break
			}
		}
		if idx == -1 {
			if sink != nil {
				sink.Close(nil)
			}
			return nil, fmt.Errorf("engine: hidden schema %v has no column %q", hiddenSchema, name)
		}
		cols = append(cols, idx)
	}
	opts := enrich.Options{Columns: cols}
	if len(cols) == 0 {
		if hiddenTable == nil {
			if sink != nil {
				sink.Close(nil)
			}
			return nil, errors.New("engine: enrichment columns are required with a remote interface (no hidden schema to auto-map)")
		}
		mapping := relational.MatchSchemas(local, hiddenTable, tk)
		opts.Mapping = &mapping
	}

	stopEnrich := o.Phase("crawl_and_enrich")
	report, res, err := enrich.Enrich(local, hiddenSchema, c, budget, opts)
	stopEnrich()
	if err != nil {
		if sink != nil {
			// A failed crawl has no final state to compact, but the
			// journal on disk still holds everything absorbed so far —
			// close without truncating it.
			sink.Close(nil)
		}
		return nil, err
	}
	fmt.Fprintf(log, "crawl: %d queries issued, %d/%d records enriched (%.1f%%)\n",
		report.QueriesIssued, report.Enriched, local.Len(), 100*report.Coverage)
	if res.Resilience != nil {
		fmt.Fprintln(log, res.Resilience.String())
	}
	if sink != nil {
		if err := sink.Close(res); err != nil {
			return nil, err
		}
		fmt.Fprintf(log, "checkpoint written to %s\n", req.Checkpoint)
	}
	if req.Context != nil && req.Context.Err() != nil {
		outcome.Interrupted = true
	}
	outcome.Report = report
	outcome.Result = res
	return outcome, nil
}

// buildSingle constructs the single-interface crawler for the strategy,
// mirroring the facade's NewSmartCrawler estimator selection.
func buildSingle(strategy string, env *crawler.Env, smp *sample.Sample, cfg crawler.SmartConfig, seed uint64) (crawler.Crawler, error) {
	switch strategy {
	case "smart":
		cfg.Sample = smp
		if smp != nil {
			cfg.AlphaFallback = true
			cfg.Estimator = estimator.Biased{}
		}
		return crawler.NewSmart(env, cfg)
	case "simple":
		return crawler.NewSmart(env, cfg)
	case "online":
		cfg.OnlineCalibration = true
		return crawler.NewSmart(env, cfg)
	case "naive":
		return crawler.NewNaive(env, nil, seed)
	case "full":
		return crawler.NewFull(env, smp)
	}
	return nil, fmt.Errorf("engine: unknown strategy %q", strategy)
}
