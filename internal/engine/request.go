package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/enrich"
	"smartcrawl/internal/federate"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// Request describes one enrichment crawl — the engine-level form of the
// smartcrawl CLI flags and of a crawld job spec. Exactly one of Hidden,
// URL, and Interfaces selects the search interface.
type Request struct {
	// Local is the table to enrich; it is mutated in place by Run.
	Local *relational.Table
	// Hidden is a CSV/JSONL path served through the in-process simulator.
	Hidden string
	// URL is a hiddenserver base URL (remote interface).
	URL string
	// Interfaces is a federated interface spec (federate.ParseSpecs
	// grammar); it replaces Hidden/URL.
	Interfaces string

	// Budget is the query budget. With TotalBudget set it is the
	// lifetime budget of the job: queries already charged per the
	// recovered checkpoint are subtracted before crawling, and a fully
	// spent job re-runs as a no-op that just re-derives its outputs.
	// Without TotalBudget it is this session's budget on top of whatever
	// a resumed checkpoint already spent (the CLI semantics).
	Budget      int
	TotalBudget bool

	K            int     // top-k limit (simulated interface)
	RankColumn   int     // ranking column (simulated); negative = hash
	Theta        float64 // Bernoulli sampling ratio (simulated)
	SampleTarget int     // keyword-sample size target (remote)
	Strategy     string  // smart | simple | online | naive | full
	Fuzzy        float64 // Jaccard threshold; 0 = exact matching
	// EnrichColumns names the hidden columns to append; empty auto-maps
	// every unclaimed hidden column (requires a schema source).
	EnrichColumns []string

	Checkpoint string // checkpoint path; empty disables durability
	WAL        string // journal path (requires Checkpoint)
	Autosave   int    // compaction cadence in absorbed steps
	WALSync    string // journal fsync policy (durable.Sync*)

	Workers int    // crawl pipeline worker-pool size
	Batch   int    // queries selected per round; 0 defaults to Workers
	Seed    uint64 // sampling / baseline seed

	// CorpusCache, when set, is the path of the on-disk corpus cache for
	// Local (dictionary + block-compressed inverted index, docs/DESIGN.md
	// "Out-of-core corpus"). An existing cache is verified and
	// memory-mapped; a missing one is built first by streaming Local
	// through the bounded-memory ingester. Selection then resolves q(D)
	// through the mapped index instead of building one on the heap —
	// results are byte-identical to the in-memory path.
	CorpusCache string
	// Shards partitions record-side selection state across this many
	// shards processed in parallel during batch removal — a wall-clock
	// knob for large local tables. Results are byte-identical at any
	// value; 0 or 1 keeps sequential removal.
	Shards int
	// PoolSample, when > 0, mines the query pool over a reservoir sample
	// of this many records (seeded by Seed) with every candidate's
	// support recounted exactly against the corpus index, instead of
	// running FP-Growth over the full table. Requires CorpusCache (the
	// recount runs against its index).
	PoolSample int

	Rate    float64 // client-side polite rate, queries/sec; 0 unpaced
	Burst   int     // token-bucket burst (with Rate)
	Retries int     // transient-failure retries per query

	Faults      string // fault-injection spec; empty disables
	FaultSeed   uint64 // fault schedule seed
	MaxAttempts int    // requeue ceiling; 0 = auto (3 with faults)
	// Breaker is the circuit-breaker consecutive-failure threshold;
	// negative = auto (5 with faults, else off), 0 = off.
	Breaker int

	// Deadline, when positive, is the end-to-end wall-clock budget of the
	// crawl: selection stops once it expires, in-flight queries fail fast,
	// and interrupted queries are forfeited with their budget refunded.
	Deadline time.Duration
	// QueryTimeout, when positive, bounds each dispatched search attempt
	// (retries included) independently of the crawl deadline.
	QueryTimeout time.Duration
	// RetryBudget, when positive, caps requeues at this ratio of
	// dispatches (a Finagle-style retry token bucket): a failing
	// interface cannot amplify load via retry storms.
	RetryBudget float64
	// Health enables per-interface health scoring in federated crawls:
	// allocation bids are scaled by an EWMA success score and degraded
	// interfaces receive periodic recovery probes.
	Health bool

	// Context, when non-nil, lets the crawl be interrupted gracefully:
	// selection stops at the next round boundary, in-flight queries
	// drain, and the partial (resumable) state is checkpointed.
	Context context.Context
	// Obs, when non-nil, observes the whole run. Nil disables
	// instrumentation.
	Obs *obs.Obs
	// Log receives human-readable progress lines (the CLI passes
	// stderr); nil discards them.
	Log io.Writer
	// OnStep, when non-nil, is invoked after every issued query with the
	// recorded step — the progress feed of a streaming job. It runs on
	// the crawl goroutine; keep it fast.
	OnStep func(crawler.Step)
	// CrashPoint arms deterministic crash injection in the durability
	// path (durable.ParseCrashPoint); empty disables. Both cmd surfaces
	// wire it to the SMARTCRAWL_CRASH_AT environment variable.
	CrashPoint string
}

// Defaults returns a Request carrying the smartcrawl CLI flag defaults; a
// wire job spec overrides the fields it sets.
func Defaults() Request {
	return Request{
		Budget:       100,
		K:            50,
		RankColumn:   -1,
		Theta:        0.005,
		SampleTarget: 200,
		Strategy:     "smart",
		Autosave:     durable.DefaultEvery,
		WALSync:      durable.SyncCompact,
		Workers:      1,
		Seed:         42,
		Burst:        10,
		Retries:      5,
		FaultSeed:    1,
		Breaker:      -1,
	}
}

// Outcome is the result of a completed Run.
type Outcome struct {
	// Report summarizes the enrichment; Result is the full crawl trace.
	Report *enrich.Report
	Result *crawler.Result
	// Local is the enriched table (the Request's table, mutated).
	Local *relational.Table
	// HiddenSchema is the hidden-side schema the enrichment used.
	HiddenSchema []string
	// Recovered reports what the durability layer replayed at open, nil
	// without a checkpoint.
	Recovered *durable.Recovered
	// Interrupted reports that the Request context was cancelled: the
	// result is partial and — with a checkpoint — resumable.
	Interrupted bool
}

// Validate checks the request for the misuse errors the CLI reports
// before touching the filesystem.
func (req *Request) Validate() error {
	if req.Local == nil || req.Local.Len() == 0 {
		return errors.New("engine: empty local table")
	}
	if req.Interfaces != "" {
		if req.Hidden != "" || req.URL != "" {
			return errors.New("engine: Interfaces replaces Hidden/URL")
		}
		if req.Faults != "" || req.Rate > 0 || req.Breaker >= 0 {
			return errors.New("engine: federated crawls take faults/rate/breaker per interface (inside the spec)")
		}
		if _, err := federate.ParseSpecs(req.Interfaces); err != nil {
			return err
		}
	} else if (req.Hidden == "") == (req.URL == "") {
		return errors.New("engine: exactly one of Hidden and URL is required")
	}
	switch req.Strategy {
	case "smart", "simple", "online":
	case "naive", "full":
		if req.Checkpoint != "" {
			return errors.New("engine: checkpoints support the smart/simple/online strategies")
		}
		if req.Interfaces != "" {
			return errors.New("engine: federation supports the smart/simple/online strategies")
		}
	default:
		return fmt.Errorf("engine: unknown strategy %q", req.Strategy)
	}
	if req.Workers < 1 {
		return errors.New("engine: Workers must be >= 1")
	}
	if req.Batch < 0 {
		return errors.New("engine: Batch must be >= 0")
	}
	if req.Budget < 0 {
		return errors.New("engine: Budget must be >= 0")
	}
	if req.Retries < 0 {
		return errors.New("engine: Retries must be >= 0")
	}
	if req.Rate < 0 {
		return errors.New("engine: Rate must be >= 0")
	}
	if req.Deadline < 0 {
		return errors.New("engine: Deadline must be >= 0")
	}
	if req.QueryTimeout < 0 {
		return errors.New("engine: QueryTimeout must be >= 0")
	}
	if req.RetryBudget < 0 {
		return errors.New("engine: RetryBudget must be >= 0")
	}
	if req.Health && req.Interfaces == "" {
		return errors.New("engine: Health scoring requires a federated crawl (Interfaces)")
	}
	if req.Shards < 0 {
		return errors.New("engine: Shards must be >= 0")
	}
	if req.PoolSample < 0 {
		return errors.New("engine: PoolSample must be >= 0")
	}
	if req.PoolSample > 0 && req.CorpusCache == "" {
		return errors.New("engine: PoolSample requires CorpusCache (exact supports are recounted against its index)")
	}
	if req.WAL != "" && req.Checkpoint == "" {
		return errors.New("engine: WAL requires Checkpoint (the journal compacts into it)")
	}
	switch req.WALSync {
	case "", durable.SyncAlways, durable.SyncRound, durable.SyncCompact:
	default:
		return fmt.Errorf("engine: WALSync must be %s, %s, or %s",
			durable.SyncAlways, durable.SyncRound, durable.SyncCompact)
	}
	if req.Autosave < 0 {
		return errors.New("engine: Autosave must be >= 0")
	}
	if req.Faults != "" {
		if _, err := deepweb.ParseFaultProfile(req.Faults); err != nil {
			return err
		}
	}
	if req.TotalBudget && req.Checkpoint == "" {
		return errors.New("engine: TotalBudget requires Checkpoint (charged queries are recovered from it)")
	}
	return nil
}
