package engine

import (
	"fmt"
	"io"
	"os"
	"strings"

	"smartcrawl/internal/relational"
)

// LoadTable loads a CSV table or, for .jsonl paths, JSON Lines.
func LoadTable(path, name string) (*relational.Table, error) {
	return readTable(path, name)
}

func readTable(path, name string) (*relational.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var t *relational.Table
	if strings.HasSuffix(path, ".jsonl") {
		t, err = relational.ReadJSONL(name, f)
	} else {
		t, err = relational.ReadCSV(name, f)
	}
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return t, nil
}

// WriteTable writes t as CSV, or as JSON Lines when jsonl is set.
func WriteTable(w io.Writer, t *relational.Table, jsonl bool) error {
	if jsonl {
		return t.WriteJSONL(w)
	}
	return t.WriteCSV(w)
}
