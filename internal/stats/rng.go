// Package stats provides the statistical substrate used across the
// reproduction: a deterministic random-number generator so every experiment
// is replayable from a seed, a bounded Zipf sampler for synthetic vocabulary
// generation, hypergeometric distributions (the paper's "balls" analysis in
// §5.3, including Fisher's noncentral variant for the ω ≠ 1 discussion), and
// sampling utilities (permutations, reservoir sampling, Bernoulli subsets).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is not safe for concurrent use; give each goroutine its
// own RNG (use Split).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams on every platform.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r's stream. Useful for giving
// sub-components their own deterministic randomness without coupling their
// consumption patterns.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but
	// modulo bias for n ≪ 2^64 is negligible here and simplicity wins.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns m distinct indices drawn uniformly from
// [0, n). It panics if m > n. Runs in O(n) time using a partial
// Fisher–Yates shuffle.
func (r *RNG) SampleWithoutReplacement(n, m int) []int {
	if m > n {
		panic("stats: sample size exceeds population")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m:m]
}

// Bernoulli returns the indices of [0, n) that pass independent coin flips
// with probability p — the sampler used to build simulated hidden-database
// samples with a known ratio θ.
func (r *RNG) Bernoulli(n int, p float64) []int {
	var out []int
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			out = append(out, i)
		}
	}
	return out
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the twin is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
