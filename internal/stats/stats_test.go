package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(4)
	got := r.SampleWithoutReplacement(100, 30)
	if len(got) != 30 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad sample element %d", v)
		}
		seen[v] = true
	}
	// Uniformity: index 0 should be selected ≈ 30% of the time.
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(10, 3) {
			if v == 0 {
				hits++
			}
		}
	}
	if p := float64(hits) / trials; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("selection probability = %v, want ≈0.3", p)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when m > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestBernoulliRatio(t *testing.T) {
	r := NewRNG(5)
	got := r.Bernoulli(100000, 0.25)
	ratio := float64(len(got)) / 100000
	if math.Abs(ratio-0.25) > 0.01 {
		t.Fatalf("Bernoulli ratio = %v, want ≈0.25", ratio)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("Bernoulli indices must be strictly increasing")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(6)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf counts not decreasing: %d %d %d",
			counts[0], counts[10], counts[100])
	}
	// Rank-0 empirical probability should track the analytic one.
	p0 := z.Prob(0)
	emp := float64(counts[0]) / n
	if math.Abs(p0-emp) > 0.01 {
		t.Fatalf("rank-0 prob: analytic %v vs empirical %v", p0, emp)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewRNG(7), 1.3, 500)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(NewRNG(1), -1, 10)
}

func TestHypergeometricMeanEquation6(t *testing.T) {
	// The paper's running illustration (Figure 2): N=10 balls, top-4
	// black, 5 draws → E[X] = 5·4/10 = 2.
	h := NewHypergeometric(10, 4, 5)
	if got := h.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestHypergeometricPMFSums(t *testing.T) {
	h := NewHypergeometric(50, 12, 20)
	sum, mean := 0.0, 0.0
	for i := 0; i <= 20; i++ {
		p := h.PMF(i)
		if p < 0 {
			t.Fatalf("negative PMF at %d", i)
		}
		sum += p
		mean += float64(i) * p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if math.Abs(mean-h.Mean()) > 1e-9 {
		t.Fatalf("PMF mean %v vs analytic %v", mean, h.Mean())
	}
}

func TestHypergeometricSampleMatchesMean(t *testing.T) {
	r := NewRNG(8)
	h := NewHypergeometric(100, 30, 40)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += h.Sample(r)
	}
	emp := float64(sum) / n
	if math.Abs(emp-h.Mean()) > 0.05 {
		t.Fatalf("empirical mean %v vs analytic %v", emp, h.Mean())
	}
}

func TestHypergeometricEdgeCases(t *testing.T) {
	if got := NewHypergeometric(0, 0, 0).Mean(); got != 0 {
		t.Fatalf("empty population mean = %v", got)
	}
	h := NewHypergeometric(10, 10, 4) // all black
	if got := h.PMF(4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("all-black PMF(4) = %v, want 1", got)
	}
	if got := h.CDF(3); got > 1e-12 {
		t.Fatalf("all-black CDF(3) = %v, want 0", got)
	}
}

func TestHypergeometricPanicsOnBadParams(t *testing.T) {
	for _, c := range [][3]int{{5, 6, 2}, {5, 2, 6}, {-1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", c)
				}
			}()
			NewHypergeometric(c[0], c[1], c[2])
		}()
	}
}

func TestFisherNoncentralMeanCentralCase(t *testing.T) {
	// ω = 1 must agree with the central hypergeometric mean.
	cases := [][3]int{{100, 20, 30}, {10, 4, 5}, {1000, 100, 50}}
	for _, c := range cases {
		want := NewHypergeometric(c[0], c[1], c[2]).Mean()
		got := FisherNoncentralMean(c[0], c[1], c[2], 1.0)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("Fisher(ω=1) N=%d K=%d n=%d: %v, want %v",
				c[0], c[1], c[2], got, want)
		}
	}
}

func TestFisherNoncentralMeanMonotoneInOmega(t *testing.T) {
	prev := -1.0
	for _, omega := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		m := FisherNoncentralMean(100, 20, 30, omega)
		if m <= prev {
			t.Fatalf("mean not increasing in ω: %v after %v", m, prev)
		}
		prev = m
	}
}

func TestFisherNoncentralMeanBounds(t *testing.T) {
	f := func(a, b, c uint8, wRaw uint8) bool {
		N := int(a%50) + 1
		K := int(b) % (N + 1)
		n := int(c) % (N + 1)
		omega := 0.1 + float64(wRaw)/32.0
		m := FisherNoncentralMean(N, K, n, omega)
		lo := math.Max(0, float64(n+K-N))
		hi := math.Min(float64(n), float64(K))
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(10)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(NewRNG(1), 1.0, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}

// TestSplitStreamsSafeUnderParallelism pins the concurrency contract stated
// on RNG: derive one stream per worker with Split BEFORE fanning out, and
// the workers may then draw concurrently with no synchronization, each
// reproducing exactly the sequence a serial consumer of that stream would
// see. The parallel subtests run under -race, so any accidental sharing of
// generator state is detected, and the expected sequences are derived from
// a twin parent up front, so cross-stream contamination shows up as a value
// mismatch.
func TestSplitStreamsSafeUnderParallelism(t *testing.T) {
	const workers = 8
	const draws = 4096

	// Serial derivation phase: one stream per worker plus, from a twin
	// parent seeded identically, the reference sequence each must produce.
	parent, twin := NewRNG(2024), NewRNG(2024)
	streams := make([]*RNG, workers)
	want := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		streams[w] = parent.Split()
		ref := twin.Split()
		want[w] = make([]uint64, draws)
		for i := range want[w] {
			want[w][i] = ref.Uint64()
		}
	}
	// Independence: no two streams may start identically.
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			if want[i][0] == want[j][0] && want[i][1] == want[j][1] {
				t.Fatalf("streams %d and %d coincide", i, j)
			}
		}
	}

	// Fan-out phase: every worker consumes its own stream concurrently.
	for w := 0; w < workers; w++ {
		w := w
		t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < draws; i++ {
				if got := streams[w].Uint64(); got != want[w][i] {
					t.Fatalf("draw %d = %d, want %d (stream corrupted)", i, got, want[w][i])
				}
			}
		})
	}
}
