package stats

import "math"

// Zipf samples ranks from a bounded Zipf (zeta) distribution:
// P(rank = i) ∝ 1/(i+1)^s for i in [0, n). Natural-language word
// frequencies are approximately Zipfian, which is the property of the DBLP
// corpus that the paper's query-sharing idea exploits — a few head tokens
// ("data", "query", "house") appear in many records. The synthetic dataset
// generators draw vocabulary through this sampler so frequent-itemset
// structure in the generated local databases mirrors real text.
//
// Sampling is by inverse CDF over a precomputed cumulative table: O(n)
// setup, O(log n) per draw, exact (no rejection), deterministic given the
// RNG.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a sampler over n ranks with exponent s > 0. It panics on
// invalid parameters.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 0 || math.IsNaN(s) {
		panic("stats: invalid Zipf parameters")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, N) with Zipfian probability (rank 0 most
// likely).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns P(rank = i).
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
