package stats

import "math"

// Hypergeometric is the distribution of the number of "black balls" drawn
// when sampling n balls without replacement from a population of N balls of
// which K are black. Section 5.3 of the paper models the overlap between a
// query's local matches and its top-k result exactly this way: the list
// q(H) has N = |q(H)| balls, the top-k records are the K = k black balls,
// and the n = |q(D) ∩ q(H)| local matches are the draws.
type Hypergeometric struct {
	N int // population size
	K int // number of black balls (successes) in the population
	n int // number of draws
}

// NewHypergeometric constructs the distribution. It panics if the
// parameters are inconsistent (K > N or n > N or any negative).
func NewHypergeometric(N, K, n int) Hypergeometric {
	if N < 0 || K < 0 || n < 0 || K > N || n > N {
		panic("stats: invalid hypergeometric parameters")
	}
	return Hypergeometric{N: N, K: K, n: n}
}

// Mean returns E[X] = n·K/N — Equation 6 of the paper, the expected number
// of covered records that survive the top-k cut.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.n) * float64(h.K) / float64(h.N)
}

// Variance returns Var[X] = n·(K/N)·(1−K/N)·(N−n)/(N−1).
func (h Hypergeometric) Variance() float64 {
	if h.N <= 1 {
		return 0
	}
	p := float64(h.K) / float64(h.N)
	return float64(h.n) * p * (1 - p) *
		float64(h.N-h.n) / float64(h.N-1)
}

// PMF returns P(X = i) = C(K,i)·C(N−K,n−i)/C(N,n), computed in log space
// to avoid overflow for large populations.
func (h Hypergeometric) PMF(i int) float64 {
	if i < 0 || i > h.n || i > h.K || h.n-i > h.N-h.K {
		return 0
	}
	lp := logChoose(h.K, i) + logChoose(h.N-h.K, h.n-i) - logChoose(h.N, h.n)
	return math.Exp(lp)
}

// CDF returns P(X ≤ i).
func (h Hypergeometric) CDF(i int) float64 {
	if i < 0 {
		return 0
	}
	sum := 0.0
	for j := 0; j <= i && j <= h.n; j++ {
		sum += h.PMF(j)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Sample draws one variate by sequential ball-by-ball simulation; O(n) per
// draw, exact.
func (h Hypergeometric) Sample(rng *RNG) int {
	black, total, drawn := h.K, h.N, 0
	for d := 0; d < h.n; d++ {
		if total == 0 {
			break
		}
		if rng.Float64() < float64(black)/float64(total) {
			drawn++
			black--
		}
		total--
	}
	return drawn
}

// FisherNoncentralMean approximates the mean of Fisher's noncentral
// hypergeometric distribution with odds ratio ω: the draw probability of
// each black ball is ω times that of each white ball. The paper (§5.3)
// notes that when the top-k records are more likely to match the local
// table than the tail (ω > 1), benefits follow this distribution; it then
// assumes ω = 1 because users cannot supply ω. We implement the mean so the
// ω-sensitivity ablation can quantify what that assumption costs.
//
// The approximation solves the standard fixed-point equation
// μ/(K−μ) · (n−μ)/(N−K−n+μ) = ω for μ by bisection; it is exact in the
// central case ω = 1 and accurate to the solver tolerance otherwise.
func FisherNoncentralMean(N, K, n int, omega float64) float64 {
	if N <= 0 || n == 0 || K == 0 {
		return 0
	}
	if omega <= 0 {
		panic("stats: odds ratio must be positive")
	}
	// Feasible support for the mean.
	lo := math.Max(0, float64(n+K-N))
	hi := math.Min(float64(n), float64(K))
	if hi-lo < 1e-12 {
		return lo
	}
	// f(μ) is monotonically increasing in μ on (lo, hi); find f(μ) = ω.
	f := func(mu float64) float64 {
		return (mu / (float64(K) - mu)) *
			((float64(N-K-n) + mu) / (float64(n) - mu))
	}
	a, b := lo+1e-12, hi-1e-12
	if f(a) >= omega {
		return lo
	}
	if f(b) <= omega {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (a + b) / 2
		if f(mid) < omega {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2
}

// logChoose returns log C(n, k) using log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
