package trace

import (
	"math"
	"sort"
	"strings"
)

// Summary condenses one trace into the numbers an operator asks first:
// how much was crawled, how much it covered, how degraded the session
// was, and how well the estimator predicted benefit.
type Summary struct {
	Events       int            // total parsed events
	ByType       map[string]int // event counts per type tag
	Queries      int            // issued queries
	Solid        int            // queries with |result| < k
	Covered      int            // final cumulative coverage
	Rounds       int            // selection rounds
	FinalBudget  int            // budget_left of the last round (-1 = unlimited, 0 rounds ⇒ 0)
	HasBudget    bool           // a round event was seen
	Ifaces       []string       // interface names on tagged query/alloc events, sorted
	Retries      int
	RateLimited  int
	Faults       int
	FaultClasses map[string]int
	Requeues     int
	Forfeits     int
	BreakerOpens int // transitions into open
	Checkpoints  int
	Recoveries   int
	WalAppends   int
	EstSum       float64 // sum of estimated benefits over queries
	RealSum      float64 // sum of realized new coverage over queries
	AbsErrSum    float64 // sum of |est − realized|
	WallMs       int64   // t_ms span from first to last event
	PhaseMs      map[string]int64
	Unknown      int // events with an undocumented type tag
}

// MAE returns the mean absolute estimate error per query, or 0 with no
// queries.
func (s *Summary) MAE() float64 {
	if s.Queries == 0 {
		return 0
	}
	return s.AbsErrSum / float64(s.Queries)
}

// Summarize computes a Summary in one pass.
func Summarize(events []Event) Summary {
	s := Summary{
		ByType:       map[string]int{},
		FaultClasses: map[string]int{},
		PhaseMs:      map[string]int64{},
	}
	ifaces := map[string]bool{}
	for i := range events {
		e := &events[i]
		s.Events++
		s.ByType[e.Type]++
		switch d := e.Data.(type) {
		case *Query:
			s.Queries++
			if d.Solid {
				s.Solid++
			}
			if d.CumCovered > s.Covered {
				s.Covered = d.CumCovered
			}
			if d.Iface != "" {
				ifaces[d.Iface] = true
			}
			s.EstSum += d.EstBenefit
			s.RealSum += float64(d.NewCovered)
			s.AbsErrSum += math.Abs(d.EstBenefit - float64(d.NewCovered))
		case *Round:
			s.Rounds++
			s.FinalBudget = d.BudgetLeft
			s.HasBudget = true
		case *Alloc:
			if d.Iface != "" {
				ifaces[d.Iface] = true
			}
		case *Retry:
			s.Retries++
		case *RateLimit:
			s.RateLimited++
		case *Fault:
			s.Faults++
			s.FaultClasses[d.Class]++
		case *Requeue:
			s.Requeues++
		case *Forfeit:
			s.Forfeits++
		case *Breaker:
			if d.To == "open" {
				s.BreakerOpens++
			}
		case *Checkpoint:
			s.Checkpoints++
		case *Recovered:
			s.Recoveries++
		case *WalAppend:
			s.WalAppends++
		case *Phase:
			s.PhaseMs[d.Phase] += d.DurMs
		default:
			s.Unknown++
		}
	}
	for name := range ifaces {
		s.Ifaces = append(s.Ifaces, name)
	}
	sortStrings(s.Ifaces)
	if len(events) > 0 {
		s.WallMs = events[len(events)-1].TMs - events[0].TMs
	}
	return s
}

// RoundStat is one selection round reconstructed from the trace: the
// round marker plus every event up to (not including) the next marker.
// Round 0 collects pre-crawl events (phases, recovery) when the trace
// starts before the first marker.
type RoundStat struct {
	Index      int // 1-based; 0 = events before the first round marker
	Size       int // dispatch size of the round marker (0 for round 0)
	BudgetLeft int // budget before the round (-1 unlimited, 0 for round 0)
	Queries    int // queries absorbed in the round
	NewCovered int // coverage gained in the round
	CumEnd     int // cumulative coverage at round end
	Solid      int
	Faults     int
	Requeues   int
	Forfeits   int
	Events     []*Event // every event of the round, in seq order
}

// Rounds groups a trace by its round markers.
func Rounds(events []Event) []RoundStat {
	rounds := []RoundStat{{Index: 0}}
	cur := &rounds[0]
	cum := 0
	for i := range events {
		e := &events[i]
		if r, ok := e.Data.(*Round); ok {
			rounds = append(rounds, RoundStat{
				Index: len(rounds), Size: r.Size, BudgetLeft: r.BudgetLeft, CumEnd: cum,
			})
			cur = &rounds[len(rounds)-1]
			cur.Events = append(cur.Events, e)
			continue
		}
		cur.Events = append(cur.Events, e)
		switch d := e.Data.(type) {
		case *Query:
			cur.Queries++
			cur.NewCovered += d.NewCovered
			if d.CumCovered > cum {
				cum = d.CumCovered
			}
			cur.CumEnd = cum
			if d.Solid {
				cur.Solid++
			}
		case *Fault:
			cur.Faults++
		case *Requeue:
			cur.Requeues++
		case *Forfeit:
			cur.Forfeits++
		}
	}
	// Drop an empty round 0 (traces that start directly at a marker).
	if len(rounds) > 1 && len(rounds[0].Events) == 0 {
		rounds = rounds[1:]
	}
	return rounds
}

// Filter selects events. Zero-valued fields match everything.
type Filter struct {
	Types    []string // event type tags; empty = all
	Iface    string   // query/alloc events of this interface only
	RoundMin int      // 1-based round range; 0 = open end
	RoundMax int
	QuerySub string // substring of the query text
}

// Apply returns the matching events in order. Round membership counts
// the round marker itself as part of its round; events before the first
// marker are round 0.
func (f Filter) Apply(events []Event) []Event {
	types := map[string]bool{}
	for _, t := range f.Types {
		types[t] = true
	}
	var out []Event
	round := 0
	for i := range events {
		e := &events[i]
		if _, ok := e.Data.(*Round); ok {
			round++
		}
		if len(types) > 0 && !types[e.Type] {
			continue
		}
		if f.RoundMin > 0 && round < f.RoundMin {
			continue
		}
		if f.RoundMax > 0 && round > f.RoundMax {
			continue
		}
		if f.Iface != "" {
			switch d := e.Data.(type) {
			case *Query:
				if d.Iface != f.Iface {
					continue
				}
			case *Alloc:
				if d.Iface != f.Iface {
					continue
				}
			default:
				continue
			}
		}
		if f.QuerySub != "" {
			q := ""
			switch d := e.Data.(type) {
			case *Query:
				q = d.Query
			case *Retry:
				q = d.Query
			case *RateLimit:
				q = d.Query
			case *Fault:
				q = d.Query
			case *Requeue:
				q = d.Query
			case *Forfeit:
				q = d.Query
			}
			if !strings.Contains(q, f.QuerySub) {
				continue
			}
		}
		out = append(out, *e)
	}
	return out
}

// TopBy selects the ranking criterion of Top.
type TopBy int

const (
	// ByRealized ranks queries by realized benefit (new records covered).
	ByRealized TopBy = iota
	// ByEstimateError ranks by |estimated − realized| benefit.
	ByEstimateError
)

// TopQuery is one ranked query.
type TopQuery struct {
	Seq      uint64
	Query    string
	Iface    string
	Est      float64
	Realized int
	AbsErr   float64
	Solid    bool
}

// Top ranks the trace's queries. Ties break by seq (earlier first) so
// the ranking is deterministic.
func Top(events []Event, by TopBy, n int) []TopQuery {
	var qs []TopQuery
	for i := range events {
		if d, ok := events[i].Data.(*Query); ok {
			qs = append(qs, TopQuery{
				Seq: events[i].Seq, Query: d.Query, Iface: d.Iface,
				Est: d.EstBenefit, Realized: d.NewCovered,
				AbsErr: math.Abs(d.EstBenefit - float64(d.NewCovered)),
				Solid:  d.Solid,
			})
		}
	}
	sort.SliceStable(qs, func(i, j int) bool {
		switch by {
		case ByEstimateError:
			if qs[i].AbsErr != qs[j].AbsErr {
				return qs[i].AbsErr > qs[j].AbsErr
			}
		default:
			if qs[i].Realized != qs[j].Realized {
				return qs[i].Realized > qs[j].Realized
			}
		}
		return qs[i].Seq < qs[j].Seq
	})
	if n > 0 && len(qs) > n {
		qs = qs[:n]
	}
	return qs
}

// RoundDelta is one round's coverage in each of two traces.
type RoundDelta struct {
	Round int
	CumA  int
	CumB  int
}

// DiffResult is the divergence report of two traces of the same
// (seeded) crawl — e.g. a clean run versus a fault-injected one.
type DiffResult struct {
	// FirstDiverge is the index (not seq) of the first event whose
	// canonical form differs, comparing position by position; -1 when one
	// trace is a prefix of the other or they are identical.
	FirstDiverge int
	// CanonicalA/B are the differing canonical forms at FirstDiverge
	// ("<end of trace>" past the shorter trace's end).
	CanonicalA, CanonicalB string
	// EventsA/B are the trace lengths.
	EventsA, EventsB int
	// Rounds holds per-round end-of-round cumulative coverage for both
	// traces, covering max(rounds(A), rounds(B)) entries.
	Rounds []RoundDelta
	// FirstRoundDiverge is the first 1-based round whose end-of-round
	// coverage differs; 0 when coverage never diverges.
	FirstRoundDiverge int
	// CoveredA/B are the final coverages.
	CoveredA, CoveredB int
}

// Identical reports byte-identical canonical event streams.
func (d *DiffResult) Identical() bool {
	return d.FirstDiverge < 0 && d.EventsA == d.EventsB
}

// Diff compares two traces: the first canonically differing event and
// the per-round coverage divergence.
func Diff(a, b []Event) DiffResult {
	res := DiffResult{FirstDiverge: -1, EventsA: len(a), EventsB: len(b)}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ca, cb := a[i].Canonical(), b[i].Canonical()
		if ca != cb {
			res.FirstDiverge = i
			res.CanonicalA, res.CanonicalB = ca, cb
			break
		}
	}
	if res.FirstDiverge < 0 && len(a) != len(b) {
		res.FirstDiverge = n
		res.CanonicalA, res.CanonicalB = "<end of trace>", "<end of trace>"
		if len(a) > n {
			res.CanonicalA = a[n].Canonical()
		}
		if len(b) > n {
			res.CanonicalB = b[n].Canonical()
		}
	}

	ra, rb := roundCoverage(a), roundCoverage(b)
	rounds := len(ra)
	if len(rb) > rounds {
		rounds = len(rb)
	}
	for i := 0; i < rounds; i++ {
		d := RoundDelta{Round: i + 1, CumA: atOr(ra, i), CumB: atOr(rb, i)}
		res.Rounds = append(res.Rounds, d)
		if res.FirstRoundDiverge == 0 && d.CumA != d.CumB {
			res.FirstRoundDiverge = d.Round
		}
	}
	res.CoveredA = Summarize(a).Covered
	res.CoveredB = Summarize(b).Covered
	return res
}

// roundCoverage returns end-of-round cumulative coverage per 1-based
// round (pre-round events excluded).
func roundCoverage(events []Event) []int {
	var out []int
	for _, r := range Rounds(events) {
		if r.Index == 0 {
			continue
		}
		out = append(out, r.CumEnd)
	}
	return out
}

func atOr(s []int, i int) int {
	if i < len(s) {
		return s[i]
	}
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}
