package trace

import (
	"strings"
	"testing"
)

// parseLines is a test helper over literal JSONL.
func parseLines(t *testing.T, lines ...string) []Event {
	t.Helper()
	events, err := Parse(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// twoRoundTrace is a minimal crawl: two rounds, three queries, one fault
// with a retry, a checkpoint.
func twoRoundTrace(t *testing.T) []Event {
	return parseLines(t,
		`{"seq":0,"t_ms":10,"type":"phase","phase":"sample","dur_ms":5}`,
		`{"seq":1,"t_ms":11,"type":"round","size":2,"budget_left":10}`,
		`{"seq":2,"t_ms":12,"type":"query","query":"alpha","est_benefit":4,"result_size":9,"new_covered":3,"cum_covered":3,"solid":true}`,
		`{"seq":3,"t_ms":13,"type":"fault","query":"beta","class":"timeout","attempt":1}`,
		`{"seq":4,"t_ms":14,"type":"retry","query":"beta","attempt":1,"wait_ms":10,"err":"http 504"}`,
		`{"seq":5,"t_ms":15,"type":"query","query":"beta","est_benefit":1,"result_size":10,"new_covered":4,"cum_covered":7}`,
		`{"seq":6,"t_ms":16,"type":"round","size":1,"budget_left":8}`,
		`{"seq":7,"t_ms":17,"type":"query","query":"gamma","est_benefit":2,"result_size":10,"new_covered":1,"cum_covered":8}`,
		`{"seq":8,"t_ms":18,"type":"checkpoint","path":"cp","covered":8,"queries":3}`,
	)
}

func TestSummarize(t *testing.T) {
	s := Summarize(twoRoundTrace(t))
	if s.Queries != 3 || s.Solid != 1 || s.Covered != 8 || s.Rounds != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.FinalBudget != 8 || !s.HasBudget {
		t.Errorf("final budget = %d", s.FinalBudget)
	}
	if s.Faults != 1 || s.FaultClasses["timeout"] != 1 || s.Retries != 1 || s.Checkpoints != 1 {
		t.Errorf("degradation counts = %+v", s)
	}
	if s.EstSum != 7 || s.RealSum != 8 {
		t.Errorf("benefit sums est=%v real=%v", s.EstSum, s.RealSum)
	}
	// |4-3| + |1-4| + |2-1| = 5 over 3 queries.
	if got := s.MAE(); got < 1.66 || got > 1.67 {
		t.Errorf("MAE = %v", got)
	}
	if s.WallMs != 8 {
		t.Errorf("wall span = %d", s.WallMs)
	}
	if s.PhaseMs["sample"] != 5 {
		t.Errorf("phase ms = %+v", s.PhaseMs)
	}
}

func TestRounds(t *testing.T) {
	rounds := Rounds(twoRoundTrace(t))
	if len(rounds) != 3 { // round 0 (phase) + two markers
		t.Fatalf("got %d rounds", len(rounds))
	}
	if rounds[0].Index != 0 || len(rounds[0].Events) != 1 {
		t.Errorf("round 0 = %+v", rounds[0])
	}
	r1 := rounds[1]
	if r1.Size != 2 || r1.BudgetLeft != 10 || r1.Queries != 2 || r1.NewCovered != 7 ||
		r1.CumEnd != 7 || r1.Solid != 1 || r1.Faults != 1 {
		t.Errorf("round 1 = %+v", r1)
	}
	r2 := rounds[2]
	if r2.Queries != 1 || r2.CumEnd != 8 || r2.NewCovered != 1 {
		t.Errorf("round 2 = %+v", r2)
	}
}

func TestFilter(t *testing.T) {
	events := twoRoundTrace(t)
	if got := (Filter{Types: []string{"query"}}).Apply(events); len(got) != 3 {
		t.Errorf("type filter: %d events", len(got))
	}
	if got := (Filter{RoundMin: 2}).Apply(events); len(got) != 3 {
		t.Errorf("round>=2 filter: %d events", len(got))
	}
	if got := (Filter{RoundMax: 1}).Apply(events); len(got) != 6 {
		t.Errorf("round<=1 filter: %d events", len(got))
	}
	got := (Filter{QuerySub: "beta"}).Apply(events)
	if len(got) != 3 { // fault, retry, query
		t.Errorf("query substring filter: %d events", len(got))
	}
	if got := (Filter{Types: []string{"query"}, RoundMin: 1, RoundMax: 1}).Apply(events); len(got) != 2 {
		t.Errorf("combined filter: %d events", len(got))
	}
}

func TestFilterIface(t *testing.T) {
	events := parseLines(t,
		`{"seq":0,"t_ms":1,"type":"alloc","iface":"acm","est_benefit":2,"budget_left":9}`,
		`{"seq":1,"t_ms":2,"type":"query","query":"a","est_benefit":2,"result_size":5,"new_covered":2,"cum_covered":2,"iface":"acm"}`,
		`{"seq":2,"t_ms":3,"type":"query","query":"b","est_benefit":1,"result_size":5,"new_covered":1,"cum_covered":3,"iface":"dblp"}`,
	)
	got := (Filter{Iface: "acm"}).Apply(events)
	if len(got) != 2 {
		t.Fatalf("iface filter: %d events", len(got))
	}
	s := Summarize(events)
	if len(s.Ifaces) != 2 || s.Ifaces[0] != "acm" || s.Ifaces[1] != "dblp" {
		t.Errorf("summary ifaces = %v", s.Ifaces)
	}
}

func TestTop(t *testing.T) {
	events := twoRoundTrace(t)
	byReal := Top(events, ByRealized, 2)
	if len(byReal) != 2 || byReal[0].Query != "beta" || byReal[1].Query != "alpha" {
		t.Errorf("top by realized = %+v", byReal)
	}
	byErr := Top(events, ByEstimateError, 0)
	if len(byErr) != 3 || byErr[0].Query != "beta" || byErr[0].AbsErr != 3 {
		t.Errorf("top by error = %+v", byErr)
	}
	// Deterministic tie-break by seq: gamma (err 1) behind alpha (err 1)?
	// alpha |4-3|=1 seq 2, gamma |2-1|=1 seq 7 — alpha first.
	if byErr[1].Query != "alpha" || byErr[2].Query != "gamma" {
		t.Errorf("tie-break order = %+v", byErr)
	}
}

func TestDiffIdentical(t *testing.T) {
	a, b := twoRoundTrace(t), twoRoundTrace(t)
	// Perturb only timestamps: canonical comparison must ignore them.
	for i := range b {
		b[i].TMs += 1000
	}
	d := Diff(a, b)
	if !d.Identical() || d.FirstRoundDiverge != 0 {
		t.Errorf("diff of time-shifted identical traces = %+v", d)
	}
}

func TestDiffDivergence(t *testing.T) {
	a := twoRoundTrace(t)
	b := parseLines(t,
		`{"seq":0,"t_ms":10,"type":"phase","phase":"sample","dur_ms":5}`,
		`{"seq":1,"t_ms":11,"type":"round","size":2,"budget_left":10}`,
		`{"seq":2,"t_ms":12,"type":"query","query":"alpha","est_benefit":4,"result_size":9,"new_covered":3,"cum_covered":3,"solid":true}`,
		// beta's fault escalates to a forfeit here: coverage diverges.
		`{"seq":3,"t_ms":13,"type":"fault","query":"beta","class":"timeout","attempt":1}`,
		`{"seq":4,"t_ms":14,"type":"forfeit","query":"beta","attempt":3,"err":"http 504"}`,
		`{"seq":5,"t_ms":16,"type":"round","size":1,"budget_left":8}`,
		`{"seq":6,"t_ms":17,"type":"query","query":"gamma","est_benefit":2,"result_size":10,"new_covered":1,"cum_covered":4,"cum":4}`,
	)
	d := Diff(a, b)
	if d.Identical() {
		t.Fatal("divergent traces diff as identical")
	}
	if d.FirstDiverge != 4 { // a: retry(beta), b: forfeit(beta)
		t.Errorf("first diverging event index = %d", d.FirstDiverge)
	}
	if !strings.HasPrefix(d.CanonicalA, "retry") || !strings.HasPrefix(d.CanonicalB, "forfeit") {
		t.Errorf("diverging canonicals %q / %q", d.CanonicalA, d.CanonicalB)
	}
	if d.FirstRoundDiverge != 1 {
		t.Errorf("first divergent round = %d", d.FirstRoundDiverge)
	}
	if d.CoveredA != 8 || d.CoveredB != 4 {
		t.Errorf("final coverage %d / %d", d.CoveredA, d.CoveredB)
	}
	if len(d.Rounds) != 2 || d.Rounds[0].CumA != 7 || d.Rounds[0].CumB != 3 {
		t.Errorf("round deltas = %+v", d.Rounds)
	}
}

func TestDiffPrefix(t *testing.T) {
	a := twoRoundTrace(t)
	d := Diff(a, a[:5])
	if d.Identical() || d.FirstDiverge != 5 || d.CanonicalB != "<end of trace>" {
		t.Errorf("prefix diff = %+v", d)
	}
}
