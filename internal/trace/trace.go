// Package trace loads JSONL session traces (docs/TRACE_SCHEMA.md) into
// typed records and computes the analyses behind cmd/tracetool: summary
// statistics, round-by-round replay, event filtering, top-query
// rankings, and two-trace divergence diffs.
//
// The parser accepts every event type the obs Tracer emits — a
// round-trip test drives all fifteen through the public obs hooks and
// a schema test diffs KnownTypes against the doc's headings, so the
// tracer, the schema document, and this parser cannot drift apart
// silently. Unknown event types survive parsing as Unknown records
// (forward compatibility: an old tracetool can still summarize a newer
// trace), and a torn final line — the normal tail of a crash-interrupted
// session — returns the events before it alongside the error.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"smartcrawl/internal/obs"
)

// Meta is the envelope every trace event carries.
type Meta struct {
	Seq  uint64 // per-session ordinal, dense from 0
	TMs  int64  // Unix milliseconds at emit
	Type string // event type tag
}

// Typed payloads, one per documented event type. Field names follow the
// schema's wire names.

// Query is one issued (and absorbed) query. Iface is empty on
// single-interface traces.
type Query struct {
	Query      string
	EstBenefit float64
	ResultSize int
	NewCovered int
	CumCovered int
	Solid      bool
	Iface      string
}

// Round is one selection-round dispatch.
type Round struct {
	Size       int
	BudgetLeft int // -1 = unlimited
}

// Alloc is one federated budget allocation.
type Alloc struct {
	Iface      string
	EstBenefit float64
	BudgetLeft int
}

// Retry is one backoff re-attempt.
type Retry struct {
	Query   string
	Attempt int
	WaitMs  int64
	Err     string
}

// RateLimit is one client-side token-bucket denial.
type RateLimit struct {
	Query  string
	Tokens float64
}

// Checkpoint is one checkpoint write.
type Checkpoint struct {
	Path    string
	Covered int
	Queries int
}

// Phase is one completed lifecycle phase.
type Phase struct {
	Phase string
	DurMs int64
}

// Fault is one injected fault.
type Fault struct {
	Query   string
	Class   string
	Attempt int
}

// Breaker is one circuit-breaker transition.
type Breaker struct {
	From     string
	To       string
	Failures int
}

// Requeue is one failed selection pushed back into the pool.
type Requeue struct {
	Query   string
	Attempt int
	Err     string
}

// Forfeit is one selection given up after its attempt cap.
type Forfeit struct {
	Query    string
	Attempts int
	Err      string
}

// DeadlineForfeit is the cause attribution accompanying a forfeit the
// crawl deadline caused (the generic Forfeit event for the same query is
// also present in the trace).
type DeadlineForfeit struct {
	Query   string
	Attempt int
}

// Health is one interface health-score movement, or a recovery-probe
// round when Probe is set.
type Health struct {
	Iface string
	Score float64
	Probe bool
}

// WalAppend is one record appended to the write-ahead journal.
type WalAppend struct {
	Kind   string
	WalSeq uint64
	Bytes  int
}

// Recovered is one crash recovery.
type Recovered struct {
	Path    string
	Records int
	Covered int
	Queries int
	WalSeq  uint64
	Torn    bool
}

// Event is one parsed trace line: the envelope, the original line (for
// lossless filtering), and the typed payload — a pointer to one of the
// payload structs above, or nil for an event type this parser does not
// know (Unknown reports that case).
type Event struct {
	Meta
	Raw  string
	Data any
}

// Unknown reports whether the event's type is outside the documented
// schema (the payload is then nil and only the envelope is usable).
func (e *Event) Unknown() bool { return e.Data == nil }

// KnownTypes returns the documented event types in schema order — the
// exact set docs/TRACE_SCHEMA.md has a section for.
func KnownTypes() []string {
	return []string{
		obs.EventQuery, obs.EventRound, obs.EventAlloc, obs.EventRetry,
		obs.EventRateLimit, obs.EventCheckpoint, obs.EventPhase,
		obs.EventFault, obs.EventBreaker, obs.EventRequeue,
		obs.EventForfeit, obs.EventDeadlineForfeit, obs.EventHealth,
		obs.EventWalAppend, obs.EventRecovered,
	}
}

// Parse decodes a JSONL trace. On a malformed line it returns the events
// parsed so far together with a line-numbered error — the torn tail of a
// crash-interrupted session is data, not a reason to drop the session.
func Parse(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var u obs.Event
		if err := json.Unmarshal([]byte(line), &u); err != nil {
			return events, fmt.Errorf("line %d: %w", lineNo, err)
		}
		events = append(events, project(u, line))
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return events, nil
}

// project maps the union wire struct onto the typed payload.
func project(u obs.Event, raw string) Event {
	e := Event{Meta: Meta{Seq: u.Seq, TMs: u.TMs, Type: u.Type}, Raw: raw}
	switch u.Type {
	case obs.EventQuery:
		e.Data = &Query{u.Query, u.EstBenefit, u.ResultSize, u.NewCovered, u.CumCovered, u.Solid, u.Iface}
	case obs.EventRound:
		e.Data = &Round{u.Size, u.BudgetLeft}
	case obs.EventAlloc:
		e.Data = &Alloc{u.Iface, u.EstBenefit, u.BudgetLeft}
	case obs.EventRetry:
		e.Data = &Retry{u.Query, u.Attempt, u.WaitMs, u.Err}
	case obs.EventRateLimit:
		e.Data = &RateLimit{u.Query, u.Tokens}
	case obs.EventCheckpoint:
		e.Data = &Checkpoint{u.Path, u.Covered, u.Queries}
	case obs.EventPhase:
		e.Data = &Phase{u.Phase, u.DurMs}
	case obs.EventFault:
		e.Data = &Fault{u.Query, u.Class, u.Attempt}
	case obs.EventBreaker:
		e.Data = &Breaker{u.From, u.To, u.Failures}
	case obs.EventRequeue:
		e.Data = &Requeue{u.Query, u.Attempt, u.Err}
	case obs.EventForfeit:
		e.Data = &Forfeit{u.Query, u.Attempt, u.Err}
	case obs.EventDeadlineForfeit:
		e.Data = &DeadlineForfeit{u.Query, u.Attempt}
	case obs.EventHealth:
		e.Data = &Health{u.Iface, u.Score, u.Probe}
	case obs.EventWalAppend:
		e.Data = &WalAppend{u.Kind, u.WalSeq, u.Bytes}
	case obs.EventRecovered:
		e.Data = &Recovered{u.Path, u.Records, u.Covered, u.Queries, u.WalSeq, u.Torn}
	}
	return e
}

// Canonical renders the event without its timestamp: two runs of the
// same seeded crawl differ only in t_ms (and phase durations), so diff
// compares canonical forms. Phase events canonicalize without dur_ms
// for the same reason.
func (e *Event) Canonical() string {
	var b strings.Builder
	b.WriteString(e.Type)
	switch d := e.Data.(type) {
	case *Query:
		fmt.Fprintf(&b, " q=%q est=%s k=%d new=%d cum=%d solid=%t",
			d.Query, ftoa(d.EstBenefit), d.ResultSize, d.NewCovered, d.CumCovered, d.Solid)
		if d.Iface != "" {
			fmt.Fprintf(&b, " iface=%s", d.Iface)
		}
	case *Round:
		fmt.Fprintf(&b, " size=%d budget_left=%d", d.Size, d.BudgetLeft)
	case *Alloc:
		fmt.Fprintf(&b, " iface=%s est=%s budget_left=%d", d.Iface, ftoa(d.EstBenefit), d.BudgetLeft)
	case *Retry:
		fmt.Fprintf(&b, " q=%q attempt=%d wait_ms=%d err=%q", d.Query, d.Attempt, d.WaitMs, d.Err)
	case *RateLimit:
		fmt.Fprintf(&b, " q=%q tokens=%s", d.Query, ftoa(d.Tokens))
	case *Checkpoint:
		fmt.Fprintf(&b, " path=%q covered=%d queries=%d", d.Path, d.Covered, d.Queries)
	case *Phase:
		fmt.Fprintf(&b, " phase=%s", d.Phase)
	case *Fault:
		fmt.Fprintf(&b, " q=%q class=%s attempt=%d", d.Query, d.Class, d.Attempt)
	case *Breaker:
		fmt.Fprintf(&b, " from=%s to=%s failures=%d", d.From, d.To, d.Failures)
	case *Requeue:
		fmt.Fprintf(&b, " q=%q attempt=%d err=%q", d.Query, d.Attempt, d.Err)
	case *Forfeit:
		fmt.Fprintf(&b, " q=%q attempts=%d err=%q", d.Query, d.Attempts, d.Err)
	case *DeadlineForfeit:
		fmt.Fprintf(&b, " q=%q attempt=%d", d.Query, d.Attempt)
	case *Health:
		fmt.Fprintf(&b, " iface=%s score=%s probe=%t", d.Iface, ftoa(d.Score), d.Probe)
	case *WalAppend:
		fmt.Fprintf(&b, " kind=%s wal_seq=%d bytes=%d", d.Kind, d.WalSeq, d.Bytes)
	case *Recovered:
		fmt.Fprintf(&b, " path=%q records=%d covered=%d queries=%d wal_seq=%d torn=%t",
			d.Path, d.Records, d.Covered, d.Queries, d.WalSeq, d.Torn)
	default:
		fmt.Fprintf(&b, " (unknown)")
	}
	return b.String()
}

// ftoa renders a float compactly and losslessly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortStrings is a tiny local alias so analyze.go reads cleanly.
func sortStrings(s []string) { sort.Strings(s) }
