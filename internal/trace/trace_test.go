package trace

import (
	"bytes"
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"smartcrawl/internal/obs"
)

// fakeClock advances a fixed step per call for byte-stable traces.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(3600, 0).UTC()
	return func() time.Time { t = t.Add(step); return t }
}

// emitAllTypes drives every documented event type through the public obs
// hooks — the producer side of the schema — and returns the trace bytes.
func emitAllTypes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	o := obs.New().WithClock(fakeClock(5 * time.Millisecond))
	tr := obs.NewTracer(&buf).WithClock(fakeClock(time.Millisecond))
	o.SetTracer(tr)

	done := o.Phase("crawl")
	o.Recovered("crawl.wal", 12, 17, 2, 9, true)
	o.Round(2, 95)
	o.Alloc("acm", 3.25, 90)
	o.Query("deep web crawling", 2.5, 40, 12, 12, false)
	o.QueryIface("acm", "query optimization", 1.5, 10, 5, 17, true)
	o.Retry("deep web crawling", 1, 10*time.Millisecond, errors.New("http 504"))
	o.RateLimitDenied("deep web crawling", 1.5)
	o.FaultInjected("deep web crawling", "http_500", 1)
	o.BreakerTransition("closed", "open", 3)
	o.Requeued("query optimization", 1, errors.New("breaker open"))
	o.Forfeited("query optimization", 3, errors.New("breaker open"))
	o.DeadlineForfeited("query optimization", 3)
	o.Health("acm", 0.8, true)
	o.WalAppend("query", 7, 64)
	o.Checkpoint("crawl.ckpt", 17, 2)
	done()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripAllTypes parses a trace carrying every documented event
// type: nothing may come back Unknown, and the typed payloads must carry
// the hook arguments through unchanged.
func TestRoundTripAllTypes(t *testing.T) {
	events, err := Parse(bytes.NewReader(emitAllTypes(t)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range events {
		e := &events[i]
		if e.Unknown() {
			t.Errorf("event %d (%s) parsed as unknown", i, e.Type)
		}
		if e.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Raw == "" {
			t.Errorf("event %d lost its raw line", i)
		}
		seen[e.Type] = true
	}
	for _, typ := range KnownTypes() {
		if !seen[typ] {
			t.Errorf("emitAllTypes produced no %s event", typ)
		}
	}

	// Spot-check payload fidelity across the union projection.
	if d, ok := events[0].Data.(*Recovered); !ok || d.Records != 12 || d.WalSeq != 9 || !d.Torn {
		t.Errorf("recovered payload = %+v", events[0].Data)
	}
	if d, ok := events[3].Data.(*Query); !ok || d.Query != "deep web crawling" ||
		d.EstBenefit != 2.5 || d.NewCovered != 12 || d.Iface != "" {
		t.Errorf("query payload = %+v", events[3].Data)
	}
	if d, ok := events[4].Data.(*Query); !ok || d.Iface != "acm" || !d.Solid || d.CumCovered != 17 {
		t.Errorf("tagged query payload = %+v", events[4].Data)
	}
	if d, ok := events[10].Data.(*Forfeit); !ok || d.Attempts != 3 || d.Err != "breaker open" {
		t.Errorf("forfeit payload = %+v", events[10].Data)
	}
	if d, ok := events[11].Data.(*DeadlineForfeit); !ok || d.Query != "query optimization" || d.Attempt != 3 {
		t.Errorf("deadline_forfeit payload = %+v", events[11].Data)
	}
	if d, ok := events[12].Data.(*Health); !ok || d.Iface != "acm" || d.Score != 0.8 || !d.Probe {
		t.Errorf("health payload = %+v", events[12].Data)
	}
}

// TestKnownTypesMatchSchemaDoc diffs KnownTypes against the `## \`type\“
// headings of docs/TRACE_SCHEMA.md, so the doc, the tracer, and this
// parser cannot drift apart silently.
func TestKnownTypesMatchSchemaDoc(t *testing.T) {
	doc, err := os.ReadFile("../../docs/TRACE_SCHEMA.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("(?m)^## `([a-z_]+)`")
	var documented []string
	for _, m := range re.FindAllStringSubmatch(string(doc), -1) {
		documented = append(documented, m[1])
	}
	if got, want := strings.Join(documented, " "), strings.Join(KnownTypes(), " "); got != want {
		t.Errorf("TRACE_SCHEMA.md headings = [%s], parser KnownTypes = [%s]", got, want)
	}
}

// TestParseTornTail mimics a crash-interrupted session: the events
// before the torn line must come back with the error.
func TestParseTornTail(t *testing.T) {
	full := emitAllTypes(t)
	torn := full[:len(full)-20] // cut mid-line
	events, err := Parse(bytes.NewReader(torn))
	if err == nil {
		t.Fatal("torn trace parsed without error")
	}
	if len(events) == 0 {
		t.Fatal("torn trace yielded no prefix events")
	}
	for i := range events {
		if events[i].Unknown() {
			t.Errorf("prefix event %d unknown", i)
		}
	}
}

// TestUnknownTypeSurvives pins forward compatibility.
func TestUnknownTypeSurvives(t *testing.T) {
	line := `{"seq":0,"t_ms":1,"type":"hologram","query":"x"}` + "\n"
	events, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Unknown() || events[0].Type != "hologram" {
		t.Fatalf("events = %+v", events)
	}
	if got := events[0].Canonical(); got != "hologram (unknown)" {
		t.Fatalf("canonical = %q", got)
	}
}

// TestCanonicalIgnoresTime pins the property diff depends on: two traces
// of the same crawl differing only in timestamps canonicalize equal.
func TestCanonicalIgnoresTime(t *testing.T) {
	a := `{"seq":3,"t_ms":100,"type":"phase","phase":"crawl","dur_ms":250}`
	b := `{"seq":3,"t_ms":900,"type":"phase","phase":"crawl","dur_ms":999}`
	ea, err := Parse(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Parse(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if ea[0].Canonical() != eb[0].Canonical() {
		t.Fatalf("phase canonical depends on time: %q vs %q", ea[0].Canonical(), eb[0].Canonical())
	}
}

// FuzzParseTrace asserts the parser never panics and — when a prefix
// parses cleanly — that re-parsing the raw lines it preserved reproduces
// the same canonical stream (parse/render stability).
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(`{"seq":0,"t_ms":1,"type":"query","query":"a","est_benefit":1.5,"result_size":3,"new_covered":2,"cum_covered":2,"solid":false}`))
	f.Add([]byte(`{"seq":0,"t_ms":1,"type":"round","size":4,"budget_left":-1}`))
	f.Add([]byte(`{"seq":0,"t_ms":1,"type":"breaker","from":"closed","to":"open","failures":3}`))
	f.Add([]byte("not json\n{}\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"type":"query"}` + "\n" + `{"type":"zzz"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var raws strings.Builder
		for i := range events {
			raws.WriteString(events[i].Raw)
			raws.WriteByte('\n')
		}
		again, err := Parse(strings.NewReader(raws.String()))
		if err != nil {
			t.Fatalf("preserved raw lines failed to re-parse: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-parse count %d != %d", len(again), len(events))
		}
		for i := range events {
			if events[i].Canonical() != again[i].Canonical() {
				t.Fatalf("event %d canonical drifted: %q vs %q",
					i, events[i].Canonical(), again[i].Canonical())
			}
		}
		// Analyses must tolerate arbitrary parsed input.
		_ = Summarize(events)
		_ = Rounds(events)
		_ = Top(events, ByEstimateError, 5)
		_ = Diff(events, events)
	})
}
