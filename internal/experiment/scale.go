package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/index"
)

// ScaleSweep extends the determinism oracle to the out-of-core axes: for
// each corpus size it runs the same crawl over every combination of
// index backing (heap-built vs memory-mapped corpus cache) and shard
// count, and fails loudly unless every cell reproduces the reference
// cell's issued-query log and coverage byte for byte. The corpus cache
// is built through the production streaming ingester (spill + k-way
// merge), so the sweep also exercises the bounded-memory build path.
//
// Like ParallelCrawl, the wall-clock column is machine-dependent; the
// invariant columns (coverage, queries) are the signal — they must not
// move across any row of the same corpus size.
func ScaleSweep(p Params) (*Table, error) {
	dir, err := os.MkdirTemp("", "smartcrawl-scale-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The sweep compares equivalence, not coverage curves: cap the budget
	// so the 2× corpus finishes quickly while still issuing enough
	// queries for a log divergence to have somewhere to show up.
	factors := []float64{0.5, 1, 2}
	t := &Table{
		Title:  "Extension: out-of-core corpus — mapped index × shards equivalence sweep",
		Header: []string{"corpus", "|D|", "index", "shards", "coverage", "queries", "wall-clock", "cache bytes"},
	}
	for _, f := range factors {
		pp := p
		pp.CorpusSize = int(float64(p.CorpusSize) * f)
		pp.HiddenSize = int(float64(p.HiddenSize) * f)
		pp.LocalSize = int(float64(p.LocalSize) * f)
		pp.Budget = pp.LocalSize / 5
		if pp.Budget > 200 {
			pp.Budget = 200
		}
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}

		// Build the on-disk cache through the streaming ingester — the
		// same path `smartcrawl -corpus-cache` takes for a missing file.
		path := filepath.Join(dir, fmt.Sprintf("corpus_%dk.scorp", pp.CorpusSize/1000))
		b := index.NewCorpusBuilder(index.IngestConfig{TmpDir: dir})
		for id, r := range s.Instance.Local.Records {
			if err := b.AddRecord(id, r.Tokens(s.Tok)); err != nil {
				return nil, err
			}
		}
		if err := b.Finalize(path); err != nil {
			return nil, err
		}
		cf, err := index.OpenCorpus(path)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			cf.Close()
			return nil, err
		}

		run := func(mapped bool, shards int) (*crawler.Result, time.Duration, error) {
			env := s.Env()
			cfg := crawler.SmartConfig{
				Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
				Shards: shards,
			}
			if mapped {
				env.Corpus = cf
				cfg.PoolConfig.Dict = cf.Dict
			}
			c, err := crawler.NewSmart(env, cfg)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			res, err := c.Run(pp.Budget)
			return res, time.Since(start), err
		}
		logOf := func(res *crawler.Result) string {
			keys := make([]string, len(res.Steps))
			for i, step := range res.Steps {
				keys[i] = step.Query.Key()
			}
			return strings.Join(keys, "\n")
		}

		cells := []struct {
			mapped bool
			shards int
		}{
			{false, 1}, // reference: in-memory, sequential
			{true, 1},
			{false, 4},
			{true, 4},
		}
		var refLog string
		var refCov int
		for i, cell := range cells {
			res, elapsed, err := run(cell.mapped, cell.shards)
			if err != nil {
				cf.Close()
				return nil, err
			}
			cov := s.TruthCoverage(res)
			if i == 0 {
				refLog, refCov = logOf(res), cov
			} else if log := logOf(res); log != refLog || cov != refCov {
				cf.Close()
				return nil, fmt.Errorf("experiment: scale sweep diverged at corpus=%d mapped=%t shards=%d: coverage %d vs %d, log match %t",
					pp.CorpusSize, cell.mapped, cell.shards, cov, refCov, log == refLog)
			}
			backing := "heap"
			cacheBytes := "-"
			if cell.mapped {
				backing = "mapped"
				cacheBytes = fmt.Sprintf("%d", st.Size())
			}
			t.AddRow(pp.CorpusSize, pp.LocalSize, backing, cell.shards,
				cov, res.QueriesIssued, elapsed.Round(time.Millisecond), cacheBytes)
		}
		cf.Close()
	}
	t.Notes = append(t.Notes,
		"every (index, shards) cell is asserted byte-identical to the heap/sequential reference — a divergence fails the run;",
		"the cache is built by the streaming ingester (bounded memory, spill + merge), the same path as smartcrawl -corpus-cache")
	return t, nil
}
