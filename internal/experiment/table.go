package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment result: a titled grid of strings, printed
// as aligned text (Fprint) or CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-form lines printed under the table (expected shape,
	// caveats).
	Notes []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		seps := make([]string, len(t.Header))
		for i, h := range t.Header {
			seps[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(seps, "\t"))
	}
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (title and notes as comment-less
// leading/trailing rows are omitted; only header and data rows are
// emitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
