package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/obs"
)

// DurabilitySweep measures what crash safety costs and proves what it
// buys. The same DBLP-sim crawl runs under each durability mode — none,
// snapshot-only autosave, WAL journal with the default group-commit fsync
// policy, and fsync-per-append — and the table reports coverage (which
// must be identical: the sink observes the merge stage, it never decides),
// journal traffic, and wall-clock. The final row interrupts the WAL crawl
// at half budget, recovers from the snapshot + journal alone, resumes with
// the remaining budget, and must land on the same coverage as the
// uninterrupted runs — the recovery guarantee the crashtest harness
// SIGKILLs its way through, demonstrated here at experiment scale.
func DurabilitySweep(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "smartcrawl-durability")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		Title: fmt.Sprintf("Extension: durability sweep — crash-safety cost and recovery equivalence (b=%d)",
			p.Budget),
		Header: []string{"mode", "coverage", "queries", "wal-records", "wal-KB",
			"fsyncs", "compactions", "wall-ms"},
	}
	// Compact often enough that the sweep exercises the journal→snapshot
	// fold a handful of times per run, whatever the scale.
	every := p.Budget / 8
	if every < 1 {
		every = 1
	}

	modes := []struct {
		name    string
		journal bool
		sync    string
	}{
		{name: "none"},
		{name: "snapshot"},
		{name: "wal-compact", journal: true, sync: durable.SyncCompact},
		{name: "wal-always", journal: true, sync: durable.SyncAlways},
	}
	baseline := -1
	var baselineCheckpoint []byte
	for i, mode := range modes {
		o := obs.New()
		var sink *durable.Sink
		snapshot := filepath.Join(dir, fmt.Sprintf("%s.bin", mode.name))
		if i > 0 {
			dopts := durable.Options{Snapshot: snapshot, Every: every, Sync: mode.sync, Obs: o}
			if mode.journal {
				dopts.Journal = filepath.Join(dir, mode.name+".wal")
				dopts.LocalLen = p.LocalSize
			}
			if sink, err = durable.Open(dopts); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		res, err := runDurable(s, sink, nil, p.Budget)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		compactions := 0
		if sink != nil {
			if err := sink.Close(res); err != nil {
				return nil, err
			}
			compactions = sink.Compactions()
		}
		cov := s.TruthCoverage(res)
		if baseline < 0 {
			baseline = cov
		} else if cov != baseline {
			return nil, fmt.Errorf("experiment: %s coverage %d differs from baseline %d — durability changed the crawl",
				mode.name, cov, baseline)
		}
		if i > 0 {
			canon, err := canonicalCheckpoint(snapshot)
			if err != nil {
				return nil, err
			}
			if baselineCheckpoint == nil {
				baselineCheckpoint = canon
			} else if !bytes.Equal(canon, baselineCheckpoint) {
				return nil, fmt.Errorf("experiment: %s checkpoint differs from the snapshot-only one", mode.name)
			}
		}
		t.AddRow(mode.name, cov, res.QueriesIssued,
			o.WalAppends.Value(), o.WalBytes.Value()/1024,
			o.WalFsyncs.Value(), compactions,
			fmt.Sprintf("%.0f", float64(wall)/float64(time.Millisecond)))
	}

	// Interrupted + resumed: first leg spends half the budget through the
	// WAL sink, the second leg starts from recovery alone. The cut is
	// aligned to the batch size: exact resume equivalence is a round-
	// boundary property — a budget that dies mid-round reshuffles the
	// round's unissued tail, which an uninterrupted crawl would have kept.
	half := p.Budget / 2
	half -= half % durabilityBatch
	if half < durabilityBatch {
		half = durabilityBatch
	}
	snapshot := filepath.Join(dir, "resumed.bin")
	dopts := durable.Options{
		Snapshot: snapshot, Journal: filepath.Join(dir, "resumed.wal"),
		Every: every, Sync: durable.SyncCompact, LocalLen: p.LocalSize,
	}
	sink, err := durable.Open(dopts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := runDurable(s, sink, nil, half)
	if err != nil {
		return nil, err
	}
	if err := sink.Close(res); err != nil {
		return nil, err
	}
	o := obs.New()
	dopts.Obs = o
	if sink, err = durable.Open(dopts); err != nil {
		return nil, err
	}
	rec := sink.Recovered()
	if rec.Result == nil {
		return nil, fmt.Errorf("experiment: nothing recovered after the interrupted leg")
	}
	res, err = runDurable(s, sink, rec, p.Budget-rec.Charged)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if err := sink.Close(res); err != nil {
		return nil, err
	}
	cov := s.TruthCoverage(res)
	if cov != baseline {
		return nil, fmt.Errorf("experiment: resumed coverage %d differs from uninterrupted %d",
			cov, baseline)
	}
	canon, err := canonicalCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(canon, baselineCheckpoint) {
		return nil, fmt.Errorf("experiment: resumed checkpoint differs from the uninterrupted one")
	}
	t.AddRow(fmt.Sprintf("wal, resumed at %d", half), cov, res.QueriesIssued,
		o.WalAppends.Value(), o.WalBytes.Value()/1024,
		o.WalFsyncs.Value(), sink.Compactions(),
		fmt.Sprintf("%.0f", float64(wall)/float64(time.Millisecond)))

	t.Notes = append(t.Notes,
		"coverage and the final checkpoint are byte-identical across every mode and across the interruption —",
		"the sink journals the merge stage without steering it; wal-records/KB is the journal traffic,",
		"fsyncs the price of the chosen policy (compact = group commit at compaction; always = one flush per record)")
	return t, nil
}

// durabilityBatch is the sweep's selection batch size; the interruption
// point must be a multiple of it (see DurabilitySweep).
const durabilityBatch = 4

// runDurable runs one smart crawl with the sink attached, optionally
// resuming recovered state.
func runDurable(s *Setup, sink *durable.Sink, rec *durable.Recovered, budget int) (*crawler.Result, error) {
	cfg := crawler.SmartConfig{
		Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
		BatchSize: durabilityBatch, Concurrency: durabilityBatch,
	}
	if sink != nil {
		cfg.Durability = sink
	}
	if rec != nil {
		cfg.Resume = rec.Result
		cfg.ResumePending = rec.Pending
	}
	c, err := crawler.NewSmart(s.Env(), cfg)
	if err != nil {
		return nil, err
	}
	return c.Run(budget)
}

// canonicalCheckpoint reduces a checkpoint file to comparable bytes:
// decode, re-encode at journal sequence zero, so only crawl state — not
// the autosave cadence the file happened to be written at — is compared.
func canonicalCheckpoint(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := crawler.LoadResult(f)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
