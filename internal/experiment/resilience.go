package experiment

import (
	"fmt"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
)

// FaultSweep measures graceful degradation: the same DBLP-sim crawl runs
// against increasingly misbehaving interfaces (deepweb.Faulty presets)
// with the full resilience stack engaged — retry with no backoff wait,
// circuit breaker, requeue/forfeit in the crawl loop — and reports how
// much of the clean run's coverage survives. The acceptance bar for the
// degradation machinery is the transient10 row: ≥90% of clean coverage at
// a 10% transient-fault rate, with every dispatched query accounted for
// by the resilience report.
func FaultSweep(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: fault sweep — coverage retained under interface misbehaviour (b=%d)",
			p.Budget),
		Header: []string{"profile", "fault-rate", "coverage", "vs-clean", "queries",
			"requeued", "forfeited", "refunded", "trips"},
	}
	baseline := 0
	for _, name := range []string{"none", "mild", "transient10", "moderate", "severe"} {
		profile, err := deepweb.ParseFaultProfile(name)
		if err != nil {
			return nil, err
		}
		profile.Seed = p.Seed
		env := s.Env()
		cfg := crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
			BatchSize: 4, Concurrency: 4,
		}
		if name != "none" {
			faulty := deepweb.NewFaulty(env.Searcher, profile)
			// One immediate in-line retry absorbs short transient
			// outages; what it cannot absorb falls through to the crawl
			// loop's requeue/forfeit machinery.
			env.Searcher = &deepweb.Retrying{S: faulty, Retries: 2}
			cfg.MaxAttempts = 3
			cfg.Breaker = deepweb.NewBreaker(deepweb.BreakerConfig{})
		}
		c, err := crawler.NewSmart(env, cfg)
		if err != nil {
			return nil, err
		}
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		cov := s.TruthCoverage(res)
		if name == "none" {
			baseline = cov
		}
		var requeued, forfeited, refunded, trips int
		if rep := res.Resilience; rep != nil {
			if !rep.Accounted() {
				return nil, fmt.Errorf("experiment: %s: resilience report unaccounted: %s", name, rep)
			}
			requeued, forfeited, refunded, trips = rep.Requeued, rep.Forfeited, rep.Refunded, rep.BreakerTrips
		}
		ratio := 1.0
		if baseline > 0 {
			ratio = float64(cov) / float64(baseline)
		}
		t.AddRow(name, fmt.Sprintf("%.0f%%", 100*profile.Total()), cov,
			fmt.Sprintf("%.1f%%", 100*ratio), res.QueriesIssued,
			requeued, forfeited, refunded, trips)
	}
	t.Notes = append(t.Notes,
		"every failed query is requeued (fresh benefit) up to 3 attempts, then forfeited;",
		"uncharged failures (429 bursts, open circuit) refund their budget unit;",
		"the fault schedule is a pure function of (seed, query) — rerun with the same seed to replay it")
	return t, nil
}
