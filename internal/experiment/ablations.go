package experiment

import (
	"fmt"
	"strings"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/formweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// AblateBatch measures the batch-greedy extension: coverage as the
// concurrent batch size grows. Within a round, later selections cannot see
// earlier results, so coverage should degrade gracefully — the table
// quantifies "how much coverage a faster wall-clock costs".
func AblateBatch(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: batch-greedy selection (b=%d)", p.Budget),
		Header: []string{"batch size", "coverage", "rounds"},
	}
	for _, batch := range []int{1, 4, 16, 64} {
		c, err := crawler.NewSmart(s.Env(), crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{},
			AlphaFallback: true, BatchSize: batch,
			Concurrency: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		rounds := (res.QueriesIssued + batch - 1) / batch
		t.AddRow(batch, s.TruthCoverage(res), rounds)
	}
	t.Notes = append(t.Notes,
		"expected: mild coverage loss as batch grows (stale within-round estimates), large round-count savings")
	return t, nil
}

// AblateStemming measures the Porter-stemming tokenizer stage under
// inflectional noise: half the keywords of every local record are mutated
// into morphological variants ("mining" → "minings"/"mininged"), the drift
// real text exhibits but the paper's random-replacement error model does
// not. Stemming folds the variants back, repairing both the Jaccard
// matcher and the query pool; the plain-token pipeline suffers. Both sides
// rebuild the full pipeline with their own tokenizer, since the stemmer
// changes every index, pool, and sample statistic.
func AblateStemming(p Params) (*Table, error) {
	pp := p
	t := &Table{
		Title:  "Ablation: Porter stemming under inflectional noise (50% of local keywords inflected)",
		Header: []string{"variant", "coverage", "pool size"},
	}
	for _, stem := range []bool{false, true} {
		in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: pp.CorpusSize,
			HiddenSize: pp.HiddenSize,
			LocalSize:  pp.LocalSize,
			DeltaD:     pp.DeltaD,
			Seed:       pp.Seed,
		})
		if err != nil {
			return nil, err
		}
		inflectLocalTitles(in, pp.Seed^0x1f1ec7)
		tk := tokenize.New()
		if stem {
			tk.Stemmer = tokenize.PorterStem
		}
		db := hidden.New(in.Hidden, tk, pp.K,
			hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
		th := pp.JaccardThreshold
		if th == 0 {
			th = 0.6
		}
		env := &crawler.Env{
			Local:     in.Local,
			Searcher:  db,
			Tokenizer: tk,
			Matcher:   match.NewJaccardOn(tk, th, in.LocalKey, in.HiddenKey),
		}
		smp := sample.Bernoulli(in.Hidden, pp.Theta, stats.NewRNG(pp.Seed^0xabcdef))
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
		})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(pp.Budget)
		if err != nil {
			return nil, err
		}
		coverage := 0
		for _, h := range in.Truth {
			if h < 0 {
				continue
			}
			if _, ok := res.Crawled[h]; ok {
				coverage++
			}
		}
		name := "plain tokens"
		if stem {
			name = "porter-stemmed"
		}
		t.AddRow(name, coverage, c.PoolSize)
	}
	t.Notes = append(t.Notes,
		"stemming folds inflected keywords back onto their hidden-side stems; useful only when the hidden engine stems too (it does here)")
	return t, nil
}

// inflectLocalTitles rewrites the local title column, appending an
// inflectional suffix to each word with probability 1/2. Deterministic
// given the seed.
func inflectLocalTitles(in *dataset.Instance, seed uint64) {
	rng := stats.NewRNG(seed)
	suffixes := []string{"s", "ing", "ed"}
	for _, r := range in.Local.Records {
		words := strings.Fields(r.Value(0))
		for i, w := range words {
			if rng.Bool(0.5) {
				words[i] = w + suffixes[rng.Intn(len(suffixes))]
			}
		}
		r.Values[0] = strings.Join(words, " ")
		r.InvalidateTokens()
	}
}

// AblateOnline evaluates pay-as-you-go calibration (the paper's first
// future-work item, §9): QSel-Online needs no upfront sample yet should
// land between QSel-Simple and the sample-based SmartCrawl-B.
func AblateOnline(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: pay-as-you-go calibration (§9), b=%d, k=%d", p.Budget, p.K),
		Header: []string{"strategy", "sample needed", "coverage"},
	}
	type variant struct {
		name   string
		sample string
		cfg    crawler.SmartConfig
	}
	variants := []variant{
		{"qsel-simple", "no", crawler.SmartConfig{}},
		{"qsel-online", "no", crawler.SmartConfig{OnlineCalibration: true}},
		{"smartcrawl-b", "yes (offline)", crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
		}},
	}
	for _, v := range variants {
		c, err := crawler.NewSmart(s.Env(), v.cfg)
		if err != nil {
			return nil, err
		}
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, v.sample, s.TruthCoverage(res))
	}
	resI, err := s.Run(Ideal, p.Budget)
	if err != nil {
		return nil, err
	}
	t.AddRow("idealcrawl (oracle)", "—", s.TruthCoverage(resI))
	t.Notes = append(t.Notes,
		"qsel-online buckets queries by log₂|q(D₀)| and learns each bucket's realized benefit from issued queries,",
		"amortizing the sampling cost into the crawl itself — no upfront sample required")
	return t, nil
}

// FormInterface compares the form-based crawl (§9 future work, implemented
// in internal/formweb) against the keyword SMARTCRAWL on the same
// Yelp-like instance and budget. The form grid (city × category) caps
// reachable records at #combinations × k, which is the structural reason
// the paper centres on keyword interfaces.
func FormInterface(p Params) (*Table, error) {
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: p.HiddenSize,
		LocalSize:  p.LocalSize,
		Seed:       p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tk := tokenize.New()

	// The form scenario assumes the local table also carries the
	// categorical attributes; project them from the ground-truth twins.
	localForm := relational.NewTable("local-form", []string{"name", "city", "category"})
	for _, h := range in.Truth {
		if h < 0 {
			continue
		}
		r := in.Hidden.Records[h]
		localForm.Append(r.Value(0), r.Value(1), r.Value(2))
	}
	k := p.K
	if k == 0 {
		k = 50
	}
	budget := p.Budget
	matcher := match.NewExactOn(tk, []int{0, 1}, []int{0, 1})

	// Two form grids: the coarse city-only form many real sites offer,
	// and the finer city × category form.
	rank := func(r *relational.Record) float64 {
		return hidden.RankByNumericColumn(in.RankColumn)(r)
	}
	type formRun struct {
		name string
		cols []int
	}
	runs := []formRun{
		{"form (city)", []int{1}},
		{"form (city × category)", []int{1, 2}},
	}
	type formOutcome struct {
		name     string
		poolSize int
		issued   int
		coverage int
	}
	var outcomes []formOutcome
	for _, fr := range runs {
		formDB := formweb.New(in.Hidden, fr.cols, k, rank)
		localCols := make([]int, len(fr.cols))
		copy(localCols, fr.cols) // localForm mirrors hidden column layout
		pool, err := formweb.GeneratePool(localForm, localCols, fr.cols, 1)
		if err != nil {
			return nil, err
		}
		formRes, err := formweb.Crawl(localForm, formDB, pool, tk, matcher, localCols, fr.cols, budget)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, formOutcome{fr.name, len(pool), formRes.QueriesIssued, formRes.CoveredCount})
	}

	// Keyword SMARTCRAWL on the same instance (name + city keywords).
	kwDB := hidden.New(in.Hidden, tk, k,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	env := &crawler.Env{
		Local:     localForm,
		Searcher:  kwDB,
		Tokenizer: tk,
		Matcher:   matcher,
	}
	kwCrawler, err := crawler.NewSmart(env, crawler.SmartConfig{OnlineCalibration: true})
	if err != nil {
		return nil, err
	}
	kwRes, err := kwCrawler.Run(budget)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Extension: form interface vs keyword interface (b=%d, k=%d, |D|=%d)", budget, k, localForm.Len()),
		Header: []string{"interface", "pool size", "queries issued", "coverage"},
	}
	for _, o := range outcomes {
		t.AddRow(o.name, o.poolSize, o.issued, o.coverage)
	}
	t.AddRow("keyword (smartcrawl-online)", "-", kwRes.QueriesIssued, kwRes.CoveredCount)
	t.Notes = append(t.Notes,
		"the form grid exhausts its distinct queries quickly and its reach is capped at #combinations × k;",
		"keyword queries can name individual entities, which is why the paper targets keyword interfaces")
	return t, nil
}

// RankSensitivity validates the Lemma 4/5 claim that the estimators work
// "regardless of the underlying ranking function": the same instance is
// crawled under three different hidden ranking functions (by year, opaque
// hash, shortest-document-first) and SMARTCRAWL-B's coverage — and its gap
// to IdealCrawl — should be stable across them.
func RankSensitivity(p Params) (*Table, error) {
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: p.CorpusSize,
		HiddenSize: p.HiddenSize,
		LocalSize:  p.LocalSize,
		Seed:       p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tk := tokenize.New()
	matcher := match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	smp := sample.Bernoulli(in.Hidden, p.Theta, stats.NewRNG(p.Seed^0xabcdef))

	ranks := []struct {
		name string
		fn   hidden.RankFunc
	}{
		{"by year (paper's engine)", hidden.RankByNumericColumn(in.RankColumn)},
		{"opaque hash", hidden.RankByHash(p.Seed)},
		{"shortest document first", hidden.RankByDocLength()},
	}
	t := &Table{
		Title:  fmt.Sprintf("Analysis: ranking-function sensitivity (b=%d, k=%d)", p.Budget, p.K),
		Header: []string{"ranking function", "smartcrawl-b", "idealcrawl", "b/ideal"},
	}
	for _, r := range ranks {
		db := hidden.New(in.Hidden, tk, p.K, r.fn, hidden.ModeConjunctive)
		env := &crawler.Env{Local: in.Local, Searcher: db, Tokenizer: tk, Matcher: matcher}

		smart, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
		})
		if err != nil {
			return nil, err
		}
		resB, err := smart.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		ideal, err := crawler.NewIdeal(env, db, querypool.Config{})
		if err != nil {
			return nil, err
		}
		resI, err := ideal.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		covB, covI := 0, 0
		for _, h := range in.Truth {
			if h < 0 {
				continue
			}
			if _, ok := resB.Crawled[h]; ok {
				covB++
			}
			if _, ok := resI.Crawled[h]; ok {
				covI++
			}
		}
		ratio := 0.0
		if covI > 0 {
			ratio = float64(covB) / float64(covI)
		}
		t.AddRow(r.name, covB, covI, fmt.Sprintf("%.2f", ratio))
	}
	t.Notes = append(t.Notes,
		"expected: b/ideal stays roughly constant across rankings — the estimators never see the ranking (Lemmas 4–5)")
	return t, nil
}
