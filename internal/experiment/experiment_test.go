package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough for unit tests (seconds, not
// minutes) while keeping the qualitative shapes.
func tiny() Params {
	p := Scaled(0.05) // |H| = 5000, |D| = 500, b = 100
	p.Seed = 7
	return p
}

func TestScaledParams(t *testing.T) {
	p := Scaled(0.2)
	if p.HiddenSize != 20000 || p.LocalSize != 2000 || p.Budget != 400 {
		t.Fatalf("Scaled(0.2) = %+v", p)
	}
	full := PaperScale()
	if full.HiddenSize != 100000 || full.Budget != 2000 {
		t.Fatalf("PaperScale = %+v", full)
	}
}

func TestNewDBLPSetup(t *testing.T) {
	s, err := NewDBLPSetup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if s.Instance.Local.Len() != 500 || s.Instance.Hidden.Len() != 5000 {
		t.Fatalf("sizes: %d/%d", s.Instance.Local.Len(), s.Instance.Hidden.Len())
	}
	if s.Sample.Len() == 0 {
		t.Fatal("empty sample")
	}
	if s.MaxCoverable() != 500 {
		t.Fatalf("MaxCoverable = %d", s.MaxCoverable())
	}
}

func TestRunAllApproaches(t *testing.T) {
	s, err := NewDBLPSetup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Approach{SmartB, SmartU, Simple, Ideal, Naive, Full, Bound} {
		res, err := s.Run(a, 30)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.QueriesIssued == 0 || res.QueriesIssued > 30 {
			t.Fatalf("%s issued %d queries", a, res.QueriesIssued)
		}
		if tc := s.TruthCoverage(res); tc < 0 || tc > s.MaxCoverable() {
			t.Fatalf("%s coverage %d out of range", a, tc)
		}
	}
	if _, err := s.Run(Approach("bogus"), 5); err == nil {
		t.Fatal("unknown approach should error")
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	s, err := NewDBLPSetup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(SmartB, 50)
	if err != nil {
		t.Fatal(err)
	}
	curve := s.CoverageCurve(res)
	if len(curve) != res.QueriesIssued {
		t.Fatalf("curve length %d vs %d issued", len(curve), res.QueriesIssued)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("curve must be non-decreasing")
		}
	}
	if got := curve[len(curve)-1]; got != s.TruthCoverage(res) {
		t.Fatalf("curve end %d vs truth coverage %d", got, s.TruthCoverage(res))
	}
	// CoverageAt clamps sensibly.
	if CoverageAt(curve, 0) != 0 || CoverageAt(nil, 5) != 0 {
		t.Fatal("CoverageAt edge cases")
	}
	if CoverageAt(curve, 10_000) != curve[len(curve)-1] {
		t.Fatal("CoverageAt must clamp to the end")
	}
}

func TestTable2RunningExample(t *testing.T) {
	tbl, err := Table2RunningExample()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("table too small: %d rows", len(tbl.Rows))
	}
	// Every naive query row must have true benefit ≥ 1 (all four
	// restaurants exist in H and their specific queries are solid).
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ramen saigon") || !strings.Contains(out, "overflow") {
		t.Fatalf("unexpected table output:\n%s", out)
	}
}

func TestFigure9YelpRuns(t *testing.T) {
	p := Params{
		HiddenSize: 3000, LocalSize: 300, K: 50,
		Budget: 120, Theta: 0.01, ErrorRate: 0.1,
		JaccardThreshold: 0.5, Seed: 3,
	}
	tbl, err := Figure9(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty figure 9 table")
	}
	// Recall strings must parse as percentages ≤ 100.
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("cell %q not a percentage", cell)
			}
		}
	}
}

func TestBoundGuaranteeHolds(t *testing.T) {
	p := tiny()
	p.DeltaD = 25
	tbl, err := BoundGuarantee(p)
	if err != nil {
		t.Fatal(err)
	}
	holdsCol := -1
	for i, h := range tbl.Header {
		if h == "holds" {
			holdsCol = i
		}
	}
	if holdsCol == -1 {
		t.Fatal("no holds column")
	}
	for _, row := range tbl.Rows {
		if row[holdsCol] != "true" {
			t.Fatalf("Lemma 2 violated in row %v", row)
		}
	}
}

func TestEstimatorAccuracySmallerMAEForBiased(t *testing.T) {
	p := tiny()
	tbl, err := EstimatorAccuracy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no accuracy rows")
	}
	// At the smallest theta with overflow rows, biased MAE should not
	// exceed unbiased MAE (the paper's headline estimator finding).
	var checked bool
	for _, row := range tbl.Rows {
		if row[0] == "0.1%" && row[1] == "overflow" {
			biasedMAE := parseF(t, row[3])
			unbiasedMAE := parseF(t, row[5])
			if biasedMAE > unbiasedMAE {
				t.Fatalf("biased MAE %v > unbiased MAE %v at θ=0.1%%", biasedMAE, unbiasedMAE)
			}
			checked = true
		}
	}
	if !checked {
		t.Fatal("no overflow row at θ=0.1% to check")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblations(t *testing.T) {
	p := tiny()
	if _, err := AblateAlpha(p); err != nil {
		t.Fatal(err)
	}
	if _, err := AblateDeltaDRemoval(p); err != nil {
		t.Fatal(err)
	}
	tbl, err := AblateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("heap ablation rows = %d", len(tbl.Rows))
	}
}

func TestDurabilitySweep(t *testing.T) {
	tbl, err := DurabilitySweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Four modes plus the interrupted-and-resumed demonstration row; the
	// sweep hard-fails internally if coverage or the final checkpoint
	// diverges between any of them.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows[1:] {
		if row[1] != tbl.Rows[0][1] {
			t.Fatalf("coverage differs across modes: %v vs %v", row, tbl.Rows[0])
		}
	}
}

func TestOmegaSensitivity(t *testing.T) {
	tbl := OmegaSensitivity()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// ω = 1 row must show zero relative error.
	for _, row := range tbl.Rows {
		if row[0] == "1" && row[3] != "+0.0%" {
			t.Fatalf("ω=1 relative error = %s", row[3])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"note"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 0.333333)

	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "b", "1", "2.5", "0.3333", "# note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n1,2.5\n") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestCheckpoints(t *testing.T) {
	cps := checkpoints(100, 10)
	if len(cps) != 10 || cps[0] != 10 || cps[9] != 100 {
		t.Fatalf("checkpoints = %v", cps)
	}
	if got := checkpoints(3, 10); len(got) != 3 {
		t.Fatalf("small-budget checkpoints = %v", got)
	}
}

func TestAblateBatchAndStemming(t *testing.T) {
	p := tiny()
	tbl, err := AblateBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("batch ablation rows = %d", len(tbl.Rows))
	}
	// Batch 1 coverage should be the best (or tied).
	best := parseF(t, tbl.Rows[0][1])
	for _, row := range tbl.Rows[1:] {
		if v := parseF(t, row[1]); v > best*1.05 {
			t.Fatalf("batched coverage %v exceeds sequential %v by >5%%", v, best)
		}
	}
	stem, err := AblateStemming(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(stem.Rows) != 2 {
		t.Fatalf("stemming ablation rows = %d", len(stem.Rows))
	}
}

func TestHeadlineMultiSeed(t *testing.T) {
	p := tiny()
	tbl, err := Headline(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// SmartB's own speedup cell is the dash; others parse as "N.NNx".
	for _, row := range tbl.Rows {
		if row[0] == string(SmartB) {
			if row[3] != "—" {
				t.Fatalf("smart-b speedup cell = %q", row[3])
			}
			continue
		}
		if !strings.HasSuffix(row[3], "x") {
			t.Fatalf("speedup cell %q", row[3])
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input")
	}
}

func TestAblateOnlineAndForm(t *testing.T) {
	p := tiny()
	tbl, err := AblateOnline(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("online rows = %d", len(tbl.Rows))
	}
	fp := Params{HiddenSize: 2000, LocalSize: 200, K: 50, Budget: 200, Seed: 5}
	ftbl, err := FormInterface(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ftbl.Rows) != 3 {
		t.Fatalf("form rows = %d", len(ftbl.Rows))
	}
	// The coarse city-only form must issue no more queries than its pool.
	pool := parseF(t, ftbl.Rows[0][1])
	issued := parseF(t, ftbl.Rows[0][2])
	if issued > pool {
		t.Fatalf("form issued %v with pool %v", issued, pool)
	}
}

// TestAllFiguresMicro smoke-runs every per-figure function at a very small
// scale, asserting the qualitative orderings the paper reports.
func TestAllFiguresMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-crawl sweep; skipped in -short")
	}
	p := Scaled(0.03) // |H| = 3000, |D| = 300, b = 60
	p.Seed = 17

	fig4, err := Figure4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4) != 3 {
		t.Fatalf("fig4 tables = %d", len(fig4))
	}
	// Final row of 4(b) (θ=1%): smart-b must beat full and naive.
	last := fig4[1].Rows[len(fig4[1].Rows)-1]
	smartB, full, naive := parseF(t, last[2]), parseF(t, last[4]), parseF(t, last[5])
	if smartB <= full || smartB <= naive {
		t.Fatalf("fig4(b) final row ordering broken: b=%v full=%v naive=%v", smartB, full, naive)
	}

	fig5, err := Figure5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5) != 3 {
		t.Fatalf("fig5 tables = %d", len(fig5))
	}

	fig6, err := Figure6(p)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 row of the sweep: ideal == smart-b == naive == budget.
	sweep := fig6[2]
	k1 := sweep.Rows[0]
	if k1[1] != k1[2] || k1[2] != k1[4] {
		t.Fatalf("fig6 k=1 row should tie ideal/smart/naive: %v", k1)
	}

	fig7, err := Figure7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7) != 3 {
		t.Fatalf("fig7 tables = %d", len(fig7))
	}

	fig8, err := Figure8(p)
	if err != nil {
		t.Fatal(err)
	}
	// SmartCrawl-B must beat Naive at the final budget in both error
	// settings.
	for i, tbl := range fig8 {
		last := tbl.Rows[len(tbl.Rows)-1]
		if parseF(t, last[1]) <= parseF(t, last[2]) {
			t.Fatalf("fig8 table %d: smart (%s) should beat naive (%s)", i, last[1], last[2])
		}
	}
}

func TestRankSensitivityStable(t *testing.T) {
	p := tiny()
	tbl, err := RankSensitivity(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The B/Ideal ratio must stay within a modest band across rankings.
	lo, hi := 2.0, 0.0
	for _, row := range tbl.Rows {
		r := parseF(t, row[3])
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo > 0.25 {
		t.Fatalf("B/Ideal spread %.2f–%.2f — estimator quality should be ranking-agnostic", lo, hi)
	}
}

// TestHealthSweep runs the health-vs-breaker sweep at test scale.
// HealthSweep hard-fails internally when the acceptance bar breaks
// (health-scored coverage below breaker-only, or no reduction in charged
// waste on the sick interface); here we additionally pin the table shape
// and that the scored run actually exercised recovery probes.
func TestHealthSweep(t *testing.T) {
	tbl, err := HealthSweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	breakerOnly, health := tbl.Rows[0], tbl.Rows[1]
	if breakerOnly[0] != "breaker-only" || health[0] != "health+breaker" {
		t.Fatalf("unexpected modes: %v / %v", breakerOnly[0], health[0])
	}
	covB, _ := strconv.Atoi(breakerOnly[1])
	covH, _ := strconv.Atoi(health[1])
	if covH < covB || covB == 0 {
		t.Fatalf("health coverage %d vs breaker-only %d", covH, covB)
	}
	wasteB, _ := strconv.Atoi(breakerOnly[5])
	wasteH, _ := strconv.Atoi(health[5])
	if wasteH >= wasteB {
		t.Fatalf("sick-interface waste: health %d, breaker-only %d", wasteH, wasteB)
	}
	if probes, _ := strconv.Atoi(health[6]); probes == 0 {
		t.Error("health-scored run granted no recovery probes to the sick interface")
	}
	if breakerOnly[6] != "0" {
		t.Errorf("breaker-only run reports probes: %v", breakerOnly)
	}
}
