package experiment

import (
	"fmt"
	"sync"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

// HealthSweep measures what health-scored allocation buys over
// breaker-only degradation. The DBLP hidden database is served through
// three interfaces: h0 and h1 each hold one half, and h2 — the deep,
// attractive aggregator — holds the whole corpus, so its marginal-benefit
// bids dominate a naive allocation. h2 then suffers a sustained
// unavailable-heavy fault: 70% of its queries fail for the whole run —
// too intermittent for a consecutive-failure breaker to hold open, since
// 30% of attempts still succeed and reset it. One global budget is spent
// twice: once breaker-only, once with health scoring layered on.
//
// The health-scored run must match or beat breaker-only on coverage per
// budget, and waste strictly fewer charged queries on the sick
// interface: the EWMA score decays on every failure (not just
// consecutive ones), so the allocator steers rounds toward the healthy
// interfaces while recovery probes keep h2 rankable. Both runs replay
// byte-identically, the determinism bar every crawl mode here meets.
func HealthSweep(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	corpus := s.Instance.Hidden
	n := corpus.Len()
	tables := []*relational.Table{
		subset(corpus, "h0", 0, n/2),
		subset(corpus, "h1", n/2, n),
		subset(corpus, "h2", 0, n),
	}
	const sick = 2
	profile, err := deepweb.ParseFaultProfile("unavailable=0.7,attempts=1000000")
	if err != nil {
		return nil, err
	}
	profile.Seed = p.Seed

	// The sick aggregator answers with four times the healthy result
	// limit, so its estimated benefits genuinely dominate — the trap a
	// naive allocation walks into every round.
	ks := []int{p.K / 2, p.K / 2, p.K * 2}
	build := func() ([]crawler.Interface, []*attemptCounter) {
		ifaces := make([]crawler.Interface, len(tables))
		counters := make([]*attemptCounter, len(tables))
		for i, tbl := range tables {
			var searcher deepweb.Searcher = newSimDB(tbl, s, ks[i])
			if i == sick {
				searcher = deepweb.NewFaulty(searcher, profile)
			}
			counters[i] = &attemptCounter{Searcher: searcher}
			ifaces[i] = crawler.Interface{
				Name:     fmt.Sprintf("h%d", i),
				Searcher: counters[i],
				Sample:   sample.Bernoulli(tbl, p.Theta, stats.NewRNG(p.Seed^uint64(i))),
				Breaker:  deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 3}),
			}
		}
		return ifaces, counters
	}

	type outcome struct {
		res      *crawler.Result
		fp       string
		attempts int
		wasted   int
		probes   int
	}
	run := func(health bool) (*outcome, error) {
		ifaces, counters := build()
		cfg := crawler.SmartConfig{BatchSize: 4, Concurrency: 4, MaxAttempts: 3}
		if health {
			// Default tuning except a faster probe cadence: the sweep's
			// budget spans a few dozen allocation rounds, so ProbeEvery=8
			// lets recovery probes actually appear in the table.
			cfg.Health = &crawler.HealthConfig{Alpha: 0.2, MinScore: 0.05, ProbeEvery: 8}
		}
		env := s.Env()
		env.Searcher = nil
		o := obs.New()
		env.Obs = o
		c, err := crawler.NewFederatedSmart(env, cfg, ifaces)
		if err != nil {
			return nil, err
		}
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		if rep := res.Resilience; rep == nil || !rep.Accounted() {
			return nil, fmt.Errorf("resilience report unaccounted: %v", rep)
		}
		return &outcome{res: res, fp: fingerprint(res),
			attempts: counters[sick].attempts, wasted: counters[sick].wasted,
			probes: int(o.Iface(fmt.Sprintf("h%d", sick)).Probes.Value())}, nil
	}

	t := &Table{
		Title: fmt.Sprintf("Extension: health-scored allocation vs breaker-only under a sustained fault on h2 (b=%d)", p.Budget),
		Header: []string{"mode", "coverage", "cov/budget", "queries",
			"sick attempts", "sick wasted", "probes", "deterministic"},
	}
	outs := make(map[bool]*outcome)
	for _, health := range []bool{false, true} {
		out, err := run(health)
		if err != nil {
			return nil, fmt.Errorf("experiment: health sweep (health=%v): %w", health, err)
		}
		again, err := run(health)
		if err != nil {
			return nil, fmt.Errorf("experiment: health sweep (health=%v, replay): %w", health, err)
		}
		if out.fp != again.fp {
			return nil, fmt.Errorf("experiment: health sweep (health=%v): replay diverged from first run", health)
		}
		outs[health] = out
		mode := "breaker-only"
		if health {
			mode = "health+breaker"
		}
		t.AddRow(mode, out.res.CoveredCount,
			fmt.Sprintf("%.3f", float64(out.res.CoveredCount)/float64(p.Budget)),
			out.res.QueriesIssued, out.attempts, out.wasted, out.probes, "yes")
	}
	if outs[true].res.CoveredCount < outs[false].res.CoveredCount {
		return nil, fmt.Errorf("experiment: health sweep: health-scored coverage %d fell below breaker-only %d",
			outs[true].res.CoveredCount, outs[false].res.CoveredCount)
	}
	if outs[true].wasted >= outs[false].wasted {
		return nil, fmt.Errorf("experiment: health sweep: health-scored run wasted %d charged queries on h2, breaker-only %d — scoring bought nothing",
			outs[true].wasted, outs[false].wasted)
	}
	t.Notes = append(t.Notes,
		"h2 fails 70% of its queries for the whole run; its breaker needs 3 consecutive failures and keeps resetting",
		"sick wasted = charged attempts against h2 that returned an error (budget spent, nothing absorbed)",
		"the EWMA score decays on every failure, so the allocator shifts rounds to h0/h1; probe rounds keep h2 rankable for recovery")
	return t, nil
}

// attemptCounter counts raw Search attempts against one interface, and
// the charged-but-failed subset — budget the crawl spent on a sick
// interface without absorbing anything.
type attemptCounter struct {
	deepweb.Searcher
	mu       sync.Mutex
	attempts int
	wasted   int
}

func (c *attemptCounter) Search(q deepweb.Query) ([]*relational.Record, error) {
	recs, err := c.Searcher.Search(q)
	c.mu.Lock()
	c.attempts++
	if err != nil && deepweb.Charged(err) {
		c.wasted++
	}
	c.mu.Unlock()
	return recs, err
}
