// Package experiment is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§7). It wires datasets, hidden-
// database simulators, samples, and crawl frameworks into parameterized
// runs (Table 3), computes the paper's metrics (coverage, relative
// coverage, recall), and renders results as text tables or CSV. Each
// figure/table has a dedicated function, indexed in DESIGN.md and invoked
// both by `go test -bench` targets and by cmd/experiments.
package experiment

import (
	"errors"
	"fmt"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// Params mirrors the paper's Table 3. Zero values select the defaults of
// the scaled profile in use.
type Params struct {
	// CorpusSize is the synthetic-DBLP corpus the databases are drawn
	// from.
	CorpusSize int
	// HiddenSize is |H| (paper default 100,000).
	HiddenSize int
	// LocalSize is |D| (paper default 10,000).
	LocalSize int
	// K is the result limit (paper default 100).
	K int
	// DeltaD is |ΔD| (paper default 0).
	DeltaD int
	// Budget is b (paper default 20% of |D|).
	Budget int
	// Theta is the sampling ratio θ (paper default 0.5%).
	Theta float64
	// ErrorRate is error% (paper default 0).
	ErrorRate float64
	// JaccardThreshold is the fuzzy-match threshold used when ErrorRate
	// > 0 (§6.1; paper example 0.9, we default to 0.6 which tolerates
	// one edit on short titles).
	JaccardThreshold float64
	// Seed drives all randomness.
	Seed uint64
	// Workers is the crawl pipeline's worker-pool size for experiments
	// that exercise the concurrent dispatcher (ablate-batch, parallel).
	// 0 keeps the per-experiment default. Coverage numbers are
	// worker-count-invariant by construction; only wall-clock moves.
	Workers int
}

// PaperScale returns the paper's default parameters (Table 3). A full run
// at this scale takes minutes; benches use Scaled instead.
func PaperScale() Params {
	return Params{
		CorpusSize:       400000,
		HiddenSize:       100000,
		LocalSize:        10000,
		K:                100,
		Budget:           2000, // 20% of |D|
		Theta:            0.005,
		JaccardThreshold: 0.6,
		Seed:             42,
	}
}

// Scaled returns the defaults shrunk by factor f in both database sizes
// (budget stays at 20% of |D|), for fast benches: Scaled(0.2) ≈ |H|=20k,
// |D|=2k.
func Scaled(f float64) Params {
	p := PaperScale()
	p.CorpusSize = int(float64(p.CorpusSize) * f)
	p.HiddenSize = int(float64(p.HiddenSize) * f)
	p.LocalSize = int(float64(p.LocalSize) * f)
	p.Budget = p.LocalSize / 5
	return p
}

// Approach names a crawl framework configuration.
type Approach string

// The approaches compared throughout §7.
const (
	SmartB Approach = "smartcrawl-b" // QSel-Est with biased estimators
	SmartU Approach = "smartcrawl-u" // QSel-Est with unbiased estimators
	Simple Approach = "qsel-simple"  // frequency-only selection
	Ideal  Approach = "idealcrawl"   // oracle greedy (upper bound)
	Naive  Approach = "naivecrawl"
	Full   Approach = "fullcrawl"
	Bound  Approach = "qsel-bound"
)

// Setup is a materialized experiment instance: databases, search
// interface, sample, and ground truth.
type Setup struct {
	Params   Params
	Instance *dataset.Instance
	DB       *hidden.Database
	Sample   *sample.Sample
	Tok      *tokenize.Tokenizer
	Matcher  match.Matcher

	// hiddenToLocal inverts Truth for curve computation.
	hiddenToLocal map[int][]int
}

// NewDBLPSetup builds the simulated-DBLP environment of §7.1.1 for the
// given parameters: conjunctive top-k interface ranked by year, Bernoulli
// sample with known θ, exact matching (or Jaccard when ErrorRate > 0).
func NewDBLPSetup(p Params) (*Setup, error) {
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: p.CorpusSize,
		HiddenSize: p.HiddenSize,
		LocalSize:  p.LocalSize,
		DeltaD:     p.DeltaD,
		ErrorRate:  p.ErrorRate,
		Seed:       p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tk := tokenize.New()
	db := hidden.New(in.Hidden, tk, p.K,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	var m match.Matcher
	if p.ErrorRate > 0 {
		th := p.JaccardThreshold
		if th == 0 {
			th = 0.6
		}
		m = match.NewJaccardOn(tk, th, in.LocalKey, in.HiddenKey)
	} else {
		m = match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	}
	smp := sample.Bernoulli(in.Hidden, p.Theta, stats.NewRNG(p.Seed^0xabcdef))
	return newSetup(p, in, db, smp, tk, m), nil
}

// NewYelpSetup builds the real-hidden-database stand-in of §7.3: a
// Yelp-like business table behind a NON-conjunctive ranked interface with
// k = 50, drifted local data, Jaccard matching, and a sample built by the
// keyword random-walk sampler through the interface itself (its query cost
// is reported in Sample.QueriesSpent, amortized offline as in the paper).
func NewYelpSetup(p Params) (*Setup, error) {
	in, err := dataset.GenerateYelp(dataset.YelpConfig{
		HiddenSize: p.HiddenSize,
		LocalSize:  p.LocalSize,
		DriftRate:  p.ErrorRate,
		DeltaD:     p.DeltaD,
		Seed:       p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tk := tokenize.New()
	k := p.K
	if k == 0 {
		k = 50
	}
	db := hidden.New(in.Hidden, tk, k,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeRanked)
	th := p.JaccardThreshold
	if th == 0 {
		th = 0.6
	}
	m := match.NewJaccardOn(tk, th, in.LocalKey, in.HiddenKey)

	// Sample through the interface, as the paper does for Yelp. The
	// query spend is bounded (the paper spent 6,483 queries for its 500-
	// record sample); if the allowance runs out we proceed with the
	// partial sample.
	pool := sample.SingleKeywordPool(in.Local, tk)
	target := int(p.Theta * float64(p.HiddenSize))
	if target < 20 {
		target = 20
	}
	smp, err := sample.Keyword(db, pool, tk, sample.KeywordConfig{
		Target:     target,
		MaxQueries: 200 * target,
		Seed:       p.Seed ^ 0x5eed,
	})
	if err != nil && !errors.Is(err, sample.ErrSampleBudget) {
		return nil, fmt.Errorf("experiment: yelp sampling: %w", err)
	}
	if smp.Len() == 0 {
		return nil, fmt.Errorf("experiment: yelp sampling produced no records")
	}
	if smp.Theta <= 0 {
		// The degree estimator needs accepted draws; on a starved run
		// fall back to the true ratio (simulation-only convenience,
		// flagged in the experiment notes).
		smp.Theta = float64(smp.Len()) / float64(in.Hidden.Len())
	}
	return newSetup(p, in, db, smp, tk, m), nil
}

func newSetup(p Params, in *dataset.Instance, db *hidden.Database, smp *sample.Sample, tk *tokenize.Tokenizer, m match.Matcher) *Setup {
	h2l := make(map[int][]int)
	for d, h := range in.Truth {
		if h >= 0 {
			h2l[h] = append(h2l[h], d)
		}
	}
	return &Setup{
		Params: p, Instance: in, DB: db, Sample: smp, Tok: tk,
		Matcher: m, hiddenToLocal: h2l,
	}
}

// Env builds the crawl environment for this setup.
func (s *Setup) Env() *crawler.Env {
	return &crawler.Env{
		Local:     s.Instance.Local,
		Searcher:  s.DB,
		Tokenizer: s.Tok,
		Matcher:   s.Matcher,
	}
}

// Crawler instantiates the named approach.
func (s *Setup) Crawler(a Approach) (crawler.Crawler, error) {
	env := s.Env()
	switch a {
	case SmartB:
		return crawler.NewSmart(env, crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
		})
	case SmartU:
		return crawler.NewSmart(env, crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Unbiased{}, AlphaFallback: true,
		})
	case Simple:
		return crawler.NewSmart(env, crawler.SmartConfig{})
	case Ideal:
		return crawler.NewIdeal(env, s.DB, querypool.Config{})
	case Naive:
		return crawler.NewNaive(env, nil, s.Params.Seed)
	case Full:
		return crawler.NewFull(env, s.Sample)
	case Bound:
		return crawler.NewBound(env, querypool.Config{})
	default:
		return nil, fmt.Errorf("experiment: unknown approach %q", a)
	}
}

// Run executes the named approach with the given budget.
func (s *Setup) Run(a Approach, budget int) (*crawler.Result, error) {
	c, err := s.Crawler(a)
	if err != nil {
		return nil, err
	}
	return c.Run(budget)
}

// TruthCoverage counts local records whose ground-truth hidden match was
// crawled — the paper's coverage metric, which assumes a perfect ER
// component downstream of crawling (§7.1.2).
func (s *Setup) TruthCoverage(res *crawler.Result) int {
	n := 0
	for _, h := range s.Instance.Truth {
		if h < 0 {
			continue
		}
		if _, ok := res.Crawled[h]; ok {
			n++
		}
	}
	return n
}

// MaxCoverable is |D| − |ΔD|, the denominator of relative coverage and
// recall.
func (s *Setup) MaxCoverable() int {
	return s.Instance.Local.Len() - s.Instance.DeltaD
}

// CoverageCurve returns cumulative truth coverage after each issued query,
// computed from the run's step trace. curve[i] is the coverage after i+1
// queries.
func (s *Setup) CoverageCurve(res *crawler.Result) []int {
	covered := make(map[int]bool)
	curve := make([]int, len(res.Steps))
	total := 0
	for i, st := range res.Steps {
		for _, h := range st.NewHidden {
			for _, d := range s.hiddenToLocal[h] {
				if !covered[d] {
					covered[d] = true
					total++
				}
			}
		}
		curve[i] = total
	}
	return curve
}

// CoverageAt reads the curve at the given budget (queries issued),
// clamping to the end of the run.
func CoverageAt(curve []int, budget int) int {
	if len(curve) == 0 {
		return 0
	}
	if budget > len(curve) {
		budget = len(curve)
	}
	if budget <= 0 {
		return 0
	}
	return curve[budget-1]
}
