package experiment

import (
	"fmt"
	"strings"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

// Federated reproduces a Yelp+Google-style two-source enrichment: the
// DBLP hidden database is split into two overlapping sources — a deep
// one with a small result limit and a shallow, flakier one (transient10
// faults) with a larger k — and one global budget is spent either on a
// single source or federated across both with marginal-benefit
// allocation. Coverage here is ER coverage (CoveredCount): federated
// runs namespace hidden record IDs per interface, so the truth-based
// metric does not apply unchanged.
//
// The federated run is executed twice and must produce byte-identical
// issued-query logs and coverage — the determinism bar every other crawl
// mode in this repo meets.
func Federated(p Params) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	corpus := s.Instance.Hidden
	n := corpus.Len()
	// Overlapping split: source A holds the first two thirds, source B
	// the last two thirds — the middle third is reachable through both,
	// which is what makes cross-interface dedupe observable.
	tableA := subset(corpus, "hidden-a", 0, n*2/3)
	tableB := subset(corpus, "hidden-b", n/3, n)
	kA := s.Params.K
	kB := s.Params.K / 2
	if kB < 1 {
		kB = 1
	}
	profile, err := deepweb.ParseFaultProfile("transient10")
	if err != nil {
		return nil, err
	}
	profile.Seed = p.Seed

	build := func() (a, b crawler.Interface) {
		dbA := newSimDB(tableA, s, kA)
		dbB := newSimDB(tableB, s, kB)
		a = crawler.Interface{
			Name:     "deep-a",
			Searcher: dbA,
			Sample:   sample.Bernoulli(tableA, p.Theta, stats.NewRNG(p.Seed^0xa)),
			Breaker:  deepweb.NewBreaker(deepweb.BreakerConfig{}),
		}
		b = crawler.Interface{
			Name:     "flaky-b",
			Searcher: &deepweb.Retrying{S: deepweb.NewFaulty(dbB, profile), Retries: 2},
			Sample:   sample.Bernoulli(tableB, p.Theta, stats.NewRNG(p.Seed^0xb)),
			Breaker:  deepweb.NewBreaker(deepweb.BreakerConfig{}),
		}
		return a, b
	}

	t := &Table{
		Title: fmt.Sprintf("Extension: federated two-source crawl — marginal-benefit budget allocation (b=%d)", p.Budget),
		Header: []string{"interfaces", "k", "faults", "coverage", "queries",
			"requeued", "forfeited", "deterministic"},
	}

	runFederated := func(ifaces []crawler.Interface) (*crawler.Result, string, error) {
		env := s.Env()
		env.Searcher = nil
		c, err := crawler.NewFederatedSmart(env, crawler.SmartConfig{
			BatchSize: 4, Concurrency: 4, MaxAttempts: 3,
		}, ifaces)
		if err != nil {
			return nil, "", err
		}
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, "", err
		}
		return res, fingerprint(res), nil
	}

	for _, row := range []struct {
		label, k, faults string
		pick             func(a, b crawler.Interface) []crawler.Interface
	}{
		{"single deep-a", fmt.Sprint(kA), "none",
			func(a, _ crawler.Interface) []crawler.Interface { return []crawler.Interface{a} }},
		{"single flaky-b", fmt.Sprint(kB), "transient10",
			func(_, b crawler.Interface) []crawler.Interface { return []crawler.Interface{b} }},
		{"federated a+b", fmt.Sprintf("%d/%d", kA, kB), "transient10 on b",
			func(a, b crawler.Interface) []crawler.Interface { return []crawler.Interface{a, b} }},
	} {
		a, b := build()
		res, fp, err := runFederated(row.pick(a, b))
		if err != nil {
			return nil, fmt.Errorf("experiment: federated %s: %w", row.label, err)
		}
		// Replay from scratch: fresh interfaces, fresh fault state, same
		// seed — the run must reproduce byte-for-byte.
		a2, b2 := build()
		_, fp2, err := runFederated(row.pick(a2, b2))
		if err != nil {
			return nil, fmt.Errorf("experiment: federated %s (replay): %w", row.label, err)
		}
		if fp != fp2 {
			return nil, fmt.Errorf("experiment: federated %s: replay diverged from first run", row.label)
		}
		var requeued, forfeited int
		if rep := res.Resilience; rep != nil {
			if !rep.Accounted() {
				return nil, fmt.Errorf("experiment: federated %s: resilience report unaccounted: %s", row.label, rep)
			}
			requeued, forfeited = rep.Requeued, rep.Forfeited
		}
		t.AddRow(row.label, row.k, row.faults, res.CoveredCount, res.QueriesIssued,
			requeued, forfeited, "yes")
	}
	t.Notes = append(t.Notes,
		"sources overlap on the middle third of the corpus; the joiner dedupes cross-interface matches",
		"each round goes to the interface whose best unissued query promises the largest marginal benefit",
		"an open breaker diverts the round to the next-ranked interface instead of holding the crawl")
	return t, nil
}

// subset copies rows [lo, hi) of t into a fresh table (re-IDed
// positionally, as any independently crawled source would be).
func subset(t *relational.Table, name string, lo, hi int) *relational.Table {
	out := relational.NewTable(name, t.Schema)
	for _, r := range t.Records[lo:hi] {
		out.Append(r.Values...)
	}
	return out
}

// newSimDB serves t through the same conjunctive year-ranked interface
// the DBLP setup uses, at the given result limit.
func newSimDB(t *relational.Table, s *Setup, k int) *hidden.Database {
	return hidden.New(t, s.Tok, k,
		hidden.RankByNumericColumn(s.Instance.RankColumn), hidden.ModeConjunctive)
}

// fingerprint reduces a run to the byte string the determinism check
// compares: the issued-query log with interface tags, plus coverage.
func fingerprint(res *crawler.Result) string {
	var sb strings.Builder
	for _, st := range res.Steps {
		fmt.Fprintf(&sb, "%d\t%s\t%d\t%d\n", st.Iface, st.Query.Key(), st.NewlyCovered, st.ResultSize)
	}
	fmt.Fprintf(&sb, "covered=%d queries=%d\n", res.CoveredCount, res.QueriesIssued)
	return sb.String()
}
