package experiment

import (
	"fmt"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
)

// ParallelCrawl measures the concurrent crawl pipeline: the same
// DBLP-sim crawl is run with per-request latency injected in front of the
// search interface and an increasing worker count. Coverage and the
// issued-query log are invariant — the dispatcher merges results in
// selection order — so the table isolates the wall-clock effect of
// overlapping query round-trips, the dominant cost of a real crawl
// (Sheng et al.; Calì et al. both model remote calls as the bottleneck).
//
// Unlike the other experiment tables this one reports real elapsed time,
// so absolute numbers vary across machines; the speedup column is the
// stable signal.
func ParallelCrawl(p Params, latency time.Duration) (*Table, error) {
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	if latency <= 0 {
		latency = 5 * time.Millisecond
	}
	batch := 8
	workerCounts := []int{1, 2, 4, 8}
	if p.Workers > 0 {
		workerCounts = append(workerCounts, p.Workers)
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: parallel crawl pipeline (b=%d, batch=%d, %s/query injected latency)",
			p.Budget, batch, latency),
		Header: []string{"workers", "coverage", "queries", "wall-clock", "speedup"},
	}
	var base time.Duration
	var baseCoverage int
	for _, workers := range workerCounts {
		env := s.Env()
		env.Searcher = &deepweb.Delayed{S: env.Searcher, Delay: latency}
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: true,
			BatchSize: batch, Concurrency: workers,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		cov := s.TruthCoverage(res)
		if base == 0 {
			base, baseCoverage = elapsed, cov
		} else if cov != baseCoverage {
			return nil, fmt.Errorf("experiment: parallel crawl coverage drifted: %d workers covered %d, 1 worker covered %d",
				workers, cov, baseCoverage)
		}
		t.AddRow(workers, cov, res.QueriesIssued,
			elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	t.Notes = append(t.Notes,
		"coverage is identical across worker counts by construction (single-writer merge in selection order);",
		"speedup saturates at batch size — within a round only `batch` round-trips exist to overlap")
	return t, nil
}
