package experiment

import (
	"fmt"
	"math"
)

// Headline runs the paper's headline comparison — coverage of every
// framework at the default parameters — across several seeds and reports
// mean ± standard deviation plus SMARTCRAWL-B's speedup factors over the
// baselines. This is the statistical backing for the abstract's "2–10× in
// a large variety of situations" claim.
func Headline(p Params, seeds int) (*Table, error) {
	if seeds < 1 {
		seeds = 1
	}
	approaches := []Approach{Ideal, SmartB, Simple, Full, Naive}
	coverage := make(map[Approach][]float64, len(approaches))

	for s := 0; s < seeds; s++ {
		pp := p
		pp.Seed = p.Seed + uint64(s)*1000003
		setup, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		for _, a := range approaches {
			res, err := setup.Run(a, pp.Budget)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", a, s, err)
			}
			coverage[a] = append(coverage[a], float64(setup.TruthCoverage(res)))
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Headline: coverage at defaults over %d seeds (|H|=%d, |D|=%d, b=%d, k=%d, θ=%.2f%%)",
			seeds, p.HiddenSize, p.LocalSize, p.Budget, p.K, p.Theta*100),
		Header: []string{"approach", "coverage mean", "stddev", "smart-b speedup"},
	}
	smartMean, _ := MeanStd(coverage[SmartB])
	for _, a := range approaches {
		mean, std := MeanStd(coverage[a])
		speedup := "—"
		if a != SmartB && mean > 0 {
			speedup = fmt.Sprintf("%.2fx", smartMean/mean)
		}
		t.AddRow(string(a), mean, std, speedup)
	}
	t.Notes = append(t.Notes,
		"speedup = smartcrawl-b mean coverage / approach mean coverage; the paper reports 2–10× over naive/full")
	return t, nil
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
