package experiment

import (
	"fmt"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/index"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
)

// checkpoints returns n evenly spaced budget checkpoints up to max.
func checkpoints(max, n int) []int {
	if n <= 0 {
		n = 10
	}
	if max < n {
		n = max
	}
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, max*i/n)
	}
	return out
}

// curveTable runs the named approaches once at full budget each and renders
// their truth-coverage curves at the checkpoints.
func (s *Setup) curveTable(title string, budget int, approaches []Approach) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"budget"},
	}
	cps := checkpoints(budget, 10)
	curves := make([][]int, len(approaches))
	for i, a := range approaches {
		res, err := s.Run(a, budget)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		curves[i] = s.CoverageCurve(res)
		t.Header = append(t.Header, string(a))
	}
	for _, b := range cps {
		row := []interface{}{b}
		for _, c := range curves {
			row = append(row, CoverageAt(c, b))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table2RunningExample reproduces Table 2: the true benefit of each
// running-example pool query versus its biased-estimator value (k = 2,
// θ = 1/3), before any query is issued.
func Table2RunningExample() (*Table, error) {
	u := fixture.New()
	pool := querypool.Generate(u.Local, u.Tokenizer, querypool.Config{MinSupport: 2, MaxQueryLen: 3})
	invD := index.BuildInverted(u.Local.Records, u.Tokenizer)
	invS := index.BuildInverted(reID(u.Sample.Records), u.Tokenizer)

	// Matching on the name column (hidden records carry ratings).
	matcher := match.NewExactOn(u.Tokenizer, nil, []int{0})
	joiner := match.NewJoiner(u.Local.Records, u.Tokenizer, matcher)

	t := &Table{
		Title:  "Table 2: true vs estimated benefits (running example, k=2, θ=1/3)",
		Header: []string{"query", "|q(D)|", "|q(Hs)|", "type", "true benefit", "biased est", "unbiased est"},
	}
	biased, unbiased := estimator.Biased{}, estimator.Unbiased{}
	for _, q := range pool.Queries {
		qD := invD.Lookup(q.Keywords)
		freqS := invS.Count(q.Keywords)
		matchS := 0
		for _, pos := range invS.Lookup(q.Keywords) {
			for _, d := range joiner.Matches(u.Sample.Records[pos]) {
				if containsInt(qD, d) {
					matchS++
				}
			}
		}
		st := estimator.Stats{
			FreqD: len(qD), FreqSample: freqS, MatchSample: matchS,
			Theta: u.Theta, K: u.K,
		}
		// True benefit: issue against the oracle.
		recs, err := u.DB.Search(q.Keywords)
		if err != nil {
			return nil, err
		}
		trueBenefit := len(joiner.CoveredBy(recs))
		qtype := "solid"
		if estimator.PredictOverflow(st) {
			qtype = "overflow"
		}
		t.AddRow(q.Keywords.String(), len(qD), freqS, qtype,
			trueBenefit, biased.Benefit(st), unbiased.Benefit(st))
	}
	t.Notes = append(t.Notes,
		"biased estimates should track true benefits closely; unbiased ones are coarse multiples of 1/θ")
	return t, nil
}

// Figure4 reproduces Figure 4: the impact of the sampling ratio.
// Tables: (a) coverage vs budget at θ = 0.2%; (b) at θ = 1%; (c) coverage
// at the default budget as θ sweeps 0.1% → 1%.
func Figure4(p Params) ([]*Table, error) {
	var out []*Table
	approaches := []Approach{Ideal, SmartB, SmartU, Full, Naive}

	for _, theta := range []float64{0.002, 0.01} {
		pp := p
		pp.Theta = theta
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		t, err := s.curveTable(
			fmt.Sprintf("Figure 4(%c): coverage vs budget, θ=%.1f%%", 'a'+len(out), theta*100),
			pp.Budget, approaches)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "expected: smartcrawl-b ≈ idealcrawl ≫ fullcrawl > naivecrawl; smartcrawl-u weak at small θ")
		out = append(out, t)
	}

	sweep := &Table{
		Title:  fmt.Sprintf("Figure 4(c): coverage at b=%d vs sampling ratio", p.Budget),
		Header: []string{"theta", string(Ideal), string(SmartB), string(SmartU), string(Full), string(Naive)},
	}
	for _, theta := range []float64{0.001, 0.002, 0.005, 0.01} {
		pp := p
		pp.Theta = theta
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		row := []interface{}{fmt.Sprintf("%.1f%%", theta*100)}
		for _, a := range []Approach{Ideal, SmartB, SmartU, Full, Naive} {
			res, err := s.Run(a, pp.Budget)
			if err != nil {
				return nil, err
			}
			row = append(row, s.TruthCoverage(res))
		}
		sweep.AddRow(row...)
	}
	sweep.Notes = append(sweep.Notes, "expected: smartcrawl-b closes on idealcrawl as θ grows; smartcrawl-u improves with θ")
	out = append(out, sweep)
	return out, nil
}

// Figure5 reproduces Figure 5: the impact of the local database size.
// Tables: coverage-vs-budget curves for two small |D| values, then
// relative coverage as |D| sweeps across four orders of magnitude.
func Figure5(p Params) ([]*Table, error) {
	var out []*Table
	approaches := []Approach{Ideal, SmartB, Full, Naive}

	// The paper's |D| = 100 and |D| = 1000 panels, scaled by |H|.
	small := p.HiddenSize / 1000
	if small < 20 {
		small = 20
	}
	for _, localSize := range []int{small, small * 10} {
		pp := p
		pp.LocalSize = localSize
		pp.Budget = maxInt(localSize/2, 10)
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		t, err := s.curveTable(
			fmt.Sprintf("Figure 5: coverage vs budget, |D|=%d (|H|=%d)", localSize, pp.HiddenSize),
			pp.Budget, approaches)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "expected: fullcrawl collapses when |D| ≪ |H|")
		out = append(out, t)
	}

	sweep := &Table{
		Title:  "Figure 5(c): relative coverage vs |D| (b = 20% |D|)",
		Header: []string{"|D|", string(Ideal), string(SmartB), string(Full), string(Naive)},
	}
	for _, frac := range []float64{0.0005, 0.005, 0.05, 0.1} {
		localSize := int(frac * float64(p.HiddenSize))
		if localSize < 10 {
			localSize = 10
		}
		pp := p
		pp.LocalSize = localSize
		pp.Budget = maxInt(localSize/5, 5)
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		row := []interface{}{localSize}
		for _, a := range []Approach{Ideal, SmartB, Full, Naive} {
			res, err := s.Run(a, pp.Budget)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f%%",
				100*float64(s.TruthCoverage(res))/float64(s.MaxCoverable())))
		}
		sweep.AddRow(row...)
	}
	sweep.Notes = append(sweep.Notes,
		"expected: every approach except naivecrawl improves with |D| (query sharing); naivecrawl flat at ≈ b/|D|")
	out = append(out, sweep)
	return out, nil
}

// Figure6 reproduces Figure 6: the impact of the top-k result limit.
func Figure6(p Params) ([]*Table, error) {
	var out []*Table
	approaches := []Approach{Ideal, SmartB, Full, Naive}

	for _, k := range []int{50, 500} {
		pp := p
		pp.K = k
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		t, err := s.curveTable(
			fmt.Sprintf("Figure 6: coverage vs budget, k=%d", k),
			pp.Budget, approaches)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}

	sweep := &Table{
		Title:  fmt.Sprintf("Figure 6(c): coverage at b=%d vs k", p.Budget),
		Header: []string{"k", string(Ideal), string(SmartB), string(Full), string(Naive)},
	}
	for _, k := range []int{1, 50, 100, 500} {
		pp := p
		pp.K = k
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		row := []interface{}{k}
		for _, a := range []Approach{Ideal, SmartB, Full, Naive} {
			res, err := s.Run(a, pp.Budget)
			if err != nil {
				return nil, err
			}
			row = append(row, s.TruthCoverage(res))
		}
		sweep.AddRow(row...)
	}
	sweep.Notes = append(sweep.Notes,
		"expected: naivecrawl flat in k; smartcrawl-b ≈ naivecrawl at k=1, grows with k")
	out = append(out, sweep)
	return out, nil
}

// Figure7 reproduces Figure 7: the impact of |ΔD| on the biased estimator.
func Figure7(p Params) ([]*Table, error) {
	var out []*Table
	approaches := []Approach{Ideal, SmartB, Simple, Full, Naive}
	for _, frac := range []float64{0.05, 0.20, 0.30} {
		pp := p
		pp.DeltaD = int(frac * float64(p.LocalSize))
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		t, err := s.curveTable(
			fmt.Sprintf("Figure 7: coverage vs budget, |ΔD| = %.0f%% of |D|", frac*100),
			pp.Budget, approaches)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes,
			"expected: smartcrawl-b drifts from idealcrawl as |ΔD| grows but stays on top of the baselines")
		out = append(out, t)
	}
	return out, nil
}

// Figure8 reproduces Figure 8: robustness to fuzzy matching (error%).
func Figure8(p Params) ([]*Table, error) {
	var out []*Table
	for _, errRate := range []float64{0.05, 0.50} {
		pp := p
		pp.ErrorRate = errRate
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		t, err := s.curveTable(
			fmt.Sprintf("Figure 8: coverage vs budget, error%% = %.0f%%", errRate*100),
			pp.Budget, []Approach{SmartB, Naive})
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes,
			"expected: smartcrawl-b loses only a few percent at error%=50 while naivecrawl collapses")
		out = append(out, t)
	}
	return out, nil
}

// Figure9 reproduces Figure 9: the Yelp-style real hidden database —
// non-conjunctive ranked interface, drifted local data, interface-built
// sample — reporting recall vs budget.
func Figure9(p Params) (*Table, error) {
	s, err := NewYelpSetup(p)
	if err != nil {
		return nil, err
	}
	budget := p.Budget
	approaches := []Approach{SmartB, Naive, Full}
	curves := make([][]int, len(approaches))
	for i, a := range approaches {
		res, err := s.Run(a, budget)
		if err != nil {
			return nil, err
		}
		curves[i] = s.CoverageCurve(res)
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 9: recall vs budget on the Yelp-style hidden DB (k=%d, non-conjunctive, sample cost %d queries)",
			s.DB.K(), s.Sample.QueriesSpent),
		Header: []string{"budget", string(SmartB), string(Naive), string(Full)},
	}
	denom := float64(s.MaxCoverable())
	for _, b := range checkpoints(budget, 10) {
		row := []interface{}{b}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.1f%%", 100*float64(CoverageAt(c, b))/denom))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected: smartcrawl-b reaches its recall plateau with roughly half the budget naivecrawl needs;",
		"fullcrawl performs poorly (|D| ≪ |H|). At budget ≈ |D| naivecrawl can close most of the gap —",
		"drifted records inflate QSel-Est's bias (§6.1), so late smartcrawl budget re-targets records the",
		"matcher cannot resolve. On the real Yelp the paper saw naivecrawl plateau below smartcrawl outright.")
	return t, nil
}

// BoundGuarantee exercises §4.1 / Lemma 2: with |ΔD| > 0, QSel-Bound's
// coverage must stay above (1 − |ΔD|/b)·N_ideal, and QSel-Simple tends to
// beat QSel-Bound in practice (wasted re-selections). The lemma is proved
// under Assumption 2 (no top-k constraint) — its ΔD prediction
// q(D) − q(D)_cover is only sound when results are never truncated — so
// the experiment lifts k to |H|.
func BoundGuarantee(p Params) (*Table, error) {
	pp := p
	if pp.DeltaD == 0 {
		pp.DeltaD = p.LocalSize / 20
	}
	pp.K = pp.HiddenSize // Assumption 2: no effective top-k
	s, err := NewDBLPSetup(pp)
	if err != nil {
		return nil, err
	}
	// With no top-k, broad mined queries cover nearly all of D in a
	// handful of selections and the bound holds trivially; restricting
	// the pool to the per-record specific queries (MinSupport beyond
	// |D|) exposes the regime the lemma is about — budgets comparable to
	// |ΔD|, one covered record per query, wasted selections on ΔD.
	specificOnly := querypool.Config{MinSupport: pp.LocalSize + 1}
	t := &Table{
		Title:  fmt.Sprintf("Lemma 2: QSel-Bound guarantee (|ΔD|=%d, k=∞ per Assumption 2)", pp.DeltaD),
		Header: []string{"budget", "N_ideal", "N_bound", "lower bound", "holds", "N_simple", "bound reselections"},
	}
	// The guarantee is interesting when b is comparable to |ΔD| (its
	// slack factor is 1 − |ΔD|/b).
	budgets := []int{pp.DeltaD, 2 * pp.DeltaD, 4 * pp.DeltaD, 8 * pp.DeltaD}
	for _, b := range budgets {
		ideal, err := crawler.NewIdeal(s.Env(), s.DB, specificOnly)
		if err != nil {
			return nil, err
		}
		resI, err := ideal.Run(b)
		if err != nil {
			return nil, err
		}
		boundCrawler, err := crawler.NewBound(s.Env(), specificOnly)
		if err != nil {
			return nil, err
		}
		resB, err := boundCrawler.Run(b)
		if err != nil {
			return nil, err
		}
		simple, err := crawler.NewSmart(s.Env(), crawler.SmartConfig{PoolConfig: specificOnly})
		if err != nil {
			return nil, err
		}
		resS, err := simple.Run(b)
		if err != nil {
			return nil, err
		}
		nI := s.TruthCoverage(resI)
		nB := s.TruthCoverage(resB)
		nS := s.TruthCoverage(resS)
		lower := (1 - float64(pp.DeltaD)/float64(b)) * float64(nI)
		if lower < 0 {
			lower = 0
		}
		t.AddRow(b, nI, nB, lower, float64(nB) >= lower,
			nS, boundCrawler.Reselections)
	}
	t.Notes = append(t.Notes, "holds must be true on every row; N_simple usually ≥ N_bound (§4.1)")
	return t, nil
}

// EstimatorAccuracy quantifies Table 1's estimators against oracle
// benefits across sampling ratios: mean absolute error and mean signed
// error (bias), split by true query type.
func EstimatorAccuracy(p Params) (*Table, error) {
	t := &Table{
		Title: "Estimator accuracy vs oracle benefit (before any query is issued)",
		Header: []string{"theta", "type", "queries",
			"biased MAE", "biased bias", "unbiased MAE", "unbiased bias", "freq MAE"},
	}
	for _, theta := range []float64{0.001, 0.005, 0.02} {
		pp := p
		pp.Theta = theta
		s, err := NewDBLPSetup(pp)
		if err != nil {
			return nil, err
		}
		pool := querypool.Generate(s.Instance.Local, s.Tok, querypool.Config{})
		invD := index.BuildInverted(s.Instance.Local.Records, s.Tok)
		invS := index.BuildInverted(reID(s.Sample.Records), s.Tok)
		joiner := match.NewJoiner(s.Instance.Local.Records, s.Tok, s.Matcher)
		alpha := theta * float64(s.Instance.Local.Len()) / float64(maxInt(s.Sample.Len(), 1))

		type agg struct {
			n                                    int
			biasedAbs, biasedSigned              float64
			unbiasedAbs, unbiasedSigned, freqAbs float64
		}
		sums := map[string]*agg{"solid": {}, "overflow": {}}

		for _, q := range pool.Queries {
			qD := invD.Lookup(q.Keywords)
			if len(qD) == 0 {
				continue
			}
			freqS := invS.Count(q.Keywords)
			matchS := 0
			for _, pos := range invS.Lookup(q.Keywords) {
				for _, d := range joiner.Matches(s.Sample.Records[pos]) {
					if containsInt(qD, d) {
						matchS++
					}
				}
			}
			st := estimator.Stats{
				FreqD: len(qD), FreqSample: freqS, MatchSample: matchS,
				Theta: theta, K: s.DB.K(), Alpha: alpha,
			}
			recs, err := s.DB.Search(q.Keywords)
			if err != nil {
				return nil, err
			}
			trueBenefit := float64(len(joiner.CoveredBy(recs)))
			kind := "solid"
			if s.DB.IsOverflowing(q.Keywords) {
				kind = "overflow"
			}
			a := sums[kind]
			a.n++
			be := (estimator.Biased{}).Benefit(st) - trueBenefit
			ue := (estimator.Unbiased{}).Benefit(st) - trueBenefit
			fe := (estimator.Frequency{}).Benefit(st) - trueBenefit
			a.biasedAbs += abs(be)
			a.biasedSigned += be
			a.unbiasedAbs += abs(ue)
			a.unbiasedSigned += ue
			a.freqAbs += abs(fe)
		}
		for _, kind := range []string{"solid", "overflow"} {
			a := sums[kind]
			if a.n == 0 {
				continue
			}
			n := float64(a.n)
			t.AddRow(fmt.Sprintf("%.1f%%", theta*100), kind, a.n,
				a.biasedAbs/n, a.biasedSigned/n,
				a.unbiasedAbs/n, a.unbiasedSigned/n, a.freqAbs/n)
		}
	}
	t.Notes = append(t.Notes,
		"expected: biased MAE ≪ unbiased MAE at small θ; frequency MAE worst on overflowing queries")
	return t, nil
}

// AblateAlpha measures the §6.2 inadequate-sample fallback: coverage with
// and without α at a tiny sampling ratio.
func AblateAlpha(p Params) (*Table, error) {
	pp := p
	pp.Theta = 0.0005
	s, err := NewDBLPSetup(pp)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: α fallback (§6.2) at θ=%.2f%%", pp.Theta*100),
		Header: []string{"variant", "coverage", "queries"},
	}
	for _, on := range []bool{true, false} {
		c, err := crawler.NewSmart(s.Env(), crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{}, AlphaFallback: on,
		})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(pp.Budget)
		if err != nil {
			return nil, err
		}
		name := "with alpha"
		if !on {
			name = "without alpha"
		}
		t.AddRow(name, s.TruthCoverage(res), res.QueriesIssued)
	}
	t.Notes = append(t.Notes,
		"the fallback substitutes kα for unknown-frequency overflow benefits; it helps when D's keyword",
		"selectivities track H's and can mildly hurt when D is topically skewed relative to H (as here)")
	return t, nil
}

// AblateDeltaDRemoval measures the §4.2 removal optimization under a large
// ΔD.
func AblateDeltaDRemoval(p Params) (*Table, error) {
	pp := p
	if pp.DeltaD == 0 {
		pp.DeltaD = p.LocalSize / 5
	}
	s, err := NewDBLPSetup(pp)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: §4.2 ΔD removal (|ΔD|=%d)", pp.DeltaD),
		Header: []string{"variant", "coverage", "queries"},
	}
	for _, disable := range []bool{false, true} {
		c, err := crawler.NewSmart(s.Env(), crawler.SmartConfig{
			Sample: s.Sample, Estimator: estimator.Biased{},
			AlphaFallback: true, DisableDeltaDRemoval: disable,
		})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(pp.Budget)
		if err != nil {
			return nil, err
		}
		name := "with ΔD removal"
		if disable {
			name = "without ΔD removal"
		}
		t.AddRow(name, s.TruthCoverage(res), res.QueriesIssued)
	}
	return t, nil
}

// AblateHeap measures the §6.3 on-demand-update machinery: SMARTCRAWL
// selection cost with the lazy queue versus an eager full-rescan argmax of
// the same pool, plus the repush factor t of Appendix B. The budget is
// raised to |D| so selection cost (the thing being measured) dominates the
// constant pipeline setup.
func AblateHeap(p Params) (*Table, error) {
	p.Budget = p.LocalSize
	s, err := NewDBLPSetup(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: lazy priority queue (§6.3) vs eager rescan",
		Header: []string{"variant", "coverage", "per-iteration selection", "pool size", "heap repushes"},
	}

	var lazyCoverage, eagerCoverage int
	for _, eager := range []bool{false, true} {
		mk := func() (*crawler.Smart, error) {
			return crawler.NewSmart(s.Env(), crawler.SmartConfig{
				Sample: s.Sample, Estimator: estimator.Biased{},
				AlphaFallback: true, EagerSelection: eager,
			})
		}
		// Setup (pool generation, indexes, sample statistics) dominates
		// short runs and is identical for both variants; approximate it
		// with a budget-1 run and report the marginal per-iteration
		// selection cost, which is what §6.3 optimizes.
		warm, err := mk()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := warm.Run(1); err != nil {
			return nil, err
		}
		setup := time.Since(start)

		c, err := mk()
		if err != nil {
			return nil, err
		}
		start = time.Now()
		res, err := c.Run(p.Budget)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		perIter := time.Duration(0)
		if res.QueriesIssued > 1 {
			d := elapsed - setup
			if d < 0 {
				d = 0
			}
			perIter = d / time.Duration(res.QueriesIssued-1)
		}
		cov := s.TruthCoverage(res)
		if eager {
			eagerCoverage = cov
			t.AddRow("eager rescan (per-iteration argmax)", cov, perIter.String(), c.PoolSize, "n/a")
		} else {
			lazyCoverage = cov
			t.AddRow("lazy (Algorithm 4)", cov, perIter.String(), c.PoolSize, c.HeapRepushes)
		}
	}
	if lazyCoverage != eagerCoverage {
		return nil, fmt.Errorf("experiment: lazy (%d) and eager (%d) selection diverged — they must be equivalent",
			lazyCoverage, eagerCoverage)
	}
	t.Notes = append(t.Notes,
		"wall time is the marginal per-iteration selection cost (setup subtracted);",
		"both rows must cover identically (same selection); the lazy queue wins by |Q|/log|Q| per iteration at scale")
	return t, nil
}

// OmegaSensitivity tabulates the analytic cost of the ω = 1 assumption of
// §5.3: the relative error of the central-hypergeometric benefit estimate
// when the true draw odds ratio is ω.
func OmegaSensitivity() *Table {
	t := &Table{
		Title:  "Analysis: sensitivity to the ω=1 assumption (§5.3)",
		Header: []string{"omega", "E[benefit] (Fisher)", "assumed (central)", "relative error"},
	}
	const (
		N = 1000 // |q(H)|
		K = 100  // k
		n = 200  // |q(D) ∩ q(H)|
	)
	central := stats.FisherNoncentralMean(N, K, n, 1)
	for _, omega := range []float64{0.5, 1, 2, 4, 8} {
		truth := stats.FisherNoncentralMean(N, K, n, omega)
		relErr := 0.0
		if truth > 0 {
			relErr = (central - truth) / truth
		}
		t.AddRow(omega, truth, central, fmt.Sprintf("%+.1f%%", 100*relErr))
	}
	t.Notes = append(t.Notes,
		"ω > 1 (top-k records likelier to match D) makes the central assumption underestimate benefits")
	return t
}

// --- small helpers ---

func reID(recs []*relational.Record) []*relational.Record {
	out := make([]*relational.Record, len(recs))
	for i, r := range recs {
		out[i] = &relational.Record{ID: i, Values: r.Values}
	}
	return out
}

func containsInt(sorted []int, v int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
