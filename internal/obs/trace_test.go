package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// emitOneOfEach drives one event of every type through the public Obs
// hooks (never the tracer's unexported emitters) with deterministic
// clocks, so the golden bytes pin the schema exactly as production code
// produces it.
func emitOneOfEach() *bytes.Buffer {
	clock := fakeClock(5 * time.Millisecond)
	var buf bytes.Buffer
	tr := NewTracer(&buf).WithClock(clock)
	o := New().WithClock(clock)
	o.SetTracer(tr)

	stop := o.Phase("pool_generate")
	stop()
	o.Round(2, 48)
	o.Retry("thai noodle", 1, 200*time.Millisecond, errors.New("http 500"))
	o.RateLimitDenied("thai noodle", 0.5)
	o.Query("thai noodle", 3.5, 50, 3, 3, false)
	o.Checkpoint("run.ckpt", 3, 1)
	o.FaultInjected("rare dish", "timeout", 1)
	o.BreakerTransition("closed", "open", 5)
	o.Requeued("rare dish", 1, errors.New("injected timeout"))
	o.Forfeited("rare dish", 3, errors.New("injected timeout"))
	return &buf
}

// TestGoldenTrace pins the JSONL wire format byte-for-byte: field order
// (struct declaration order), number formatting, one event per line.
// Regenerate with `go test ./internal/obs -run TestGoldenTrace -update`
// after an intentional schema change.
func TestGoldenTrace(t *testing.T) {
	got := emitOneOfEach().Bytes()
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace bytes diverge from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceRoundTrip checks every emitted line is independently parseable
// by encoding/json and survives ParseEvents with fields intact.
func TestTraceRoundTrip(t *testing.T) {
	buf := emitOneOfEach()

	// Each line must unmarshal on its own.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
	}

	events, err := ParseEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []string{EventPhase, EventRound, EventRetry, EventRateLimit, EventQuery, EventCheckpoint,
		EventFault, EventBreaker, EventRequeue, EventForfeit}
	if len(events) != len(wantTypes) {
		t.Fatalf("got %d events, want %d", len(events), len(wantTypes))
	}
	for i, e := range events {
		if e.Type != wantTypes[i] {
			t.Errorf("event %d type = %q, want %q", i, e.Type, wantTypes[i])
		}
		if e.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i)
		}
	}
	q := events[4]
	if q.Query != "thai noodle" || q.EstBenefit != 3.5 || q.ResultSize != 50 ||
		q.NewCovered != 3 || q.CumCovered != 3 || q.Solid {
		t.Errorf("query event fields lost in round trip: %+v", q)
	}
	r := events[2]
	if r.Attempt != 1 || r.WaitMs != 200 || r.Err != "http 500" {
		t.Errorf("retry event fields lost in round trip: %+v", r)
	}
	f := events[6]
	if f.Query != "rare dish" || f.Class != "timeout" || f.Attempt != 1 {
		t.Errorf("fault event fields lost in round trip: %+v", f)
	}
	b := events[7]
	if b.From != "closed" || b.To != "open" || b.Failures != 5 {
		t.Errorf("breaker event fields lost in round trip: %+v", b)
	}
	ff := events[9]
	if ff.Query != "rare dish" || ff.Attempt != 3 || ff.Err != "injected timeout" {
		t.Errorf("forfeit event fields lost in round trip: %+v", ff)
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n       int
	wrote   int
	refused int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.n {
		f.refused++
		return 0, errors.New("disk full")
	}
	f.wrote += len(p)
	return len(p), nil
}

// TestTracerStickyError checks a write failure mutes the tracer instead
// of failing the crawl: the first error is retained, later events are
// dropped without further writes.
func TestTracerStickyError(t *testing.T) {
	w := &failAfter{n: 60} // room for roughly one line
	tr := NewTracer(w).WithClock(fakeClock(time.Millisecond))
	o := New()
	o.SetTracer(tr)

	o.Round(1, 10) // fits
	for i := 0; i < 5; i++ {
		o.Checkpoint("x.ckpt", 100, 50) // first one fails, rest dropped
	}
	if tr.Err() == nil {
		t.Fatal("write failure not retained")
	}
	if w.refused != 1 {
		t.Fatalf("writer refused %d times, want 1 (sticky error must stop writes)", w.refused)
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush must surface the sticky error")
	}
	// Metrics keep working after the tracer dies.
	if got := o.Checkpoints.Value(); got != 5 {
		t.Fatalf("Checkpoints = %d, want 5", got)
	}
}
