package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers every metric family and the tracer from
// 64 goroutines and checks the totals. Run under -race (make race) this
// is the memory-safety proof for the worker-pool hooks; without -race it
// still verifies no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	const (
		goroutines = 64
		perG       = 500
	)
	o := New()
	o.SetTracer(NewTracer(io.Discard))

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				o.Query("q", 2, 10, 1, 0, i%2 == 0)
				o.SearchDone(time.Duration(i%7)*time.Millisecond, i%10 == 0)
				o.Retry("q", 1+i%3, time.Millisecond, nil)
				o.RateLimitDenied("q", 0.5)
				o.EstimateComputed()
				if i%50 == 0 {
					o.Round(8, 100)
					o.IndexBuilt(4)
					o.Phase("p")()
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if got := o.QueriesIssued.Value(); got != total {
		t.Errorf("QueriesIssued = %d, want %d", got, total)
	}
	if got := o.RecordsCovered.Value(); got != total {
		t.Errorf("RecordsCovered = %d, want %d", got, total)
	}
	if got := o.SolidQueries.Value(); got != total/2 {
		t.Errorf("SolidQueries = %d, want %d", got, total/2)
	}
	if got := o.BenefitPairs.Value(); got != total {
		t.Errorf("BenefitPairs = %d, want %d", got, total)
	}
	// est 2 vs realized 1 → MAE contribution 1 per query. FloatSum CAS
	// must not lose increments under contention.
	if got := o.BenefitAbsErr.Value(); got != float64(total) {
		t.Errorf("BenefitAbsErr = %v, want %v", got, float64(total))
	}
	if got := o.SearchLatency.Snapshot().Count; got != total {
		t.Errorf("latency count = %d, want %d", got, total)
	}
	if got := o.SearchErrors.Value(); got != total/10 {
		t.Errorf("SearchErrors = %d, want %d", got, total/10)
	}
	if got := o.Retries.Value(); got != total {
		t.Errorf("Retries = %d, want %d", got, total)
	}
	if got := o.RateLimited.Value(); got != total {
		t.Errorf("RateLimited = %d, want %d", got, total)
	}
	if got := o.EstimateCalls.Value(); got != total {
		t.Errorf("EstimateCalls = %d, want %d", got, total)
	}
	rounds := int64(goroutines * (perG / 50))
	if got := o.Rounds.Value(); got != rounds {
		t.Errorf("Rounds = %d, want %d", got, rounds)
	}

	// Tracer sequence numbers must be dense: every emitted event got a
	// unique seq under the lock.
	tr := o.Tracer()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error under concurrency: %v", err)
	}
	// Snapshot under concurrent history must not panic and must be
	// JSON-marshalable (the expvar path).
	if s := o.Snapshot(); s["queries_issued"].(int64) != total {
		t.Errorf("snapshot queries_issued = %v", s["queries_issued"])
	}
}
