package promexport

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAlertRulesMatchDocsAndRegistry keeps deploy/alerts.yml honest in
// both directions: the rule names must match the "Alerting & recording
// rules" bullets of docs/METRICS.md exactly and in order, and every
// metric family a rule expression references must exist in Registry().
// A renamed metric or a rule added without its doc line fails here, in
// the same commit.
func TestAlertRulesMatchDocsAndRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../../deploy/alerts.yml")
	if err != nil {
		t.Fatal(err)
	}

	// Line-scan the rule file (no YAML dependency): rule names come
	// from "- alert:"/"- record:" keys, referenced families from expr
	// blocks. ">"-folded exprs continue on indented lines until the
	// next "key:" line.
	var (
		ruleNames []string
		exprs     []string
		inExpr    bool
		keyRe     = regexp.MustCompile(`^[a-z_]+:`)
	)
	for _, line := range strings.Split(string(raw), "\n") {
		trim := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trim, "#"):
			continue
		case strings.HasPrefix(trim, "- alert:"):
			ruleNames = append(ruleNames, strings.TrimSpace(strings.TrimPrefix(trim, "- alert:")))
			inExpr = false
		case strings.HasPrefix(trim, "- record:"):
			ruleNames = append(ruleNames, strings.TrimSpace(strings.TrimPrefix(trim, "- record:")))
			inExpr = false
		case strings.HasPrefix(trim, "expr:"):
			exprs = append(exprs, strings.TrimPrefix(trim, "expr:"))
			inExpr = true
		case inExpr && !keyRe.MatchString(trim) && !strings.HasPrefix(trim, "- "):
			exprs = append(exprs, trim)
		default:
			inExpr = false
		}
	}
	if len(ruleNames) == 0 {
		t.Fatal("no rules parsed from deploy/alerts.yml")
	}
	if len(exprs) < len(ruleNames) {
		t.Errorf("parsed %d rules but only %d expr lines", len(ruleNames), len(exprs))
	}

	// Direction 1: every family an expr mentions exists in the
	// registry. Histogram suffixes would need stripping, but the rules
	// deliberately stick to counters and gauges.
	known := make(map[string]bool)
	for _, d := range Registry() {
		known[d.Name] = true
	}
	famRe := regexp.MustCompile(`\b(?:smartcrawl|crawld)_[a-z0-9_]+`)
	for _, e := range exprs {
		for _, fam := range famRe.FindAllString(e, -1) {
			if !known[fam] {
				t.Errorf("alerts.yml references %q, not in promexport.Registry()", fam)
			}
		}
	}

	// Direction 2: the METRICS.md bullet list mirrors the rule names,
	// same order. Bullets are "- `Name` — ..." inside the section.
	doc, err := os.ReadFile("../../../docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	var docNames []string
	inSection := false
	for _, line := range strings.Split(string(doc), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.TrimPrefix(line, "## ") == "Alerting & recording rules"
			continue
		}
		if !inSection {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "- `"); ok {
			name, _, ok := strings.Cut(rest, "`")
			if !ok {
				t.Errorf("malformed rule bullet: %q", line)
				continue
			}
			docNames = append(docNames, name)
		}
	}
	if strings.Join(docNames, "\n") != strings.Join(ruleNames, "\n") {
		t.Errorf("docs/METRICS.md rule list drifted from deploy/alerts.yml\ndoc:\n%v\nrules:\n%v", docNames, ruleNames)
	}
}
