// Package promexport renders the obs metric sink in the Prometheus text
// exposition format (version 0.0.4), the lingua franca of operational
// monitoring: `GET /metrics` on cmd/hiddenserver and cmd/crawld serves
// what this package writes, and any Prometheus-compatible scraper
// (Prometheus itself, VictoriaMetrics, Grafana agent, `promtool`) can
// collect a crawl fleet without bespoke glue.
//
// The package has three layers:
//
//   - A metric Registry: one Desc per exported family (name, type,
//     label names, help, which binary serves it). The registry is the
//     single source of truth — docs/METRICS.md is diffed against it by
//     a test, and Collection.Add refuses names it does not know, so an
//     undocumented metric cannot ship.
//   - A Collection: a one-scrape snapshot assembled by CollectObs (every
//     obs Counter/Gauge/FloatSum/Histogram, including per-interface and
//     fault-class breakdowns) plus any daemon-level samples the caller
//     adds (cmd/crawld adds job/tenant state).
//   - WriteText: the deterministic renderer — families sorted by name,
//     samples sorted by label signature, `# HELP`/`# TYPE` once per
//     family, histograms expanded to cumulative `_bucket`/`_sum`/
//     `_count` lines. Byte-stable output is pinned by a golden test.
//
// Rendering reads only atomics off the live sink (the same loads
// /debug/vars does), so a scraper polling /metrics cannot perturb a
// crawl; the overhead guard test holds a continuously-scraped crawl to
// the standing <2% observability budget.
package promexport

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"smartcrawl/internal/obs"
)

// Kind is a Prometheus metric type.
type Kind string

// The metric kinds used by this exporter.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Desc describes one exported metric family. The full set is returned by
// Registry and documented, one table row per Desc, in docs/METRICS.md.
type Desc struct {
	Name   string   // full exposition name, e.g. smartcrawl_queries_issued_total
	Kind   Kind     // counter, gauge, or histogram
	Labels []string // intrinsic label names ("iface", "class", …); nil = unlabeled
	Help   string   // one-line meaning, rendered as # HELP
	Binary string   // which binary serves it (docs column)
}

// binServed values for the Binary column. Crawld additionally attaches
// job/tenant labels to every perJob metric — see CollectObs.
const (
	perJob     = "hiddenserver; crawld (per running job)"
	crawldOnly = "crawld"
)

// registry is the canonical family list. Order here is irrelevant —
// WriteText sorts — but keep it grouped like the obs struct for review.
var registry = []Desc{
	// Crawl-loop counters.
	{"smartcrawl_queries_issued_total", KindCounter, nil, "Queries absorbed into the crawl result (server side: searches served).", perJob},
	{"smartcrawl_records_covered_total", KindCounter, nil, "Local records newly covered by absorbed queries.", perJob},
	{"smartcrawl_solid_queries_total", KindCounter, nil, "Issued queries whose result was smaller than k (solid, triggers ΔD removal).", perJob},
	{"smartcrawl_rounds_total", KindCounter, nil, "Selection rounds dispatched by the Algorithm-4 loop.", perJob},
	{"smartcrawl_dispatched_total", KindCounter, nil, "Queries handed to the worker pool.", perJob},
	{"smartcrawl_estimate_calls_total", KindCounter, nil, "Estimator Benefit() invocations (heap rescoring).", perJob},
	{"smartcrawl_allocs_total", KindCounter, nil, "Federated budget allocations (rounds granted to an interface).", perJob},

	// Interface-pressure counters.
	{"smartcrawl_search_errors_total", KindCounter, nil, "Failed searches, budget exhaustion excluded.", perJob},
	{"smartcrawl_retried_calls_total", KindCounter, nil, "Searches that needed at least one retry.", perJob},
	{"smartcrawl_retries_total", KindCounter, nil, "Individual search re-attempts.", perJob},
	{"smartcrawl_rate_limited_total", KindCounter, nil, "Client-side token-bucket denials.", perJob},
	{"smartcrawl_checkpoints_total", KindCounter, nil, "Checkpoint writes (journal→snapshot compactions included).", perJob},

	// Resilience counters.
	{"smartcrawl_faults_injected_total", KindCounter, []string{"class"}, "Faults injected by a deepweb.Faulty wrapper, by fault class.", perJob},
	{"smartcrawl_truncations_total", KindCounter, nil, "Results absorbed partially (short pages).", perJob},
	{"smartcrawl_requeues_total", KindCounter, nil, "Failed selections pushed back into the pool.", perJob},
	{"smartcrawl_forfeits_total", KindCounter, nil, "Selections given up after their attempt cap.", perJob},
	{"smartcrawl_refunds_total", KindCounter, nil, "Budget units refunded (never charged by the interface).", perJob},
	{"smartcrawl_breaker_trips_total", KindCounter, nil, "Circuit-breaker transitions into open.", perJob},
	{"smartcrawl_breaker_state", KindGauge, nil, "Current circuit-breaker position: 0 closed, 1 open, 2 half-open.", perJob},
	{"smartcrawl_deadline_forfeits_total", KindCounter, nil, "Forfeits attributed to the crawl deadline (subset of forfeits; budget refunded).", perJob},
	{"smartcrawl_retry_budget_denied_total", KindCounter, nil, "Requeues refused because the retry budget was dry (subset of forfeits).", perJob},

	// Durability counters.
	{"smartcrawl_wal_appends_total", KindCounter, nil, "Records appended to the write-ahead journal.", perJob},
	{"smartcrawl_wal_bytes_total", KindCounter, nil, "Journal bytes written, framing headers included.", perJob},
	{"smartcrawl_wal_fsyncs_total", KindCounter, nil, "Journal fsync calls.", perJob},
	{"smartcrawl_recoveries_total", KindCounter, nil, "Crash recoveries performed (snapshot and/or journal replayed).", perJob},
	{"smartcrawl_wal_fsync_latency_seconds", KindHistogram, nil, "Latency of journal fsync calls.", perJob},

	// Index construction and rate-limiter level.
	{"smartcrawl_index_builds_total", KindCounter, nil, "Inverted-index builds.", perJob},
	{"smartcrawl_index_shards", KindGauge, nil, "Shard count of the most recent index build.", perJob},
	{"smartcrawl_rate_bucket_tokens", KindGauge, nil, "Token-bucket level observed at the most recent rate-limit denial.", perJob},

	// Search latency.
	{"smartcrawl_search_latency_seconds", KindHistogram, nil, "Round-trip latency of dispatched queries.", perJob},

	// Estimate-vs-realized benefit accounting.
	{"smartcrawl_benefit_pairs_total", KindCounter, nil, "Absorbed queries contributing an estimate/realized benefit pair.", perJob},
	{"smartcrawl_benefit_estimated_total", KindCounter, nil, "Sum of estimated benefits at selection time.", perJob},
	{"smartcrawl_benefit_realized_total", KindCounter, nil, "Sum of realized coverage deltas.", perJob},
	{"smartcrawl_benefit_abs_error_total", KindCounter, nil, "Sum of |estimated − realized| benefit (MAE numerator).", perJob},

	// Phase wall-clock.
	{"smartcrawl_phase_seconds_total", KindCounter, []string{"phase"}, "Accumulated wall-clock per lifecycle phase (sampling, pool build, crawl, …).", perJob},

	// Per-interface counters of a federated crawl.
	{"smartcrawl_iface_queries_issued_total", KindCounter, []string{"iface"}, "Queries absorbed from this interface.", perJob},
	{"smartcrawl_iface_records_covered_total", KindCounter, []string{"iface"}, "Local records this interface's results newly covered.", perJob},
	{"smartcrawl_iface_solid_queries_total", KindCounter, []string{"iface"}, "Absorbed queries solid under this interface's k.", perJob},
	{"smartcrawl_iface_allocs_total", KindCounter, []string{"iface"}, "Rounds the allocator granted this interface.", perJob},
	{"smartcrawl_iface_search_errors_total", KindCounter, []string{"iface"}, "Failed dispatches recorded against this interface.", perJob},
	{"smartcrawl_iface_requeues_total", KindCounter, []string{"iface"}, "Failed selections requeued after failing on this interface.", perJob},
	{"smartcrawl_iface_forfeits_total", KindCounter, []string{"iface"}, "Selections forfeited after failing on this interface.", perJob},
	{"smartcrawl_iface_breaker_holds_total", KindCounter, []string{"iface"}, "Rounds held by this interface's circuit breaker.", perJob},
	{"smartcrawl_iface_health_score", KindGauge, []string{"iface"}, "Interface health score in milli-units (1000 = fully healthy); absent unless health scoring is enabled.", perJob},
	{"smartcrawl_iface_probes_total", KindCounter, []string{"iface"}, "Recovery-probe rounds granted to this interface while degraded.", perJob},

	// Daemon-level families added by crawld's collector (internal/jobs).
	{"crawld_jobs", KindGauge, []string{"state"}, "Jobs in the registry by state (queued, running, done, failed, canceled).", crawldOnly},
	{"crawld_draining", KindGauge, nil, "1 while the daemon is draining (no new admissions), else 0.", crawldOnly},
	{"crawld_tenant_reserved_queries", KindGauge, []string{"tenant"}, "Committed budget per tenant: live reservations plus settled charges.", crawldOnly},
	{"crawld_tenant_budget_cap_queries", KindGauge, nil, "Per-tenant lifetime query budget (-tenant-budget; 0 = unlimited).", crawldOnly},
	{"crawld_shed_total", KindCounter, []string{"reason"}, "Job submissions shed at admission, by reason (disk, queue, rate, budget, draining).", crawldOnly},
	{"crawld_events_dropped_total", KindCounter, nil, "Step events evicted from bounded per-job event buffers before any consumer read them.", crawldOnly},
}

var descByName = func() map[string]*Desc {
	m := make(map[string]*Desc, len(registry))
	for i := range registry {
		m[registry[i].Name] = &registry[i]
	}
	return m
}()

// Registry returns a copy of every exported metric family descriptor, in
// declaration order. docs/METRICS.md must enumerate exactly this set —
// a test diffs the two.
func Registry() []Desc {
	return append([]Desc(nil), registry...)
}

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// sample is one rendered line-to-be: a family member with its labels.
type sample struct {
	labels []Label
	value  float64
	hist   *obs.HistogramSnapshot // non-nil for histogram families
}

// Collection is the snapshot of one scrape: samples grouped by family,
// assembled by CollectObs and caller Adds, rendered by WriteText.
type Collection struct {
	byFamily map[string][]sample
}

// NewCollection returns an empty scrape snapshot.
func NewCollection() *Collection {
	return &Collection{byFamily: make(map[string][]sample)}
}

// Add records one counter/gauge sample. The family name must be in the
// registry — an unknown name is a programming error (an undocumented
// metric) and panics so tests catch it immediately.
func (c *Collection) Add(name string, value float64, labels ...Label) {
	d, ok := descByName[name]
	if !ok {
		panic("promexport: metric " + name + " is not in the registry")
	}
	if d.Kind == KindHistogram {
		panic("promexport: " + name + " is a histogram; use AddHist")
	}
	c.byFamily[name] = append(c.byFamily[name], sample{labels: labels, value: value})
}

// AddHist records one histogram sample from an obs histogram snapshot.
func (c *Collection) AddHist(name string, hs obs.HistogramSnapshot, labels ...Label) {
	d, ok := descByName[name]
	if !ok {
		panic("promexport: metric " + name + " is not in the registry")
	}
	if d.Kind != KindHistogram {
		panic("promexport: " + name + " is not a histogram")
	}
	c.byFamily[name] = append(c.byFamily[name], sample{labels: labels, hist: &hs})
}

// CollectObs snapshots every metric of one obs sink into the collection,
// attaching base to every sample. Plain families are always emitted
// (zero-valued included) so the scrape shape is stable; dynamically
// labeled families (fault class, interface, phase) appear once their
// first label value exists. A nil sink collects nothing.
//
// cmd/hiddenserver calls this once with no base labels (the process-wide
// sink); cmd/crawld calls it per running job with job/tenant labels.
func (c *Collection) CollectObs(o *obs.Obs, base ...Label) {
	if o == nil {
		return
	}
	add := func(name string, v float64) { c.Add(name, v, base...) }

	add("smartcrawl_queries_issued_total", float64(o.QueriesIssued.Value()))
	add("smartcrawl_records_covered_total", float64(o.RecordsCovered.Value()))
	add("smartcrawl_solid_queries_total", float64(o.SolidQueries.Value()))
	add("smartcrawl_rounds_total", float64(o.Rounds.Value()))
	add("smartcrawl_dispatched_total", float64(o.Dispatched.Value()))
	add("smartcrawl_estimate_calls_total", float64(o.EstimateCalls.Value()))
	add("smartcrawl_allocs_total", float64(o.Allocs.Value()))

	add("smartcrawl_search_errors_total", float64(o.SearchErrors.Value()))
	add("smartcrawl_retried_calls_total", float64(o.RetriedCalls.Value()))
	add("smartcrawl_retries_total", float64(o.Retries.Value()))
	add("smartcrawl_rate_limited_total", float64(o.RateLimited.Value()))
	add("smartcrawl_checkpoints_total", float64(o.Checkpoints.Value()))

	for _, class := range sortedClassKeys(o.FaultsByClass()) {
		c.Add("smartcrawl_faults_injected_total", float64(o.FaultsByClass()[class]),
			append(append([]Label(nil), base...), Label{"class", class})...)
	}
	add("smartcrawl_truncations_total", float64(o.Truncations.Value()))
	add("smartcrawl_requeues_total", float64(o.Requeues.Value()))
	add("smartcrawl_forfeits_total", float64(o.Forfeits.Value()))
	add("smartcrawl_refunds_total", float64(o.Refunds.Value()))
	add("smartcrawl_breaker_trips_total", float64(o.BreakerTrips.Value()))
	add("smartcrawl_breaker_state", float64(o.BreakerState.Value()))
	add("smartcrawl_deadline_forfeits_total", float64(o.DeadlineForfeits.Value()))
	add("smartcrawl_retry_budget_denied_total", float64(o.RetryBudgetDenied.Value()))

	add("smartcrawl_wal_appends_total", float64(o.WalAppends.Value()))
	add("smartcrawl_wal_bytes_total", float64(o.WalBytes.Value()))
	add("smartcrawl_wal_fsyncs_total", float64(o.WalFsyncs.Value()))
	add("smartcrawl_recoveries_total", float64(o.Recoveries.Value()))
	c.AddHist("smartcrawl_wal_fsync_latency_seconds", o.WalFsyncLatency.Snapshot(), base...)

	add("smartcrawl_index_builds_total", float64(o.IndexBuilds.Value()))
	add("smartcrawl_index_shards", float64(o.IndexShards.Value()))
	add("smartcrawl_rate_bucket_tokens", float64(o.BucketTokens.Value())/1000)

	c.AddHist("smartcrawl_search_latency_seconds", o.SearchLatency.Snapshot(), base...)

	add("smartcrawl_benefit_pairs_total", float64(o.BenefitPairs.Value()))
	add("smartcrawl_benefit_estimated_total", o.BenefitEst.Value())
	add("smartcrawl_benefit_realized_total", o.BenefitReal.Value())
	add("smartcrawl_benefit_abs_error_total", o.BenefitAbsErr.Value())

	names, durs := o.PhaseDurations()
	for i, name := range names {
		c.Add("smartcrawl_phase_seconds_total", durs[i].Seconds(),
			append(append([]Label(nil), base...), Label{"phase", name})...)
	}

	for _, name := range o.IfaceNames() {
		im := o.Iface(name)
		ilabels := append(append([]Label(nil), base...), Label{"iface", name})
		c.Add("smartcrawl_iface_queries_issued_total", float64(im.Queries.Value()), ilabels...)
		c.Add("smartcrawl_iface_records_covered_total", float64(im.Covered.Value()), ilabels...)
		c.Add("smartcrawl_iface_solid_queries_total", float64(im.Solid.Value()), ilabels...)
		c.Add("smartcrawl_iface_allocs_total", float64(im.Allocs.Value()), ilabels...)
		c.Add("smartcrawl_iface_search_errors_total", float64(im.Errors.Value()), ilabels...)
		c.Add("smartcrawl_iface_requeues_total", float64(im.Requeues.Value()), ilabels...)
		c.Add("smartcrawl_iface_forfeits_total", float64(im.Forfeits.Value()), ilabels...)
		c.Add("smartcrawl_iface_breaker_holds_total", float64(im.Holds.Value()), ilabels...)
		// Health families appear only when scoring is enabled — the
		// crawler initializes the gauge to 1000 at start — so scrapes of
		// health-disabled runs keep their pre-existing shape.
		if hs := im.HealthScore.Value(); hs > 0 {
			c.Add("smartcrawl_iface_health_score", float64(hs), ilabels...)
			c.Add("smartcrawl_iface_probes_total", float64(im.Probes.Value()), ilabels...)
		}
	}
}

func sortedClassKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the collection in the Prometheus text exposition
// format: families sorted by name, `# HELP`/`# TYPE` once per family,
// samples sorted by label signature, histograms as cumulative
// `_bucket{le=…}` lines plus `_sum`/`_count`. Output is deterministic
// for a fixed collection — a golden test pins the bytes.
func (c *Collection) WriteText(w io.Writer) error {
	names := make([]string, 0, len(c.byFamily))
	for name := range c.byFamily {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := descByName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(d.Help), name, d.Kind); err != nil {
			return err
		}
		samples := append([]sample(nil), c.byFamily[name]...)
		sort.SliceStable(samples, func(i, j int) bool {
			return labelSig(samples[i].labels) < labelSig(samples[j].labels)
		})
		for _, s := range samples {
			var err error
			if s.hist != nil {
				err = writeHist(w, name, s.labels, s.hist)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(s.labels), formatValue(s.value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHist expands one histogram sample: cumulative buckets by upper
// bound in seconds, the +Inf bucket, exact sum, and count.
func writeHist(w io.Writer, name string, labels []Label, hs *obs.HistogramSnapshot) error {
	var cum int64
	for i, b := range hs.Buckets {
		cum += b
		le := "+Inf"
		if i < len(hs.Bounds) {
			le = formatValue(hs.Bounds[i].Seconds())
		}
		bucketLabels := append(append([]Label(nil), labels...), Label{"le", le})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(bucketLabels), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels),
		formatValue(hs.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), hs.Count)
	return err
}

// renderLabels formats {a="x",b="y"} with label names sorted; empty
// label sets render as nothing.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelSig is the sort key of a sample within its family.
func labelSig(labels []Label) string { return renderLabels(labels) }

// formatValue renders a sample value: integral values as integers (the
// common case — counters), everything else in shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler serves GET /metrics: collect invokes the caller's gatherers
// into a fresh Collection per scrape, and the rendered exposition is
// written with the standard text-format content type.
func Handler(collect func(*Collection)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		c := NewCollection()
		collect(c)
		var buf bytes.Buffer
		if err := c.WriteText(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}
