package promexport

import (
	"os"
	"strings"
	"testing"
)

// TestMetricsDocMatchesRegistry diffs docs/METRICS.md row-for-row against
// Registry(): every exported family must be documented with the exact
// name, type, labels, help text, and serving binary, in declaration
// order, and the doc may not list families that do not exist. Adding,
// renaming, or re-labeling a metric therefore forces a doc update in the
// same commit.
func TestMetricsDocMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../../docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	var rows []Desc
	for _, line := range strings.Split(string(raw), "\n") {
		d, ok := parseDocRow(line)
		if !ok {
			continue
		}
		rows = append(rows, d)
	}

	reg := Registry()
	if len(rows) != len(reg) {
		t.Errorf("docs/METRICS.md documents %d families, registry exports %d", len(rows), len(reg))
	}
	for i := 0; i < len(rows) && i < len(reg); i++ {
		doc, want := rows[i], reg[i]
		if doc.Name != want.Name {
			t.Errorf("row %d: doc %q, registry %q (rows must follow registry order)", i, doc.Name, want.Name)
			continue
		}
		if doc.Kind != want.Kind {
			t.Errorf("%s: doc type %q, registry %q", want.Name, doc.Kind, want.Kind)
		}
		if strings.Join(doc.Labels, ",") != strings.Join(want.Labels, ",") {
			t.Errorf("%s: doc labels %v, registry %v", want.Name, doc.Labels, want.Labels)
		}
		if doc.Help != want.Help {
			t.Errorf("%s: doc meaning %q, registry help %q", want.Name, doc.Help, want.Help)
		}
		if doc.Binary != want.Binary {
			t.Errorf("%s: doc binary %q, registry %q", want.Name, doc.Binary, want.Binary)
		}
	}
}

// parseDocRow reads one METRICS.md table row of the form
// | `name` | type | labels | meaning | served by |
// returning ok=false for non-row lines (prose, headers, separators).
func parseDocRow(line string) (Desc, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "| `") {
		return Desc{}, false
	}
	// Cells are pipe-separated; literal pipes inside a cell are escaped
	// as \| in markdown.
	parts := strings.Split(line, "|")
	var cells []string
	for i := 0; i < len(parts); i++ {
		p := parts[i]
		for strings.HasSuffix(p, `\`) && i+1 < len(parts) {
			i++
			p = p[:len(p)-1] + "|" + parts[i]
		}
		cells = append(cells, strings.TrimSpace(p))
	}
	// Leading and trailing empty cells from the outer pipes.
	if len(cells) != 7 || cells[0] != "" || cells[6] != "" {
		return Desc{}, false
	}
	d := Desc{
		Name:   strings.Trim(cells[1], "`"),
		Kind:   Kind(cells[2]),
		Help:   cells[4],
		Binary: cells[5],
	}
	if cells[3] != "—" {
		for _, l := range strings.Split(cells[3], ",") {
			d.Labels = append(d.Labels, strings.Trim(strings.TrimSpace(l), "`"))
		}
	}
	return d, true
}
