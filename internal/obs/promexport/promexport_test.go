package promexport

import (
	"bytes"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"smartcrawl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic clock advancing by step per call, so
// phase durations (the only wall-clock-derived metric) are byte-stable.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { t = t.Add(step); return t }
}

// populatedObs drives every metric through the public obs hooks, so the
// golden file covers each family — including the dynamically labeled
// ones (fault class, phase, iface).
func populatedObs() *obs.Obs {
	o := obs.New().WithClock(fakeClock(5 * time.Millisecond))

	done := o.Phase("crawl")
	o.IndexBuilt(4)
	o.Round(1, 95)
	o.EstimateComputed()
	o.SearchDone(700*time.Microsecond, false)
	o.SearchDone(2*time.Millisecond, false)
	o.SearchDone(40*time.Millisecond, true)
	o.Query("deep web crawling", 2.5, 40, 12, 12, false)
	o.QueryIface("acm", "query optimization", 1.5, 10, 5, 17, true)
	o.Alloc("acm", 3.25, 90)
	im := o.Iface("acm")
	im.Queries.Inc()
	im.Covered.Add(5)
	im.Solid.Inc()
	im.Allocs.Inc()
	im.Errors.Inc()
	im.Requeues.Inc()
	im.Forfeits.Inc()
	im.Holds.Inc()
	im.HealthScore.Set(800)
	im.Probes.Inc()
	o.Retry("deep web crawling", 1, 10*time.Millisecond, errors.New("timeout"))
	o.RateLimitDenied("deep web crawling", 1.5)
	o.FaultInjected("deep web crawling", "http_500", 1)
	o.FaultInjected("deep web crawling", "timeout", 2)
	o.BreakerTransition("closed", "open", 3)
	o.BreakerTransition("open", "half-open", 0)
	o.Requeued("query optimization", 1, errors.New("fault"))
	o.Forfeited("query optimization", 3, errors.New("fault"))
	o.DeadlineForfeited("query optimization", 2)
	o.RetryDenied("query optimization")
	o.Refunded("query optimization")
	o.Truncated("deep web crawling", 30, 40)
	o.Checkpoint("crawl.ckpt", 17, 2)
	o.WalAppend("query", 1, 64)
	o.WalFsynced(300 * time.Microsecond)
	o.Recovered("crawl.wal", 12, 17, 2, 1, false)
	done()
	return o
}

// TestGoldenExposition pins the full text exposition of a populated sink
// byte-for-byte. Regenerate with: go test ./internal/obs/promexport -run
// Golden -update
func TestGoldenExposition(t *testing.T) {
	c := NewCollection()
	c.CollectObs(populatedObs())
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?|\+Inf|NaN)$`)
)

// TestExpositionWellFormed validates the rendered text against the
// format's grammar: HELP/TYPE precede the samples of each family, every
// sample line parses, label signatures within a family are strictly
// sorted, and histogram buckets are cumulative and le-sorted.
func TestExpositionWellFormed(t *testing.T) {
	c := NewCollection()
	c.CollectObs(populatedObs())
	// Daemon families too, so the grammar check spans the whole registry.
	c.Add("crawld_jobs", 2, Label{"state", "running"})
	c.Add("crawld_jobs", 1, Label{"state", "queued"})
	c.Add("crawld_draining", 0)
	c.Add("crawld_tenant_reserved_queries", 48, Label{"tenant", `"quo\ted"`})
	c.Add("crawld_tenant_budget_cap_queries", 100)

	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]string{} // family -> TYPE
	var curFamily string
	var lastSig string
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !nameRe.MatchString(name) {
				t.Fatalf("bad HELP line: %q", line)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			typed[name] = kind
			curFamily, lastSig = name, ""
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if base != curFamily && m[1] != curFamily {
			t.Fatalf("sample %q outside its family block (current %q)", line, curFamily)
		}
		if kind := typed[curFamily]; kind != "histogram" {
			if sig := m[2]; sig < lastSig {
				t.Fatalf("labels not sorted within %s: %q after %q", curFamily, sig, lastSig)
			} else {
				lastSig = sig
			}
		}
	}
	// Every family block carried both HELP and TYPE.
	for name := range c.byFamily {
		if _, ok := typed[name]; !ok {
			t.Errorf("family %s has no TYPE line", name)
		}
	}
}

// TestRegistryCoverage asserts CollectObs emits every registry family a
// single-process binary serves (per-job set), that names are unique and
// well-formed, and that counters follow the _total convention.
func TestRegistryCoverage(t *testing.T) {
	c := NewCollection()
	c.CollectObs(populatedObs())
	seen := map[string]bool{}
	for name := range c.byFamily {
		seen[name] = true
	}
	names := map[string]bool{}
	for _, d := range Registry() {
		if names[d.Name] {
			t.Errorf("duplicate registry name %s", d.Name)
		}
		names[d.Name] = true
		if !nameRe.MatchString(d.Name) {
			t.Errorf("invalid metric name %q", d.Name)
		}
		if d.Help == "" {
			t.Errorf("%s has no help text", d.Name)
		}
		if d.Kind == KindCounter && !strings.HasSuffix(d.Name, "_total") {
			t.Errorf("counter %s does not end in _total", d.Name)
		}
		if d.Kind != KindCounter && strings.HasSuffix(d.Name, "_total") {
			t.Errorf("%s %s should not end in _total", d.Kind, d.Name)
		}
		if d.Binary == crawldOnly {
			continue // emitted by internal/jobs, covered in its tests
		}
		if !seen[d.Name] {
			t.Errorf("registry family %s never emitted by CollectObs", d.Name)
		}
	}
}

// TestCollectObsNilSafe mirrors the obs-wide nil-sink contract.
func TestCollectObsNilSafe(t *testing.T) {
	c := NewCollection()
	c.CollectObs(nil)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil sink rendered %d bytes", buf.Len())
	}
}

// TestHistogramRendering checks the bucket expansion invariants exactly:
// cumulative counts, +Inf equals _count, and _sum is the true sum rather
// than Mean*Count.
func TestHistogramRendering(t *testing.T) {
	o := obs.New()
	o.SearchDone(90*time.Microsecond, false)  // first bucket (le=0.0001)
	o.SearchDone(700*time.Microsecond, false) // le=0.001
	o.SearchDone(2*time.Hour, false)          // overflow (+Inf only)
	c := NewCollection()
	c.AddHist("smartcrawl_search_latency_seconds", o.SearchLatency.Snapshot())
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`smartcrawl_search_latency_seconds_bucket{le="0.0001"} 1`,
		`smartcrawl_search_latency_seconds_bucket{le="0.001"} 2`,
		`smartcrawl_search_latency_seconds_bucket{le="60"} 2`,
		`smartcrawl_search_latency_seconds_bucket{le="+Inf"} 3`,
		`smartcrawl_search_latency_seconds_sum 7200.00079`,
		`smartcrawl_search_latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

// TestHandler exercises the HTTP wrapper: content type, body identity
// with WriteText, method filtering.
func TestHandler(t *testing.T) {
	o := populatedObs()
	h := Handler(func(c *Collection) { c.CollectObs(o) })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	c := NewCollection()
	c.CollectObs(o)
	var want bytes.Buffer
	if err := c.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != want.String() {
		t.Fatal("handler body differs from WriteText")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: %d, want 405", rec.Code)
	}
}

// TestAddUnknownPanics pins the undocumented-metric guard.
func TestAddUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add of unregistered name did not panic")
		}
	}()
	NewCollection().Add("smartcrawl_not_a_metric_total", 1)
}
