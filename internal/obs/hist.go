package obs

import (
	"sync/atomic"
	"time"
)

// latencyBoundsUs are the fixed histogram bucket upper bounds in
// microseconds: sub-millisecond resolution for the in-process simulator,
// second-scale resolution for real web APIs with backoff. Fixed buckets
// keep Observe allocation-free and the struct zero-value usable.
var latencyBoundsUs = [...]int64{
	100, 250, 500, // sub-millisecond: simulator searches
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, // 1–50ms: LAN round-trips
	100_000, 250_000, 500_000, // 0.1–0.5s: WAN round-trips
	1_000_000, 2_500_000, 5_000_000, 10_000_000, // 1–10s: slow APIs
	30_000_000, 60_000_000, // backoff territory
}

// numBuckets includes the overflow bucket.
const numBuckets = len(latencyBoundsUs) + 1

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe from many goroutines. The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64
	maxUs  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := 0
	for i < len(latencyBoundsUs) && us > latencyBoundsUs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time read of a Histogram.
type HistogramSnapshot struct {
	Count         int64
	Sum           time.Duration // exact sum of observations (µs resolution)
	Mean          time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
	// Buckets holds the per-bucket counts; Bounds the matching upper
	// bounds (the final bucket is unbounded).
	Buckets []int64
	Bounds  []time.Duration
}

// Snapshot reads the histogram. Concurrent Observes may land between
// bucket reads; the snapshot is still internally plausible (quantiles are
// computed from the bucket counts actually read).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]int64, numBuckets),
		Bounds:  make([]time.Duration, len(latencyBoundsUs)),
	}
	var total int64
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
		total += s.Buckets[i]
	}
	for i, b := range latencyBoundsUs {
		s.Bounds[i] = time.Duration(b) * time.Microsecond
	}
	s.Count = total
	if total == 0 {
		return s
	}
	s.Sum = time.Duration(h.sumUs.Load()) * time.Microsecond
	s.Mean = time.Duration(h.sumUs.Load()/total) * time.Microsecond
	s.Max = time.Duration(h.maxUs.Load()) * time.Microsecond
	s.P50 = h.quantile(s.Buckets, total, 0.50)
	s.P95 = h.quantile(s.Buckets, total, 0.95)
	s.P99 = h.quantile(s.Buckets, total, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// observation — a conservative (over-)estimate, as bucketed histograms
// give. The overflow bucket reports the observed max.
func (h *Histogram) quantile(buckets []int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			if i < len(latencyBoundsUs) {
				return time.Duration(latencyBoundsUs[i]) * time.Microsecond
			}
			return time.Duration(h.maxUs.Load()) * time.Microsecond
		}
	}
	return time.Duration(h.maxUs.Load()) * time.Microsecond
}
