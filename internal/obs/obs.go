// Package obs is the crawl observability subsystem: atomic counters and
// gauges, fixed-bucket latency histograms, and a structured JSONL session
// tracer (schema in docs/TRACE_SCHEMA.md). It exists because SMARTCRAWL's
// value claim is per-query efficiency under a hard budget — tuning the
// crawler requires seeing benefit-estimate quality, retry and rate-limit
// pressure, fault-injection and circuit-breaker activity under a degraded
// interface, and where wall-clock goes inside the Algorithm-4 loop, not
// just the final coverage number.
//
// Everything hangs off *Obs, a nil-safe sink: every method is a no-op on a
// nil receiver, so instrumented code calls hooks unconditionally and the
// disabled path costs a single branch. The package depends only on the
// standard library and must never perturb crawl results — hooks observe,
// they do not decide (regression-tested: tracing on vs off produces
// byte-identical issued-query logs).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value. The zero value is
// ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatSum is an atomically accumulated float64 (CAS on the bit pattern).
// The zero value is ready to use.
type FloatSum struct{ bits atomic.Uint64 }

// Add accumulates v.
func (f *FloatSum) Add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *FloatSum) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Obs is the observability sink threaded through the crawl stack. All
// fields are safe for concurrent update; all methods are safe to call on a
// nil *Obs (they become a branch and nothing else), which is how the
// disabled path stays free.
type Obs struct {
	// Crawl-loop counters (merge stage, single writer).
	QueriesIssued  Counter // queries absorbed into the crawl result
	RecordsCovered Counter // local records newly covered
	SolidQueries   Counter // issued queries with |result| < k
	Rounds         Counter // selection rounds (batches popped)
	Dispatched     Counter // queries handed to the worker pool
	EstimateCalls  Counter // estimator Benefit() invocations
	Allocs         Counter // federated budget allocations (rounds granted to an interface)

	// Interface-pressure counters (worker pool, many writers).
	SearchErrors Counter // failed searches (budget exhaustion excluded)
	RetriedCalls Counter // searches that needed at least one retry
	Retries      Counter // individual re-attempts
	RateLimited  Counter // client-side token-bucket denials
	Checkpoints  Counter // checkpoint writes

	// Resilience counters (fault injection and graceful degradation).
	FaultsInjected    Counter // faults injected by a deepweb.Faulty wrapper
	Truncations       Counter // results absorbed partially (short pages)
	Requeues          Counter // failed selections pushed back into the pool
	Forfeits          Counter // selections given up after their attempt cap
	Refunds           Counter // budget units refunded (never charged by the interface)
	BreakerTrips      Counter // circuit-breaker transitions into open
	BreakerState      Gauge   // current breaker position (0 closed, 1 open, 2 half-open)
	DeadlineForfeits  Counter // forfeits attributed to the crawl deadline (subset of Forfeits)
	RetryBudgetDenied Counter // requeues refused because the retry budget was dry (subset of Forfeits)

	// Durability counters (WAL journal and crash recovery).
	WalAppends Counter // records appended to the write-ahead journal
	WalBytes   Counter // journal bytes written (headers included)
	WalFsyncs  Counter // journal fsync calls
	Recoveries Counter // crash recoveries performed (snapshot and/or journal replayed)

	// WalFsyncLatency observes one duration per journal fsync — the
	// price of the chosen durability policy, separated from search
	// latency so slow disks and slow interfaces don't blur together.
	WalFsyncLatency Histogram

	// Index construction.
	IndexBuilds Counter
	IndexShards Gauge // shard count of the most recent build

	// BucketTokens is the token count observed at the most recent
	// rate-limit denial, in milli-tokens (gauges are integral).
	BucketTokens Gauge

	// SearchLatency observes one duration per dispatched query.
	SearchLatency Histogram

	// Estimate-vs-realized benefit accounting: each absorbed query
	// contributes its estimated benefit and the coverage delta it
	// actually produced, so estimator bias and MAE fall out of a run.
	BenefitPairs  Counter
	BenefitEst    FloatSum
	BenefitReal   FloatSum
	BenefitAbsErr FloatSum

	// now is the clock used for phase timing; nil means time.Now.
	// Tests inject a fake for deterministic trace output.
	now func() time.Time

	tracer atomic.Pointer[Tracer]

	mu       sync.Mutex
	phaseDur map[string]time.Duration
	phaseSeq []string // insertion order, for stable summaries

	faultMu sync.Mutex
	faultBy map[string]int64 // injected-fault counts by class

	ifaceMu  sync.Mutex
	ifaceBy  map[string]*IfaceMetrics // per-interface metrics of a federated crawl
	ifaceSeq []string                 // registration order, for stable summaries
}

// IfaceMetrics aggregates the per-interface counters of a federated crawl:
// which interface the shared budget was spent on and what it bought. Handles
// are obtained through Obs.Iface and registered once per interface name;
// single-interface crawls never register any, so their snapshots and
// summaries carry no interface section and stay byte-identical.
type IfaceMetrics struct {
	Queries  Counter // queries absorbed from this interface
	Covered  Counter // local records this interface's results newly covered
	Solid    Counter // absorbed queries solid under this interface's k
	Allocs   Counter // rounds the allocator granted this interface
	Errors   Counter // failed dispatches recorded against this interface
	Requeues Counter // failed selections requeued after failing here
	Forfeits Counter // selections forfeited after failing here
	Holds    Counter // rounds held by this interface's circuit breaker
	// HealthScore is the interface's current health score in milli-units
	// (1000 = fully healthy). Zero means health scoring is disabled —
	// the crawler sets it to 1000 at start when enabled, so exporters
	// can gate the health families on a non-zero value.
	HealthScore Gauge
	Probes      Counter // recovery-probe rounds granted while degraded
}

// Iface returns (registering on first use) the metrics handle for the named
// interface. Returns nil on a nil sink or an empty name, and every
// IfaceMetrics update site must tolerate a nil handle.
func (o *Obs) Iface(name string) *IfaceMetrics {
	if o == nil || name == "" {
		return nil
	}
	o.ifaceMu.Lock()
	defer o.ifaceMu.Unlock()
	if o.ifaceBy == nil {
		o.ifaceBy = make(map[string]*IfaceMetrics)
	}
	m, ok := o.ifaceBy[name]
	if !ok {
		m = &IfaceMetrics{}
		o.ifaceBy[name] = m
		o.ifaceSeq = append(o.ifaceSeq, name)
	}
	return m
}

// IfaceNames returns the registered interface names in registration order.
func (o *Obs) IfaceNames() []string {
	if o == nil {
		return nil
	}
	o.ifaceMu.Lock()
	defer o.ifaceMu.Unlock()
	return append([]string(nil), o.ifaceSeq...)
}

// New returns an empty, enabled sink. The zero value &Obs{} is equivalent.
func New() *Obs { return &Obs{} }

// WithClock replaces the phase-timing clock (tests inject a fake for
// deterministic trace durations) and returns o.
func (o *Obs) WithClock(now func() time.Time) *Obs {
	o.now = now
	return o
}

// Enabled reports whether the sink collects anything. A nil *Obs is the
// disabled sink.
func (o *Obs) Enabled() bool { return o != nil }

// SetTracer attaches a session tracer; nil detaches. Safe to call
// concurrently with hooks.
func (o *Obs) SetTracer(t *Tracer) {
	if o == nil {
		return
	}
	o.tracer.Store(t)
}

// Tracer returns the attached tracer, or nil.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer.Load()
}

func (o *Obs) clock() time.Time {
	if o.now != nil {
		return o.now()
	}
	return time.Now()
}

// Query records one absorbed query: counters, the estimate-vs-realized
// benefit pair, and a trace event. Called by the merge stage (single
// goroutine) after every issued query, for every crawl framework.
func (o *Obs) Query(q string, est float64, resultSize, newCovered, cumCovered int, solid bool) {
	o.QueryIface("", q, est, resultSize, newCovered, cumCovered, solid)
}

// QueryIface is Query tagged with the issuing interface of a federated
// crawl. An empty iface is the single-interface path: the trace line is
// emitted untagged, byte-identical to the pre-federation format.
func (o *Obs) QueryIface(iface, q string, est float64, resultSize, newCovered, cumCovered int, solid bool) {
	if o == nil {
		return
	}
	o.QueriesIssued.Inc()
	o.RecordsCovered.Add(int64(newCovered))
	if solid {
		o.SolidQueries.Inc()
	}
	o.BenefitPairs.Inc()
	o.BenefitEst.Add(est)
	o.BenefitReal.Add(float64(newCovered))
	o.BenefitAbsErr.Add(math.Abs(est - float64(newCovered)))
	if t := o.tracer.Load(); t != nil {
		if iface == "" {
			t.query(q, est, resultSize, newCovered, cumCovered, solid)
		} else {
			t.queryIface(iface, q, est, resultSize, newCovered, cumCovered, solid)
		}
	}
}

// Alloc records one federated budget allocation: the named interface won
// the round with the given top estimated benefit, with budgetLeft queries
// remaining (-1 = unlimited) before the round is sized.
func (o *Obs) Alloc(iface string, benefit float64, budgetLeft int) {
	if o == nil {
		return
	}
	o.Allocs.Inc()
	if t := o.tracer.Load(); t != nil {
		t.alloc(iface, benefit, budgetLeft)
	}
}

// SearchServed records one served search on the interface side (the
// hiddenserver): a query counter and a trace event, but no benefit pair —
// the server has no estimate to compare against.
func (o *Obs) SearchServed(q string, resultSize int, solid bool) {
	if o == nil {
		return
	}
	o.QueriesIssued.Inc()
	if solid {
		o.SolidQueries.Inc()
	}
	if t := o.tracer.Load(); t != nil {
		t.query(q, 0, resultSize, 0, 0, solid)
	}
}

// Round records one selection round of size n with budgetLeft queries
// remaining (-1 = unlimited) before the round is dispatched.
func (o *Obs) Round(n, budgetLeft int) {
	if o == nil {
		return
	}
	o.Rounds.Inc()
	o.Dispatched.Add(int64(n))
	if t := o.tracer.Load(); t != nil {
		t.round(n, budgetLeft)
	}
}

// SearchDone observes one dispatched query's round-trip latency. failed
// marks real errors (budget exhaustion is a clean stop, not a failure).
func (o *Obs) SearchDone(d time.Duration, failed bool) {
	if o == nil {
		return
	}
	o.SearchLatency.Observe(d)
	if failed {
		o.SearchErrors.Inc()
	}
}

// Retry records re-attempt number attempt (1-based) of query q after wait,
// caused by cause (the previous attempt's error).
func (o *Obs) Retry(q string, attempt int, wait time.Duration, cause error) {
	if o == nil {
		return
	}
	o.Retries.Inc()
	if attempt == 1 {
		o.RetriedCalls.Inc()
	}
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	if t := o.tracer.Load(); t != nil {
		t.retry(q, attempt, wait, msg)
	}
}

// RateLimitDenied records a client-side token-bucket denial of query q,
// with the bucket's token count at denial time.
func (o *Obs) RateLimitDenied(q string, tokens float64) {
	if o == nil {
		return
	}
	o.RateLimited.Inc()
	o.BucketTokens.Set(int64(tokens * 1000))
	if t := o.tracer.Load(); t != nil {
		t.rateLimit(q, tokens)
	}
}

// FaultInjected records one injected fault: the query it hit, its class
// (deepweb.FaultClass), and the per-query attempt number it fired on.
func (o *Obs) FaultInjected(q, class string, attempt int) {
	if o == nil {
		return
	}
	o.FaultsInjected.Inc()
	o.faultMu.Lock()
	if o.faultBy == nil {
		o.faultBy = make(map[string]int64)
	}
	o.faultBy[class]++
	o.faultMu.Unlock()
	if t := o.tracer.Load(); t != nil {
		t.fault(q, class, attempt)
	}
}

// FaultsByClass returns a copy of the injected-fault counts keyed by class.
func (o *Obs) FaultsByClass() map[string]int64 {
	if o == nil {
		return nil
	}
	o.faultMu.Lock()
	defer o.faultMu.Unlock()
	out := make(map[string]int64, len(o.faultBy))
	for c, n := range o.faultBy {
		out[c] = n
	}
	return out
}

// BreakerTransition records a circuit-breaker state change with the
// consecutive-failure count that drove it.
func (o *Obs) BreakerTransition(from, to string, failures int) {
	if o == nil {
		return
	}
	if to == "open" {
		o.BreakerTrips.Inc()
	}
	switch to {
	case "closed":
		o.BreakerState.Set(0)
	case "open":
		o.BreakerState.Set(1)
	case "half_open":
		o.BreakerState.Set(2)
	}
	if t := o.tracer.Load(); t != nil {
		t.breaker(from, to, failures)
	}
}

// Requeued records a failed selection pushed back into the pool for
// re-dispatch: the query, which attempt just failed, and why.
func (o *Obs) Requeued(q string, attempt int, cause error) {
	if o == nil {
		return
	}
	o.Requeues.Inc()
	if t := o.tracer.Load(); t != nil {
		t.requeue(q, attempt, errMsg(cause))
	}
}

// Forfeited records a selection given up for good after attempts
// dispatches, with the error that ended it.
func (o *Obs) Forfeited(q string, attempts int, cause error) {
	if o == nil {
		return
	}
	o.Forfeits.Inc()
	if t := o.tracer.Load(); t != nil {
		t.forfeit(q, attempts, errMsg(cause))
	}
}

// DeadlineForfeited records a forfeit attributed to the crawl deadline:
// the query was interrupted mid-search with no time left to retry. Emitted
// IN ADDITION to the generic Forfeited hook for the same query, so generic
// forfeit consumers see every forfeit and deadline-aware ones can subtract.
func (o *Obs) DeadlineForfeited(q string, attempts int) {
	if o == nil {
		return
	}
	o.DeadlineForfeits.Inc()
	if t := o.tracer.Load(); t != nil {
		t.deadlineForfeit(q, attempts)
	}
}

// RetryDenied records a requeue the retry budget refused (the bucket was
// dry); the query is forfeited, and the matching Forfeited hook carries it.
func (o *Obs) RetryDenied(q string) {
	if o == nil {
		return
	}
	o.RetryBudgetDenied.Inc()
	_ = q // counter-only; the forfeit event carries the query
}

// Health records an interface health-score movement (score in [0,1]) or,
// with probe set, a recovery-probe round granted to a degraded interface.
// Clean runs never call it — scores stay exactly 1.0 — so traces without
// failures carry no health events.
func (o *Obs) Health(iface string, score float64, probe bool) {
	if o == nil {
		return
	}
	if t := o.tracer.Load(); t != nil {
		t.health(iface, score, probe)
	}
}

// Refunded counts one budget unit returned because the failed query was
// never charged by the interface (client-side denial or cancellation).
func (o *Obs) Refunded(q string) {
	if o == nil {
		return
	}
	o.Refunds.Inc()
	_ = q // counter-only; the forfeit/requeue event carries the query
}

// Truncated counts one result absorbed partially: the interface matched
// full records but returned only the first returned of them.
func (o *Obs) Truncated(q string, returned, full int) {
	if o == nil {
		return
	}
	o.Truncations.Inc()
	_, _, _ = q, returned, full // counter-only; the fault event carries detail
}

func errMsg(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Checkpoint records a checkpoint write: covered records and queries spent
// at save time.
func (o *Obs) Checkpoint(path string, covered, queries int) {
	if o == nil {
		return
	}
	o.Checkpoints.Inc()
	if t := o.tracer.Load(); t != nil {
		t.checkpoint(path, covered, queries)
	}
}

// WalAppend records one record appended to the write-ahead journal: its
// kind (begin/round/step/requeue/forfeit/budget_stop), its journal
// sequence number, and its on-disk size including the length/CRC header.
func (o *Obs) WalAppend(kind string, walSeq uint64, bytes int) {
	if o == nil {
		return
	}
	o.WalAppends.Inc()
	o.WalBytes.Add(int64(bytes))
	if t := o.tracer.Load(); t != nil {
		t.walAppend(kind, walSeq, bytes)
	}
}

// WalFsynced observes one journal fsync and its latency.
func (o *Obs) WalFsynced(d time.Duration) {
	if o == nil {
		return
	}
	o.WalFsyncs.Inc()
	o.WalFsyncLatency.Observe(d)
}

// Recovered records one crash recovery: the snapshot path, how many
// journal records were replayed on top of it, the recovered coverage and
// query counts, the last journal sequence number seen, and whether a torn
// tail record was discarded.
func (o *Obs) Recovered(path string, records, covered, queries int, walSeq uint64, torn bool) {
	if o == nil {
		return
	}
	o.Recoveries.Inc()
	if t := o.tracer.Load(); t != nil {
		t.recovered(path, records, covered, queries, walSeq, torn)
	}
}

// EstimateComputed counts one estimator Benefit() call — the hottest hook
// (heap rescoring), so it is a single atomic add.
func (o *Obs) EstimateComputed() {
	if o == nil {
		return
	}
	o.EstimateCalls.Inc()
}

// IndexBuilt records one inverted-index build over the given shard count.
func (o *Obs) IndexBuilt(shards int) {
	if o == nil {
		return
	}
	o.IndexBuilds.Inc()
	o.IndexShards.Set(int64(shards))
}

// Phase starts a named wall-clock phase and returns its stop function:
//
//	defer o.Phase("pool_generate")()
//
// Stop accumulates the duration (phases can run more than once) and emits
// a trace event. On a nil sink both calls are no-ops.
func (o *Obs) Phase(name string) func() {
	if o == nil {
		return func() {}
	}
	start := o.clock()
	return func() {
		d := o.clock().Sub(start)
		o.mu.Lock()
		if o.phaseDur == nil {
			o.phaseDur = make(map[string]time.Duration)
		}
		if _, seen := o.phaseDur[name]; !seen {
			o.phaseSeq = append(o.phaseSeq, name)
		}
		o.phaseDur[name] += d
		o.mu.Unlock()
		if t := o.tracer.Load(); t != nil {
			t.phase(name, d)
		}
	}
}

// PhaseDurations returns the accumulated phase durations in start order.
func (o *Obs) PhaseDurations() ([]string, []time.Duration) {
	if o == nil {
		return nil, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, len(o.phaseSeq))
	durs := make([]time.Duration, len(o.phaseSeq))
	copy(names, o.phaseSeq)
	for i, n := range names {
		durs[i] = o.phaseDur[n]
	}
	return names, durs
}

// Snapshot renders every metric into a JSON-marshalable map — the expvar
// payload for /debug/vars and the raw form of the end-of-run summary.
func (o *Obs) Snapshot() map[string]any {
	if o == nil {
		return nil
	}
	m := map[string]any{
		"queries_issued":  o.QueriesIssued.Value(),
		"records_covered": o.RecordsCovered.Value(),
		"solid_queries":   o.SolidQueries.Value(),
		"rounds":          o.Rounds.Value(),
		"dispatched":      o.Dispatched.Value(),
		"estimate_calls":  o.EstimateCalls.Value(),
		"search_errors":   o.SearchErrors.Value(),
		"retried_calls":   o.RetriedCalls.Value(),
		"retries":         o.Retries.Value(),
		"rate_limited":    o.RateLimited.Value(),
		"checkpoints":     o.Checkpoints.Value(),
		"index_builds":    o.IndexBuilds.Value(),
		"index_shards":    o.IndexShards.Value(),
	}
	if o.FaultsInjected.Value()+o.Requeues.Value()+o.Forfeits.Value()+
		o.Refunds.Value()+o.Truncations.Value()+o.BreakerTrips.Value() > 0 {
		res := map[string]any{
			"faults_injected": o.FaultsInjected.Value(),
			"truncations":     o.Truncations.Value(),
			"requeues":        o.Requeues.Value(),
			"forfeits":        o.Forfeits.Value(),
			"refunds":         o.Refunds.Value(),
			"breaker_trips":   o.BreakerTrips.Value(),
			"breaker_state":   o.BreakerState.Value(),
		}
		// Cause-attributed forfeit classes, present only when they fired so
		// pre-existing snapshots stay byte-identical.
		if v := o.DeadlineForfeits.Value(); v > 0 {
			res["deadline_forfeits"] = v
		}
		if v := o.RetryBudgetDenied.Value(); v > 0 {
			res["retry_budget_denied"] = v
		}
		if by := o.FaultsByClass(); len(by) > 0 {
			res["fault_classes"] = by
		}
		m["resilience"] = res
	}
	if names := o.IfaceNames(); len(names) > 0 {
		ifs := make(map[string]any, len(names))
		for _, name := range names {
			im := o.Iface(name)
			fields := map[string]any{
				"queries_issued":  im.Queries.Value(),
				"records_covered": im.Covered.Value(),
				"solid_queries":   im.Solid.Value(),
				"allocs":          im.Allocs.Value(),
				"search_errors":   im.Errors.Value(),
				"requeues":        im.Requeues.Value(),
				"forfeits":        im.Forfeits.Value(),
				"breaker_holds":   im.Holds.Value(),
			}
			// Health keys appear only when scoring is enabled (the crawler
			// initializes the gauge to 1000), keeping older snapshots stable.
			if hs := im.HealthScore.Value(); hs > 0 {
				fields["health_score"] = hs
				fields["probes"] = im.Probes.Value()
			}
			ifs[name] = fields
		}
		m["interfaces"] = ifs
		m["allocs"] = o.Allocs.Value()
	}
	if o.WalAppends.Value()+o.Recoveries.Value() > 0 {
		dur := map[string]any{
			"wal_appends": o.WalAppends.Value(),
			"wal_bytes":   o.WalBytes.Value(),
			"wal_fsyncs":  o.WalFsyncs.Value(),
			"recoveries":  o.Recoveries.Value(),
		}
		if hs := o.WalFsyncLatency.Snapshot(); hs.Count > 0 {
			dur["fsync_latency"] = map[string]any{
				"count":   hs.Count,
				"mean_ms": roundMs(hs.Mean),
				"p95_ms":  roundMs(hs.P95),
				"max_ms":  roundMs(hs.Max),
			}
		}
		m["durability"] = dur
	}
	if hs := o.SearchLatency.Snapshot(); hs.Count > 0 {
		m["search_latency"] = map[string]any{
			"count":   hs.Count,
			"mean_ms": roundMs(hs.Mean),
			"p50_ms":  roundMs(hs.P50),
			"p95_ms":  roundMs(hs.P95),
			"p99_ms":  roundMs(hs.P99),
			"max_ms":  roundMs(hs.Max),
		}
	}
	if n := o.BenefitPairs.Value(); n > 0 {
		m["benefit"] = map[string]any{
			"pairs":         n,
			"mean_estimate": round3(o.BenefitEst.Value() / float64(n)),
			"mean_realized": round3(o.BenefitReal.Value() / float64(n)),
			"mae":           round3(o.BenefitAbsErr.Value() / float64(n)),
		}
	}
	if names, durs := o.PhaseDurations(); len(names) > 0 {
		ph := make(map[string]any, len(names))
		for i, name := range names {
			ph[name] = roundMs(durs[i])
		}
		m["phase_ms"] = ph
	}
	return m
}

// SnapshotBrief renders the handful of counters worth watching per job
// on a multi-crawl daemon's /debug/vars — progress, pressure, and WAL
// activity — without the full Snapshot payload, so a crawld serving many
// concurrent jobs keeps its metrics page readable.
func (o *Obs) SnapshotBrief() map[string]any {
	if o == nil {
		return nil
	}
	return map[string]any{
		"queries_issued":  o.QueriesIssued.Value(),
		"records_covered": o.RecordsCovered.Value(),
		"rounds":          o.Rounds.Value(),
		"search_errors":   o.SearchErrors.Value(),
		"rate_limited":    o.RateLimited.Value(),
		"wal_appends":     o.WalAppends.Value(),
	}
}

// WriteSummary prints a human-readable end-of-run metrics summary.
func (o *Obs) WriteSummary(w io.Writer) {
	if o == nil {
		return
	}
	fmt.Fprintf(w, "obs: %d queries issued in %d rounds, %d records covered, %d solid\n",
		o.QueriesIssued.Value(), o.Rounds.Value(), o.RecordsCovered.Value(), o.SolidQueries.Value())
	fmt.Fprintf(w, "obs: interface: %d dispatched, %d errors, %d retried calls (%d re-attempts), %d rate-limit denials\n",
		o.Dispatched.Value(), o.SearchErrors.Value(), o.RetriedCalls.Value(),
		o.Retries.Value(), o.RateLimited.Value())
	if o.FaultsInjected.Value()+o.Requeues.Value()+o.Forfeits.Value()+
		o.Refunds.Value()+o.Truncations.Value()+o.BreakerTrips.Value() > 0 {
		fmt.Fprintf(w, "obs: resilience: %d faults injected, %d truncated results, %d requeues, %d forfeits, %d budget refunds, breaker tripped %d times\n",
			o.FaultsInjected.Value(), o.Truncations.Value(), o.Requeues.Value(),
			o.Forfeits.Value(), o.Refunds.Value(), o.BreakerTrips.Value())
	}
	if o.DeadlineForfeits.Value()+o.RetryBudgetDenied.Value() > 0 {
		fmt.Fprintf(w, "obs: adaptive: %d deadline forfeits, %d retry-budget denials\n",
			o.DeadlineForfeits.Value(), o.RetryBudgetDenied.Value())
	}
	for _, name := range o.IfaceNames() {
		im := o.Iface(name)
		fmt.Fprintf(w, "obs: interface %-12s %d allocs, %d queries, %d covered, %d solid, %d errors, %d requeues, %d forfeits, %d breaker holds\n",
			name, im.Allocs.Value(), im.Queries.Value(), im.Covered.Value(), im.Solid.Value(),
			im.Errors.Value(), im.Requeues.Value(), im.Forfeits.Value(), im.Holds.Value())
		if hs := im.HealthScore.Value(); hs > 0 {
			fmt.Fprintf(w, "obs: interface %-12s health %d/1000, %d recovery probes\n",
				name, hs, im.Probes.Value())
		}
	}
	if o.WalAppends.Value()+o.Recoveries.Value() > 0 {
		fmt.Fprintf(w, "obs: durability: %d journal records (%d bytes), %d fsyncs, %d recoveries\n",
			o.WalAppends.Value(), o.WalBytes.Value(), o.WalFsyncs.Value(), o.Recoveries.Value())
		if hs := o.WalFsyncLatency.Snapshot(); hs.Count > 0 {
			fmt.Fprintf(w, "obs: journal fsync latency: mean %.2fms p95 %.2fms max %.2fms\n",
				roundMs(hs.Mean), roundMs(hs.P95), roundMs(hs.Max))
		}
	}
	if hs := o.SearchLatency.Snapshot(); hs.Count > 0 {
		fmt.Fprintf(w, "obs: search latency: mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
			roundMs(hs.Mean), roundMs(hs.P50), roundMs(hs.P95), roundMs(hs.P99), roundMs(hs.Max))
	}
	if n := o.BenefitPairs.Value(); n > 0 {
		fmt.Fprintf(w, "obs: benefit estimates: mean est %.2f vs realized %.2f (MAE %.2f over %d queries, %d estimator calls)\n",
			o.BenefitEst.Value()/float64(n), o.BenefitReal.Value()/float64(n),
			o.BenefitAbsErr.Value()/float64(n), n, o.EstimateCalls.Value())
	}
	names, durs := o.PhaseDurations()
	for i, name := range names {
		fmt.Fprintf(w, "obs: phase %-16s %9.2fms\n", name, roundMs(durs[i]))
	}
}

func roundMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*100) / 100
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// sortedKeys is a test/debug helper: stable iteration over a snapshot.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
