package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a clock that starts at the Unix epoch plus one hour
// and advances step per reading — deterministic timestamps and durations.
func fakeClock(step time.Duration) func() time.Time {
	t := time.UnixMilli(3_600_000)
	return func() time.Time {
		now := t
		t = t.Add(step)
		return now
	}
}

// TestNilSinkIsSafe pins the nil-safety contract every instrumented call
// site relies on: every hook (and every accessor) must be a no-op on a
// nil *Obs, never a panic.
func TestNilSinkIsSafe(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	o.Query("a b", 3, 5, 2, 10, true)
	o.SearchServed("a", 5, false)
	o.Round(8, 40)
	o.SearchDone(time.Millisecond, true)
	o.Retry("a", 1, time.Second, errors.New("boom"))
	o.RateLimitDenied("a", 0.5)
	o.Checkpoint("x.ckpt", 10, 5)
	o.EstimateComputed()
	o.IndexBuilt(4)
	o.Phase("p")() // both the call and the stop must be no-ops
	o.SetTracer(NewTracer(&bytes.Buffer{}))
	if o.Tracer() != nil {
		t.Fatal("nil sink returned a tracer")
	}
	if s := o.Snapshot(); s != nil {
		t.Fatalf("nil sink snapshot = %v", s)
	}
	names, durs := o.PhaseDurations()
	if names != nil || durs != nil {
		t.Fatal("nil sink has phases")
	}
	o.WriteSummary(&bytes.Buffer{}) // must not panic or write garbage
}

func TestCountersAndBenefitMeter(t *testing.T) {
	o := New()
	o.Query("thai noodle", 5, 50, 3, 3, false)
	o.Query("rare dish", 2, 4, 2, 5, true)
	o.Round(2, 46)
	o.EstimateComputed()
	o.EstimateComputed()
	o.EstimateComputed()

	if got := o.QueriesIssued.Value(); got != 2 {
		t.Fatalf("QueriesIssued = %d, want 2", got)
	}
	if got := o.RecordsCovered.Value(); got != 5 {
		t.Fatalf("RecordsCovered = %d, want 5", got)
	}
	if got := o.SolidQueries.Value(); got != 1 {
		t.Fatalf("SolidQueries = %d, want 1", got)
	}
	if got := o.Rounds.Value(); got != 1 {
		t.Fatalf("Rounds = %d, want 1", got)
	}
	if got := o.Dispatched.Value(); got != 2 {
		t.Fatalf("Dispatched = %d, want 2", got)
	}
	if got := o.EstimateCalls.Value(); got != 3 {
		t.Fatalf("EstimateCalls = %d, want 3", got)
	}
	// Benefit meter: estimates 5 and 2 vs realized 3 and 2 → MAE = 1.
	if got := o.BenefitPairs.Value(); got != 2 {
		t.Fatalf("BenefitPairs = %d, want 2", got)
	}
	if got := o.BenefitAbsErr.Value(); got != 2 {
		t.Fatalf("BenefitAbsErr = %v, want 2", got)
	}
	if got := o.BenefitEst.Value(); got != 7 {
		t.Fatalf("BenefitEst = %v, want 7", got)
	}
	if got := o.BenefitReal.Value(); got != 5 {
		t.Fatalf("BenefitReal = %v, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 in the 250µs bucket,
	// p95/p99 at second scale, max exact.
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1200 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 250*time.Microsecond {
		t.Fatalf("p50 = %v, want 250µs (bucket upper bound)", s.P50)
	}
	if s.P95 != 2500*time.Millisecond {
		t.Fatalf("p95 = %v, want 2.5s (bucket upper bound)", s.P95)
	}
	if s.Max != 1200*time.Millisecond {
		t.Fatalf("max = %v, want 1.2s", s.Max)
	}
	mean := time.Duration((90*200*1000+10*1_200_000_000)/100) * time.Nanosecond
	if diff := s.Mean - mean; diff > time.Microsecond || diff < -time.Microsecond {
		t.Fatalf("mean = %v, want ≈%v", s.Mean, mean)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Minute) // beyond the last bound
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[len(s.Buckets)-1])
	}
	if s.P99 != 5*time.Minute {
		t.Fatalf("overflow p99 = %v, want observed max", s.P99)
	}
}

func TestPhaseAccumulation(t *testing.T) {
	o := New().WithClock(fakeClock(10 * time.Millisecond))
	o.Phase("index_build")() // start and stop: one 10ms step
	o.Phase("index_build")() // accumulates
	o.Phase("crawl_loop")()
	names, durs := o.PhaseDurations()
	if len(names) != 2 || names[0] != "index_build" || names[1] != "crawl_loop" {
		t.Fatalf("phases = %v", names)
	}
	if durs[0] != 20*time.Millisecond || durs[1] != 10*time.Millisecond {
		t.Fatalf("durations = %v", durs)
	}
}

func TestSnapshotAndSummary(t *testing.T) {
	o := New().WithClock(fakeClock(5 * time.Millisecond))
	o.Query("a", 4, 50, 4, 4, false)
	o.SearchDone(3*time.Millisecond, false)
	o.Retry("a", 1, time.Second, errors.New("flaky"))
	o.RateLimitDenied("a", 0.25)
	o.IndexBuilt(8)
	o.Phase("pool_generate")()

	s := o.Snapshot()
	for _, key := range []string{
		"queries_issued", "records_covered", "retries", "rate_limited",
		"index_shards", "search_latency", "benefit", "phase_ms",
	} {
		if _, ok := s[key]; !ok {
			t.Fatalf("snapshot missing %q (keys: %v)", key, sortedKeys(s))
		}
	}
	if got := o.BucketTokens.Value(); got != 250 {
		t.Fatalf("BucketTokens = %d milli-tokens, want 250", got)
	}

	var buf bytes.Buffer
	o.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{
		"1 queries issued", "4 records covered", "1 rate-limit denials",
		"search latency", "benefit estimates", "phase pool_generate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotBrief(t *testing.T) {
	// The nil receiver is the disabled path: a daemon publishing per-job
	// metrics must be able to render jobs that carry no Obs.
	var disabled *Obs
	if got := disabled.SnapshotBrief(); got != nil {
		t.Fatalf("nil SnapshotBrief = %v, want nil", got)
	}

	o := New()
	o.Query("a", 4, 50, 4, 4, false)
	o.Query("b", 2, 50, 2, 6, false)
	o.SearchDone(time.Millisecond, true)
	o.RateLimitDenied("a", 0)
	o.WalAppend("step", 1, 32)

	brief := o.SnapshotBrief()
	want := map[string]int64{
		"queries_issued":  2,
		"records_covered": 6,
		"search_errors":   1,
		"rate_limited":    1,
		"wal_appends":     1,
	}
	for key, n := range want {
		if got, ok := brief[key]; !ok || got != n {
			t.Errorf("brief[%q] = %v (present %v), want %d", key, got, ok, n)
		}
	}
	// Brief is a strict subset of the watch-worthy counters: no histogram
	// or per-phase payloads that would bloat a many-job /debug/vars page.
	if len(brief) != 6 {
		t.Errorf("brief has %d keys (%v), want 6", len(brief), sortedKeys(brief))
	}
}
