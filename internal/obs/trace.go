package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer emits structured session events as JSON Lines: one event per
// line, fields in a fixed order (struct declaration order, which
// encoding/json preserves), every line independently parseable. A trace
// is the replayable story of a crawl session — which query was selected
// with what estimated benefit, what it returned, what it newly covered,
// plus retry/backoff, rate-limit, checkpoint, phase-timing, and the
// resilience events (fault, breaker, requeue, forfeit) of a degraded
// crawl. Every event type and field is documented in docs/TRACE_SCHEMA.md.
//
// Tracer serializes writes with a mutex and is safe for concurrent use
// by the dispatcher's workers. Write errors are sticky: the first one is
// retained (Err) and later events are dropped, so a full disk degrades a
// crawl to untraced instead of failing it.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
	seq uint64
	err error
}

// NewTracer traces onto w. Callers own w's lifecycle; wrap files in a
// bufio.Writer and use Flush before closing.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// WithClock replaces the tracer's time source (tests inject a fake clock
// for byte-stable golden traces) and returns the tracer.
func (t *Tracer) WithClock(now func() time.Time) *Tracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	return t
}

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush flushes the underlying writer when it is buffered (implements
// Flush() error, as bufio.Writer does).
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if f, ok := t.w.(interface{ Flush() error }); ok {
		t.err = f.Flush()
	}
	return t.err
}

// Event types, the `type` field of every trace line. The full schema —
// per-type field tables with a sample line each — is documented in
// docs/TRACE_SCHEMA.md; keep the two in sync when adding event types.
const (
	EventQuery      = "query"
	EventRound      = "round"
	EventRetry      = "retry"
	EventRateLimit  = "rate_limit"
	EventCheckpoint = "checkpoint"
	EventPhase      = "phase"
	EventFault      = "fault"
	EventBreaker    = "breaker"
	EventRequeue    = "requeue"
	EventForfeit    = "forfeit"
	EventWalAppend  = "wal_append"
	EventRecovered  = "recovered"
	EventAlloc      = "alloc"
	// EventDeadlineForfeit accompanies a forfeit caused by the crawl
	// deadline: the generic forfeit event is still emitted for the same
	// query, this one carries the cause attribution.
	EventDeadlineForfeit = "deadline_forfeit"
	// EventHealth traces an interface health-score movement or (with
	// probe=true) a recovery-probe allocation of a federated crawl.
	EventHealth = "health"
)

// Event is the union wire format of one trace line, for consumers reading
// traces back (ParseEvents). Producers emit per-type structs so that each
// event carries exactly its own fields, always in the same order.
type Event struct {
	Seq        uint64  `json:"seq"`
	TMs        int64   `json:"t_ms"`
	Type       string  `json:"type"`
	Query      string  `json:"query,omitempty"`
	EstBenefit float64 `json:"est_benefit,omitempty"`
	ResultSize int     `json:"result_size,omitempty"`
	NewCovered int     `json:"new_covered,omitempty"`
	CumCovered int     `json:"cum_covered,omitempty"`
	Solid      bool    `json:"solid,omitempty"`
	Size       int     `json:"size,omitempty"`
	BudgetLeft int     `json:"budget_left,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	WaitMs     int64   `json:"wait_ms,omitempty"`
	Tokens     float64 `json:"tokens,omitempty"`
	Err        string  `json:"err,omitempty"`
	Phase      string  `json:"phase,omitempty"`
	DurMs      int64   `json:"dur_ms,omitempty"`
	Path       string  `json:"path,omitempty"`
	Covered    int     `json:"covered,omitempty"`
	Queries    int     `json:"queries,omitempty"`
	Class      string  `json:"class,omitempty"`
	From       string  `json:"from,omitempty"`
	To         string  `json:"to,omitempty"`
	Failures   int     `json:"failures,omitempty"`
	Kind       string  `json:"kind,omitempty"`
	WalSeq     uint64  `json:"wal_seq,omitempty"`
	Bytes      int     `json:"bytes,omitempty"`
	Records    int     `json:"records,omitempty"`
	Torn       bool    `json:"torn,omitempty"`
	Iface      string  `json:"iface,omitempty"`
	Score      float64 `json:"score,omitempty"`
	Probe      bool    `json:"probe,omitempty"`
}

// ParseEvents decodes a JSONL trace back into events — the consumer side
// of the schema, used by tests and analysis tooling.
func ParseEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return events, err
		}
		events = append(events, e)
	}
	return events, sc.Err()
}

// Per-type wire structs. Field order here IS the schema: encoding/json
// marshals struct fields in declaration order, and the golden-file test
// pins these bytes.

type queryEvent struct {
	Seq        uint64  `json:"seq"`
	TMs        int64   `json:"t_ms"`
	Type       string  `json:"type"`
	Query      string  `json:"query"`
	EstBenefit float64 `json:"est_benefit"`
	ResultSize int     `json:"result_size"`
	NewCovered int     `json:"new_covered"`
	CumCovered int     `json:"cum_covered"`
	Solid      bool    `json:"solid"`
}

type roundEvent struct {
	Seq        uint64 `json:"seq"`
	TMs        int64  `json:"t_ms"`
	Type       string `json:"type"`
	Size       int    `json:"size"`
	BudgetLeft int    `json:"budget_left"`
}

type retryEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Query   string `json:"query"`
	Attempt int    `json:"attempt"`
	WaitMs  int64  `json:"wait_ms"`
	Err     string `json:"err,omitempty"`
}

type rateLimitEvent struct {
	Seq    uint64  `json:"seq"`
	TMs    int64   `json:"t_ms"`
	Type   string  `json:"type"`
	Query  string  `json:"query"`
	Tokens float64 `json:"tokens"`
}

type checkpointEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Path    string `json:"path"`
	Covered int    `json:"covered"`
	Queries int    `json:"queries"`
}

type phaseEvent struct {
	Seq   uint64 `json:"seq"`
	TMs   int64  `json:"t_ms"`
	Type  string `json:"type"`
	Phase string `json:"phase"`
	DurMs int64  `json:"dur_ms"`
}

type faultEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Query   string `json:"query"`
	Class   string `json:"class"`
	Attempt int    `json:"attempt"`
}

type breakerEvent struct {
	Seq      uint64 `json:"seq"`
	TMs      int64  `json:"t_ms"`
	Type     string `json:"type"`
	From     string `json:"from"`
	To       string `json:"to"`
	Failures int    `json:"failures"`
}

// requeueEvent doubles as the forfeit event: same shape, different type
// tag (a forfeit's Attempt is the total dispatch count it burned).
type requeueEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Query   string `json:"query"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err,omitempty"`
}

// walAppendEvent traces one record appended to the write-ahead journal.
type walAppendEvent struct {
	Seq    uint64 `json:"seq"`
	TMs    int64  `json:"t_ms"`
	Type   string `json:"type"`
	Kind   string `json:"kind"`
	WalSeq uint64 `json:"wal_seq"`
	Bytes  int    `json:"bytes"`
}

// recoveredEvent traces one crash recovery: how much state came back from
// the snapshot + journal, and whether a torn tail record was discarded.
type recoveredEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Path    string `json:"path"`
	Records int    `json:"records"`
	Covered int    `json:"covered"`
	Queries int    `json:"queries"`
	WalSeq  uint64 `json:"wal_seq"`
	Torn    bool   `json:"torn"`
}

// queryIfaceEvent is queryEvent tagged with the issuing interface of a
// federated crawl; untagged single-interface traces keep the queryEvent
// shape byte-for-byte.
type queryIfaceEvent struct {
	Seq        uint64  `json:"seq"`
	TMs        int64   `json:"t_ms"`
	Type       string  `json:"type"`
	Query      string  `json:"query"`
	EstBenefit float64 `json:"est_benefit"`
	ResultSize int     `json:"result_size"`
	NewCovered int     `json:"new_covered"`
	CumCovered int     `json:"cum_covered"`
	Solid      bool    `json:"solid"`
	Iface      string  `json:"iface"`
}

// allocEvent traces one federated budget allocation: which interface won
// the round and under what top estimated benefit.
type allocEvent struct {
	Seq        uint64  `json:"seq"`
	TMs        int64   `json:"t_ms"`
	Type       string  `json:"type"`
	Iface      string  `json:"iface"`
	EstBenefit float64 `json:"est_benefit"`
	BudgetLeft int     `json:"budget_left"`
}

// deadlineForfeitEvent attributes a forfeit to the crawl deadline; the
// Attempt field is the total dispatch count the query burned, matching the
// generic forfeit event emitted alongside it.
type deadlineForfeitEvent struct {
	Seq     uint64 `json:"seq"`
	TMs     int64  `json:"t_ms"`
	Type    string `json:"type"`
	Query   string `json:"query"`
	Attempt int    `json:"attempt"`
}

// healthEvent traces one interface health-score movement (score in [0,1])
// or, with Probe set, a recovery-probe round granted while degraded.
type healthEvent struct {
	Seq   uint64  `json:"seq"`
	TMs   int64   `json:"t_ms"`
	Type  string  `json:"type"`
	Iface string  `json:"iface"`
	Score float64 `json:"score"`
	Probe bool    `json:"probe,omitempty"`
}

func (t *Tracer) query(q string, est float64, resultSize, newCovered, cumCovered int, solid bool) {
	t.emit(func(seq uint64, tms int64) any {
		return queryEvent{seq, tms, EventQuery, q, est, resultSize, newCovered, cumCovered, solid}
	})
}

func (t *Tracer) queryIface(iface, q string, est float64, resultSize, newCovered, cumCovered int, solid bool) {
	t.emit(func(seq uint64, tms int64) any {
		return queryIfaceEvent{seq, tms, EventQuery, q, est, resultSize, newCovered, cumCovered, solid, iface}
	})
}

func (t *Tracer) alloc(iface string, benefit float64, budgetLeft int) {
	t.emit(func(seq uint64, tms int64) any {
		return allocEvent{seq, tms, EventAlloc, iface, benefit, budgetLeft}
	})
}

func (t *Tracer) round(size, budgetLeft int) {
	t.emit(func(seq uint64, tms int64) any {
		return roundEvent{seq, tms, EventRound, size, budgetLeft}
	})
}

func (t *Tracer) retry(q string, attempt int, wait time.Duration, errMsg string) {
	t.emit(func(seq uint64, tms int64) any {
		return retryEvent{seq, tms, EventRetry, q, attempt, wait.Milliseconds(), errMsg}
	})
}

func (t *Tracer) rateLimit(q string, tokens float64) {
	t.emit(func(seq uint64, tms int64) any {
		return rateLimitEvent{seq, tms, EventRateLimit, q, tokens}
	})
}

func (t *Tracer) checkpoint(path string, covered, queries int) {
	t.emit(func(seq uint64, tms int64) any {
		return checkpointEvent{seq, tms, EventCheckpoint, path, covered, queries}
	})
}

func (t *Tracer) phase(name string, d time.Duration) {
	t.emit(func(seq uint64, tms int64) any {
		return phaseEvent{seq, tms, EventPhase, name, d.Milliseconds()}
	})
}

func (t *Tracer) fault(q, class string, attempt int) {
	t.emit(func(seq uint64, tms int64) any {
		return faultEvent{seq, tms, EventFault, q, class, attempt}
	})
}

func (t *Tracer) breaker(from, to string, failures int) {
	t.emit(func(seq uint64, tms int64) any {
		return breakerEvent{seq, tms, EventBreaker, from, to, failures}
	})
}

func (t *Tracer) requeue(q string, attempt int, errMsg string) {
	t.emit(func(seq uint64, tms int64) any {
		return requeueEvent{seq, tms, EventRequeue, q, attempt, errMsg}
	})
}

func (t *Tracer) forfeit(q string, attempts int, errMsg string) {
	t.emit(func(seq uint64, tms int64) any {
		return requeueEvent{seq, tms, EventForfeit, q, attempts, errMsg}
	})
}

func (t *Tracer) deadlineForfeit(q string, attempts int) {
	t.emit(func(seq uint64, tms int64) any {
		return deadlineForfeitEvent{seq, tms, EventDeadlineForfeit, q, attempts}
	})
}

func (t *Tracer) health(iface string, score float64, probe bool) {
	t.emit(func(seq uint64, tms int64) any {
		return healthEvent{seq, tms, EventHealth, iface, score, probe}
	})
}

func (t *Tracer) walAppend(kind string, walSeq uint64, bytes int) {
	t.emit(func(seq uint64, tms int64) any {
		return walAppendEvent{seq, tms, EventWalAppend, kind, walSeq, bytes}
	})
}

func (t *Tracer) recovered(path string, records, covered, queries int, walSeq uint64, torn bool) {
	t.emit(func(seq uint64, tms int64) any {
		return recoveredEvent{seq, tms, EventRecovered, path, records, covered, queries, walSeq, torn}
	})
}

// emit assigns the sequence number and timestamp under the lock, so trace
// lines are totally ordered even when workers race.
func (t *Tracer) emit(build func(seq uint64, tms int64) any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	e := build(t.seq, t.now().UnixMilli())
	t.seq++
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}
