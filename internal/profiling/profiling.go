// Package profiling wires the -cpuprofile/-memprofile flags shared by the
// commands: pprof capture around a run, for feeding `go tool pprof` when
// hunting hot-path regressions (see docs/OPERATIONS.md, "Profiling").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). Call stop on the normal exit path — profiles
// are not written when the process leaves through os.Exit first. Either
// path may be empty; with both empty, Start is a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
