// Package federate materializes a federated crawl: it parses the CLI
// grammar describing a set of hidden-database interfaces H1..Hn — each
// with its own backend, top-k limit, sample, fault profile, politeness
// stack, and circuit breaker — builds the per-interface searcher
// compositions, and hands the result to crawler.NewFederatedSmart, which
// runs the Algorithm-4 loop over all of them under one global budget
// with marginal-benefit allocation (see DESIGN.md, "Federation").
//
// The package is deliberately thin: the federation semantics live in the
// crawl loop itself (the single-interface crawl is the n=1 federated
// crawl); what lives here is everything about turning "name=a,hidden=
// h1.csv,k=10;name=b,url=http://…,faults=transient10" into live
// interface handles.
package federate

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// Spec describes one interface of a federated crawl — the per-interface
// half of the smartcrawl CLI flags. Exactly one of Hidden and URL selects
// the backend.
type Spec struct {
	// Name labels the interface in metrics, traces, and WAL crash specs.
	// Defaults to h1..hn by position.
	Name string
	// Hidden is a CSV (or .jsonl) path served through the in-process
	// simulator.
	Hidden string
	// URL is a hiddenserver base URL (a remote interface).
	URL string
	// K is the simulated interface's top-k limit; remote interfaces
	// report their own k.
	K int
	// RankColumn ranks simulated results by this numeric column,
	// descending; negative selects the deterministic hash ranking.
	RankColumn int
	// NonConjunctive switches the simulator to Yelp-style any-keyword
	// matching.
	NonConjunctive bool
	// Theta draws a Bernoulli sample of the simulated backend at this
	// ratio, enabling the QSel-Est estimators for the interface; 0 runs
	// it sample-free (QSel-Simple).
	Theta float64
	// Seed seeds the Bernoulli draw (and the keyword sampler).
	Seed uint64
	// SampleTarget, for remote interfaces, builds a keyword-query sample
	// of about this many records through the interface itself; 0 runs
	// sample-free.
	SampleTarget int
	// Faults injects deterministic misbehaviour into the interface's
	// search path: a preset name or key=value pairs joined by '+'
	// (the ',' separates spec fields).
	Faults string
	// FaultSeed seeds the fault schedule.
	FaultSeed uint64
	// FaultLatency delays every faulted attempt.
	FaultLatency time.Duration
	// Rate and Burst pace the interface client-side (queries/sec with a
	// token-bucket burst); 0 rate is unpaced.
	Rate  float64
	Burst int
	// Retries re-attempts transient failures with exponential backoff.
	Retries int
	// Breaker is the circuit breaker's consecutive-failure threshold for
	// this interface; 0 disables it.
	Breaker int
}

// specDefaults is the zero-flag Spec: the same defaults as the
// single-interface smartcrawl CLI.
func specDefaults() Spec {
	return Spec{K: 50, RankColumn: -1, Seed: 42, FaultSeed: 1, Burst: 10}
}

// ParseSpecs parses the -interfaces grammar: specs separated by ';',
// key=value fields separated by ','. For example:
//
//	name=yelp,hidden=yelp.csv,k=10,rank-column=3,theta=0.01;
//	name=google,url=http://localhost:8081,sample-target=200,faults=transient10,fault-seed=3,rate=5,retries=3,breaker=5
//
// Recognized keys: name, hidden, url, k, rank-column, non-conjunctive,
// theta, seed, sample-target, faults, fault-seed, fault-latency, rate,
// burst, retries, breaker. A fault spec with its own key=value pairs
// joins them with '+' where the single-interface flag uses ','.
func ParseSpecs(s string) ([]Spec, error) {
	var specs []Spec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sp := specDefaults()
		for _, field := range strings.Split(entry, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("federate: spec field %q: want key=value", field)
			}
			key = strings.ToLower(strings.TrimSpace(key))
			val = strings.TrimSpace(val)
			var err error
			switch key {
			case "name":
				sp.Name = val
			case "hidden":
				sp.Hidden = val
			case "url":
				sp.URL = val
			case "k":
				sp.K, err = strconv.Atoi(val)
			case "rank-column":
				sp.RankColumn, err = strconv.Atoi(val)
			case "non-conjunctive":
				sp.NonConjunctive, err = strconv.ParseBool(val)
			case "theta":
				sp.Theta, err = strconv.ParseFloat(val, 64)
			case "seed":
				sp.Seed, err = strconv.ParseUint(val, 10, 64)
			case "sample-target":
				sp.SampleTarget, err = strconv.Atoi(val)
			case "faults":
				sp.Faults = val
				_, err = sp.faultProfile()
			case "fault-seed":
				sp.FaultSeed, err = strconv.ParseUint(val, 10, 64)
			case "fault-latency":
				sp.FaultLatency, err = time.ParseDuration(val)
			case "rate":
				sp.Rate, err = strconv.ParseFloat(val, 64)
			case "burst":
				sp.Burst, err = strconv.Atoi(val)
			case "retries":
				sp.Retries, err = strconv.Atoi(val)
			case "breaker":
				sp.Breaker, err = strconv.Atoi(val)
			default:
				return nil, fmt.Errorf("federate: spec field %q: unknown key %q", field, key)
			}
			if err != nil {
				return nil, fmt.Errorf("federate: spec field %q: %v", field, err)
			}
		}
		if (sp.Hidden == "") == (sp.URL == "") {
			return nil, fmt.Errorf("federate: spec %q: exactly one of hidden= and url= is required", entry)
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, errors.New("federate: empty interface spec")
	}
	return specs, nil
}

// faultProfile parses the '+'-joined fault spec into a seeded profile.
func (sp Spec) faultProfile() (deepweb.FaultProfile, error) {
	p, err := deepweb.ParseFaultProfile(strings.ReplaceAll(sp.Faults, "+", ","))
	if err != nil {
		return p, err
	}
	p.Seed = sp.FaultSeed
	p.Latency = sp.FaultLatency
	return p, nil
}

// BuildBackend materializes the spec's server-side searcher: the
// simulated hidden database (for CSV backends) wrapped in the spec's
// fault injector. The returned table is the backend's schema source, nil
// for remote backends. cmd/hiddenserver uses this to serve one profile;
// Build layers the client-side stack on top of it.
func (sp Spec) BuildBackend(tk *tokenize.Tokenizer, o *obs.Obs) (deepweb.Searcher, *relational.Table, error) {
	if sp.Hidden == "" {
		return nil, nil, fmt.Errorf("federate: interface %q has no hidden table to serve", sp.Name)
	}
	table, err := readTable(sp.Hidden)
	if err != nil {
		return nil, nil, fmt.Errorf("federate: interface %q: %w", sp.Name, err)
	}
	if sp.K <= 0 {
		return nil, nil, fmt.Errorf("federate: interface %q: k must be > 0", sp.Name)
	}
	rank := hidden.RankByHash(0x5eed)
	if sp.RankColumn >= 0 {
		rank = hidden.RankByNumericColumn(sp.RankColumn)
	}
	mode := hidden.ModeConjunctive
	if sp.NonConjunctive {
		mode = hidden.ModeRanked
	}
	var s deepweb.Searcher = hidden.New(table, tk, sp.K, rank, mode)
	if sp.Faults != "" {
		p, err := sp.faultProfile()
		if err != nil {
			return nil, nil, fmt.Errorf("federate: interface %q: %w", sp.Name, err)
		}
		s = deepweb.NewFaulty(s, p).WithObs(o)
	}
	return s, table, nil
}

// Build materializes the spec into a live crawler.Interface: backend (or
// HTTP client), fault injection, client-side rate limiting, retries, the
// interface's sample, and its circuit breaker. local seeds the keyword
// sampler of remote interfaces; o (nil ok) observes every layer.
//
// The composed stack mirrors the single-interface CLI, innermost first:
// backend → Faulty → Limited → Retrying, with the Breaker handed to the
// crawl loop's allocator rather than wrapped around the searcher (an
// open breaker diverts the round to the next-ranked interface instead of
// failing its queries).
func (sp Spec) Build(local *relational.Table, tk *tokenize.Tokenizer, o *obs.Obs) (crawler.Interface, *relational.Table, error) {
	var (
		h     crawler.Interface
		table *relational.Table
		s     deepweb.Searcher
	)
	h.Name = sp.Name
	if sp.Hidden != "" {
		var err error
		s, table, err = sp.BuildBackend(tk, o)
		if err != nil {
			return h, nil, err
		}
		if sp.Theta > 0 {
			h.Sample = sample.Bernoulli(table, sp.Theta, stats.NewRNG(sp.Seed))
		}
	} else {
		client := &httpapi.Client{BaseURL: sp.URL, Retries: 5}
		pool := sample.SingleKeywordPool(local, tk)
		if len(pool) == 0 {
			return h, nil, errors.New("federate: local table has no indexable keywords to probe with")
		}
		if err := client.Probe(pool[0]); err != nil {
			return h, nil, fmt.Errorf("federate: interface %q: probing %s: %w", sp.Name, sp.URL, err)
		}
		if sp.SampleTarget > 0 {
			smp, err := sample.Keyword(client, pool, tk, sample.KeywordConfig{
				Target: sp.SampleTarget, Seed: sp.Seed,
			})
			if err != nil {
				// An exhausted allowance still yields a usable partial
				// sample (its Theta reflects what was drawn) — same
				// tolerance as the single-interface -url path, which
				// warns and proceeds. Anything else, or an empty
				// sample, is a real failure.
				if !errors.Is(err, sample.ErrSampleBudget) || smp == nil || smp.Len() == 0 {
					return h, nil, fmt.Errorf("federate: interface %q: sampling: %w", sp.Name, err)
				}
			}
			h.Sample = smp
		}
		s = client
	}
	if sp.Rate > 0 {
		s = &deepweb.Limited{S: s, B: deepweb.NewBucket(sp.Burst, sp.Rate), Obs: o}
	}
	if sp.Retries > 0 {
		s = &deepweb.Retrying{
			S:       s,
			Retries: sp.Retries,
			Backoff: deepweb.ExponentialBackoff(200*time.Millisecond, 5*time.Second),
			Obs:     o,
		}
	}
	h.Searcher = s
	if sp.Breaker > 0 {
		h.Breaker = deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: sp.Breaker}).WithObs(o)
	}
	return h, table, nil
}

// Federation is the materialized interface set of a federated crawl.
type Federation struct {
	// Ifaces are the live interface handles, in spec order — the order is
	// the interface ID space (crawler.Interface).
	Ifaces []crawler.Interface
	// Registry resolves interface names to indices and searchers.
	Registry *deepweb.Registry
	// Tables holds each CSV-backed interface's table (schema source for
	// enrichment), nil for remote backends; aligned with Ifaces.
	Tables []*relational.Table
}

// BuildAll materializes every spec, in order, naming unnamed interfaces
// h1..hn and registering each in a Registry.
func BuildAll(specs []Spec, local *relational.Table, tk *tokenize.Tokenizer, o *obs.Obs) (*Federation, error) {
	fed := &Federation{Registry: deepweb.NewRegistry()}
	for i, sp := range specs {
		if sp.Name == "" {
			sp.Name = fmt.Sprintf("h%d", i+1)
		}
		h, table, err := sp.Build(local, tk, o)
		if err != nil {
			return nil, err
		}
		if _, err := fed.Registry.Add(h.Name, h.Searcher); err != nil {
			return nil, err
		}
		fed.Ifaces = append(fed.Ifaces, h)
		fed.Tables = append(fed.Tables, table)
	}
	return fed, nil
}

// HiddenSchema returns the first CSV-backed interface's schema — the
// enrichment schema of a federated crawl. When every backend is remote
// the schema is synthesized as col0..colN from the first sampled
// interface (the same fallback the single-interface -url path uses);
// nil when no interface exposes even a sample.
func (f *Federation) HiddenSchema() []string {
	for _, t := range f.Tables {
		if t != nil {
			return t.Schema
		}
	}
	for _, h := range f.Ifaces {
		if h.Sample != nil && h.Sample.Len() > 0 {
			schema := make([]string, len(h.Sample.Records[0].Values))
			for i := range schema {
				schema[i] = fmt.Sprintf("col%d", i)
			}
			return schema
		}
	}
	return nil
}

// NewCrawler builds the federated SMARTCRAWL crawler over the
// federation's interfaces. cfg carries the shared loop knobs (batch,
// workers, resume state, durability); per-interface knobs came from the
// specs.
func (f *Federation) NewCrawler(env *crawler.Env, cfg crawler.SmartConfig) (*crawler.Smart, error) {
	return crawler.NewFederatedSmart(env, cfg, f.Ifaces)
}

// AnyFaults reports whether any spec injects faults — the CLI uses it to
// default the graceful-degradation knobs on.
func AnyFaults(specs []Spec) bool {
	for _, sp := range specs {
		if sp.Faults != "" {
			return true
		}
	}
	return false
}

// readTable loads CSV or, for .jsonl paths, JSON Lines.
func readTable(path string) (*relational.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return relational.ReadJSONL("hidden", f)
	}
	return relational.ReadCSV("hidden", f)
}
