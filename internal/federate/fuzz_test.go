package federate_test

import (
	"testing"

	"smartcrawl/internal/federate"
)

// FuzzParseSpecs ensures arbitrary -interfaces grammars never panic the
// parser, and that every accepted parse satisfies the grammar's
// invariants: at least one spec, and exactly one of hidden=/url= per
// interface.
func FuzzParseSpecs(f *testing.F) {
	f.Add("hidden=a.csv")
	f.Add("name=yelp,hidden=yelp.csv,k=10,rank-column=3,theta=0.01")
	f.Add("name=g,url=http://localhost:8081,sample-target=200,faults=transient10,fault-seed=3,rate=5,retries=3,breaker=5")
	f.Add("hidden=a.csv;hidden=b.jsonl,non-conjunctive=true,seed=7")
	f.Add("hidden=a.csv,faults=timeout=0.1+unavailable=0.05,fault-latency=5ms")
	f.Add("url=x,hidden=y") // both set: must error
	f.Add("k=10")           // neither set: must error
	f.Add(";;;")
	f.Add("hidden=a.csv,k=NaN")
	f.Add("hidden=a.csv,bogus=1")
	f.Add("hidden=a.csv,faults=bogus=zzz")
	f.Add(" hidden = a.csv , k = 9 ")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := federate.ParseSpecs(s)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("ParseSpecs(%q) accepted an empty interface list", s)
		}
		for i, sp := range specs {
			if (sp.Hidden == "") == (sp.URL == "") {
				t.Fatalf("ParseSpecs(%q) spec %d: hidden=%q url=%q violates exactly-one",
					s, i, sp.Hidden, sp.URL)
			}
		}
	})
}
