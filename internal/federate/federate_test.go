package federate_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/federate"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func TestParseSpecs(t *testing.T) {
	specs, err := federate.ParseSpecs(
		"name=a,hidden=x.csv,k=10,rank-column=3,theta=0.01,seed=5;" +
			"name=b,url=http://h,sample-target=50,faults=timeout=0.05+truncate=0.1," +
			"fault-seed=3,fault-latency=10ms,rate=5,burst=2,retries=3,breaker=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	a, b := specs[0], specs[1]
	if a.Name != "a" || a.Hidden != "x.csv" || a.K != 10 || a.RankColumn != 3 ||
		a.Theta != 0.01 || a.Seed != 5 {
		t.Errorf("spec a parsed wrong: %+v", a)
	}
	if a.Burst != 10 || a.FaultSeed != 1 {
		t.Errorf("spec a lost its defaults: %+v", a)
	}
	if b.Name != "b" || b.URL != "http://h" || b.SampleTarget != 50 ||
		b.Faults != "timeout=0.05+truncate=0.1" || b.FaultSeed != 3 ||
		b.FaultLatency != 10*time.Millisecond || b.Rate != 5 || b.Burst != 2 ||
		b.Retries != 3 || b.Breaker != 4 {
		t.Errorf("spec b parsed wrong: %+v", b)
	}
}

func TestParseSpecsRejects(t *testing.T) {
	for _, bad := range []string{
		"",                                   // empty
		";;",                                 // only separators
		"k=10",                               // neither hidden nor url
		"hidden=a.csv,url=http://x",          // both backends
		"hidden=a.csv,bogus=1",               // unknown key
		"hidden=a.csv,k",                     // not key=value
		"hidden=a.csv,k=ten",                 // bad int
		"hidden=a.csv,faults=no-such",        // bad fault grammar, caught at parse
		"hidden=a.csv,fault-latency=forever", // bad duration
	} {
		if _, err := federate.ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
}

// writeCSV materializes a table as a CSV fixture file.
func writeCSV(t *testing.T, dir, name string, tbl *relational.Table) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildAllFromCSV drives the CSV backend path end to end: parse the
// grammar, build the federation, run a short crawl.
func TestBuildAllFromCSV(t *testing.T) {
	in := dblp(t)
	dir := t.TempDir()
	n := in.Hidden.Len()
	pa := writeCSV(t, dir, "ha.csv", slice(in.Hidden, "ha", 0, n*2/3))
	pb := writeCSV(t, dir, "hb.csv", slice(in.Hidden, "hb", n/3, n))

	specs, err := federate.ParseSpecs(fmt.Sprintf(
		"name=a,hidden=%s,k=30,rank-column=%d,theta=0.05,seed=3;"+
			"hidden=%s,k=15,rank-column=%d,faults=transient10,fault-seed=5,breaker=3",
		pa, in.RankColumn, pb, in.RankColumn))
	if err != nil {
		t.Fatal(err)
	}
	if !federate.AnyFaults(specs) {
		t.Error("AnyFaults missed the transient10 spec")
	}
	tk := tokenize.New()
	fed, err := federate.BuildAll(specs, in.Local, tk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fed.Registry.Names(); len(got) != 2 || got[0] != "a" || got[1] != "h2" {
		t.Errorf("registry names %v, want [a h2] (unnamed specs default positionally)", got)
	}
	if len(fed.HiddenSchema()) != len(in.Hidden.Schema) {
		t.Errorf("HiddenSchema %v, want the CSV schema %v", fed.HiddenSchema(), in.Hidden.Schema)
	}
	if fed.Ifaces[0].Sample == nil {
		t.Error("theta>0 spec built no sample")
	}
	if fed.Ifaces[1].Breaker == nil {
		t.Error("breaker=3 spec built no breaker")
	}

	env := fedEnv(in, tk)
	c, err := fed.NewCrawler(env, crawler.SmartConfig{BatchSize: 4, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount == 0 {
		t.Error("CSV-backed federation covered nothing")
	}
}

func TestBuildRejectsMissingTable(t *testing.T) {
	sp := federate.Spec{Name: "x", Hidden: "/no/such/file.csv", K: 10, RankColumn: -1}
	if _, _, err := sp.Build(dblp(t).Local, tokenize.New(), nil); err == nil {
		t.Fatal("Build accepted a missing CSV")
	}
}

// TestHiddenSchemaSynthesized covers the all-remote fallback: with no CSV
// table, the schema comes from the first sampled interface as col0..colN.
func TestHiddenSchemaSynthesized(t *testing.T) {
	in := dblp(t)
	fed := &federate.Federation{
		Ifaces: []crawler.Interface{
			{Name: "a"},
			{Name: "b", Sample: sample.Bernoulli(in.Hidden, 0.1, stats.NewRNG(1))},
		},
		Tables: []*relational.Table{nil, nil},
	}
	schema := fed.HiddenSchema()
	if len(schema) != len(in.Hidden.Schema) || schema[0] != "col0" {
		t.Fatalf("synthesized schema %v, want col0..col%d", schema, len(in.Hidden.Schema)-1)
	}
	if (&federate.Federation{}).HiddenSchema() != nil {
		t.Fatal("empty federation should have nil schema")
	}
}

// TestMultiServerE2E runs a federated crawl against two real hiddenserver
// HTTP instances — different k, transient faults on one — and checks the
// federation contract: hidden IDs stay namespaced per interface, no local
// record is double-matched, and at a saturating budget the federated
// coverage equals the union of the two single-interface crawls.
func TestMultiServerE2E(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	n := in.Hidden.Len()
	tblA := slice(in.Hidden, "ha", 0, n*2/3)
	tblB := slice(in.Hidden, "hb", n/3, n)
	dbA := hidden.New(tblA, tk, 30, hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	dbB := hidden.New(tblB, tk, 15, hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	profile, err := deepweb.ParseFaultProfile("transient10")
	if err != nil {
		t.Fatal(err)
	}
	profile.Seed = 4

	srvA := httptest.NewServer(httpapi.NewServer(dbA, tk, nil).Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(httpapi.NewServer(deepweb.NewFaulty(dbB, profile), tk, nil).Handler())
	defer srvB.Close()

	// Saturating budget: the crawl self-terminates when no unissued query
	// promises benefit, well before this.
	const saturating = 5000
	runSpec := func(spec string) *crawler.Result {
		t.Helper()
		specs, err := federate.ParseSpecs(spec)
		if err != nil {
			t.Fatal(err)
		}
		fed, err := federate.BuildAll(specs, in.Local, tk, nil)
		if err != nil {
			t.Fatal(err)
		}
		c, err := fed.NewCrawler(fedEnv(in, tk), crawler.SmartConfig{
			BatchSize: 4, Concurrency: 4, MaxAttempts: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(saturating)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	specA := fmt.Sprintf("name=a,url=%s", srvA.URL)
	specB := fmt.Sprintf("name=b,url=%s,retries=2,breaker=4", srvB.URL)
	fedRes := runSpec(specA + ";" + specB)
	resA := runSpec(specA)
	resB := runSpec(specB)

	// Hidden IDs from the two interfaces must not collide: federated runs
	// namespace them as id*n + iface.
	for _, st := range fedRes.Steps {
		for _, id := range st.NewHidden {
			if id%2 != st.Iface {
				t.Fatalf("hidden id %d absorbed by interface %d: namespacing broken", id, st.Iface)
			}
		}
	}

	// First match wins exactly once per local record: the overlap region
	// is reachable through both interfaces, yet no double counting.
	if len(fedRes.Matches) != fedRes.CoveredCount {
		t.Errorf("%d matches for %d covered records", len(fedRes.Matches), fedRes.CoveredCount)
	}
	covered := 0
	for _, c := range fedRes.Covered {
		if c {
			covered++
		}
	}
	if covered != fedRes.CoveredCount {
		t.Errorf("coverage bitmap has %d set, CoveredCount %d", covered, fedRes.CoveredCount)
	}

	// Merged enrichment equals the union of the single-interface crawls.
	for d := range fedRes.Covered {
		want := resA.Covered[d] || resB.Covered[d]
		if fedRes.Covered[d] != want {
			t.Errorf("local record %d: federated covered=%t, singles union=%t",
				d, fedRes.Covered[d], want)
		}
	}
	if fedRes.CoveredCount <= resA.CoveredCount && fedRes.CoveredCount <= resB.CoveredCount {
		t.Errorf("federation (%d covered) gained nothing over singles (%d, %d)",
			fedRes.CoveredCount, resA.CoveredCount, resB.CoveredCount)
	}
}
