package federate_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// The determinism oracle: a federated crawl — allocator, per-interface
// estimator state, cross-interface dedupe, fault handling — must produce
// byte-identical issued-query logs, coverage, and checkpoints for any
// worker count, at every seed and federation width.

var (
	dblpOnce sync.Once
	dblpInst *dataset.Instance
	dblpErr  error
)

// dblp generates the shared local/hidden instance once per test binary.
func dblp(t *testing.T) *dataset.Instance {
	t.Helper()
	dblpOnce.Do(func() {
		dblpInst, dblpErr = dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: 1600, HiddenSize: 400, LocalSize: 100, Seed: 11,
		})
	})
	if dblpErr != nil {
		t.Fatal(dblpErr)
	}
	return dblpInst
}

// slice copies rows [lo, hi) of t into a fresh table, re-IDed
// positionally — an independently crawled source.
func slice(t *relational.Table, name string, lo, hi int) *relational.Table {
	out := relational.NewTable(name, t.Schema)
	for _, r := range t.Records[lo:hi] {
		out.Append(r.Values...)
	}
	return out
}

// fedEnv builds the shared crawl environment (Searcher nil — federated
// crawls carry their searchers per interface).
func fedEnv(in *dataset.Instance, tk *tokenize.Tokenizer) *crawler.Env {
	return &crawler.Env{
		Local:     in.Local,
		Tokenizer: tk,
		Matcher:   match.NewExactOn(tk, in.LocalKey, in.HiddenKey),
	}
}

// buildIfaces materializes nIf overlapping slices of the hidden database
// as independent interfaces with distinct k and per-interface samples.
// faultIface (when >= 0) gets a seeded transient10 injector and a
// breaker. Fresh interfaces every call: Faulty and Breaker hold state.
func buildIfaces(in *dataset.Instance, tk *tokenize.Tokenizer, nIf int, seed uint64, faultIface int) []crawler.Interface {
	ks := []int{40, 20, 10}
	n := in.Hidden.Len()
	ifaces := make([]crawler.Interface, nIf)
	for i := 0; i < nIf; i++ {
		lo := i * n / (nIf + 1)
		hi := (i + 2) * n / (nIf + 1)
		tbl := slice(in.Hidden, fmt.Sprintf("h%d", i), lo, hi)
		var s deepweb.Searcher = hidden.New(tbl, tk, ks[i],
			hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
		h := crawler.Interface{
			Name:     fmt.Sprintf("if%d", i),
			Sample:   sample.Bernoulli(tbl, 0.08, stats.NewRNG(seed*100+uint64(i))),
			Searcher: s,
		}
		if i == faultIface {
			profile, err := deepweb.ParseFaultProfile("transient10")
			if err != nil {
				panic(err)
			}
			profile.Seed = 5
			h.Searcher = deepweb.NewFaulty(s, profile)
			h.Breaker = deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 3})
		}
		ifaces[i] = h
	}
	return ifaces
}

// runFederated executes one federated crawl and returns its result.
func runFederated(t *testing.T, env *crawler.Env, ifaces []crawler.Interface, batch, workers, budget, maxAttempts int) *crawler.Result {
	t.Helper()
	c, err := crawler.NewFederatedSmart(env, crawler.SmartConfig{
		BatchSize: batch, Concurrency: workers, MaxAttempts: maxAttempts,
	}, ifaces)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fingerprint reduces a run to the bytes the oracle compares: the
// interface-tagged issued-query log, the coverage bitmap, and the full
// serialized checkpoint.
func fingerprint(t *testing.T, res *crawler.Result) string {
	t.Helper()
	var sb strings.Builder
	for _, st := range res.Steps {
		fmt.Fprintf(&sb, "%d\t%s\t%.6f\t%d\t%d\t%v\n",
			st.Iface, st.Query.Key(), st.EstimatedBenefit, st.NewlyCovered, st.ResultSize, st.NewHidden)
	}
	fmt.Fprintf(&sb, "covered=%d queries=%d bitmap=", res.CoveredCount, res.QueriesIssued)
	for _, c := range res.Covered {
		if c {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte('\n')
	var cp bytes.Buffer
	if err := crawler.SaveResult(&cp, res); err != nil {
		t.Fatal(err)
	}
	sb.Write(cp.Bytes())
	return sb.String()
}

// TestFederatedDeterminismOracle sweeps seeds × worker counts ×
// federation widths: for every (seed, n) cell the issued-query log,
// coverage, and checkpoint bytes must be identical at any worker count.
func TestFederatedDeterminismOracle(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	env := fedEnv(in, tk)
	seeds := []uint64{1, 2, 3}
	workers := []int{1, 4, 16}
	if testing.Short() {
		seeds = []uint64{1}
		workers = []int{1, 4}
	}
	for _, nIf := range []int{1, 2, 3} {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("n=%d,seed=%d", nIf, seed), func(t *testing.T) {
				var ref string
				for _, w := range workers {
					ifaces := buildIfaces(in, tk, nIf, seed, -1)
					res := runFederated(t, env, ifaces, 4, w, 50, 0)
					fp := fingerprint(t, res)
					if ref == "" {
						ref = fp
						if res.CoveredCount == 0 {
							t.Fatal("reference run covered nothing; fixture too small to exercise the allocator")
						}
						continue
					}
					if fp != ref {
						t.Errorf("workers=%d diverged from workers=%d", w, workers[0])
					}
				}
			})
		}
	}
}

// TestFederatedDeterminismUnderFaults repeats the oracle with a seeded
// transient10 injector (and a breaker) on one interface of a two-source
// federation: fault decisions hash (seed, query, attempt), so graceful
// degradation — requeues, refunds, breaker transitions — must stay
// byte-identical for any worker count too.
func TestFederatedDeterminismUnderFaults(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	env := fedEnv(in, tk)
	seeds := []uint64{1, 2, 3}
	workers := []int{1, 4, 16}
	if testing.Short() {
		seeds = []uint64{2}
		workers = []int{1, 4}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var ref string
			var refRes *crawler.Result
			for _, w := range workers {
				ifaces := buildIfaces(in, tk, 2, seed, 1)
				res := runFederated(t, env, ifaces, 4, w, 50, 3)
				fp := fingerprint(t, res)
				if ref == "" {
					ref, refRes = fp, res
					continue
				}
				if fp != ref {
					t.Errorf("workers=%d diverged from workers=%d under faults", w, workers[0])
				}
			}
			if refRes.Resilience == nil {
				t.Fatal("fault-tolerant run returned no resilience report")
			}
			if !refRes.Resilience.Accounted() {
				t.Fatalf("resilience report unaccounted: %s", refRes.Resilience)
			}
		})
	}
}

// TestSingleInterfaceEquivalence is the n=1 collapse: a federated crawl
// over one interface must be byte-identical — steps, coverage, checkpoint
// — to NewSmart over the same searcher, because it is the same loop.
func TestSingleInterfaceEquivalence(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	db := hidden.New(in.Hidden, tk, 25,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	newSample := func() *sample.Sample {
		return sample.Bernoulli(in.Hidden, 0.08, stats.NewRNG(9))
	}

	for _, batch := range []int{1, 4} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			env := fedEnv(in, tk)
			env.Searcher = db
			single, err := crawler.NewSmart(env, crawler.SmartConfig{
				Sample: newSample(), BatchSize: batch, Concurrency: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			sres, err := single.Run(60)
			if err != nil {
				t.Fatal(err)
			}

			fenv := fedEnv(in, tk)
			fres := runFederated(t, fenv, []crawler.Interface{{
				Name: "only", Searcher: db, Sample: newSample(),
			}}, batch, 4, 60, 0)
			if batch == 1 {
				// Exercise the eager-selection n=1 path too.
				if _, err := crawler.NewFederatedSmart(fenv, crawler.SmartConfig{
					EagerSelection: true,
				}, []crawler.Interface{{Searcher: db}, {Searcher: db}}); err == nil {
					t.Error("EagerSelection with 2 interfaces should be rejected")
				}
			}

			sfp, ffp := fingerprint(t, sres), fingerprint(t, fres)
			if sfp != ffp {
				t.Errorf("n=1 federated crawl diverged from NewSmart (batch=%d)", batch)
			}
			for _, st := range fres.Steps {
				if st.Iface != 0 {
					t.Fatalf("single-interface step tagged iface %d", st.Iface)
				}
			}
		})
	}
}

// countingSearcher counts Search calls behind a mutex — dispatch-level
// accounting independent of the crawler's own books.
type countingSearcher struct {
	deepweb.Searcher
	mu sync.Mutex
	n  int
}

func (c *countingSearcher) Search(q deepweb.Query) ([]*relational.Record, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.Searcher.Search(q)
}

// TestFederatedChargesSumToBudget pins the budget identity across a
// federation: every dispatched attempt hits exactly one interface, and
// the settled charge — dispatched minus budget-stops minus refunds —
// equals the global budget when the crawl runs to exhaustion.
func TestFederatedChargesSumToBudget(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	env := fedEnv(in, tk)
	ifaces := buildIfaces(in, tk, 2, 1, 1)
	counters := make([]*countingSearcher, len(ifaces))
	for i := range ifaces {
		counters[i] = &countingSearcher{Searcher: ifaces[i].Searcher}
		ifaces[i].Searcher = counters[i]
	}
	const budget = 30
	res := runFederated(t, env, ifaces, 4, 4, budget, 3)

	rep := res.Resilience
	if rep == nil {
		t.Fatal("no resilience report")
	}
	if !rep.Accounted() {
		t.Fatalf("dispatch accounting broken: %s", rep)
	}
	dispatched := 0
	for i, c := range counters {
		if c.n == 0 {
			t.Errorf("interface %d never got an allocation", i)
		}
		dispatched += c.n
	}
	if want := rep.Dispatched - rep.BudgetStops; dispatched != want {
		t.Errorf("interfaces saw %d search calls, books say %d (%s)", dispatched, want, rep)
	}
	charged := rep.Dispatched - rep.BudgetStops - rep.Refunded
	if charged != budget {
		t.Errorf("settled charge %d != budget %d (%s)", charged, budget, rep)
	}
	perIface := make(map[int]int)
	for _, st := range res.Steps {
		perIface[st.Iface]++
	}
	total := 0
	for _, n := range perIface {
		total += n
	}
	if total != res.QueriesIssued {
		t.Errorf("per-interface step counts sum to %d, QueriesIssued %d", total, res.QueriesIssued)
	}
}

// runAdaptive executes one federated crawl with the adaptive-resilience
// knobs engaged: a (generous, never-expiring in tests) crawl deadline, a
// retry budget, and health scoring.
func runAdaptive(t *testing.T, env *crawler.Env, ifaces []crawler.Interface, workers, budget, maxAttempts int, retryBudget float64) *crawler.Result {
	t.Helper()
	h := crawler.DefaultHealthConfig()
	c, err := crawler.NewFederatedSmart(env, crawler.SmartConfig{
		BatchSize:   4,
		Concurrency: workers,
		MaxAttempts: maxAttempts,
		Deadline:    5 * time.Minute,
		RetryBudget: retryBudget,
		Health:      &h,
	}, ifaces)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stepLog reduces a run to its interface-tagged issued-query log — the
// part of the fingerprint that is comparable across configurations whose
// checkpoints legitimately differ (a resilient run serializes its
// resilience report; a plain run has none).
func stepLog(res *crawler.Result) string {
	var sb strings.Builder
	for _, st := range res.Steps {
		fmt.Fprintf(&sb, "%d\t%s\t%d\n", st.Iface, st.Query.Key(), st.NewlyCovered)
	}
	fmt.Fprintf(&sb, "covered=%d\n", res.CoveredCount)
	return sb.String()
}

// TestAdaptiveDeterminismOracle extends the oracle to the adaptive
// knobs. On a clean federation with deadline, retry budget, and health
// scoring all enabled, two things must hold: the run stays byte-identical
// at any worker count, and its issued-query log matches the knobs-off
// baseline exactly — health scores stay at 1.0, the retry bucket is never
// consulted, and the deadline never fires, so the adaptive machinery is
// invisible until something actually fails.
func TestAdaptiveDeterminismOracle(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	env := fedEnv(in, tk)
	seeds := []uint64{1, 2, 3}
	workers := []int{1, 4, 16}
	if testing.Short() {
		seeds = []uint64{1}
		workers = []int{1, 4}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := runFederated(t, env, buildIfaces(in, tk, 3, seed, -1), 4, 1, 50, 0)
			var ref string
			for _, w := range workers {
				res := runAdaptive(t, env, buildIfaces(in, tk, 3, seed, -1), w, 50, 0, 0.1)
				if log := stepLog(res); log != stepLog(base) {
					t.Errorf("workers=%d: adaptive clean run diverged from knobs-off baseline\n--- baseline ---\n%s--- adaptive ---\n%s",
						w, stepLog(base), log)
				}
				fp := fingerprint(t, res)
				if ref == "" {
					ref = fp
					continue
				}
				if fp != ref {
					t.Errorf("workers=%d diverged from workers=%d with adaptive knobs on", w, workers[0])
				}
			}
		})
	}
}

// TestAdaptiveDeterminismUnderFaults repeats the faulted oracle with the
// full adaptive stack — deadline plumbing, retry budget, health-scored
// allocation — on a three-source federation with a seeded transient10
// injector on one interface. Health decay, probe grants, and retry-budget
// withdrawals all happen in the merge stage in selection order, so the
// run (steps, coverage, checkpoint, resilience report) must be
// byte-identical at any worker count and across reruns.
func TestAdaptiveDeterminismUnderFaults(t *testing.T) {
	in := dblp(t)
	tk := tokenize.New()
	env := fedEnv(in, tk)
	seeds := []uint64{1, 2, 3}
	workers := []int{1, 4, 16}
	if testing.Short() {
		seeds = []uint64{2}
		workers = []int{1, 4}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var ref string
			var refRes *crawler.Result
			for _, w := range workers {
				res := runAdaptive(t, env, buildIfaces(in, tk, 3, seed, 1), w, 50, 3, 0.3)
				fp := fingerprint(t, res)
				if ref == "" {
					ref, refRes = fp, res
					continue
				}
				if fp != ref {
					t.Errorf("workers=%d diverged from workers=%d under faults with adaptive knobs", w, workers[0])
				}
			}
			// Rerun the middle worker count: same bytes again.
			again := runAdaptive(t, env, buildIfaces(in, tk, 3, seed, 1), 4, 50, 3, 0.3)
			if fingerprint(t, again) != ref {
				t.Errorf("rerun diverged from itself with adaptive knobs")
			}
			if refRes.Resilience == nil {
				t.Fatal("adaptive faulted run returned no resilience report")
			}
			if !refRes.Resilience.Accounted() {
				t.Fatalf("resilience report unaccounted: %s", refRes.Resilience)
			}
		})
	}
}
