package crawler

// HealthConfig shapes the per-interface health scorer of a federated crawl
// (SmartConfig.Health). The score is a deterministic EWMA over outcome
// counts — never wall-clock — so a crawl with health scoring enabled is as
// reproducible as one without: same seed, same outcomes, same scores, same
// allocation, at any worker count (every update happens in the single-writer
// merge stage, in selection order).
type HealthConfig struct {
	// Alpha is the EWMA smoothing factor: a success moves the score
	// toward 1 by Alpha·(1−score), a failure multiplies it by (1−Alpha).
	// Default 0.2.
	Alpha float64
	// MinScore floors the score so a sick interface's bids never reach
	// exactly zero — it stays rankable and can recover. Default 0.05.
	MinScore float64
	// ProbeEvery is how many allocation rounds a degraded interface
	// (score < 1) may lose consecutively before it is granted one round
	// as a recovery probe regardless of its scaled bid. Default 16.
	ProbeEvery int
}

// DefaultHealthConfig returns the tuning the experiments use.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{Alpha: 0.2, MinScore: 0.05, ProbeEvery: 16}
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.05
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 16
	}
	return c
}

// healthState is the live health tracker of a federated run: one score and
// one probe counter per interface. It is driven exclusively from the merge
// stage and the allocator — both on the crawl loop's goroutine — so it
// needs no locking and its evolution is deterministic.
//
// A healthy interface's score is exactly 1.0, and the allocator multiplies
// candidate benefits by the score, so a clean run ranks by benefit·1.0 —
// bit-identical to the health-disabled ranking. Scores only move, and
// health trace events only appear, once an interface actually fails.
type healthState struct {
	cfg        HealthConfig
	score      []float64
	sinceProbe []int
}

func newHealthState(cfg HealthConfig, n int) *healthState {
	h := &healthState{cfg: cfg.withDefaults(), score: make([]float64, n), sinceProbe: make([]int, n)}
	for i := range h.score {
		h.score[i] = 1.0
	}
	return h
}

// onSuccess moves the interface's score toward 1. A score already at 1
// stays exactly 1 (no float drift on clean runs).
func (h *healthState) onSuccess(i int) {
	if h.score[i] >= 1 {
		return
	}
	h.score[i] += h.cfg.Alpha * (1 - h.score[i])
	if h.score[i] > 1 {
		h.score[i] = 1
	}
}

// onFailure decays the interface's score multiplicatively, floored at
// MinScore.
func (h *healthState) onFailure(i int) {
	h.score[i] *= 1 - h.cfg.Alpha
	if h.score[i] < h.cfg.MinScore {
		h.score[i] = h.cfg.MinScore
	}
}

// degraded reports whether the interface's score has moved off 1.
func (h *healthState) degraded(i int) bool { return h.score[i] < 1 }

// probeDue reports whether the interface has lost enough consecutive
// allocation rounds to deserve a recovery probe.
func (h *healthState) probeDue(i int) bool {
	return h.degraded(i) && h.sinceProbe[i] >= h.cfg.ProbeEvery
}
