package crawler

import (
	"fmt"
	"strings"
)

// Resilience is the per-run graceful-degradation report of a SMARTCRAWL
// crawl over a misbehaving interface (SmartConfig.MaxAttempts > 0 or a
// Breaker attached). Every dispatched query ends in exactly one of four
// ways — absorbed, requeued for another attempt, forfeited, or dropped
// because the budget ran out mid-round — so the report satisfies
//
//	Dispatched == Absorbed + Requeued + Forfeited + BudgetStops
//
// (Accounted checks it). A resumed run (SmartConfig.Resume) carries the
// previous session's report forward cumulatively, so the identity holds
// across checkpoint boundaries too.
type Resilience struct {
	// Dispatched counts dispatcher outcomes handled by the merge stage —
	// every selection the crawl committed to, including ones that failed.
	Dispatched int `json:"dispatched"`
	// Absorbed counts queries whose results entered coverage, including
	// truncated pages absorbed partially.
	Absorbed int `json:"absorbed"`
	// Truncated counts the subset of Absorbed whose result page was cut
	// short (partial records absorbed, solidity judged on the true size).
	Truncated int `json:"truncated"`
	// Requeued counts failed attempts whose query went back into the
	// selection pool for another try.
	Requeued int `json:"requeued"`
	// Forfeited counts queries given up on — attempts exhausted, or no
	// still-uncovered records left to gain.
	Forfeited int `json:"forfeited"`
	// Refunded counts budget units returned for failures the interface
	// never charged (429 bursts, open circuit, cancellation; see
	// deepweb.Charged).
	Refunded int `json:"refunded"`
	// BudgetStops counts outcomes that hit ErrBudgetExhausted: selected,
	// never executed, never charged.
	BudgetStops int `json:"budget_stops"`
	// DeadlineExhausted counts the subset of Forfeited whose query the
	// crawl deadline (SmartConfig.Deadline) interrupted mid-search: no
	// time left to retry, budget unit refunded. Cause attribution only —
	// dropForfeit does not decrement it when a resumed session later
	// absorbs the query.
	DeadlineExhausted int `json:"deadline_exhausted,omitempty"`
	// RetryBudgetDenied counts the subset of Forfeited whose requeue the
	// retry budget (SmartConfig.RetryBudget) refused: the bucket was dry,
	// so retrying would have multiplied load on a failing interface.
	// Cause attribution only, like DeadlineExhausted.
	RetryBudgetDenied int `json:"retry_budget_denied,omitempty"`
	// BreakerTrips is how many times the circuit opened during the run
	// (cumulative across resumed sessions).
	BreakerTrips int `json:"breaker_trips"`
	// BreakerHolds counts selection rounds skipped because the circuit
	// was open.
	BreakerHolds int `json:"breaker_holds"`
	// ForfeitedQueries lists the queries still owed: forfeited and not
	// absorbed by a later resumed session. They are re-eligible on resume.
	ForfeitedQueries []string `json:"forfeited_queries,omitempty"`
}

// Accounted reports whether every dispatched query is accounted for by
// exactly one terminal counter.
func (r *Resilience) Accounted() bool {
	return r.Dispatched == r.Absorbed+r.Requeued+r.Forfeited+r.BudgetStops
}

// String renders the report as a one-line operator summary.
func (r *Resilience) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience: dispatched=%d absorbed=%d truncated=%d requeued=%d forfeited=%d refunded=%d budget_stops=%d",
		r.Dispatched, r.Absorbed, r.Truncated, r.Requeued, r.Forfeited, r.Refunded, r.BudgetStops)
	if r.DeadlineExhausted > 0 {
		fmt.Fprintf(&b, " deadline_exhausted=%d", r.DeadlineExhausted)
	}
	if r.RetryBudgetDenied > 0 {
		fmt.Fprintf(&b, " retry_budget_denied=%d", r.RetryBudgetDenied)
	}
	if r.BreakerTrips > 0 || r.BreakerHolds > 0 {
		fmt.Fprintf(&b, " breaker_trips=%d breaker_holds=%d", r.BreakerTrips, r.BreakerHolds)
	}
	if !r.Accounted() {
		b.WriteString(" UNACCOUNTED")
	}
	return b.String()
}

// clone returns a deep copy (the forfeit list is mutable during a run).
func (r *Resilience) clone() *Resilience {
	if r == nil {
		return nil
	}
	c := *r
	c.ForfeitedQueries = append([]string(nil), r.ForfeitedQueries...)
	return &c
}

// dropForfeit removes q from the still-owed list — a resumed session
// absorbed a query an earlier session forfeited.
func (r *Resilience) dropForfeit(q string) {
	for i, f := range r.ForfeitedQueries {
		if f == q {
			r.ForfeitedQueries = append(r.ForfeitedQueries[:i], r.ForfeitedQueries[i+1:]...)
			return
		}
	}
}
