package crawler

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
)

// SmartConfig configures a SMARTCRAWL run.
type SmartConfig struct {
	// PoolConfig controls query-pool generation (§3.1).
	PoolConfig querypool.Config
	// Sample is the hidden-database sample Hs with its ratio θ; nil runs
	// without sample information (QSel-Simple must then be used).
	Sample *sample.Sample
	// Estimator selects the query-selection strategy:
	// estimator.Frequency{} = QSel-Simple, estimator.Biased{} =
	// QSel-Est-B (the paper's SmartCrawl-B), estimator.Unbiased{} =
	// QSel-Est-U.
	Estimator estimator.Estimator
	// AlphaFallback enables the §6.2 inadequate-sample-size fallback
	// (treat D as a second sample with ratio α = θ|D|/|Hs|).
	AlphaFallback bool
	// DisableDeltaDRemoval turns off the §4.2 optimization that removes
	// predicted-ΔD records (q(D) − q(D)_cover of a solid query) from
	// consideration. Algorithm 4 has it on; the ablation bench turns it
	// off.
	DisableDeltaDRemoval bool
	// Resume continues a previous crawl from its saved Result (see
	// SaveResult/LoadResult): covered records stay covered, previously
	// issued queries are never re-issued, and solid-query ΔD removals
	// are replayed from the step trace. A resumed run with budget b2
	// after a run with budget b1 selects exactly the queries an
	// uninterrupted run with budget b1+b2 would.
	Resume *Result
	// OnlineCalibration enables pay-as-you-go benefit estimation — the
	// paper's first future-work item (§9): instead of an upfront hidden-
	// database sample, the crawler calibrates from the queries it issues
	// anyway. Queries are bucketed by ⌈log₂|q(D₀)|⌉ and each bucket
	// tracks the mean REALIZED benefit (records newly covered per issued
	// query); an unissued query's benefit is its bucket's mean, scaled by
	// the fraction of its records still uncovered. Until a bucket has
	// enough observations it falls back to min(|q(D)|, k) (QSel-Simple
	// capped at the only hard bound available without a sample). Requires
	// Sample == nil and no explicit Estimator.
	OnlineCalibration bool
	// EagerSelection replaces the §6.3 lazy priority queue with a full
	// argmax rescan of the pool at every iteration — the naive
	// implementation Appendix B compares against. Selection results are
	// identical (same argmax, same tie-breaking); only cost differs.
	// Exposed for the E10 ablation.
	EagerSelection bool
	// BatchSize > 1 enables batch-greedy selection: the top-n queries
	// are popped together and issued concurrently (the searcher must be
	// safe for concurrent use, as HTTP clients are). Later queries in a
	// batch are selected without seeing earlier results, so coverage can
	// dip slightly below sequential greedy — the classic latency/quality
	// trade against slow network interfaces. Results are absorbed in
	// selection order, keeping runs deterministic. 0 or 1 is the
	// sequential Algorithm 4.
	BatchSize int
	// Concurrency is the worker-pool size of the crawl pipeline: how
	// many goroutines issue a selection batch (deepweb.Dispatcher), and
	// how many shards the inverted-index build and FP-Growth mining are
	// partitioned into. It is a pure wall-clock knob — results are
	// merged into the delta-update loop in selection order by a single
	// writer, so at a fixed seed the coverage and the issued-query log
	// are byte-identical for ANY Concurrency. 0 defaults to BatchSize
	// (every query of a batch gets its own goroutine). Selection quality
	// is governed by BatchSize alone.
	Concurrency int
	// MaxAttempts > 0 enables graceful degradation: a query whose issue
	// fails is re-queued into the selection pool (with its benefit
	// recomputed against the current coverage) until it has failed
	// MaxAttempts times, then forfeited; the run continues instead of
	// aborting. Failures the interface never charged — 429 bursts, an
	// open circuit, cancellations (deepweb.Charged) — refund their budget
	// unit. Truncated result pages (deepweb.TruncatedError) are absorbed
	// partially with solidity judged on the true result size. The run's
	// Result carries a Resilience report. 0 (the default) preserves the
	// strict behavior: any interface error aborts the run.
	MaxAttempts int
	// Context, when non-nil, bounds the crawl for graceful shutdown: once
	// it is cancelled no further rounds are selected, queries of the
	// current round not yet handed to a dispatcher worker are skipped
	// before they can be charged, and in-flight queries drain — their
	// results are absorbed normally, so every charged query's outcome is
	// kept. Run then returns the partial Result with err == nil; callers
	// detect the interruption via ctx.Err(). The stop point is a round
	// boundary plus drained stragglers, which is exactly a resumable
	// checkpoint state.
	Context context.Context
	// Durability, when non-nil, receives synchronous accounting callbacks
	// from the merge stage (see DurabilitySink) — the hook the WAL
	// journal in internal/durable attaches to. A sink error aborts the
	// run.
	Durability DurabilitySink
	// ResumePending re-issues the unresolved tail of a crashed session's
	// last selection round, with the original benefits, before any new
	// selection happens. Populated by durable.Recover from the round
	// intent record; meaningful only together with Resume.
	ResumePending []PendingQuery
	// Breaker, when non-nil, gates selection rounds through a circuit
	// breaker: interface failures feed it, and while it is open whole
	// rounds are held (each held round advances the count-based
	// cooldown); the half-open probe round has size 1. Driven entirely
	// from the single-writer merge stage, so breaker transitions — like
	// everything else — are deterministic for any Concurrency. Implies
	// MaxAttempts=1 when MaxAttempts is unset. Attach obs via
	// deepweb.(*Breaker).WithObs; Run does not rewire it.
	Breaker *deepweb.Breaker
}

// Smart is the SMARTCRAWL framework (Algorithm 4).
type Smart struct {
	env *Env
	cfg SmartConfig

	// HeapRepushes is populated after Run with the lazy-queue repush
	// count (the `t` factor of the Appendix B analysis).
	HeapRepushes int
	// PoolSize is populated after Run with the generated pool size.
	PoolSize int
}

// NewSmart constructs a SMARTCRAWL crawler. The estimator defaults to
// Biased when a sample is supplied and Frequency (QSel-Simple) otherwise.
func NewSmart(env *Env, cfg SmartConfig) (*Smart, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.Estimator == nil {
		if cfg.Sample != nil {
			cfg.Estimator = estimator.Biased{}
		} else {
			cfg.Estimator = estimator.Frequency{}
		}
	}
	if cfg.Sample == nil {
		if _, ok := cfg.Estimator.(estimator.Frequency); !ok {
			return nil, errors.New("crawler: sample-based estimators require a sample")
		}
	} else if cfg.Sample.Theta <= 0 {
		return nil, fmt.Errorf("crawler: sample has non-positive theta %v", cfg.Sample.Theta)
	}
	if cfg.OnlineCalibration && cfg.Sample != nil {
		return nil, errors.New("crawler: OnlineCalibration replaces the sample; supply one or the other")
	}
	return &Smart{env: env, cfg: cfg}, nil
}

// Name implements Crawler.
func (s *Smart) Name() string {
	if s.cfg.OnlineCalibration {
		return "smartcrawl-online"
	}
	if _, ok := s.cfg.Estimator.(estimator.Frequency); ok {
		return "smartcrawl-simple"
	}
	return "smartcrawl-" + s.cfg.Estimator.Name()
}

// qstate is the live selection state of one pool query.
type qstate struct {
	q *querypool.Query
	// qD holds the local record IDs satisfying q at generation time,
	// sorted ascending — the interned-index intersection result.
	qD    []uint32
	freqD int // |q(D)| over still-considered records
	// matchS is |q(D) ∩̃ q(Hs)| over still-considered records.
	matchS int
	freqS  int // |q(Hs)|, static
	issued bool
	// attempts counts failed issues of this query (graceful degradation);
	// at SmartConfig.MaxAttempts the query is forfeited.
	attempts int
}

// Run implements Crawler, executing Algorithm 4: generate the pool, build
// the inverted/forward indexes and the lazy priority queue, then
// iteratively pop the best query, issue it, cover and remove records, and
// invalidate affected queries until the budget or the pool is exhausted.
func (s *Smart) Run(budget int) (*Result, error) {
	env := s.env
	t := newTracker(env)
	counting := deepweb.NewCounting(env.Searcher, budget)
	k := env.Searcher.K()

	batch := s.cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	workers := s.cfg.Concurrency
	if workers < 1 {
		workers = batch
	}

	poolCfg := s.cfg.PoolConfig
	if poolCfg.Workers == 0 {
		poolCfg.Workers = workers
	}
	stopPool := env.Obs.Phase("pool_generate")
	pool := querypool.Generate(env.Local, env.Tokenizer, poolCfg)
	stopPool()
	s.PoolSize = pool.Len()

	// Sample-derived estimator constants; the sample's interned indexes
	// and match tables are built inside newSelection.
	var (
		theta float64
		alpha float64
	)
	if s.cfg.Sample != nil && s.cfg.Sample.Len() > 0 {
		theta = s.cfg.Sample.Theta
		if s.cfg.AlphaFallback {
			alpha = theta * float64(env.Local.Len()) / float64(s.cfg.Sample.Len())
		}
	}

	// Online calibration state (§9 future work; see SmartConfig):
	// per-bucket running means of realized benefit, keyed by
	// bit-length of |q(D₀)|.
	const calibMinObs = 3
	type bucketStat struct {
		sum   float64
		count int
	}
	var calib [64]bucketStat
	// bucketOf is the bit length of n (⌈log₂(n+1)⌉ for n ≥ 0) — the
	// hardware leading-zero count instead of a shift loop.
	bucketOf := func(n int) int { return bits.Len(uint(n)) }
	// Estimator Benefit calls are the selection hot path; the instrumented
	// wrapper adds one atomic count per call and nothing else, so the
	// benefits — and therefore selection order — are bit-identical.
	est := s.cfg.Estimator
	if env.Obs.Enabled() {
		est = estimator.Instrumented{E: est, Obs: env.Obs}
	}
	benefitOf := func(st *qstate) float64 {
		if s.cfg.OnlineCalibration {
			b := calib[bucketOf(len(st.qD))]
			if b.count >= calibMinObs {
				// Bucket mean, scaled by the still-uncovered
				// fraction of this query's records.
				return (b.sum / float64(b.count)) *
					float64(st.freqD) / float64(len(st.qD))
			}
			if f := float64(st.freqD); f < float64(k) {
				return f
			}
			return float64(k) // uncalibrated: QSel-Simple capped at k
		}
		return est.Benefit(estimator.Stats{
			FreqD:       st.freqD,
			FreqSample:  st.freqS,
			MatchSample: st.matchS,
			Theta:       theta,
			K:           k,
			Alpha:       alpha,
		})
	}
	// Pool resolution, the interned inverted/forward indexes, the
	// precomputed sample-match counts, and the initial priorities —
	// Figure 3's index structures on token IDs (see selection.go).
	sel := newSelection(env, pool, selectionStats{smp: s.cfg.Sample, joiner: t.joiner}, workers, benefitOf)

	rescore := func(qid int) (float64, bool) {
		st := sel.states[qid]
		if st == nil || st.issued || st.freqD <= 0 {
			return 0, false
		}
		return benefitOf(st), true
	}

	// Resume: replay a previous session's effects before selecting.
	if prev := s.cfg.Resume; prev != nil {
		if len(prev.Covered) != env.Local.Len() {
			return nil, fmt.Errorf("crawler: resume checkpoint covers %d records, local database has %d",
				len(prev.Covered), env.Local.Len())
		}
		// Restore the tracker's cumulative state.
		copy(t.res.Covered, prev.Covered)
		t.res.CoveredCount = prev.CoveredCount
		t.res.QueriesIssued = prev.QueriesIssued
		t.res.Steps = append(t.res.Steps, prev.Steps...)
		for id, r := range prev.Crawled {
			t.res.Crawled[id] = r
		}
		for d, h := range prev.Matches {
			t.res.Matches[d] = h
		}
		// Retire issued queries and replay record removals.
		for d, covered := range prev.Covered {
			if covered {
				sel.remove(d)
			}
		}
		for _, step := range prev.Steps {
			q := pool.Find(step.Query)
			if q == nil || sel.states[q.ID] == nil {
				continue // pool drift; the query can no longer be selected anyway
			}
			st := sel.states[q.ID]
			st.issued = true
			if !s.cfg.EagerSelection {
				// The replayed query's heap entry was never popped; a clean
				// entry would be re-issued without a rescore. (Usually its
				// own covered records already invalidated it above, but a
				// step that covered nothing new leaves the entry clean.)
				sel.heap.Invalidate(q.ID)
			}
			if step.ResultSize < k && !s.cfg.DisableDeltaDRemoval {
				for _, d := range st.qD {
					sel.remove(int(d))
				}
			}
			// Replay the calibration observations so a resumed online
			// crawl selects exactly as an uninterrupted one.
			if s.cfg.OnlineCalibration && len(st.qD) > 0 {
				bkt := bucketOf(len(st.qD))
				calib[bkt].sum += float64(step.NewlyCovered)
				calib[bkt].count++
			}
		}
		if s.cfg.OnlineCalibration {
			sel.heap.Reprioritize(rescore)
		}
	}

	// The crawl pipeline: selection (producer, this goroutine) feeds the
	// dispatcher's worker pool, whose in-order outcomes feed the merge
	// stage (single writer, this goroutine again). The heap, forward
	// index, considered set, and calibration buckets are touched only by
	// the merge stage, so no crawl state is ever shared across goroutines.
	disp := &deepweb.Dispatcher{S: counting, Workers: workers, Obs: env.Obs}

	// Graceful degradation (see SmartConfig.MaxAttempts/Breaker): failed
	// queries are requeued or forfeited instead of aborting the run, and
	// the report below accounts for every dispatched query.
	br := s.cfg.Breaker
	maxAttempts := s.cfg.MaxAttempts
	if maxAttempts < 1 && br != nil {
		maxAttempts = 1
	}
	resilient := maxAttempts > 0
	var rep *Resilience
	tripsBase := 0
	if resilient {
		rep = &Resilience{}
		if prev := s.cfg.Resume; prev != nil && prev.Resilience != nil {
			rep = prev.Resilience.clone()
		}
		tripsBase = rep.BreakerTrips
		// The live report rides inside the Result from the start, not
		// only at return: the durability sink snapshots t.res mid-crawl,
		// and a snapshot missing the failure accounting would under-count
		// the settled charge on recovery (durable.Recover derives it as
		// issued + requeued + forfeited − refunded).
		t.res.Resilience = rep
	} else if prev := s.cfg.Resume; prev != nil && prev.Resilience != nil {
		// A non-resilient resumed run still carries the historical report
		// forward, for the same recovery-accounting reason — and so the
		// failures an earlier session absorbed stay reported.
		t.res.Resilience = prev.Resilience.clone()
	}
	// requeue returns a failed query to the pool for another attempt. Its
	// live statistics are recomputed from the considered set first:
	// removals during the in-flight window skipped this query (issued
	// queries are normally never reconsidered), so freqD/matchS are stale.
	// Returns false — forfeit — when attempts are exhausted or nothing the
	// query covers is still uncovered.
	requeue := func(st *qstate, fromHeap bool) bool {
		sel.recompute(st)
		if st.freqD <= 0 || st.attempts >= maxAttempts {
			return false
		}
		st.issued = false
		if !s.cfg.EagerSelection {
			if fromHeap {
				sel.heap.Push(st.q.ID, benefitOf(st))
			} else {
				// The entry is still in the heap (resumed pending query,
				// never popped); a Push would duplicate it. Invalidation
				// forces a rescore with the recomputed statistics.
				sel.heap.Invalidate(st.q.ID)
			}
		}
		return true
	}

	defer env.Obs.Phase("crawl_loop")()
	type issue struct {
		st      *qstate // nil when a resumed pending query left the pool
		q       deepweb.Query
		benefit float64
		// fromHeap records that selection popped this query's heap entry.
		// A resumed pending query is issued without popping — its entry is
		// still in the heap (invalidated) — so returning it to the pool
		// must not Push a duplicate entry.
		fromHeap bool
		recs     []*relational.Record
		err      error
	}
	ctx := s.cfg.Context
	sink := s.cfg.Durability
	sinkErr := func(err error) error {
		return fmt.Errorf("crawler: durability sink: %w", err)
	}
	// pending is the unresolved tail of a crashed session's last round
	// (see SmartConfig.ResumePending); it is re-issued with the original
	// benefits before any fresh selection.
	pending := append([]PendingQuery(nil), s.cfg.ResumePending...)
	// Round scratch, allocated once and reused every round: the selection
	// loop runs thousands of rounds and the per-round make calls were
	// measurable. Safe because every consumer finishes with the slice
	// inside the round — the dispatcher reads its input before returning,
	// and DurabilitySink.RoundSelected must copy what it retains.
	issueBuf := make([]issue, batch)
	round := make([]*issue, 0, batch)
	intentScratch := make([]PendingQuery, 0, batch)
	qsScratch := make([]deepweb.Query, 0, batch)
	for !counting.Exhausted() && (sel.remaining > 0 || len(pending) > 0) {
		if ctx != nil && ctx.Err() != nil {
			break // graceful shutdown: stop at the round boundary
		}
		// Circuit gate: while open, each held round advances the
		// count-based cooldown; the round that half-opens the breaker
		// proceeds as a single-query probe.
		if br != nil && !br.Allow() {
			rep.BreakerHolds++
			continue
		}
		// Pop up to `batch` queries (bounded by the remaining budget so
		// concurrent issues never overshoot b).
		n := batch
		if br != nil && br.State() == deepweb.BreakerHalfOpen {
			n = 1
		}
		if r := counting.Remaining(); r >= 0 && r < n {
			n = r
		}
		round = round[:0]
		if len(pending) > 0 {
			// Replay the crashed round verbatim: same queries, same
			// benefits, same order. The pool state may have drifted (a
			// forfeited query whose records were since covered), so a
			// missing qstate is tolerated — the query is still issued,
			// only its live bookkeeping is skipped.
			if n > len(pending) {
				n = len(pending)
			}
			for _, p := range pending[:n] {
				is := &issueBuf[len(round)]
				*is = issue{q: p.Query, benefit: p.Benefit}
				if q := pool.Find(p.Query); q != nil {
					if st := sel.states[q.ID]; st != nil && !st.issued {
						st.issued = true
						is.st = st
						if !s.cfg.EagerSelection {
							// The query was never popped this session —
							// its heap entry is still live, and a clean
							// entry would be re-issued without ever being
							// rescored. Mark it stale so the issued
							// filter retires it at the next pop.
							sel.heap.Invalidate(q.ID)
						}
					}
				}
				round = append(round, is)
			}
			pending = pending[n:]
		} else {
			for len(round) < n {
				var (
					qid     int
					benefit float64
					ok      bool
				)
				if s.cfg.EagerSelection {
					qid, benefit, ok = eagerArgmax(sel.states, benefitOf)
				} else {
					qid, benefit, ok = sel.heap.Pop(rescore)
				}
				if !ok {
					break // pool exhausted
				}
				st := sel.states[qid]
				st.issued = true
				is := &issueBuf[len(round)]
				*is = issue{st: st, q: st.q.Keywords, benefit: benefit, fromHeap: true}
				round = append(round, is)
			}
		}
		if len(round) == 0 {
			break
		}
		if sink != nil {
			// Write-ahead intent: journal the selected batch before any
			// of it is dispatched, so a crash mid-round can re-issue
			// exactly this batch instead of re-selecting a different one.
			intentScratch = intentScratch[:0]
			for _, is := range round {
				intentScratch = append(intentScratch, PendingQuery{Query: is.q, Benefit: is.benefit})
			}
			if err := sink.RoundSelected(intentScratch, t.res); err != nil {
				return nil, sinkErr(err)
			}
		}
		if o := env.Obs; o != nil {
			o.Round(len(round), counting.Remaining())
		}

		// Issue the round through the worker pool. Outcomes come back
		// index-aligned with the selection order regardless of which
		// worker finished first. Under a cancelled context the
		// dispatcher drains: started queries finish, unstarted ones
		// come back with ctx.Err() before they could be charged.
		qsScratch = qsScratch[:0]
		for _, is := range round {
			qsScratch = append(qsScratch, is.q)
		}
		for i, o := range disp.DispatchCtx(ctx, qsScratch) {
			round[i].recs, round[i].err = o.Records, o.Err
		}

		// Merge stage: absorb in selection order so runs stay
		// deterministic for any worker count — including every
		// degradation decision (requeue, forfeit, refund, breaker
		// feeding), which is why none of it happens on the workers.
		for _, is := range round {
			st := is.st
			if ctx != nil && ctx.Err() != nil && errors.Is(is.err, ctx.Err()) {
				// Shutdown drain skipped this query before it was
				// issued: never executed, never charged, no journal
				// record — it simply returns to the pool, and a resumed
				// session will find it still pending in the round
				// intent record.
				if st != nil {
					st.issued = false
					if !s.cfg.EagerSelection {
						if is.fromHeap {
							sel.heap.Push(st.q.ID, is.benefit)
						} else {
							sel.heap.Invalidate(st.q.ID)
						}
					}
				}
				continue
			}
			if errors.Is(is.err, deepweb.ErrBudgetExhausted) {
				if rep != nil {
					rep.Dispatched++
					rep.BudgetStops++
				}
				if sink != nil {
					if err := sink.BudgetStopped(is.q, t.res); err != nil {
						return nil, sinkErr(err)
					}
				}
				continue
			}
			if rep != nil {
				rep.Dispatched++
			}
			if br != nil {
				br.Record(is.err)
			}
			resultSize := len(is.recs)
			if is.err != nil {
				var te *deepweb.TruncatedError
				switch {
				case !resilient:
					return nil, fmt.Errorf("crawler: issuing %q: %w", is.q, is.err)
				case errors.As(is.err, &te):
					// A cut page: absorb the partial records below, but
					// judge solidity — and trace the step — on the true
					// matched size, so §4.2 never removes ΔD records on
					// the strength of a truncated result.
					resultSize = te.Full
					rep.Truncated++
					env.Obs.Truncated(is.q.Key(), te.Returned, te.Full)
				default:
					chargedFail := deepweb.Charged(is.err)
					if !chargedFail {
						// The interface never billed this failure (429,
						// open circuit, cancellation) — a query that
						// never executed must not consume budget.
						counting.Refund()
						rep.Refunded++
						env.Obs.Refunded(is.q.Key())
					}
					attempts := maxAttempts
					requeued := false
					if st != nil {
						st.attempts++
						attempts = st.attempts
						requeued = requeue(st, is.fromHeap)
					}
					if requeued {
						rep.Requeued++
						env.Obs.Requeued(is.q.Key(), attempts, is.err)
						if sink != nil {
							if err := sink.QueryRequeued(is.q, attempts, chargedFail, t.res); err != nil {
								return nil, sinkErr(err)
							}
						}
					} else {
						rep.Forfeited++
						rep.ForfeitedQueries = append(rep.ForfeitedQueries, is.q.Key())
						env.Obs.Forfeited(is.q.Key(), attempts, is.err)
						if sink != nil {
							if err := sink.QueryForfeited(is.q, attempts, chargedFail, t.res); err != nil {
								return nil, sinkErr(err)
							}
						}
					}
					continue
				}
			}
			if rep != nil {
				rep.Absorbed++
				rep.dropForfeit(is.q.Key())
			}
			newly := t.absorbSized(is.q, is.benefit, is.recs, resultSize)
			if sink != nil {
				if err := sink.StepAbsorbed(t.res, t.res.Steps[len(t.res.Steps)-1], newly); err != nil {
					return nil, sinkErr(err)
				}
			}
			if s.cfg.OnlineCalibration && st != nil && len(st.qD) > 0 {
				bkt := bucketOf(len(st.qD))
				old := calib[bkt]
				calib[bkt].sum += float64(len(newly))
				calib[bkt].count++
				// Rebuild priorities when a bucket first becomes
				// usable or its mean moves materially; rare once
				// calibrated.
				cur := calib[bkt]
				curMean := cur.sum / float64(cur.count)
				switch {
				case cur.count == calibMinObs:
					sel.heap.Reprioritize(rescore)
				case old.count >= calibMinObs:
					oldMean := old.sum / float64(old.count)
					if curMean > 1.3*oldMean || curMean < 0.7*oldMean {
						sel.heap.Reprioritize(rescore)
					}
				}
			}
			for _, d := range newly {
				sel.remove(d)
			}
			// §4.2 ΔD prediction: a solid query (result smaller than
			// k) returns everything matching it, so any record of
			// q(D) it did not cover cannot be in H — drop it from
			// consideration. resultSize is the interface's true match
			// count even when the page was truncated.
			solid := resultSize < k
			if solid && !s.cfg.DisableDeltaDRemoval {
				if st != nil {
					for _, d := range st.qD {
						sel.remove(int(d))
					}
				}
			}
		}
		if sink != nil {
			if err := sink.RoundCompleted(t.res); err != nil {
				return nil, sinkErr(err)
			}
		}
	}

	s.HeapRepushes = sel.heap.Repushes
	if rep != nil {
		if br != nil {
			rep.BreakerTrips = tripsBase + br.Trips()
		}
		t.res.Resilience = rep
	}
	return t.res, nil
}

// countSatisfying counts the sample positions (matching some local record)
// whose token sets contain every query keyword. The production path runs
// the interned kernel (countSatisfyingIDs over precomputed counts; see
// selection.go); this string implementation is retained as the reference
// the equivalence tests check the kernel against.
func countSatisfying(positions []int, sampleTokens []map[string]struct{}, q deepweb.Query) int {
	if len(positions) == 0 {
		return 0
	}
	n := 0
	for _, pos := range positions {
		set := sampleTokens[pos]
		ok := true
		for _, w := range q {
			if _, in := set[w]; !in {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// eagerArgmax scans every live query state and returns the one with the
// largest benefit (ties by smaller query ID), mirroring the lazy queue's
// selection semantics at O(|Q|) per call.
func eagerArgmax(states []*qstate, benefitOf func(*qstate) float64) (int, float64, bool) {
	best := -1
	bestBenefit := 0.0
	for qid, st := range states {
		if st == nil || st.issued || st.freqD <= 0 {
			continue
		}
		b := benefitOf(st)
		if best == -1 || b > bestBenefit {
			best, bestBenefit = qid, b
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestBenefit, true
}
