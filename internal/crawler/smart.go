package crawler

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
)

// SmartConfig configures a SMARTCRAWL run.
type SmartConfig struct {
	// PoolConfig controls query-pool generation (§3.1).
	PoolConfig querypool.Config
	// Sample is the hidden-database sample Hs with its ratio θ; nil runs
	// without sample information (QSel-Simple must then be used).
	Sample *sample.Sample
	// Estimator selects the query-selection strategy:
	// estimator.Frequency{} = QSel-Simple, estimator.Biased{} =
	// QSel-Est-B (the paper's SmartCrawl-B), estimator.Unbiased{} =
	// QSel-Est-U.
	Estimator estimator.Estimator
	// AlphaFallback enables the §6.2 inadequate-sample-size fallback
	// (treat D as a second sample with ratio α = θ|D|/|Hs|).
	AlphaFallback bool
	// DisableDeltaDRemoval turns off the §4.2 optimization that removes
	// predicted-ΔD records (q(D) − q(D)_cover of a solid query) from
	// consideration. Algorithm 4 has it on; the ablation bench turns it
	// off.
	DisableDeltaDRemoval bool
	// Resume continues a previous crawl from its saved Result (see
	// SaveResult/LoadResult): covered records stay covered, previously
	// issued queries are never re-issued, and solid-query ΔD removals
	// are replayed from the step trace. A resumed run with budget b2
	// after a run with budget b1 selects exactly the queries an
	// uninterrupted run with budget b1+b2 would.
	Resume *Result
	// OnlineCalibration enables pay-as-you-go benefit estimation — the
	// paper's first future-work item (§9): instead of an upfront hidden-
	// database sample, the crawler calibrates from the queries it issues
	// anyway. Queries are bucketed by ⌈log₂|q(D₀)|⌉ and each bucket
	// tracks the mean REALIZED benefit (records newly covered per issued
	// query); an unissued query's benefit is its bucket's mean, scaled by
	// the fraction of its records still uncovered. Until a bucket has
	// enough observations it falls back to min(|q(D)|, k) (QSel-Simple
	// capped at the only hard bound available without a sample). Requires
	// Sample == nil and no explicit Estimator.
	OnlineCalibration bool
	// EagerSelection replaces the §6.3 lazy priority queue with a full
	// argmax rescan of the pool at every iteration — the naive
	// implementation Appendix B compares against. Selection results are
	// identical (same argmax, same tie-breaking); only cost differs.
	// Exposed for the E10 ablation. Incompatible with federation (the
	// allocator ranks interfaces through their lazy queues).
	EagerSelection bool
	// BatchSize > 1 enables batch-greedy selection: the top-n queries
	// are popped together and issued concurrently (the searcher must be
	// safe for concurrent use, as HTTP clients are). Later queries in a
	// batch are selected without seeing earlier results, so coverage can
	// dip slightly below sequential greedy — the classic latency/quality
	// trade against slow network interfaces. Results are absorbed in
	// selection order, keeping runs deterministic. 0 or 1 is the
	// sequential Algorithm 4.
	BatchSize int
	// Concurrency is the worker-pool size of the crawl pipeline: how
	// many goroutines issue a selection batch (deepweb.Dispatcher), and
	// how many shards the inverted-index build and FP-Growth mining are
	// partitioned into. It is a pure wall-clock knob — results are
	// merged into the delta-update loop in selection order by a single
	// writer, so at a fixed seed the coverage and the issued-query log
	// are byte-identical for ANY Concurrency. 0 defaults to BatchSize
	// (every query of a batch gets its own goroutine). Selection quality
	// is governed by BatchSize alone.
	Concurrency int
	// Shards partitions the local records into this many contiguous
	// shards for parallel batch removal (resume replay, coverage and §4.2
	// ΔD removals run one shard worker per range with private per-query
	// delta accumulators; see selection.removeBatch). Like Concurrency it
	// is a pure wall-clock knob: the shard merge applies commutative
	// integer deltas through a single writer, so coverage and the
	// issued-query log are byte-identical for ANY shard count. 0 or 1
	// keeps the sequential removal loop.
	Shards int
	// MaxAttempts > 0 enables graceful degradation: a query whose issue
	// fails is re-queued into the selection pool (with its benefit
	// recomputed against the current coverage) until it has failed
	// MaxAttempts times, then forfeited; the run continues instead of
	// aborting. Failures the interface never charged — 429 bursts, an
	// open circuit, cancellations (deepweb.Charged) — refund their budget
	// unit. Truncated result pages (deepweb.TruncatedError) are absorbed
	// partially with solidity judged on the true result size. The run's
	// Result carries a Resilience report. 0 (the default) preserves the
	// strict behavior: any interface error aborts the run.
	MaxAttempts int
	// Context, when non-nil, bounds the crawl for graceful shutdown: once
	// it is cancelled no further rounds are selected, queries of the
	// current round not yet handed to a dispatcher worker are skipped
	// before they can be charged, and in-flight queries drain — their
	// results are absorbed normally, so every charged query's outcome is
	// kept. Run then returns the partial Result with err == nil; callers
	// detect the interruption via ctx.Err(). The stop point is a round
	// boundary plus drained stragglers, which is exactly a resumable
	// checkpoint state.
	Context context.Context
	// Durability, when non-nil, receives synchronous accounting callbacks
	// from the merge stage (see DurabilitySink) — the hook the WAL
	// journal in internal/durable attaches to. A sink error aborts the
	// run.
	Durability DurabilitySink
	// ResumePending re-issues the unresolved tail of a crashed session's
	// last selection round, with the original benefits, before any new
	// selection happens. Populated by durable.Recover from the round
	// intent record; meaningful only together with Resume.
	ResumePending []PendingQuery
	// Breaker, when non-nil, gates selection rounds through a circuit
	// breaker: interface failures feed it, and while it is open whole
	// rounds are held (each held round advances the count-based
	// cooldown); the half-open probe round has size 1. Driven entirely
	// from the single-writer merge stage, so breaker transitions — like
	// everything else — are deterministic for any Concurrency. Implies
	// MaxAttempts=1 when MaxAttempts is unset. Attach obs via
	// deepweb.(*Breaker).WithObs; Run does not rewire it. For a
	// federated crawl, set breakers per interface (Interface.Breaker)
	// instead.
	Breaker *deepweb.Breaker
	// Deadline, when positive, is the crawl's end-to-end wall-clock
	// budget. It is threaded into every search as a context deadline —
	// deliberately separate from Context, whose cancellation means
	// "drain gracefully": an expired deadline aborts in-flight searches
	// too. Queries the deadline catches before a worker claims them
	// return to the pool unpenalized (never charged); a query it
	// interrupts mid-search is forfeited with its budget unit refunded
	// and counted in Resilience.DeadlineExhausted; and the crawl loop
	// stops at the next round boundary. Implies MaxAttempts=1 when
	// MaxAttempts is unset, so interrupted queries degrade instead of
	// aborting the run.
	Deadline time.Duration
	// QueryTimeout, when positive, bounds each individual search with its
	// own context deadline, so one hung round-trip cannot consume the
	// whole crawl Deadline. A query that times out while the crawl
	// deadline is still live is an ordinary transient failure: it is
	// requeued (subject to MaxAttempts and the retry budget), not
	// deadline-forfeited.
	QueryTimeout time.Duration
	// RetryBudget, when positive, caps requeues at roughly this fraction
	// of successful dispatches (Finagle-style token bucket: every
	// absorbed query deposits RetryBudget tokens, every requeue withdraws
	// one, and the bucket starts with a small burst). Under a sustained
	// outage retries stop once the budget drains — the query is forfeited
	// and counted in Resilience.RetryBudgetDenied — so a retry storm
	// cannot multiply load on an interface that is already down. The
	// bucket is driven from the single-writer merge stage in selection
	// order, keeping runs deterministic at any Concurrency. 0.1 means
	// "retries may add 10% extra load".
	RetryBudget float64
	// Health, when non-nil, enables per-interface health scoring in a
	// federated crawl: each interface carries a deterministic EWMA score
	// over its outcomes (successes recover it toward 1, failures and
	// breaker holds decay it), and the allocator multiplies each
	// interface's marginal-benefit bid by its score — so a sick interface
	// gradually loses rounds to healthy ones instead of burning charged
	// queries at full rate until its breaker trips. A degraded interface
	// that has lost ProbeEvery consecutive rounds is granted one round as
	// a recovery probe. Ignored for single-interface crawls (there is no
	// allocation choice to steer).
	Health *HealthConfig
}

// Smart is the SMARTCRAWL framework (Algorithm 4), generalized over a set
// of hidden-database interfaces: the single-interface crawl of the paper is
// exactly the n=1 case of the federated loop (see NewFederatedSmart), so
// there is no second code path to drift from the oracle-tested one.
type Smart struct {
	env *Env
	cfg SmartConfig
	// ifaces is the federated interface set; empty means single-interface
	// (synthesized from env.Searcher at Run).
	ifaces []Interface

	// HeapRepushes is populated after Run with the lazy-queue repush
	// count (the `t` factor of the Appendix B analysis), summed over
	// interfaces.
	HeapRepushes int
	// PoolSize is populated after Run with the generated pool size.
	PoolSize int
}

// NewSmart constructs a SMARTCRAWL crawler. The estimator defaults to
// Biased when a sample is supplied and Frequency (QSel-Simple) otherwise.
func NewSmart(env *Env, cfg SmartConfig) (*Smart, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.Estimator == nil {
		if cfg.Sample != nil {
			cfg.Estimator = estimator.Biased{}
		} else {
			cfg.Estimator = estimator.Frequency{}
		}
	}
	if cfg.Sample == nil {
		if _, ok := cfg.Estimator.(estimator.Frequency); !ok {
			return nil, errors.New("crawler: sample-based estimators require a sample")
		}
	} else if cfg.Sample.Theta <= 0 {
		return nil, fmt.Errorf("crawler: sample has non-positive theta %v", cfg.Sample.Theta)
	}
	if cfg.OnlineCalibration && cfg.Sample != nil {
		return nil, errors.New("crawler: OnlineCalibration replaces the sample; supply one or the other")
	}
	return &Smart{env: env, cfg: cfg}, nil
}

// Name implements Crawler.
func (s *Smart) Name() string {
	if len(s.ifaces) > 1 {
		return fmt.Sprintf("smartcrawl-federated-%d", len(s.ifaces))
	}
	if s.cfg.OnlineCalibration {
		return "smartcrawl-online"
	}
	if _, ok := s.cfg.Estimator.(estimator.Frequency); ok {
		return "smartcrawl-simple"
	}
	return "smartcrawl-" + s.cfg.Estimator.Name()
}

// qstate is the live selection state of one pool query under one interface.
type qstate struct {
	q *querypool.Query
	// qD holds the local record IDs satisfying q at generation time,
	// sorted ascending — the interned-index intersection result.
	qD    []uint32
	freqD int // |q(D)| over still-considered records
	// matchS is |q(D) ∩̃ q(Hs)| over still-considered records.
	matchS int
	freqS  int // |q(Hs)|, static
	issued bool
	// attempts counts failed issues of this query (graceful degradation);
	// at SmartConfig.MaxAttempts the query is forfeited.
	attempts int
}

// calibMinObs is the observation count below which an online-calibration
// bucket is considered unusable (see SmartConfig.OnlineCalibration).
const calibMinObs = 3

// bucketStat is one online-calibration bucket: the running sum and count of
// realized benefits of queries whose |q(D₀)| falls in the bucket.
type bucketStat struct {
	sum   float64
	count int
}

// bucketOf is the bit length of n (⌈log₂(n+1)⌉ for n ≥ 0) — the hardware
// leading-zero count instead of a shift loop.
func bucketOf(n int) int { return bits.Len(uint(n)) }

// ifaceRun is the per-interface runtime of the generalized Algorithm-4
// loop: the interface's own budget-metered searcher and dispatcher, its
// circuit breaker, its selection state (per-query statistics, lazy queue,
// considered set), its benefit function (per-interface k, θ, α, estimator),
// and its online-calibration buckets. A single-interface crawl runs exactly
// one of these.
type ifaceRun struct {
	idx  int
	name string
	k    int

	counting *deepweb.Counting
	disp     *deepweb.Dispatcher
	br       *deepweb.Breaker

	sel       *selection
	benefitOf func(*qstate) float64
	rescore   func(int) (float64, bool)

	calib   [64]bucketStat
	metrics *obs.IfaceMetrics
}

// ifaceCand is one allocator candidate: an interface, the clean benefit at
// the top of its queue, and the health-scaled rank the allocator orders by
// (rank == benefit when health scoring is off or the interface is healthy —
// multiplying by a score of exactly 1.0 is bit-identical).
type ifaceCand struct {
	ir      *ifaceRun
	benefit float64
	rank    float64
}

// Run implements Crawler, executing Algorithm 4 generalized over the
// interface set: generate the pool once, build per-interface selection
// state, then round by round allocate the shared budget to the interface
// whose best query promises the largest marginal benefit, issue the round
// there, cover records globally, and replay §4.2 removals against the
// issuing interface until the budget or every pool is exhausted.
func (s *Smart) Run(budget int) (*Result, error) {
	env := s.env
	t := newTracker(env)

	// The interface set: explicit for a federated crawl, synthesized from
	// the environment searcher otherwise. The single-interface path IS the
	// n=1 federated loop.
	ifaces := s.ifaces
	if len(ifaces) == 0 {
		ifaces = []Interface{{
			Searcher:  env.Searcher,
			Sample:    s.cfg.Sample,
			Estimator: s.cfg.Estimator,
			Breaker:   s.cfg.Breaker,
		}}
	}
	nIf := len(ifaces)
	federated := nIf > 1
	if federated {
		t.names = make([]string, nIf)
		for i := range ifaces {
			t.names[i] = ifaces[i].Name
		}
	}
	// One meter, n charging wrappers: every interface spends the same
	// global allowance.
	meter := deepweb.NewBudget(budget)

	// The crawl's wall-clock budget. searchCtx carries ONLY the deadline:
	// user cancellation (s.cfg.Context) deliberately stays out of it so
	// graceful shutdown keeps its drain semantics — in-flight queries
	// finish and are absorbed — while deadline expiry aborts them.
	var searchCtx context.Context
	if s.cfg.Deadline > 0 {
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.Deadline)
		defer cancel()
		searchCtx = dctx
	}

	batch := s.cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	workers := s.cfg.Concurrency
	if workers < 1 {
		workers = batch
	}

	poolCfg := s.cfg.PoolConfig
	if poolCfg.Workers == 0 {
		poolCfg.Workers = workers
	}
	stopPool := env.Obs.Phase("pool_generate")
	pool := querypool.Generate(env.Local, env.Tokenizer, poolCfg)
	stopPool()
	s.PoolSize = pool.Len()

	// Per-interface runtime state. Estimator Benefit calls are the
	// selection hot path; the instrumented wrapper adds one atomic count
	// per call and nothing else, so the benefits — and therefore selection
	// order — are bit-identical.
	runs := make([]*ifaceRun, nIf)
	anyBreaker := false
	for i := range ifaces {
		h := &ifaces[i]
		ir := &ifaceRun{idx: i, name: h.Name, br: h.Breaker, k: h.Searcher.K()}
		ir.counting = deepweb.NewCountingOn(h.Searcher, meter)
		ir.disp = &deepweb.Dispatcher{
			S:             ir.counting,
			Workers:       workers,
			SearchContext: searchCtx,
			Timeout:       s.cfg.QueryTimeout,
			Obs:           env.Obs,
		}
		if h.Breaker != nil {
			anyBreaker = true
		}
		// Sample-derived estimator constants; the sample's interned
		// indexes and match tables are built inside newSelection.
		var theta, alpha float64
		if h.Sample != nil && h.Sample.Len() > 0 {
			theta = h.Sample.Theta
			if s.cfg.AlphaFallback {
				alpha = theta * float64(env.Local.Len()) / float64(h.Sample.Len())
			}
		}
		est := h.Estimator
		if est == nil {
			est = estimator.Frequency{}
		}
		if env.Obs.Enabled() {
			est = estimator.Instrumented{E: est, Obs: env.Obs}
		}
		k := ir.k
		ir.benefitOf = func(st *qstate) float64 {
			if s.cfg.OnlineCalibration {
				b := ir.calib[bucketOf(len(st.qD))]
				if b.count >= calibMinObs {
					// Bucket mean, scaled by the still-uncovered
					// fraction of this query's records.
					return (b.sum / float64(b.count)) *
						float64(st.freqD) / float64(len(st.qD))
				}
				if f := float64(st.freqD); f < float64(k) {
					return f
				}
				return float64(k) // uncalibrated: QSel-Simple capped at k
			}
			return est.Benefit(estimator.Stats{
				FreqD:       st.freqD,
				FreqSample:  st.freqS,
				MatchSample: st.matchS,
				Theta:       theta,
				K:           k,
				Alpha:       alpha,
			})
		}
		// Pool resolution, the interned inverted/forward indexes, the
		// precomputed sample-match counts, and the initial priorities —
		// Figure 3's index structures on token IDs (see selection.go).
		ir.sel = newSelection(env, pool, selectionStats{smp: h.Sample, joiner: t.joiner}, workers, s.cfg.Shards, ir.benefitOf)
		ir.rescore = func(qid int) (float64, bool) {
			st := ir.sel.states[qid]
			if st == nil || st.issued || st.freqD <= 0 {
				return 0, false
			}
			return ir.benefitOf(st), true
		}
		if federated && env.Obs.Enabled() {
			ir.metrics = env.Obs.Iface(ir.name)
		}
		runs[i] = ir
	}
	if federated {
		t.ifm = make([]*obs.IfaceMetrics, nIf)
		for i, ir := range runs {
			t.ifm[i] = ir.metrics
		}
	}

	// Resume: replay a previous session's effects before selecting.
	if prev := s.cfg.Resume; prev != nil {
		if len(prev.Covered) != env.Local.Len() {
			return nil, fmt.Errorf("crawler: resume checkpoint covers %d records, local database has %d",
				len(prev.Covered), env.Local.Len())
		}
		// Restore the tracker's cumulative state.
		copy(t.res.Covered, prev.Covered)
		t.res.CoveredCount = prev.CoveredCount
		t.res.QueriesIssued = prev.QueriesIssued
		t.res.Steps = append(t.res.Steps, prev.Steps...)
		for id, r := range prev.Crawled {
			t.res.Crawled[id] = r
		}
		for d, h := range prev.Matches {
			t.res.Matches[d] = h
		}
		// Replay coverage removals against every interface, then retire
		// each step's query — and replay its §4.2 removals — against the
		// interface that issued it. Replay is the largest removal batch of
		// a crawl's lifetime, so it benefits most from sharding.
		coveredIDs := make([]int, 0, prev.CoveredCount)
		for d, covered := range prev.Covered {
			if covered {
				coveredIDs = append(coveredIDs, d)
			}
		}
		for _, ir := range runs {
			ir.sel.removeBatch(coveredIDs)
		}
		for _, step := range prev.Steps {
			if step.Iface < 0 || step.Iface >= nIf {
				return nil, fmt.Errorf("crawler: resume step is tagged interface %d; run has %d interfaces",
					step.Iface, nIf)
			}
			ir := runs[step.Iface]
			q := pool.Find(step.Query)
			if q == nil || ir.sel.states[q.ID] == nil {
				continue // pool drift; the query can no longer be selected anyway
			}
			st := ir.sel.states[q.ID]
			st.issued = true
			if !s.cfg.EagerSelection {
				// The replayed query's heap entry was never popped; a clean
				// entry would be re-issued without a rescore. (Usually its
				// own covered records already invalidated it above, but a
				// step that covered nothing new leaves the entry clean.)
				ir.sel.heap.Invalidate(q.ID)
			}
			if step.ResultSize < ir.k && !s.cfg.DisableDeltaDRemoval {
				ir.sel.removeBatchU32(st.qD)
			}
			// Replay the calibration observations so a resumed online
			// crawl selects exactly as an uninterrupted one.
			if s.cfg.OnlineCalibration && len(st.qD) > 0 {
				bkt := bucketOf(len(st.qD))
				ir.calib[bkt].sum += float64(step.NewlyCovered)
				ir.calib[bkt].count++
			}
		}
		if s.cfg.OnlineCalibration {
			for _, ir := range runs {
				ir.sel.heap.Reprioritize(ir.rescore)
			}
		}
	}

	// Graceful degradation (see SmartConfig.MaxAttempts/Breaker): failed
	// queries are requeued or forfeited instead of aborting the run, and
	// the report below accounts for every dispatched query.
	maxAttempts := s.cfg.MaxAttempts
	if maxAttempts < 1 && (anyBreaker || s.cfg.Deadline > 0) {
		maxAttempts = 1
	}
	resilient := maxAttempts > 0
	var rep *Resilience
	tripsBase := 0
	if resilient {
		rep = &Resilience{}
		if prev := s.cfg.Resume; prev != nil && prev.Resilience != nil {
			rep = prev.Resilience.clone()
		}
		tripsBase = rep.BreakerTrips
		// The live report rides inside the Result from the start, not
		// only at return: the durability sink snapshots t.res mid-crawl,
		// and a snapshot missing the failure accounting would under-count
		// the settled charge on recovery (durable.Recover derives it as
		// issued + requeued + forfeited − refunded).
		t.res.Resilience = rep
	} else if prev := s.cfg.Resume; prev != nil && prev.Resilience != nil {
		// A non-resilient resumed run still carries the historical report
		// forward, for the same recovery-accounting reason — and so the
		// failures an earlier session absorbed stay reported.
		t.res.Resilience = prev.Resilience.clone()
	}
	// Retry budget (see SmartConfig.RetryBudget): deposits and withdrawals
	// happen only here on the crawl loop's goroutine, in selection order.
	var retryBudget *deepweb.RetryBudget
	if resilient && s.cfg.RetryBudget > 0 {
		retryBudget = deepweb.NewRetryBudget(s.cfg.RetryBudget, 0)
	}
	// Health scoring (see SmartConfig.Health): federated only — with one
	// interface there is no allocation choice to steer.
	var health *healthState
	if federated && s.cfg.Health != nil {
		health = newHealthState(*s.cfg.Health, nIf)
		for _, hr := range runs {
			if hr.metrics != nil {
				hr.metrics.HealthScore.Set(1000)
			}
		}
	}
	// noteHealth publishes an interface's score after it moved: the obs
	// gauge (milli-units) and a health trace event. Clean runs never call
	// it — scores stay exactly 1.0 — so traces stay byte-identical.
	noteHealth := func(ir *ifaceRun) {
		sc := health.score[ir.idx]
		if ir.metrics != nil {
			ir.metrics.HealthScore.Set(int64(sc*1000 + 0.5))
		}
		env.Obs.Health(ir.name, sc, false)
	}
	// requeue returns a failed query to its interface's pool for another
	// attempt. Its live statistics are recomputed from the considered set
	// first: removals during the in-flight window skipped this query
	// (issued queries are normally never reconsidered), so freqD/matchS are
	// stale. Returns false — forfeit — when attempts are exhausted, nothing
	// the query covers is still uncovered, or the retry budget is dry (the
	// cheap checks run first so a guaranteed forfeit never burns a token).
	requeue := func(ir *ifaceRun, st *qstate, fromHeap bool) bool {
		ir.sel.recompute(st)
		if st.freqD <= 0 || st.attempts >= maxAttempts {
			return false
		}
		if retryBudget != nil && !retryBudget.Withdraw() {
			// The budget is dry: forfeiting here is what caps total
			// attempts near (1+ratio)·dispatches under a sustained outage.
			rep.RetryBudgetDenied++
			env.Obs.RetryDenied(st.q.Keywords.Key())
			return false
		}
		st.issued = false
		if !s.cfg.EagerSelection {
			if fromHeap {
				ir.sel.heap.Push(st.q.ID, ir.benefitOf(st))
			} else {
				// The entry is still in the heap (resumed pending query,
				// never popped); a Push would duplicate it. Invalidation
				// forces a rescore with the recomputed statistics.
				ir.sel.heap.Invalidate(st.q.ID)
			}
		}
		return true
	}

	defer env.Obs.Phase("crawl_loop")()
	type issue struct {
		st      *qstate // nil when a resumed pending query left the pool
		q       deepweb.Query
		benefit float64
		// fromHeap records that selection popped this query's heap entry.
		// A resumed pending query is issued without popping — its entry is
		// still in the heap (invalidated) — so returning it to the pool
		// must not Push a duplicate entry.
		fromHeap bool
		recs     []*relational.Record
		err      error
		// undispatched mirrors deepweb.Outcome.Undispatched: the searcher
		// never saw this query (shutdown drain or deadline expiry caught it
		// before a worker claimed it), so it was never charged.
		undispatched bool
	}
	ctx := s.cfg.Context
	sink := s.cfg.Durability
	sinkErr := func(err error) error {
		return fmt.Errorf("crawler: durability sink: %w", err)
	}
	anyRemaining := func() bool {
		for _, ir := range runs {
			if ir.sel.remaining > 0 {
				return true
			}
		}
		return false
	}
	// pending is the unresolved tail of a crashed session's last round
	// (see SmartConfig.ResumePending); it is re-issued with the original
	// benefits — against the original interface — before any fresh
	// selection.
	pending := append([]PendingQuery(nil), s.cfg.ResumePending...)
	// Round scratch, allocated once and reused every round: the selection
	// loop runs thousands of rounds and the per-round make calls were
	// measurable. Safe because every consumer finishes with the slice
	// inside the round — the dispatcher reads its input before returning,
	// and DurabilitySink.RoundSelected must copy what it retains.
	issueBuf := make([]issue, batch)
	round := make([]*issue, 0, batch)
	intentScratch := make([]PendingQuery, 0, batch)
	qsScratch := make([]deepweb.Query, 0, batch)
	cands := make([]ifaceCand, 0, nIf)
	for !meter.Exhausted() && (anyRemaining() || len(pending) > 0) {
		if ctx != nil && ctx.Err() != nil {
			break // graceful shutdown: stop at the round boundary
		}
		if searchCtx != nil && searchCtx.Err() != nil {
			break // the crawl deadline is spent
		}
		// Allocate the round to an interface. A replayed crashed round
		// goes back to the interface that owned it; a single-interface
		// crawl has no choice to make (and skips the allocator entirely,
		// preserving the pre-federation loop byte for byte); a federated
		// round goes to the live interface whose best clean query
		// promises the largest marginal benefit, ties broken by smaller
		// interface index so allocation is deterministic.
		var ir *ifaceRun
		if len(pending) > 0 {
			pi := pending[0].Iface
			if pi < 0 || pi >= nIf {
				return nil, fmt.Errorf("crawler: recovered pending round is tagged interface %d; run has %d interfaces", pi, nIf)
			}
			ir = runs[pi]
			// Circuit gate: while open, each held round advances the
			// count-based cooldown; the round that half-opens the breaker
			// proceeds as a single-query probe.
			if ir.br != nil && !ir.br.Allow() {
				rep.BreakerHolds++
				if ir.metrics != nil {
					ir.metrics.Holds.Inc()
				}
				if health != nil {
					health.onFailure(ir.idx)
					noteHealth(ir)
				}
				continue
			}
		} else if nIf == 1 {
			ir = runs[0]
			if ir.br != nil && !ir.br.Allow() {
				rep.BreakerHolds++
				continue
			}
		} else {
			// Rank live interfaces by the clean benefit at the top of
			// their queues (Peek performs exactly the lazy cleaning a Pop
			// would, so ranking does no throwaway work), then grant the
			// round to the best-ranked one whose breaker admits traffic.
			// Consulting breakers in rank order keeps an open circuit on
			// the best interface from starving the healthy ones; if every
			// live interface is held, the round is skipped and each hold
			// advances its breaker's cooldown.
			cands = cands[:0]
			for _, c := range runs {
				if _, b, ok := c.sel.heap.Peek(c.rescore); ok {
					rank := b
					if health != nil {
						rank = b * health.score[c.idx]
					}
					cands = append(cands, ifaceCand{c, b, rank})
				}
			}
			held := false
			allocBenefit := 0.0
			probe := false
			if health != nil {
				// Recovery probe: a degraded interface that has lost
				// ProbeEvery consecutive rounds force-wins this one (lowest
				// interface index among those due), breaker permitting —
				// the score only recovers through successes, and successes
				// need traffic.
				pi := -1
				for j, c := range cands {
					if health.probeDue(c.ir.idx) && (pi == -1 || c.ir.idx < cands[pi].ir.idx) {
						pi = j
					}
				}
				if pi >= 0 {
					c := cands[pi]
					cands = append(cands[:pi], cands[pi+1:]...)
					if c.ir.br != nil && !c.ir.br.Allow() {
						rep.BreakerHolds++
						if c.ir.metrics != nil {
							c.ir.metrics.Holds.Inc()
						}
						health.onFailure(c.ir.idx)
						noteHealth(c.ir)
						held = true
					} else {
						ir, allocBenefit, probe = c.ir, c.benefit, true
						health.sinceProbe[c.ir.idx] = 0
					}
				}
			}
			for ir == nil && len(cands) > 0 {
				best := 0
				for j := 1; j < len(cands); j++ {
					if cands[j].rank > cands[best].rank {
						best = j
					}
				}
				c := cands[best]
				cands = append(cands[:best], cands[best+1:]...)
				if c.ir.br != nil && !c.ir.br.Allow() {
					rep.BreakerHolds++
					if c.ir.metrics != nil {
						c.ir.metrics.Holds.Inc()
					}
					if health != nil {
						health.onFailure(c.ir.idx)
						noteHealth(c.ir)
					}
					held = true
					continue
				}
				ir, allocBenefit = c.ir, c.benefit
				break
			}
			if ir == nil {
				if held {
					continue
				}
				break // every interface's pool is exhausted
			}
			if health != nil {
				// Degraded interfaces that lost this round age toward their
				// recovery probe.
				for _, c := range cands {
					if c.ir != ir && health.degraded(c.ir.idx) {
						health.sinceProbe[c.ir.idx]++
					}
				}
				if probe {
					if ir.metrics != nil {
						ir.metrics.Probes.Inc()
					}
					env.Obs.Health(ir.name, health.score[ir.idx], true)
				}
			}
			env.Obs.Alloc(ir.name, allocBenefit, meter.Remaining())
			if ir.metrics != nil {
				ir.metrics.Allocs.Inc()
			}
		}
		// Pop up to `batch` queries (bounded by the remaining budget so
		// concurrent issues never overshoot b).
		n := batch
		if ir.br != nil && ir.br.State() == deepweb.BreakerHalfOpen {
			n = 1
		}
		if r := meter.Remaining(); r >= 0 && r < n {
			n = r
		}
		round = round[:0]
		if len(pending) > 0 {
			// Replay the crashed round verbatim: same queries, same
			// benefits, same interface, same order. The pool state may
			// have drifted (a forfeited query whose records were since
			// covered), so a missing qstate is tolerated — the query is
			// still issued, only its live bookkeeping is skipped. A round
			// is journaled as one single-interface intent record, so the
			// pending tail is interface-homogeneous; trim defensively.
			m := 0
			for m < len(pending) && pending[m].Iface == ir.idx {
				m++
			}
			if n > m {
				n = m
			}
			for _, p := range pending[:n] {
				is := &issueBuf[len(round)]
				*is = issue{q: p.Query, benefit: p.Benefit}
				if q := pool.Find(p.Query); q != nil {
					if st := ir.sel.states[q.ID]; st != nil && !st.issued {
						st.issued = true
						is.st = st
						if !s.cfg.EagerSelection {
							// The query was never popped this session —
							// its heap entry is still live, and a clean
							// entry would be re-issued without ever being
							// rescored. Mark it stale so the issued
							// filter retires it at the next pop.
							ir.sel.heap.Invalidate(q.ID)
						}
					}
				}
				round = append(round, is)
			}
			pending = pending[n:]
		} else {
			for len(round) < n {
				var (
					qid     int
					benefit float64
					ok      bool
				)
				if s.cfg.EagerSelection {
					qid, benefit, ok = eagerArgmax(ir.sel.states, ir.benefitOf)
				} else {
					qid, benefit, ok = ir.sel.heap.Pop(ir.rescore)
				}
				if !ok {
					break // pool exhausted
				}
				st := ir.sel.states[qid]
				st.issued = true
				is := &issueBuf[len(round)]
				*is = issue{st: st, q: st.q.Keywords, benefit: benefit, fromHeap: true}
				round = append(round, is)
			}
		}
		if len(round) == 0 {
			break
		}
		if sink != nil {
			// Write-ahead intent: journal the selected batch before any
			// of it is dispatched, so a crash mid-round can re-issue
			// exactly this batch instead of re-selecting a different one.
			intentScratch = intentScratch[:0]
			for _, is := range round {
				intentScratch = append(intentScratch, PendingQuery{Query: is.q, Benefit: is.benefit, Iface: ir.idx})
			}
			if err := sink.RoundSelected(intentScratch, t.res); err != nil {
				return nil, sinkErr(err)
			}
		}
		if o := env.Obs; o != nil {
			o.Round(len(round), meter.Remaining())
		}

		// Issue the round through the interface's worker pool. Outcomes
		// come back index-aligned with the selection order regardless of
		// which worker finished first. Under a cancelled context the
		// dispatcher drains: started queries finish, unstarted ones
		// come back with ctx.Err() before they could be charged.
		qsScratch = qsScratch[:0]
		for _, is := range round {
			qsScratch = append(qsScratch, is.q)
		}
		for i, o := range ir.disp.DispatchCtx(ctx, qsScratch) {
			round[i].recs, round[i].err = o.Records, o.Err
			round[i].undispatched = o.Undispatched
		}

		// Merge stage: absorb in selection order so runs stay
		// deterministic for any worker count — including every
		// degradation decision (requeue, forfeit, refund, breaker
		// feeding), which is why none of it happens on the workers.
		for _, is := range round {
			st := is.st
			if is.undispatched {
				// Shutdown drain or deadline expiry skipped this query
				// before it was issued: never executed, never charged, no
				// journal record — it simply returns to the pool, and a
				// resumed session will find it still pending in the round
				// intent record. (A deadline-skipped query is NOT a
				// deadline forfeit: nothing was spent on it.)
				if st != nil {
					st.issued = false
					if !s.cfg.EagerSelection {
						if is.fromHeap {
							ir.sel.heap.Push(st.q.ID, is.benefit)
						} else {
							ir.sel.heap.Invalidate(st.q.ID)
						}
					}
				}
				continue
			}
			if errors.Is(is.err, deepweb.ErrBudgetExhausted) {
				if rep != nil {
					rep.Dispatched++
					rep.BudgetStops++
				}
				if sink != nil {
					if err := sink.BudgetStopped(is.q, t.res); err != nil {
						return nil, sinkErr(err)
					}
				}
				continue
			}
			if rep != nil {
				rep.Dispatched++
			}
			if ir.br != nil {
				ir.br.Record(is.err)
			}
			resultSize := len(is.recs)
			if is.err != nil {
				var te *deepweb.TruncatedError
				switch {
				case !resilient:
					return nil, fmt.Errorf("crawler: issuing %q: %w", is.q, is.err)
				case errors.As(is.err, &te):
					// A cut page: absorb the partial records below, but
					// judge solidity — and trace the step — on the true
					// matched size, so §4.2 never removes ΔD records on
					// the strength of a truncated result.
					resultSize = te.Full
					rep.Truncated++
					env.Obs.Truncated(is.q.Key(), te.Returned, te.Full)
				case searchCtx != nil && searchCtx.Err() != nil &&
					errors.Is(is.err, context.DeadlineExceeded):
					// The crawl deadline caught this query mid-search.
					// There is no time left to retry it, so it is
					// forfeited and attributed to the deadline; the
					// interface never billed the aborted attempt
					// (deepweb.Charged), so the budget unit is refunded.
					// Not an interface-health signal: the clock ran out,
					// the backend did nothing wrong.
					attempts := maxAttempts
					if st != nil {
						st.attempts++
						attempts = st.attempts
					}
					ir.counting.Refund()
					rep.Refunded++
					env.Obs.Refunded(is.q.Key())
					rep.Forfeited++
					rep.DeadlineExhausted++
					rep.ForfeitedQueries = append(rep.ForfeitedQueries, is.q.Key())
					env.Obs.Forfeited(is.q.Key(), attempts, is.err)
					env.Obs.DeadlineForfeited(is.q.Key(), attempts)
					if ir.metrics != nil {
						ir.metrics.Forfeits.Inc()
					}
					if sink != nil {
						if err := sink.QueryForfeited(is.q, attempts, false, t.res); err != nil {
							return nil, sinkErr(err)
						}
					}
					continue
				default:
					if ir.metrics != nil {
						ir.metrics.Errors.Inc()
					}
					if health != nil {
						health.onFailure(ir.idx)
						noteHealth(ir)
					}
					chargedFail := deepweb.Charged(is.err)
					if !chargedFail {
						// The interface never billed this failure (429,
						// open circuit, cancellation) — a query that
						// never executed must not consume budget.
						ir.counting.Refund()
						rep.Refunded++
						env.Obs.Refunded(is.q.Key())
					}
					attempts := maxAttempts
					requeued := false
					if st != nil {
						st.attempts++
						attempts = st.attempts
						requeued = requeue(ir, st, is.fromHeap)
					}
					if requeued {
						rep.Requeued++
						env.Obs.Requeued(is.q.Key(), attempts, is.err)
						if ir.metrics != nil {
							ir.metrics.Requeues.Inc()
						}
						if sink != nil {
							if err := sink.QueryRequeued(is.q, attempts, chargedFail, t.res); err != nil {
								return nil, sinkErr(err)
							}
						}
					} else {
						rep.Forfeited++
						rep.ForfeitedQueries = append(rep.ForfeitedQueries, is.q.Key())
						env.Obs.Forfeited(is.q.Key(), attempts, is.err)
						if ir.metrics != nil {
							ir.metrics.Forfeits.Inc()
						}
						if sink != nil {
							if err := sink.QueryForfeited(is.q, attempts, chargedFail, t.res); err != nil {
								return nil, sinkErr(err)
							}
						}
					}
					continue
				}
			}
			if rep != nil {
				rep.Absorbed++
				rep.dropForfeit(is.q.Key())
			}
			if retryBudget != nil {
				retryBudget.Deposit()
			}
			if health != nil && health.degraded(ir.idx) {
				health.onSuccess(ir.idx)
				noteHealth(ir)
			}
			recs := is.recs
			if federated && len(recs) > 0 {
				// Hidden IDs are namespaced per source: distinct
				// interfaces may assign the same ID to different entities,
				// and Result.Crawled is keyed by ID. The records are
				// cloned rather than retagged in place — the searcher may
				// share result slices across calls (Faulty's stale-page
				// cache does). Entity-level dedupe across interfaces
				// still happens downstream: the Joiner matches on values,
				// and first-match-wins coverage keeps one match per local
				// record no matter how many interfaces return the entity.
				remapped := make([]*relational.Record, len(recs))
				for j, h := range recs {
					remapped[j] = &relational.Record{ID: h.ID*nIf + ir.idx, Values: h.Values}
				}
				recs = remapped
			}
			newly := t.absorbSized(is.q, is.benefit, recs, resultSize, ir.k, ir.idx)
			if sink != nil {
				if err := sink.StepAbsorbed(t.res, t.res.Steps[len(t.res.Steps)-1], newly); err != nil {
					return nil, sinkErr(err)
				}
			}
			if s.cfg.OnlineCalibration && st != nil && len(st.qD) > 0 {
				bkt := bucketOf(len(st.qD))
				old := ir.calib[bkt]
				ir.calib[bkt].sum += float64(len(newly))
				ir.calib[bkt].count++
				// Rebuild priorities when a bucket first becomes
				// usable or its mean moves materially; rare once
				// calibrated.
				cur := ir.calib[bkt]
				curMean := cur.sum / float64(cur.count)
				switch {
				case cur.count == calibMinObs:
					ir.sel.heap.Reprioritize(ir.rescore)
				case old.count >= calibMinObs:
					oldMean := old.sum / float64(old.count)
					if curMean > 1.3*oldMean || curMean < 0.7*oldMean {
						ir.sel.heap.Reprioritize(ir.rescore)
					}
				}
			}
			// Coverage is global: a record covered through any interface
			// leaves every interface's consideration set.
			for _, r2 := range runs {
				r2.sel.removeBatch(newly)
			}
			// §4.2 ΔD prediction: a solid query (result smaller than
			// k) returns everything matching it, so any record of
			// q(D) it did not cover cannot be in H — drop it from
			// consideration. resultSize is the interface's true match
			// count even when the page was truncated. Solidity — and
			// the removal — are strictly per issuing interface: a
			// record absent from H_i may well be in H_j.
			solid := resultSize < ir.k
			if solid && !s.cfg.DisableDeltaDRemoval {
				if st != nil {
					ir.sel.removeBatchU32(st.qD)
				}
			}
		}
		if sink != nil {
			if err := sink.RoundCompleted(t.res); err != nil {
				return nil, sinkErr(err)
			}
		}
	}

	s.HeapRepushes = 0
	for _, ir := range runs {
		s.HeapRepushes += ir.sel.heap.Repushes
	}
	if rep != nil {
		if anyBreaker {
			trips := tripsBase
			for _, ir := range runs {
				if ir.br != nil {
					trips += ir.br.Trips()
				}
			}
			rep.BreakerTrips = trips
		}
		t.res.Resilience = rep
	}
	return t.res, nil
}

// countSatisfying counts the sample positions (matching some local record)
// whose token sets contain every query keyword. The production path runs
// the interned kernel (countSatisfyingIDs over precomputed counts; see
// selection.go); this string implementation is retained as the reference
// the equivalence tests check the kernel against.
func countSatisfying(positions []int, sampleTokens []map[string]struct{}, q deepweb.Query) int {
	if len(positions) == 0 {
		return 0
	}
	n := 0
	for _, pos := range positions {
		set := sampleTokens[pos]
		ok := true
		for _, w := range q {
			if _, in := set[w]; !in {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// eagerArgmax scans every live query state and returns the one with the
// largest benefit (ties by smaller query ID), mirroring the lazy queue's
// selection semantics at O(|Q|) per call.
func eagerArgmax(states []*qstate, benefitOf func(*qstate) float64) (int, float64, bool) {
	best := -1
	bestBenefit := 0.0
	for qid, st := range states {
		if st == nil || st.issued || st.freqD <= 0 {
			continue
		}
		b := benefitOf(st)
		if best == -1 || b > bestBenefit {
			best, bestBenefit = qid, b
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestBenefit, true
}
