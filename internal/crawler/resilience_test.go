package crawler_test

import (
	"bytes"
	"reflect"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

// faultyDBLPRun builds the standard DBLP determinism environment, wraps
// its searcher in the full resilience stack (Faulty under one in-line
// Retrying), and runs a budgeted crawl with requeue/forfeit and a breaker
// engaged.
func faultyDBLPRun(t *testing.T, seed uint64, workers, budget int, profile deepweb.FaultProfile) *crawler.Result {
	t.Helper()
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
	}, 50, nil)
	env.Searcher = &deepweb.Retrying{S: deepweb.NewFaulty(env.Searcher, profile), Retries: 2}
	smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample:      smp,
		Estimator:   estimator.Biased{},
		BatchSize:   8,
		Concurrency: workers,
		MaxAttempts: 3,
		Breaker:     deepweb.NewBreaker(deepweb.BreakerConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultyCrawlDeterministic extends the worker-count determinism
// regression to faulted runs: the fault schedule is a pure function of
// (seed, query, attempt), requeues re-enter through the deterministic
// selection path, and the breaker is driven from the merge stage — so the
// issued-query log AND the full resilience report must be byte-identical
// at any worker count.
func TestFaultyCrawlDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		profile, err := deepweb.ParseFaultProfile("moderate")
		if err != nil {
			t.Fatal(err)
		}
		profile.Seed = seed
		ref := faultyDBLPRun(t, seed, 1, 48, profile)
		if ref.Resilience == nil {
			t.Fatalf("seed %d: resilient run produced no resilience report", seed)
		}
		if !ref.Resilience.Accounted() {
			t.Fatalf("seed %d: reference report unaccounted: %s", seed, ref.Resilience)
		}
		refLog := queryLog(ref)
		if len(ref.Steps) == 0 {
			t.Fatalf("seed %d: reference run issued no queries", seed)
		}
		for _, workers := range []int{4, 16} {
			got := faultyDBLPRun(t, seed, workers, 48, profile)
			if log := queryLog(got); log != refLog {
				t.Fatalf("seed %d workers %d: issued-query log diverged under faults\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					seed, workers, refLog, workers, log)
			}
			if got.CoveredCount != ref.CoveredCount {
				t.Fatalf("seed %d workers %d: coverage %d, want %d",
					seed, workers, got.CoveredCount, ref.CoveredCount)
			}
			if !reflect.DeepEqual(got.Resilience, ref.Resilience) {
				t.Fatalf("seed %d workers %d: resilience report diverged\nworkers=1: %+v\nworkers=%d: %+v",
					seed, workers, ref.Resilience, workers, got.Resilience)
			}
		}
	}
}

// TestFaultSweepGracefulDegradation is the acceptance bar: at a 10%
// transient-fault rate the resilient crawl must retain at least 90% of the
// clean run's coverage, with every dispatched query accounted for.
func TestFaultSweepGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep crawls a full DBLP instance; skipped in -short")
	}
	const seed, budget = 1, 60
	clean := func() *crawler.Result {
		env, in, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
		}, 50, nil)
		smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(budget)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	profile, err := deepweb.ParseFaultProfile("transient10")
	if err != nil {
		t.Fatal(err)
	}
	if r := profile.TransientRate(); r < 0.0999 || r > 0.1001 {
		t.Fatalf("transient10 rate = %v, want 0.10", r)
	}
	profile.Seed = seed
	faulted := faultyDBLPRun(t, seed, 4, budget, profile)
	rep := faulted.Resilience
	if rep == nil || !rep.Accounted() {
		t.Fatalf("faulted run unaccounted: %+v", rep)
	}
	if clean.CoveredCount == 0 {
		t.Fatal("clean run covered nothing; the ratio below is meaningless")
	}
	ratio := float64(faulted.CoveredCount) / float64(clean.CoveredCount)
	t.Logf("coverage clean=%d faulted=%d (%.1f%%); report: %s",
		clean.CoveredCount, faulted.CoveredCount, 100*ratio, rep)
	if ratio < 0.9 {
		t.Fatalf("faulted coverage %d is %.1f%% of clean %d, want >= 90%%",
			faulted.CoveredCount, 100*ratio, clean.CoveredCount)
	}
}

// TestResilienceRefundsUnchargedFailures: an interface that 429s every
// attempt charges nothing (real quota meters do not bill rejected
// requests), so the crawl must refund every unit, forfeit every query,
// trip the breaker — and still terminate with a fully accounted report.
func TestResilienceRefundsUnchargedFailures(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	profile := deepweb.FaultProfile{Seed: 5, RateLimit: 1, BurstLen: 100}
	env.Searcher = deepweb.NewFaulty(env.Searcher, profile)
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample:      smp,
		Estimator:   estimator.Biased{},
		MaxAttempts: 2,
		Breaker:     deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 3, Cooldown: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Resilience
	if rep == nil {
		t.Fatal("no resilience report")
	}
	if !rep.Accounted() {
		t.Fatalf("report unaccounted: %s", rep)
	}
	if rep.Absorbed != 0 || res.CoveredCount != 0 || res.QueriesIssued != 0 {
		t.Fatalf("nothing should succeed against a total outage: %s (issued %d, covered %d)",
			rep, res.QueriesIssued, res.CoveredCount)
	}
	if rep.Forfeited == 0 || rep.Requeued == 0 {
		t.Fatalf("every query should be requeued then forfeited: %s", rep)
	}
	if rep.Refunded != rep.Requeued+rep.Forfeited {
		t.Fatalf("every failed dispatch was a 429 — all must be refunded: %s", rep)
	}
	if rep.BreakerTrips == 0 {
		t.Fatalf("a total outage must trip the breaker: %s", rep)
	}
	if len(rep.ForfeitedQueries) != rep.Forfeited {
		t.Fatalf("%d forfeited queries listed, counter says %d", len(rep.ForfeitedQueries), rep.Forfeited)
	}
}

// TestResilienceAbsorbsTruncatedResults: truncated pages are absorbed
// partially (the records in hand still cover records) while solidity uses
// the interface's true result size, and the report separates truncations
// from failures.
func TestResilienceAbsorbsTruncatedResults(t *testing.T) {
	const seed = 2
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
	}, 50, nil)
	env.Searcher = deepweb.NewFaulty(env.Searcher, deepweb.FaultProfile{Seed: seed, Truncate: 1})
	smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, BatchSize: 4,
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(24)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Resilience
	if rep == nil || !rep.Accounted() {
		t.Fatalf("unaccounted: %+v", rep)
	}
	if rep.Truncated == 0 {
		t.Fatalf("Truncate=1 injected no truncations: %s", rep)
	}
	if rep.Truncated > rep.Absorbed {
		t.Fatalf("every truncation is an absorption: %s", rep)
	}
	if res.CoveredCount == 0 {
		t.Fatal("partial pages must still cover records")
	}
	if rep.Requeued != 0 || rep.Forfeited != 0 {
		t.Fatalf("truncation is absorbed, never retried: %s", rep)
	}
	// Solidity must be judged on the interface's true size, not the cut
	// page: a step whose full result hit k is overflowing even though
	// fewer records came back.
	full := 0
	for _, s := range res.Steps {
		if s.ResultSize == 50 {
			full++
		}
	}
	if full == 0 {
		t.Skip("no k-sized results in this trajectory; solidity claim not exercised")
	}
}

// TestResilienceCheckpointRoundTrip: the resilience report survives
// SaveResult/LoadResult, and a resumed faulty session keeps accumulating
// on top of it without breaking the accounting identity.
func TestResilienceCheckpointRoundTrip(t *testing.T) {
	const seed = 3
	profile, err := deepweb.ParseFaultProfile("severe")
	if err != nil {
		t.Fatal(err)
	}
	profile.Seed = seed

	mkCrawler := func(resume *crawler.Result) *crawler.Smart {
		env, in, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
		}, 50, nil)
		env.Searcher = &deepweb.Retrying{S: deepweb.NewFaulty(env.Searcher, profile), Retries: 1}
		smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, BatchSize: 4,
			MaxAttempts: 2,
			Breaker:     deepweb.NewBreaker(deepweb.BreakerConfig{}),
			Resume:      resume,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	res1, err := mkCrawler(nil).Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Resilience == nil || !res1.Resilience.Accounted() {
		t.Fatalf("session 1 unaccounted: %+v", res1.Resilience)
	}

	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res1); err != nil {
		t.Fatal(err)
	}
	loaded, err := crawler.LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Resilience, res1.Resilience) {
		t.Fatalf("resilience report mangled by checkpoint round-trip:\nsaved:  %+v\nloaded: %+v",
			res1.Resilience, loaded.Resilience)
	}

	res2, err := mkCrawler(loaded).Run(12)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := res2.Resilience
	if rep2 == nil || !rep2.Accounted() {
		t.Fatalf("resumed session unaccounted: %+v", rep2)
	}
	if rep2.Dispatched <= res1.Resilience.Dispatched {
		t.Fatalf("resumed report must accumulate: dispatched %d after %d",
			rep2.Dispatched, res1.Resilience.Dispatched)
	}
	if res2.CoveredCount < res1.CoveredCount {
		t.Fatalf("resume lost coverage: %d < %d", res2.CoveredCount, res1.CoveredCount)
	}
}

// TestNonResilientRunHasNoReport pins the opt-in: with MaxAttempts and
// Breaker unset the crawl aborts on the first hard failure (pre-existing
// behaviour) and attaches no resilience report to clean runs.
func TestNonResilientRunHasNoReport(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	c, err := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp, Estimator: estimator.Biased{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience != nil {
		t.Fatalf("non-resilient run attached a report: %+v", res.Resilience)
	}
}

// stormDBLPRun is faultyDBLPRun with the in-line retry layer removed and
// the retry budget exposed: every transient failure must come back
// through the merge stage's requeue path, so the budget is the only thing
// standing between a long outage and a retry storm.
func stormDBLPRun(t *testing.T, seed uint64, budget, maxAttempts int, retryBudget float64, profile deepweb.FaultProfile) *crawler.Result {
	t.Helper()
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
	}, 50, nil)
	env.Searcher = deepweb.NewFaulty(env.Searcher, profile)
	smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample:      smp,
		Estimator:   estimator.Biased{},
		BatchSize:   8,
		Concurrency: 4,
		MaxAttempts: maxAttempts,
		RetryBudget: retryBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRetryBudgetCapsStorm is the retry-storm acceptance bar, in two
// halves.
//
// Under the transient10 acceptance profile, the bucket invariant must
// hold — requeues never exceed ratio·absorbed plus the burst allowance —
// while the crawl still retains ≥90% of clean coverage: the budget
// cannot be so tight it costs the graceful-degradation guarantee.
// (transient10's short outages amplify dispatches by only ~1.2×, inside
// the allowance, so nothing is denied here; the hard cap is half 2.)
//
// Under a sustained outage (35% timeouts lasting 9 attempts, attempt cap
// 9 — a config whose unbudgeted retries genuinely storm), the bucket
// must drain and start denying: the budgeted run stays under the same
// 1.15× amplification bound that the unbudgeted control breaks.
func TestRetryBudgetCapsStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full DBLP crawls; skipped in -short")
	}
	const seed = 1
	amplification := func(rep *crawler.Resilience) float64 {
		useful := rep.Dispatched - rep.Requeued
		if useful <= 0 {
			t.Fatalf("no useful dispatches: %s", rep)
		}
		return float64(rep.Dispatched) / float64(useful)
	}

	// Half 1: transient10, budget on, against the clean baseline.
	clean := stormDBLPRun(t, seed, 60, 1, 0, deepweb.FaultProfile{})
	if clean.CoveredCount == 0 {
		t.Fatal("clean run covered nothing")
	}
	profile, err := deepweb.ParseFaultProfile("transient10")
	if err != nil {
		t.Fatal(err)
	}
	profile.Seed = seed
	faulted := stormDBLPRun(t, seed, 60, 3, 0.1, profile)
	rep := faulted.Resilience
	if rep == nil || !rep.Accounted() {
		t.Fatalf("budgeted transient10 run unaccounted: %+v", rep)
	}
	if allowance := 0.1*float64(rep.Absorbed) + deepweb.DefaultRetryBurst; float64(rep.Requeued) > allowance {
		t.Errorf("transient10 requeues %d exceed the bucket allowance %.1f (%s)", rep.Requeued, allowance, rep)
	}
	if ratio := float64(faulted.CoveredCount) / float64(clean.CoveredCount); ratio < 0.9 {
		t.Errorf("budgeted coverage %d is %.1f%% of clean %d, want >= 90%%",
			faulted.CoveredCount, 100*ratio, clean.CoveredCount)
	}

	// Half 2: sustained outage. The unbudgeted control actually storms
	// (amplification past the bound), the budgeted run does not, and the
	// denial counter proves the bucket, not luck, is what capped it.
	outage, err := deepweb.ParseFaultProfile("timeout=0.35,attempts=9")
	if err != nil {
		t.Fatal(err)
	}
	outage.Seed = seed
	control := stormDBLPRun(t, seed, 150, 9, 0, outage)
	if control.Resilience == nil || !control.Resilience.Accounted() {
		t.Fatalf("control run unaccounted: %+v", control.Resilience)
	}
	budgeted := stormDBLPRun(t, seed, 150, 9, 0.05, outage)
	brep := budgeted.Resilience
	if brep == nil || !brep.Accounted() {
		t.Fatalf("budgeted outage run unaccounted: %+v", brep)
	}
	campl, bampl := amplification(control.Resilience), amplification(brep)
	t.Logf("outage amplification: control %.3f (%s) vs budgeted %.3f (%s)",
		campl, control.Resilience, bampl, brep)
	if campl <= 1.15 {
		t.Errorf("control amplification %.3f never stormed; the fixture is too gentle to prove anything", campl)
	}
	if bampl > 1.15 {
		t.Errorf("outage amplification %.3f > 1.15 with retry budget on (%s)", bampl, brep)
	}
	if brep.RetryBudgetDenied == 0 {
		t.Error("retry budget never denied a requeue under a sustained outage")
	}
	if brep.RetryBudgetDenied > brep.Forfeited {
		t.Errorf("RetryBudgetDenied %d exceeds Forfeited %d: denial must be a forfeit subset", brep.RetryBudgetDenied, brep.Forfeited)
	}
}
