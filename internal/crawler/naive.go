package crawler

import (
	"errors"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/stats"
)

// Naive is NAIVECRAWL: one very specific query per local record (the full
// candidate key), issued in random order until the budget runs out — the
// strategy OpenRefine's reconciliation API uses. It shares no queries
// across records and is maximally sensitive to data errors, the two
// weaknesses SMARTCRAWL is built to fix.
type Naive struct {
	env *Env
	// KeyColumns are concatenated into each record's query (nil = all).
	KeyColumns []int
	// Seed drives the record-order shuffle.
	Seed uint64
}

// NewNaive constructs a NAIVECRAWL crawler.
func NewNaive(env *Env, keyColumns []int, seed uint64) (*Naive, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	return &Naive{env: env, KeyColumns: keyColumns, Seed: seed}, nil
}

// Name implements Crawler.
func (c *Naive) Name() string { return "naivecrawl" }

// Run implements Crawler.
func (c *Naive) Run(budget int) (*Result, error) {
	env := c.env
	t := newTracker(env)
	counting := deepweb.NewCounting(env.Searcher, budget)
	rng := stats.NewRNG(c.Seed)
	cfg := querypool.Config{KeyColumns: c.KeyColumns}

	order := rng.Perm(env.Local.Len())
	for _, i := range order {
		if counting.Exhausted() {
			break
		}
		d := env.Local.Records[i]
		if t.res.Covered[d.ID] {
			// Already covered by an earlier record's result (e.g.
			// two local records matching the same hidden entity's
			// result set); don't waste a query.
			continue
		}
		q := querypool.NaiveQuery(d, env.Tokenizer, cfg)
		if q == nil {
			continue // no indexable tokens; cannot query for it
		}
		recs, err := counting.Search(q)
		if errors.Is(err, deepweb.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		t.absorb(q, 1, recs)
	}
	return t.res, nil
}
