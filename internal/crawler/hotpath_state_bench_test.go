package crawler

// benchSelState materializes the Algorithm-4 selection state exactly as
// Smart.Run builds it — via the production newSelection — with the
// issue/absorb machinery stripped away, so the benchmarks in
// hotpath_bench_test.go measure the selection kernels (pool resolution,
// stat maintenance, remove/rescore) and nothing else.

import (
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
)

type benchSelState struct {
	sel    *selection
	theta  float64
	k      int
	est    estimator.Estimator
	cursor int
}

func newBenchSelState(u *benchUniverse) *benchSelState {
	pool := querypool.Generate(u.in.Local, u.tk, benchPoolConfig())
	env := &Env{Local: u.in.Local, Tokenizer: u.tk, Matcher: u.m}
	joiner := match.NewJoiner(u.in.Local.Records, u.tk, u.m)

	s := &benchSelState{theta: u.smp.Theta, k: u.k, est: estimator.Biased{}}
	s.sel = newSelection(env, pool, selectionStats{smp: u.smp, joiner: joiner}, 1, 1, s.benefit)
	return s
}

func (s *benchSelState) benefit(st *qstate) float64 {
	return s.est.Benefit(estimator.Stats{
		FreqD:       st.freqD,
		FreqSample:  st.freqS,
		MatchSample: st.matchS,
		Theta:       s.theta,
		K:           s.k,
	})
}

func (s *benchSelState) rescore(qid int) (float64, bool) {
	st := s.sel.states[qid]
	if st == nil || st.issued || st.freqD <= 0 {
		return 0, false
	}
	return s.benefit(st), true
}

func (s *benchSelState) pop() (int, float64, bool) {
	return s.sel.heap.Pop(s.rescore)
}

// cover marks the query issued and removes every record it still covers —
// the solid-query absorption path minus the searcher and the joiner.
func (s *benchSelState) cover(qid int) {
	st := s.sel.states[qid]
	st.issued = true
	for _, d := range st.qD {
		s.sel.remove(int(d))
	}
}

func (s *benchSelState) remove(d int) { s.sel.remove(d) }

// rescoreOne rescores the next live query in round-robin order, modeling
// the lazy queue revalidating an invalidated entry.
func (s *benchSelState) rescoreOne() {
	for i := 0; i < len(s.sel.states); i++ {
		s.cursor = (s.cursor + 1) % len(s.sel.states)
		if _, ok := s.rescore(s.cursor); ok {
			return
		}
	}
}
