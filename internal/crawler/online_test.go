package crawler_test

import (
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

func TestOnlineCalibrationRuns(t *testing.T) {
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 61,
	}, 50, nil)
	c, err := crawler.NewSmart(env, crawler.SmartConfig{OnlineCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "smartcrawl-online" {
		t.Fatalf("Name = %q", c.Name())
	}
	res, err := c.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 80 && res.CoveredCount < in.Local.Len() {
		t.Fatalf("issued %d, covered %d", res.QueriesIssued, res.CoveredCount)
	}
	if res.CoveredCount == 0 {
		t.Fatal("online calibration covered nothing")
	}
}

func TestOnlineCalibrationRejectsSample(t *testing.T) {
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 6000, HiddenSize: 1500, LocalSize: 200, Seed: 62,
	}, 50, nil)
	smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(1))
	if _, err := crawler.NewSmart(env, crawler.SmartConfig{
		OnlineCalibration: true, Sample: smp,
	}); err == nil {
		t.Fatal("online calibration plus sample should be rejected")
	}
}

// TestOnlineBeatsSimpleUnderTopK is the point of the extension: without
// any sample, calibrating from issued results should discount overflowing
// queries and beat frequency-only QSel-Simple under a tight top-k.
func TestOnlineBeatsSimpleUnderTopK(t *testing.T) {
	run := func(online bool) int {
		env, in, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 20000, HiddenSize: 5000, LocalSize: 1000, Seed: 63,
		}, 50, nil)
		cfg := crawler.SmartConfig{OnlineCalibration: online}
		c, err := crawler.NewSmart(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		cov := 0
		for _, h := range in.Truth {
			if h < 0 {
				continue
			}
			if _, ok := res.Crawled[h]; ok {
				cov++
			}
		}
		return cov
	}
	simple := run(false)
	online := run(true)
	t.Logf("qsel-simple=%d qsel-online=%d", simple, online)
	if online <= simple {
		t.Fatalf("online calibration (%d) should beat qsel-simple (%d) under tight top-k", online, simple)
	}
}

func TestOnlineDeterministic(t *testing.T) {
	run := func() *crawler.Result {
		env, _, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 6000, HiddenSize: 1500, LocalSize: 300, Seed: 64,
		}, 50, nil)
		c, _ := crawler.NewSmart(env, crawler.SmartConfig{OnlineCalibration: true})
		res, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CoveredCount != b.CoveredCount || len(a.Steps) != len(b.Steps) {
		t.Fatal("online calibration must be deterministic")
	}
	for i := range a.Steps {
		if a.Steps[i].Query.Key() != b.Steps[i].Query.Key() {
			t.Fatalf("step %d differs", i)
		}
	}
}

// TestOnlineResumeEqualsUninterrupted extends the checkpoint guarantee to
// the online-calibrated crawler: the calibration state is replayed from
// the step trace, so a resumed run matches the uninterrupted one.
func TestOnlineResumeEqualsUninterrupted(t *testing.T) {
	const b1, b2 = 25, 40
	mkEnv := func() *crawler.Env {
		env, _, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 66,
		}, 50, nil)
		return env
	}
	ref, _ := crawler.NewSmart(mkEnv(), crawler.SmartConfig{OnlineCalibration: true})
	refRes, err := ref.Run(b1 + b2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := crawler.NewSmart(mkEnv(), crawler.SmartConfig{OnlineCalibration: true})
	res1, err := c1.Run(b1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := crawler.NewSmart(mkEnv(), crawler.SmartConfig{
		OnlineCalibration: true, Resume: res1,
	})
	res2, err := c2.Run(b2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CoveredCount != refRes.CoveredCount || len(res2.Steps) != len(refRes.Steps) {
		t.Fatalf("resumed online crawl diverged: %d/%d steps, %d/%d covered",
			len(res2.Steps), len(refRes.Steps), res2.CoveredCount, refRes.CoveredCount)
	}
	for i := range refRes.Steps {
		if res2.Steps[i].Query.Key() != refRes.Steps[i].Query.Key() {
			t.Fatalf("step %d differs: %v vs %v", i, res2.Steps[i].Query, refRes.Steps[i].Query)
		}
	}
}
