package crawler

// The interned-token selection machinery of Algorithm 4. Setup resolves
// every pool query once to token-ID slices (tokenize.Dict) and record-ID
// posting intersections (index.InvertedIDs), precomputes the per-
// (record, query) sample-match counts in parallel, and from then on the
// selection loop runs on integers alone: remove() is array indexing plus
// integer subtraction — no string hashing, no map probes, no
// countSatisfying recomputation — which is what makes the paper's §6.3
// per-iteration complexity argument hold in practice.

import (
	"sync"

	"smartcrawl/internal/estimator"
	"smartcrawl/internal/index"
	"smartcrawl/internal/lazyheap"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/tokenize"
)

// selMinChunk is the fewest per-worker items worth a setup goroutine of
// its own; below it the parallel phases run sequentially.
const selMinChunk = 256

// selShardMinBatch is the fewest removals worth fanning out to the record
// shards; below it the sequential path is faster and — because shard
// deltas are commutative integer sums — bit-identical anyway. A var, not
// a const, so the shard determinism oracle can force tiny batches through
// the sharded path.
var selShardMinBatch = 512

// idLookup is the inverted-index probe newSelection resolves q(D)
// through: the heap-built index.InvertedIDs, or the block-compressed
// (possibly memory-mapped) index of an opened corpus cache.
type idLookup interface {
	LookupInto(q []uint32, scratch []uint32) []uint32
}

// selection is the live Algorithm-4 selection state: per-query statistics,
// the dense forward index with its aligned sample-match counts, the
// considered set, and the lazy priority queue.
type selection struct {
	states []*qstate
	heap   *lazyheap.Queue

	// fwd is F(d): the IDs of pool queries record d satisfies, ascending.
	fwd *index.ForwardDense
	// fwdCnt[d][i] is the static sample-match count of (d, fwd[d][i]) —
	// how many sample positions matching d satisfy that query — so
	// removing d subtracts a precomputed integer instead of recomputing
	// countSatisfying. nil without a sample; fwdCnt[d] is nil when no
	// sample record matches d (the common case at small θ).
	fwdCnt [][]int32

	// considered[d] is false once d has been covered or predicted ∈ ΔD.
	considered []bool
	remaining  int

	// Sample-side statics retained for the equivalence tests.
	theta float64
	freqS func(ids []uint32) int

	// Record-shard state for parallel batch removal (see removeBatch):
	// records are partitioned into `shards` contiguous ranges of
	// shardSize; shard workers accumulate per-query deltas privately and
	// a single-writer merge applies them. Allocated lazily on the first
	// batch big enough to shard.
	shards     int
	shardSize  int
	shardState []selShard
}

// selShard is one record shard's private removal scratch.
type selShard struct {
	dFreq   []int32  // per-query freqD decrements of the current batch
	dMatch  []int32  // per-query matchS decrements
	dirty   []uint32 // queries touched this batch (dFreq[q] > 0)
	removed int      // records this shard removed this batch
	entries int      // forward-index entries dropped this batch
}

// selectionStats carries the sample-side inputs of newSelection.
type selectionStats struct {
	smp    *sample.Sample
	joiner *match.Joiner
}

// newSelection builds the selection state for the generated pool: resolve
// q(D) for every query, build the forward index, precompute sample-match
// counts, and push initial priorities. The parallel phases (q(D)
// resolution, per-record count precomputation) are pure per-item
// functions over disjoint outputs, so the result is identical for any
// worker count.
func newSelection(env *Env, pool *querypool.Pool, ss selectionStats, workers, shards int, benefitOf func(*qstate) float64) *selection {
	dict := pool.Dict

	// q(D) resolution source: an opened corpus cache replaces the heap
	// index build entirely — postings are read (block-decoded) straight
	// out of the mapped file, so setup memory no longer carries the
	// posting lists. Both indexes intersect the same sorted postings, so
	// the resolved q(D) slices are identical byte for byte.
	var invD idLookup
	if env.Corpus != nil {
		invD = env.Corpus.Inv
	} else {
		invD = index.BuildInvertedIDsObs(env.Local.Records, env.Tokenizer, dict, workers, env.Obs)
	}

	if shards < 1 {
		shards = 1
	}
	sel := &selection{
		states:     make([]*qstate, pool.Len()),
		heap:       lazyheap.NewN(pool.Len()),
		fwd:        index.NewForwardDense(env.Local.Len()),
		considered: make([]bool, env.Local.Len()),
		remaining:  env.Local.Len(),
		shards:     shards,
		shardSize:  (env.Local.Len() + shards - 1) / shards,
	}
	for i := range sel.considered {
		sel.considered[i] = true
	}

	// Phase 1: resolve every pool query's q(D) in parallel. States live
	// in one arena so the pool costs one allocation, not one per query.
	arena := make([]qstate, pool.Len())
	parallelChunks(len(pool.Queries), workers, func(lo, hi int) {
		var scratch []uint32
		for _, q := range pool.Queries[lo:hi] {
			scratch = invD.LookupInto(q.IDs, scratch[:0])
			if len(scratch) == 0 {
				continue // cannot cover anything; never issue
			}
			st := &arena[q.ID]
			st.q = q
			st.qD = append([]uint32(nil), scratch...)
			st.freqD = len(st.qD)
			sel.states[q.ID] = st
		}
	})

	// Phase 2: sample-side statics. The sample's records are interned
	// under the same dictionary (sample-only tokens drop out — they can
	// never appear in a pool query), re-IDed to dense positions for the
	// sample inverted index, and joined once against the local records.
	var (
		sampleMatches [][]int32
		sampleSets    [][]uint32
	)
	if ss.smp != nil && ss.smp.Len() > 0 {
		stopSample := env.Obs.Phase("sample_index")
		sel.theta = ss.smp.Theta
		reIDed := make([]*relational.Record, len(ss.smp.Records))
		for i, r := range ss.smp.Records {
			reIDed[i] = &relational.Record{ID: i, Values: r.Values}
		}
		invS := index.BuildInvertedIDs(reIDed, env.Tokenizer, dict, workers)
		sel.freqS = invS.Count
		sampleSets = ss.smp.TokenIDSets(env.Tokenizer, dict)
		sampleMatches = make([][]int32, env.Local.Len())
		for pos, r := range ss.smp.Records {
			for _, d := range ss.joiner.Matches(r) {
				sampleMatches[d] = append(sampleMatches[d], int32(pos))
			}
		}
		parallelChunks(len(sel.states), workers, func(lo, hi int) {
			for _, st := range sel.states[lo:hi] {
				if st != nil {
					st.freqS = invS.Count(st.q.IDs)
				}
			}
		})
		stopSample()
	}

	// Phase 3: the forward index. Walking queries in ID order keeps each
	// F(d) ascending, which recompute() relies on for binary search.
	for _, st := range sel.states {
		if st == nil {
			continue
		}
		for _, d := range st.qD {
			sel.fwd.Add(int(d), uint32(st.q.ID))
		}
	}

	// Phase 4: per-(record, query) sample-match counts, in parallel over
	// records, then one sequential accumulation pass for the initial
	// matchS values (identical integers to summing countSatisfying over
	// q(D), just grouped by record instead of by query).
	if sampleMatches != nil {
		sel.fwdCnt = make([][]int32, env.Local.Len())
		parallelChunks(env.Local.Len(), workers, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				positions := sampleMatches[d]
				if len(positions) == 0 {
					continue
				}
				list := sel.fwd.List(d)
				if len(list) == 0 {
					continue
				}
				cnts := make([]int32, len(list))
				for i, qid := range list {
					cnts[i] = int32(countSatisfyingIDs(positions, sampleSets, sel.states[qid].q.IDs))
				}
				sel.fwdCnt[d] = cnts
			}
		})
		for d, cnts := range sel.fwdCnt {
			if cnts == nil {
				continue
			}
			for i, qid := range sel.fwd.List(d) {
				sel.states[qid].matchS += int(cnts[i])
			}
		}
	}

	// Initial priorities, in query-ID order for determinism.
	for _, st := range sel.states {
		if st != nil {
			sel.heap.Push(st.q.ID, benefitOf(st))
		}
	}
	return sel
}

// remove drops d from consideration and invalidates affected queries —
// the per-iteration delta update. Pure integer work: one forward-list
// walk, one subtraction per affected query, one dense dirty-bit set.
func (sel *selection) remove(d int) {
	if !sel.considered[d] {
		return
	}
	sel.considered[d] = false
	sel.remaining--
	list := sel.fwd.Remove(d)
	var cnts []int32
	if sel.fwdCnt != nil {
		cnts = sel.fwdCnt[d]
		sel.fwdCnt[d] = nil
	}
	for i, qid := range list {
		st := sel.states[qid]
		if st == nil || st.issued {
			continue
		}
		st.freqD--
		if cnts != nil {
			st.matchS -= int(cnts[i])
		}
		sel.heap.Invalidate(int(qid))
	}
}

// removeBatch removes a set of record IDs (duplicates and already-removed
// IDs are fine). Small batches run the sequential remove loop; large ones
// fan out across the record shards — each shard worker removes only the
// records of its own contiguous range, accumulating freqD/matchS
// decrements in private per-query delta arrays, and a single-writer merge
// then applies the deltas and invalidates heap entries.
//
// The sharded path is byte-identical to the sequential one at any shard
// count: each record is removed by exactly one owner, the per-query
// deltas are sums of integers (order-independent), issued queries are
// skipped at merge time exactly as remove() skips them, and
// lazyheap.Invalidate is an idempotent dirty bit — so the post-batch
// selection state, and therefore every subsequent pop, is the same.
func (sel *selection) removeBatch(ds []int) {
	sel.removeBatchFunc(len(ds), func(i int) int { return ds[i] })
}

// removeBatchU32 is removeBatch over a []uint32 ID slice (a query's qD).
func (sel *selection) removeBatchU32(ds []uint32) {
	sel.removeBatchFunc(len(ds), func(i int) int { return int(ds[i]) })
}

func (sel *selection) removeBatchFunc(n int, at func(int) int) {
	if sel.shards <= 1 || n < selShardMinBatch {
		for i := 0; i < n; i++ {
			sel.remove(at(i))
		}
		return
	}
	if sel.shardState == nil {
		sel.shardState = make([]selShard, sel.shards)
		for s := range sel.shardState {
			sel.shardState[s].dFreq = make([]int32, len(sel.states))
			sel.shardState[s].dMatch = make([]int32, len(sel.states))
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < sel.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &sel.shardState[s]
			lo, hi := s*sel.shardSize, (s+1)*sel.shardSize
			for i := 0; i < n; i++ {
				d := at(i)
				if d < lo || d >= hi || !sel.considered[d] {
					continue
				}
				sel.considered[d] = false
				sh.removed++
				list := sel.fwd.Take(d)
				sh.entries += len(list)
				var cnts []int32
				if sel.fwdCnt != nil {
					cnts = sel.fwdCnt[d]
					sel.fwdCnt[d] = nil
				}
				for j, qid := range list {
					if sh.dFreq[qid] == 0 {
						sh.dirty = append(sh.dirty, qid)
					}
					sh.dFreq[qid]++
					if cnts != nil {
						sh.dMatch[qid] += cnts[j]
					}
				}
			}
		}(s)
	}
	wg.Wait()
	// Single-writer merge, shard-major. Per-shard dirty lists may overlap;
	// the sums commute, so application order cannot matter.
	removed, entries := 0, 0
	for s := range sel.shardState {
		sh := &sel.shardState[s]
		removed += sh.removed
		entries += sh.entries
		sh.removed, sh.entries = 0, 0
		for _, qid := range sh.dirty {
			df, dm := sh.dFreq[qid], sh.dMatch[qid]
			sh.dFreq[qid], sh.dMatch[qid] = 0, 0
			st := sel.states[qid]
			if st == nil || st.issued {
				continue
			}
			st.freqD -= int(df)
			st.matchS -= int(dm)
			sel.heap.Invalidate(int(qid))
		}
		sh.dirty = sh.dirty[:0]
	}
	sel.fwd.DropEntries(entries)
	sel.remaining -= removed
}

// recompute refreshes st's live statistics from the considered set — the
// requeue path, where removals during the in-flight window skipped this
// (issued) query. Counts come from the precomputed table via binary
// search of the query's ID in F(d).
func (sel *selection) recompute(st *qstate) {
	st.freqD, st.matchS = 0, 0
	qid := uint32(st.q.ID)
	for _, d := range st.qD {
		if !sel.considered[d] {
			continue
		}
		st.freqD++
		st.matchS += sel.countAt(int(d), qid)
	}
}

// countAt returns the precomputed sample-match count of (d, qid), or 0
// when d has no matching sample positions. F(d) is ascending by
// construction, so the position resolves by binary search.
func (sel *selection) countAt(d int, qid uint32) int {
	if sel.fwdCnt == nil || sel.fwdCnt[d] == nil {
		return 0
	}
	list := sel.fwd.List(d)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < qid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(list) || list[lo] != qid {
		return 0
	}
	return int(sel.fwdCnt[d][lo])
}

// stats assembles the estimator inputs for one query at the current
// iteration.
func (sel *selection) stats(st *qstate, k int, alpha float64) estimator.Stats {
	return estimator.Stats{
		FreqD:       st.freqD,
		FreqSample:  st.freqS,
		MatchSample: st.matchS,
		Theta:       sel.theta,
		K:           k,
		Alpha:       alpha,
	}
}

// countSatisfyingIDs counts the sample positions (matching some local
// record) whose interned token sets contain every query keyword ID — the
// integer kernel equivalent of countSatisfying. positions index into
// sets; both sets[pos] and q are sorted ascending.
func countSatisfyingIDs(positions []int32, sets [][]uint32, q []uint32) int {
	n := 0
	for _, pos := range positions {
		if tokenize.ContainsAllSorted(sets[pos], q) {
			n++
		}
	}
	return n
}

// parallelChunks runs fn over [0,n) split into contiguous per-worker
// chunks. fn must write only to per-index outputs (no shared appends), so
// results are identical for any worker count; small inputs run inline.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if workers > n/selMinChunk {
		workers = n / selMinChunk
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
