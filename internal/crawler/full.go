package crawler

import (
	"errors"
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/sample"
)

// Full is FULLCRAWL: a classic deep-web crawler that tries to retrieve as
// much of the hidden database as possible, oblivious to the local
// database. Following the paper's implementation (Appendix C), it builds a
// query pool from a hidden-database sample — all single keywords seen in
// the sample — and issues them in decreasing order of their sample
// frequency, the standard high-coverage heuristic from the crawling
// literature. Whatever it happens to retrieve is then matched against D.
type Full struct {
	env *Env
	smp *sample.Sample
}

// NewFull constructs a FULLCRAWL crawler driven by the given hidden-
// database sample.
func NewFull(env *Env, smp *sample.Sample) (*Full, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if smp == nil || smp.Len() == 0 {
		return nil, errors.New("crawler: fullcrawl needs a non-empty sample")
	}
	return &Full{env: env, smp: smp}, nil
}

// Name implements Crawler.
func (c *Full) Name() string { return "fullcrawl" }

// Run implements Crawler.
func (c *Full) Run(budget int) (*Result, error) {
	env := c.env
	t := newTracker(env)
	counting := deepweb.NewCounting(env.Searcher, budget)

	// Keyword frequencies in the sample ≈ frequencies in H (scaled by θ).
	freq := make(map[string]int)
	for _, r := range c.smp.Records {
		for _, w := range r.Tokens(env.Tokenizer) {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Slice(words, func(a, b int) bool {
		if freq[words[a]] != freq[words[b]] {
			return freq[words[a]] > freq[words[b]]
		}
		return words[a] < words[b]
	})

	for _, w := range words {
		if counting.Exhausted() {
			break
		}
		q := deepweb.Query{w}
		recs, err := counting.Search(q)
		if errors.Is(err, deepweb.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		t.absorb(q, float64(freq[w]), recs)
	}
	return t.res, nil
}
