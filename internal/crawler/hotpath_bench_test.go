package crawler

// Hot-path microbenchmarks for the Algorithm-4 selection machinery
// (BENCH_hotpath.json): pool build + stat setup, the steady-state
// selection loop, and the remove/rescore kernel. The workload is a
// simulated-DBLP instance large enough that per-iteration costs dominate
// and a θ=5% sample so the match-statistic maintenance (the
// countSatisfying path) is actually exercised.
//
// `make bench-hotpath` runs these and records ns/op + allocs/op; the
// before/after table lives in BENCH_hotpath.json and the README perf
// section.

import (
	"testing"

	"smartcrawl/internal/dataset"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// benchUniverse is the shared benchmark instance: local table, sample,
// tokenizer, matcher — everything the selection machinery consumes.
type benchUniverse struct {
	in  *dataset.Instance
	tk  *tokenize.Tokenizer
	m   match.Matcher
	smp *sample.Sample
	k   int
}

func newBenchUniverse(b testing.TB) *benchUniverse {
	b.Helper()
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 20000,
		HiddenSize: 5000,
		LocalSize:  1500,
		Seed:       7,
	})
	if err != nil {
		b.Fatal(err)
	}
	tk := tokenize.New()
	smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(7))
	return &benchUniverse{
		in:  in,
		tk:  tk,
		m:   match.NewExactOn(tk, in.LocalKey, in.HiddenKey),
		smp: smp,
		k:   100,
	}
}

// BenchmarkPoolBuild measures the setup phase of Algorithm 4: query-pool
// generation, inverted-index build, per-query q(D) resolution, and the
// initial sample-match statistics.
func BenchmarkPoolBuild(b *testing.B) {
	u := newBenchUniverse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newBenchSelState(u)
		if len(st.sel.states) == 0 {
			b.Fatal("empty pool")
		}
	}
}

// BenchmarkSelectionLoop measures a full drain of the selection loop:
// repeatedly pop the best query from the lazy queue and remove every
// record it covers (the solid-query case, which exercises the forward
// index, the stat updates, and the heap invalidations maximally).
func BenchmarkSelectionLoop(b *testing.B) {
	u := newBenchUniverse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := newBenchSelState(u)
		b.StartTimer()
		drained := 0
		for {
			qid, _, ok := st.pop()
			if !ok {
				break
			}
			st.cover(qid)
			drained++
		}
		if drained == 0 {
			b.Fatal("selection loop drained nothing")
		}
	}
}

// BenchmarkRemove measures the per-record remove/rescore kernel in
// isolation: dropping one covered record from consideration, updating
// every affected query's statistics, and rescoring one invalidated query.
func BenchmarkRemove(b *testing.B) {
	u := newBenchUniverse(b)
	st := newBenchSelState(u)
	n := len(u.in.Local.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := i % n
		if d == 0 && i > 0 {
			b.StopTimer()
			st = newBenchSelState(u)
			b.StartTimer()
		}
		st.remove(d)
		st.rescoreOne()
	}
}

// querypool.Generate's cost is included in newBenchSelState; this pins the
// pool at a stable size so the benches stay comparable across changes.
func benchPoolConfig() querypool.Config {
	return querypool.Config{MinSupport: 2, MaxQueryLen: 3}
}
