package crawler_test

import (
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

func batchSetup(t *testing.T) (*crawler.Env, *dataset.Instance, *sample.Sample) {
	t.Helper()
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 31,
	}, 50, nil)
	smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(12))
	return env, in, smp
}

func TestBatchRespectsBudget(t *testing.T) {
	env, _, smp := batchSetup(t)
	for _, batch := range []int{2, 7, 16} {
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, BatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Budget not divisible by batch: the final round must shrink.
		res, err := c.Run(45)
		if err != nil {
			t.Fatal(err)
		}
		if res.QueriesIssued > 45 {
			t.Fatalf("batch %d issued %d > budget 45", batch, res.QueriesIssued)
		}
	}
}

func TestBatchDeterministic(t *testing.T) {
	run := func() *crawler.Result {
		env, _, smp := batchSetup(t)
		c, _ := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, BatchSize: 8,
		})
		res, err := c.Run(64)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CoveredCount != b.CoveredCount {
		t.Fatalf("batch runs differ: %d vs %d", a.CoveredCount, b.CoveredCount)
	}
	for i := range a.Steps {
		if a.Steps[i].Query.Key() != b.Steps[i].Query.Key() {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestBatchCoverageNearSequential(t *testing.T) {
	env, _, smp := batchSetup(t)
	cov := func(batch int) int {
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, BatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(80)
		if err != nil {
			t.Fatal(err)
		}
		return res.CoveredCount
	}
	seq := cov(1)
	batched := cov(10)
	t.Logf("sequential=%d batched(10)=%d", seq, batched)
	if batched == 0 {
		t.Fatal("batched crawl covered nothing")
	}
	// Batch-greedy may lose a little to stale benefit estimates within a
	// round, but not collapse.
	if float64(batched) < 0.8*float64(seq) {
		t.Fatalf("batched coverage %d collapsed vs sequential %d", batched, seq)
	}
}

func TestBatchNoDuplicateQueries(t *testing.T) {
	env, _, smp := batchSetup(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, BatchSize: 5,
	})
	res, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Steps {
		if seen[s.Query.Key()] {
			t.Fatalf("query %v issued twice", s.Query)
		}
		seen[s.Query.Key()] = true
	}
}
