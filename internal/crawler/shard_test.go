package crawler

// The shard determinism oracle: record-sharded batch removal and the
// memory-mapped corpus index are pure wall-clock knobs — coverage,
// per-query statistics, and the issued-query log must be byte-identical
// to the sequential in-memory path at any shard count, worker count, or
// index backing. These tests force even tiny batches through the sharded
// path (selShardMinBatch = 1) so the shard machinery is exercised at test
// scale, not just at the production threshold.

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/index"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func forceSharding(t *testing.T) {
	t.Helper()
	old := selShardMinBatch
	selShardMinBatch = 1
	t.Cleanup(func() { selShardMinBatch = old })
}

// scanDictFor mirrors querypool's corpus scan: BuildDict over the sorted
// vocabulary, the same dictionary a corpus cache stores.
func scanDictFor(recs []*relational.Record, tk *tokenize.Tokenizer) *tokenize.Dict {
	seen := map[string]struct{}{}
	for _, r := range recs {
		for _, w := range r.Tokens(tk) {
			seen[w] = struct{}{}
		}
	}
	vocab := make([]string, 0, len(seen))
	for w := range seen {
		vocab = append(vocab, w)
	}
	sort.Strings(vocab)
	return tokenize.BuildDict(vocab)
}

// TestRemoveBatchShardedMatchesSequential drives identical removal
// batches through a sequential selection and a sharded one and compares
// the complete post-batch state: considered set, remaining count,
// forward-index entries, every query's freqD/matchS, and the full drain
// order of both heaps.
func TestRemoveBatchShardedMatchesSequential(t *testing.T) {
	forceSharding(t)
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 6000, HiddenSize: 1500, LocalSize: 800, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(17))
	m := match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	pool := querypool.Generate(in.Local, tk, querypool.Config{MinSupport: 2, MaxQueryLen: 3})
	env := &Env{Local: in.Local, Tokenizer: tk, Matcher: m}
	joiner := match.NewJoiner(in.Local.Records, tk, m)

	build := func(workers, shards int) *selection {
		est := estimator.Biased{}
		benefit := func(st *qstate) float64 {
			return est.Benefit(estimator.Stats{
				FreqD: st.freqD, FreqSample: st.freqS, MatchSample: st.matchS,
				Theta: smp.Theta, K: 100,
			})
		}
		return newSelection(env, pool, selectionStats{smp: smp, joiner: joiner}, workers, shards, benefit)
	}
	seq := build(1, 1)
	shd := build(4, 8)

	// Issue a few queries on both (removeBatch must skip issued queries
	// exactly like remove does), then remove their qD sets plus a strided
	// sweep of raw record IDs.
	issued := 0
	for qid, st := range seq.states {
		if st == nil || len(st.qD) < 4 {
			continue
		}
		seq.states[qid].issued = true
		shd.states[qid].issued = true
		issued++
		if issued == 5 {
			break
		}
	}
	for qid, st := range seq.states {
		if st == nil || st.issued || len(st.qD) < 8 {
			continue
		}
		seq.removeBatchU32(st.qD)
		shd.removeBatchU32(st.qD)
		if qid%3 == 0 {
			var ds []int
			for d := qid % 7; d < in.Local.Len(); d += 13 {
				ds = append(ds, d)
			}
			seq.removeBatch(ds)
			shd.removeBatch(ds)
		}
	}

	if seq.remaining != shd.remaining {
		t.Fatalf("remaining: %d vs %d", seq.remaining, shd.remaining)
	}
	if a, b := seq.fwd.TotalEntries(), shd.fwd.TotalEntries(); a != b {
		t.Fatalf("forward entries: %d vs %d", a, b)
	}
	for d := range seq.considered {
		if seq.considered[d] != shd.considered[d] {
			t.Fatalf("considered[%d]: %v vs %v", d, seq.considered[d], shd.considered[d])
		}
	}
	for qid, st := range seq.states {
		if st == nil {
			continue
		}
		o := shd.states[qid]
		if st.freqD != o.freqD || st.matchS != o.matchS {
			t.Fatalf("query %d stats: freqD %d/%d matchS %d/%d",
				qid, st.freqD, o.freqD, st.matchS, o.matchS)
		}
	}
	// Drain both heaps; pops must agree exactly (same qid, same benefit).
	rescore := func(sel *selection) func(int) (float64, bool) {
		est := estimator.Biased{}
		return func(qid int) (float64, bool) {
			st := sel.states[qid]
			if st == nil || st.issued || st.freqD <= 0 {
				return 0, false
			}
			return est.Benefit(estimator.Stats{
				FreqD: st.freqD, FreqSample: st.freqS, MatchSample: st.matchS,
				Theta: smp.Theta, K: 100,
			}), true
		}
	}
	rs, ro := rescore(seq), rescore(shd)
	for {
		qa, ba, oka := seq.heap.Pop(rs)
		qb, bb, okb := shd.heap.Pop(ro)
		if oka != okb || qa != qb || ba != bb {
			t.Fatalf("heap drain diverged: (%d,%v,%v) vs (%d,%v,%v)", qa, ba, oka, qb, bb, okb)
		}
		if !oka {
			break
		}
		seq.states[qa].issued = true
		shd.states[qb].issued = true
	}
}

// TestShardedMappedCrawlDeterministic is the end-to-end oracle over the
// new axes: for each seed, every (workers, shards, mapped-vs-in-memory)
// cell must produce the byte-identical issued-query log and coverage of
// the sequential in-memory reference.
func TestShardedMappedCrawlDeterministic(t *testing.T) {
	forceSharding(t)
	dir := t.TempDir()
	for _, seed := range []uint64{1, 2, 3} {
		run := func(workers, shards int, mapped bool) *Result {
			in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
				CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			tk := tokenize.New()
			db := hidden.New(in.Hidden, tk, 50,
				hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
			env := &Env{
				Local: in.Local, Searcher: db, Tokenizer: tk,
				Matcher: match.NewExactOn(tk, in.LocalKey, in.HiddenKey),
			}
			cfg := SmartConfig{
				Sample:      sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100)),
				Estimator:   estimator.Biased{},
				BatchSize:   8,
				Concurrency: workers,
				Shards:      shards,
			}
			if mapped {
				dict := scanDictFor(in.Local.Records, tk)
				inv := index.BuildCompressedInvertedIDs(in.Local.Records, tk, dict)
				path := filepath.Join(dir, "oracle.scorp")
				if err := index.WriteCorpus(path, dict, inv); err != nil {
					t.Fatal(err)
				}
				cf, err := index.OpenCorpus(path)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cf.Close() })
				env.Corpus = cf
				cfg.PoolConfig.Dict = cf.Dict
			}
			c, err := NewSmart(env, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(48)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		logOf := func(res *Result) string {
			keys := make([]string, len(res.Steps))
			for i, s := range res.Steps {
				keys[i] = s.Query.Key()
			}
			return strings.Join(keys, "\n")
		}
		ref := run(1, 1, false)
		refLog := logOf(ref)
		if len(ref.Steps) == 0 {
			t.Fatalf("seed %d: reference run issued no queries", seed)
		}
		cells := []struct {
			workers, shards int
			mapped          bool
		}{
			{1, 1, true}, // mapped alone
			{4, 1, true},
			{1, 4, false}, // shards alone
			{4, 4, false},
			{16, 4, true}, // everything at once
			{16, 1, false},
		}
		for _, c := range cells {
			got := run(c.workers, c.shards, c.mapped)
			if log := logOf(got); log != refLog {
				t.Fatalf("seed %d workers=%d shards=%d mapped=%v: issued-query log diverged\n--- ref ---\n%s\n--- got ---\n%s",
					seed, c.workers, c.shards, c.mapped, refLog, log)
			}
			if got.CoveredCount != ref.CoveredCount {
				t.Fatalf("seed %d workers=%d shards=%d mapped=%v: coverage %d, want %d",
					seed, c.workers, c.shards, c.mapped, got.CoveredCount, ref.CoveredCount)
			}
		}
	}
}
