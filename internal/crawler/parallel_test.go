package crawler_test

import (
	"bytes"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

// queryLog flattens the issued-query trace into one string so worker-count
// comparisons are literally byte-identical, not just step-by-step equal.
func queryLog(res *crawler.Result) string {
	keys := make([]string, len(res.Steps))
	for i, s := range res.Steps {
		keys[i] = s.Query.Key()
	}
	return strings.Join(keys, "\n")
}

// TestParallelCrawlDeterministic is the determinism regression for the
// concurrent pipeline: for each seed, every worker count must produce a
// byte-identical issued-query log and identical coverage. Concurrency is a
// wall-clock knob only — selection happens before dispatch and outcomes
// merge in selection order, so the crawl trajectory cannot depend on
// goroutine scheduling.
func TestParallelCrawlDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		run := func(workers int) *crawler.Result {
			env, in, _ := dblpEnv(t, dataset.DBLPConfig{
				CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
			}, 50, nil)
			smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
			c, err := crawler.NewSmart(env, crawler.SmartConfig{
				Sample:      smp,
				Estimator:   estimator.Biased{},
				BatchSize:   8,
				Concurrency: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(48)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1)
		refLog := queryLog(ref)
		if len(ref.Steps) == 0 {
			t.Fatalf("seed %d: reference run issued no queries", seed)
		}
		for _, workers := range []int{4, 16} {
			got := run(workers)
			if log := queryLog(got); log != refLog {
				t.Fatalf("seed %d workers %d: issued-query log diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					seed, workers, refLog, workers, log)
			}
			if got.CoveredCount != ref.CoveredCount {
				t.Fatalf("seed %d workers %d: coverage %d, want %d",
					seed, workers, got.CoveredCount, ref.CoveredCount)
			}
			if got.QueriesIssued != ref.QueriesIssued {
				t.Fatalf("seed %d workers %d: issued %d, want %d",
					seed, workers, got.QueriesIssued, ref.QueriesIssued)
			}
		}
	}
}

// TestTracingDeterministic is the observability counterpart of the test
// above: attaching a metrics sink and a JSONL tracer must not perturb the
// crawl. For each seed and worker count, the traced run's issued-query
// log and coverage must be byte-identical to the untraced run's — obs
// hooks observe, they never decide. The traced run must also actually
// emit a parseable trace whose query events mirror the crawl trajectory.
func TestTracingDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		run := func(workers int, o *obs.Obs) *crawler.Result {
			env, in, _ := dblpEnv(t, dataset.DBLPConfig{
				CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: seed,
			}, 50, nil)
			env.Obs = o
			smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(seed+100))
			c, err := crawler.NewSmart(env, crawler.SmartConfig{
				Sample:      smp,
				Estimator:   estimator.Biased{},
				BatchSize:   8,
				Concurrency: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(48)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		for _, workers := range []int{1, 4, 16} {
			plain := run(workers, nil)
			var trace bytes.Buffer
			o := obs.New()
			o.SetTracer(obs.NewTracer(&trace))
			traced := run(workers, o)

			if a, b := queryLog(plain), queryLog(traced); a != b {
				t.Fatalf("seed %d workers %d: tracing changed the issued-query log\n--- off ---\n%s\n--- on ---\n%s",
					seed, workers, a, b)
			}
			if plain.CoveredCount != traced.CoveredCount {
				t.Fatalf("seed %d workers %d: tracing changed coverage %d → %d",
					seed, workers, plain.CoveredCount, traced.CoveredCount)
			}

			// The sink must have seen the whole crawl…
			if got := o.QueriesIssued.Value(); got != int64(traced.QueriesIssued) {
				t.Fatalf("seed %d workers %d: obs counted %d queries, crawl issued %d",
					seed, workers, got, traced.QueriesIssued)
			}
			if got := o.RecordsCovered.Value(); got != int64(traced.CoveredCount) {
				t.Fatalf("seed %d workers %d: obs counted %d covered, crawl covered %d",
					seed, workers, got, traced.CoveredCount)
			}
			// …and the trace must replay it: one query event per step, in
			// absorb order, with matching keys and coverage deltas.
			events, err := obs.ParseEvents(bytes.NewReader(trace.Bytes()))
			if err != nil {
				t.Fatalf("seed %d workers %d: trace not parseable: %v", seed, workers, err)
			}
			var queries []obs.Event
			for _, e := range events {
				if e.Type == obs.EventQuery {
					queries = append(queries, e)
				}
			}
			if len(queries) != len(traced.Steps) {
				t.Fatalf("seed %d workers %d: %d query events for %d steps",
					seed, workers, len(queries), len(traced.Steps))
			}
			for i, e := range queries {
				if e.Query != traced.Steps[i].Query.Key() {
					t.Fatalf("seed %d workers %d: trace event %d query %q, step %q",
						seed, workers, i, e.Query, traced.Steps[i].Query.Key())
				}
			}
			if last := queries[len(queries)-1]; last.CumCovered != traced.CoveredCount {
				t.Fatalf("seed %d workers %d: final trace cum_covered %d, coverage %d",
					seed, workers, last.CumCovered, traced.CoveredCount)
			}
		}
	}
}

// TestParallelCrawlDefaultsConcurrencyToBatch pins the documented default:
// Concurrency 0 means "BatchSize workers", and the result is still
// identical to an explicit worker count.
func TestParallelCrawlDefaultsConcurrencyToBatch(t *testing.T) {
	run := func(workers int) *crawler.Result {
		env, in, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, Seed: 7,
		}, 50, nil)
		smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(77))
		c, err := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{},
			BatchSize: 6, Concurrency: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(30)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def, explicit := run(0), run(6)
	if queryLog(def) != queryLog(explicit) || def.CoveredCount != explicit.CoveredCount {
		t.Fatal("Concurrency=0 (default to BatchSize) diverged from explicit Concurrency=BatchSize")
	}
}
