package crawler_test

import (
	"bytes"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
)

func checkpointSetup(t *testing.T) (*crawler.Env, *sample.Sample) {
	t.Helper()
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, DeltaD: 40, Seed: 51,
	}, 50, nil)
	return env, sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(13))
}

// TestResumeEqualsUninterrupted is the core checkpoint guarantee: a crawl
// of b1 queries, saved, reloaded, and resumed for b2 more must match an
// uninterrupted b1+b2 crawl step for step.
func TestResumeEqualsUninterrupted(t *testing.T) {
	const b1, b2 = 30, 50
	env, smp := checkpointSetup(t)

	// Uninterrupted reference.
	ref, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(b1 + b2)
	if err != nil {
		t.Fatal(err)
	}

	// Session 1.
	c1, _ := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
	})
	res1, err := c1.Run(b1)
	if err != nil {
		t.Fatal(err)
	}

	// Save + load round trip.
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res1); err != nil {
		t.Fatal(err)
	}
	loaded, err := crawler.LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Session 2, resumed.
	c2, _ := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
		Resume: loaded,
	})
	res2, err := c2.Run(b2)
	if err != nil {
		t.Fatal(err)
	}

	if res2.CoveredCount != refRes.CoveredCount {
		t.Fatalf("resumed coverage %d != uninterrupted %d",
			res2.CoveredCount, refRes.CoveredCount)
	}
	if res2.QueriesIssued != refRes.QueriesIssued {
		t.Fatalf("resumed issued %d != uninterrupted %d",
			res2.QueriesIssued, refRes.QueriesIssued)
	}
	if len(res2.Steps) != len(refRes.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(res2.Steps), len(refRes.Steps))
	}
	for i := range refRes.Steps {
		if res2.Steps[i].Query.Key() != refRes.Steps[i].Query.Key() {
			t.Fatalf("step %d differs: %v vs %v",
				i, res2.Steps[i].Query, refRes.Steps[i].Query)
		}
	}
	for d, covered := range refRes.Covered {
		if res2.Covered[d] != covered {
			t.Fatalf("covered[%d] differs", d)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	env, smp := checkpointSetup(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp, Estimator: estimator.Biased{}})
	res, err := c.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := crawler.LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CoveredCount != res.CoveredCount || got.QueriesIssued != res.QueriesIssued {
		t.Fatalf("round trip lost counters: %+v vs %+v", got, res)
	}
	if len(got.Crawled) != len(res.Crawled) {
		t.Fatalf("crawled count %d vs %d", len(got.Crawled), len(res.Crawled))
	}
	for d, h := range res.Matches {
		g, ok := got.Matches[d]
		if !ok || g.ID != h.ID || g.Value(0) != h.Value(0) {
			t.Fatalf("match for %d lost in round trip", d)
		}
	}
	for i := range res.Steps {
		if got.Steps[i].Query.Key() != res.Steps[i].Query.Key() ||
			got.Steps[i].ResultSize != res.Steps[i].ResultSize {
			t.Fatalf("step %d differs after round trip", i)
		}
	}
}

func TestLoadResultRejectsBadInput(t *testing.T) {
	if _, err := crawler.LoadResult(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := crawler.LoadResult(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version should fail")
	}
	// Match referencing an uncrawled record.
	bad := `{"version":1,"covered":[false],"matches":[{"local":0,"hidden":7}]}`
	if _, err := crawler.LoadResult(strings.NewReader(bad)); err == nil {
		t.Fatal("dangling match should fail")
	}
}

func TestResumeRejectsWrongLocalSize(t *testing.T) {
	env, smp := checkpointSetup(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{},
		Resume: &crawler.Result{Covered: make([]bool, 3)},
	})
	if _, err := c.Run(5); err == nil {
		t.Fatal("mismatched checkpoint should fail")
	}
}

func TestSaveResultDeterministicBytes(t *testing.T) {
	env, smp := checkpointSetup(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp, Estimator: estimator.Biased{}})
	res, err := c.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := crawler.SaveResult(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := crawler.SaveResult(&b, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint bytes must be deterministic")
	}
}
