// Package crawler implements the paper's crawl frameworks over a shared
// environment: SMARTCRAWL (§3, with the QSel-Simple, QSel-Est-Biased and
// QSel-Est-Unbiased selection strategies of §3.2/§5 and the ΔD-removal
// optimization of §4.2), the QSel-Bound variant with its worst-case
// guarantee (§4.1, Algorithm 3), the IDEALCRAWL oracle (QSel-Ideal,
// Algorithm 1), and the two straightforward baselines NAIVECRAWL and
// FULLCRAWL (§1).
//
// All practical crawlers access the hidden database exclusively through a
// deepweb.Searcher; IdealCrawl additionally holds an oracle handle, which
// is the point — it is the unattainable upper bound the estimators chase.
//
// SMARTCRAWL optionally degrades gracefully over a misbehaving interface
// (SmartConfig.MaxAttempts, SmartConfig.Breaker): failed queries are
// requeued with freshly recomputed benefits or forfeited, uncharged
// failures refund their budget unit, truncated result pages are absorbed
// partially with solidity judged on the interface's true result size, and
// the run ends with a fully accounted Resilience report that survives
// checkpoint/resume. Fault classes and accounting rules live in package
// deepweb; docs/OPERATIONS.md is the operator-facing guide.
package crawler

import (
	"errors"
	"fmt"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/index"
	"smartcrawl/internal/match"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Env is the shared crawl environment: the local database, the restricted
// search interface, and the entity-resolution black box.
type Env struct {
	Local     *relational.Table
	Searcher  deepweb.Searcher
	Tokenizer *tokenize.Tokenizer
	Matcher   match.Matcher
	// Corpus, when set, is an opened corpus cache for Local: selection
	// resolves q(D) through its block-compressed, memory-mapped inverted
	// index instead of building index.InvertedIDs on the heap, and the
	// engine routes pool generation through its dictionary. The cache
	// MUST have been built over exactly this Local table (the engine
	// validates record counts); results are then byte-identical to the
	// in-memory path. Nil keeps the heap index.
	Corpus *index.CorpusFile
	// OnStep, when set, is invoked after every issued query with the
	// recorded step — progress reporting for long crawls. It runs on the
	// crawl goroutine; keep it fast.
	OnStep func(Step)
	// Obs, when set, observes the crawl: per-query events with estimated
	// vs realized benefit, selection-round and phase timings, dispatcher
	// latency. Nil disables all instrumentation at the cost of one
	// branch per hook; observation never changes crawl results.
	Obs *obs.Obs
}

func (e *Env) validate() error {
	if err := e.validateFederated(); err != nil {
		return err
	}
	if e.Searcher == nil {
		return errors.New("crawler: no searcher")
	}
	return nil
}

// validateFederated is validate without the searcher requirement: a
// federated crawl carries its searchers per interface (see
// NewFederatedSmart) and may leave Env.Searcher nil.
func (e *Env) validateFederated() error {
	switch {
	case e == nil:
		return errors.New("crawler: nil environment")
	case e.Local == nil || e.Local.Len() == 0:
		return errors.New("crawler: empty local database")
	case e.Tokenizer == nil:
		return errors.New("crawler: no tokenizer")
	case e.Matcher == nil:
		return errors.New("crawler: no matcher")
	}
	return nil
}

// Step records one issued query for tracing and for coverage-vs-budget
// curves.
type Step struct {
	Query             deepweb.Query
	EstimatedBenefit  float64
	NewlyCovered      int
	CumulativeCovered int
	ResultSize        int
	// NewHidden lists the hidden record IDs first crawled by this query
	// (≤ k entries), letting the harness rebuild coverage-vs-budget
	// curves from a single run.
	NewHidden []int
	// Iface is the index of the interface this query was issued against —
	// always 0 for single-interface crawls, the Interface slice index for
	// federated ones (see NewFederatedSmart). It rides through checkpoints
	// and the WAL so a federated crawl resumes and replays per interface.
	Iface int
}

// Result is the outcome of a crawl run.
type Result struct {
	// Covered[d] reports whether local record d was covered by some
	// issued query's result.
	Covered []bool
	// CoveredCount is the number of true entries in Covered.
	CoveredCount int
	// QueriesIssued counts queries actually sent (≤ budget).
	QueriesIssued int
	// Steps traces every issued query in order.
	Steps []Step
	// Matches maps each covered local record ID to the hidden record
	// that covered it (first match wins) — the input to enrichment.
	Matches map[int]*relational.Record
	// Crawled holds every distinct hidden record retrieved, keyed by
	// hidden record ID.
	Crawled map[int]*relational.Record
	// Resilience is the graceful-degradation report of a SMARTCRAWL run
	// with fault tolerance enabled (SmartConfig.MaxAttempts/Breaker); nil
	// otherwise. Checkpoints persist it so resumed runs report
	// cumulatively.
	Resilience *Resilience
}

// Crawler runs a crawl under a query budget.
type Crawler interface {
	// Name identifies the framework in experiment output.
	Name() string
	// Run issues at most budget queries and returns the crawl result.
	Run(budget int) (*Result, error)
}

// tracker accumulates coverage state shared by all frameworks.
type tracker struct {
	env    *Env
	joiner *match.Joiner
	res    *Result
	// names holds the interface names of a federated crawl, indexed by
	// interface index; nil for every single-interface framework, which
	// keeps their obs output untagged and byte-identical to before
	// federation existed.
	names []string
	// ifm holds the per-interface obs metric handles aligned with names;
	// nil when obs is disabled or the crawl is not federated.
	ifm []*obs.IfaceMetrics
}

func newTracker(env *Env) *tracker {
	n := env.Local.Len()
	return &tracker{
		env:    env,
		joiner: match.NewJoiner(env.Local.Records, env.Tokenizer, env.Matcher),
		res: &Result{
			Covered: make([]bool, n),
			Matches: make(map[int]*relational.Record),
			Crawled: make(map[int]*relational.Record),
		},
	}
}

// absorb records a query result: returns the local record IDs newly
// covered by it and logs the step.
func (t *tracker) absorb(q deepweb.Query, benefit float64, recs []*relational.Record) []int {
	return t.absorbSized(q, benefit, recs, len(recs), t.env.Searcher.K(), 0)
}

// absorbSized is absorb for results whose true size differs from the
// records in hand: a truncated page carries len(recs) records but the
// interface matched resultSize. The step trace and the solidity decision
// (resultSize < k drives both the obs event and §4.2 ΔD replay on resume)
// use the true size, so a cut page is never mistaken for a solid result.
// k is the result limit of the interface that answered (interfaces of a
// federated crawl differ in k) and iface its index (0 when single).
func (t *tracker) absorbSized(q deepweb.Query, benefit float64, recs []*relational.Record, resultSize, k, iface int) []int {
	var newly []int
	var newHidden []int
	for _, h := range recs {
		if _, ok := t.res.Crawled[h.ID]; !ok {
			t.res.Crawled[h.ID] = h
			newHidden = append(newHidden, h.ID)
		}
		for _, d := range t.joiner.Matches(h) {
			if t.res.Covered[d] {
				continue
			}
			t.res.Covered[d] = true
			t.res.CoveredCount++
			t.res.Matches[d] = h
			newly = append(newly, d)
		}
	}
	t.res.QueriesIssued++
	step := Step{
		Query:             q,
		EstimatedBenefit:  benefit,
		NewlyCovered:      len(newly),
		CumulativeCovered: t.res.CoveredCount,
		ResultSize:        resultSize,
		NewHidden:         newHidden,
		Iface:             iface,
	}
	t.res.Steps = append(t.res.Steps, step)
	solid := resultSize < k
	if o := t.env.Obs; o != nil {
		name := ""
		if iface < len(t.names) {
			name = t.names[iface]
		}
		o.QueryIface(name, q.Key(), benefit, resultSize, len(newly), t.res.CoveredCount, solid)
	}
	if iface < len(t.ifm) && t.ifm[iface] != nil {
		m := t.ifm[iface]
		m.Queries.Inc()
		m.Covered.Add(int64(len(newly)))
		if solid {
			m.Solid.Inc()
		}
	}
	if t.env.OnStep != nil {
		t.env.OnStep(step)
	}
	return newly
}

// issue sends q through the environment searcher, translating budget
// exhaustion into a clean stop signal.
func (t *tracker) issue(q deepweb.Query) ([]*relational.Record, bool, error) {
	recs, err := t.env.Searcher.Search(q)
	if err != nil {
		if errors.Is(err, deepweb.ErrBudgetExhausted) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("crawler: issuing %q: %w", q, err)
	}
	return recs, true, nil
}
