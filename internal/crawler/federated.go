package crawler

import (
	"errors"
	"fmt"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/sample"
)

// Interface is one hidden-database interface of a federated crawl: its
// searcher (already composed with whatever fault-injection, rate-limit, and
// retry layers the caller wants — see internal/federate), its own sample
// and estimator (interfaces have different contents, so benefit estimation
// is strictly per interface), and its own circuit breaker. The slice index
// an Interface occupies in NewFederatedSmart is its interface ID: it tags
// steps, WAL records, and checkpoints, namespaces hidden record IDs, and
// breaks allocation ties, so the order must be stable across sessions for
// a federated crawl to resume byte-identically.
type Interface struct {
	// Name labels the interface in obs metrics and traces. Required and
	// unique within a federation.
	Name string
	// Searcher is the interface handle. Its K() may differ per interface;
	// solidity and §4.2 ΔD removal are judged against the issuing
	// interface's k.
	Searcher deepweb.Searcher
	// Sample is this interface's hidden-database sample Hs with its ratio
	// θ; nil runs this interface sample-free (QSel-Simple).
	Sample *sample.Sample
	// Estimator selects this interface's benefit estimator; nil defaults
	// like NewSmart (Biased with a sample, Frequency without).
	Estimator estimator.Estimator
	// Breaker, when non-nil, gates rounds allocated to this interface; an
	// open breaker makes the allocator fall through to the next-ranked
	// interface instead of holding the whole crawl.
	Breaker *deepweb.Breaker
}

// NewFederatedSmart constructs a SMARTCRAWL crawler over a set of
// interfaces H1..Hn sharing one global budget. Round by round the loop
// allocates the next batch to the interface whose best unissued query
// promises the largest marginal benefit (per-interface estimator state,
// deterministic tie-break by interface index); results merge into one
// coverage set with cross-interface entity dedupe via the shared Joiner.
// With a single interface the run is byte-identical — query log, coverage,
// checkpoint — to NewSmart over that interface's searcher, because it is
// the same loop.
//
// Per-interface knobs live on Interface; the config's Sample, Estimator,
// and Breaker fields must be unset. EagerSelection is incompatible with
// more than one interface (the allocator ranks interfaces through their
// lazy queues).
func NewFederatedSmart(env *Env, cfg SmartConfig, ifaces []Interface) (*Smart, error) {
	if err := env.validateFederated(); err != nil {
		return nil, err
	}
	if len(ifaces) == 0 {
		return nil, errors.New("crawler: federated crawl needs at least one interface")
	}
	if cfg.Sample != nil || cfg.Estimator != nil || cfg.Breaker != nil {
		return nil, errors.New("crawler: federated crawl takes Sample/Estimator/Breaker per interface, not in SmartConfig")
	}
	if cfg.EagerSelection && len(ifaces) > 1 {
		return nil, errors.New("crawler: EagerSelection is incompatible with multiple interfaces")
	}
	own := append([]Interface(nil), ifaces...)
	seen := make(map[string]bool, len(own))
	for i := range own {
		h := &own[i]
		if h.Name == "" {
			h.Name = fmt.Sprintf("h%d", i+1)
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("crawler: duplicate interface name %q", h.Name)
		}
		seen[h.Name] = true
		if h.Searcher == nil {
			return nil, fmt.Errorf("crawler: interface %q has no searcher", h.Name)
		}
		if h.Estimator == nil {
			if h.Sample != nil {
				h.Estimator = estimator.Biased{}
			} else {
				h.Estimator = estimator.Frequency{}
			}
		}
		if h.Sample == nil {
			if _, ok := h.Estimator.(estimator.Frequency); !ok {
				return nil, fmt.Errorf("crawler: interface %q: sample-based estimators require a sample", h.Name)
			}
		} else if h.Sample.Theta <= 0 {
			return nil, fmt.Errorf("crawler: interface %q: sample has non-positive theta %v", h.Name, h.Sample.Theta)
		}
		if cfg.OnlineCalibration && h.Sample != nil {
			return nil, fmt.Errorf("crawler: interface %q: OnlineCalibration replaces the sample; supply one or the other", h.Name)
		}
	}
	return &Smart{env: env, cfg: cfg, ifaces: own}, nil
}

// Interfaces returns the federation's interface names in index order, or
// nil for a single-interface crawler.
func (s *Smart) Interfaces() []string {
	if len(s.ifaces) == 0 {
		return nil
	}
	names := make([]string, len(s.ifaces))
	for i := range s.ifaces {
		names[i] = s.ifaces[i].Name
	}
	return names
}
