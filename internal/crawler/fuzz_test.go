package crawler_test

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// FuzzLoadResult ensures arbitrary (and adversarial) checkpoint bytes
// never panic the loader — they either parse into a consistent Result or
// fail with an error.
func FuzzLoadResult(f *testing.F) {
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"covered":[true,false],"steps":[{"query":["a"],"result_size":3}]}`)
	f.Add(`{"version":1,"crawled":[{"id":5,"values":["x"]}],"matches":[{"local":0,"hidden":5}]}`)
	f.Add(`{"version":99}`)
	f.Add(`not json at all`)
	f.Add(`[]`)
	f.Add(`{"version":1,"matches":[{"local":0,"hidden":7}]}`)
	// v2 seeds: a genuine checkpoint (written by SaveResult, so the CRC
	// and wrapper are exactly right), plus wrappers whose checksums are
	// valid but whose payloads violate internal invariants — the shapes
	// the structural validator, not the CRC, must reject.
	res := &crawler.Result{
		Covered: []bool{true, false}, CoveredCount: 1, QueriesIssued: 1,
		Matches: map[int]*relational.Record{0: {ID: 5, Values: []string{"x"}}},
		Crawled: map[int]*relational.Record{5: {ID: 5, Values: []string{"x"}}},
		Steps: []crawler.Step{{Query: deepweb.Query{"a"}, NewlyCovered: 1,
			CumulativeCovered: 1, ResultSize: 3, NewHidden: []int{5}}},
	}
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	v2 := func(payload string) string {
		return fmt.Sprintf(`{"version":2,"journal_seq":7,"crc32":%d,"payload":%s}`,
			crc32.ChecksumIEEE([]byte(payload)), payload)
	}
	f.Add(v2(`{"version":2,"covered_count":5,"covered":[true]}`))                                                                                       // popcount lie
	f.Add(v2(`{"version":2,"queries_issued":0,"steps":[{"query":["a"]}]}`))                                                                             // more steps than queries
	f.Add(v2(`{"version":1}`))                                                                                                                          // version mismatch inside wrapper
	f.Add(v2(`{"version":2,"covered":[true],"covered_count":1,"queries_issued":1,"steps":[{"query":["a"],"newly_covered":1,"cumulative_covered":9}]}`)) // broken cumulative chain
	f.Add(`{"version":2,"journal_seq":1,"crc32":12345,"payload":{"version":2}}`)                                                                        // wrong CRC
	f.Add(`{"version":2,"payload":{"version":2}}`)                                                                                                      // missing CRC
	f.Fuzz(func(t *testing.T, s string) {
		res, err := crawler.LoadResult(strings.NewReader(s))
		if err != nil {
			return
		}
		// A successfully loaded checkpoint must be internally
		// consistent: the coverage count matches the bitmap, and every
		// match points at a crawled record.
		pop := 0
		for _, c := range res.Covered {
			if c {
				pop++
			}
		}
		if pop != res.CoveredCount {
			t.Fatalf("loaded CoveredCount %d but %d bits set", res.CoveredCount, pop)
		}
		if res.QueriesIssued < len(res.Steps) {
			t.Fatalf("loaded %d steps but only %d queries issued", len(res.Steps), res.QueriesIssued)
		}
		for d, h := range res.Matches {
			if h == nil {
				t.Fatalf("match %d is nil", d)
			}
			if _, ok := res.Crawled[h.ID]; !ok {
				t.Fatalf("match %d references uncrawled %d", d, h.ID)
			}
		}
	})
}
