package crawler_test

import (
	"strings"
	"testing"

	"smartcrawl/internal/crawler"
)

// FuzzLoadResult ensures arbitrary (and adversarial) checkpoint bytes
// never panic the loader — they either parse into a consistent Result or
// fail with an error.
func FuzzLoadResult(f *testing.F) {
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"covered":[true,false],"steps":[{"query":["a"],"result_size":3}]}`)
	f.Add(`{"version":1,"crawled":[{"id":5,"values":["x"]}],"matches":[{"local":0,"hidden":5}]}`)
	f.Add(`{"version":99}`)
	f.Add(`not json at all`)
	f.Add(`[]`)
	f.Add(`{"version":1,"matches":[{"local":0,"hidden":7}]}`)
	f.Fuzz(func(t *testing.T, s string) {
		res, err := crawler.LoadResult(strings.NewReader(s))
		if err != nil {
			return
		}
		// A successfully loaded checkpoint must be internally
		// consistent: every match points at a crawled record.
		for d, h := range res.Matches {
			if h == nil {
				t.Fatalf("match %d is nil", d)
			}
			if _, ok := res.Crawled[h.ID]; !ok {
				t.Fatalf("match %d references uncrawled %d", d, h.ID)
			}
		}
	})
}
