//go:build race

package crawler

// The race detector instruments allocations, so alloc-count guards are
// meaningless under -race.
const raceDetectorOn = true
