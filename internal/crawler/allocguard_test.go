package crawler

// Allocation-regression guard for the steady-state selection kernel. The
// interning refactor took the per-iteration remove/rescore path to zero
// heap allocations (BENCH_hotpath.json); this test pins that so a later
// change can't quietly reintroduce per-iteration garbage. Wired into
// `make check`.

import "testing"

func TestSteadyStateRemoveAllocFree(t *testing.T) {
	if raceDetectorOn {
		t.Skip("race detector instruments allocations; guard only meaningful without -race")
	}
	if testing.Short() {
		t.Skip("builds the full benchmark universe")
	}
	u := newBenchUniverse(t)
	st := newBenchSelState(u)
	n := len(u.in.Local.Records)
	d := 0
	// remove() on an already-removed record is a no-op, so cycling d keeps
	// every run on the steady-state path even after the table drains.
	avg := testing.AllocsPerRun(500, func() {
		st.remove(d)
		st.rescoreOne()
		d = (d + 1) % n
	})
	if avg != 0 {
		t.Fatalf("steady-state remove+rescore allocates %.2f allocs/op, want 0", avg)
	}
}
