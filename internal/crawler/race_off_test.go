//go:build !race

package crawler

const raceDetectorOn = false
