package crawler

import (
	"errors"
	"fmt"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/index"
	"smartcrawl/internal/lazyheap"
	"smartcrawl/internal/querypool"
)

// Ideal is IDEALCRAWL: the QSel-Ideal greedy of Algorithm 1, which selects
// at each iteration the query with the largest *true* benefit
// |q(D)_cover|. True benefits require knowing each query's result before
// issuing it — the paper's "chicken-and-egg" problem — so Ideal holds an
// oracle handle to the hidden database and exists purely as the upper
// bound the estimators are measured against. Oracle peeks are not charged
// to the budget; only the b greedy selections are.
type Ideal struct {
	env    *Env
	oracle *hidden.Database
	cfg    querypool.Config
}

// NewIdeal constructs the oracle crawler. The environment's Searcher is
// ignored for benefit computation (results come from the oracle) but its
// budget accounting semantics are reproduced: exactly one query charge per
// selection.
func NewIdeal(env *Env, oracle *hidden.Database, poolCfg querypool.Config) (*Ideal, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, errors.New("crawler: ideal crawler needs an oracle")
	}
	return &Ideal{env: env, oracle: oracle, cfg: poolCfg}, nil
}

// Name implements Crawler.
func (c *Ideal) Name() string { return "idealcrawl" }

// Run implements Crawler. Results are deterministic (§2), so each query's
// covered set is precomputed once; the greedy then runs entirely on those
// sets with the same lazy-invalidation machinery SMARTCRAWL uses, giving
// an exact argmax-by-true-benefit at every step.
func (c *Ideal) Run(budget int) (*Result, error) {
	env := c.env
	t := newTracker(env)
	pool := querypool.Generate(env.Local, env.Tokenizer, c.cfg)

	// Precompute, per query, the local records its top-k result covers.
	type iqstate struct {
		q       *querypool.Query
		covers  []int // local IDs covered by q's result
		benefit int   // live |covers ∩ uncovered|
		issued  bool
	}
	states := make([]*iqstate, pool.Len())
	fwd := index.NewForward()
	heap := lazyheap.New()
	for _, q := range pool.Queries {
		recs, err := c.oracle.Search(q.Keywords)
		if err != nil {
			return nil, fmt.Errorf("crawler: oracle peek %q: %w", q.Keywords, err)
		}
		covers := t.joiner.CoveredBy(recs)
		if len(covers) == 0 {
			continue
		}
		st := &iqstate{q: q, covers: covers, benefit: len(covers)}
		states[q.ID] = st
		for _, d := range covers {
			fwd.Add(d, q.ID)
		}
		heap.Push(q.ID, float64(st.benefit))
	}

	uncovered := env.Local.Len()
	rescore := func(qid int) (float64, bool) {
		st := states[qid]
		if st == nil || st.issued || st.benefit <= 0 {
			return 0, false
		}
		return float64(st.benefit), true
	}

	counting := deepweb.NewCounting(c.oracle, budget)
	for !counting.Exhausted() && uncovered > 0 {
		qid, benefit, ok := heap.Pop(rescore)
		if !ok {
			break
		}
		st := states[qid]
		st.issued = true
		recs, err := counting.Search(st.q.Keywords)
		if errors.Is(err, deepweb.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		newly := t.absorb(st.q.Keywords, benefit, recs)
		for _, d := range newly {
			for _, q2 := range fwd.Remove(d) {
				if st2 := states[q2]; st2 != nil && !st2.issued {
					st2.benefit--
					heap.Invalidate(q2)
				}
			}
			uncovered--
		}
	}
	return t.res, nil
}
