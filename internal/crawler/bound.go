package crawler

import (
	"errors"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/index"
	"smartcrawl/internal/querypool"
)

// Bound is QSel-Bound (Algorithm 3): like QSel-Simple it selects the query
// with the largest |q(D)|, but it reacts differently after issuing. If the
// query covered everything it matched (|q(ΔD)| = 0) the covered records
// leave D and the query leaves the pool; otherwise only the unmatched
// records q(ΔD) = q(D) − q(D)_cover leave D and the query STAYS in the
// pool, possibly to be selected (and charged) again. That conservatism
// buys the Lemma 2 guarantee N_bound ≥ (1 − |ΔD|/b)·N_ideal at the cost of
// wasted budget — which is why the paper sticks with QSel-Simple in
// practice. Implemented with an eager argmax scan: re-selection of kept
// queries breaks the monotone-priority invariant the lazy heap needs.
type Bound struct {
	env *Env
	cfg querypool.Config
	// Reselections counts how many issued queries were repeat selections
	// of a query kept in the pool — the wasted budget the guarantee
	// costs (reported by the E9 bench).
	Reselections int
}

// NewBound constructs a QSel-Bound crawler.
func NewBound(env *Env, poolCfg querypool.Config) (*Bound, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	return &Bound{env: env, cfg: poolCfg}, nil
}

// Name implements Crawler.
func (c *Bound) Name() string { return "qsel-bound" }

// Run implements Crawler.
func (c *Bound) Run(budget int) (*Result, error) {
	env := c.env
	t := newTracker(env)
	counting := deepweb.NewCounting(env.Searcher, budget)

	pool := querypool.Generate(env.Local, env.Tokenizer, c.cfg)
	invD := index.BuildInverted(env.Local.Records, env.Tokenizer)

	inD := make([]bool, env.Local.Len())
	for i := range inD {
		inD[i] = true
	}
	remaining := env.Local.Len()

	type bqstate struct {
		q      *querypool.Query
		qD     []int
		inPool bool
		issued int
	}
	states := make([]*bqstate, 0, pool.Len())
	for _, q := range pool.Queries {
		qD := invD.Lookup(q.Keywords)
		if len(qD) > 0 {
			states = append(states, &bqstate{q: q, qD: qD, inPool: true})
		}
	}

	liveFreq := func(st *bqstate) int {
		n := 0
		for _, d := range st.qD {
			if inD[d] {
				n++
			}
		}
		return n
	}

	for !counting.Exhausted() && remaining > 0 {
		// Eager argmax |q(D)| over the current pool.
		var best *bqstate
		bestFreq := 0
		for _, st := range states {
			if !st.inPool {
				continue
			}
			if f := liveFreq(st); f > bestFreq {
				best, bestFreq = st, f
			}
		}
		if best == nil {
			break
		}

		recs, err := counting.Search(best.q.Keywords)
		if errors.Is(err, deepweb.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		best.issued++
		if best.issued > 1 {
			c.Reselections++
		}
		t.absorb(best.q.Keywords, float64(bestFreq), recs)

		// q(ΔD) relative to the current D: matched records of q(D)
		// are covered; unmatched ones are the ΔD prediction.
		var qDeltaD []int
		for _, d := range best.qD {
			if inD[d] && !t.res.Covered[d] {
				qDeltaD = append(qDeltaD, d)
			}
		}
		if len(qDeltaD) == 0 {
			// Situation 1: estimate was exact. Remove covered
			// records and retire the query.
			for _, d := range best.qD {
				if inD[d] {
					inD[d] = false
					remaining--
				}
			}
			best.inPool = false
		} else {
			// Situation 2: remove only q(ΔD); keep the query.
			for _, d := range qDeltaD {
				inD[d] = false
				remaining--
			}
		}
	}
	return t.res, nil
}
