package crawler

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// Checkpointing lets a crawl span multiple API-quota windows: the paper's
// motivating quotas (Yelp: 25k requests/day) mean real enrichment jobs
// stop and resume daily. SaveResult serializes a crawl Result; a later
// SMARTCRAWL run passes it as SmartConfig.Resume and continues exactly
// where the previous session stopped — covered records stay covered,
// issued queries are never re-issued, and §4.2 ΔD removals are replayed
// from the step trace, so a resumed crawl is step-for-step identical to an
// uninterrupted one with the combined budget.

// checkpointVersion guards the serialization format.
const checkpointVersion = 1

type checkpointFile struct {
	Version       int              `json:"version"`
	CoveredCount  int              `json:"covered_count"`
	QueriesIssued int              `json:"queries_issued"`
	Covered       []bool           `json:"covered"`
	Steps         []checkpointStep `json:"steps"`
	Crawled       []wireRecord     `json:"crawled"`
	Matches       []matchPair      `json:"matches"`
	// Resilience persists the graceful-degradation report; absent for
	// runs without fault tolerance (and in pre-resilience checkpoints,
	// which load fine — the field is optional, version stays 1). Resumed
	// runs report cumulatively, and forfeited queries — absent from
	// Steps — are naturally re-eligible for selection.
	Resilience *Resilience `json:"resilience,omitempty"`
}

type checkpointStep struct {
	Query             []string `json:"query"`
	EstimatedBenefit  float64  `json:"estimated_benefit"`
	NewlyCovered      int      `json:"newly_covered"`
	CumulativeCovered int      `json:"cumulative_covered"`
	ResultSize        int      `json:"result_size"`
	NewHidden         []int    `json:"new_hidden,omitempty"`
}

type wireRecord struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

type matchPair struct {
	Local  int `json:"local"`
	Hidden int `json:"hidden"`
}

// SaveResult writes res as a JSON checkpoint.
func SaveResult(w io.Writer, res *Result) error {
	cf := checkpointFile{
		Version:       checkpointVersion,
		CoveredCount:  res.CoveredCount,
		QueriesIssued: res.QueriesIssued,
		Covered:       res.Covered,
		Resilience:    res.Resilience,
	}
	for _, s := range res.Steps {
		cf.Steps = append(cf.Steps, checkpointStep{
			Query:             s.Query,
			EstimatedBenefit:  s.EstimatedBenefit,
			NewlyCovered:      s.NewlyCovered,
			CumulativeCovered: s.CumulativeCovered,
			ResultSize:        s.ResultSize,
			NewHidden:         s.NewHidden,
		})
	}
	for id, r := range res.Crawled {
		cf.Crawled = append(cf.Crawled, wireRecord{ID: id, Values: r.Values})
	}
	for d, h := range res.Matches {
		cf.Matches = append(cf.Matches, matchPair{Local: d, Hidden: h.ID})
	}
	// Sort the map-derived sections so checkpoints are byte-deterministic
	// (stable diffs, content-addressable storage).
	sort.Slice(cf.Crawled, func(a, b int) bool { return cf.Crawled[a].ID < cf.Crawled[b].ID })
	sort.Slice(cf.Matches, func(a, b int) bool { return cf.Matches[a].Local < cf.Matches[b].Local })
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// LoadResult reads a checkpoint written by SaveResult.
func LoadResult(r io.Reader) (*Result, error) {
	var cf checkpointFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("crawler: decoding checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("crawler: checkpoint version %d unsupported (want %d)",
			cf.Version, checkpointVersion)
	}
	res := &Result{
		Covered:       cf.Covered,
		CoveredCount:  cf.CoveredCount,
		QueriesIssued: cf.QueriesIssued,
		Matches:       make(map[int]*relational.Record, len(cf.Matches)),
		Crawled:       make(map[int]*relational.Record, len(cf.Crawled)),
		Resilience:    cf.Resilience,
	}
	for _, s := range cf.Steps {
		res.Steps = append(res.Steps, Step{
			Query:             deepweb.Query(s.Query),
			EstimatedBenefit:  s.EstimatedBenefit,
			NewlyCovered:      s.NewlyCovered,
			CumulativeCovered: s.CumulativeCovered,
			ResultSize:        s.ResultSize,
			NewHidden:         s.NewHidden,
		})
	}
	for _, wr := range cf.Crawled {
		res.Crawled[wr.ID] = &relational.Record{ID: wr.ID, Values: wr.Values}
	}
	for _, mp := range cf.Matches {
		h, ok := res.Crawled[mp.Hidden]
		if !ok {
			return nil, fmt.Errorf("crawler: checkpoint match references uncrawled record %d", mp.Hidden)
		}
		res.Matches[mp.Local] = h
	}
	return res, nil
}
