package crawler

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// Checkpointing lets a crawl span multiple API-quota windows: the paper's
// motivating quotas (Yelp: 25k requests/day) mean real enrichment jobs
// stop and resume daily. SaveResult serializes a crawl Result; a later
// SMARTCRAWL run passes it as SmartConfig.Resume and continues exactly
// where the previous session stopped — covered records stay covered,
// issued queries are never re-issued, and §4.2 ΔD removals are replayed
// from the step trace, so a resumed crawl is step-for-step identical to an
// uninterrupted one with the combined budget.
//
// Format history:
//
//	v1 — a bare JSON object with the crawl state inline.
//	v2 — the same state as a raw payload wrapped with a CRC32 (IEEE) over
//	     the payload bytes and the WAL journal sequence number the
//	     snapshot is current through (see internal/durable). The CRC
//	     turns a torn or bit-rotted snapshot into a clean load error
//	     instead of silently wrong resume state; the sequence number lets
//	     recovery skip journal records the snapshot already folds in.
//
// SaveResult writes v2; LoadResult reads both.

// checkpointVersion is the format written by SaveResult.
const checkpointVersion = 2

// checkpointV2 is the v2 on-disk wrapper.
type checkpointV2 struct {
	Version    int             `json:"version"`
	JournalSeq uint64          `json:"journal_seq"`
	CRC32      *uint32         `json:"crc32"`
	Payload    json.RawMessage `json:"payload"`
}

type checkpointFile struct {
	Version       int              `json:"version"`
	CoveredCount  int              `json:"covered_count"`
	QueriesIssued int              `json:"queries_issued"`
	Covered       []bool           `json:"covered"`
	Steps         []checkpointStep `json:"steps"`
	Crawled       []wireRecord     `json:"crawled"`
	Matches       []matchPair      `json:"matches"`
	// Resilience persists the graceful-degradation report; absent for
	// runs without fault tolerance (and in pre-resilience checkpoints,
	// which load fine — the field is optional). Resumed runs report
	// cumulatively, and forfeited queries — absent from Steps — are
	// naturally re-eligible for selection.
	Resilience *Resilience `json:"resilience,omitempty"`
}

type checkpointStep struct {
	Query             []string `json:"query"`
	EstimatedBenefit  float64  `json:"estimated_benefit"`
	NewlyCovered      int      `json:"newly_covered"`
	CumulativeCovered int      `json:"cumulative_covered"`
	ResultSize        int      `json:"result_size"`
	NewHidden         []int    `json:"new_hidden,omitempty"`
	// Iface tags the issuing interface of a federated crawl; omitted at
	// zero so single-interface checkpoints keep their exact bytes.
	Iface int `json:"iface,omitempty"`
}

type wireRecord struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

type matchPair struct {
	Local  int `json:"local"`
	Hidden int `json:"hidden"`
}

// SaveResult writes res as a JSON checkpoint (current format version).
func SaveResult(w io.Writer, res *Result) error {
	return SaveResultSeq(w, res, 0)
}

// SaveResultSeq is SaveResult carrying the WAL journal sequence number
// the snapshot is current through: recovery replays only journal records
// with a larger sequence, which is what makes a crash between snapshot
// rename and journal truncation harmless. Output is byte-deterministic
// for a given Result (map-derived sections are sorted).
func SaveResultSeq(w io.Writer, res *Result, journalSeq uint64) error {
	cf := checkpointFile{
		Version:       checkpointVersion,
		CoveredCount:  res.CoveredCount,
		QueriesIssued: res.QueriesIssued,
		Covered:       res.Covered,
		Resilience:    res.Resilience,
	}
	for _, s := range res.Steps {
		cf.Steps = append(cf.Steps, checkpointStep{
			Query:             s.Query,
			EstimatedBenefit:  s.EstimatedBenefit,
			NewlyCovered:      s.NewlyCovered,
			CumulativeCovered: s.CumulativeCovered,
			ResultSize:        s.ResultSize,
			NewHidden:         s.NewHidden,
			Iface:             s.Iface,
		})
	}
	for id, r := range res.Crawled {
		cf.Crawled = append(cf.Crawled, wireRecord{ID: id, Values: r.Values})
	}
	for d, h := range res.Matches {
		cf.Matches = append(cf.Matches, matchPair{Local: d, Hidden: h.ID})
	}
	// Sort the map-derived sections so checkpoints are byte-deterministic
	// (stable diffs, content-addressable storage).
	sort.Slice(cf.Crawled, func(a, b int) bool { return cf.Crawled[a].ID < cf.Crawled[b].ID })
	sort.Slice(cf.Matches, func(a, b int) bool { return cf.Matches[a].Local < cf.Matches[b].Local })
	payload, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("crawler: encoding checkpoint: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload)
	return json.NewEncoder(w).Encode(checkpointV2{
		Version:    checkpointVersion,
		JournalSeq: journalSeq,
		CRC32:      &sum,
		Payload:    payload,
	})
}

// LoadResult reads a checkpoint written by SaveResult (v2 or v1).
func LoadResult(r io.Reader) (*Result, error) {
	res, _, err := LoadResultSeq(r)
	return res, err
}

// LoadResultSeq is LoadResult returning also the journal sequence number
// the snapshot is current through (0 for v1 checkpoints, which predate
// the journal). The checkpoint is validated structurally — checksum,
// coverage popcount, step-trace consistency, match references — so a
// corrupt file yields an error, never a panic or silently wrong state.
func LoadResultSeq(r io.Reader) (*Result, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("crawler: reading checkpoint: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, 0, fmt.Errorf("crawler: decoding checkpoint: %w", err)
	}
	var cf checkpointFile
	var seq uint64
	switch probe.Version {
	case 1:
		if err := json.Unmarshal(data, &cf); err != nil {
			return nil, 0, fmt.Errorf("crawler: decoding checkpoint: %w", err)
		}
	case checkpointVersion:
		var v2 checkpointV2
		if err := json.Unmarshal(data, &v2); err != nil {
			return nil, 0, fmt.Errorf("crawler: decoding checkpoint: %w", err)
		}
		if v2.CRC32 == nil {
			return nil, 0, fmt.Errorf("crawler: checkpoint v2 missing crc32")
		}
		if got := crc32.ChecksumIEEE(v2.Payload); got != *v2.CRC32 {
			return nil, 0, fmt.Errorf("crawler: checkpoint corrupt: crc32 %08x, want %08x", got, *v2.CRC32)
		}
		if err := json.Unmarshal(v2.Payload, &cf); err != nil {
			return nil, 0, fmt.Errorf("crawler: decoding checkpoint payload: %w", err)
		}
		if cf.Version != checkpointVersion {
			return nil, 0, fmt.Errorf("crawler: checkpoint payload version %d under v%d wrapper", cf.Version, checkpointVersion)
		}
		seq = v2.JournalSeq
	default:
		return nil, 0, fmt.Errorf("crawler: checkpoint version %d unsupported (want %d or 1)",
			probe.Version, checkpointVersion)
	}
	if err := cf.validate(); err != nil {
		return nil, 0, err
	}
	res := &Result{
		Covered:       cf.Covered,
		CoveredCount:  cf.CoveredCount,
		QueriesIssued: cf.QueriesIssued,
		Matches:       make(map[int]*relational.Record, len(cf.Matches)),
		Crawled:       make(map[int]*relational.Record, len(cf.Crawled)),
		Resilience:    cf.Resilience,
	}
	for _, s := range cf.Steps {
		res.Steps = append(res.Steps, Step{
			Query:             deepweb.Query(s.Query),
			EstimatedBenefit:  s.EstimatedBenefit,
			NewlyCovered:      s.NewlyCovered,
			CumulativeCovered: s.CumulativeCovered,
			ResultSize:        s.ResultSize,
			NewHidden:         s.NewHidden,
			Iface:             s.Iface,
		})
	}
	for _, wr := range cf.Crawled {
		res.Crawled[wr.ID] = &relational.Record{ID: wr.ID, Values: wr.Values}
	}
	for _, mp := range cf.Matches {
		h, ok := res.Crawled[mp.Hidden]
		if !ok {
			return nil, 0, fmt.Errorf("crawler: checkpoint match references uncrawled record %d", mp.Hidden)
		}
		res.Matches[mp.Local] = h
	}
	return res, seq, nil
}

// validate rejects checkpoints whose internal invariants do not hold —
// the kind of damage a CRC cannot catch when the file was assembled, not
// flipped, wrong (a buggy writer, a hand-edited file, a fuzzer).
func (cf *checkpointFile) validate() error {
	pop := 0
	for _, c := range cf.Covered {
		if c {
			pop++
		}
	}
	if pop != cf.CoveredCount {
		return fmt.Errorf("crawler: checkpoint covered_count %d, but %d covered bits set",
			cf.CoveredCount, pop)
	}
	if cf.QueriesIssued < len(cf.Steps) {
		return fmt.Errorf("crawler: checkpoint has %d steps but only %d queries issued",
			len(cf.Steps), cf.QueriesIssued)
	}
	cum := 0
	for i, s := range cf.Steps {
		if s.NewlyCovered < 0 || s.ResultSize < 0 || s.Iface < 0 {
			return fmt.Errorf("crawler: checkpoint step %d has negative counts", i)
		}
		cum += s.NewlyCovered
		if s.CumulativeCovered != cum {
			return fmt.Errorf("crawler: checkpoint step %d cumulative_covered %d, want %d",
				i, s.CumulativeCovered, cum)
		}
	}
	if cum != cf.CoveredCount {
		return fmt.Errorf("crawler: checkpoint steps cover %d records, covered_count says %d",
			cum, cf.CoveredCount)
	}
	for _, mp := range cf.Matches {
		if mp.Local < 0 || mp.Local >= len(cf.Covered) {
			return fmt.Errorf("crawler: checkpoint match references local record %d outside [0,%d)",
				mp.Local, len(cf.Covered))
		}
		if !cf.Covered[mp.Local] {
			return fmt.Errorf("crawler: checkpoint match for local record %d, which is not covered", mp.Local)
		}
	}
	return nil
}
