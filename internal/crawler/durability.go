package crawler

import "smartcrawl/internal/deepweb"

// PendingQuery is one entry of a selection round that has been journaled
// but not yet resolved: the query and the benefit it was selected under.
// When a crashed session is recovered mid-round, the unresolved tail of
// its last round is handed back as SmartConfig.ResumePending so the
// resumed run re-issues exactly the batch the crashed run had in flight —
// later queries of a batch are selected without seeing earlier results
// (see SmartConfig.BatchSize), so re-selecting them fresh after a crash
// would diverge from the uninterrupted run.
type PendingQuery struct {
	Query   deepweb.Query `json:"query"`
	Benefit float64       `json:"benefit"`
	// Iface is the interface index the round was allocated to (a round is
	// always issued against a single interface, even federated). Omitted
	// at zero, so single-interface journals are byte-identical to the
	// pre-federation format.
	Iface int `json:"iface,omitempty"`
}

// DurabilitySink receives synchronous callbacks from the Algorithm-4
// merge stage, one per event that affects crawl accounting. Every method
// runs on the crawl goroutine (the single writer), in selection order, so
// implementations need no locking to keep a journal consistent with the
// crawl.
//
// Charge attribution is per event, not a counter snapshot: an absorbed
// step always holds exactly one budget charge, and a requeued or
// forfeited attempt holds one iff the interface billed the failure
// (charged == true; refunded attempts pass false). A mid-merge snapshot
// of the budget counter would also include charges for round entries
// still unresolved — which a resumed session re-issues and re-charges —
// so only settled, per-event charges let recovery compute how much quota
// a resumed run actually has left.
//
// An error from any method aborts the crawl: a crawl that cannot persist
// its progress must not keep charging quota.
type DurabilitySink interface {
	// RoundSelected fires after a selection round is chosen and before
	// any of it is dispatched — the write-ahead intent record. sel is a
	// scratch slice the crawl loop reuses next round: implementations
	// must copy anything they retain past the call.
	RoundSelected(sel []PendingQuery, res *Result) error
	// StepAbsorbed fires after a query result has been absorbed into res;
	// step is the step just appended to res.Steps and newlyCovered lists
	// the local record IDs it covered. The absorbed query settles one
	// budget charge.
	StepAbsorbed(res *Result, step Step, newlyCovered []int) error
	// QueryRequeued fires when a failed query returns to the pool for
	// another attempt; charged reports whether the failed attempt was
	// billed (no refund).
	QueryRequeued(q deepweb.Query, attempt int, charged bool, res *Result) error
	// QueryForfeited fires when a failed query is given up on; charged as
	// for QueryRequeued.
	QueryForfeited(q deepweb.Query, attempts int, charged bool, res *Result) error
	// BudgetStopped fires for a query whose dispatch was refused because
	// the budget ran out mid-round; nothing was charged.
	BudgetStopped(q deepweb.Query, res *Result) error
	// RoundCompleted fires after the whole round has been merged — the
	// consistent point for group fsync and journal→snapshot compaction.
	RoundCompleted(res *Result) error
}
