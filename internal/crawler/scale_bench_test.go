package crawler

// Out-of-core scale benchmarks (BENCH_scale.json): the BENCH_hotpath
// workload at 10× corpus size, driven through the external-memory path —
// streaming ingestion into the corpus cache, sampled pool build with
// exact recounting against the mapped index, and the selection-loop
// drain resolving q(D) through memory-mapped posting blocks. Each
// benchmark reports a heap-peak-MB metric (sampled HeapAlloc high-water
// mark) alongside ns/op, and TestScaleMemoryCeiling pins the mapped
// path's heap growth under a fixed budget.
//
// `make bench-scale` runs these; the recorded table lives in
// BENCH_scale.json.

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/index"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// scalePoolSample is the reservoir size of the sampled pool build at 10×
// scale: 20% of the local table, the regime the recall bound was
// validated in (TestGenerateSampledExactSupports).
const scalePoolSample = 3000

// scalePoolConfig keeps the pool density of benchPoolConfig at 10× the
// records: a support threshold is relative to corpus size, so MinSupport
// scales with it (2 at |D|=1500 → 20 at |D|=15000). Keeping the absolute
// threshold would floor the sample-scaled support at 1 and turn FP-Growth
// into full enumeration — the regime sampling exists to avoid.
func scalePoolConfig() querypool.Config {
	return querypool.Config{MinSupport: 20, MaxQueryLen: 3}
}

// scaleUniverse is the 10× BENCH_hotpath workload plus its corpus cache,
// generated once per test process: building the 200k-record instance and
// its on-disk index takes seconds, and every scale benchmark shares it
// read-only.
var scaleShared struct {
	once sync.Once
	u    *benchUniverse
	cf   *index.CorpusFile
	err  error
}

func scaleUniverse(tb testing.TB) (*benchUniverse, *index.CorpusFile) {
	tb.Helper()
	scaleShared.once.Do(func() {
		in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: 200000,
			HiddenSize: 50000,
			LocalSize:  15000,
			Seed:       7,
		})
		if err != nil {
			scaleShared.err = err
			return
		}
		tk := tokenize.New()
		scaleShared.u = &benchUniverse{
			in:  in,
			tk:  tk,
			m:   match.NewExactOn(tk, in.LocalKey, in.HiddenKey),
			smp: sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(7)),
			k:   100,
		}
		dir, err := os.MkdirTemp("", "smartcrawl-scale-bench-")
		if err != nil {
			scaleShared.err = err
			return
		}
		defer os.RemoveAll(dir) // the mapping outlives the unlinked file
		path := filepath.Join(dir, "scale.scorp")
		b := index.NewCorpusBuilder(index.IngestConfig{TmpDir: dir})
		for id, r := range in.Local.Records {
			if err := b.AddRecord(id, r.Tokens(tk)); err != nil {
				scaleShared.err = err
				return
			}
		}
		if err := b.Finalize(path); err != nil {
			scaleShared.err = err
			return
		}
		scaleShared.cf, scaleShared.err = index.OpenCorpus(path)
	})
	if scaleShared.err != nil {
		tb.Fatal(scaleShared.err)
	}
	return scaleShared.u, scaleShared.cf
}

// heapWatch samples runtime.HeapAlloc in the background and records the
// high-water mark — a portable stand-in for peak RSS that responds to
// the benchmark's own allocations rather than the process lifetime.
type heapWatch struct {
	stop chan struct{}
	wg   sync.WaitGroup
	peak atomic.Uint64
	base uint64
}

func watchHeap() *heapWatch {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := &heapWatch{stop: make(chan struct{}), base: ms.HeapAlloc}
	h.peak.Store(ms.HeapAlloc)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if a := ms.HeapAlloc; a > h.peak.Load() {
					h.peak.Store(a)
				}
			}
		}
	}()
	return h
}

// end stops sampling and returns (peak, peak−baseline) in MiB.
func (h *heapWatch) end() (peakMB, growthMB float64) {
	close(h.stop)
	h.wg.Wait()
	p := h.peak.Load()
	return float64(p) / (1 << 20), float64(p-h.base) / (1 << 20)
}

// newScaleSelState is newBenchSelState over the mapped corpus: pool
// generation reuses the cache dictionary, mines a reservoir sample with
// exact support recounting against the mapped index, and selection
// resolves q(D) through the mapped posting blocks.
func newScaleSelState(u *benchUniverse, cf *index.CorpusFile) *benchSelState {
	cfg := scalePoolConfig()
	cfg.Dict = cf.Dict
	cfg.SampleSize = scalePoolSample
	cfg.SampleSeed = 7
	cfg.Count = cf.Inv.Count
	pool := querypool.Generate(u.in.Local, u.tk, cfg)
	env := &Env{Local: u.in.Local, Tokenizer: u.tk, Matcher: u.m, Corpus: cf}
	joiner := match.NewJoiner(u.in.Local.Records, u.tk, u.m)

	s := &benchSelState{theta: u.smp.Theta, k: u.k, est: estimator.Biased{}}
	s.sel = newSelection(env, pool, selectionStats{smp: u.smp, joiner: joiner}, 1, 1, s.benefit)
	return s
}

// BenchmarkScaleIngest measures streaming ingestion into the corpus
// cache at 1× and 10× input, with the spill buffer pinned small enough
// that the 10× build goes external — the heap-peak-MB metric must stay
// flat across the two sizes (bounded by the buffer, not the corpus).
func BenchmarkScaleIngest(b *testing.B) {
	u, _ := scaleUniverse(b)
	// Pre-tokenize outside the timed loop so the metric isolates the
	// sort/spill/merge pipeline, and the token slices (which scale with
	// input size) don't drown the bounded buffer in the heap watch.
	tokens := make([][]string, len(u.in.Local.Records))
	for id, r := range u.in.Local.Records {
		tokens[id] = r.Tokens(u.tk)
	}
	for _, size := range []struct {
		name string
		n    int
	}{{"1x", 1500}, {"10x", 15000}} {
		b.Run(size.name, func(b *testing.B) {
			dir := b.TempDir()
			b.ReportAllocs()
			w := watchHeap()
			b.ResetTimer()
			spills := 0
			for i := 0; i < b.N; i++ {
				path := filepath.Join(dir, "bench.scorp")
				bl := index.NewCorpusBuilder(index.IngestConfig{
					TmpDir:              dir,
					MaxBufferedPostings: 1 << 14,
				})
				for id := 0; id < size.n; id++ {
					if err := bl.AddRecord(id, tokens[id]); err != nil {
						b.Fatal(err)
					}
				}
				spills = bl.Spills()
				if err := bl.Finalize(path); err != nil {
					b.Fatal(err)
				}
				os.Remove(path)
			}
			b.StopTimer()
			peak, _ := w.end()
			b.ReportMetric(peak, "heap-peak-MB")
			b.ReportMetric(float64(spills), "spill-runs")
		})
	}
}

// BenchmarkScalePoolBuild measures the sampled pool build at 10×: FP-
// Growth over the reservoir, then exact support recounting against the
// mapped index. The full-corpus mining it replaces is the "full" cell.
func BenchmarkScalePoolBuild(b *testing.B) {
	u, cf := scaleUniverse(b)
	b.Run("sampled", func(b *testing.B) {
		b.ReportAllocs()
		w := watchHeap()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := scalePoolConfig()
			cfg.Dict = cf.Dict
			cfg.SampleSize = scalePoolSample
			cfg.SampleSeed = 7
			cfg.Count = cf.Inv.Count
			if pool := querypool.Generate(u.in.Local, u.tk, cfg); pool.Len() == 0 {
				b.Fatal("empty pool")
			}
		}
		b.StopTimer()
		peak, _ := w.end()
		b.ReportMetric(peak, "heap-peak-MB")
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		w := watchHeap()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pool := querypool.Generate(u.in.Local, u.tk, scalePoolConfig()); pool.Len() == 0 {
				b.Fatal("empty pool")
			}
		}
		b.StopTimer()
		peak, _ := w.end()
		b.ReportMetric(peak, "heap-peak-MB")
	})
}

// BenchmarkScaleSelectionLoop measures the full selection-loop drain at
// 10× with q(D) resolved through the mapped index — the acceptance bar
// is ns/op-per-record within 2× of BenchmarkSelectionLoop's in-memory
// figure at 1×.
func BenchmarkScaleSelectionLoop(b *testing.B) {
	u, cf := scaleUniverse(b)
	b.ReportAllocs()
	w := watchHeap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := newScaleSelState(u, cf)
		b.StartTimer()
		drained := 0
		for {
			qid, _, ok := st.pop()
			if !ok {
				break
			}
			st.cover(qid)
			drained++
		}
		if drained == 0 {
			b.Fatal("selection loop drained nothing")
		}
	}
	b.StopTimer()
	peak, _ := w.end()
	b.ReportMetric(peak, "heap-peak-MB")
}

// TestScaleMemoryCeiling guards the out-of-core contract: at 10× corpus,
// building the sampled pool and draining the selection loop over the
// mapped index must not grow the heap by more than scaleHeapBudgetMB
// beyond the dataset itself. The in-memory path at this scale holds the
// full inverted index and per-query posting copies on the heap; the
// mapped path's growth is the selection state alone.
func TestScaleMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("10× corpus build in -short mode")
	}
	const scaleHeapBudgetMB = 256
	u, cf := scaleUniverse(t)
	w := watchHeap()
	st := newScaleSelState(u, cf)
	drained := 0
	for {
		qid, _, ok := st.pop()
		if !ok {
			break
		}
		st.cover(qid)
		drained++
	}
	_, growth := w.end()
	if drained == 0 {
		t.Fatal("selection loop drained nothing")
	}
	t.Logf("mapped selection at 10×: %d queries drained, heap growth %.1f MB (budget %d MB)", drained, growth, scaleHeapBudgetMB)
	if growth > scaleHeapBudgetMB {
		t.Fatalf("mapped selection heap growth %.1f MB exceeds the %d MB budget", growth, scaleHeapBudgetMB)
	}
}
