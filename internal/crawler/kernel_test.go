package crawler

// Equivalence tests pinning the interned integer kernels against the
// retained string reference implementations, plus the bucketOf pin. These
// are in-package: both sides of each equivalence are unexported.

import (
	"math/bits"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// TestCountSatisfyingKernelMatchesString checks, on random corpora, that
// countSatisfyingIDs over interned sorted token sets returns exactly what
// the string countSatisfying returns over the equivalent map sets — for
// random position subsets and random queries, including queries with
// out-of-vocabulary keywords (which must count zero on both sides when
// the query resolves at all; unresolvable queries cannot arise in the
// production path, where keywords always come from the dictionary).
func TestCountSatisfyingKernelMatchesString(t *testing.T) {
	rng := stats.NewRNG(1234)
	vocab := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	dict := tokenize.BuildDict(vocab)

	for trial := 0; trial < 80; trial++ {
		nSets := 1 + rng.Intn(30)
		mapSets := make([]map[string]struct{}, nSets)
		idSets := make([][]uint32, nSets)
		for i := range mapSets {
			k := rng.Intn(6)
			set := make(map[string]struct{}, k)
			words := make([]string, 0, k)
			for j := 0; j < k; j++ {
				w := vocab[rng.Intn(len(vocab))]
				set[w] = struct{}{}
				words = append(words, w)
			}
			mapSets[i] = set
			idSets[i] = dict.SortedSet(words)
		}
		// A random subset of positions, mirroring the matched-position
		// lists the joiner produces.
		var pos []int
		var pos32 []int32
		for i := 0; i < nSets; i++ {
			if rng.Intn(2) == 0 {
				pos = append(pos, i)
				pos32 = append(pos32, int32(i))
			}
		}
		for probe := 0; probe < 20; probe++ {
			qlen := 1 + rng.Intn(3)
			q := make(deepweb.Query, qlen)
			for j := range q {
				q[j] = vocab[rng.Intn(len(vocab))]
			}
			qids, ok := dict.Resolve(q)
			if !ok {
				t.Fatalf("trial %d: in-vocab query %v failed to resolve", trial, q)
			}
			want := countSatisfying(pos, mapSets, q)
			got := countSatisfyingIDs(pos32, idSets, qids)
			if got != want {
				t.Fatalf("trial %d: countSatisfyingIDs(%v) = %d, string reference = %d",
					trial, q, got, want)
			}
		}
	}
}

// oldBucketOf is the hand-rolled bit-length loop the calibration buckets
// used before the math/bits rewrite, kept verbatim as the test oracle.
func oldBucketOf(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// TestBucketOfMatchesShiftLoop pins bits.Len(uint(n)) — the production
// bucketOf in Smart.Run — to the original shift-loop definition across
// small values and large magnitudes.
func TestBucketOfMatchesShiftLoop(t *testing.T) {
	bucketOf := func(n int) int { return bits.Len(uint(n)) }
	for n := 0; n <= 1<<16; n++ {
		if got, want := bucketOf(n), oldBucketOf(n); got != want {
			t.Fatalf("bucketOf(%d) = %d, shift loop = %d", n, got, want)
		}
	}
	for _, n := range []int{1 << 20, 1<<20 + 1, 1<<30 - 1, 1 << 30, 1<<62 - 1, 1 << 62} {
		if got, want := bucketOf(n), oldBucketOf(n); got != want {
			t.Fatalf("bucketOf(%d) = %d, shift loop = %d", n, got, want)
		}
	}
}

// TestSelectionRecomputeMatchesScratch cross-checks the incremental
// sample-match statistics against recompute-from-scratch after a burst of
// removals: recompute derives freqD/matchS from the considered set and
// the precomputed counts, so agreement here means the per-removal
// subtractions never drift.
func TestSelectionRecomputeMatchesScratch(t *testing.T) {
	u := newBenchUniverse(t)
	st := newBenchSelState(u)
	rng := stats.NewRNG(5)
	n := len(u.in.Local.Records)
	for step := 0; step < 200; step++ {
		d := rng.Intn(n)
		if !st.sel.considered[d] {
			continue
		}
		st.sel.remove(d)
	}
	for qid, qs := range st.sel.states {
		if qs == nil {
			continue
		}
		freqD, matchS := qs.freqD, qs.matchS
		st.sel.recompute(qs)
		if qs.freqD != freqD || qs.matchS != matchS {
			t.Fatalf("query %d: incremental (freqD=%d matchS=%d) != recompute (freqD=%d matchS=%d)",
				qid, freqD, matchS, qs.freqD, qs.matchS)
		}
	}
}
