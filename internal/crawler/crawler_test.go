package crawler_test

import (
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/match"
	"smartcrawl/internal/querypool"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// fixtureEnv builds the running-example environment (k=2, θ=1/3).
func fixtureEnv(t *testing.T) (*crawler.Env, *hidden.Database, *sample.Sample) {
	t.Helper()
	u := fixture.New()
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  u.DB,
		Tokenizer: u.Tokenizer,
		Matcher:   match.NewExactOn(u.Tokenizer, nil, []int{0}),
	}
	smp := &sample.Sample{Records: u.Sample.Records, Theta: u.Theta}
	return env, u.DB, smp
}

// dblpEnv builds an env over a generated DBLP instance.
func dblpEnv(t *testing.T, cfg dataset.DBLPConfig, k int, matcher match.Matcher) (*crawler.Env, *dataset.Instance, *hidden.Database) {
	t.Helper()
	in, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := tokenize.New()
	db := hidden.New(in.Hidden, tk, k,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	if matcher == nil {
		matcher = match.NewExactOn(tk, in.LocalKey, in.HiddenKey)
	}
	env := &crawler.Env{Local: in.Local, Searcher: db, Tokenizer: tk, Matcher: matcher}
	return env, in, db
}

// truthCoverage counts local records whose true hidden match was crawled.
func truthCoverage(res *crawler.Result, truth []int) int {
	n := 0
	for d, h := range truth {
		if h < 0 {
			continue
		}
		if _, ok := res.Crawled[h]; ok {
			n++
		}
		_ = d
	}
	return n
}

func TestSmartBiasedCoversFixture(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample:    smp,
		Estimator: estimator.Biased{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("covered %d of 4 with budget 3; steps: %+v", res.CoveredCount, res.Steps)
	}
	if res.QueriesIssued > 3 {
		t.Fatalf("issued %d > budget", res.QueriesIssued)
	}
	// First selection: the tie between "house noodle thai" (benefit 2,
	// solid) and "house thai" (benefit 2, overflow) breaks by pool ID,
	// so d1's naive query goes first and covers d1 and d4 via h1, h4.
	if res.Steps[0].NewlyCovered != 2 {
		t.Fatalf("first query covered %d, want 2 (steps %+v)", res.Steps[0].NewlyCovered, res.Steps)
	}
}

func TestSmartSimpleRunsWithoutSample(t *testing.T) {
	env, _, _ := fixtureEnv(t)
	c, err := crawler.NewSmart(env, crawler.SmartConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "smartcrawl-simple" {
		t.Fatalf("Name = %q", c.Name())
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount < 3 {
		t.Fatalf("QSel-Simple covered only %d", res.CoveredCount)
	}
}

func TestSmartRejectsEstimatorWithoutSample(t *testing.T) {
	env, _, _ := fixtureEnv(t)
	if _, err := crawler.NewSmart(env, crawler.SmartConfig{Estimator: estimator.Biased{}}); err == nil {
		t.Fatal("biased estimator without sample should be rejected")
	}
}

func TestSmartBudgetRespected(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	res, err := c.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 1 {
		t.Fatalf("issued %d, want 1", res.QueriesIssued)
	}
}

func TestIdealCoversFixtureOptimally(t *testing.T) {
	env, db, _ := fixtureEnv(t)
	c, err := crawler.NewIdeal(env, db, querypool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("ideal covered %d of 4", res.CoveredCount)
	}
	// Greedy by true benefit: first step must cover 2 records.
	if res.Steps[0].NewlyCovered != 2 {
		t.Fatalf("first ideal step covered %d", res.Steps[0].NewlyCovered)
	}
}

func TestNaiveCoversFixture(t *testing.T) {
	env, _, _ := fixtureEnv(t)
	c, err := crawler.NewNaive(env, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// Every record's full name is a solid query returning its match, and
	// already-covered records are skipped, so 4 records need ≤ 4 queries.
	if res.CoveredCount != 4 {
		t.Fatalf("naive covered %d of 4", res.CoveredCount)
	}
}

func TestFullCrawlIgnoresLocalDatabase(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	c, err := crawler.NewFull(env, smp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	// FullCrawl issues the sample-frequent keywords; with k=2 and a
	// rating-ranked engine those surface high-rated non-local records
	// first, so coverage is poor — the point of the baseline.
	if res.CoveredCount > 2 {
		t.Fatalf("fullcrawl covered %d — unexpectedly local-aware", res.CoveredCount)
	}
	if res.QueriesIssued != 2 {
		t.Fatalf("issued %d", res.QueriesIssued)
	}
}

func TestBoundKeepsQueriesWithDeltaD(t *testing.T) {
	// Environment with ΔD: bound must re-select kept queries and still
	// satisfy the Lemma 2 guarantee against Ideal. The lemma assumes no
	// top-k constraint (Assumption 2), so k is lifted to |H|.
	env, in, db := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 300, DeltaD: 30, Seed: 5,
	}, 2000, nil)

	const budget = 60
	b, err := crawler.NewBound(env, querypool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := crawler.NewIdeal(env, db, querypool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resI, err := ideal.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	nBound, nIdeal := float64(resB.CoveredCount), float64(resI.CoveredCount)
	lower := (1 - float64(in.DeltaD)/float64(budget)) * nIdeal
	if nBound < lower-1e-9 {
		t.Fatalf("Lemma 2 violated: N_bound=%v < (1-|ΔD|/b)·N_ideal=%v", nBound, lower)
	}
}

func TestSmartDeltaDRemovalSavesBudget(t *testing.T) {
	// With ΔD present, §4.2 removal should not hurt coverage and the
	// crawler must never report ΔD records as covered.
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2000, LocalSize: 400, DeltaD: 100, Seed: 6,
	}, 100, nil)
	smp := sample.Bernoulli(in.Hidden, 0.02, stats.NewRNG(1))
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(150)
	if err != nil {
		t.Fatal(err)
	}
	for d, h := range in.Truth {
		if h == -1 && res.Covered[d] {
			t.Fatalf("ΔD record %d reported covered", d)
		}
	}
	if res.CoveredCount == 0 {
		t.Fatal("no coverage at all")
	}
}

func TestSmartCoverageIsSound(t *testing.T) {
	// Every covered record's matched hidden record must satisfy the
	// matcher, and truth-coverage must be ≥ matcher-coverage under exact
	// matching (matcher matches imply truth matches in an error-free
	// instance with unique entities).
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 8000, HiddenSize: 2500, LocalSize: 500, Seed: 7,
	}, 50, nil)
	smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(2))
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	res, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for d, h := range res.Matches {
		if !env.Matcher.Match(env.Local.Records[d], h) {
			t.Fatalf("recorded match (%d, %d) fails the matcher", d, h.ID)
		}
		if in.Truth[d] != h.ID {
			t.Fatalf("matcher matched %d to %d but truth is %d", d, h.ID, in.Truth[d])
		}
	}
	if tc := truthCoverage(res, in.Truth); tc < res.CoveredCount {
		t.Fatalf("truth coverage %d < matcher coverage %d", tc, res.CoveredCount)
	}
}

func TestSmartDeterministic(t *testing.T) {
	run := func() *crawler.Result {
		env, in, _ := dblpEnv(t, dataset.DBLPConfig{
			CorpusSize: 6000, HiddenSize: 1500, LocalSize: 300, Seed: 9,
		}, 50, nil)
		smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(3))
		c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
		res, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CoveredCount != b.CoveredCount || len(a.Steps) != len(b.Steps) {
		t.Fatal("smartcrawl must be deterministic")
	}
	for i := range a.Steps {
		if a.Steps[i].Query.Key() != b.Steps[i].Query.Key() {
			t.Fatalf("step %d differs: %v vs %v", i, a.Steps[i].Query, b.Steps[i].Query)
		}
	}
}

func TestSmartNeverRepeatsQueries(t *testing.T) {
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 6000, HiddenSize: 1500, LocalSize: 300, DeltaD: 50, Seed: 10,
	}, 50, nil)
	smp := sample.Bernoulli(in.Hidden, 0.03, stats.NewRNG(4))
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	res, err := c.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Steps {
		if seen[s.Query.Key()] {
			t.Fatalf("query %v issued twice", s.Query)
		}
		seen[s.Query.Key()] = true
	}
}

func TestSmartOutperformsBaselinesOnDBLP(t *testing.T) {
	// The headline claim at small scale: SmartCrawl-B beats NaiveCrawl
	// and FullCrawl by a clear margin at a 20% budget.
	cfg := dataset.DBLPConfig{
		CorpusSize: 20000, HiddenSize: 5000, LocalSize: 1000, Seed: 11,
	}
	k := 100
	budget := 200 // 20% of |D|

	env, in, db := dblpEnv(t, cfg, k, nil)
	smp := sample.Bernoulli(in.Hidden, 0.01, stats.NewRNG(5))

	smart, _ := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
	})
	resSmart, err := smart.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	naive, _ := crawler.NewNaive(env, nil, 1)
	resNaive, err := naive.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	full, _ := crawler.NewFull(env, smp)
	resFull, err := full.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	ideal, _ := crawler.NewIdeal(env, db, querypool.Config{})
	resIdeal, err := ideal.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	cs := truthCoverage(resSmart, in.Truth)
	cn := truthCoverage(resNaive, in.Truth)
	cf := truthCoverage(resFull, in.Truth)
	ci := truthCoverage(resIdeal, in.Truth)
	t.Logf("coverage: smart=%d naive=%d full=%d ideal=%d (|D|=%d, b=%d)",
		cs, cn, cf, ci, in.Local.Len(), budget)

	if cs <= cn {
		t.Errorf("smart (%d) should beat naive (%d)", cs, cn)
	}
	if cs <= cf {
		t.Errorf("smart (%d) should beat full (%d)", cs, cf)
	}
	if ci < cs {
		t.Errorf("ideal (%d) should be ≥ smart (%d)", ci, cs)
	}
	if cs*2 < ci {
		t.Errorf("smart (%d) should track ideal (%d) within 2x", cs, ci)
	}
}

func TestNaiveRobustnessGapUnderErrors(t *testing.T) {
	// §7.2.5: with heavy errors, NaiveCrawl's coverage collapses while
	// SmartCrawl-B (with a fuzzy matcher) degrades mildly.
	mk := func(errRate float64) (smartCov, naiveCov int) {
		cfg := dataset.DBLPConfig{
			CorpusSize: 15000, HiddenSize: 4000, LocalSize: 600,
			ErrorRate: errRate, Seed: 13,
		}
		tkz := tokenize.New()
		in, err := dataset.GenerateDBLP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db := hidden.New(in.Hidden, tkz, 100,
			hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
		fuzzy := match.NewJaccardOn(tkz, 0.6, in.LocalKey, in.HiddenKey)
		env := &crawler.Env{Local: in.Local, Searcher: db, Tokenizer: tkz, Matcher: fuzzy}
		smp := sample.Bernoulli(in.Hidden, 0.02, stats.NewRNG(6))

		smart, _ := crawler.NewSmart(env, crawler.SmartConfig{
			Sample: smp, Estimator: estimator.Biased{}, AlphaFallback: true,
		})
		resS, err := smart.Run(150)
		if err != nil {
			t.Fatal(err)
		}
		naive, _ := crawler.NewNaive(env, nil, 1)
		resN, err := naive.Run(150)
		if err != nil {
			t.Fatal(err)
		}
		return truthCoverage(resS, in.Truth), truthCoverage(resN, in.Truth)
	}
	s0, n0 := mk(0)
	s50, n50 := mk(0.5)
	t.Logf("clean: smart=%d naive=%d; 50%% errors: smart=%d naive=%d", s0, n0, s50, n50)
	if n50 >= n0 {
		t.Errorf("naive should lose coverage under errors (%d → %d)", n0, n50)
	}
	// Smart's relative degradation must be smaller than naive's.
	smartLoss := float64(s0-s50) / float64(s0)
	naiveLoss := float64(n0-n50) / float64(n0)
	if smartLoss >= naiveLoss {
		t.Errorf("smart loss %.2f should be below naive loss %.2f", smartLoss, naiveLoss)
	}
}

func TestEnvValidation(t *testing.T) {
	if _, err := crawler.NewSmart(nil, crawler.SmartConfig{}); err == nil {
		t.Error("nil env should fail")
	}
	u := fixture.New()
	bad := &crawler.Env{Local: u.Local} // missing searcher etc.
	if _, err := crawler.NewNaive(bad, nil, 0); err == nil {
		t.Error("incomplete env should fail")
	}
	env, db, _ := fixtureEnv(t)
	if _, err := crawler.NewIdeal(env, nil, querypool.Config{}); err == nil {
		t.Error("ideal without oracle should fail")
	}
	_ = db
	if _, err := crawler.NewFull(env, nil); err == nil {
		t.Error("full without sample should fail")
	}
	if _, err := crawler.NewFull(env, &sample.Sample{}); err == nil {
		t.Error("full with empty sample should fail")
	}
}

func TestSmartUnbiasedRuns(t *testing.T) {
	env, in, _ := dblpEnv(t, dataset.DBLPConfig{
		CorpusSize: 6000, HiddenSize: 1500, LocalSize: 300, Seed: 15,
	}, 50, nil)
	smp := sample.Bernoulli(in.Hidden, 0.05, stats.NewRNG(8))
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Unbiased{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "smartcrawl-unbiased" {
		t.Fatalf("Name = %q", c.Name())
	}
	res, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued == 0 {
		t.Fatal("unbiased crawler issued nothing")
	}
}

func TestCrawledRecordsAreDistinct(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	res, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range res.Crawled {
		if r.ID != id {
			t.Fatal("crawled map must key records by their ID")
		}
	}
}

func TestNaiveSkipsCoveredRecords(t *testing.T) {
	// Two local records matching hidden entities that co-occur in one
	// result: after the first covers both, the second must not be
	// queried.
	tk := tokenize.New()
	u := fixture.New()
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  u.DB,
		Tokenizer: tk,
		Matcher:   match.NewExactOn(tk, nil, []int{0}),
	}
	c, _ := crawler.NewNaive(env, []int{0}, 99)
	res, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued > 4 {
		t.Fatalf("issued %d > 4 local records", res.QueriesIssued)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("covered %d", res.CoveredCount)
	}
}

func BenchmarkSmartBiasedDBLP(b *testing.B) {
	in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
		CorpusSize: 20000, HiddenSize: 5000, LocalSize: 1000, Seed: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	tk := tokenize.New()
	db := hidden.New(in.Hidden, tk, 100,
		hidden.RankByNumericColumn(in.RankColumn), hidden.ModeConjunctive)
	env := &crawler.Env{
		Local: in.Local, Searcher: db, Tokenizer: tk,
		Matcher: match.NewExactOn(tk, in.LocalKey, in.HiddenKey),
	}
	smp := sample.Bernoulli(in.Hidden, 0.01, stats.NewRNG(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
		if _, err := c.Run(200); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOnStepHook(t *testing.T) {
	env, _, smp := fixtureEnv(t)
	var steps []crawler.Step
	env.OnStep = func(s crawler.Step) { steps = append(steps, s) }
	c, _ := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	res, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != res.QueriesIssued {
		t.Fatalf("hook fired %d times, %d queries issued", len(steps), res.QueriesIssued)
	}
	for i := range steps {
		if steps[i].Query.Key() != res.Steps[i].Query.Key() {
			t.Fatalf("hook step %d differs from trace", i)
		}
	}
}
