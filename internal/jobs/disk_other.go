//go:build !linux

package jobs

// diskFree is unavailable on this platform: the disk-pressure admission
// check is skipped (ok=false), never failed closed.
func diskFree(string) (int64, bool) { return 0, false }
