package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
)

// Server exposes a Manager over HTTP — the crawld wire API.
//
//	POST   /jobs                 submit a job (JSON Spec)      → 202 Job
//	GET    /jobs                 list jobs                     → 200 []Job
//	GET    /jobs/{id}            job status                    → 200 Job
//	GET    /jobs/{id}/result     enriched table                → 200 text/csv
//	GET    /jobs/{id}/checkpoint raw checkpoint bytes          → 200 octet-stream
//	GET    /jobs/{id}/events     progress stream (JSONL)       → 200 application/x-ndjson
//	DELETE /jobs/{id}            cancel                        → 200 Job
//	GET    /healthz              liveness                      → 200
//
// Admission rejections map to 429 (+ Retry-After for transient causes)
// and 503 while draining; malformed submissions are 400.
type Server struct {
	mgr *Manager
}

// NewServer wraps mgr.
func NewServer(mgr *Manager) *Server { return &Server{mgr: mgr} }

// Handler returns the API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		status := "ok"
		if s.mgr.Draining() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	})
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var sp Spec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("decoding spec: %w", err)))
			return
		}
		job, err := s.mgr.Submit(sp)
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.mgr.List())
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorBody(errors.New("GET or POST")))
	}
}

// writeAdmissionError maps manager admission errors onto wire semantics:
// transient pressure (queue, rate) is 429 with a Retry-After hint, budget
// exhaustion 429 without one (it clears only when jobs settle), draining
// 503, anything else a 400 misuse error.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantRate):
		secs := int(s.mgr.RetryAfter().Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errorBody(err))
	case errors.Is(err, ErrTenantBudget):
		writeJSON(w, http.StatusTooManyRequests, errorBody(err))
	case errors.Is(err, ErrDiskPressure):
		// Server-side pressure, not client misbehaviour: 503, with the
		// hint — the operator freeing space clears it.
		secs := int(s.mgr.RetryAfter().Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusServiceUnavailable, errorBody(err))
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody(err))
	default:
		writeJSON(w, http.StatusBadRequest, errorBody(err))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeJSON(w, http.StatusNotFound, errorBody(errors.New("job id required")))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		if job := s.mgr.Get(id); job != nil {
			writeJSON(w, http.StatusOK, job)
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody(fmt.Errorf("no job %s", id)))
	case sub == "" && r.Method == http.MethodDelete:
		if !s.mgr.Cancel(id) {
			writeJSON(w, http.StatusConflict, errorBody(fmt.Errorf("job %s unknown or already finished", id)))
			return
		}
		writeJSON(w, http.StatusOK, s.mgr.Get(id))
	case sub == "result" && r.Method == http.MethodGet:
		s.serveFile(w, id, s.mgr.ResultPath(id), "text/csv", "job not done")
	case sub == "checkpoint" && r.Method == http.MethodGet:
		s.serveFile(w, id, s.mgr.CheckpointPath(id), "application/octet-stream", "no checkpoint yet")
	case sub == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, id)
	default:
		writeJSON(w, http.StatusNotFound, errorBody(fmt.Errorf("no such endpoint: %s", r.URL.Path)))
	}
}

func (s *Server) serveFile(w http.ResponseWriter, id, path, contentType, missing string) {
	if s.mgr.Get(id) == nil {
		writeJSON(w, http.StatusNotFound, errorBody(fmt.Errorf("no job %s", id)))
		return
	}
	buf, err := os.ReadFile(path)
	if path == "" || err != nil {
		writeJSON(w, http.StatusConflict, errorBody(fmt.Errorf("job %s: %s", id, missing)))
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(buf)
}

// streamEvents writes the job's progress as JSON Lines: one step object
// per issued query from the requested ?from= sequence (default 1), then
// a final state line when no further events will arrive in this process.
// The stream also ends when the daemon drains (state "queued"): the
// client re-attaches after restart and replays from its last seq.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, id string) {
	from := 1
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("bad from: %q", v)))
			return
		}
		from = n
	}
	if s.mgr.Get(id) == nil {
		writeJSON(w, http.StatusNotFound, errorBody(fmt.Errorf("no job %s", id)))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, st, ok := s.mgr.Steps(id, from)
		if !ok {
			return
		}
		for _, ev := range evs {
			enc.Encode(struct {
				Type string `json:"type"`
				StepEvent
			}{"step", ev})
			from = ev.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Terminal() || st == StateQueued {
			enc.Encode(struct {
				Type  string `json:"type"`
				State State  `json:"state"`
			}{"state", st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		// Not terminal and no new events means Steps returned because the
		// client asked from a future seq; block again for more.
		if r.Context().Err() != nil {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func errorBody(err error) map[string]string { return map[string]string{"error": err.Error()} }
