package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestShedCountsByReason drives each admission shed class and checks the
// rejection is attributed to its reason in ShedCounts — the counters
// behind crawld_shed_total. A fresh manager must report every reason,
// zero-valued.
func TestShedCountsByReason(t *testing.T) {
	fixtures(t)

	expectShed := func(t *testing.T, m *Manager, want map[string]int64) {
		t.Helper()
		got := m.ShedCounts()
		for _, r := range shedReasons {
			if got[r] != want[r] {
				t.Fatalf("ShedCounts[%q] = %d, want %d (full map %v)", r, got[r], want[r], got)
			}
		}
	}

	t.Run("fresh manager reports all reasons", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		got := m.ShedCounts()
		if len(got) != len(shedReasons) {
			t.Fatalf("ShedCounts has %d keys, want %d: %v", len(got), len(shedReasons), got)
		}
		expectShed(t, m, nil)
	})

	t.Run("queue", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, QueueCap: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		if _, err := m.Submit(pacedSpec(1)); err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 2; i++ {
			if _, err := m.Submit(baseSpec(2)); !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit err = %v, want ErrQueueFull", err)
			}
			expectShed(t, m, map[string]int64{"queue": i})
		}
	})

	t.Run("rate", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantRate: 0.001, TenantBurst: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		if _, err := m.Submit(baseSpec(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(2)); !errors.Is(err, ErrTenantRate) {
			t.Fatalf("submit err = %v, want ErrTenantRate", err)
		}
		expectShed(t, m, map[string]int64{"rate": 1})
	})

	t.Run("budget", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantBudget: 30, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		if _, err := m.Submit(baseSpec(1)); err != nil { // reserves 24 of 30
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(2)); !errors.Is(err, ErrTenantBudget) {
			t.Fatalf("submit err = %v, want ErrTenantBudget", err)
		}
		expectShed(t, m, map[string]int64{"budget": 1})
	})

	t.Run("draining", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		m.Drain()
		if _, err := m.Submit(baseSpec(1)); !errors.Is(err, ErrDraining) {
			t.Fatalf("submit err = %v, want ErrDraining", err)
		}
		expectShed(t, m, map[string]int64{"draining": 1})
	})
}

// TestDiskPressureShedding sets MinDiskFree to an unsatisfiable bound and
// checks the whole path: Submit returns ErrDiskPressure, the rejection is
// attributed to the "disk" shed class, and the HTTP layer maps it to 503
// with a Retry-After hint (server-side pressure, not client misuse). On
// filesystems the probe cannot read, shedding must fail open — the
// submission is admitted, never spuriously rejected.
func TestDiskPressureShedding(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	if _, ok := diskFree(dir); !ok {
		// disk_other.go: no probe on this platform, so MinDiskFree is
		// inert by design. Verify fail-open and stop.
		m, err := Open(Config{Dir: dir, Workers: 1, MinDiskFree: math.MaxInt64, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		if _, err := m.Submit(baseSpec(1)); err != nil {
			t.Fatalf("unprobeable disk must fail open, got %v", err)
		}
		t.Skip("no disk probe on this platform")
	}

	m, err := Open(Config{Dir: dir, Workers: 1, MinDiskFree: math.MaxInt64, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()
	if _, err := m.Submit(baseSpec(1)); !errors.Is(err, ErrDiskPressure) {
		t.Fatalf("submit err = %v, want ErrDiskPressure", err)
	}
	if got := m.ShedCounts()["disk"]; got != 1 {
		t.Fatalf("ShedCounts[disk] = %d, want 1", got)
	}

	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()
	buf, _ := json.Marshal(baseSpec(2))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 disk-pressure response missing Retry-After hint")
	}
	if got := m.ShedCounts()["disk"]; got != 2 {
		t.Fatalf("ShedCounts[disk] = %d, want 2 after HTTP submit", got)
	}
}

// TestEventRingBound runs a job whose step count exceeds a tiny
// EventBuffer and checks the ring's contract: memory stays bounded (at
// most EventBuffer events retained), readers resume at the oldest
// retained event with the gap visible in the seq numbers, and every
// eviction no streamer had read is counted by EventsDropped — the
// counter behind crawld_events_dropped_total. A negative EventBuffer
// disables the bound entirely.
func TestEventRingBound(t *testing.T) {
	fixtures(t)

	const cap = 4
	m, err := Open(Config{Dir: t.TempDir(), Workers: 1, EventBuffer: cap, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()
	job, err := m.Submit(baseSpec(1)) // budget 24 ≫ cap 4
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, m, job.ID); got.State != StateDone {
		t.Fatalf("job state %s: %s", got.State, got.Error)
	}
	evs, _, ok := m.Steps(job.ID, 1)
	if !ok {
		t.Fatal("Steps: job unknown")
	}
	if len(evs) == 0 || len(evs) > cap {
		t.Fatalf("bounded feed retained %d events, want 1..%d", len(evs), cap)
	}
	if evs[0].Seq <= 1 {
		t.Fatalf("first retained seq %d — the front of the feed was never evicted", evs[0].Seq)
	}
	for i, ev := range evs {
		if want := evs[0].Seq + i; ev.Seq != want {
			t.Fatalf("retained seqs not contiguous: evs[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	last := evs[len(evs)-1].Seq
	// No streamer read anything before the job settled, so every evicted
	// event was dropped unread: exactly seq 1..firstRetained-1.
	if want := int64(evs[0].Seq - 1); m.EventsDropped() != want {
		t.Fatalf("EventsDropped = %d, want %d (unread evictions)", m.EventsDropped(), want)
	}
	// A reader asking for an evicted range resumes at the oldest retained
	// event rather than blocking or erroring.
	again, _, ok := m.Steps(job.ID, 1)
	if !ok || len(again) != len(evs) || again[0].Seq != evs[0].Seq {
		t.Fatalf("re-read from seq 1: got %d events from seq %d, want %d from %d",
			len(again), again[0].Seq, len(evs), evs[0].Seq)
	}
	// Asking past the end returns nothing new once the feed is EOF.
	tail, _, ok := m.Steps(job.ID, last+1)
	if !ok || len(tail) != 0 {
		t.Fatalf("read past end returned %d events", len(tail))
	}

	// Negative bound = unbounded: the same job retains every step from
	// seq 1 and drops nothing.
	um, err := Open(Config{Dir: t.TempDir(), Workers: 1, EventBuffer: -1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer um.Drain()
	ujob, err := um.Submit(baseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, um, ujob.ID); got.State != StateDone {
		t.Fatalf("unbounded job state %s: %s", got.State, got.Error)
	}
	uevs, _, ok := um.Steps(ujob.ID, 1)
	if !ok || len(uevs) == 0 || uevs[0].Seq != 1 {
		t.Fatalf("unbounded feed: ok=%v len=%d firstSeq=%d, want full feed from seq 1",
			ok, len(uevs), uevs[0].Seq)
	}
	if len(uevs) <= cap {
		t.Fatalf("unbounded feed retained %d events — not enough steps to have exercised the cap-%d ring", len(uevs), cap)
	}
	if um.EventsDropped() != 0 {
		t.Fatalf("unbounded feed dropped %d events", um.EventsDropped())
	}
	if last != uevs[len(uevs)-1].Seq {
		t.Fatalf("bounded run ended at seq %d, unbounded identical job at %d", last, uevs[len(uevs)-1].Seq)
	}
}
