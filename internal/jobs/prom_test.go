package jobs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/obs/promexport"
)

// scrape renders one CollectProm pass to text, as GET /metrics would.
func scrape(t *testing.T, m *Manager) string {
	t.Helper()
	c := promexport.NewCollection()
	m.CollectProm(c)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCollectProm runs one job to completion and checks the rendered
// daemon families: state counts, draining flag, tenant accounting.
func TestCollectProm(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true, TenantBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()

	job, err := m.Submit(baseSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, job.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}

	out := scrape(t, m)
	for _, want := range []string{
		`crawld_jobs{state="done"} 1`,
		`crawld_jobs{state="queued"} 0`,
		`crawld_jobs{state="running"} 0`,
		`crawld_jobs{state="failed"} 0`,
		`crawld_jobs{state="canceled"} 0`,
		`crawld_draining 0`,
		`crawld_tenant_budget_cap_queries 500`,
		fmt.Sprintf(`crawld_tenant_reserved_queries{tenant="default"} %d`, done.Charged),
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	// A settled job carries no live obs sink: no per-job families leak.
	if strings.Contains(out, "smartcrawl_") {
		t.Errorf("scrape has per-job families after settle:\n%s", out)
	}

	m.Drain()
	if out := scrape(t, m); !strings.Contains(out, "crawld_draining 1\n") {
		t.Errorf("draining gauge not set after Drain:\n%s", out)
	}
}

// TestCollectPromRunningJob asserts the per-job metric set appears with
// job/tenant labels while a job runs. The running job is injected
// directly into the registry (white-box) so the test does not race the
// crawl's own lifetime.
func TestCollectPromRunningJob(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()

	sink := obs.New()
	sink.Query("deep web", 2.0, 10, 3, 3, false)
	sink.Round(1, 9)
	m.mu.Lock()
	m.jobs["j-synthetic"] = &job{
		Job: Job{ID: "j-synthetic", Tenant: "acme", State: StateRunning},
		obs: sink,
	}
	m.order = append(m.order, "j-synthetic")
	m.mu.Unlock()

	out := scrape(t, m)
	for _, want := range []string{
		`crawld_jobs{state="running"} 1`,
		`smartcrawl_queries_issued_total{job="j-synthetic",tenant="acme"} 1`,
		`smartcrawl_records_covered_total{job="j-synthetic",tenant="acme"} 3`,
		`smartcrawl_rounds_total{job="j-synthetic",tenant="acme"} 1`,
		`smartcrawl_search_latency_seconds_count{job="j-synthetic",tenant="acme"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}

	// Remove the synthetic job so Drain does not try to settle it.
	m.mu.Lock()
	delete(m.jobs, "j-synthetic")
	m.order = m.order[:len(m.order)-1]
	m.mu.Unlock()
}
